exception Not_in_fiber
exception Stalled of string

(* The event queue is split in two, both ordered by [(time, seq)] —
   [seq] is a global schedule counter, so ties at one instant fire in
   FIFO order, exactly like the [Map.Make (float * int)] queue this
   replaces:

   - [heap]/[times]: an array-backed binary min-heap for events in the
     future.  [times] mirrors the key's time component in an unboxed
     float array so sift comparisons never chase a boxed float.
   - [imm]: a plain FIFO for events scheduled at the current instant
     (resume trampolines, yields, spawns — roughly half of all
     traffic).  [now] never decreases and [seq] only grows, so this
     queue is (time, seq)-sorted by construction and costs O(1) where
     the heap would pay its worst case (a new minimum sifts to the
     root and is popped right back).

   Cancellation is lazy: [cancel] marks the event and the run loop
   discards corpses as they surface; once heap corpses pass a
   threshold the heap is compacted in one O(n) pass, so [pending]
   counts only live events and long sweeps that cancel many retransmit
   timers cannot grow memory without bound. *)

(* An event does not store its own time: heap entries keep it in the
   side [times] array, and an [imm] entry's time is by construction
   [now] from the moment it is enqueued until it fires (the loop always
   executes the global (time, seq) minimum and time never decreases, so
   the clock cannot pass a queued immediate).  Dropping the float field
   keeps the record box-free. *)
type event = {
  seq : int;
  mutable cancelled : bool;
  mutable fired : bool; (* left the queues (ran, skipped, or purged) *)
  thunk : unit -> unit;
  owner : t;
}

and t = {
  mutable now : float;
  mutable heap : event array;
  mutable times : float array; (* times.(i) = heap.(i)'s fire time, unboxed *)
  mutable heap_size : int;
  (* [imm] is a power-of-two ring buffer; head and tail grow without
     bound and are masked on access. *)
  mutable imm : event array;
  mutable imm_head : int;
  mutable imm_tail : int;
  mutable live : int; (* queued events not yet cancelled *)
  mutable next_seq : int;
  mutable processed : int;
  max_events : int;
  sim_rng : Random.State.t;
  dummy : event; (* fills empty queue slots, so popped thunks get freed *)
}

let create ?(max_events = 10_000_000) ?(seed = 42) () =
  let rec dummy =
    { seq = -1; cancelled = true; fired = true; thunk = ignore; owner = t }
  and t =
    {
      now = 0.;
      heap = [||];
      times = [||];
      heap_size = 0;
      imm = [||];
      imm_head = 0;
      imm_tail = 0;
      live = 0;
      next_seq = 0;
      processed = 0;
      max_events;
      sim_rng = Random.State.make [| seed |];
      dummy;
    }
  in
  t

let now t = t.now
let pending t = t.live
let processed t = t.processed
let rng t = t.sim_rng

(* --- heap primitives --- *)

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    let ti = t.times.(i) and tp = t.times.(p) in
    if ti < tp || (ti = tp && t.heap.(i).seq < t.heap.(p).seq) then begin
      let ev = t.heap.(i) in
      t.heap.(i) <- t.heap.(p);
      t.heap.(p) <- ev;
      t.times.(i) <- tp;
      t.times.(p) <- ti;
      sift_up t p
    end
  end

let rec sift_down t n i =
  let l = (2 * i) + 1 in
  if l < n then begin
    let s =
      if
        l + 1 < n
        && (t.times.(l + 1) < t.times.(l)
           || (t.times.(l + 1) = t.times.(l)
              && t.heap.(l + 1).seq < t.heap.(l).seq))
      then l + 1
      else l
    in
    let ts = t.times.(s) and ti = t.times.(i) in
    if ts < ti || (ts = ti && t.heap.(s).seq < t.heap.(i).seq) then begin
      let ev = t.heap.(i) in
      t.heap.(i) <- t.heap.(s);
      t.heap.(s) <- ev;
      t.times.(i) <- ts;
      t.times.(s) <- ti;
      sift_down t n s
    end
  end

let heap_push t time ev =
  let cap = Array.length t.heap in
  if t.heap_size = cap then begin
    let cap' = max 256 (2 * cap) in
    let grown = Array.make cap' t.dummy in
    let grown_times = Array.make cap' infinity in
    Array.blit t.heap 0 grown 0 t.heap_size;
    Array.blit t.times 0 grown_times 0 t.heap_size;
    t.heap <- grown;
    t.times <- grown_times
  end;
  t.heap.(t.heap_size) <- ev;
  t.times.(t.heap_size) <- time;
  t.heap_size <- t.heap_size + 1;
  sift_up t (t.heap_size - 1)

(* Pop the root.  The caller decides whether it was live. *)
let heap_pop t =
  let ev = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  t.heap.(0) <- t.heap.(t.heap_size);
  t.times.(0) <- t.times.(t.heap_size);
  t.heap.(t.heap_size) <- t.dummy;
  t.times.(t.heap_size) <- infinity;
  if t.heap_size > 0 then sift_down t t.heap_size 0;
  ev

(* Compact away cancelled events and re-heapify (Floyd's O(n) pass).
   Heap order depends only on the (time, seq) key, so rebuilding cannot
   perturb the firing schedule. *)
let purge t =
  let h = t.heap in
  let kept = ref 0 in
  for i = 0 to t.heap_size - 1 do
    let ev = h.(i) in
    if ev.cancelled then ev.fired <- true
    else begin
      h.(!kept) <- ev;
      t.times.(!kept) <- t.times.(i);
      incr kept
    end
  done;
  for i = !kept to t.heap_size - 1 do
    h.(i) <- t.dummy;
    t.times.(i) <- infinity
  done;
  t.heap_size <- !kept;
  for i = (!kept / 2) - 1 downto 0 do
    sift_down t !kept i
  done

(* Compacting is O(n), so only bother once the corpses both dominate
   the heap and number enough to matter.  Corpses in [imm] are at the
   current instant and drain on their own within a few pops. *)
let purge_floor = 64

let maybe_purge t =
  let dead = t.heap_size + (t.imm_tail - t.imm_head) - t.live in
  if dead > purge_floor && 2 * dead > t.heap_size then purge t

let imm_add t ev =
  let cap = Array.length t.imm in
  let len = t.imm_tail - t.imm_head in
  if len = cap then begin
    let grown = Array.make (max 16 (2 * cap)) t.dummy in
    for i = 0 to len - 1 do
      grown.(i) <- t.imm.((t.imm_head + i) land (cap - 1))
    done;
    t.imm <- grown;
    t.imm_head <- 0;
    t.imm_tail <- len
  end;
  t.imm.(t.imm_tail land (Array.length t.imm - 1)) <- ev;
  t.imm_tail <- t.imm_tail + 1

let schedule_at t time thunk =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let ev = { seq; cancelled = false; fired = false; thunk; owner = t } in
  (* Scheduling in the past never happens (all entry points add a
     non-negative delay to [now]), so [time = now] is the instant case. *)
  if time = t.now then imm_add t ev else heap_push t time ev;
  t.live <- t.live + 1;
  ev

let cancel ev =
  if ev.cancelled || ev.fired then false
  else begin
    ev.cancelled <- true;
    let t = ev.owner in
    t.live <- t.live - 1;
    maybe_purge t;
    true
  end

(* A fiber suspends by handing its resumption to [register]; whoever
   holds the resumption calls it exactly once to schedule the fiber's
   continuation as an immediate event.  The trampoline keeps resumption
   FIFO-ordered with everything else scheduled at the same instant (the
   continuation's position is fixed when [resume] runs, not when the
   fiber suspended), which is what makes runs deterministic.

   [Delay] is the pre-fused form of the dominant suspension — a timed
   wait.  The handler builds the same two-event trampoline [suspend]
   would (wake event, then resume at the wake instant), just without
   the [register]/[resume] closure pair per call. *)
type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t
type _ Effect.t += Delay : float -> unit Effect.t

let run_fiber t f =
  let open Effect.Deep in
  let handler =
    {
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  register (fun () ->
                      ignore (schedule_at t t.now (fun () -> continue k ()))))
          | Delay time ->
              Some
                (fun (k : (a, unit) continuation) ->
                  ignore
                    (schedule_at t time (fun () ->
                         ignore (schedule_at t t.now (fun () -> continue k ())))))
          | _ -> None);
    }
  in
  try_with f () handler

let suspend register =
  try Effect.perform (Suspend register)
  with Effect.Unhandled (Suspend _) -> raise Not_in_fiber

let spawn t ?name f =
  let run () =
    try run_fiber t f
    with Not_in_fiber ->
      (* Preserve the fiber's name in the backtrace-less sim world. *)
      failwith
        (Printf.sprintf "fiber %s: blocking operation escaped its fiber"
           (Option.value name ~default:"<anon>"))
  in
  ignore (schedule_at t t.now run)

let perform_delay time =
  try Effect.perform (Delay time)
  with Effect.Unhandled (Delay _) -> raise Not_in_fiber

let delay t d =
  if d < 0. then invalid_arg "Sim.delay: negative delay";
  if d = 0. then () else perform_delay (t.now +. d)

let yield t = perform_delay t.now

let after t d f =
  if d < 0. then invalid_arg "Sim.after: negative delay";
  schedule_at t (t.now +. d) (fun () -> run_fiber t f)

let run ?until t =
  let execute ev =
    ev.fired <- true;
    t.live <- t.live - 1;
    t.processed <- t.processed + 1;
    if t.processed > t.max_events then
      raise
        (Stalled (Printf.sprintf "more than %d events processed" t.max_events));
    ev.thunk ()
  in
  let stop_at time = match until with Some u -> time > u | None -> false in
  let imm_pop t =
    let ev = t.imm.(t.imm_head land (Array.length t.imm - 1)) in
    t.imm.(t.imm_head land (Array.length t.imm - 1)) <- t.dummy;
    t.imm_head <- t.imm_head + 1;
    ev
  in
  let rec loop () =
    (* Corpses are dropped without consulting [until] — they were
       already discounted from [live] when cancelled. *)
    if t.heap_size > 0 && t.heap.(0).cancelled then begin
      (heap_pop t).fired <- true;
      loop ()
    end
    else if t.imm_head < t.imm_tail then begin
      let qe = t.imm.(t.imm_head land (Array.length t.imm - 1)) in
      if qe.cancelled then begin
        (imm_pop t).fired <- true;
        loop ()
      end
      else if
        (* Both queues are live at their heads; fire the lesser
           (time, seq).  A queued immediate's time is [now] by the
           invariant above, so the heap can win only on an equal time
           with a smaller seq (the clock never passes a queued
           immediate). *)
        t.heap_size > 0
        && t.times.(0) = t.now
        && t.heap.(0).seq < qe.seq
      then
        if stop_at t.times.(0) then t.now <- Option.get until
        else begin
          t.now <- t.times.(0);
          execute (heap_pop t);
          loop ()
        end
      else if stop_at t.now then t.now <- Option.get until
      else begin
        execute (imm_pop t);
        loop ()
      end
    end
    else if t.heap_size > 0 then
      if stop_at t.times.(0) then t.now <- Option.get until
      else begin
        t.now <- t.times.(0);
        execute (heap_pop t);
        loop ()
      end
  in
  loop ()

module Semaphore = struct
  type sem = {
    sim : t;
    mutable cnt : int;
    blocked : (unit -> unit) Queue.t;
  }

  let create sim cnt =
    if cnt < 0 then invalid_arg "Semaphore.create";
    { sim; cnt; blocked = Queue.create () }

  let p s =
    if s.cnt > 0 then s.cnt <- s.cnt - 1
    else suspend (fun resume -> Queue.add resume s.blocked)

  let v s =
    match Queue.take_opt s.blocked with
    | Some resume -> resume ()
    | None -> s.cnt <- s.cnt + 1

  let count s = s.cnt
  let waiters s = Queue.length s.blocked
end

module Ivar = struct
  type 'a state = Unset of (unit -> unit) Queue.t | Set of 'a
  type 'a ivar = { iv_sim : t; mutable state : 'a state }

  let create sim = { iv_sim = sim; state = Unset (Queue.create ()) }

  let fill iv x =
    match iv.state with
    | Set _ -> invalid_arg "Ivar.fill: already filled"
    | Unset waiters ->
        iv.state <- Set x;
        Queue.iter (fun resume -> resume ()) waiters

  let is_filled iv = match iv.state with Set _ -> true | Unset _ -> false

  let read iv =
    match iv.state with
    | Set x -> x
    | Unset waiters -> (
        suspend (fun resume -> Queue.add resume waiters);
        match iv.state with
        | Set x -> x
        | Unset _ -> assert false)

  let read_timeout iv d =
    match iv.state with
    | Set x -> Some x
    | Unset waiters ->
        suspend (fun resume ->
            let fired = ref false in
            let once () =
              if not !fired then begin
                fired := true;
                resume ()
              end
            in
            let ev = after iv.iv_sim d once in
            Queue.add
              (fun () ->
                if cancel ev then ();
                once ())
              waiters);
        (match iv.state with Set x -> Some x | Unset _ -> None)
end
