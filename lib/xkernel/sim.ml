exception Not_in_fiber
exception Stalled of string

type event = {
  time : float;
  seq : int;
  mutable cancelled : bool;
  thunk : unit -> unit;
}

module Pq = Map.Make (struct
  type t = float * int

  let compare = compare
end)

type t = {
  mutable now : float;
  mutable queue : event Pq.t;
  mutable next_seq : int;
  mutable processed : int;
  max_events : int;
  sim_rng : Random.State.t;
}

let create ?(max_events = 10_000_000) ?(seed = 42) () =
  {
    now = 0.;
    queue = Pq.empty;
    next_seq = 0;
    processed = 0;
    max_events;
    sim_rng = Random.State.make [| seed |];
  }

let now t = t.now
let pending t = Pq.cardinal t.queue
let rng t = t.sim_rng

let schedule_at t time thunk =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let ev = { time; seq; cancelled = false; thunk } in
  t.queue <- Pq.add (time, seq) ev t.queue;
  ev

let cancel ev =
  if ev.cancelled then false
  else begin
    ev.cancelled <- true;
    true
  end

(* A fiber suspends by handing its resumption to [register]; whoever
   holds the resumption calls it exactly once to schedule the fiber's
   continuation as an immediate event. *)
type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let run_fiber t f =
  let open Effect.Deep in
  let handler =
    {
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  register (fun () ->
                      ignore (schedule_at t t.now (fun () -> continue k ()))))
          | _ -> None);
    }
  in
  try_with f () handler

let suspend register =
  try Effect.perform (Suspend register)
  with Effect.Unhandled (Suspend _) -> raise Not_in_fiber

let spawn t ?name f =
  let run () =
    try run_fiber t f
    with Not_in_fiber ->
      (* Preserve the fiber's name in the backtrace-less sim world. *)
      failwith
        (Printf.sprintf "fiber %s: blocking operation escaped its fiber"
           (Option.value name ~default:"<anon>"))
  in
  ignore (schedule_at t t.now run)

let delay t d =
  if d < 0. then invalid_arg "Sim.delay: negative delay";
  if d = 0. then ()
  else
    suspend (fun resume ->
        ignore (schedule_at t (t.now +. d) (fun () -> resume ())))

let yield t = suspend (fun resume -> ignore (schedule_at t t.now resume))

let after t d f =
  if d < 0. then invalid_arg "Sim.after: negative delay";
  schedule_at t (t.now +. d) (fun () -> run_fiber t f)

let run ?until t =
  let rec loop () =
    match Pq.min_binding_opt t.queue with
    | None -> ()
    | Some ((time, seq), ev) -> (
        match until with
        | Some u when time > u -> t.now <- u
        | _ ->
            t.queue <- Pq.remove (time, seq) t.queue;
            if not ev.cancelled then begin
              t.processed <- t.processed + 1;
              if t.processed > t.max_events then
                raise
                  (Stalled
                     (Printf.sprintf "more than %d events processed"
                        t.max_events));
              t.now <- time;
              ev.thunk ()
            end;
            loop ())
  in
  loop ()

module Semaphore = struct
  type sem = {
    sim : t;
    mutable cnt : int;
    blocked : (unit -> unit) Queue.t;
  }

  let create sim cnt =
    if cnt < 0 then invalid_arg "Semaphore.create";
    { sim; cnt; blocked = Queue.create () }

  let p s =
    if s.cnt > 0 then s.cnt <- s.cnt - 1
    else suspend (fun resume -> Queue.add resume s.blocked)

  let v s =
    match Queue.take_opt s.blocked with
    | Some resume -> resume ()
    | None -> s.cnt <- s.cnt + 1

  let count s = s.cnt
  let waiters s = Queue.length s.blocked
end

module Ivar = struct
  type 'a state = Unset of (unit -> unit) Queue.t | Set of 'a
  type 'a ivar = { iv_sim : t; mutable state : 'a state }

  let create sim = { iv_sim = sim; state = Unset (Queue.create ()) }

  let fill iv x =
    match iv.state with
    | Set _ -> invalid_arg "Ivar.fill: already filled"
    | Unset waiters ->
        iv.state <- Set x;
        Queue.iter (fun resume -> resume ()) waiters

  let is_filled iv = match iv.state with Set _ -> true | Unset _ -> false

  let read iv =
    match iv.state with
    | Set x -> x
    | Unset waiters -> (
        suspend (fun resume -> Queue.add resume waiters);
        match iv.state with
        | Set x -> x
        | Unset _ -> assert false)

  let read_timeout iv d =
    match iv.state with
    | Set x -> Some x
    | Unset waiters ->
        suspend (fun resume ->
            let fired = ref false in
            let once () =
              if not !fired then begin
                fired := true;
                resume ()
              end
            in
            let ev = after iv.iv_sim d once in
            Queue.add
              (fun () ->
                if cancel ev then ();
                once ())
              waiters);
        (match iv.state with Set x -> Some x | Unset _ -> None)
end
