(** Ethernet device driver.

    One per (host, wire) pair.  Transmission is asynchronous: the
    calling shepherd process pays only the driver cost
    ([Device_send]) and the frame is queued for a transmitter fiber, so
    protocol processing of the next fragment overlaps serialization of
    the previous one — the pipelining that lets the throughput tests
    "drive the ethernet controller at its maximum rate" (section 4.1).

    On the receive side the device filters destination addresses in
    "hardware" (free), then dispatches an interrupt: a fresh shepherd
    fiber charges [Interrupt] and hands the frame to the handler the ETH
    protocol registered. *)

type t

val create : host:Host.t -> wire:Wire.t -> t
(** Attaches to [wire]; the device's unicast address is the host's
    ethernet address. *)

val host : t -> Host.t

val attachment : t -> Wire.attachment
(** The device's tap on the wire, for {!Wire.block_pair} and friends. *)

val transmit : t -> Msg.t -> unit
(** [transmit dev frame] queues a complete ethernet frame (header
    already pushed).  Must run in a fiber. *)

val set_handler : t -> (Msg.t -> unit) -> unit
(** Install the receive handler (the ETH protocol's entry point). *)

val set_promiscuous : t -> bool -> unit
(** Accept frames addressed to other stations too (test taps). *)

val eth_header_bytes : int
(** 14: destination (6) + source (6) + type (2). *)

val peek_dst : Msg.t -> Addr.Eth.t option
(** Read the destination address of a frame without consuming it;
    [None] for runt frames. *)

val tx_queue_length : t -> int
