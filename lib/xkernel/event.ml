type t = { mutable ev : Sim.event option; mutable done_ : bool }

let schedule host d f =
  Machine.charge_one host.Host.mach (Machine.Timer_op);
  let t = { ev = None; done_ = false } in
  t.ev <-
    Some
      (Sim.after (Host.sim host) d (fun () ->
           t.done_ <- true;
           f ()));
  t

let cancel host t =
  (* Cancel before charging: charging yields the fiber, and a due timer
     must not be able to fire in that window. *)
  let ok =
    if t.done_ then false
    else
      match t.ev with
      | None -> false
      | Some ev ->
          let ok = Sim.cancel ev in
          if ok then t.done_ <- true;
          ok
  in
  Machine.charge_one host.Host.mach (Machine.Timer_op);
  ok

let abort t =
  (* Crash teardown: cancel without charging the machine, so it is
     safe from a reboot hook running outside any fiber. *)
  if t.done_ then false
  else
    match t.ev with
    | None -> false
    | Some ev ->
        let ok = Sim.cancel ev in
        if ok then t.done_ <- true;
        ok

let cancelled_or_fired t = t.done_
