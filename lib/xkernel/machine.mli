(** Calibrated CPU cost model.

    The paper's measurements come from Sun 3/75 workstations; this
    repository reproduces the msec scale with a per-operation cost model
    while the protocol *behaviour* (packet counts, layer crossings,
    timeouts) comes from actually running the protocol code.  Each
    simulated host owns a {!t}; protocol code charges abstract
    operations ({!op}) against it, which advances virtual time while
    holding the host's single CPU.

    Calibration (see DESIGN.md §5) is anchored to the paper's published
    component costs — 0.11 msec minimum round-trip cost per layer, 0.06
    msec for a virtual protocol's per-message test, 0.37 msec for IP,
    CHANNEL's synchronisation cost — rather than to the table rows
    themselves, so the tables are genuine predictions of composition. *)

(** The buffer-management ablation of section 5 ("Potential Pitfalls of
    Layering"): allocating a buffer per pushed header cost 0.50 msec per
    layer; the pre-allocated header buffer costs 0.11. *)
type buffer_scheme = Prealloc | Per_header_alloc

type profile = {
  profile_name : string;
  layer_crossing : float;  (** one push or demux across a layer boundary *)
  virtual_op : float;  (** a virtual protocol's per-message test *)
  header_base : float;  (** fixed cost to encode or decode one header *)
  header_per_byte : float;
  checksum_per_byte : float;
  route_lookup : float;  (** IP routing decision *)
  reasm_lookup : float;  (** reassembly-table lookup *)
  frag_bookkeep : float;  (** fragment mask/cache bookkeeping *)
  process_switch : float;
  semaphore_op : float;
  timer_op : float;  (** registering or cancelling an event *)
  interrupt : float;  (** fixed receive-interrupt dispatch cost *)
  device_fixed : float;  (** fixed transmit cost in the driver *)
  device_per_byte : float;  (** DMA/copy cost, both directions *)
  syscall : float;  (** user/kernel boundary crossing *)
  os_per_message : float;
      (** per-message kernel overhead outside the protocols; zero in the
          x-kernel, large in the SunOS-socket profile *)
  alloc : float;  (** per-buffer allocation under {!Per_header_alloc} *)
  buffer_scheme : buffer_scheme;
}

val xkernel_sun3 : profile
(** The x-kernel on a Sun 3/75 — the profile behind every x-kernel
    number in the paper. *)

val sprite_kernel : profile
(** Heavier "native Sprite kernel" profile used for the N.RPC baseline
    row of Table I. *)

val sunos_socket : profile
(** SunOS 4.0 socket-layer profile used for the intro's UDP comparison. *)

val switch_fabric : profile
(** A switching fabric's per-port forwarding engine: fixed costs small
    enough that a 10 Mb/s wire's serialization time, not the forwarding
    CPU, bounds throughput (~25 us per minimum frame versus ~99 us of
    wire time).  The default profile for the switch ports of
    [World.create_switched]; end hosts keep {!xkernel_sun3}. *)

val with_buffer_scheme : buffer_scheme -> profile -> profile

val zero_cost : profile
(** All operations free: virtual time never advances.  Used by the
    wall-clock microbenchmarks, which measure the real OCaml cost of
    the infrastructure (e.g. that a layer crossing is one call). *)

type op =
  | Layer_crossing
  | Virtual_op
  | Header of int  (** encode or decode [n] header bytes *)
  | Checksum of int
  | Route_lookup
  | Reasm_lookup
  | Frag_bookkeep
  | Process_switch
  | Semaphore_op
  | Timer_op
  | Interrupt of int  (** receive [n] bytes off the device *)
  | Device_send of int  (** hand [n] bytes to the device *)
  | Syscall
  | Os_per_message
  | Busy of float  (** explicit CPU seconds (application work) *)

val op_cost : profile -> op -> float

type t
(** One host's CPU: a mutually exclusive resource on the virtual
    clock plus an accumulated-busy-time counter. *)

val create : Sim.t -> profile -> t
val sim : t -> Sim.t
val profile : t -> profile
val set_profile : t -> profile -> unit

val charge : t -> op list -> unit
(** [charge m ops] occupies the CPU for the summed cost of [ops]
    (blocking the calling fiber; contending fibers queue FIFO) and adds
    it to the busy-time counter.  Free when the total cost is zero. *)

val charge_one : t -> op -> unit
(** [charge_one m op] = [charge m [op]] without the per-call list — for
    per-event hot paths. *)

val cpu_seconds : t -> float
(** Total CPU time charged so far — the paper's "uses less CPU time"
    comparisons (sections 4.1, 4.2). *)

val reset_cpu_seconds : t -> unit
(** Zeroes both {!cpu_seconds} and {!cpu_wait_seconds}. *)

val cpu_wait_seconds : t -> float
(** Total time fibers spent queued for the CPU before their charges ran
    — the run-queue sojourn the overload experiments account against
    propagated deadlines. *)

val queue_depth : t -> int
(** Fibers currently on this CPU: the holder (if any) plus everyone
    queued behind it.  The load subsystem samples this as its
    server-side run-queue-depth gauge. *)
