(** The uniform protocol interface (section 2 of the paper).

    Every protocol — ethernet driver, IP, UDP, the virtual protocols,
    the RPC layers — is a {!t} supporting the same five operations:

    - [open_]: a high-level protocol actively creates a session;
    - [open_enable]: a high-level protocol passively registers with a
      lower one (server side);
    - [open_done]: completes passive session creation when a message
      arrives (invoked by the protocol's own [demux]);
    - [demux]: switches a message arriving from below to one of the
      protocol's sessions;
    - [control]: reads and sets object-dependent parameters.

    Sessions — run-time instances holding connection state — support
    [push] (send down), [pop] (deliver up, invoked by the owning
    protocol's [demux]), [control] and [close].

    Two architectural properties the paper depends on are enforced here:

    - {b Late binding}: [open_] takes the lower protocol object at run
      time; nothing about upper protocols is compiled into lower ones.
    - {b Light-weight layers}: {!push} and {!deliver} are single OCaml
      calls; the only cost they add is the calibrated
      [Layer_crossing] (or [Virtual_op]) charge, so "it costs only one
      procedure call to pass a message from a high-level protocol to a
      low-level protocol". *)

type t
(** A protocol object, instantiated on one host. *)

type session
(** A session object: an instance of a protocol created at run time by
    [open_] or [open_done]. *)

type ops = {
  open_ : upper:t -> Part.t -> session;
      (** Actively create a session.  [upper] is the invoking protocol —
          messages arriving on the session are delivered to it. *)
  open_enable : upper:t -> Part.t -> unit;
      (** Passively register: when a matching message arrives, the
          protocol completes session creation with [open_done] and
          delivers to [upper]. *)
  open_done : upper:t -> Part.t -> session;
      (** Complete passive creation.  Invoked by the protocol's own
          [demux]; exposed so tests can drive it directly. *)
  demux : lower:session -> Msg.t -> unit;
      (** Switch a message arriving from [lower] to one of this
          protocol's sessions (possibly creating it via [open_done]). *)
  p_control : Control.req -> Control.reply;
}

type session_ops = {
  push : Msg.t -> unit;
  pop : Msg.t -> unit;
      (** Invoked (via {!pop}) by the owning protocol's [demux]. *)
  s_control : Control.req -> Control.reply;
  close : unit -> unit;
}

val create : host:Host.t -> name:string -> ?virtual_:bool -> unit -> t
(** A fresh protocol object with no behaviour; {!set_ops} installs it.
    [virtual_] marks header-less virtual protocols, whose layer
    crossings are charged at the cheaper [Virtual_op] rate and which are
    drawn distinctly by {!pp_graph}. *)

val set_ops : t -> ops -> unit
(** Install behaviour.  Raises [Invalid_argument] if already set. *)

val name : t -> string
val host : t -> Host.t
val is_virtual : t -> bool

val stats : t -> Stats.t
(** The protocol's counter table, created (and registered globally as
    ["host/NAME"]) by {!create}.  {!push} and {!deliver} account layer
    crossings here (["pushes"], ["demuxes"], ["crossings"],
    ["push-bytes"], ["demux-bytes"]); protocol implementations add
    their own counters to the same table so one {!Stats.dump} shows
    everything. *)

val declare_below : t -> t list -> unit
(** Record the static protocol graph (who this protocol was configured
    on top of) — used only by {!pp_graph}, mirroring the configuration
    figures of the paper. *)

val below : t -> t list

(* Protocol operations.  Each checks that ops are installed. *)

val open_ : t -> upper:t -> Part.t -> session
val open_enable : t -> upper:t -> Part.t -> unit
val open_done : t -> upper:t -> Part.t -> session
val control : t -> Control.req -> Control.reply

val deliver : t -> lower:session -> Msg.t -> unit
(** [deliver p ~lower msg] invokes [p]'s [demux] from below, charging
    one receive-side layer crossing on [p]'s host and counting
    ["demuxes"]/["crossings"]/["demux-bytes"] in {!stats}.  This is the
    single procedure call between layers on the inbound path. *)

(* Session constructors and operations. *)

val make_session : t -> ?name:string -> session_ops -> session
(** [make_session p ops] is a session owned by [p].  [name] defaults to
    the protocol's name. *)

val session_name : session -> string
val session_proto : session -> t

val session_id : session -> int
(** A process-unique integer identifying this session — usable as a
    hash key where the session record itself cannot be (its closures
    rule out structural equality). *)

val push : session -> Msg.t -> unit
(** [push s msg] sends [msg] down through [s], charging one send-side
    layer crossing on the owning host and counting
    ["pushes"]/["crossings"]/["push-bytes"] in the owning protocol's
    {!stats}. *)

val pop : session -> Msg.t -> unit
(** [pop s msg] delivers [msg] up into [s]; charged as part of the
    [deliver] crossing, so it is free. *)

val session_control : session -> Control.req -> Control.reply
val close : session -> unit

val control_via :
  (Control.req -> Control.reply) list -> Control.req -> Control.reply
(** [control_via handlers req] tries each handler in order, returning
    the first non-[Unsupported] reply — how a layer forwards control
    operations it does not understand to the layer below (the mechanism
    behind the paper's "Information Loss" discussion). *)

val pp_graph : Format.formatter -> t list -> unit
(** Render the protocol graph rooted at the given top-level protocols as
    ASCII, virtual protocols marked with ["(virtual)"] — the
    configuration diagrams of Figures 1–3. *)
