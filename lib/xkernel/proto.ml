type t = {
  p_name : string;
  p_host : Host.t;
  virtual_ : bool;
  mutable p_below : t list;
  mutable p_ops : ops option;
  p_stats : Stats.t;
  (* Per-event accounting, pre-resolved once at create time so a layer
     crossing costs five increments rather than five string lookups. *)
  c_pushes : Stats.counter;
  c_demuxes : Stats.counter;
  c_crossings : Stats.counter;
  c_push_bytes : Stats.counter;
  c_demux_bytes : Stats.counter;
}

and ops = {
  open_ : upper:t -> Part.t -> session;
  open_enable : upper:t -> Part.t -> unit;
  open_done : upper:t -> Part.t -> session;
  demux : lower:session -> Msg.t -> unit;
  p_control : Control.req -> Control.reply;
}

and session = { s_name : string; s_id : int; s_proto : t; s_ops : session_ops }

and session_ops = {
  push : Msg.t -> unit;
  pop : Msg.t -> unit;
  s_control : Control.req -> Control.reply;
  close : unit -> unit;
}

let create ~host ~name ?(virtual_ = false) () =
  let p_stats = Stats.create ~name:(host.Host.name ^ "/" ^ name) () in
  {
    p_name = name;
    p_host = host;
    virtual_;
    p_below = [];
    p_ops = None;
    p_stats;
    c_pushes = Stats.counter p_stats "pushes";
    c_demuxes = Stats.counter p_stats "demuxes";
    c_crossings = Stats.counter p_stats "crossings";
    c_push_bytes = Stats.counter p_stats "push-bytes";
    c_demux_bytes = Stats.counter p_stats "demux-bytes";
  }

let set_ops p ops =
  match p.p_ops with
  | Some _ -> invalid_arg ("Proto.set_ops: ops already set for " ^ p.p_name)
  | None -> p.p_ops <- Some ops

let name p = p.p_name
let host p = p.p_host
let stats p = p.p_stats
let is_virtual p = p.virtual_
let declare_below p below = p.p_below <- below
let below p = p.p_below

let ops p =
  match p.p_ops with
  | Some ops -> ops
  | None -> invalid_arg ("Proto: no ops installed for " ^ p.p_name)

let open_ p ~upper part = (ops p).open_ ~upper part
let open_enable p ~upper part = (ops p).open_enable ~upper part
let open_done p ~upper part = (ops p).open_done ~upper part
let control p req = (ops p).p_control req

let crossing_op p =
  if p.virtual_ then Machine.Virtual_op else Machine.Layer_crossing

let deliver p ~lower msg =
  Stats.tick p.c_demuxes;
  Stats.tick p.c_crossings;
  Stats.bump p.c_demux_bytes (Msg.length msg);
  Machine.charge_one p.p_host.Host.mach (crossing_op p);
  (ops p).demux ~lower msg

let session_counter = ref 0

let make_session p ?name s_ops =
  Stdlib.incr session_counter;
  {
    s_name = Option.value name ~default:p.p_name;
    s_id = !session_counter;
    s_proto = p;
    s_ops;
  }

let session_name s = s.s_name
let session_proto s = s.s_proto
let session_id s = s.s_id

let push s msg =
  let p = s.s_proto in
  Stats.tick p.c_pushes;
  Stats.tick p.c_crossings;
  Stats.bump p.c_push_bytes (Msg.length msg);
  Machine.charge_one p.p_host.Host.mach (crossing_op p);
  s.s_ops.push msg

let pop s msg = s.s_ops.pop msg
let session_control s req = s.s_ops.s_control req
let close s = s.s_ops.close ()

let rec control_via handlers req =
  match handlers with
  | [] -> Control.Unsupported
  | h :: rest -> (
      match h req with
      | Control.Unsupported -> control_via rest req
      | reply -> reply)

let pp_graph fmt tops =
  let seen = Hashtbl.create 16 in
  let rec render indent p =
    let tag = if p.virtual_ then " (virtual)" else "" in
    if Hashtbl.mem seen (p.p_name, indent) then
      Format.fprintf fmt "%s%s%s [shared]@." indent p.p_name tag
    else begin
      Hashtbl.add seen (p.p_name, indent) ();
      Format.fprintf fmt "%s%s%s@." indent p.p_name tag;
      List.iter (render (indent ^ "  ")) p.p_below
    end
  in
  List.iter (render "") tops
