type fault = Drop | Duplicate | Delay of float | Corrupt of int

type stats = {
  frames : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  corrupted : int;
  delayed : int;
  partitioned : int;
  bytes : int;
}

let zero_stats =
  {
    frames = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    corrupted = 0;
    delayed = 0;
    partitioned = 0;
    bytes = 0;
  }

type attachment = { tap_id : int; recv : Msg.t -> unit }

(* Mirror handles into a registered per-wire table, resolved once at
   create time.  Only labelled wires pay for (or appear in) the
   registry: a multi-wire world would otherwise collide every wire's
   gauges on one key. *)
type lbl = {
  l_frames : Stats.counter;
  l_delivered : Stats.counter;
  l_dropped : Stats.counter;
  l_duplicated : Stats.counter;
  l_corrupted : Stats.counter;
  l_delayed : Stats.counter;
  l_partitioned : Stats.counter;
  l_bytes : Stats.counter;
}

type t = {
  w_sim : Sim.t;
  bandwidth : float;
  propagation : float;
  medium : Sim.Semaphore.sem;
  rng : Random.State.t;
  w_label : string option;
  lbl : lbl option;
  mutable taps : attachment list;
  mutable next_tap : int;
  mutable drop_rate : float;
  mutable dup_rate : float;
  mutable corrupt_rate : float;
  mutable reorder_rate : float;
  mutable reorder_jitter : float;
  mutable fault_hook : (int -> Msg.t -> fault list) option;
  mutable down : bool;
  blocked : (int * int, unit) Hashtbl.t; (* (src tap, dst tap) pairs *)
  mutable frame_count : int;
  mutable st : stats;
}

let create w_sim ?(bandwidth_bps = 10e6) ?(propagation = 5e-6) ?(seed = 42)
    ?label () =
  let lbl =
    match label with
    | None -> None
    | Some l ->
        let tbl = Stats.create ~name:("wire/" ^ l) () in
        Some
          {
            l_frames = Stats.counter tbl "frames";
            l_delivered = Stats.counter tbl "delivered";
            l_dropped = Stats.counter tbl "dropped";
            l_duplicated = Stats.counter tbl "duplicated";
            l_corrupted = Stats.counter tbl "corrupted";
            l_delayed = Stats.counter tbl "delayed";
            l_partitioned = Stats.counter tbl "partitioned";
            l_bytes = Stats.counter tbl "bytes";
          }
  in
  {
    w_sim;
    bandwidth = bandwidth_bps;
    propagation;
    medium = Sim.Semaphore.create w_sim 1;
    rng = Random.State.make [| seed |];
    w_label = label;
    lbl;
    taps = [];
    next_tap = 0;
    drop_rate = 0.;
    dup_rate = 0.;
    corrupt_rate = 0.;
    reorder_rate = 0.;
    reorder_jitter = 0.;
    fault_hook = None;
    down = false;
    blocked = Hashtbl.create 8;
    frame_count = 0;
    st = zero_stats;
  }

let sim w = w.w_sim
let bandwidth_bps w = w.bandwidth
let label w = w.w_label

let mirror w f =
  match w.lbl with None -> () | Some l -> Stats.tick (f l)

let attach w ~recv =
  let tap = { tap_id = w.next_tap; recv } in
  w.next_tap <- w.next_tap + 1;
  w.taps <- tap :: w.taps;
  tap

(* CRC (4) + preamble (8) + inter-frame gap (12), with the 64-byte
   minimum applying to header+payload+CRC. *)
let on_wire_bytes len = max (len + 4) 64 + 20

let set_drop_rate w r = w.drop_rate <- r
let set_dup_rate w r = w.dup_rate <- r
let set_corrupt_rate w r = w.corrupt_rate <- r

let set_reorder w ~rate ~jitter =
  w.reorder_rate <- rate;
  w.reorder_jitter <- jitter

let set_fault_hook w h = w.fault_hook <- h

(* Partitions.  Blocking is directional and per (source, destination)
   attachment pair; a network partition blocks both directions of every
   pair crossing the cut.  Suppressed deliveries are counted as
   [partitioned], not [dropped] — a partition is topology, not noise. *)
let block_pair w ~from ~to_ =
  Hashtbl.replace w.blocked (from.tap_id, to_.tap_id) ()

let unblock_pair w ~from ~to_ =
  Hashtbl.remove w.blocked (from.tap_id, to_.tap_id)

let unblock_all w = Hashtbl.reset w.blocked

let pair_blocked w ~from ~to_ =
  Hashtbl.mem w.blocked (from.tap_id, to_.tap_id)

(* Whole-wire cut: an unplugged access link.  Suppressed deliveries
   count as [partitioned] like any other topology fault; the
   transmitter still serializes (it cannot see the far end is gone). *)
let set_down w d = w.down <- d
let is_down w = w.down

let stats w = w.st
let reset_stats w = w.st <- zero_stats

let draw_faults w msg =
  let faults = ref [] in
  let flip rate = rate > 0. && Random.State.float w.rng 1. < rate in
  if flip w.drop_rate then faults := Drop :: !faults
  else begin
    if flip w.dup_rate then faults := Duplicate :: !faults;
    if flip w.reorder_rate then
      faults := Delay (Random.State.float w.rng w.reorder_jitter) :: !faults;
    if flip w.corrupt_rate && Msg.length msg > 0 then
      faults := Corrupt (Random.State.int w.rng (Msg.length msg)) :: !faults
  end;
  !faults

let transmit w ~from msg =
  let n = w.frame_count in
  w.frame_count <- n + 1;
  let wire_bytes = on_wire_bytes (Msg.length msg) in
  w.st <- { w.st with frames = w.st.frames + 1; bytes = w.st.bytes + wire_bytes };
  mirror w (fun l -> l.l_frames);
  (match w.lbl with
  | None -> ()
  | Some l -> Stats.bump l.l_bytes wire_bytes);
  Sim.Semaphore.p w.medium;
  Sim.delay w.w_sim (float_of_int (wire_bytes * 8) /. w.bandwidth);
  Sim.Semaphore.v w.medium;
  let faults =
    match w.fault_hook with
    | Some hook -> hook n msg
    | None -> draw_faults w msg
  in
  if List.mem Drop faults then begin
    w.st <- { w.st with dropped = w.st.dropped + 1 };
    mirror w (fun l -> l.l_dropped)
  end
  else begin
    let copies = ref 1 in
    let extra_delay = ref 0. in
    let delivered_msg = ref msg in
    let apply = function
      | Drop -> ()
      | Duplicate ->
          incr copies;
          w.st <- { w.st with duplicated = w.st.duplicated + 1 };
          mirror w (fun l -> l.l_duplicated)
      | Delay d ->
          extra_delay := !extra_delay +. d;
          w.st <- { w.st with delayed = w.st.delayed + 1 };
          mirror w (fun l -> l.l_delayed)
      | Corrupt off when Msg.length msg > 0 ->
          let off = off mod Msg.length msg in
          delivered_msg :=
            Msg.map_byte off (fun c -> Char.chr (Char.code c lxor 0xff)) !delivered_msg;
          w.st <- { w.st with corrupted = w.st.corrupted + 1 };
          mirror w (fun l -> l.l_corrupted)
      | Corrupt _ -> ()
    in
    List.iter apply faults;
    let deliver_to tap =
      if tap.tap_id <> from.tap_id then
        if w.down || Hashtbl.mem w.blocked (from.tap_id, tap.tap_id) then begin
          w.st <- { w.st with partitioned = w.st.partitioned + 1 };
          mirror w (fun l -> l.l_partitioned)
        end
        else
        (* Corruption damages the original transmission; a Duplicate is
           an independent clean copy.  [delivered] counts every copy
           actually handed to a tap. *)
        for copy = 1 to !copies do
          let m = if copy = 1 then !delivered_msg else msg in
          w.st <- { w.st with delivered = w.st.delivered + 1 };
          mirror w (fun l -> l.l_delivered);
          ignore
            (Sim.after w.w_sim (w.propagation +. !extra_delay) (fun () ->
                 tap.recv m))
        done
    in
    List.iter deliver_to w.taps
  end
