type req =
  | Get_mtu
  | Get_max_packet
  | Get_opt_packet
  | Get_max_msg_size
  | Get_my_host
  | Get_peer_host
  | Get_my_eth
  | Get_peer_eth
  | Get_my_port
  | Get_peer_port
  | Get_my_proto
  | Get_peer_proto
  | Resolve of Addr.Ip.t
  | Reverse_resolve of Addr.Eth.t
  | Is_local of Addr.Ip.t
  | Get_boot_id
  | Get_timeout
  | Set_timeout of float
  | Get_rto
  | Get_rto_backed
  | Get_srtt
  | Get_retries
  | Set_retries of int
  | Get_frag_size
  | Set_frag_size of int
  | Get_ttl
  | Set_ttl of int
  | Get_channel_count
  | Get_free_channels
  | Get_stat of string
  | Flush_cache
  | Get_rx_deadline
  | Reject_busy
  | Install_map of string
  | Get_map_version

type reply =
  | R_unit
  | R_int of int
  | R_float of float
  | R_bool of bool
  | R_ip of Addr.Ip.t
  | R_eth of Addr.Eth.t
  | R_string of string
  | Unsupported

let op_count = 34

let shape_failure what reply_name =
  failwith (Printf.sprintf "Control: expected %s, got %s" what reply_name)

let reply_name = function
  | R_unit -> "unit"
  | R_int _ -> "int"
  | R_float _ -> "float"
  | R_bool _ -> "bool"
  | R_ip _ -> "ip"
  | R_eth _ -> "eth"
  | R_string _ -> "string"
  | Unsupported -> "unsupported"

let int_exn = function R_int i -> i | r -> shape_failure "int" (reply_name r)

let float_exn = function
  | R_float f -> f
  | r -> shape_failure "float" (reply_name r)

let bool_exn = function
  | R_bool b -> b
  | r -> shape_failure "bool" (reply_name r)

let ip_exn = function R_ip a -> a | r -> shape_failure "ip" (reply_name r)
let eth_exn = function R_eth a -> a | r -> shape_failure "eth" (reply_name r)
let int_opt = function R_int i -> Some i | _ -> None
let eth_opt = function R_eth a -> Some a | _ -> None

let pp_req fmt req =
  let s =
    match req with
    | Get_mtu -> "Get_mtu"
    | Get_max_packet -> "Get_max_packet"
    | Get_opt_packet -> "Get_opt_packet"
    | Get_max_msg_size -> "Get_max_msg_size"
    | Get_my_host -> "Get_my_host"
    | Get_peer_host -> "Get_peer_host"
    | Get_my_eth -> "Get_my_eth"
    | Get_peer_eth -> "Get_peer_eth"
    | Get_my_port -> "Get_my_port"
    | Get_peer_port -> "Get_peer_port"
    | Get_my_proto -> "Get_my_proto"
    | Get_peer_proto -> "Get_peer_proto"
    | Resolve a -> Printf.sprintf "Resolve(%s)" (Addr.Ip.to_string a)
    | Reverse_resolve a ->
        Printf.sprintf "Reverse_resolve(%s)" (Addr.Eth.to_string a)
    | Is_local a -> Printf.sprintf "Is_local(%s)" (Addr.Ip.to_string a)
    | Get_boot_id -> "Get_boot_id"
    | Get_timeout -> "Get_timeout"
    | Set_timeout t -> Printf.sprintf "Set_timeout(%g)" t
    | Get_rto -> "Get_rto"
    | Get_rto_backed -> "Get_rto_backed"
    | Get_srtt -> "Get_srtt"
    | Get_retries -> "Get_retries"
    | Set_retries n -> Printf.sprintf "Set_retries(%d)" n
    | Get_frag_size -> "Get_frag_size"
    | Set_frag_size n -> Printf.sprintf "Set_frag_size(%d)" n
    | Get_ttl -> "Get_ttl"
    | Set_ttl n -> Printf.sprintf "Set_ttl(%d)" n
    | Get_channel_count -> "Get_channel_count"
    | Get_free_channels -> "Get_free_channels"
    | Get_stat s -> Printf.sprintf "Get_stat(%s)" s
    | Flush_cache -> "Flush_cache"
    | Get_rx_deadline -> "Get_rx_deadline"
    | Reject_busy -> "Reject_busy"
    | Install_map s -> Printf.sprintf "Install_map(%d bytes)" (String.length s)
    | Get_map_version -> "Get_map_version"
  in
  Format.pp_print_string fmt s

let pp_reply fmt r =
  match r with
  | R_unit -> Format.pp_print_string fmt "()"
  | R_int i -> Format.fprintf fmt "%d" i
  | R_float f -> Format.fprintf fmt "%g" f
  | R_bool b -> Format.fprintf fmt "%b" b
  | R_ip a -> Addr.Ip.pp fmt a
  | R_eth a -> Addr.Eth.pp fmt a
  | R_string s -> Format.pp_print_string fmt s
  | Unsupported -> Format.pp_print_string fmt "<unsupported>"
