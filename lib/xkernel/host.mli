(** Simulated hosts.

    A host bundles an identity (name, IP address, ethernet address), a
    CPU cost model and a boot identifier.  Protocol objects are
    instantiated per host; the two-machine experiments of the paper
    build two hosts on one wire.

    {!reboot} models a crash/restart: the boot identifier advances and
    every protocol that registered an {!at_reboot} hook discards its
    volatile state (outstanding transactions, at-most-once reply
    caches), as a real restart would. *)

type t = {
  name : string;
  ip : Addr.Ip.t;
  eth : Addr.Eth.t;
  mach : Machine.t;
  mutable boot_id : int;
      (** Monotonic boot identifier carried in Sprite RPC headers to
          give at-most-once semantics across server restarts. *)
  mutable reboot_hooks : (unit -> unit) list;
}

val create :
  Sim.t ->
  name:string ->
  ip:Addr.Ip.t ->
  eth:Addr.Eth.t ->
  ?profile:Machine.profile ->
  unit ->
  t
(** [create sim ~name ~ip ~eth ()] is a host with the default
    {!Machine.xkernel_sun3} profile. *)

val sim : t -> Sim.t

val at_reboot : t -> (unit -> unit) -> unit
(** [at_reboot h f] runs [f] on every subsequent {!reboot} of [h], in
    registration order.  Protocols use this to drop state a crash would
    lose.  [f] must not block or charge the machine: reboot can be
    invoked from outside any fiber. *)

val reboot : t -> unit
(** [reboot h] crashes and restarts [h]: increments [h.boot_id] — so
    servers restarted mid-call make clients observe an at-most-once
    failure rather than a re-execution — and runs the {!at_reboot}
    hooks, which tear down sessions and clear reply caches. *)

val pp : Format.formatter -> t -> unit
