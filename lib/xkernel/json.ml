type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      (* JSON has no NaN or infinity literals. *)
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.12g" f)
      else Buffer.add_string b "null"
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          emit b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          emit b (Str k);
          Buffer.add_char b ':';
          emit b v)
        kvs;
      Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 256 in
  emit b t;
  Buffer.contents b

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

(* A recursive-descent parser for the same subset the serializer emits
   (strict JSON; numbers become [Int] when they are plain integers).
   Lets the bench embed an earlier run as its baseline without growing
   a dependency. *)

exception Parse of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos >= n then fail "unexpected end" else s.[!pos] in
  let advance () = incr pos in
  let expect c = if peek () <> c then fail (Printf.sprintf "expected %c" c) else advance () in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let literal lit v =
    String.iter expect lit;
    v
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' -> (
          advance ();
          match peek () with
          | '"' -> advance (); Buffer.add_char b '"'; go ()
          | '\\' -> advance (); Buffer.add_char b '\\'; go ()
          | '/' -> advance (); Buffer.add_char b '/'; go ()
          | 'b' -> advance (); Buffer.add_char b '\b'; go ()
          | 'f' -> advance (); Buffer.add_char b '\012'; go ()
          | 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | 't' -> advance (); Buffer.add_char b '\t'; go ()
          | 'u' ->
              advance ();
              let code = ref 0 in
              for _ = 1 to 4 do
                let d =
                  match peek () with
                  | '0' .. '9' as c -> Char.code c - Char.code '0'
                  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                  | _ -> fail "bad \\u escape"
                in
                code := (!code * 16) + d;
                advance ()
              done;
              (* we only ever emit \u00xx control escapes *)
              if !code < 0x100 then Buffer.add_char b (Char.chr !code)
              else Buffer.add_char b '?';
              go ()
          | _ -> fail "bad escape")
      | c when Char.code c < 0x20 -> fail "raw control char in string"
      | c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    if not (is_num (peek ())) then fail "number expected";
    while !pos < n && is_num s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> Str (string_lit ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> number ()
    | c -> fail (Printf.sprintf "unexpected %c" c)
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then begin
      advance ();
      Obj []
    end
    else
      let rec members acc =
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            members ((k, v) :: acc)
        | '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected , or } in object"
      in
      members []
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then begin
      advance ();
      Arr []
    end
    else
      let rec elems acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            elems (v :: acc)
        | ']' ->
            advance ();
            Arr (List.rev (v :: acc))
        | _ -> fail "expected , or ] in array"
      in
      elems []
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> parse s
  | exception Sys_error e -> Error e
