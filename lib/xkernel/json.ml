type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      (* JSON has no NaN or infinity literals. *)
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.12g" f)
      else Buffer.add_string b "null"
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          emit b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          emit b (Str k);
          Buffer.add_char b ':';
          emit b v)
        kvs;
      Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 256 in
  emit b t;
  Buffer.contents b

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')
