(** HDR-style latency histogram: log-bucketed, fixed sub-bucket
    precision, O(1) record.

    Values are non-negative integers in a caller-chosen unit (the load
    subsystem records microseconds).  The value range is covered by
    power-of-two buckets each split into [2^sub_bucket_bits] linear
    sub-buckets, so the relative recording error is bounded by
    [2^-(sub_bucket_bits-1)] (< 0.8% at the default 8 bits) while the
    whole structure is one flat [int array] — the classic
    HdrHistogram layout, sized here for a simulator rather than a
    wall clock.

    Everything is deterministic: same records in any order give the
    same counts, percentiles and JSON. *)

type t

val create : ?sub_bucket_bits:int -> ?max_value:int -> unit -> t
(** [create ()] tracks values in [0, max_value] (default [10^9], i.e.
    1000 s when recording microseconds) with [sub_bucket_bits]
    (default 8, allowed 2-16) bits of sub-bucket resolution.  Values
    above [max_value] are clamped into the top bucket and counted in
    {!clamped}. *)

val record : t -> int -> unit
(** O(1).  Raises [Invalid_argument] on negative values. *)

val count : t -> int
val clamped : t -> int

val min_value : t -> int
(** Smallest recorded value ([0] when empty). *)

val max_value : t -> int
(** Largest recorded value, as clamped ([0] when empty). *)

val mean : t -> float
(** Arithmetic mean of recorded values ([0.] when empty). *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0, 100]: the highest value equivalent
    to the bucket holding the [ceil (p/100 * count)]-th recorded value
    — within one sub-bucket of the true quantile.  [0] when empty. *)

val merge_into : src:t -> dst:t -> unit
(** Add [src]'s counts into [dst].  Both histograms must share the
    same [sub_bucket_bits] and [max_value] (raises [Invalid_argument]
    otherwise).  [src] is unchanged. *)

val to_json : t -> Json.t
(** [{"count", "clamped", "min", "max", "mean", "p50", "p90", "p99",
    "p999"}] — values in the recording unit. *)
