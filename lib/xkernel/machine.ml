type buffer_scheme = Prealloc | Per_header_alloc

type profile = {
  profile_name : string;
  layer_crossing : float;
  virtual_op : float;
  header_base : float;
  header_per_byte : float;
  checksum_per_byte : float;
  route_lookup : float;
  reasm_lookup : float;
  frag_bookkeep : float;
  process_switch : float;
  semaphore_op : float;
  timer_op : float;
  interrupt : float;
  device_fixed : float;
  device_per_byte : float;
  syscall : float;
  os_per_message : float;
  alloc : float;
  buffer_scheme : buffer_scheme;
}

let us x = x *. 1e-6

let xkernel_sun3 =
  {
    profile_name = "xkernel-sun3";
    layer_crossing = us 22.;
    virtual_op = us 15.;
    header_base = us 5.;
    header_per_byte = us 0.4;
    checksum_per_byte = us 1.5;
    route_lookup = us 30.;
    reasm_lookup = us 15.;
    frag_bookkeep = us 10.;
    process_switch = us 140.;
    semaphore_op = us 25.;
    timer_op = us 6.;
    interrupt = us 185.;
    device_fixed = us 100.;
    device_per_byte = us 0.72;
    syscall = us 120.;
    os_per_message = 0.;
    alloc = us 97.;
    buffer_scheme = Prealloc;
  }

(* The Sprite kernel's RPC is "less structured": per-message costs are
   higher (general-purpose buffer management, a process switch on the
   receive path) even though it crosses fewer layers.  Fitted to the
   paper's published N.RPC numbers: 2.6 msec latency, ~700 KB/s,
   1.2 msec incremental cost per KB (Table I). *)
let sprite_kernel =
  {
    xkernel_sun3 with
    profile_name = "sprite-kernel";
    layer_crossing = us 60.;
    header_base = us 20.;
    header_per_byte = us 1.0;
    process_switch = us 250.;
    semaphore_op = us 40.;
    interrupt = us 225.;
    device_fixed = us 170.;
    device_per_byte = us 0.72;
    os_per_message = us 120.;
  }

(* SunOS 4.0 sockets: syscalls, socket-buffer copies and a wakeup/switch
   on each message.  Fitted to the intro's 5.36 msec UDP round trip. *)
let sunos_socket =
  {
    xkernel_sun3 with
    profile_name = "sunos-socket";
    layer_crossing = us 55.;
    header_base = us 12.;
    process_switch = us 300.;
    interrupt = us 250.;
    device_fixed = us 160.;
    syscall = us 350.;
    os_per_message = us 450.;
  }

(* A store-and-forward switching fabric: per-port forwarding engines
   with cut-through-ish fixed costs, so the wire's serialization time —
   not the forwarding CPU — is the bottleneck.  A minimum frame costs
   ~25 us of fabric CPU per hop versus ~99 us of 10 Mb/s wire time, so
   an N-port switch built from this profile forwards at line rate while
   still charging *some* CPU (an in-network computation layer spends
   fabric cycles to save server cycles, and the accounting must show
   both sides). *)
let switch_fabric =
  {
    profile_name = "switch-fabric";
    layer_crossing = us 1.;
    virtual_op = us 1.;
    header_base = us 0.5;
    header_per_byte = us 0.02;
    checksum_per_byte = us 0.05;
    route_lookup = us 2.;
    reasm_lookup = us 1.;
    frag_bookkeep = us 1.;
    process_switch = us 5.;
    semaphore_op = us 1.;
    timer_op = us 1.;
    interrupt = us 8.;
    device_fixed = us 5.;
    device_per_byte = us 0.036;
    syscall = us 5.;
    os_per_message = 0.;
    alloc = us 2.;
    buffer_scheme = Prealloc;
  }

let with_buffer_scheme buffer_scheme p = { p with buffer_scheme }

(* All-zero profile: virtual time never advances, so wall-clock
   microbenchmarks measure only the real cost of the infrastructure. *)
let zero_cost =
  {
    profile_name = "zero-cost";
    layer_crossing = 0.;
    virtual_op = 0.;
    header_base = 0.;
    header_per_byte = 0.;
    checksum_per_byte = 0.;
    route_lookup = 0.;
    reasm_lookup = 0.;
    frag_bookkeep = 0.;
    process_switch = 0.;
    semaphore_op = 0.;
    timer_op = 0.;
    interrupt = 0.;
    device_fixed = 0.;
    device_per_byte = 0.;
    syscall = 0.;
    os_per_message = 0.;
    alloc = 0.;
    buffer_scheme = Prealloc;
  }

type op =
  | Layer_crossing
  | Virtual_op
  | Header of int
  | Checksum of int
  | Route_lookup
  | Reasm_lookup
  | Frag_bookkeep
  | Process_switch
  | Semaphore_op
  | Timer_op
  | Interrupt of int
  | Device_send of int
  | Syscall
  | Os_per_message
  | Busy of float

let op_cost p = function
  | Layer_crossing -> p.layer_crossing
  | Virtual_op -> p.virtual_op
  | Header n ->
      let alloc =
        match p.buffer_scheme with
        | Prealloc -> 0.
        | Per_header_alloc -> p.alloc
      in
      p.header_base +. (float_of_int n *. p.header_per_byte) +. alloc
  | Checksum n -> float_of_int n *. p.checksum_per_byte
  | Route_lookup -> p.route_lookup
  | Reasm_lookup -> p.reasm_lookup
  | Frag_bookkeep -> p.frag_bookkeep
  | Process_switch -> p.process_switch
  | Semaphore_op -> p.semaphore_op
  | Timer_op -> p.timer_op
  | Interrupt n -> p.interrupt +. (float_of_int n *. p.device_per_byte)
  | Device_send n -> p.device_fixed +. (float_of_int n *. p.device_per_byte)
  | Syscall -> p.syscall
  | Os_per_message -> p.os_per_message
  | Busy s -> s

type t = {
  m_sim : Sim.t;
  cpu : Sim.Semaphore.sem;
  mutable prof : profile;
  mutable busy : float;
  mutable wait : float;
}

let create m_sim prof =
  { m_sim; cpu = Sim.Semaphore.create m_sim 1; prof; busy = 0.; wait = 0. }

let sim m = m.m_sim
let profile m = m.prof
let set_profile m p = m.prof <- p

let charge_cost m total =
  if total > 0. then begin
    let t0 = Sim.now m.m_sim in
    Sim.Semaphore.p m.cpu;
    (* Run-queue sojourn: time this charge spent waiting for the CPU,
       as opposed to using it — the server-side queueing-delay signal
       overload experiments account against deadlines. *)
    m.wait <- m.wait +. (Sim.now m.m_sim -. t0);
    Sim.delay m.m_sim total;
    m.busy <- m.busy +. total;
    Sim.Semaphore.v m.cpu
  end

let charge m ops =
  charge_cost m
    (List.fold_left (fun acc op -> acc +. op_cost m.prof op) 0. ops)

(* Single-op form for per-event hot paths (layer crossings, timer
   bookkeeping): no list or fold closure per call. *)
let charge_one m op = charge_cost m (op_cost m.prof op)

let cpu_seconds m = m.busy

let reset_cpu_seconds m =
  m.busy <- 0.;
  m.wait <- 0.

let cpu_wait_seconds m = m.wait

let queue_depth m =
  Sim.Semaphore.waiters m.cpu + (1 - Sim.Semaphore.count m.cpu)
