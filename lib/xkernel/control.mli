(** The uniform [control] operation.

    Both protocol and session objects support
    [control(opcode, buffer, length)] (section 2).  The paper observes
    (section 5, "Information Loss") that a relatively small number of
    control operations — "on the order of two dozen" — suffices for
    layered protocols to learn everything monolithic protocols read from
    shared data structures.  This module defines that vocabulary, typed:
    an opcode variant plus a typed reply, in place of C's untyped
    buffer. *)

type req =
  | Get_mtu  (** maximum transmission unit of the medium below *)
  | Get_max_packet  (** largest payload this session can carry *)
  | Get_opt_packet  (** largest payload that avoids fragmentation *)
  | Get_max_msg_size
      (** asked of an *upper* protocol by VIP at open time: the largest
          message the upper protocol will ever push (section 3.1) *)
  | Get_my_host
  | Get_peer_host
  | Get_my_eth
  | Get_peer_eth
  | Get_my_port
  | Get_peer_port
  | Get_my_proto  (** protocol number this session sends as *)
  | Get_peer_proto
  | Resolve of Addr.Ip.t  (** ARP: IP to ethernet address *)
  | Reverse_resolve of Addr.Eth.t
  | Is_local of Addr.Ip.t  (** reachable on the local wire? *)
  | Get_boot_id
  | Get_timeout
  | Set_timeout of float
  | Get_rto  (** base retransmission timeout: fragment-aware, pre-backoff *)
  | Get_rto_backed
      (** retransmission timeout the next transmission would arm,
          including any persistent (Karn) backoff multiplier *)
  | Get_srtt  (** smoothed round-trip estimate; 0 before any sample *)
  | Get_retries
  | Set_retries of int
  | Get_frag_size
  | Set_frag_size of int
  | Get_ttl
  | Set_ttl of int
  | Get_channel_count
  | Get_free_channels
  | Get_stat of string  (** named protocol counter *)
  | Flush_cache  (** drop cached sessions / tables *)
  | Get_rx_deadline
      (** asked of a server-side session by an admission layer: the
          absolute sim time at which the current request's propagated
          deadline expires ([R_float]); [Unsupported] or a negative
          value when the request carried no deadline *)
  | Reject_busy
      (** issued against a server-side session by an admission layer:
          answer the current request with an explicit busy-pushback
          error instead of delivering it *)
  | Install_map of string
      (** the MAP control-plane push: an encoded shard-map wire message
          (see [Rpc.Wire_fmt.Map]).  Shard-aware protocols decode it and
          install the map iff its (epoch, version) is newer than the one
          they hold; everything else answers [Unsupported] *)
  | Get_map_version
      (** version of the currently installed shard map ([R_int]);
          [Unsupported] when the object holds no map *)

type reply =
  | R_unit
  | R_int of int
  | R_float of float
  | R_bool of bool
  | R_ip of Addr.Ip.t
  | R_eth of Addr.Eth.t
  | R_string of string
  | Unsupported
      (** the object does not implement this opcode; callers treat this
          like the x-kernel's -1 return *)

val op_count : int
(** Number of distinct opcodes — the paper's "order of two dozen". *)

(** Accessors that raise [Failure] on a shape mismatch; protocol code
    uses them when it knows what a peer layer must answer. *)

val int_exn : reply -> int
val float_exn : reply -> float
val bool_exn : reply -> bool
val ip_exn : reply -> Addr.Ip.t
val eth_exn : reply -> Addr.Eth.t

val int_opt : reply -> int option
val eth_opt : reply -> Addr.Eth.t option

val pp_req : Format.formatter -> req -> unit
val pp_reply : Format.formatter -> reply -> unit
