type spec =
  | Partition of { a : int list; b : int list }
  | Burst_loss of float
  | Link_flap of { dev : int; period : float }
  | Delay_spike of float
  | Crash of int
  | Wire_down of string
  | Wire_loss of { wire : string; p : float }

type window = { from_t : float; until_t : float; spec : spec }
type plan = window list

let validate ~n ~wires plan =
  let dev i =
    if i < 0 || i >= n then
      invalid_arg (Printf.sprintf "Chaos: device index %d out of range" i)
  in
  let named name =
    if not (List.mem_assoc name wires) then
      invalid_arg (Printf.sprintf "Chaos: unknown wire %S" name)
  in
  List.iter
    (fun w ->
      if w.until_t < w.from_t then
        invalid_arg "Chaos: window with until_t < from_t";
      match w.spec with
      | Partition { a; b } ->
          List.iter dev a;
          List.iter dev b
      | Burst_loss p ->
          if p < 0. || p > 1. then
            invalid_arg "Chaos: loss probability outside [0, 1]"
      | Link_flap { dev = d; period } ->
          dev d;
          if period <= 0. then invalid_arg "Chaos: nonpositive flap period"
      | Delay_spike d -> if d < 0. then invalid_arg "Chaos: negative delay"
      | Crash d -> dev d
      | Wire_down name -> named name
      | Wire_loss { wire = name; p } ->
          named name;
          if p < 0. || p > 1. then
            invalid_arg "Chaos: loss probability outside [0, 1]")
    plan

let apply ?(seed = 7) ?(wires = []) ~wire ~devices plan =
  validate ~n:(Array.length devices) ~wires plan;
  let sim = Wire.sim wire in
  let at t f =
    let d = t -. Sim.now sim in
    if d <= 0. then f () else ignore (Sim.after sim d f)
  in
  let tap i = Netdev.attachment devices.(i) in
  (* Both directions of one pair. *)
  let set_pair op i j =
    if i <> j then begin
      op wire ~from:(tap i) ~to_:(tap j);
      op wire ~from:(tap j) ~to_:(tap i)
    end
  in
  let set_cut op a b =
    List.iter (fun i -> List.iter (fun j -> set_pair op i j) b) a
  in
  (* [dev] against everyone else. *)
  let set_link op d =
    Array.iteri (fun j _ -> set_pair op d j) devices
  in
  List.iter
    (fun w ->
      match w.spec with
      | Partition { a; b } ->
          at w.from_t (fun () -> set_cut Wire.block_pair a b);
          at w.until_t (fun () -> set_cut Wire.unblock_pair a b)
      | Link_flap { dev; period } ->
          (* Down for the first half of each period, up for the second;
             guaranteed back up when the window closes. *)
          let t = ref w.from_t in
          while !t < w.until_t do
            at !t (fun () -> set_link Wire.block_pair dev);
            at (min (!t +. (period /. 2.)) w.until_t) (fun () ->
                set_link Wire.unblock_pair dev);
            t := !t +. period
          done
      | Crash d -> at w.from_t (fun () -> Host.reboot (Netdev.host devices.(d)))
      | Wire_down name ->
          (* Unplug the named access link for the window. *)
          let target = List.assoc name wires in
          at w.from_t (fun () -> Wire.set_down target true);
          at w.until_t (fun () -> Wire.set_down target false)
      | Burst_loss _ | Delay_spike _ | Wire_loss _ -> ())
    plan;
  (* Loss bursts and delay spikes need a per-frame decision, so they
     compile to a fault hook; everything above is pure scheduling. *)
  let hooked =
    List.filter
      (fun w ->
        match w.spec with Burst_loss _ | Delay_spike _ -> true | _ -> false)
      plan
  in
  if hooked <> [] then begin
    let rng = Random.State.make [| seed |] in
    Wire.set_fault_hook wire
      (Some
         (fun _n msg ->
           let t = Sim.now sim in
           let active w = w.from_t <= t && t < w.until_t in
           let burst =
             List.find_map
               (fun w ->
                 match w.spec with
                 | Burst_loss p when active w -> Some p
                 | _ -> None)
               hooked
           in
           let spike =
             List.fold_left
               (fun acc w ->
                 match w.spec with
                 | Delay_spike d when active w -> acc +. d
                 | _ -> acc)
               0. hooked
           in
           (* Background faults still apply, except a burst window
              replaces the background drop decision with its own. *)
           let faults = ref (Wire.draw_faults wire msg) in
           if spike > 0. then faults := Wire.Delay spike :: !faults;
           (match burst with
           | Some p ->
               faults := List.filter (fun f -> f <> Wire.Drop) !faults;
               if Random.State.float rng 1. < p then
                 faults := Wire.Drop :: !faults
           | None -> ());
           !faults))
  end;
  (* Named-wire loss is the same per-frame decision on a *different*
     wire, so each named wire with loss windows gets its own hook (and
     its own deterministic rng stream). *)
  let loss_names =
    List.fold_left
      (fun acc w ->
        match w.spec with
        | Wire_loss { wire = name; _ } when not (List.mem name acc) ->
            name :: acc
        | _ -> acc)
      [] plan
    |> List.rev
  in
  List.iteri
    (fun i name ->
      let target = List.assoc name wires in
      let windows =
        List.filter_map
          (fun w ->
            match w.spec with
            | Wire_loss { wire = n; p } when n = name ->
                Some (w.from_t, w.until_t, p)
            | _ -> None)
          plan
      in
      let rng = Random.State.make [| seed + 101 + i |] in
      Wire.set_fault_hook target
        (Some
           (fun _n msg ->
             let t = Sim.now sim in
             let p =
               List.find_map
                 (fun (from_t, until_t, p) ->
                   if from_t <= t && t < until_t then Some p else None)
                 windows
             in
             let faults = ref (Wire.draw_faults target msg) in
             (match p with
             | Some p ->
                 faults := List.filter (fun f -> f <> Wire.Drop) !faults;
                 if Random.State.float rng 1. < p then
                   faults := Wire.Drop :: !faults
             | None -> ());
             !faults)))
    loss_names

let spec_json = function
  | Partition { a; b } ->
      [
        ("spec", Json.Str "partition");
        ("a", Json.Arr (List.map (fun i -> Json.Int i) a));
        ("b", Json.Arr (List.map (fun i -> Json.Int i) b));
      ]
  | Burst_loss p -> [ ("spec", Json.Str "burst_loss"); ("p", Json.Float p) ]
  | Link_flap { dev; period } ->
      [
        ("spec", Json.Str "link_flap");
        ("dev", Json.Int dev);
        ("period", Json.Float period);
      ]
  | Delay_spike d ->
      [ ("spec", Json.Str "delay_spike"); ("delay", Json.Float d) ]
  | Crash d -> [ ("spec", Json.Str "crash"); ("dev", Json.Int d) ]
  | Wire_down name -> [ ("spec", Json.Str "wire_down"); ("wire", Json.Str name) ]
  | Wire_loss { wire; p } ->
      [
        ("spec", Json.Str "wire_loss");
        ("wire", Json.Str wire);
        ("p", Json.Float p);
      ]

let to_json plan =
  Json.Arr
    (List.map
       (fun w ->
         Json.Obj
           (("from", Json.Float w.from_t)
           :: ("until", Json.Float w.until_t)
           :: spec_json w.spec))
       plan)
