type t =
  | Empty
  | Leaf of { data : string; off : int; len : int }
  | Cat of { left : t; right : t; len : int }

let empty = Empty
let length = function Empty -> 0 | Leaf l -> l.len | Cat c -> c.len
let is_empty m = length m = 0

let leaf data off len =
  if len = 0 then Empty else Leaf { data; off; len }

let of_string s = leaf s 0 (String.length s)

let fill n c =
  if n < 0 then invalid_arg "Msg.fill";
  if n = 0 then Empty
  else begin
    (* Share one modest chunk across the whole message so that large
       test payloads do not allocate their full size. *)
    let chunk_len = min n 4096 in
    let chunk = String.make chunk_len c in
    let rec build remaining =
      if remaining <= chunk_len then leaf chunk 0 remaining
      else
        let half = remaining / 2 in
        let left = build half and right = build (remaining - half) in
        Cat { left; right; len = remaining }
    in
    build n
  end

let append a b =
  match (a, b) with
  | Empty, m | m, Empty -> m
  | _ -> Cat { left = a; right = b; len = length a + length b }

(* Header push/pop is the per-layer hot path: every protocol prepends a
   small encoded header on send and strips it on receive.  Small
   combined leaves are flattened instead of building a [Cat] spine, so
   a null call's message stays a single leaf through the whole stack
   and [pop] usually returns the pushed string without copying. *)
let small_leaf = 32

let push m h =
  let hl = String.length h in
  if hl = 0 then m
  else
    match m with
    | Empty -> Leaf { data = h; off = 0; len = hl }
    | Leaf l when hl + l.len <= small_leaf ->
        let b = Bytes.create (hl + l.len) in
        Bytes.blit_string h 0 b 0 hl;
        Bytes.blit_string l.data l.off b hl l.len;
        Leaf { data = Bytes.unsafe_to_string b; off = 0; len = hl + l.len }
    | _ -> Cat { left = Leaf { data = h; off = 0; len = hl }; right = m; len = hl + length m }

(* Fold over the leaf substrings of [m] in order. *)
let rec fold_leaves f acc = function
  | Empty -> acc
  | Leaf l -> f acc l.data l.off l.len
  | Cat c -> fold_leaves f (fold_leaves f acc c.left) c.right

let to_string m =
  match m with
  | Empty -> ""
  | Leaf l ->
      if l.off = 0 && l.len = String.length l.data then l.data
      else String.sub l.data l.off l.len
  | Cat _ ->
      let buf = Buffer.create (length m) in
      let add () data off len = Buffer.add_substring buf data off len in
      fold_leaves add () m;
      Buffer.contents buf

let rec take m n =
  if n <= 0 then Empty
  else
    match m with
    | Empty -> Empty
    | Leaf l -> if n >= l.len then m else leaf l.data l.off n
    | Cat c ->
        let ll = length c.left in
        if n <= ll then take c.left n
        else if n >= c.len then m
        else append c.left (take c.right (n - ll))

let rec drop m n =
  if n <= 0 then m
  else
    match m with
    | Empty -> Empty
    | Leaf l -> if n >= l.len then Empty else leaf l.data (l.off + n) (l.len - n)
    | Cat c ->
        let ll = length c.left in
        if n >= c.len then Empty
        else if n >= ll then drop c.right (n - ll)
        else append (drop c.left n) c.right

let split m n =
  if n < 0 || n > length m then invalid_arg "Msg.split";
  (take m n, drop m n)

let sub m off len =
  if off < 0 || len < 0 || off + len > length m then invalid_arg "Msg.sub";
  take (drop m off) len

(* The first [n] bytes of a leaf as a string — zero-copy when the leaf
   is exactly a previously pushed header. *)
let leaf_prefix data off n =
  if off = 0 && n = String.length data then data else String.sub data off n

let pop m n =
  if n < 0 || length m < n then None
  else
    match m with
    | Leaf l when l.len >= n ->
        Some (leaf_prefix l.data l.off n, leaf l.data (l.off + n) (l.len - n))
    | Cat { left = Leaf l; right; len } when l.len >= n ->
        let rest =
          if l.len = n then right
          else
            Cat
              {
                left = Leaf { data = l.data; off = l.off + n; len = l.len - n };
                right;
                len = len - n;
              }
        in
        Some (leaf_prefix l.data l.off n, rest)
    | _ ->
        let hdr, rest = split m n in
        Some (to_string hdr, rest)

let equal a b = length a = length b && String.equal (to_string a) (to_string b)

let map_byte i f m =
  if i < 0 || i >= length m then invalid_arg "Msg.map_byte";
  let before, rest = split m i in
  let byte, after = split rest 1 in
  let c = f (to_string byte).[0] in
  append before (append (of_string (String.make 1 c)) after)

let pp fmt m =
  let s = to_string m in
  let prefix_len = min 16 (String.length s) in
  let hex = Buffer.create (prefix_len * 2) in
  String.iter
    (fun c -> Buffer.add_string hex (Printf.sprintf "%02x" (Char.code c)))
    (String.sub s 0 prefix_len);
  Format.fprintf fmt "<msg len=%d %s%s>" (length m) (Buffer.contents hex)
    (if String.length s > prefix_len then "..." else "")

let pp_hex fmt m =
  let s = to_string m in
  String.iteri
    (fun i c ->
      if i > 0 && i mod 16 = 0 then Format.pp_print_newline fmt ();
      Format.fprintf fmt "%02x " (Char.code c))
    s
