(** The x-kernel event (timer) library.

    Thin veneer over {!Sim} using the x-kernel's vocabulary: protocols
    schedule a handler to run after a delay and may cancel it before it
    fires — the mechanism behind every retransmission timer in the RPC
    layers.  A charged [Timer_op] accounts for the bookkeeping cost on
    the host that owns the timer. *)

type t
(** A scheduled event handle. *)

val schedule : Host.t -> float -> (unit -> unit) -> t
(** [schedule host d f] runs [f] (in a fresh fiber) after [d] virtual
    seconds, charging one [Timer_op] to [host] now. *)

val cancel : Host.t -> t -> bool
(** [cancel host ev] cancels [ev], charging one [Timer_op]; [false] if
    the event already fired or was cancelled. *)

val abort : t -> bool
(** Like {!cancel} but free: no [Timer_op] is charged and no fiber is
    required.  For crash teardown ({!Host.at_reboot} hooks), where the
    machine is not executing normally. *)

val cancelled_or_fired : t -> bool
