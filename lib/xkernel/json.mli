(** Minimal JSON documents.

    Just enough to export measurement rows and the {!Stats} registry —
    a value type plus a serializer; no parsing, no external
    dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values serialize as [null] *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with standard string escaping. *)

val write_file : string -> t -> unit
(** [write_file path t] writes [to_string t] plus a trailing newline. *)

val parse : string -> (t, string) result
(** Strict parser for the subset {!to_string} emits.  Plain integer
    numbers come back as [Int], everything else numeric as [Float]. *)

val parse_file : string -> (t, string) result
(** [parse_file path] reads and {!parse}s a whole file. *)
