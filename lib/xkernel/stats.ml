(* Counters are interned: a [counter] handle is the table entry itself,
   so hot paths resolve the string name once (at protocol-open time)
   and each event costs one unboxed increment instead of a string hash
   and bucket walk.  [live] records whether the counter has ever been
   touched through the public API — dumps filter on it, so a
   pre-resolved but never-used handle stays invisible exactly like a
   key that was never added to the old string-keyed table. *)

type counter = { mutable v : int; mutable live : bool }
type t = { tbl : (string, counter) Hashtbl.t; s_name : string option }

(* Named tables, in creation order.  A plain list: benches create many
   worlds per process, so duplicate names are expected and kept.  The
   index maps each name to its first registration, giving [find] an
   O(1) lookup with the same first-registered-wins answer as folding
   over the list. *)
let registry : t list ref = ref []
let index : (string, t) Hashtbl.t = Hashtbl.create 64

let create ?name () =
  let t = { tbl = Hashtbl.create 16; s_name = name } in
  (match name with
  | Some n ->
      registry := t :: !registry;
      if not (Hashtbl.mem index n) then Hashtbl.add index n t
  | None -> ());
  t

let name t = t.s_name

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some c -> c
  | None ->
      let c = { v = 0; live = false } in
      Hashtbl.add t.tbl name c;
      c

let tick c =
  c.v <- c.v + 1;
  c.live <- true

let bump c n =
  c.v <- c.v + n;
  c.live <- true

let value c = c.v

let add t name n = bump (counter t name) n
let incr t name = tick (counter t name)

let set t name v =
  let c = counter t name in
  c.v <- v;
  c.live <- true

let get t name =
  match Hashtbl.find_opt t.tbl name with Some c -> c.v | None -> 0

(* Zero in place rather than emptying the table: outstanding handles
   must keep pointing at the live entries. *)
let reset t =
  Hashtbl.iter
    (fun _ c ->
      c.v <- 0;
      c.live <- false)
    t.tbl

let to_list t =
  Hashtbl.fold (fun k c acc -> if c.live then (k, c.v) :: acc else acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let registered () =
  List.rev_map (fun t -> (Option.get t.s_name, t)) !registry

let find name = Hashtbl.find_opt index name

let reset_registry () =
  registry := [];
  Hashtbl.reset index

let dump () = List.map (fun (n, t) -> (n, to_list t)) (registered ())

let json () =
  Json.Arr
    (List.map
       (fun (n, t) ->
         Json.Obj
           [
             ("name", Json.Str n);
             ( "counters",
               Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (to_list t))
             );
           ])
       (registered ()))

let to_json () = Json.to_string (json ())

let control t = function
  | Control.Get_stat name -> Control.R_int (get t name)
  | Control.Flush_cache ->
      reset t;
      Control.R_unit
  | _ -> Control.Unsupported
