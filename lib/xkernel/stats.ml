type t = { tbl : (string, int) Hashtbl.t; s_name : string option }

(* Named tables, in creation order.  A plain list: benches create many
   worlds per process, so duplicate names are expected and kept. *)
let registry : t list ref = ref []

let create ?name () =
  let t = { tbl = Hashtbl.create 16; s_name = name } in
  (match name with Some _ -> registry := t :: !registry | None -> ());
  t

let name t = t.s_name

let add t name n =
  let cur = Option.value (Hashtbl.find_opt t.tbl name) ~default:0 in
  Hashtbl.replace t.tbl name (cur + n)

let incr t name = add t name 1
let set t name v = Hashtbl.replace t.tbl name v
let get t name = Option.value (Hashtbl.find_opt t.tbl name) ~default:0
let reset t = Hashtbl.reset t.tbl

let to_list t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let registered () =
  List.rev_map (fun t -> (Option.get t.s_name, t)) !registry

let find name =
  (* First registered wins, so a freshly-reset registry gives
     deterministic lookups even if names repeat later. *)
  List.fold_left
    (fun acc t -> match acc with Some _ -> acc | None when t.s_name = Some name -> Some t | None -> acc)
    None (List.rev !registry)

let reset_registry () = registry := []
let dump () = List.map (fun (n, t) -> (n, to_list t)) (registered ())

let json () =
  Json.Arr
    (List.map
       (fun (n, t) ->
         Json.Obj
           [
             ("name", Json.Str n);
             ( "counters",
               Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (to_list t))
             );
           ])
       (registered ()))

let to_json () = Json.to_string (json ())

let control t = function
  | Control.Get_stat name -> Control.R_int (get t name)
  | Control.Flush_cache ->
      reset t;
      Control.R_unit
  | _ -> Control.Unsupported
