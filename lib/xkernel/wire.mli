(** Shared 10 Mb/s ethernet medium.

    Models the isolated ethernet of the paper's testbed: half-duplex
    serialization at a configurable bandwidth, small propagation delay,
    broadcast delivery to every attached device, and a fault injector
    (drop / duplicate / extra delay / byte corruption) for the lossy
    experiments and tests.

    All randomness comes from a seeded [Random.State], so every
    experiment is deterministic. *)

type t

type attachment
(** One device's connection to the wire. *)

val create :
  Sim.t ->
  ?bandwidth_bps:float ->
  ?propagation:float ->
  ?seed:int ->
  ?label:string ->
  unit ->
  t
(** Defaults: 10 Mb/s, 5 microseconds propagation, seed 42.

    With [~label], the wire also registers a [Stats] table named
    ["wire/<label>"] mirroring the {!stats} counters ([frames],
    [bytes], [delivered], [dropped], [duplicated], [corrupted],
    [delayed], [partitioned]) — distinct registry keys for multi-wire
    worlds, where every wire would otherwise be invisible in a
    registry dump.  Unlabelled wires register nothing, keeping
    single-wire worlds' registry output unchanged. *)

val sim : t -> Sim.t

val label : t -> string option

val bandwidth_bps : t -> float
(** Configured serialization rate.  Together with {!stats}'s [bytes]
    this turns on-wire byte times into a utilization figure. *)

val attach : t -> recv:(Msg.t -> unit) -> attachment
(** [attach w ~recv] connects a device; [recv] is invoked (in a fresh
    fiber, after propagation) for every frame any *other* device
    transmits.  Address filtering is the device's job, as in real
    ethernet hardware. *)

val transmit : t -> from:attachment -> Msg.t -> unit
(** [transmit w ~from frame] serializes [frame] onto the medium
    (blocking the calling fiber for the serialization time; concurrent
    transmitters queue) and delivers it to all other attachments.
    Must run in a fiber. *)

val on_wire_bytes : int -> int
(** [on_wire_bytes len] is the number of byte times a [len]-byte frame
    occupies, including CRC, minimum-frame padding, preamble and
    inter-frame gap. *)

(** Fault injection. *)

type fault =
  | Drop
  | Duplicate
  | Delay of float  (** extra delivery delay: reordering *)
  | Corrupt of int  (** flip the byte at this offset *)

val set_drop_rate : t -> float -> unit
val set_dup_rate : t -> float -> unit
val set_corrupt_rate : t -> float -> unit

val set_reorder : t -> rate:float -> jitter:float -> unit
(** With probability [rate], delay a frame by a uniform extra time in
    [0, jitter] — enough to overtake later frames. *)

val set_fault_hook : t -> (int -> Msg.t -> fault list) option -> unit
(** Deterministic override: given the frame's sequence number (counting
    from 0) and contents, return the faults to apply.  When set, the
    probabilistic knobs are ignored. *)

val draw_faults : t -> Msg.t -> fault list
(** Sample the probabilistic knobs once, advancing the wire's RNG.  A
    custom fault hook that wants to {e add} to the background fault
    model (rather than replace it) calls this and appends. *)

(** {2 Partitions}

    Directional per-(source, destination) attachment blocking, the
    mechanism under {!Chaos} partitions and link flaps.  A suppressed
    delivery counts as [partitioned] in {!stats} — topology, not
    noise — and is invisible to the transmitter, exactly like a frame
    lost beyond a dead bridge. *)

val block_pair : t -> from:attachment -> to_:attachment -> unit
val unblock_pair : t -> from:attachment -> to_:attachment -> unit
val unblock_all : t -> unit
val pair_blocked : t -> from:attachment -> to_:attachment -> bool

val set_down : t -> bool -> unit
(** Cut (or restore) the whole wire: an unplugged access link.  While
    down, every delivery is suppressed and counted [partitioned];
    transmitters still serialize and count [frames] — a sender cannot
    see that the far end is gone.  The mechanism under {!Chaos}'s
    named-wire cuts on multi-wire topologies. *)

val is_down : t -> bool

type stats = {
  frames : int;  (** transmissions attempted *)
  delivered : int;  (** per-receiver deliveries *)
  dropped : int;
  duplicated : int;
  corrupted : int;
  delayed : int;
  partitioned : int;  (** deliveries suppressed by {!block_pair} *)
  bytes : int;  (** on-wire byte times consumed *)
}

val stats : t -> stats
val reset_stats : t -> unit
