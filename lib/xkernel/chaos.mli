(** Scripted fault injection.

    A chaos {!plan} is a declarative, seeded schedule of network and
    host faults — time-windowed partitions, loss bursts, link flaps,
    delay spikes and host crashes — compiled onto {!Wire} primitives
    and simulator events.  The same plan with the same seed produces
    bit-identical runs, so robustness scenarios are as reproducible as
    the paper's timing experiments.

    Device and host indices refer to positions in the [devices] array
    handed to {!apply}. *)

type spec =
  | Partition of { a : int list; b : int list }
      (** Cut the network between device sets [a] and [b]: both
          directions of every (a, b) pair are blocked for the window. *)
  | Burst_loss of float
      (** Drop each frame with this probability during the window,
          superseding the wire's background drop rate. *)
  | Link_flap of { dev : int; period : float }
      (** [dev]'s link goes down for the first half of each [period],
          up for the second, repeating across the window. *)
  | Delay_spike of float
      (** Add this much extra delivery delay to every frame during the
          window (congestion). *)
  | Crash of int
      (** Reboot [dev]'s host at the window's start ([until_t] is
          ignored); sessions, reply caches and timers on that host die
          with it. *)
  | Wire_down of string
      (** Unplug the named wire for the window ({!Wire.set_down}): every
          delivery on it is suppressed and counted [partitioned].  Names
          resolve through [apply]'s [?wires] argument — the per-port
          access links of a switched topology. *)
  | Wire_loss of { wire : string; p : float }
      (** Drop each frame on the named wire with probability [p] during
          the window, superseding that wire's background drop rate. *)

type window = { from_t : float; until_t : float; spec : spec }
(** Absolute virtual times; the window is active on [\[from_t,
    until_t)]. *)

type plan = window list

val apply :
  ?seed:int ->
  ?wires:(string * Wire.t) list ->
  wire:Wire.t ->
  devices:Netdev.t array ->
  plan ->
  unit
(** Compile [plan] onto [wire]: partitions and flaps schedule
    {!Wire.block_pair}/{!Wire.unblock_pair} events, crashes schedule
    {!Host.reboot}, and — only when the plan contains [Burst_loss] or
    [Delay_spike] windows — a fault hook is installed that applies
    those inside their windows and falls through to the wire's
    probabilistic knobs ({!Wire.draw_faults}) outside them.

    [?wires] names additional wires for [Wire_down]/[Wire_loss] specs
    (a switched topology's per-port access links; see
    [World.switched_wires]).  [Wire_down] schedules {!Wire.set_down};
    [Wire_loss] installs a per-frame fault hook on the named wire, with
    an rng stream derived from [seed] per wire.

    Must be called before [Sim.run], with the simulator at a time no
    later than any window's [from_t].

    @raise Invalid_argument on an out-of-range device index, a wire
    name absent from [?wires], [until_t < from_t], a nonpositive flap
    period, or a loss probability outside [0, 1]. *)

val to_json : plan -> Json.t
(** The plan as a JSON array, one object per window:
    [{"from": t, "until": t, "spec": "partition", ...spec fields}]. *)
