(** Discrete-event simulator with light-weight processes.

    The x-kernel runs protocols with shepherd processes, semaphores and
    an event (timer) library.  This module reproduces that execution
    model on a virtual clock: processes are OCaml 5 effect-based fibers
    that can [delay], block on {!Semaphore}s and wait on {!Ivar}s; the
    scheduler advances virtual time from event to event.

    All blocking operations ([delay], [Semaphore.p], [Ivar.read], …)
    must be called from inside a fiber started with {!spawn} (or from a
    timer callback, which runs as a fiber); calling them elsewhere
    raises [Not_in_fiber]. *)

type t
(** A simulator instance: virtual clock plus pending-event queue. *)

exception Not_in_fiber
(** Raised when a blocking operation is performed outside any fiber. *)

exception Stalled of string
(** Raised by {!run} when [max_events] is exceeded — a runaway-protocol
    backstop for tests. *)

val create : ?max_events:int -> ?seed:int -> unit -> t
(** [create ()] is a fresh simulator at time 0.  [max_events] (default
    10 million) bounds the total number of events one {!run} may
    process.  [seed] (default 42) seeds {!rng}. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val rng : t -> Random.State.t
(** The simulator's seeded random state.  Protocol-level randomness
    (retransmission jitter, chaos plans) draws from here so whole runs
    stay bit-reproducible; nothing in this library touches the global
    [Random] state. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** [spawn sim f] schedules a new fiber running [f] at the current
    virtual time.  Exceptions escaping [f] are logged and re-raised out
    of {!run}. *)

val delay : t -> float -> unit
(** [delay sim d] suspends the calling fiber for [d] virtual seconds. *)

val yield : t -> unit
(** [yield sim] reschedules the calling fiber at the current time,
    letting other ready fibers run first. *)

type event
(** A cancellable scheduled event — the x-kernel event library's
    [evSchedule] handle. *)

val after : t -> float -> (unit -> unit) -> event
(** [after sim d f] schedules [f] to run (as a fiber) [d] seconds from
    now.  Timer callbacks may themselves block. *)

val cancel : event -> bool
(** [cancel ev] cancels [ev]; returns [false] if it already ran (or was
    already cancelled).  The x-kernel's [evCancel]. *)

val run : ?until:float -> t -> unit
(** [run sim] processes events in time order until the queue is empty
    (or virtual time would pass [until]).  Re-raises the first exception
    that escaped a fiber. *)

val pending : t -> int
(** Number of live (non-cancelled) events still queued. *)

val processed : t -> int
(** Total events executed so far — the denominator of the harness
    benchmark's events/sec figure. *)

(** Counting semaphores — the x-kernel's process-synchronisation
    primitive.  The paper attributes CHANNEL's cost to exactly this
    synchronisation (section 4.2). *)
module Semaphore : sig
  type sem

  val create : t -> int -> sem
  (** [create sim n] is a semaphore with initial count [n]. *)

  val p : sem -> unit
  (** Decrement; blocks the calling fiber while the count is zero.
      Waiters are released in FIFO order. *)

  val v : sem -> unit
  (** Increment, waking one waiter if any.  May be called from anywhere
      (including outside fibers). *)

  val count : sem -> int
  (** Current count (never negative; blocked waiters don't go below 0). *)

  val waiters : sem -> int
end

(** Write-once cells: how a client fiber waits for its RPC reply. *)
module Ivar : sig
  type 'a ivar

  val create : t -> 'a ivar

  val fill : 'a ivar -> 'a -> unit
  (** Raises [Invalid_argument] if already filled. *)

  val is_filled : 'a ivar -> bool

  val read : 'a ivar -> 'a
  (** Blocks the calling fiber until filled. *)

  val read_timeout : 'a ivar -> float -> 'a option
  (** [read_timeout iv d] waits at most [d] seconds; [None] on timeout. *)
end
