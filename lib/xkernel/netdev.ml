type t = {
  nd_host : Host.t;
  wire : Wire.t;
  mutable tap : Wire.attachment option;
  txq : Msg.t Queue.t;
  txq_items : Sim.Semaphore.sem;
  mutable handler : (Msg.t -> unit) option;
  mutable promiscuous : bool;
}

let eth_header_bytes = 14

let peek_dst msg =
  if Msg.length msg < 6 then None
  else
    let s = Msg.to_string (Msg.sub msg 0 6) in
    let v = ref 0 in
    String.iter (fun c -> v := (!v lsl 8) lor Char.code c) s;
    Some (Addr.Eth.v !v)

let host dev = dev.nd_host
let attachment dev = Option.get dev.tap

let receive dev frame =
  (* Hardware address filter: frames for other stations cost nothing. *)
  let mine =
    dev.promiscuous
    ||
    match peek_dst frame with
    | Some dst ->
        Addr.Eth.equal dst dev.nd_host.Host.eth || Addr.Eth.is_broadcast dst
    | None -> false
  in
  if mine then begin
    Trace.packet
      (Machine.sim dev.nd_host.Host.mach)
      ~host:dev.nd_host.Host.name ~proto:"dev" ~dir:`Recv frame;
    Machine.charge_one dev.nd_host.Host.mach (Machine.Interrupt (Msg.length frame));
    match dev.handler with Some h -> h frame | None -> ()
  end

let create ~host ~wire =
  let dev =
    {
      nd_host = host;
      wire;
      tap = None;
      txq = Queue.create ();
      txq_items = Sim.Semaphore.create (Wire.sim wire) 0;
      handler = None;
      promiscuous = false;
    }
  in
  dev.tap <- Some (Wire.attach wire ~recv:(fun frame -> receive dev frame));
  let sim = Wire.sim wire in
  (* Transmitter fiber: drains the queue for the life of the run. *)
  let rec tx_loop () =
    Sim.Semaphore.p dev.txq_items;
    let frame = Queue.take dev.txq in
    (match dev.tap with
    | Some tap -> Wire.transmit wire ~from:tap frame
    | None -> assert false);
    tx_loop ()
  in
  Sim.spawn sim ~name:(host.Host.name ^ ":tx") (fun () ->
      (* The transmitter parks on the semaphore between frames; when the
         event queue otherwise drains, [Sim.run] simply ends with this
         fiber blocked, which is fine. *)
      tx_loop ());
  dev

let transmit dev frame =
  Trace.packet
    (Machine.sim dev.nd_host.Host.mach)
    ~host:dev.nd_host.Host.name ~proto:"dev" ~dir:`Send frame;
  Machine.charge dev.nd_host.Host.mach
    [ Machine.Device_send (Msg.length frame) ];
  Queue.add frame dev.txq;
  Sim.Semaphore.v dev.txq_items

let set_handler dev h = dev.handler <- Some h
let set_promiscuous dev b = dev.promiscuous <- b
let tx_queue_length dev = Queue.length dev.txq
