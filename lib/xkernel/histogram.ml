(* HdrHistogram-style layout: bucket [b] covers values with the same
   highest set bit, split into 2^sub_bits linear sub-buckets, all
   flattened into one counts array.  Bucket 0 is fully linear
   (values 0 .. sub_count-1); every later bucket uses only its upper
   half (sub in [half, sub_count)), so consecutive buckets tile the
   value range without overlap. *)

type t = {
  sub_bits : int;
  sub_count : int;
  half : int;
  h_max : int;  (* highest trackable value *)
  counts : int array;
  mutable total : int;
  mutable n_clamped : int;
  mutable v_min : int;
  mutable v_max : int;
  mutable sum : float;
}

let create ?(sub_bucket_bits = 8) ?(max_value = 1_000_000_000) () =
  if sub_bucket_bits < 2 || sub_bucket_bits > 16 then
    invalid_arg "Histogram.create: sub_bucket_bits must be in [2, 16]";
  if max_value < 1 then invalid_arg "Histogram.create: max_value < 1";
  let sub_count = 1 lsl sub_bucket_bits in
  let n_buckets = ref 1 in
  while (sub_count lsl (!n_buckets - 1)) - 1 < max_value do incr n_buckets done;
  let half = sub_count / 2 in
  {
    sub_bits = sub_bucket_bits;
    sub_count;
    half;
    h_max = (sub_count lsl (!n_buckets - 1)) - 1;
    counts = Array.make ((!n_buckets + 1) * half) 0;
    total = 0;
    n_clamped = 0;
    v_min = max_int;
    v_max = 0;
    sum = 0.;
  }

(* Position of the highest set bit of [v] > 0. *)
let msb v =
  let v = ref v and n = ref 0 in
  if !v >= 1 lsl 32 then begin v := !v lsr 32; n := !n + 32 end;
  if !v >= 1 lsl 16 then begin v := !v lsr 16; n := !n + 16 end;
  if !v >= 1 lsl 8 then begin v := !v lsr 8; n := !n + 8 end;
  if !v >= 1 lsl 4 then begin v := !v lsr 4; n := !n + 4 end;
  if !v >= 1 lsl 2 then begin v := !v lsr 2; n := !n + 2 end;
  if !v >= 2 then incr n;
  !n

let index_of t v =
  if v < t.sub_count then v
  else
    let bucket = msb v - (t.sub_bits - 1) in
    (bucket * t.half) + (v lsr bucket)

(* Highest value that lands in counts slot [idx]. *)
let highest_at t idx =
  if idx < t.sub_count then idx
  else
    let bucket = (idx / t.half) - 1 in
    let sub = idx - (bucket * t.half) in
    ((sub + 1) lsl bucket) - 1

let record t v =
  if v < 0 then invalid_arg "Histogram.record: negative value";
  let v =
    if v > t.h_max then begin
      t.n_clamped <- t.n_clamped + 1;
      t.h_max
    end
    else v
  in
  t.counts.(index_of t v) <- t.counts.(index_of t v) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. float_of_int v;
  if v < t.v_min then t.v_min <- v;
  if v > t.v_max then t.v_max <- v

let count t = t.total
let clamped t = t.n_clamped
let min_value t = if t.total = 0 then 0 else t.v_min
let max_value t = t.v_max
let mean t = if t.total = 0 then 0. else t.sum /. float_of_int t.total

let percentile t p =
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile";
  if t.total = 0 then 0
  else begin
    let target =
      max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.total)))
    in
    let seen = ref 0 and idx = ref 0 in
    while !seen < target do
      seen := !seen + t.counts.(!idx);
      incr idx
    done;
    highest_at t (!idx - 1)
  end

let merge_into ~src ~dst =
  if src.sub_bits <> dst.sub_bits || src.h_max <> dst.h_max then
    invalid_arg "Histogram.merge_into: incompatible configurations";
  Array.iteri (fun i n -> dst.counts.(i) <- dst.counts.(i) + n) src.counts;
  dst.total <- dst.total + src.total;
  dst.n_clamped <- dst.n_clamped + src.n_clamped;
  dst.sum <- dst.sum +. src.sum;
  if src.total > 0 then begin
    if src.v_min < dst.v_min then dst.v_min <- src.v_min;
    if src.v_max > dst.v_max then dst.v_max <- src.v_max
  end

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.total);
      ("clamped", Json.Int t.n_clamped);
      ("min", Json.Int (min_value t));
      ("max", Json.Int t.v_max);
      ("mean", Json.Float (mean t));
      ("p50", Json.Int (percentile t 50.));
      ("p90", Json.Int (percentile t 90.));
      ("p99", Json.Int (percentile t 99.));
      ("p999", Json.Int (percentile t 99.9));
    ]
