(** Named event counters with a global registry.

    Every protocol keeps a counter table exported through
    [control (Get_stat name)]; tests and benches read them to assert
    packet counts (e.g. "FRAGMENT handles 16 messages but CHANNEL and
    SELECT handle only one", section 4.2).

    Tables created with [~name] additionally register themselves in a
    process-wide registry so one {!dump} (or {!to_json}) call returns
    every protocol's counters at once — the observability companion to
    the paper's per-layer measurements. *)

type t

val create : ?name:string -> unit -> t
(** A fresh, empty table.  With [~name] the table is also added to the
    global registry ({!registered}, {!dump}, {!to_json}).  Protocol
    tables are conventionally named ["host/PROTO"], e.g.
    ["h0.0/CHANNEL"]. *)

val name : t -> string option

(** {2 Interned counter handles}

    Hot paths resolve a counter once and pay one increment per event
    instead of a string hash per event.  A handle stays out of dumps
    and JSON until first touched, so pre-resolving at protocol-open
    time does not change what the table exports. *)

type counter

val counter : t -> string -> counter
(** Find-or-create the entry for [name]; the handle stays valid across
    {!reset} (which zeroes counters in place). *)

val tick : counter -> unit
(** Increment by one. *)

val bump : counter -> int -> unit
(** Increment by [n]. *)

val value : counter -> int

(** {2 String-keyed API} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit

val set : t -> string -> int -> unit
(** [set t name v] overwrites the counter — a gauge.  CHANNEL exports
    its smoothed RTT and current RTO (in microseconds) this way. *)

val get : t -> string -> int
val reset : t -> unit

val to_list : t -> (string * int) list
(** Sorted by name. *)

(* The registry. *)

val registered : unit -> (string * t) list
(** All named tables, in creation order (duplicate names possible when
    several worlds live in one process). *)

val find : string -> t option
(** First registered table with that name. *)

val dump : unit -> (string * (string * int) list) list
(** Every named table with its sorted counters. *)

val json : unit -> Json.t
(** {!dump} as a JSON array of [{"name", "counters"}] objects. *)

val to_json : unit -> string

val reset_registry : unit -> unit
(** Forget all registered tables (the tables themselves survive).
    Tests call this for isolation between worlds. *)

val control : t -> Control.req -> Control.reply
(** Handles [Get_stat] and [Flush_cache] (reset); [Unsupported]
    otherwise — designed to sit last in a {!Proto.control_via} chain. *)
