type t = {
  name : string;
  ip : Addr.Ip.t;
  eth : Addr.Eth.t;
  mach : Machine.t;
  mutable boot_id : int;
  mutable reboot_hooks : (unit -> unit) list; (* newest first *)
}

let create sim ~name ~ip ~eth ?(profile = Machine.xkernel_sun3) () =
  {
    name;
    ip;
    eth;
    mach = Machine.create sim profile;
    boot_id = 1;
    reboot_hooks = [];
  }

let sim h = Machine.sim h.mach
let at_reboot h f = h.reboot_hooks <- f :: h.reboot_hooks

let reboot h =
  h.boot_id <- h.boot_id + 1;
  (* Registration order: lower layers registered first get to reset
     first.  Hooks must be callable from outside a fiber (a test can
     crash a host between runs), so they may not charge the machine or
     block. *)
  List.iter (fun f -> f ()) (List.rev h.reboot_hooks)

let pp fmt h =
  Format.fprintf fmt "%s(%a,%a)" h.name Addr.Ip.pp h.ip Addr.Eth.pp h.eth
