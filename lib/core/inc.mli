(** In-network computation: RPC work done by the switch.

    A virtual protocol in the paper's sense — no wire format of its own
    — installed on a forwarding IP instance (the switch of
    [World.create_switched]) via [Ip.set_forward_hook].  It interprets
    SELECT-CHANNEL-FRAGMENT datagrams in transit and does two things a
    server otherwise pays for:

    - {b Reply caching}: replies to registered idempotent commands are
      remembered (keyed by client, server, and the exact request bytes,
      with a TTL and a bounded capacity) and repeated requests are
      answered from the switch — the server's access link and CPU see
      nothing.
    - {b Deadline shedding}: requests whose propagated CHANNEL deadline
      is already zero are dropped at the switch instead of costing the
      server an interrupt and a parse before it drops them itself.

    Everything else — multi-fragment messages, acks, nacks, unregistered
    commands, non-RPC traffic — forwards untouched.

    {b Generation safety}: a cached reply is never served across a
    shard-map generation it predates.  The request's shard stamp is part
    of the cache key, the newest (epoch, version) seen in transit is a
    high-water mark that invalidates older entries, and an observed
    [wrong_shard] reply bumps the mark — so after a rebalance the switch
    falls back to forwarding until fresh replies repopulate the cache.
    A server reboot (new boot id in a reply) likewise flushes. *)

type t

val install :
  host:Xkernel.Host.t ->
  ip:Netproto.Ip.t ->
  ?cacheable:int list ->
  ?ttl:float ->
  ?capacity:int ->
  unit ->
  t
(** [install ~host ~ip ()] hangs the computation off [ip]'s forward
    hook; [host] is the switch host whose machine is charged for header
    parsing and reply synthesis (port 0 of a switched world).
    [cacheable] (default none — commands must be registered explicitly,
    and probe/health commands never should be) lists SELECT command
    numbers whose replies may be cached; [ttl] (default 2 s) and
    [capacity] (default 1024 entries, FIFO eviction) bound the cache.
    Registers a stats table named ["<host>/INC"] with counters [hits],
    [misses], [sheds], [forwarded], [stored] and [invalidated]. *)

val uninstall : t -> unit
val set_cacheable : t -> command:int -> unit
val stats : t -> Xkernel.Stats.t

val hits : t -> int
(** Requests answered from the cache. *)

val misses : t -> int
(** Cacheable requests that had to be forwarded. *)

val sheds : t -> int
(** Expired-deadline requests dropped at the switch. *)

val forwarded : t -> int
(** RPC requests passed through to a server. *)

val stored : t -> int
val invalidated : t -> int

val cache_size : t -> int

val map_generation : t -> int * int
(** Newest shard-map (epoch, version) observed in transit. *)
