open Xkernel

let header_bytes = 13
let status_ok = 0
let status_prog_unavail = 1
let status_proc_unavail = 2

type transaction = {
  x_open : peer:Addr.Ip.t -> Proto.session;
  x_call : Proto.session -> Msg.t -> (Msg.t, Rpc_error.t) result;
  x_serve : upper:Proto.t -> unit;
  x_proto : Proto.t;
}

let over_request_reply rr ~proto_num =
  {
    x_open = (fun ~peer -> Request_reply.session rr ~peer ~upper_proto:proto_num);
    x_call = (fun sess msg -> Request_reply.call rr sess msg);
    x_serve =
      (fun ~upper ->
        Proto.open_enable (Request_reply.proto rr) ~upper
          (Part.v ~local:[ Part.Ip_proto proto_num ] ()));
    x_proto = Request_reply.proto rr;
  }

let over_channel ch ~proto_num =
  {
    x_open =
      (fun ~peer ->
        let host = Proto.host (Channel.proto ch) in
        Proto.open_ (Channel.proto ch) ~upper:(Channel.proto ch)
          (Part.v
             ~local:
               [ Part.Ip host.Host.ip; Part.Ip_proto proto_num; Part.Channel 0 ]
             ~remotes:[ [ Part.Ip peer; Part.Ip_proto proto_num ] ]
             ()));
    x_call = (fun sess msg -> Channel.call ch sess msg);
    x_serve =
      (fun ~upper ->
        Proto.open_enable (Channel.proto ch) ~upper
          (Part.v ~local:[ Part.Ip_proto proto_num ] ()));
    x_proto = Channel.proto ch;
  }

type t = {
  host : Host.t;
  transaction : transaction;
  p : Proto.t;
  handlers : (int * int * int, Select.handler) Hashtbl.t;
  stats : Stats.t;
}

type client = { c_t : t; sess : Proto.session; prog : int; vers : int }

let proto t = t.p
let calls_handled t = Stats.get t.stats "handled"

let encode ~prog ~vers ~proc ~status =
  let w = Codec.W.create ~size:header_bytes () in
  Codec.W.u32 w prog;
  Codec.W.u32 w vers;
  Codec.W.u32 w proc;
  Codec.W.u8 w status;
  Codec.W.contents w

let decode raw =
  let r = Codec.R.of_string raw in
  let prog = Codec.R.u32 r in
  let vers = Codec.R.u32 r in
  let proc = Codec.R.u32 r in
  let status = Codec.R.u8 r in
  (prog, vers, proc, status)

let connect t ~server ~prog ~vers =
  { c_t = t; sess = t.transaction.x_open ~peer:server; prog; vers }

let call cl ~proc msg =
  let t = cl.c_t in
  Stats.incr t.stats "call";
  Machine.charge t.host.Host.mach
    [ Machine.Layer_crossing; Machine.Header header_bytes ];
  let hdr = encode ~prog:cl.prog ~vers:cl.vers ~proc ~status:status_ok in
  match t.transaction.x_call cl.sess (Msg.push msg hdr) with
  | Error e -> Error e
  | Ok reply -> (
      Machine.charge t.host.Host.mach
        [ Machine.Layer_crossing; Machine.Header header_bytes ];
      match Msg.pop reply header_bytes with
      | None -> Error (Rpc_error.Remote status_proc_unavail)
      | Some (raw, body) -> (
          match decode raw with
          | _, _, _, 0 -> Ok body
          | _, _, _, status -> Error (Rpc_error.Remote status)))

let register t ~prog ~vers ~proc handler =
  Hashtbl.replace t.handlers (prog, vers, proc) handler

let input t ~lower msg =
  Machine.charge_one t.host.Host.mach (Machine.Header header_bytes);
  match Msg.pop msg header_bytes with
  | None -> Stats.incr t.stats "rx-runt"
  | Some (raw, body) ->
      let prog, vers, proc, _status = decode raw in
      Stats.incr t.stats "handled";
      let reply_body, status =
        match Hashtbl.find_opt t.handlers (prog, vers, proc) with
        | Some h -> (
            match h body with
            | Ok reply -> (reply, status_ok)
            | Error s -> (Msg.empty, s))
        | None ->
            let prog_known =
              Hashtbl.fold
                (fun (p, v, _) _ acc -> acc || (p = prog && v = vers))
                t.handlers false
            in
            (Msg.empty, if prog_known then status_proc_unavail else status_prog_unavail)
      in
      Machine.charge_one t.host.Host.mach (Machine.Header header_bytes);
      Proto.push lower (Msg.push reply_body (encode ~prog ~vers ~proc ~status))

let serve t = t.transaction.x_serve ~upper:t.p

let create ~host ~transaction =
  let p = Proto.create ~host ~name:"SUN_SELECT" () in
  let t =
    { host; transaction; p; handlers = Hashtbl.create 16; stats = Proto.stats p }
  in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "Sun_select: use connect");
      open_enable = (fun ~upper:_ _ -> invalid_arg "Sun_select: use serve");
      open_done = (fun ~upper:_ _ -> invalid_arg "Sun_select: use connect");
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control = (fun req -> Stats.control t.stats req);
    };
  Proto.declare_below p [ transaction.x_proto ];
  t
