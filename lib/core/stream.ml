open Xkernel

let header_bytes = 13
let typ_data = 1
let typ_ack = 2
let max_ooo_buffer = 64

exception Broken

type seg = { seg_seq : int; data : Msg.t }

type conn = {
  c_t : t;
  peer : Addr.Ip.t;
  lower_sess : Proto.session;
  (* sender state *)
  mutable snd_next : int; (* next byte sequence number to assign *)
  mutable snd_una : int; (* lowest unacknowledged byte *)
  unacked : seg Queue.t;
  slots : Sim.Semaphore.sem; (* send window, in segments *)
  mutable rto_timer : Event.t option;
  mutable timer_gen : int; (* stale timer callbacks check this *)
  mutable tries_left : int;
  mutable broken : bool;
  mutable flush_waiters : unit Sim.Ivar.ivar list;
  (* receiver state *)
  mutable rcv_next : int;
  ooo : (int, Msg.t) Hashtbl.t; (* out-of-order segments by seq *)
}

and t = {
  host : Host.t;
  lower : Proto.t;
  own_proto : int;
  window : int;
  seg_size : int option; (* None: derive from the lower layer *)
  rto : float;
  retries : int;
  p : Proto.t;
  conns : (int, conn) Hashtbl.t; (* peer ip *)
  mutable deliver : (peer:Addr.Ip.t -> Msg.t -> unit) option;
  stats : Stats.t;
}

let proto t = t.p
let stat t name = Stats.get t.stats name
let bytes_sent c = c.snd_next - 1
let bytes_acked c = c.snd_una - 1

let encode ~typ ~seq ~ack ~window ~len =
  let w = Codec.W.create ~size:header_bytes () in
  Codec.W.u8 w typ;
  Codec.W.u32 w seq;
  Codec.W.u32 w ack;
  Codec.W.u16 w window;
  Codec.W.u16 w len;
  Codec.W.contents w

let decode raw =
  let r = Codec.R.of_string raw in
  let typ = Codec.R.u8 r in
  let seq = Codec.R.u32 r in
  let ack = Codec.R.u32 r in
  let window = Codec.R.u16 r in
  let len = Codec.R.u16 r in
  (typ, seq, ack, window, len)

let segment_size t c =
  match t.seg_size with
  | Some n -> n
  | None -> (
      match Proto.session_control c.lower_sess Control.Get_opt_packet with
      | Control.R_int n when n > header_bytes -> n - header_bytes
      | _ -> 512)

let transmit t c ~typ ~seq payload =
  Machine.charge_one t.host.Host.mach (Machine.Header header_bytes);
  Proto.push c.lower_sess
    (Msg.push payload
       (encode ~typ ~seq ~ack:c.rcv_next ~window:t.window
          ~len:(Msg.length payload)))

let send_ack t c =
  Stats.incr t.stats "ack-tx";
  transmit t c ~typ:typ_ack ~seq:0 Msg.empty

(* Go-back-N: resend everything outstanding. *)
let retransmit_all t c =
  Queue.iter
    (fun seg ->
      Stats.incr t.stats "retransmit";
      transmit t c ~typ:typ_data ~seq:seg.seg_seq seg.data)
    c.unacked

let break_stream t c =
  c.broken <- true;
  Stats.incr t.stats "broken";
  (* Wake everything blocked on this stream so it can observe the
     failure. *)
  let waiters = c.flush_waiters in
  c.flush_waiters <- [];
  List.iter (fun iv -> Sim.Ivar.fill iv ()) waiters;
  for _ = 1 to t.window do
    Sim.Semaphore.v c.slots
  done

(* Arming and cancelling both yield (timer bookkeeping is charged), so
   a generation counter decides which timer is current: stale callbacks
   and stale cancellations are no-ops. *)
let rec arm_timer t c =
  c.timer_gen <- c.timer_gen + 1;
  let gen = c.timer_gen in
  c.rto_timer <-
    Some
      (Event.schedule t.host t.rto (fun () ->
           if
             gen = c.timer_gen
             && (not c.broken)
             && not (Queue.is_empty c.unacked)
           then begin
             if c.tries_left <= 0 then break_stream t c
             else begin
               c.tries_left <- c.tries_left - 1;
               retransmit_all t c;
               arm_timer t c
             end
           end))

let cancel_timer t c =
  c.timer_gen <- c.timer_gen + 1;
  match c.rto_timer with
  | Some ev ->
      c.rto_timer <- None;
      ignore (Event.cancel t.host ev)
  | None -> ()

let handle_ack t c ack =
  if ack > c.snd_una then begin
    Stats.incr t.stats "ack-rx";
    c.snd_una <- ack;
    c.tries_left <- t.retries;
    let rec release () =
      match Queue.peek_opt c.unacked with
      | Some seg when seg.seg_seq + Msg.length seg.data <= ack ->
          ignore (Queue.pop c.unacked);
          Sim.Semaphore.v c.slots;
          release ()
      | _ -> ()
    in
    release ();
    if Queue.is_empty c.unacked then begin
      cancel_timer t c;
      let waiters = c.flush_waiters in
      c.flush_waiters <- [];
      List.iter (fun iv -> Sim.Ivar.fill iv ()) waiters
    end
    else begin
      (* Progress: restart the retransmission timer for what remains. *)
      cancel_timer t c;
      arm_timer t c
    end
  end
  else Stats.incr t.stats "dup-ack-rx"

let rec drain_in_order t c =
  match Hashtbl.find_opt c.ooo c.rcv_next with
  | None -> ()
  | Some data ->
      Hashtbl.remove c.ooo c.rcv_next;
      c.rcv_next <- c.rcv_next + Msg.length data;
      Stats.incr t.stats "delivered";
      (match t.deliver with
      | Some f -> f ~peer:c.peer data
      | None -> ());
      drain_in_order t c

let handle_data t c ~seq data =
  if Msg.length data = 0 then ()
  else if seq = c.rcv_next then begin
    c.rcv_next <- c.rcv_next + Msg.length data;
    Stats.incr t.stats "delivered";
    (match t.deliver with Some f -> f ~peer:c.peer data | None -> ());
    drain_in_order t c;
    send_ack t c
  end
  else if seq > c.rcv_next then begin
    (* Out of order: buffer (bounded) and re-ack what we have. *)
    Stats.incr t.stats "rx-ooo";
    if
      Hashtbl.length c.ooo < max_ooo_buffer && not (Hashtbl.mem c.ooo seq)
    then Hashtbl.replace c.ooo seq data;
    send_ack t c
  end
  else begin
    (* Old segment (our ack was lost): re-ack. *)
    Stats.incr t.stats "rx-stale";
    send_ack t c
  end

let make_conn t ~peer =
  let lower_sess =
    Proto.open_ t.lower ~upper:t.p
      (Part.v
         ~local:[ Part.Ip t.host.Host.ip; Part.Ip_proto t.own_proto ]
         ~remotes:[ [ Part.Ip peer; Part.Ip_proto t.own_proto ] ]
         ())
  in
  let c =
    {
      c_t = t;
      peer;
      lower_sess;
      snd_next = 1;
      snd_una = 1;
      unacked = Queue.create ();
      slots = Sim.Semaphore.create (Host.sim t.host) t.window;
      rto_timer = None;
      timer_gen = 0;
      tries_left = t.retries;
      broken = false;
      flush_waiters = [];
      rcv_next = 1;
      ooo = Hashtbl.create 16;
    }
  in
  Hashtbl.replace t.conns (Addr.Ip.to_int peer) c;
  c

let connect t ~peer =
  match Hashtbl.find_opt t.conns (Addr.Ip.to_int peer) with
  | Some c -> c
  | None -> make_conn t ~peer

let send c msg =
  let t = c.c_t in
  if c.broken then raise Broken;
  let seg_size = segment_size t c in
  let len = Msg.length msg in
  let rec emit off =
    if off < len then begin
      let this = min seg_size (len - off) in
      Sim.Semaphore.p c.slots;
      if c.broken then raise Broken;
      let data = Msg.sub msg off this in
      let seg = { seg_seq = c.snd_next; data } in
      c.snd_next <- c.snd_next + this;
      Queue.add seg c.unacked;
      Stats.incr t.stats "seg-tx";
      transmit t c ~typ:typ_data ~seq:seg.seg_seq data;
      if c.rto_timer = None then arm_timer t c;
      emit (off + this)
    end
  in
  emit 0

let flush c =
  let t = c.c_t in
  if not (Queue.is_empty c.unacked) then begin
    let iv = Sim.Ivar.create (Host.sim t.host) in
    c.flush_waiters <- iv :: c.flush_waiters;
    Sim.Ivar.read iv
  end;
  if c.broken then raise Broken

let on_receive t f = t.deliver <- Some f

let input t ~lower msg =
  match Proto.session_control lower Control.Get_peer_host with
  | Control.R_ip peer -> (
      Machine.charge_one t.host.Host.mach (Machine.Header header_bytes);
      match Msg.pop msg header_bytes with
      | None -> Stats.incr t.stats "rx-runt"
      | Some (raw, rest) ->
          let typ, seq, ack, _window, len = decode raw in
          let c = connect t ~peer in
          (* Every packet carries a cumulative ack. *)
          handle_ack t c ack;
          if typ = typ_data then begin
            if Msg.length rest >= len then
              handle_data t c ~seq (Msg.sub rest 0 len)
            else Stats.incr t.stats "rx-short"
          end
          else if typ <> typ_ack then Stats.incr t.stats "rx-malformed")
  | _ -> Stats.incr t.stats "rx-unidentified"

let create ~host ~lower ?(proto_num = 99) ?(window = 8) ?segment_size
    ?(rto = 0.03) ?(retries = 8) () =
  let p = Proto.create ~host ~name:"STREAM" () in
  let t =
    {
      host;
      lower;
      own_proto = proto_num;
      window;
      seg_size = segment_size;
      rto;
      retries;
      p;
      conns = Hashtbl.create 4;
      deliver = None;
      stats = Proto.stats p;
    }
  in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "Stream: use connect/send");
      open_enable = (fun ~upper:_ _ -> invalid_arg "Stream: use on_receive");
      open_done = (fun ~upper:_ _ -> invalid_arg "Stream: use connect");
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control =
        (fun req ->
          match req with
          (* One segment plus header at a time: a VIP below can keep
             local streams on the ethernet path. *)
          | Control.Get_max_msg_size -> (
              match t.seg_size with
              | Some n -> Control.R_int (n + header_bytes)
              | None -> Proto.control t.lower Control.Get_opt_packet)
          | req -> Stats.control t.stats req);
    };
  Proto.open_enable lower ~upper:p
    (Part.v ~local:[ Part.Ip_proto proto_num ] ());
  Proto.declare_below p [ lower ];
  t
