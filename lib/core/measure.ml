open Xkernel
module World = Netproto.World

type row = {
  row_name : string;
  latency_ms : float;
  throughput_kbs : float;
  incr_cost_ms_per_kb : float;
  client_cpu_ms : float;
}

let default_sizes = List.init 16 (fun i -> (i + 1) * 1024)

(* Run [f] in a fiber and drive the simulator until it finishes. *)
let in_fiber (w : World.t) f =
  let result = ref None in
  World.spawn w (fun () -> result := Some (f ()));
  World.run w;
  match !result with
  | Some r -> r
  | None ->
      failwith "Measure: fiber did not complete (deadlocked experiment?)"

let expect_ok config = function
  | Ok reply -> reply
  | Error e ->
      failwith
        (Printf.sprintf "Measure: %s failed: %s" config (Rpc_error.to_string e))

let timed_calls (w : World.t) ~iters f =
  let t0 = Sim.now w.World.sim in
  for _ = 1 to iters do
    f ()
  done;
  (Sim.now w.World.sim -. t0) /. float_of_int iters

(* The shared warm-up/aggregation discipline of every latency number:
   [warmup] unrecorded calls, then the average of [iters] timed ones,
   in msec. *)
let warmed_latency_ms ~warmup ~iters (w : World.t) f =
  in_fiber w (fun () ->
      for _ = 1 to warmup do
        f ()
      done;
      timed_calls w ~iters f *. 1e3)

let latency ?(warmup = 3) ?(iters = 50) (w : World.t) (e : Stacks.endpoints) =
  warmed_latency_ms ~warmup ~iters w (fun () ->
      ignore (expect_ok e.config_name (e.call ~command:Stacks.cmd_null Msg.empty)))

let sweep ?(sizes = default_sizes) ?(iters = 8) (w : World.t)
    (e : Stacks.endpoints) =
  in_fiber w (fun () ->
      ignore (expect_ok e.config_name (e.call ~command:Stacks.cmd_null Msg.empty));
      List.map
        (fun size ->
          let msg = Msg.fill size 'b' in
          let call () =
            ignore (expect_ok e.config_name (e.call ~command:Stacks.cmd_null msg))
          in
          call ();
          (size, timed_calls w ~iters call))
        sizes)

let probe_call w p ~peer ~size =
  match Netproto.Probe.rtt p ~peer ~size () with
  | Some t -> t
  | None ->
      failwith
        (Printf.sprintf "Measure: probe timeout at t=%.3fms"
           (Sim.now w.World.sim *. 1e3))

let probe_latency ?(warmup = 3) ?(iters = 50) ?(size = 0) (w : World.t) p
    ~peer =
  warmed_latency_ms ~warmup ~iters w (fun () ->
      ignore (probe_call w p ~peer ~size))

let probe_sweep ?(sizes = default_sizes) ?(iters = 8) (w : World.t) p ~peer =
  in_fiber w (fun () ->
      ignore (probe_call w p ~peer ~size:0);
      List.map
        (fun size ->
          ( size,
            timed_calls w ~iters (fun () ->
                ignore (probe_call w p ~peer ~size)) ))
        sizes)

(* Least-squares slope of seconds over bytes, reported as msec/KB. *)
let fit_slope points =
  let n = float_of_int (List.length points) in
  if n < 2. then 0.
  else begin
    let xs = List.map (fun (s, _) -> float_of_int s /. 1024.) points in
    let ys = List.map (fun (_, t) -> t *. 1e3) points in
    let sum = List.fold_left ( +. ) 0. in
    let sx = sum xs and sy = sum ys in
    let sxx = sum (List.map (fun x -> x *. x) xs) in
    let sxy = sum (List.map2 ( *. ) xs ys) in
    let denom = (n *. sxx) -. (sx *. sx) in
    (* A zero-variance size series (all sizes equal) has no slope;
       without the guard the division yields inf/nan. *)
    if Float.abs denom <= 1e-9 *. Float.max 1. (sx *. sx) then 0.
    else ((n *. sxy) -. (sx *. sy)) /. denom
  end

let throughput_kbs ~size seconds = float_of_int size /. seconds /. 1000.

let row (w : World.t) (e : Stacks.endpoints) =
  let latency_ms = latency w e in
  let points = sweep w e in
  let size, t16 = List.nth points (List.length points - 1) in
  (* CPU time per 16 KB call on the client machine. *)
  let client_cpu_ms =
    in_fiber w (fun () ->
        let msg = Msg.fill size 'b' in
        Machine.reset_cpu_seconds e.client_host.Host.mach;
        let iters = 5 in
        for _ = 1 to iters do
          ignore (expect_ok e.config_name (e.call ~command:Stacks.cmd_null msg))
        done;
        Machine.cpu_seconds e.client_host.Host.mach
        /. float_of_int iters *. 1e3)
  in
  {
    row_name = e.config_name;
    latency_ms;
    throughput_kbs = throughput_kbs ~size t16;
    incr_cost_ms_per_kb = fit_slope points;
    client_cpu_ms;
  }
