open Xkernel

let header_bytes = 9
let typ_call = 1
let typ_reply = 2

type pending = {
  p_xid : int;
  iv : (Msg.t, Rpc_error.t) result Sim.Ivar.ivar;
  payload : Msg.t;
  mutable timer : Event.t option;
  mutable tries_left : int;
}

type sess = {
  peer : Addr.Ip.t;
  upper_proto : int;
  upper : Proto.t;
  lower_sess : Proto.session;
  mutable xs : Proto.session option;
  pending : (int, pending) Hashtbl.t; (* xid *)
  (* server side: xid of the request being delivered up right now; the
     upper protocol's synchronous reply push answers it *)
  mutable serving_xid : int option;
}

type t = {
  host : Host.t;
  lower : Proto.t;
  own_proto : int;
  timeout : float;
  retries : int;
  p : Proto.t;
  sessions : (int * int, sess) Hashtbl.t; (* (peer, upper proto) *)
  enabled : (int, Proto.t) Hashtbl.t;
  mutable next_xid : int;
  stats : Stats.t;
}

let proto t = t.p
let executions t = Stats.get t.stats "executed"

let encode ~typ ~xid ~proto_num =
  let w = Codec.W.create ~size:header_bytes () in
  Codec.W.u8 w typ;
  Codec.W.u32 w xid;
  Codec.W.u32 w proto_num;
  Codec.W.contents w

let decode raw =
  let r = Codec.R.of_string raw in
  let typ = Codec.R.u8 r in
  let xid = Codec.R.u32 r in
  let proto_num = Codec.R.u32 r in
  (typ, xid, proto_num)

let transmit t s ~typ ~xid payload =
  Machine.charge_one t.host.Host.mach (Machine.Header header_bytes);
  Proto.push s.lower_sess
    (Msg.push payload (encode ~typ ~xid ~proto_num:s.upper_proto))

let finish t s p outcome =
  (* Remove the pending entry before anything that can yield, so a
     duplicated reply cannot finish the same transaction twice. *)
  Hashtbl.remove s.pending p.p_xid;
  (match p.timer with
  | Some ev ->
      ignore (Event.cancel t.host ev);
      p.timer <- None
  | None -> ());
  Machine.charge t.host.Host.mach
    [ Machine.Semaphore_op; Machine.Process_switch ];
  Sim.Ivar.fill p.iv outcome

let rec arm_timer t s p =
  p.timer <-
    Some
      (Event.schedule t.host t.timeout (fun () ->
           if Hashtbl.mem s.pending p.p_xid then begin
             if p.tries_left <= 0 then finish t s p (Error Rpc_error.Timeout)
             else begin
               p.tries_left <- p.tries_left - 1;
               Stats.incr t.stats "retransmit";
               (* No server-side memory of this xid exists: the
                  retransmission may execute the procedure again.
                  Zero-or-more semantics. *)
               transmit t s ~typ:typ_call ~xid:p.p_xid p.payload;
               arm_timer t s p
             end
           end))

let start_call t s payload =
  t.next_xid <- t.next_xid + 1;
  let xid = t.next_xid in
  let p =
    {
      p_xid = xid;
      iv = Sim.Ivar.create (Host.sim t.host);
      payload;
      timer = None;
      tries_left = t.retries;
    }
  in
  Hashtbl.replace s.pending xid p;
  Stats.incr t.stats "call-tx";
  Machine.charge t.host.Host.mach
    [ Machine.Semaphore_op; Machine.Process_switch ];
  transmit t s ~typ:typ_call ~xid payload;
  arm_timer t s p;
  p.iv

let lower_part t ~peer =
  Part.v
    ~local:[ Part.Ip t.host.Host.ip; Part.Ip_proto t.own_proto ]
    ~remotes:[ [ Part.Ip peer; Part.Ip_proto t.own_proto ] ]
    ()

let make_session t ~upper ~peer ~upper_proto =
  let lower_sess = Proto.open_ t.lower ~upper:t.p (lower_part t ~peer) in
  let s =
    {
      peer;
      upper_proto;
      upper;
      lower_sess;
      xs = None;
      pending = Hashtbl.create 8;
      serving_xid = None;
    }
  in
  let push msg =
    match s.serving_xid with
    | Some xid ->
        (* Reply to the request currently being served. *)
        s.serving_xid <- None;
        Stats.incr t.stats "reply-tx";
        transmit t s ~typ:typ_reply ~xid msg
    | None -> ignore (start_call t s msg)
  in
  let pop _ = () in
  let s_control = function
    | Control.Get_peer_host -> Control.R_ip peer
    | Control.Get_my_host -> Control.R_ip t.host.Host.ip
    | Control.Get_peer_proto | Control.Get_my_proto ->
        Control.R_int upper_proto
    | Control.Get_timeout -> Control.R_float t.timeout
    | ( Control.Get_frag_size | Control.Get_max_packet
      | Control.Get_opt_packet ) as req ->
        Proto.session_control lower_sess req
    | req -> Stats.control t.stats req
  in
  let close () =
    Hashtbl.remove t.sessions (Addr.Ip.to_int peer, upper_proto)
  in
  let xs =
    Proto.make_session t.p
      ~name:(Printf.sprintf "rr(%s,%d)" (Addr.Ip.to_string peer) upper_proto)
      { push; pop; s_control; close }
  in
  s.xs <- Some xs;
  Hashtbl.replace t.sessions (Addr.Ip.to_int peer, upper_proto) s;
  s

let session t ~peer ~upper_proto =
  match Hashtbl.find_opt t.sessions (Addr.Ip.to_int peer, upper_proto) with
  | Some s -> Option.get s.xs
  | None -> Option.get (make_session t ~upper:t.p ~peer ~upper_proto).xs

let call t xs msg =
  let s =
    Hashtbl.fold
      (fun _ s acc -> match s.xs with Some x when x == xs -> Some s | _ -> acc)
      t.sessions None
  in
  match s with
  | None -> invalid_arg "Request_reply.call: unknown session"
  | Some s -> Sim.Ivar.read (start_call t s msg)

let input t ~lower msg =
  match Proto.session_control lower Control.Get_peer_host with
  | Control.R_ip peer -> (
      Machine.charge_one t.host.Host.mach (Machine.Header header_bytes);
      match Msg.pop msg header_bytes with
      | None -> Stats.incr t.stats "rx-runt"
      | Some (raw, body) -> (
          let typ, xid, proto_num = decode raw in
          let s =
            match
              Hashtbl.find_opt t.sessions (Addr.Ip.to_int peer, proto_num)
            with
            | Some s -> Some s
            | None -> (
                match Hashtbl.find_opt t.enabled proto_num with
                | Some upper ->
                    Some (make_session t ~upper ~peer ~upper_proto:proto_num)
                | None -> None)
          in
          match s with
          | None -> Stats.incr t.stats "rx-unbound"
          | Some s ->
              if typ = typ_call then begin
                (* Every arriving request executes: no duplicate
                   filtering at this layer. *)
                Stats.incr t.stats "executed";
                Machine.charge_one t.host.Host.mach (Machine.Semaphore_op);
                s.serving_xid <- Some xid;
                Proto.deliver s.upper ~lower:(Option.get s.xs) body;
                (* If the upper protocol did not reply synchronously,
                   the client will simply retransmit. *)
                s.serving_xid <- None
              end
              else if typ = typ_reply then begin
                match Hashtbl.find_opt s.pending xid with
                | Some p ->
                    Stats.incr t.stats "reply-rx";
                    finish t s p (Ok body)
                | None -> Stats.incr t.stats "stale-rx"
              end
              else Stats.incr t.stats "rx-malformed"))
  | _ -> Stats.incr t.stats "rx-unidentified"

let create ~host ~lower ?(proto_num = 95) ?(timeout = 0.025) ?(retries = 4) ()
    =
  let p = Proto.create ~host ~name:"REQUEST_REPLY" () in
  let t =
    {
      host;
      lower;
      own_proto = proto_num;
      timeout;
      retries;
      p;
      sessions = Hashtbl.create 16;
      enabled = Hashtbl.create 8;
      next_xid = 0;
      stats = Proto.stats p;
    }
  in
  Proto.set_ops p
    {
      Proto.open_ =
        (fun ~upper part ->
          let peer_part = Part.peer part in
          let peer =
            match Part.find_ip peer_part with
            | Some ip -> ip
            | None -> invalid_arg "Request_reply.open_: no peer IP"
          in
          let upper_proto =
            match
              (Part.find_ip_proto peer_part, Part.find_ip_proto part.Part.local)
            with
            | Some n, _ | None, Some n -> n
            | None, None -> invalid_arg "Request_reply.open_: no proto number"
          in
          match
            Hashtbl.find_opt t.sessions (Addr.Ip.to_int peer, upper_proto)
          with
          | Some s -> Option.get s.xs
          | None -> Option.get (make_session t ~upper ~peer ~upper_proto).xs);
      open_enable =
        (fun ~upper part ->
          match Part.find_ip_proto part.Part.local with
          | None -> invalid_arg "Request_reply.open_enable: no proto number"
          | Some n ->
              Hashtbl.replace t.enabled n upper;
              Proto.open_enable t.lower ~upper:t.p
                (Part.v ~local:[ Part.Ip_proto t.own_proto ] ()));
      open_done = (fun ~upper:_ _ -> invalid_arg "Request_reply: open_done");
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control =
        (fun req ->
          match req with
          | Control.Get_max_msg_size | Control.Get_max_packet ->
              Proto.control t.lower Control.Get_max_packet
          | Control.Get_opt_packet -> Proto.control t.lower req
          | req -> Stats.control t.stats req);
    };
  Proto.declare_below p [ lower ];
  t
