open Xkernel

type t = {
  host : Host.t;
  coord : Shard_map.Coordinator.t;
  replica_health : int -> [ `Up | `Dead ];
  shard_load : unit -> int array;
  interval : float;
  skew_ratio : float;
  sustain : int;
  on_crash : bool;
  on_skew : bool;
  stats : Stats.t;
  mutable last_load : int array; (* cumulative snapshot at previous tick *)
  mutable skew_streak : int; (* consecutive ticks the skew trigger held *)
  mutable moves : int;
}

let moves t = t.moves

let argbest ~better xs =
  List.fold_left
    (fun best x ->
      match best with Some b when not (better x b) -> best | _ -> Some x)
    None xs

(* Crash policy: every shard owned by a Dead replica is reassigned to
   its best live rendezvous candidate in one map generation. *)
let tick_crash t m ~dead =
  match Shard_map.reassign m ~dead with
  | None -> false
  | Some m' ->
      t.moves <- t.moves + List.length (Shard_map.diff m m');
      Stats.incr t.stats "rebalance-crash";
      Shard_map.Coordinator.install t.coord m';
      true

(* Skew policy: compare per-replica load over the last interval (the
   delta of the cumulative per-shard counts).  Only when the hottest
   live replica carries more than [skew_ratio] times the coldest for
   [sustain] consecutive ticks does one shard move — the hottest shard
   of the hot replica to the coldest replica — after which the streak
   resets, so the next move needs fresh evidence under the new map.
   That streak-plus-reset is the hysteresis that keeps a noisy load
   signal from ping-ponging shards. *)
let tick_skew t m ~live ~delta =
  if Array.length delta <> Shard_map.shard_count m then ()
  else begin
    let per_replica = Array.make (Shard_map.replica_count m) 0 in
    Array.iteri
      (fun shard l ->
        let o = Shard_map.owner m ~shard in
        per_replica.(o) <- per_replica.(o) + l)
      delta;
    match live with
    | [] | [ _ ] -> t.skew_streak <- 0
    | _ -> (
        let hot =
          Option.get
            (argbest ~better:(fun a b -> per_replica.(a) > per_replica.(b)) live)
        and cold =
          Option.get
            (argbest ~better:(fun a b -> per_replica.(a) < per_replica.(b)) live)
        in
        if
          hot <> cold
          && float_of_int per_replica.(hot)
             > t.skew_ratio *. float_of_int (max 1 per_replica.(cold))
        then begin
          t.skew_streak <- t.skew_streak + 1;
          if t.skew_streak >= t.sustain then begin
            t.skew_streak <- 0;
            let owned =
              List.filter
                (fun s -> Shard_map.owner m ~shard:s = hot)
                (List.init (Shard_map.shard_count m) Fun.id)
            in
            (* Improvement guard: moving [shard] shifts its whole load
               onto the cold replica, so the move only helps when that
               load is smaller than the hot/cold gap — otherwise the
               receiver becomes the new hottest and the shard would
               ping-pong.  Candidates are filtered through the guard
               first, so when the hottest shard is itself unmovable (a
               monolithic hot shard stays put: no move can balance it)
               the policy drains the hot replica's next-hottest shard
               instead of giving up. *)
            let movable =
              List.filter
                (fun s ->
                  delta.(s) > 0
                  && delta.(s) < per_replica.(hot) - per_replica.(cold))
                owned
            in
            match
              argbest ~better:(fun a b -> delta.(a) > delta.(b)) movable
            with
            | Some shard ->
                let m' = Shard_map.move m ~shard ~to_:cold in
                if Shard_map.version m' <> Shard_map.version m then begin
                  t.moves <- t.moves + 1;
                  Stats.incr t.stats "rebalance-skew";
                  Shard_map.Coordinator.install t.coord m'
                end
            | _ -> ()
          end
        end
        else t.skew_streak <- 0)
  end

let tick t =
  let m = Shard_map.Coordinator.current t.coord in
  let k = Shard_map.replica_count m in
  let idxs = List.init k Fun.id in
  let dead = List.filter (fun r -> t.replica_health r = `Dead) idxs in
  let live = List.filter (fun r -> t.replica_health r = `Up) idxs in
  let load = t.shard_load () in
  let delta =
    Array.init (Array.length load) (fun i ->
        load.(i)
        - (if i < Array.length t.last_load then t.last_load.(i) else 0))
  in
  t.last_load <- load;
  let dead_owned =
    List.exists (fun r -> Shard_map.shards_owned m ~replica:r > 0) dead
  in
  if t.on_crash && dead_owned then begin
    t.skew_streak <- 0;
    ignore (tick_crash t m ~dead)
  end
  else if t.on_skew then tick_skew t m ~live ~delta

(* [Sim.after] rather than [Event.schedule]: experiments arm the
   controller at setup time, outside any fiber, where charging a
   [Timer_op] would block. *)
let start t ~until =
  let sim = Host.sim t.host in
  (* Baseline the cumulative load counters, so the first tick's delta
     covers one interval rather than everything since time zero. *)
  t.last_load <- t.shard_load ();
  let rec arm () =
    ignore
      (Sim.after sim t.interval (fun () ->
           if Sim.now sim <= until then begin
             tick t;
             arm ()
           end))
  in
  arm ()

let create ~host ~coord ~replica_health ~shard_load ?(interval = 0.05)
    ?(skew_ratio = 3.0) ?(sustain = 2) ?(on_crash = true) ?(on_skew = true) ()
    =
  if interval <= 0. then invalid_arg "Rebalance.create: interval <= 0";
  if skew_ratio <= 1. then invalid_arg "Rebalance.create: skew_ratio <= 1";
  if sustain < 1 then invalid_arg "Rebalance.create: sustain < 1";
  {
    host;
    coord;
    replica_health;
    shard_load;
    interval;
    skew_ratio;
    sustain;
    on_crash;
    on_skew;
    stats = Proto.stats (Shard_map.Coordinator.proto coord);
    last_load = [||];
    skew_streak = 0;
    moves = 0;
  }
