(** Load generation: closed- and open-loop workloads with HDR latency
    histograms.

    The paper (§4) reports only averaged null-RPC round trips between
    two hosts.  This module asks the production-scale question instead:
    what do the latency percentiles do as offered load approaches
    saturation, and where is the knee?  Two generator families drive a
    {!Stacks.fan} configuration over a {!Netproto.World.fanin}
    topology (M client hosts, one server, one wire):

    - {b closed loop} ({!run_closed}): N client fibers spread across
      the client hosts, each issuing back-to-back calls with optional
      think time.  Offered load is implicit (throughput = concurrency /
      round trip) and the system can never be overrun — the classic
      benchmarking loop, which is exactly why it hides overload.
    - {b open loop} ({!run_open}): arrivals come from a deterministic
      or Poisson process driven by the seeded {!Xkernel.Sim} rng,
      independent of completions.  A bounded pending-call window makes
      overload observable: an arrival finding [window] calls already in
      flight is {e shed} and counted, rather than queueing without
      bound (and rather than silently slowing the arrival process —
      the coordinated-omission trap).

    Every completed call records its latency (arrival to reply, in
    microseconds) into a per-client-host {!Xkernel.Histogram}; the
    result carries both the per-client histograms and their merge.
    Server run-queue depth is sampled while the workload runs and
    exported — together with wire utilization, shed and pending peaks —
    as gauges in a registered [load/<config>] {!Xkernel.Stats} table.

    Everything is deterministic for a fixed world seed: same
    configuration, same JSON, byte for byte. *)

type arrival = Uniform | Poisson
(** Interarrival law for {!run_open}: constant [1/rate], or
    exponential with mean [1/rate] (memoryless — the standard model of
    aggregated independent callers). *)

type result = {
  r_config : string;  (** {!Stacks.fan.fan_name} *)
  r_mode : string;  (** ["closed"], ["open-uniform"] or ["open-poisson"] *)
  offered_rps : float;
      (** configured arrival rate (open loop); achieved rate (closed
          loop, where offered load is implicit) *)
  achieved_rps : float;  (** completed calls / elapsed *)
  arrivals : int;  (** calls asked for, including shed ones *)
  completed : int;
  failed : int;  (** calls that returned an RPC error (e.g. Timeout) *)
  shed : int;  (** open loop: arrivals refused at a full window *)
  elapsed_s : float;  (** first arrival to last completion, virtual *)
  wire_util : float;  (** fraction of wire capacity consumed, 0..1 *)
  queue_depth_max : int;  (** peak sampled server CPU run-queue depth *)
  pending_max : int;  (** peak calls in flight *)
  hist : Xkernel.Histogram.t;  (** all clients merged, microseconds *)
  per_client : Xkernel.Histogram.t array;  (** one per client host *)
}

val new_hist : unit -> Xkernel.Histogram.t
(** A histogram configured like the ones in {!result} (microseconds,
    up to 100 s) — mergeable with them. *)

val us_of : float -> int
(** Seconds to rounded microseconds — the unit {!result} histograms
    record. *)

val run_closed :
  ?fibers:int ->
  ?calls:int ->
  ?warmup:int ->
  ?think:float ->
  ?size:int ->
  Netproto.World.fanin ->
  Stacks.fan ->
  result
(** [run_closed fanin fan] spreads [fibers] (default 8) closed-loop
    fibers round-robin across the client hosts; each issues [warmup]
    (default 2, unrecorded) then [calls] (default 25) null-procedure
    calls of [size] bytes (default 0), sleeping [think] seconds
    (default 0) after each.  All fibers warm up before the measured
    phase starts.  Drives the world to completion. *)

val run_open :
  ?arrival:arrival ->
  ?arrivals:int ->
  ?window:int ->
  ?warmup:int ->
  ?size:int ->
  rate:float ->
  Netproto.World.fanin ->
  Stacks.fan ->
  result
(** [run_open ~rate fanin fan] dispatches [arrivals] (default 200)
    arrivals at aggregate [rate] calls/second ([arrival] defaults to
    {!Poisson}), round-robin across client hosts, each client host
    having first made [warmup] (default 1) unrecorded calls.  At most
    [window] (default 32) calls may be pending; an arrival beyond that
    is shed.  Drives the world to completion (all pending calls
    resolve). *)

val to_json : result -> Xkernel.Json.t
(** One row: config, mode, offered/achieved rates, counters, elapsed,
    wire utilization, queue/pending peaks, and the merged histogram
    summary under ["latency_us"]. *)
