open Xkernel
module C = Wire_fmt.Channel

type outstanding = {
  o_seq : int;
  iv : (Msg.t, Rpc_error.t) result Sim.Ivar.ivar option;
      (* [Some _]: a blocked {!call}; [None]: uniform push, reply goes up *)
  payload : Msg.t;
  sent_at : float; (* first transmission time, for the RTT sample *)
  sent_load : int; (* protocol-wide in-flight count when first sent *)
  expires : float option;
      (* absolute sim time of the caller's deadline; each (re)transmit
         stamps the *remaining* budget into the header, and the
         retransmit timer gives up outright once it has passed *)
  mutable timer : Event.t option;
  mutable tries_left : int;
  mutable acked : bool; (* explicit ACK received: server is working *)
}

type sess = {
  chan : int;
  peer : Addr.Ip.t;
  proto_num : int;
  upper : Proto.t;
  lower_sess : Proto.session;
  mutable xs : Proto.session option;
  (* client role *)
  mutable next_seq : int;
  mutable out : outstanding option;
  mutable server_boot : int option;
  (* server role *)
  mutable last_seq : int;
  mutable client_boot : int;
  mutable cached_reply : Msg.t option; (* encoded, ready to retransmit *)
  mutable busy : bool;
  mutable rx_expires : float option;
      (* server role: absolute expiry of the request currently being
         served, reconstructed from the propagated remaining budget at
         decode time; admission layers read it via [Get_rx_deadline] *)
  (* adaptive RTO estimator (Jacobson), per channel *)
  mutable srtt : float; (* negative: no sample yet *)
  mutable rttvar : float;
  mutable backoff : int; (* consecutive timeouts on the current transaction *)
  mutable last_len : int; (* last request length, for effective-RTO queries *)
  mutable srtt_load : int;
      (* in-flight count behind the current srtt estimate: the load
         level at which its samples were taken (see {!load_scale}) *)
}

type t = {
  host : Host.t;
  lower : Proto.t;
  own_proto : int;
      (* CHANNEL's own protocol number toward the layer below; the
         protocol-number field in its header names the layer above *)
  chans : int;
  base_timeout : float;
  per_frag_timeout : float;
  retries : int;
  adaptive : bool;
  rto_load_floor : bool;
  rto_max : float;
  rng : Random.State.t; (* the simulator's seeded stream (backoff jitter) *)
  p : Proto.t;
  sessions : (int * int * int, sess) Hashtbl.t; (* (peer, proto, chan) *)
  by_id : (int, sess) Hashtbl.t; (* Proto.session_id xs -> sess *)
  enabled : (int, Proto.t) Hashtbl.t;
  stats : Stats.t;
  mutable in_flight : int; (* outstanding requests across all sessions *)
  (* Per-message counters, resolved once at create time (hot path). *)
  c_rtt_sample : Stats.counter;
  c_req_tx : Stats.counter;
  c_reply_tx : Stats.counter;
  c_req_rx : Stats.counter;
  c_reply_rx : Stats.counter;
  c_karn_skip : Stats.counter;
  c_ack_tx : Stats.counter;
  c_ack_rx : Stats.counter;
}

let proto t = t.p
let n_channels t = t.chans

(* Remaining budget in microseconds at this instant; 0 once the
   deadline has passed (the server treats a zero stamp as already
   expired), -1 when no deadline is being propagated. *)
let deadline_us_of t expires =
  match expires with
  | None -> -1
  | Some e ->
      let rem = (e -. Sim.now (Host.sim t.host)) *. 1e6 in
      if rem <= 0. then 0
      else min (int_of_float rem) C.max_deadline_us

let header ?(expires = None) t s ~flags ~seq ~error =
  {
    C.flags;
    channel = s.chan;
    protocol_num = s.proto_num;
    sequence_num = seq;
    error;
    boot_id = t.host.Host.boot_id;
    deadline_us = deadline_us_of t expires;
  }

let transmit t s hdr payload =
  let hdr_bytes =
    if hdr.C.deadline_us >= 0 then C.bytes + C.ext_bytes else C.bytes
  in
  Machine.charge_one t.host.Host.mach (Machine.Header hdr_bytes);
  let encoded = Msg.push payload (C.encode hdr) in
  Trace.packet (Host.sim t.host) ~host:t.host.Host.name ~proto:"CHANNEL"
    ~dir:`Send encoded;
  Proto.push s.lower_sess encoded

let nfrags s len =
  let frag_size =
    match Proto.session_control s.lower_sess Control.Get_frag_size with
    | Control.R_int n when n > 0 -> n
    | _ -> len + 1 (* lower layer does not fragment *)
  in
  max 1 ((len + frag_size - 1) / frag_size)

(* Step-function timeout: short for single-fragment requests; long
   enough for multi-fragment ones that the fragmentation layer below is
   surely done transmitting. *)
let request_timeout t s len =
  let n = nfrags s len in
  if n <= 1 then t.base_timeout
  else t.base_timeout +. (float_of_int n *. t.per_frag_timeout)

(* Effective RTO.  Before the first RTT sample (and whenever adaptation
   is off) this is exactly the paper's step function, so a loss-free run
   is indistinguishable from the fixed-timeout stack.  Once a sample
   exists, Jacobson's estimate takes over, floored by the
   fragment-serialization component alone — the part of the step
   function that measures how long the layer below is still busy — and
   capped at [rto_max]. *)
let request_rto t s len =
  if (not t.adaptive) || s.srtt < 0. then request_timeout t s len
  else
    let floor = float_of_int (nfrags s len) *. t.per_frag_timeout in
    Float.min t.rto_max (Float.max (s.srtt +. (4. *. s.rttvar)) floor)

(* Karn's backoff persistence: [s.backoff] carries over into the next
   transaction; a valid sample clears it, and every retransmitted-but-
   completed transaction decays it one step (see [handle_reply]).
   Under sustained RTT inflation Karn's rule starves the estimator
   (every transaction retransmits, so none yields a sample); keeping
   the backed-off RTO while transactions are still failing is what
   lets it converge, while the per-completion decay stops it from
   staying pinned after loss clears. *)
let backed_rto t s len =
  let rto = request_rto t s len in
  if s.backoff = 0 then rto
  else Float.min t.rto_max (rto *. (2. ** float_of_int s.backoff))

(* Load-sensitive RTO floor (the lrpc-arto cold-start storm fix).  The
   estimator's srtt describes round trips observed while [s.srtt_load]
   requests shared the server; when the protocol suddenly carries more
   than that, queueing delay inflates every RTT before a single clean
   sample can teach the estimator, and an unscaled RTO retransmits
   straight into the backlog — each retransmission adding more load, a
   storm.  Scaling the *armed* timeout by the in-flight ratio rides out
   the transient; once samples arrive at the new load the ratio returns
   to 1.  Only the armed timer is scaled: {!request_rto} (and the rto-us
   gauge derived from it) still reports the bare estimate. *)
let load_scale t s =
  if
    (not t.adaptive) || (not t.rto_load_floor) || t.in_flight <= s.srtt_load
  then 1.
  else float_of_int t.in_flight /. float_of_int (max 1 s.srtt_load)

(* Jacobson's estimator: alpha = 1/8, beta = 1/4. *)
let observe_rtt t s ~load r =
  s.srtt_load <- max 1 load;
  if s.srtt < 0. then begin
    s.srtt <- r;
    s.rttvar <- r /. 2.
  end
  else begin
    let err = r -. s.srtt in
    s.rttvar <- (0.75 *. s.rttvar) +. (0.25 *. Float.abs err);
    s.srtt <- s.srtt +. (0.125 *. err)
  end;
  s.backoff <- 0;
  Stats.tick t.c_rtt_sample;
  (* Gauges (microseconds): the most recent sample on any channel. *)
  Stats.set t.stats "srtt-us" (int_of_float (s.srtt *. 1e6));
  Stats.set t.stats "rto-us" (int_of_float (request_rto t s s.last_len *. 1e6))

let cancel_timer t o =
  match o.timer with
  | Some ev ->
      ignore (Event.cancel t.host ev);
      o.timer <- None
  | None -> ()

(* Finish the outstanding transaction: wake the blocked caller, or — on
   the uniform path — deliver the reply up through the session. *)
let complete t s outcome =
  match s.out with
  | None -> ()
  | Some o -> (
      (* Clear the slot before anything that can yield (see
         Sprite_mono.complete_call). *)
      s.out <- None;
      t.in_flight <- t.in_flight - 1;
      cancel_timer t o;
      Machine.charge t.host.Host.mach
        [ Machine.Semaphore_op; Machine.Process_switch ];
      match o.iv with
      | Some iv -> Sim.Ivar.fill iv outcome
      | None -> (
          match outcome with
          | Ok reply -> Proto.deliver s.upper ~lower:(Option.get s.xs) reply
          | Error _ -> Stats.incr t.stats "uniform-error"))

(* Crash teardown for one session, from a {!Host.at_reboot} hook.  Runs
   outside any fiber, so nothing here may charge the machine or yield:
   timers die via {!Event.abort}, callers are woken with [Rebooted].
   State is reset {e in place} — upper layers (SELECT) hold on to the
   exported session handles, and those must stay valid across a reboot;
   the fresh boot id is what makes the sequence-number reset safe. *)
let crash_session t s =
  (match s.out with
  | Some o -> (
      s.out <- None;
      t.in_flight <- t.in_flight - 1;
      (match o.timer with
      | Some ev ->
          ignore (Event.abort ev);
          o.timer <- None
      | None -> ());
      match o.iv with
      | Some iv -> Sim.Ivar.fill iv (Error Rpc_error.Rebooted)
      | None -> Stats.incr t.stats "uniform-error")
  | None -> ());
  s.next_seq <- 0;
  s.server_boot <- None;
  s.last_seq <- 0;
  s.client_boot <- 0;
  s.cached_reply <- None;
  s.busy <- false;
  s.rx_expires <- None;
  s.srtt <- -1.;
  s.rttvar <- 0.;
  s.backoff <- 0;
  s.srtt_load <- 1

let rec arm_timer t s o timeout =
  o.timer <-
    Some
      (Event.schedule t.host timeout (fun () ->
           match s.out with
           | Some o' when o' == o ->
               let expired =
                 match o.expires with
                 | Some e -> e <= Sim.now (Host.sim t.host)
                 | None -> false
               in
               if expired then begin
                 (* The caller's budget is spent: retransmitting would
                    only feed the server work it will discard. *)
                 Stats.incr t.stats "deadline-give-up";
                 complete t s (Error Rpc_error.Timeout)
               end
               else if o.tries_left <= 0 then
                 complete t s (Error Rpc_error.Timeout)
               else begin
                 o.tries_left <- o.tries_left - 1;
                 Stats.incr t.stats "retransmit";
                 (* A retransmission asks the server to acknowledge
                    explicitly if it is still working; the deadline
                    extension carries the budget *remaining now*, not
                    the original stamp. *)
                 let hdr =
                   header ~expires:o.expires t s
                     ~flags:(Wire_fmt.Flags.request lor Wire_fmt.Flags.please_ack)
                     ~seq:o.o_seq ~error:0
                 in
                 transmit t s hdr o.payload;
                 let patience =
                   if o.acked then t.base_timeout *. 4.
                   else if t.adaptive then begin
                     (* Exponential backoff on the effective RTO, capped,
                        with a little seeded jitter so a fleet of channels
                        that timed out together does not retransmit in
                        lockstep forever. *)
                     s.backoff <- s.backoff + 1;
                     Stats.incr t.stats "rto-backoff";
                     backed_rto t s (Msg.length o.payload + C.bytes)
                     *. load_scale t s
                     *. (1. +. (0.1 *. Random.State.float t.rng 1.))
                   end
                   else request_timeout t s (Msg.length o.payload + C.bytes)
                 in
                 arm_timer t s o patience
               end
           | _ -> ()))

let send_request_free t s ~iv ~expires payload =
  (* Sequence numbers start at 1: a fresh server-side channel holds
     last_seq = 0, so the first request must compare greater. *)
  s.next_seq <- s.next_seq + 1;
  let seq = s.next_seq in
  t.in_flight <- t.in_flight + 1;
  let o =
    {
      o_seq = seq;
      iv;
      payload;
      sent_at = Sim.now (Host.sim t.host);
      sent_load = t.in_flight;
      expires;
      timer = None;
      tries_left = t.retries;
      acked = false;
    }
  in
  s.out <- Some o;
  s.last_len <- Msg.length payload + C.bytes;
  Stats.tick t.c_req_tx;
  (* The synchronisation intrinsic to request/reply: the calling
     process blocks until the reply wakes it. *)
  Machine.charge t.host.Host.mach
    [ Machine.Semaphore_op; Machine.Process_switch ];
  transmit t s
    (header ~expires t s ~flags:Wire_fmt.Flags.request ~seq ~error:0)
    payload;
  arm_timer t s o
    (backed_rto t s (Msg.length payload + C.bytes) *. load_scale t s)

let send_request ?(expires = None) t s ~iv payload =
  match s.out with
  | Some _ -> (
      (* A transaction is already outstanding.  This must not raise: on
         the uniform path the push can be triggered remotely, and a
         crash of the whole host is the wrong answer.  Count it and
         reject (blocking callers) or drop (uniform pushes). *)
      match iv with
      | Some iv ->
          Stats.incr t.stats "call-busy";
          Sim.Ivar.fill iv (Error Rpc_error.Busy)
      | None ->
          Stats.incr t.stats "uniform-busy";
          (* Surface the drop where it hurts: on the protocol whose
             message was silently discarded, with a trace hook so a
             per-layer capture sees it. *)
          Stats.incr (Proto.stats s.upper) "busy-dropped";
          Trace.packet (Host.sim t.host) ~host:t.host.Host.name
            ~proto:(Proto.name s.upper) ~dir:`Send payload)
  | None -> send_request_free t s ~iv ~expires payload

let send_reply ?(error = 0) t s payload =
  let hdr = header t s ~flags:Wire_fmt.Flags.reply ~seq:s.last_seq ~error in
  Stats.tick t.c_reply_tx;
  s.busy <- false;
  let encoded = Msg.push payload (C.encode hdr) in
  s.cached_reply <- Some encoded;
  Machine.charge_one t.host.Host.mach (Machine.Header C.bytes);
  Trace.packet (Host.sim t.host) ~host:t.host.Host.name ~proto:"CHANNEL"
    ~dir:`Send encoded;
  Proto.push s.lower_sess encoded

let handle_request t s (hdr : C.t) body =
  Stats.tick t.c_req_rx;
  if hdr.C.boot_id <> s.client_boot then begin
    (* New incarnation of the client: forget the old channel state. *)
    s.client_boot <- hdr.C.boot_id;
    s.last_seq <- 0;
    s.cached_reply <- None;
    s.busy <- false
  end;
  if hdr.C.sequence_num < s.last_seq then Stats.incr t.stats "stale-rx"
  else if hdr.C.sequence_num = s.last_seq then begin
    Stats.incr t.stats "dup-req";
    match s.cached_reply with
    | Some encoded ->
        (* The implicit ack (next request) never came; resend. *)
        Stats.incr t.stats "cached-reply-tx";
        Machine.charge_one t.host.Host.mach (Machine.Header C.bytes);
        Proto.push s.lower_sess encoded
    | None ->
        if s.busy then begin
          Stats.tick t.c_ack_tx;
          transmit t s
            (header t s ~flags:Wire_fmt.Flags.ack ~seq:hdr.C.sequence_num
               ~error:0)
            Msg.empty
        end
  end
  else if hdr.C.deadline_us = 0 then
    (* The request arrived with its propagated budget already spent:
       the caller has given up, so executing it — or even claiming the
       channel — would be pure waste.  Dropping here is indistinguishable
       from packet loss, which at-most-once semantics already absorb. *)
    Stats.incr t.stats "deadline-expired-server"
  else begin
    (* A new request implicitly acknowledges the previous reply. *)
    s.last_seq <- hdr.C.sequence_num;
    s.cached_reply <- None;
    s.busy <- true;
    s.rx_expires <-
      (if hdr.C.deadline_us > 0 then
         Some
           (Sim.now (Host.sim t.host)
           +. (float_of_int hdr.C.deadline_us *. 1e-6))
       else None);
    Machine.charge_one t.host.Host.mach (Machine.Semaphore_op);
    Proto.deliver s.upper ~lower:(Option.get s.xs) body
  end

let handle_reply t s (hdr : C.t) body =
  match s.out with
  | Some o when hdr.C.sequence_num = o.o_seq -> (
      Stats.tick t.c_reply_rx;
      if t.adaptive then
        if o.tries_left = t.retries then
          (* Karn's rule: a retransmitted transaction yields no sample —
             the reply cannot be matched to a particular transmission. *)
          observe_rtt t s ~load:o.sent_load
            (Sim.now (Host.sim t.host) -. o.sent_at)
        else begin
          Stats.tick t.c_karn_skip;
          (* No sample, but the completion still witnesses a serving
             peer: decay the persistent backoff one step per completed
             transaction.  Under sustained saturation every transaction
             retransmits, so clean samples — which clear the backoff
             outright in [observe_rtt] — may never arrive; without this
             decay the RTO stays pinned at the backed-off ceiling long
             after the loss that earned it has cleared. *)
          if s.backoff > 0 then s.backoff <- s.backoff - 1
        end;
      let reboot_detected =
        match s.server_boot with
        | Some b when b <> hdr.C.boot_id -> true
        | _ -> false
      in
      s.server_boot <- Some hdr.C.boot_id;
      if reboot_detected && o.tries_left < t.retries then
        (* The server restarted while we were retransmitting: we cannot
           know whether the procedure executed. *)
        complete t s (Error Rpc_error.Rebooted)
      else
        match hdr.C.error with
        | 0 -> complete t s (Ok body)
        | e when e = C.err_busy ->
            (* Explicit admission pushback: the server refused the call
               in one RTT.  Surfaced as [Busy] so the replica layer can
               treat it as backoff pressure rather than a health
               failure. *)
            Stats.incr t.stats "busy-reply-rx";
            complete t s (Error Rpc_error.Busy)
        | e -> complete t s (Error (Rpc_error.Remote e)))
  | _ -> Stats.incr t.stats "stale-rx"

let handle_ack t s (hdr : C.t) =
  match s.out with
  | Some o when hdr.C.sequence_num = o.o_seq ->
      Stats.tick t.c_ack_rx;
      o.acked <- true
  | _ -> Stats.incr t.stats "stale-rx"

let handle_packet t s hdr body =
  let f = hdr.C.flags in
  if f land Wire_fmt.Flags.request <> 0 then handle_request t s hdr body
  else if f land Wire_fmt.Flags.reply <> 0 then handle_reply t s hdr body
  else if f land Wire_fmt.Flags.ack <> 0 then handle_ack t s hdr
  else Stats.incr t.stats "rx-malformed"

let lower_part t ~peer =
  Part.v
    ~local:[ Part.Ip t.host.Host.ip; Part.Ip_proto t.own_proto ]
    ~remotes:[ [ Part.Ip peer; Part.Ip_proto t.own_proto ] ]
    ()

let make_session t ~upper ~peer ~proto_num ~chan =
  let lower_sess = Proto.open_ t.lower ~upper:t.p (lower_part t ~peer) in
  let s =
    {
      chan;
      peer;
      proto_num;
      upper;
      lower_sess;
      xs = None;
      next_seq = 0;
      out = None;
      server_boot = None;
      last_seq = 0;
      client_boot = 0;
      cached_reply = None;
      busy = false;
      rx_expires = None;
      srtt = -1.;
      rttvar = 0.;
      backoff = 0;
      last_len = C.bytes;
      srtt_load = 1;
    }
  in
  let push msg =
    (* A busy server session replies; otherwise this is a client
       request on the uniform (non-blocking) path. *)
    if s.busy then send_reply t s msg else send_request t s ~iv:None msg
  in
  let pop _ = () in
  let s_control = function
    | Control.Get_peer_host -> Control.R_ip peer
    | Control.Get_my_host -> Control.R_ip t.host.Host.ip
    | Control.Get_peer_proto | Control.Get_my_proto -> Control.R_int proto_num
    | Control.Get_channel_count -> Control.R_int t.chans
    (* The *effective* retransmission timeout for a request the size of
       the last one sent: fragment-aware, and adaptive once the channel
       has an RTT estimate. *)
    | Control.Get_timeout | Control.Get_rto ->
        Control.R_float (request_rto t s s.last_len)
    | Control.Get_rto_backed -> Control.R_float (backed_rto t s s.last_len)
    | Control.Get_srtt -> Control.R_float (Float.max s.srtt 0.)
    | Control.Get_rx_deadline ->
        Control.R_float (Option.value s.rx_expires ~default:(-1.))
    | Control.Reject_busy ->
        (* An admission layer refusing the request currently claiming
           this channel: answer it with the explicit busy-pushback
           error.  Cached like any reply, so a duplicate of the refused
           request gets the same verdict. *)
        send_reply ~error:C.err_busy t s Msg.empty;
        Control.R_unit
    | ( Control.Get_frag_size | Control.Get_max_packet
      | Control.Get_opt_packet ) as req ->
        Proto.session_control s.lower_sess req
    | req -> Stats.control t.stats req
  in
  let close () =
    Hashtbl.remove t.sessions (Addr.Ip.to_int peer, proto_num, chan);
    match s.xs with
    | Some xs -> Hashtbl.remove t.by_id (Proto.session_id xs)
    | None -> ()
  in
  let xs =
    Proto.make_session t.p
      ~name:
        (Printf.sprintf "chan(%s,%d,#%d)" (Addr.Ip.to_string peer) proto_num
           chan)
      { push; pop; s_control; close }
  in
  s.xs <- Some xs;
  Hashtbl.replace t.sessions (Addr.Ip.to_int peer, proto_num, chan) s;
  Hashtbl.replace t.by_id (Proto.session_id xs) s;
  s

let open_session t ~upper part =
  let peer_part = Part.peer part in
  let peer =
    match Part.find_ip peer_part with
    | Some ip -> ip
    | None -> invalid_arg "Channel.open_: peer has no IP address"
  in
  let proto_num =
    match
      (Part.find_ip_proto peer_part, Part.find_ip_proto part.Part.local)
    with
    | Some n, _ | None, Some n -> n
    | None, None -> invalid_arg "Channel.open_: no IP protocol number"
  in
  let chan =
    match
      (Part.find_channel part.Part.local, Part.find_channel peer_part)
    with
    | Some c, _ | None, Some c -> c
    | None, None -> invalid_arg "Channel.open_: no channel id"
  in
  if chan < 0 || chan >= t.chans then
    invalid_arg
      (Printf.sprintf "Channel.open_: channel %d outside the fixed set of %d"
         chan t.chans);
  match Hashtbl.find_opt t.sessions (Addr.Ip.to_int peer, proto_num, chan) with
  | Some s -> Option.get s.xs
  | None -> Option.get (make_session t ~upper ~peer ~proto_num ~chan).xs

let input t ~lower msg =
  (* The channel header carries no host addresses (they would duplicate
     what every sensible lower layer already knows), so the peer's
     identity comes from the session the message arrived on. *)
  match Proto.session_control lower Control.Get_peer_host with
  | Control.R_ip peer -> (
      Trace.packet (Host.sim t.host) ~host:t.host.Host.name ~proto:"CHANNEL"
        ~dir:`Recv msg;
      match Msg.pop msg C.bytes with
      | None -> Stats.incr t.stats "rx-runt"
      | Some (raw, body) -> (
          Machine.charge_one t.host.Host.mach (Machine.Header C.bytes);
          match C.decode raw with
          | None -> Stats.incr t.stats "rx-malformed"
          | Some hdr -> (
              (* The optional deadline extension rides between the base
                 header and the payload. *)
              let hdr, body =
                if hdr.C.flags land Wire_fmt.Flags.deadline = 0 then
                  (Some hdr, body)
                else
                  match Msg.pop body C.ext_bytes with
                  | Some (ext, rest) -> (
                      match C.decode_ext ext with
                      | Some d -> (Some { hdr with C.deadline_us = d }, rest)
                      | None -> (None, rest))
                  | None -> (None, body)
              in
              match hdr with
              | None -> Stats.incr t.stats "rx-runt"
              | Some hdr -> (
                  let key =
                    (Addr.Ip.to_int peer, hdr.C.protocol_num, hdr.C.channel)
                  in
                  match Hashtbl.find_opt t.sessions key with
                  | Some s -> handle_packet t s hdr body
                  | None -> (
                      match Hashtbl.find_opt t.enabled hdr.C.protocol_num with
                      | Some upper ->
                          let s =
                            make_session t ~upper ~peer
                              ~proto_num:hdr.C.protocol_num ~chan:hdr.C.channel
                          in
                          handle_packet t s hdr body
                      | None -> Stats.incr t.stats "rx-unbound")))))
  | _ -> Stats.incr t.stats "rx-unidentified"

let call ?expires t xs msg =
  (* O(1): the reverse table maps the exported session back to its
     state without scanning every open channel. *)
  let s =
    match Hashtbl.find_opt t.by_id (Proto.session_id xs) with
    | Some s -> s
    | None -> invalid_arg "Channel.call: not a channel session of this protocol"
  in
  let iv = Sim.Ivar.create (Host.sim t.host) in
  send_request ~expires t s ~iv:(Some iv) msg;
  Sim.Ivar.read iv

let create ~host ~lower ?(proto_num = 93) ?(n_channels = 8)
    ?(base_timeout = 0.02) ?(per_frag_timeout = 0.003) ?(retries = 5)
    ?(adaptive = true) ?(rto_load_floor = true) ?(rto_max = 1.0) () =
  let p = Proto.create ~host ~name:"CHANNEL" () in
  let t =
    {
      host;
      lower;
      own_proto = proto_num;
      chans = n_channels;
      base_timeout;
      per_frag_timeout;
      retries;
      adaptive;
      rto_load_floor;
      rto_max;
      rng = Sim.rng (Host.sim host);
      p;
      sessions = Hashtbl.create 32;
      by_id = Hashtbl.create 32;
      enabled = Hashtbl.create 8;
      stats = Proto.stats p;
      in_flight = 0;
      c_rtt_sample = Stats.counter (Proto.stats p) "rtt-sample";
      c_req_tx = Stats.counter (Proto.stats p) "req-tx";
      c_reply_tx = Stats.counter (Proto.stats p) "reply-tx";
      c_req_rx = Stats.counter (Proto.stats p) "req-rx";
      c_reply_rx = Stats.counter (Proto.stats p) "reply-rx";
      c_karn_skip = Stats.counter (Proto.stats p) "karn-skip";
      c_ack_tx = Stats.counter (Proto.stats p) "ack-tx";
      c_ack_rx = Stats.counter (Proto.stats p) "ack-rx";
    }
  in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper part -> open_session t ~upper part);
      open_enable =
        (fun ~upper part ->
          match Part.find_ip_proto part.Part.local with
          | None -> invalid_arg "Channel.open_enable: no IP protocol number"
          | Some proto_num ->
              Hashtbl.replace t.enabled proto_num upper;
              Proto.open_enable t.lower ~upper:t.p
                (Part.v ~local:[ Part.Ip_proto t.own_proto ] ()));
      open_done = (fun ~upper part -> open_session t ~upper part);
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control =
        (fun req ->
          match req with
          | Control.Get_channel_count -> Control.R_int t.chans
          (* Our requests ride whatever the lower layer carries; ask it. *)
          | Control.Get_max_msg_size | Control.Get_max_packet ->
              Proto.control t.lower Control.Get_max_packet
          | Control.Get_opt_packet -> Proto.control t.lower req
          | Control.Get_boot_id -> Control.R_int host.Host.boot_id
          | req -> Stats.control t.stats req);
    };
  Proto.declare_below p [ lower ];
  (* A crash takes every channel with it: at-most-once state, reply
     caches and RTT estimates all belong to the dead incarnation. *)
  Host.at_reboot host (fun () ->
      Stats.incr t.stats "crash-reset";
      Hashtbl.iter (fun _ s -> crash_session t s) t.sessions);
  t
