(* Experiment runners for every table and figure of the paper.
   Shared by bench/main.exe and the bin/xkrpc CLI. *)

open Xkernel
module World = Netproto.World

let pr = Printf.printf
let section title = pr "\n=== %s ===\n%!" title
let hr () = pr "%s\n" (String.make 78 '-')

(* --- shared row machinery ------------------------------------------------ *)

type paper_row = {
  p_lat : float option;
  p_tput : float option;
  p_incr : float option;
}

let paper ?lat ?tput ?incr () = { p_lat = lat; p_tput = tput; p_incr = incr }

let print_header () =
  pr "%-30s %18s %22s %24s\n" "Configuration" "Latency (msec)"
    "Throughput (kB/s)" "Incr. cost (msec/kB)";
  pr "%-30s %18s %22s %24s\n" "" "paper / here" "paper / here" "paper / here";
  hr ()

let opt_str f = function Some v -> Printf.sprintf f v | None -> "-"

let print_row name p (r : Measure.row) =
  pr "%-30s %8s / %-7.2f %10s / %-9.0f %12s / %-9.2f\n%!" name
    (opt_str "%.2f" p.p_lat) r.Measure.latency_ms
    (opt_str "%.0f" p.p_tput) r.throughput_kbs
    (opt_str "%.2f" p.p_incr) r.incr_cost_ms_per_kb

let measure_config ?profile mk =
  let w = World.create ?profile () in
  Measure.row w (mk w)

(* Every runner also returns its rows as JSON so bench/main and the CLI
   can emit machine-readable trajectory files alongside the tables. *)

let row_json ~table name (r : Measure.row) =
  Json.Obj
    [
      ("table", Json.Str table);
      ("config", Json.Str name);
      ("latency_ms", Json.Float r.Measure.latency_ms);
      ("throughput_kbs", Json.Float r.throughput_kbs);
      ("incr_cost_ms_per_kb", Json.Float r.incr_cost_ms_per_kb);
      ("client_cpu_ms", Json.Float r.client_cpu_ms);
    ]

let lat_json ~table name v =
  Json.Obj
    [
      ("table", Json.Str table);
      ("config", Json.Str name);
      ("latency_ms", Json.Float v);
    ]

(* --- intro comparison ---------------------------------------------------- *)

let intro () =
  section "Intro: UDP/IP user-to-user round trip (x-kernel vs SunOS 4.0)";
  let udp_lat ~profile =
    let w = World.create ~profile () in
    let pc, _ = Stacks.udp_probe w ~user_level:true in
    Measure.probe_latency w pc ~peer:(World.ip_of w 1)
  in
  let xk = udp_lat ~profile:Machine.xkernel_sun3 in
  let sunos = udp_lat ~profile:Machine.sunos_socket in
  pr "%-30s %8s / %-8s\n" "Configuration" "paper" "here";
  hr ();
  pr "%-30s %8.2f / %-8.2f\n" "UDP-IP-ETH in the x-kernel" 2.00 xk;
  pr "%-30s %8.2f / %-8.2f\n" "UDP in SunOS Release 4.0" 5.36 sunos;
  Json.Arr
    [
      lat_json ~table:"intro" "UDP-IP-ETH x-kernel" xk;
      lat_json ~table:"intro" "UDP SunOS 4.0" sunos;
    ]

(* --- Table I ------------------------------------------------------------- *)

let table1 () =
  section "Table I: Evaluating VIP";
  print_header ();
  let rows = ref [] in
  let emit name p r =
    print_row name p r;
    rows := row_json ~table:"I" name r :: !rows
  in
  (* N.RPC: the monolithic protocol under the heavier native-Sprite
     kernel cost profile (see DESIGN.md substitutions). *)
  emit "N_RPC (Sprite kernel model)"
    (paper ~lat:2.6 ~tput:700. ~incr:1.2 ())
    (measure_config ~profile:Machine.sprite_kernel (fun w ->
         Stacks.mrpc w ~lower:Stacks.L_eth));
  emit "M_RPC-ETH"
    (paper ~lat:1.73 ~tput:863. ~incr:1.04 ())
    (measure_config (fun w -> Stacks.mrpc w ~lower:Stacks.L_eth));
  emit "M_RPC-IP"
    (paper ~lat:2.10 ~tput:836. ~incr:1.05 ())
    (measure_config (fun w -> Stacks.mrpc w ~lower:Stacks.L_ip));
  emit "M_RPC-VIP"
    (paper ~lat:1.79 ~tput:860. ~incr:1.04 ())
    (measure_config (fun w -> Stacks.mrpc w ~lower:Stacks.L_vip));
  Json.Arr (List.rev !rows)

(* --- Table II ------------------------------------------------------------ *)

let table2 () =
  section "Table II: Monolithic RPC versus Layered RPC";
  print_header ();
  let mono = measure_config (fun w -> Stacks.mrpc w ~lower:Stacks.L_vip) in
  let layered = measure_config (fun w -> Stacks.lrpc w) in
  print_row "M_RPC-VIP" (paper ~lat:1.79 ~tput:860. ~incr:1.04 ()) mono;
  print_row "L_RPC-VIP" (paper ~lat:1.93 ~tput:839. ~incr:1.03 ()) layered;
  pr "\nCPU time per 16 KB call (client): monolithic %.2f ms, layered %.2f ms\n"
    mono.Measure.client_cpu_ms layered.Measure.client_cpu_ms;
  (* Section 4.2's note: FRAGMENT by itself reaches 865 kB/s. *)
  let w = World.create () in
  let pc, _ = Stacks.fragment_probe w in
  let points =
    Measure.probe_sweep ~sizes:[ 16384 ] ~iters:4 w pc ~peer:(World.ip_of w 1)
  in
  let frag_alone =
    match points with
    | [ (size, t) ] ->
        (* the probe echoes the payload, so each direction carries [size]
           bytes in roughly half the round trip *)
        let kbs = Measure.throughput_kbs ~size (t /. 2.) in
        pr "FRAGMENT alone (paper 865 kB/s): %.0f kB/s\n" kbs;
        [
          Json.Obj
            [
              ("table", Json.Str "II");
              ("config", Json.Str "FRAGMENT alone");
              ("throughput_kbs", Json.Float kbs);
            ];
        ]
    | _ -> []
  in
  Json.Arr
    ([ row_json ~table:"II" "M_RPC-VIP" mono;
       row_json ~table:"II" "L_RPC-VIP" layered ]
    @ frag_alone)

(* --- Table III ----------------------------------------------------------- *)

let table3 () =
  section "Table III: Cost of Individual RPC Layers";
  pr "%-30s %16s %26s\n" "Configuration" "Latency (msec)"
    "Incr. cost (msec/layer)";
  pr "%-30s %16s %26s\n" "" "paper / here" "paper / here";
  hr ();
  let probe_lat mk =
    let w = World.create () in
    let pc, _ = mk w in
    Measure.probe_latency w pc ~peer:(World.ip_of w 1)
  in
  let call_lat mk =
    let w = World.create () in
    Measure.latency w (mk w)
  in
  let vip = probe_lat Stacks.vip_probe in
  let frag = probe_lat Stacks.fragment_probe in
  let chan = call_lat Stacks.channel_fragment_vip in
  let full = call_lat Stacks.lrpc in
  let rows = ref [] in
  let row name ~paper_lat ~paper_incr ~here ~prev =
    let incr =
      match prev with None -> "NA" | Some p -> Printf.sprintf "%.2f" (here -. p)
    in
    pr "%-30s %6.2f / %-7.2f %10s / %-8s\n" name paper_lat here
      (match paper_incr with None -> "NA" | Some v -> Printf.sprintf "%.2f" v)
      incr;
    let j =
      ("config", Json.Str name) :: ("latency_ms", Json.Float here)
      ::
      (match prev with
      | None -> []
      | Some p -> [ ("incr_cost_ms_per_layer", Json.Float (here -. p)) ])
    in
    rows := Json.Obj (("table", Json.Str "III") :: j) :: !rows
  in
  row "VIP" ~paper_lat:1.12 ~paper_incr:None ~here:vip ~prev:None;
  row "FRAGMENT-VIP" ~paper_lat:1.33 ~paper_incr:(Some 0.21) ~here:frag
    ~prev:(Some vip);
  row "CHANNEL-FRAGMENT-VIP" ~paper_lat:1.82 ~paper_incr:(Some 0.49) ~here:chan
    ~prev:(Some frag);
  row "SELECT-CHANNEL-FRAGMENT-VIP" ~paper_lat:1.93 ~paper_incr:(Some 0.11)
    ~here:full ~prev:(Some chan);
  Json.Arr (List.rev !rows)

(* --- Section 4.3: dynamically removing layers --------------------------- *)

let removal () =
  section "Section 4.3: Dynamically Removing Layers (Figure 3)";
  let mono =
    let w = World.create () in
    Measure.latency w (Stacks.mrpc w ~lower:Stacks.L_vip)
  in
  let layered =
    let w = World.create () in
    Measure.latency w (Stacks.lrpc w)
  in
  let w = World.create () in
  let e = Stacks.lrpc_vip_size w in
  let bypass = Measure.latency w e in
  pr "%-34s %8s / %-8s\n" "Configuration" "paper" "here";
  hr ();
  pr "%-34s %8.2f / %-8.2f\n" "M_RPC-VIP (monolithic)" 1.79 mono;
  pr "%-34s %8.2f / %-8.2f\n" "SELECT-CHANNEL-FRAGMENT-VIP" 1.93 layered;
  pr "%-34s %8.2f / %-8.2f\n" "SELECT-CHANNEL-VIPsize (fig 3b)" 1.78 bypass;
  pr "\nBypassing FRAGMENT recovers %.2f of the %.2f msec layering penalty.\n"
    (layered -. bypass) (layered -. mono);
  (* bulk traffic still flows (through FRAGMENT below VIPsize) *)
  let ok =
    let payload = Msg.fill 16000 'b' in
    let r = ref false in
    World.spawn w (fun () ->
        r :=
          match e.Stacks.call ~command:Stacks.cmd_echo payload with
          | Ok reply -> Msg.length reply = 16000
          | Error _ -> false);
    World.run w;
    !r
  in
  pr "16 KB messages still travel via FRAGMENT below VIPsize: %s\n"
    (if ok then "yes" else "NO - BROKEN");
  Json.Arr
    [
      lat_json ~table:"fig3" "M_RPC-VIP (monolithic)" mono;
      lat_json ~table:"fig3" "SELECT-CHANNEL-FRAGMENT-VIP" layered;
      lat_json ~table:"fig3" "SELECT-CHANNEL-VIPsize" bypass;
      Json.Obj
        [
          ("table", Json.Str "fig3");
          ("config", Json.Str "bulk via FRAGMENT below VIPsize");
          ("ok", Json.Bool ok);
        ];
    ]

(* --- figures: protocol graphs ------------------------------------------- *)

(* [fig2_extra] lets callers that link higher layers (Psync lives in a
   library above this one) contribute protocols to the Figure 2 suite. *)
let figures ?fig2_extra () =
  section "Figure 1: example x-kernel configuration (protocol graph)";
  let w = World.create () in
  let n0 = World.node w 0 in
  let udp =
    Netproto.Udp.create ~host:n0.World.host
      ~lower:(Netproto.Ip.proto n0.World.ip) ()
  in
  Format.printf "%a" Proto.pp_graph [ Netproto.Udp.proto udp ];
  section "Figure 2: VIP protocol suite (RPC, Psync, UDP above VIP)";
  let w2 = World.create () in
  let n0 = World.node w2 0 in
  let frag =
    Fragment.create ~host:n0.World.host
      ~lower:(Netproto.Vip.proto n0.World.vip) ()
  in
  let chan =
    Channel.create ~host:n0.World.host ~lower:(Fragment.proto frag) ()
  in
  let sel = Select.create ~host:n0.World.host ~channel:chan () in
  let udp2 =
    Netproto.Udp.create ~host:n0.World.host
      ~lower:(Netproto.Vip.proto n0.World.vip) ()
  in
  let extra =
    match fig2_extra with
    | Some f -> [ f ~host:n0.World.host ~lower:(Fragment.proto frag) ]
    | None -> []
  in
  Format.printf "%a" Proto.pp_graph
    ([ Select.proto sel ] @ extra @ [ Netproto.Udp.proto udp2 ]);
  section "Figure 3: alternative configurations using RPC layers";
  let w3 = World.create () in
  let n = World.node w3 0 in
  let fa =
    Fragment.create ~host:n.World.host
      ~lower:(Netproto.Vip.proto n.World.vip) ()
  in
  let ca =
    Channel.create ~host:n.World.host ~lower:(Fragment.proto fa) ()
  in
  let sa = Select.create ~host:n.World.host ~channel:ca () in
  pr "(a) FRAGMENT above VIP:\n";
  Format.printf "%a" Proto.pp_graph [ Select.proto sa ];
  let w4 = World.create () in
  let n = World.node w4 0 in
  let vaddr = Netproto.Vip_addr.proto n.World.vip_addr in
  let fb = Fragment.create ~host:n.World.host ~lower:vaddr () in
  let vsize =
    Netproto.Vip_size.create ~host:n.World.host ~bulk:(Fragment.proto fb)
      ~direct:vaddr ~arp:n.World.arp
  in
  let cb =
    Channel.create ~host:n.World.host
      ~lower:(Netproto.Vip_size.proto vsize) ()
  in
  let sb = Select.create ~host:n.World.host ~channel:cb () in
  pr "(b) FRAGMENT below VIPsize:\n";
  Format.printf "%a" Proto.pp_graph [ Select.proto sb ];
  (* graphs are diagrams, not measurements — nothing to export *)
  Json.Null

(* --- ablation: buffer management ----------------------------------------- *)

let ablation () =
  section "Ablation: buffer management (section 5, Potential Pitfalls)";
  let lat scheme =
    let profile = Machine.with_buffer_scheme scheme Machine.xkernel_sun3 in
    let w = World.create ~profile () in
    Measure.latency w (Stacks.lrpc w)
  in
  let pre = lat Machine.Prealloc in
  let per = lat Machine.Per_header_alloc in
  pr "L.RPC-VIP latency, pre-allocated header buffer:  %.2f msec\n" pre;
  pr "L.RPC-VIP latency, per-header buffer allocation: %.2f msec\n" per;
  pr
    "(paper: per-header allocation raised the minimum per-layer cost from\n\
    \ 0.11 to 0.50 msec; the %.2f msec gap above is that error, repeated at\n\
    \ every layer of the stack)\n"
    (per -. pre);
  Json.Arr
    [
      lat_json ~table:"ablation" "L_RPC-VIP prealloc buffers" pre;
      lat_json ~table:"ablation" "L_RPC-VIP per-header alloc" per;
    ]

(* --- CPU-time comparison -------------------------------------------------- *)

let cpu_note () =
  section "CPU time (sections 4.1-4.2: VIP and layering use less CPU)";
  let rows = ref [] in
  let row name mk =
    let r = measure_config mk in
    pr "%-30s client CPU per 16 KB call: %.2f ms\n" name
      r.Measure.client_cpu_ms;
    rows :=
      Json.Obj
        [
          ("table", Json.Str "cpu");
          ("config", Json.Str name);
          ("client_cpu_ms", Json.Float r.Measure.client_cpu_ms);
        ]
      :: !rows
  in
  row "M_RPC-IP" (fun w -> Stacks.mrpc w ~lower:Stacks.L_ip);
  row "M_RPC-VIP" (fun w -> Stacks.mrpc w ~lower:Stacks.L_vip);
  row "L_RPC-VIP" Stacks.lrpc;
  Json.Arr (List.rev !rows)

(* --- loss sweep: fixed vs adaptive retransmission timeout ---------------- *)

let loss_rates = [ 0.0; 0.02; 0.05; 0.10; 0.20 ]

let loss_sweep () =
  section "Loss sweep: fixed vs adaptive retransmission timeout";
  (* Null RPCs from [conc] concurrent client fibers over [conc]
     channels.  Concurrency matters: contention for the two hosts' CPUs
     inflates the round trip well past the fixed 20 ms step, so the
     fixed stack retransmits spuriously while the adaptive one tracks
     the real RTT — on top of whatever the configured drop rate does. *)
  let conc = 48 and warm = 4 and calls = 12 in
  pr "%d fibers x %d null calls per config (after %d warm-up calls each);\n"
    conc calls warm;
  pr "same world seed per rate; warm-up retransmissions excluded\n\n";
  pr "%6s %10s %6s %8s %12s %12s %10s\n" "drop" "config" "ok" "failed"
    "retransmits" "elapsed ms" "calls/s";
  hr ();
  let run ~adaptive ~rate =
    Stats.reset_registry ();
    let w = World.create () in
    (* [rto_load_floor:false]: these rows are pinned (§4.2).  At 48-way
       concurrency on one channel set, Karn's backoff persistence already
       converges the estimator through the congested warm-up; the floor
       would change the (published) retransmission counts without
       changing the experiment's verdict. *)
    let e = Stacks.lrpc ~adaptive ~rto_load_floor:false ~n_channels:conc w in
    let chan_stat name =
      match Stats.find (e.Stacks.client_host.Host.name ^ "/CHANNEL") with
      | Some st -> Stats.get st name
      | None -> 0
    in
    let ok = ref 0 and failed = ref 0 in
    let retr0 = ref 0 in
    let t0 = ref 0. and t1 = ref 0. in
    (* Loss-free warm-up at full concurrency, so both stacks enter the
       measured phase converged on the congested round-trip time the
       concurrency produces. *)
    let warm_left = ref conc in
    let measure () =
      retr0 := chan_stat "retransmit";
      Wire.set_drop_rate w.World.wire rate;
      t0 := Sim.now w.World.sim;
      let remaining = ref conc in
      for _ = 1 to conc do
        Sim.spawn w.World.sim (fun () ->
            for _ = 1 to calls do
              match e.Stacks.call ~command:Stacks.cmd_null Msg.empty with
              | Ok _ -> incr ok
              | Error _ -> incr failed
            done;
            decr remaining;
            if !remaining = 0 then t1 := Sim.now w.World.sim)
      done
    in
    for _ = 1 to conc do
      World.spawn w (fun () ->
          for _ = 1 to warm do
            ignore (e.Stacks.call ~command:Stacks.cmd_null Msg.empty)
          done;
          decr warm_left;
          if !warm_left = 0 then measure ())
    done;
    World.run w;
    let retr = chan_stat "retransmit" - !retr0 in
    let elapsed = !t1 -. !t0 in
    let config = if adaptive then "adaptive" else "fixed" in
    let rate_s = float_of_int (conc * calls) /. elapsed in
    pr "%5.0f%% %10s %6d %8d %12d %12.1f %10.0f\n%!" (rate *. 100.) config !ok
      !failed retr (elapsed *. 1e3) rate_s;
    ( retr,
      Json.Obj
        [
          ("table", Json.Str "loss");
          ("config", Json.Str config);
          ("drop", Json.Float rate);
          ("ok", Json.Int !ok);
          ("failed", Json.Int !failed);
          ("retransmits", Json.Int retr);
          ("elapsed_ms", Json.Float (elapsed *. 1e3));
          ("calls_per_sec", Json.Float rate_s);
          ("srtt_us", Json.Int (chan_stat "srtt-us"));
          ("rto_us", Json.Int (chan_stat "rto-us"));
        ] )
  in
  let rows = ref [] in
  let verdicts = ref [] in
  List.iter
    (fun rate ->
      let fixed_retr, fixed_row = run ~adaptive:false ~rate in
      let adapt_retr, adapt_row = run ~adaptive:true ~rate in
      rows := adapt_row :: fixed_row :: !rows;
      verdicts := (rate, fixed_retr, adapt_retr) :: !verdicts)
    loss_rates;
  pr "\n";
  List.iter
    (fun (rate, f, a) ->
      pr "at %.0f%% loss: adaptive %d vs fixed %d retransmissions (%s)\n"
        (rate *. 100.) a f
        (if a < f then "adaptive wins"
         else if a = f then "tie"
         else "fixed wins"))
    (List.rev !verdicts);
  Json.Arr (List.rev !rows)

(* --- capacity sweep: offered load vs throughput and tail latency --------- *)

(* The capacity "lrpc" stack uses the paper's fixed step timeout
   (20 msec base).  The adaptive (Jacobson/Karn) RTO — "lrpc-arto" —
   learns srtt ~2 msec at idle and then fires prematurely once
   queueing delay under load exceeds srtt + 4*rttvar; Karn's rule
   keeps retransmitted transactions from resampling, so the sweep
   measures an exponential-backoff storm instead of saturation.  Run
   both to see it. *)
let fan_builders =
  [
    ("mrpc-eth", fun f -> Stacks.mrpc_fanin ~lower:Stacks.L_eth f);
    ("mrpc-ip", fun f -> Stacks.mrpc_fanin ~lower:Stacks.L_ip f);
    ("mrpc-vip", fun f -> Stacks.mrpc_fanin ~lower:Stacks.L_vip f);
    ("lrpc", fun f -> Stacks.lrpc_fanin ~adaptive:false f);
    ("lrpc-arto", fun f -> Stacks.lrpc_fanin ~adaptive:true f);
  ]

let capacity_stacks_default = [ "mrpc-vip"; "lrpc" ]
let capacity_rates_default = [ 100.; 200.; 400.; 800.; 1200.; 1600.; 2000. ]
let capacity_conc_default = [ 1; 4; 16 ]

let capacity ?(stacks = capacity_stacks_default)
    ?(rates = capacity_rates_default) ?(arrivals = 300) ?(clients = 4)
    ?(window = 48) ?(conc = capacity_conc_default) () =
  section "Capacity sweep: offered load vs throughput and tail latency";
  pr "%d client hosts fan into 1 server; open loop: Poisson arrivals,\n"
    clients;
  pr "window %d (arrivals beyond it are shed), %d arrivals per step\n\n"
    window arrivals;
  pr "%10s %13s %8s %8s %8s %8s %8s %6s %6s %5s\n" "config" "mode"
    "offered" "achieved" "p50 ms" "p99 ms" "p99.9ms" "shed" "queue" "wire";
  hr ();
  let builder name =
    match List.assoc_opt name fan_builders with
    | Some mk -> mk
    | None ->
        failwith
          (Printf.sprintf "capacity: unknown stack %S (try: %s)" name
             (String.concat ", " (List.map fst fan_builders)))
  in
  let print_r (r : Load.result) =
    let p q = float_of_int (Histogram.percentile r.Load.hist q) /. 1e3 in
    pr "%10s %13s %8.0f %8.0f %8.2f %8.2f %8.2f %6d %6d %4.0f%%\n%!"
      r.Load.r_config r.r_mode r.offered_rps r.achieved_rps (p 50.) (p 99.)
      (p 99.9) r.shed r.queue_depth_max (r.wire_util *. 100.)
  in
  let row r =
    match Load.to_json r with
    | Json.Obj fields -> Json.Obj (("table", Json.Str "capacity") :: fields)
    | j -> j
  in
  let rows = ref [] in
  List.iter
    (fun stack ->
      let mk = builder stack in
      (* closed loop: throughput as a function of concurrency *)
      List.iter
        (fun fibers ->
          let f = World.create_fanin ~clients () in
          let r = Load.run_closed ~fibers (f : World.fanin) (mk f) in
          print_r r;
          rows := row r :: !rows)
        conc;
      (* open loop: offered-load sweep from idle past saturation *)
      List.iter
        (fun rate ->
          let f = World.create_fanin ~clients () in
          let r = Load.run_open ~rate ~arrivals ~window f (mk f) in
          print_r r;
          rows := row r :: !rows)
        rates)
    stacks;
  pr
    "\n\
     (Reading the knee: achieved tracks offered while shed = 0; past\n\
    \ saturation achieved plateaus, p99 grows superlinearly and the\n\
    \ window starts shedding.)\n";
  Json.Arr (List.rev !rows)


(* --- failover: crash-availability over replicated servers ---------------- *)

let failover ?(servers = 4) ?(clients = 4) ?(rate = 800.) ?(arrivals = 400)
    ?(window = 64) ?(seed = 42) () =
  section "Failover: crash one of K replicas under open-loop load";
  pr "%d clients x round-robin over %d replicas; uniform arrivals at\n"
    clients servers;
  pr "%.0f calls/s, %d arrivals; replica 0 crashes and stays partitioned\n"
    rate arrivals;
  pr "mid-sweep, then heals\n\n";
  Stats.reset_registry ();
  (* Per-attempt and whole-call bounds, and the suspect-probe cadence.
     All well above the warmed null-RTT (~2.5 ms) and well below the
     CHANNEL RTO ladder a dead host would otherwise cost. *)
  let attempt_timeout = 0.04 and deadline = 0.4 and probation = 0.03 in
  (* Absolute schedule, so the chaos plan can be compiled before the
     run starts: warm-up happens before [t_start]; the dispatcher then
     idles until exactly [t_start]. *)
  let t_start = 0.25 in
  let duration = float_of_int arrivals /. rate in
  let crash_t = t_start +. (duration *. 0.3) in
  let outage = duration *. 0.25 in
  let heal_t = crash_t +. outage in
  let fo = World.create_fanout ~clients ~servers ~seed () in
  let w = fo.World.fo in
  let sim = w.World.sim in
  let s =
    Stacks.lrpc_fanout ~attempt_timeout ~deadline ~probation fo
  in
  (* Replica 0 reboots at the crash instant and is unreachable until
     [heal_t] — a host that is down for a while, not a blink. *)
  Chaos.apply ~wire:w.World.wire ~devices:(World.devices w)
    [
      { Chaos.from_t = crash_t; until_t = heal_t; spec = Chaos.Crash 0 };
      {
        Chaos.from_t = crash_t;
        until_t = heal_t;
        spec =
          Chaos.Partition
            { a = [ 0 ]; b = List.init (servers + clients - 1) (fun i -> i + 1) };
      };
    ];
  let m = Array.length s.Stacks.fos_clients in
  let hist = Load.new_hist () in
  let completed = ref 0 and failed = ref 0 and shed = ref 0 in
  let pre = ref 0 and blip = ref 0 and post = ref 0 in
  let shed_after_heal = ref 0 in
  let pending = ref 0 and pending_max = ref 0 in
  let t_end = ref 0. and max_lat = ref 0. in
  let dispatched_all = ref false in
  let one_call i =
    let t = Sim.now sim in
    (match s.Stacks.fos_call i ~command:Stacks.cmd_null Msg.empty with
    | Ok _ ->
        incr completed;
        let now = Sim.now sim in
        if now < crash_t then incr pre
        else if now < heal_t then incr blip
        else incr post
    | Error _ -> incr failed);
    let now = Sim.now sim in
    let lat = now -. t in
    Histogram.record hist (Load.us_of lat);
    if lat > !max_lat then max_lat := lat;
    if now > !t_end then t_end := now;
    decr pending
  in
  let dispatcher () =
    let now = Sim.now sim in
    if t_start > now then Sim.delay sim (t_start -. now);
    for k = 0 to arrivals - 1 do
      if !pending >= window then begin
        incr shed;
        if Sim.now sim >= heal_t then incr shed_after_heal
      end
      else begin
        incr pending;
        if !pending > !pending_max then pending_max := !pending;
        let i = k mod m in
        Sim.spawn sim (fun () -> one_call i)
      end;
      if k < arrivals - 1 then Sim.delay sim (1. /. rate)
    done;
    dispatched_all := true
  in
  (* Warm every (client, replica) pair — ARP, channel sessions, RTT
     estimators — before the arrival clock starts. *)
  let warm_left = ref m in
  for i = 0 to m - 1 do
    World.spawn w (fun () ->
        for _ = 1 to servers do
          ignore (s.Stacks.fos_call i ~command:Stacks.cmd_null Msg.empty)
        done;
        decr warm_left;
        if !warm_left = 0 then Sim.spawn sim dispatcher)
  done;
  World.run w;
  assert !dispatched_all;
  let sum f = Array.fold_left (fun a r -> a + f r) 0 s.Stacks.fos_replicas in
  let failovers = sum Select_replica.failovers in
  let probes_sent = sum Select_replica.probes_sent in
  let probes_ok = sum Select_replica.probes_ok in
  let goodput n dt = if dt > 0. then float_of_int n /. dt else 0. in
  let g_pre = goodput !pre (crash_t -. t_start) in
  let g_blip = goodput !blip outage in
  let g_post = goodput !post (!t_end -. heal_t) in
  let p q = float_of_int (Histogram.percentile hist q) /. 1e3 in
  pr "%12s %10s %10s %10s %8s %8s %8s\n" "phase" "goodput/s" "" "" "p99 ms"
    "p99.9ms" "max ms";
  hr ();
  pr "%12s %10.0f\n" "pre-crash" g_pre;
  pr "%12s %10.0f\n" "outage" g_blip;
  pr "%12s %10.0f\n" "healed" g_post;
  pr "%12s %10s %10s %10s %8.2f %8.2f %8.2f\n%!" "all" "" "" "" (p 99.)
    (p 99.9) (!max_lat *. 1e3);
  pr
    "\n\
     completed %d  failed %d  shed %d  failovers %d  probes %d/%d ok\n\
     (The outage dip is bounded by one replica's share: each client\n\
    \ fails over after one %.0f ms attempt, marks replica 0 suspect and\n\
    \ routes around it until a probe heals it.)\n"
    !completed !failed !shed failovers probes_ok probes_sent
    (attempt_timeout *. 1e3);
  Json.Arr
    [
      Json.Obj
        [
          ("table", Json.Str "failover");
          ("config", Json.Str s.Stacks.fos_name);
          ("servers", Json.Int servers);
          ("clients", Json.Int clients);
          ("seed", Json.Int seed);
          ( "map_version",
            Json.Int
              (Array.fold_left
                 (fun a r -> max a (Select_replica.map_version r))
                 0 s.Stacks.fos_replicas) );
          ("offered_rps", Json.Float rate);
          ("arrivals", Json.Int arrivals);
          ("completed", Json.Int !completed);
          ("failed", Json.Int !failed);
          ("shed", Json.Int !shed);
          ("shed_after_heal", Json.Int !shed_after_heal);
          ("failovers", Json.Int failovers);
          ("probes_sent", Json.Int probes_sent);
          ("probes_ok", Json.Int probes_ok);
          ("crash_ms", Json.Float ((crash_t -. t_start) *. 1e3));
          ("outage_ms", Json.Float (outage *. 1e3));
          ("goodput_pre_rps", Json.Float g_pre);
          ("goodput_outage_rps", Json.Float g_blip);
          ("goodput_healed_rps", Json.Float g_post);
          ("attempt_timeout_us", Json.Int (Load.us_of attempt_timeout));
          ("deadline_us", Json.Int (Load.us_of deadline));
          ("max_us", Json.Int (Load.us_of !max_lat));
          ("pending_max", Json.Int !pending_max);
          ("latency_us", Histogram.to_json hist);
        ];
    ]

(* --- rebalance: dynamic shard map under chaos ----------------------------- *)

let rebalance_modes = [ "static"; "crash-rebalance"; "skew-rebalance" ]

let rebalance ?(servers = 4) ?(clients = 4) ?(shards = 16) ?(rate = 800.)
    ?(arrivals = 600) ?(window = 64) ?(seed = 42) ?(modes = rebalance_modes) ()
    =
  section "Rebalance: dynamic shard map, chaos crash and load skew";
  pr "%d clients x %d shards over %d replicas; uniform arrivals at\n" clients
    shards servers;
  pr
    "%.0f calls/s, %d arrivals per mode; seed %d.  Mid-run, crash modes\n\
     lose replica 0 for good; the skew mode redirects half the arrivals\n\
     at one hot shard.\n\n"
    rate arrivals seed;
  List.iter
    (fun m ->
      if not (List.mem m rebalance_modes) then
        invalid_arg
          (Printf.sprintf "rebalance: unknown mode %S (try: %s)" m
             (String.concat ", " rebalance_modes)))
    modes;
  (* Same per-attempt bounds as the failover experiment, plus bounded
     probes so a crashed owner is declared Dead in a couple hundred
     milliseconds instead of after the CHANNEL RTO ladder. *)
  let attempt_timeout = 0.04 and deadline = 0.4 in
  let probation = 0.02 and probe_timeout = 0.03 and probe_limit = 2 in
  let drain_deadline = 0.05 in
  let t_start = 0.25 in
  let duration = float_of_int arrivals /. rate in
  if duration < 0.55 then
    invalid_arg "rebalance: arrivals/rate too short for the phase grid";
  let chaos_t = t_start +. (duration *. 0.3) in
  (* The dip phase is a fixed quarter second from the fault: long
     enough for health detection (~200 ms with the bounds above) plus a
     rebalance tick and the MAP push. *)
  let dip_window = 0.25 in
  let heal_t = chaos_t +. dip_window in
  let t_stop = t_start +. duration +. 0.6 in
  let step mode =
    Stats.reset_registry ();
    let crash = mode <> "skew-rebalance" in
    let fo = World.create_fanout ~clients ~servers ~seed () in
    let w = fo.World.fo in
    let sim = w.World.sim in
    let map = Shard_map.create ~seed ~shards ~replicas:servers in
    let s =
      Stacks.lrpc_fanout ~attempt_timeout ~deadline ~probation ~probe_limit
        ~probe_timeout ~drain_deadline ~policy:Select_replica.Hash
        ~shard_map:map fo
    in
    let coord = Option.get s.Stacks.fos_coord in
    let v0 = Shard_map.version (Shard_map.Coordinator.current coord) in
    (* The skew mode's hot keys: the full shard set of shard 0's
       initial owner, so that moving shards out of the hot replica one
       by one genuinely drains it (one monolithic hot shard could never
       be balanced by moving it around). *)
    let hot_shards =
      let hot_owner = Shard_map.owner map ~shard:0 in
      Array.of_list
        (List.filter
           (fun sh -> Shard_map.owner map ~shard:sh = hot_owner)
           (List.init shards Fun.id))
    in
    if crash then
      (* Replica 0 reboots at the fault and stays partitioned for the
         whole run — a loss, not a blink; only a new map can restore
         its shards' goodput. *)
      Chaos.apply ~wire:w.World.wire ~devices:(World.devices w)
        [
          { Chaos.from_t = chaos_t; until_t = t_stop; spec = Chaos.Crash 0 };
          {
            Chaos.from_t = chaos_t;
            until_t = t_stop;
            spec =
              Chaos.Partition
                {
                  a = [ 0 ];
                  b = List.init (servers + clients - 1) (fun i -> i + 1);
                };
          };
        ];
    (* The rebalancer sees a replica as Dead when a majority of the
       clients' health machines say so, and reads the summed per-shard
       call counts as its load signal. *)
    let replicas = s.Stacks.fos_replicas in
    let replica_health r =
      let dead =
        Array.fold_left
          (fun n cl ->
            if Select_replica.health cl r = Select_replica.Dead then n + 1
            else n)
          0 replicas
      in
      if 2 * dead >= Array.length replicas then `Dead else `Up
    in
    let shard_load () =
      let acc = Array.make shards 0 in
      Array.iter
        (fun cl ->
          Array.iteri
            (fun i v -> acc.(i) <- acc.(i) + v)
            (Select_replica.shard_calls cl))
        replicas;
      acc
    in
    (match mode with
    | "static" -> ()
    | _ ->
        (* Crash modes tick fast (reaction time is the headline); the
           skew mode uses a longer window so per-tick load deltas carry
           enough calls to beat sampling noise. *)
        let rb =
          Rebalance.create ~host:s.Stacks.fos_clients.(0) ~coord
            ~replica_health ~shard_load
            ~interval:(if crash then 0.025 else 0.05)
            ~on_crash:crash ~on_skew:(not crash) ()
        in
        (* The controller starts ticking at the fault instant, so all
           modes share an identical pre phase and the reaction time
           [t_rebalance_ms] is measured from the fault.  (Left running
           from time zero, the skew policy would instead spend the pre
           phase smoothing the rendezvous map's natural lumpiness —
           seed 42 deals 7/2/5/2 shards across the four replicas.) *)
        ignore
          (Sim.after sim chaos_t (fun () ->
               Rebalance.start rb ~until:(t_start +. duration))));
    let m = Array.length s.Stacks.fos_clients in
    let hist = Load.new_hist () in
    let h_pre = Load.new_hist ()
    and h_dip = Load.new_hist ()
    and h_heal = Load.new_hist () in
    let completed = ref 0 and failed = ref 0 and shed = ref 0 in
    let pre = ref 0 and dip = ref 0 and heal = ref 0 in
    let pending = ref 0 and pending_max = ref 0 in
    let t_end = ref 0. in
    let t_rebalanced = ref None in
    let dispatched_all = ref false in
    let one_call i ~key =
      let t = Sim.now sim in
      (match s.Stacks.fos_call i ~key ~command:Stacks.cmd_null Msg.empty with
      | Ok _ ->
          let now = Sim.now sim in
          incr completed;
          let h =
            if now < chaos_t then (incr pre; h_pre)
            else if now < heal_t then (incr dip; h_dip)
            else (incr heal; h_heal)
          in
          Histogram.record h (Load.us_of (now -. t))
      | Error _ -> incr failed);
      let now = Sim.now sim in
      Histogram.record hist (Load.us_of (now -. t));
      if now > !t_end then t_end := now;
      decr pending
    in
    let dispatcher () =
      let now = Sim.now sim in
      if t_start > now then Sim.delay sim (t_start -. now);
      for k = 0 to arrivals - 1 do
        if !pending >= window then incr shed
        else begin
          incr pending;
          if !pending > !pending_max then pending_max := !pending;
          (* Uniform keys sweep the shards; in the skew mode every
             second arrival after the fault instant hits one of the
             hot replica's shards. *)
          let key =
            if
              mode = "skew-rebalance"
              && Sim.now sim >= chaos_t
              && k mod 2 = 0
            then hot_shards.(k / 2 mod Array.length hot_shards)
            else k
          in
          Sim.spawn sim (fun () -> one_call (k mod m) ~key)
        end;
        if k < arrivals - 1 then Sim.delay sim (1. /. rate)
      done;
      dispatched_all := true
    in
    (* A monitor fiber timestamps the first client-visible map change —
       the control plane's reaction time. *)
    Sim.spawn sim (fun () ->
        while !t_rebalanced = None && Sim.now sim < t_stop do
          if
            Array.exists (fun cl -> Select_replica.map_version cl > v0) replicas
          then t_rebalanced := Some (Sim.now sim)
          else Sim.delay sim 0.005
        done);
    let warm_left = ref m in
    for i = 0 to m - 1 do
      World.spawn w (fun () ->
          for _ = 1 to servers do
            ignore (s.Stacks.fos_call i ~command:Stacks.cmd_null Msg.empty)
          done;
          decr warm_left;
          if !warm_left = 0 then Sim.spawn sim dispatcher)
    done;
    World.run w;
    assert !dispatched_all;
    let lost = arrivals - !completed - !failed - !shed in
    let sum_counter name =
      List.fold_left
        (fun acc (_, counters) ->
          acc + (try List.assoc name counters with Not_found -> 0))
        0 (Stats.dump ())
    in
    let sum_replica f = Array.fold_left (fun a r -> a + f r) 0 replicas in
    let moved = Shard_map.Coordinator.moved coord in
    let map_version =
      Array.fold_left
        (fun a r -> max a (Select_replica.map_version r))
        0 replicas
    in
    let goodput n dt = if dt > 0. then float_of_int n /. dt else 0. in
    let g_pre = goodput !pre (chaos_t -. t_start) in
    let g_dip = goodput !dip dip_window in
    let g_heal = goodput !heal (!t_end -. heal_t) in
    let p h q = float_of_int (Histogram.percentile h q) /. 1e3 in
    let t_reb_ms =
      match !t_rebalanced with
      | Some t -> (t -. chaos_t) *. 1e3
      | None -> -1.
    in
    pr "%16s %8.0f %8.0f %8.0f %6d %6d %8.1f %8.2f %8.2f\n%!" mode g_pre g_dip
      g_heal moved lost t_reb_ms (p h_dip 99.) (p h_dip 99.9);
    Json.Obj
      [
        ("table", Json.Str "rebalance");
        ("mode", Json.Str mode);
        ("config", Json.Str s.Stacks.fos_name);
        ("servers", Json.Int servers);
        ("clients", Json.Int clients);
        ("shards", Json.Int shards);
        ("seed", Json.Int seed);
        ("offered_rps", Json.Float rate);
        ("arrivals", Json.Int arrivals);
        ("completed", Json.Int !completed);
        ("failed", Json.Int !failed);
        ("shed", Json.Int !shed);
        ("lost_calls", Json.Int lost);
        ("moved_shards", Json.Int moved);
        ("map_version", Json.Int map_version);
        ("map_updates_rx", Json.Int (sum_counter "map-update-rx"));
        ("wrong_shard_rx", Json.Int (sum_counter "wrong-shard-rx"));
        ("wrong_shard_tx", Json.Int (sum_counter "wrong-shard-tx"));
        ("foreign_shard_rx", Json.Int (sum_counter "foreign-shard-rx"));
        ("handoff_forced", Json.Int (sum_counter "handoff-forced"));
        ("failovers", Json.Int (sum_replica Select_replica.failovers));
        ("probes_sent", Json.Int (sum_replica Select_replica.probes_sent));
        ("t_rebalance_ms", Json.Float t_reb_ms);
        ("goodput_pre_rps", Json.Float g_pre);
        ("goodput_dip_rps", Json.Float g_dip);
        ("goodput_healed_rps", Json.Float g_heal);
        ("pre_p99_ms", Json.Float (p h_pre 99.));
        ("dip_p99_ms", Json.Float (p h_dip 99.));
        ("dip_p999_ms", Json.Float (p h_dip 99.9));
        ("healed_p99_ms", Json.Float (p h_heal 99.));
        ("attempt_timeout_us", Json.Int (Load.us_of attempt_timeout));
        ("deadline_us", Json.Int (Load.us_of deadline));
        ("drain_deadline_us", Json.Int (Load.us_of drain_deadline));
        ("pending_max", Json.Int !pending_max);
        ("latency_us", Histogram.to_json hist);
      ]
  in
  pr "%16s %8s %8s %8s %6s %6s %8s %8s %8s\n" "mode" "pre" "dip" "healed"
    "moved" "lost" "t_reb ms" "dip p99" "p99.9";
  hr ();
  let rows = List.map step modes in
  pr
    "\n\
     (Reading the table: goodput survives the crash in every mode —\n\
    \ the REPLICA health machinery below the map routes around the dead\n\
    \ owner — so the map's value shows elsewhere.  \"static\" serves\n\
    \ every orphaned-shard call at a non-owner forever (foreign_shard_rx\n\
    \ climbs for the rest of the run); the crash rebalancer installs a\n\
    \ new map and ownership converges, with the wrong-shard handshake\n\
    \ absorbing the disagreement window; the skew rebalancer drains the\n\
    \ hot replica shard by shard.  lost_calls must be 0: every arrival\n\
    \ is completed, failed or shed.)\n";
  Json.Arr rows

(* --- overload: open-loop rate sweep across control stacks ---------------- *)

(* Application procedure for the overload sweep: burns [service_us] of
   server CPU, then checks the caller's absolute deadline (stamped in
   the request body) to account CPU spent on replies nobody will read. *)
let cmd_work = 9

let overload_controls = [ "none"; "deadline"; "deadline+admit"; "full" ]

let overload ?(servers = 2) ?(clients = 4) ?(rates = [ 600.; 1200.; 2000. ])
    ?(arrivals = 600) ?(window = 256) ?(service_us = 500) ?(deadline = 0.025)
    ?(controls = overload_controls) ?spike () =
  section "Overload: open-loop rate sweep, control stacks side by side";
  pr "%d clients x round-robin over %d replicas; uniform arrivals,\n" clients
    servers;
  pr "%d arrivals per step; %d us of server CPU per call, %.0f ms deadline\n\n"
    arrivals service_us (deadline *. 1e3);
  List.iter
    (fun c ->
      if not (List.mem c overload_controls) then
        invalid_arg
          (Printf.sprintf "overload: unknown control %S (try: %s)" c
             (String.concat ", " overload_controls)))
    controls;
  let service_s = float_of_int service_us *. 1e-6 in
  let attempt_timeout = deadline /. 2. in
  (* Bounded so a full queue's sojourn stays under the deadline:
     queue_limit * (service + per-call protocol cost) < deadline. *)
  let admit_cfg =
    {
      Admit.queue_limit = 16;
      codel_target = deadline /. 5.;
      codel_interval = deadline;
      lifo = false;
    }
  in
  let t_start = 0.25 in
  (* One step: fresh default-seed world, so every (control, rate) cell
     is independent and the whole sweep is deterministic. *)
  let step control rate =
    Stats.reset_registry ();
    let fo = World.create_fanout ~clients ~servers () in
    let w = fo.World.fo in
    let sim = w.World.sim in
    let s =
      match control with
      | "none" -> Stacks.lrpc_fanout ~attempt_timeout ~deadline fo
      | "deadline" ->
          Stacks.lrpc_fanout ~attempt_timeout ~deadline
            ~propagate_deadline:true fo
      | "deadline+admit" ->
          Stacks.lrpc_fanout ~attempt_timeout ~deadline
            ~propagate_deadline:true ~admit:admit_cfg fo
      | _ ->
          Stacks.lrpc_fanout ~attempt_timeout ~deadline
            ~propagate_deadline:true ~admit:admit_cfg ~retry_budget:0.1
            ~hedge:true fo
    in
    let duration = float_of_int arrivals /. rate in
    (match spike with
    | None -> ()
    | Some extra ->
        (* A congestion spike over the middle half of the arrival
           window: every frame is delayed by [extra]. *)
        Chaos.apply ~wire:w.World.wire ~devices:(World.devices w)
          [
            {
              Chaos.from_t = t_start +. (duration *. 0.25);
              until_t = t_start +. (duration *. 0.75);
              spec = Chaos.Delay_spike extra;
            };
          ]);
    let wasted_us = ref 0 and handler_runs = ref 0 in
    Array.iteri
      (fun k sel_s ->
        let mach = s.Stacks.fos_servers.(k).Host.mach in
        Select.register sel_s ~command:cmd_work (fun req ->
            Machine.charge_one mach (Machine.Busy service_s);
            incr handler_runs;
            let dl_us = Codec.R.u48 (Codec.R.of_string (Msg.to_string req)) in
            if Load.us_of (Sim.now sim) > dl_us then
              wasted_us := !wasted_us + service_us;
            Ok Msg.empty))
      s.Stacks.fos_selects;
    let m = Array.length s.Stacks.fos_clients in
    let hist = Load.new_hist () in
    let completed = ref 0 and failed = ref 0 and busy_errs = ref 0 in
    let shed = ref 0 and pending = ref 0 in
    let t_end = ref 0. in
    let dispatched_all = ref false in
    let one_call i =
      let t = Sim.now sim in
      let body =
        let wr = Codec.W.create ~size:6 () in
        Codec.W.u48 wr (Load.us_of (t +. deadline));
        Msg.of_string (Codec.W.contents wr)
      in
      (match s.Stacks.fos_call i ~command:cmd_work body with
      | Ok _ -> incr completed
      | Error Rpc_error.Busy ->
          incr busy_errs;
          incr failed
      | Error _ -> incr failed);
      let now = Sim.now sim in
      Histogram.record hist (Load.us_of (now -. t));
      if now > !t_end then t_end := now;
      decr pending
    in
    let dispatcher () =
      let now = Sim.now sim in
      if t_start > now then Sim.delay sim (t_start -. now);
      (* Warm-up traffic is settled by now: count only the sweep's CPU. *)
      Array.iter
        (fun (h : Host.t) -> Machine.reset_cpu_seconds h.Host.mach)
        s.Stacks.fos_servers;
      for k = 0 to arrivals - 1 do
        if !pending >= window then incr shed
        else begin
          incr pending;
          Sim.spawn sim (fun () -> one_call (k mod m))
        end;
        if k < arrivals - 1 then Sim.delay sim (1. /. rate)
      done;
      dispatched_all := true
    in
    let warm_left = ref m in
    for i = 0 to m - 1 do
      World.spawn w (fun () ->
          for _ = 1 to servers do
            ignore (s.Stacks.fos_call i ~command:Stacks.cmd_null Msg.empty)
          done;
          decr warm_left;
          if !warm_left = 0 then Sim.spawn sim dispatcher)
    done;
    World.run w;
    assert !dispatched_all;
    (* Sum a counter over every registered stats table: the server-side
       expired drops live in per-host CHANNEL, SELECT and ADMIT tables,
       the client-side governance counters in per-host REPLICA tables. *)
    let sum_counter name =
      List.fold_left
        (fun acc (_, counters) ->
          acc + (try List.assoc name counters with Not_found -> 0))
        0 (Stats.dump ())
    in
    let sum_replica f =
      Array.fold_left (fun a r -> a + f r) 0 s.Stacks.fos_replicas
    in
    let sum_admit f = Array.fold_left (fun a d -> a + f d) 0 s.Stacks.fos_admits in
    let sum_mach f =
      Array.fold_left
        (fun a (h : Host.t) -> a +. f h.Host.mach)
        0. s.Stacks.fos_servers
    in
    let goodput =
      if !t_end > t_start then float_of_int !completed /. (!t_end -. t_start)
      else 0.
    in
    let failovers = sum_replica Select_replica.failovers in
    let busy_rejects = sum_admit Admit.busy_rejected in
    let expired_server = sum_counter "deadline-expired-server" in
    let exhausted = sum_counter "retry-budget-exhausted" in
    let p q = float_of_int (Histogram.percentile hist q) /. 1e3 in
    pr "%15s %8.0f %8.0f %8.2f %8.2f %9d %7d %7d %7d %5d\n%!" control rate
      goodput (p 99.) (p 99.9) !wasted_us busy_rejects expired_server failovers
      exhausted;
    Json.Obj
      [
        ("table", Json.Str "overload");
        ("control", Json.Str control);
        ("config", Json.Str s.Stacks.fos_name);
        ("servers", Json.Int servers);
        ("clients", Json.Int clients);
        ("offered_rps", Json.Float rate);
        ("arrivals", Json.Int arrivals);
        ("service_us", Json.Int service_us);
        ("deadline_us", Json.Int (Load.us_of deadline));
        ("attempt_timeout_us", Json.Int (Load.us_of attempt_timeout));
        ("completed", Json.Int !completed);
        ("failed", Json.Int !failed);
        ("busy_errors", Json.Int !busy_errs);
        ("shed", Json.Int !shed);
        ("goodput_rps", Json.Float goodput);
        ("handler_runs", Json.Int !handler_runs);
        ("wasted_cpu_us", Json.Int !wasted_us);
        ("server_expired_drops", Json.Int expired_server);
        ("busy_rejects", Json.Int busy_rejects);
        ("codel_drops", Json.Int (sum_admit Admit.codel_dropped));
        ("admit_expired_drops", Json.Int (sum_admit Admit.expired_dropped));
        ("client_give_ups", Json.Int (sum_counter "deadline-give-up"));
        ("busy_reject_rx", Json.Int (sum_counter "busy-reject-rx"));
        ("retry_exhausted", Json.Int exhausted);
        ("failovers", Json.Int failovers);
        ("hedges_sent", Json.Int (sum_counter "hedge-sent"));
        ("hedge_wins", Json.Int (sum_counter "hedge-win"));
        ("all_dead", Json.Int (sum_counter "all-dead"));
        ("server_cpu_us", Json.Int (Load.us_of (sum_mach Machine.cpu_seconds)));
        ( "server_cpu_wait_us",
          Json.Int (Load.us_of (sum_mach Machine.cpu_wait_seconds)) );
        ("latency_us", Histogram.to_json hist);
      ]
  in
  pr "%15s %8s %8s %8s %8s %9s %7s %7s %7s %5s\n" "control" "rate" "goodput"
    "p99 ms" "p99.9" "wasted_us" "busy" "expired" "failov" "exh";
  hr ();
  let rows =
    List.concat_map
      (fun control -> List.map (fun rate -> step control rate) rates)
      controls
  in
  pr
    "\n\
     (Reading the sweep: past the knee, \"none\" burns server CPU on\n\
    \ expired calls [wasted_us] while goodput stalls; deadline\n\
    \ propagation sheds that work at the server; admission control adds\n\
    \ explicit busy pushback [busy]; the full stack also bounds retries\n\
    \ and hedges against the slow replica.)\n";
  Json.Arr rows

(* --- inc: in-network computation on the switch --------------------------- *)

let inc_modes = [ "no-inc"; "cold"; "hot" ]

let inc ?(clients = 4) ?(rate = 2500.) ?(arrivals = 1200) ?(window = 64)
    ?(seed = 42) ?(modes = inc_modes) () =
  section "INC: reply caching and shedding at the switch";
  pr "switched star, %d clients + 1 server; uniform arrivals at\n" clients;
  pr
    "%.0f calls/s, %d arrivals per mode; seed %d.  \"hot\" repeats one\n\
     cacheable request, \"cold\" never repeats, \"no-inc\" runs the same\n\
     hot workload through a plain forwarding switch.\n\n"
    rate arrivals seed;
  List.iter
    (fun m ->
      if not (List.mem m inc_modes) then
        invalid_arg
          (Printf.sprintf "inc: unknown mode %S (try: %s)" m
             (String.concat ", " inc_modes)))
    modes;
  (* Generous per-call bounds: the story here is server throughput, not
     timeout behaviour, and the cold switched path's first call pays the
     VIP gateway fallback (~0.3 s). *)
  let attempt_timeout = 0.5 and deadline = 2.0 in
  let t_start = 0.25 in
  let step mode =
    Stats.reset_registry ();
    let sw = World.create_switched ~clients ~servers:1 ~seed () in
    let w = sw.World.sw.World.fo in
    let sim = w.World.sim in
    let s, inc_opt =
      match mode with
      | "no-inc" -> Stacks.lrpc_switched ~attempt_timeout ~deadline sw
      | _ ->
          Stacks.lrpc_switched ~attempt_timeout ~deadline
            ~inc_cacheable:[ Stacks.cmd_echo ] sw
    in
    let server_wire = World.port_wire sw ~label:"s0" in
    let server_mach = s.Stacks.fos_servers.(0).Host.mach in
    let switch_machs = World.switch_machines sw in
    let m = Array.length s.Stacks.fos_clients in
    let hist = Load.new_hist () in
    let completed = ref 0 and failed = ref 0 and shed = ref 0 in
    let pending = ref 0 and pending_max = ref 0 in
    let t_end = ref 0. and t0 = ref t_start in
    let wire0 = ref (Wire.stats server_wire) in
    let dispatched_all = ref false in
    let body k =
      Msg.of_string
        (if mode = "cold" then Printf.sprintf "k%06d" k else "hot")
    in
    let one_call i k =
      let t = Sim.now sim in
      (match s.Stacks.fos_call i ~command:Stacks.cmd_echo (body k) with
      | Ok _ -> incr completed
      | Error _ -> incr failed);
      let now = Sim.now sim in
      Histogram.record hist (Load.us_of (now -. t));
      if now > !t_end then t_end := now;
      decr pending
    in
    let dispatcher () =
      let now = Sim.now sim in
      if t_start > now then Sim.delay sim (t_start -. now);
      (* Warm-up traffic is settled: count only the sweep from here.
         (The warm calls may run past [t_start] — the cold switched
         path's first call is slow — so the measured window starts at
         whatever time dispatch actually begins.) *)
      t0 := Sim.now sim;
      Machine.reset_cpu_seconds server_mach;
      Array.iter Machine.reset_cpu_seconds switch_machs;
      wire0 := Wire.stats server_wire;
      for k = 0 to arrivals - 1 do
        if !pending >= window then incr shed
        else begin
          incr pending;
          if !pending > !pending_max then pending_max := !pending;
          Sim.spawn sim (fun () -> one_call (k mod m) k)
        end;
        if k < arrivals - 1 then Sim.delay sim (1. /. rate)
      done;
      dispatched_all := true
    in
    let warm_left = ref m in
    for i = 0 to m - 1 do
      World.spawn w (fun () ->
          (* Distinct warm bodies: the hot key must first miss inside
             the measured window, like any real cache-warm story. *)
          ignore
            (s.Stacks.fos_call i ~command:Stacks.cmd_echo
               (Msg.of_string (Printf.sprintf "warm%d" i)));
          decr warm_left;
          if !warm_left = 0 then Sim.spawn sim dispatcher)
    done;
    World.run w;
    assert !dispatched_all;
    let lost = arrivals - !completed - !failed - !shed in
    let wires = Wire.stats server_wire in
    let frames = wires.Wire.frames - !wire0.Wire.frames in
    let bytes = wires.Wire.bytes - !wire0.Wire.bytes in
    let switch_cpu =
      Array.fold_left (fun a mc -> a +. Machine.cpu_seconds mc) 0. switch_machs
    in
    let goodput =
      if !t_end > !t0 then float_of_int !completed /. (!t_end -. !t0) else 0.
    in
    let istat f = match inc_opt with None -> 0 | Some i -> f i in
    let p q = float_of_int (Histogram.percentile hist q) /. 1e3 in
    pr "%8s %8.0f %8.0f %8.2f %8.2f %8d %9d %6d %6d %6d\n%!" mode rate goodput
      (p 50.) (p 99.) frames
      (Load.us_of (Machine.cpu_seconds server_mach))
      (istat Inc.hits) (istat Inc.misses) lost;
    Json.Obj
      [
        ("table", Json.Str "inc");
        ("mode", Json.Str mode);
        ("config", Json.Str s.Stacks.fos_name);
        ("clients", Json.Int clients);
        ("seed", Json.Int seed);
        ("offered_rps", Json.Float rate);
        ("arrivals", Json.Int arrivals);
        ("completed", Json.Int !completed);
        ("failed", Json.Int !failed);
        ("shed", Json.Int !shed);
        ("lost_calls", Json.Int lost);
        ("goodput_rps", Json.Float goodput);
        ("cache_hits", Json.Int (istat Inc.hits));
        ("cache_misses", Json.Int (istat Inc.misses));
        ("inc_sheds", Json.Int (istat Inc.sheds));
        ("inc_forwarded", Json.Int (istat Inc.forwarded));
        ("inc_stored", Json.Int (istat Inc.stored));
        ("inc_invalidated", Json.Int (istat Inc.invalidated));
        ("server_wire_frames", Json.Int frames);
        ("server_wire_bytes", Json.Int bytes);
        ( "server_cpu_us",
          Json.Int (Load.us_of (Machine.cpu_seconds server_mach)) );
        ("switch_cpu_us", Json.Int (Load.us_of switch_cpu));
        ("attempt_timeout_us", Json.Int (Load.us_of attempt_timeout));
        ("deadline_us", Json.Int (Load.us_of deadline));
        ("pending_max", Json.Int !pending_max);
        ("p50_ms", Json.Float (p 50.));
        ("p99_ms", Json.Float (p 99.));
        ("latency_us", Histogram.to_json hist);
      ]
  in
  pr "%8s %8s %8s %8s %8s %8s %9s %6s %6s %6s\n" "mode" "rate" "goodput"
    "p50 ms" "p99 ms" "s0 frm" "s0cpu_us" "hits" "miss" "lost";
  hr ();
  let rows = List.map step modes in
  pr
    "\n\
     (Reading the table: past the single-server knee, \"hot\" answers\n\
    \ repeats from the switch — goodput tracks the offered rate while\n\
    \ the server's wire and CPU stay near idle; \"cold\" pays the cache\n\
    \ machinery with no hits and should match \"no-inc\" — the hook's\n\
    \ overhead is the difference, and it is small.)\n";
  Json.Arr rows

(* --- shardscale: capacity over K with per-server wires ------------------- *)

let shardscale_modes = [ "uniform"; "zipf"; "zipf-rebalance" ]

let shardscale ?(ks = [ 1; 2; 4 ]) ?(clients = 8) ?(shards = 16)
    ?(rate = 4000.) ?(arrivals = 1200) ?(window = 128) ?(seed = 42)
    ?(modes = shardscale_modes) () =
  section "Shardscale: aggregate goodput over K servers, per-server wires";
  pr "switched star, %d clients, %d shards over K servers; uniform\n" clients
    shards;
  pr
    "arrivals at %.0f calls/s aggregate, %d arrivals per cell; seed %d.\n\
     Zipfian cells run at the largest K; \"zipf-rebalance\" adds the\n\
     skew rebalancer.\n\n"
    rate arrivals seed;
  List.iter
    (fun m ->
      if not (List.mem m shardscale_modes) then
        invalid_arg
          (Printf.sprintf "shardscale: unknown mode %S (try: %s)" m
             (String.concat ", " shardscale_modes)))
    modes;
  if ks = [] then invalid_arg "shardscale: empty K list";
  let kmax = List.fold_left max 1 ks in
  let attempt_timeout = 0.5 and deadline = 2.0 in
  let t_start = 0.25 in
  let duration = float_of_int arrivals /. rate in
  (* Zipf(1.2) over the shard space, inverse-CDF sampled from a seeded
     generator — hot shard 0 draws roughly a third of the arrivals. *)
  let zipf_cdf =
    let w = Array.init shards (fun i -> 1. /. Float.pow (float_of_int (i + 1)) 1.2) in
    let acc = ref 0. in
    Array.map (fun x -> acc := !acc +. x; !acc) w
  in
  let step mode servers =
    Stats.reset_registry ();
    let sw = World.create_switched ~clients ~servers ~seed () in
    let w = sw.World.sw.World.fo in
    let sim = w.World.sim in
    (* A balanced round-robin deal: the rendezvous constructor hands
       seed-42 deals as lumpy as 7/2/5/2, and the biggest share would
       bottleneck the whole sweep — this experiment measures capacity
       over K, not deal luck. *)
    let map =
      List.fold_left
        (fun m sh -> Shard_map.move m ~shard:sh ~to_:(sh mod servers))
        (Shard_map.create ~seed ~shards ~replicas:servers)
        (List.init shards Fun.id)
    in
    let s, _ =
      Stacks.lrpc_switched ~attempt_timeout ~deadline
        ~policy:Select_replica.Hash ~shard_map:map sw
    in
    let coord = Option.get s.Stacks.fos_coord in
    let replicas = s.Stacks.fos_replicas in
    let rb_opt =
      if mode <> "zipf-rebalance" then None
      else
        let shard_load () =
          let acc = Array.make shards 0 in
          Array.iter
            (fun cl ->
              Array.iteri
                (fun i v -> acc.(i) <- acc.(i) + v)
                (Select_replica.shard_calls cl))
            replicas;
          acc
        in
        Some
          (Rebalance.create ~host:s.Stacks.fos_clients.(0) ~coord
             ~replica_health:(fun _ -> `Up)
             ~shard_load ~interval:0.05 ~skew_ratio:1.5 ~on_crash:false
             ~on_skew:true ())
    in
    let zipf_st = Random.State.make [| seed; 77; servers |] in
    let zipf_key () =
      let u = Random.State.float zipf_st zipf_cdf.(shards - 1) in
      let rec find i = if u <= zipf_cdf.(i) then i else find (i + 1) in
      find 0
    in
    let m = Array.length s.Stacks.fos_clients in
    let hist = Load.new_hist () in
    let completed = ref 0 and failed = ref 0 and shed = ref 0 in
    let pending = ref 0 and pending_max = ref 0 in
    let t_end = ref 0. and t0 = ref t_start in
    let dispatched_all = ref false in
    let one_call i ~key =
      let t = Sim.now sim in
      (match s.Stacks.fos_call i ~key ~command:Stacks.cmd_null Msg.empty with
      | Ok _ -> incr completed
      | Error _ -> incr failed);
      let now = Sim.now sim in
      Histogram.record hist (Load.us_of (now -. t));
      if now > !t_end then t_end := now;
      decr pending
    in
    let dispatcher () =
      let now = Sim.now sim in
      if t_start > now then Sim.delay sim (t_start -. now);
      (* The warm calls may run past [t_start] on the cold switched
         path, so the measured window starts when dispatch does — and
         the rebalancer's tick window follows it. *)
      t0 := Sim.now sim;
      (match rb_opt with
      | Some rb -> Rebalance.start rb ~until:(!t0 +. duration)
      | None -> ());
      Array.iter
        (fun (h : Host.t) -> Machine.reset_cpu_seconds h.Host.mach)
        s.Stacks.fos_servers;
      for k = 0 to arrivals - 1 do
        let key = if mode = "uniform" then k else zipf_key () in
        if !pending >= window then incr shed
        else begin
          incr pending;
          if !pending > !pending_max then pending_max := !pending;
          Sim.spawn sim (fun () -> one_call (k mod m) ~key)
        end;
        if k < arrivals - 1 then Sim.delay sim (1. /. rate)
      done;
      dispatched_all := true
    in
    let warm_left = ref m in
    for i = 0 to m - 1 do
      World.spawn w (fun () ->
          for _ = 1 to servers do
            ignore (s.Stacks.fos_call i ~command:Stacks.cmd_null Msg.empty)
          done;
          decr warm_left;
          if !warm_left = 0 then Sim.spawn sim dispatcher)
    done;
    World.run w;
    assert !dispatched_all;
    let lost = arrivals - !completed - !failed - !shed in
    let goodput =
      if !t_end > !t0 then float_of_int !completed /. (!t_end -. !t0) else 0.
    in
    let cpu_each =
      Array.map
        (fun (h : Host.t) -> Machine.cpu_seconds h.Host.mach)
        s.Stacks.fos_servers
    in
    let cpu_sum = Array.fold_left ( +. ) 0. cpu_each in
    let cpu_max = Array.fold_left Float.max 0. cpu_each in
    let sum_counter name =
      List.fold_left
        (fun acc (_, counters) ->
          acc + (try List.assoc name counters with Not_found -> 0))
        0 (Stats.dump ())
    in
    let moved = Shard_map.Coordinator.moved coord in
    let p q = float_of_int (Histogram.percentile hist q) /. 1e3 in
    pr "%16s %2d %8.0f %8.0f %8.2f %8.2f %6d %6d %6d\n%!" mode servers rate
      goodput (p 50.) (p 99.) !shed moved lost;
    Json.Obj
      [
        ("table", Json.Str "shardscale");
        ("mode", Json.Str mode);
        ("config", Json.Str s.Stacks.fos_name);
        ("servers", Json.Int servers);
        ("clients", Json.Int clients);
        ("shards", Json.Int shards);
        ("seed", Json.Int seed);
        ("offered_rps", Json.Float rate);
        ("arrivals", Json.Int arrivals);
        ("completed", Json.Int !completed);
        ("failed", Json.Int !failed);
        ("shed", Json.Int !shed);
        ("lost_calls", Json.Int lost);
        ("goodput_rps", Json.Float goodput);
        ("moved_shards", Json.Int moved);
        ("wrong_shard_rx", Json.Int (sum_counter "wrong-shard-rx"));
        ("foreign_shard_rx", Json.Int (sum_counter "foreign-shard-rx"));
        ("server_cpu_sum_us", Json.Int (Load.us_of cpu_sum));
        ("server_cpu_max_us", Json.Int (Load.us_of cpu_max));
        ("attempt_timeout_us", Json.Int (Load.us_of attempt_timeout));
        ("deadline_us", Json.Int (Load.us_of deadline));
        ("pending_max", Json.Int !pending_max);
        ("p50_ms", Json.Float (p 50.));
        ("p99_ms", Json.Float (p 99.));
        ("latency_us", Histogram.to_json hist);
      ]
  in
  pr "%16s %2s %8s %8s %8s %8s %6s %6s %6s\n" "mode" "K" "rate" "goodput"
    "p50 ms" "p99 ms" "shed" "moved" "lost";
  hr ();
  let cells =
    List.concat_map
      (fun mode ->
        if mode = "uniform" then List.map (fun k -> (mode, k)) ks
        else [ (mode, kmax) ])
      modes
  in
  let rows = List.map (fun (mode, k) -> step mode k) cells in
  pr
    "\n\
     (Reading the table: with every server on its own wire the uniform\n\
    \ rows scale near-linearly in K until the offered rate is met; the\n\
    \ zipf row bottlenecks on the hot shard's owner, and the skew\n\
    \ rebalancer claws back part of that slope by draining the hot\n\
    \ owner's other shards.  lost must be 0 in every cell.)\n";
  Json.Arr rows
