(** SELECT — procedure selection and channel allocation (section 3.2).

    The top layer of layered Sprite RPC.  On the client it maps an RPC
    invocation onto one of the fixed set of CHANNEL sessions — blocking
    when none is free — and caches everything so the per-call cost is
    one table lookup plus its 4-byte header (the paper's measured
    0.11 msec, the minimum cost of any layer).  On the server it maps
    the command (procedure id) in the header onto a registered
    procedure.

    SELECT is a separate protocol, rather than being folded into
    CHANNEL, so that other addressing schemes can be slotted in — see
    {!Select_fwd} for the forwarding variant the paper mentions. *)

type t

val create :
  host:Xkernel.Host.t ->
  channel:Channel.t ->
  ?proto_num:int ->
  unit ->
  t
(** [proto_num] (default 90) identifies the SELECT/CHANNEL pair to the
    layers below. *)

val proto : t -> Xkernel.Proto.t

(** {1 Client} *)

type client

val connect : t -> server:Xkernel.Addr.Ip.t -> client
(** Opens (and caches) one SELECT session per channel to [server] —
    "caching open sessions at all three levels". *)

val call :
  client ->
  ?expires:float ->
  ?shard:Wire_fmt.Select.stamp ->
  command:int ->
  Xkernel.Msg.t ->
  (Xkernel.Msg.t, Rpc_error.t) result
(** Allocate a free channel (blocking the calling fiber if all are in
    use), run the transaction, release the channel.  [expires] threads
    the caller's absolute deadline down to {!Channel.call} for wire
    propagation.  [shard] stamps the request with the virtual shard it
    was routed by and the routing map's generation; a sharding server
    that disowns the shard under a strictly newer map answers
    [Error (Wrong_shard v)] without executing the procedure. *)

val free_channels : client -> int

(** {1 Server} *)

type handler = Xkernel.Msg.t -> (Xkernel.Msg.t, int) result
(** A procedure: request body to reply body, or a non-zero status. *)

val register : t -> command:int -> handler -> unit
(** Bind a command (procedure id) to a procedure. *)

val serve : t -> unit
(** Passively enable the stack below; unknown commands are answered
    with [status_no_command].  Requests whose propagated deadline has
    already lapsed (per the lower session's [Get_rx_deadline]) are
    dropped before the procedure's CPU is charged and their replies
    suppressed (["deadline-expired-server"]). *)

val serve_behind : t -> upper:Xkernel.Proto.t -> unit
(** Like {!serve}, but incoming requests are delivered to [upper] — an
    admission-control protocol such as {!Admit} — which forwards the
    admitted ones back down into this server's demux. *)

val calls_handled : t -> int

(** {1 Sharding}

    Off by default; nothing below changes any output until
    {!enable_sharding} is called. *)

val enable_sharding : t -> self:int -> unit
(** Declare this server to be replica index [self] of a sharded set.
    From then on the protocol answers [control (Install_map bytes)] by
    installing any strictly newer {!Shard_map} (counting
    ["map-update-rx"], exporting ["map-version"] and ["shards-owned"]
    gauges), and shard-stamped requests for shards it does not own under
    a map newer than the stamp are refused with [status_wrong_shard]
    (["wrong-shard-tx"]) instead of executed. *)

val install_shard_map : t -> Shard_map.t -> bool
(** Direct install (the control path calls this); [false] if not newer
    than the map already held. *)

val shard_map_version : t -> int
(** Version of the installed map; 0 when none. *)
