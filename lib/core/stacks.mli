(** Named protocol configurations — every stack the paper measures.

    Each builder wires a complete configuration onto an existing
    {!Netproto.World.t} test bed (node 0 = client, node 1 = server),
    registers the standard test procedures on the server, and returns a
    uniform {!endpoints} handle the measurement harness drives.

    Standard procedures: command 1 is the null procedure (null reply —
    the latency and throughput tests of section 4); command 2 echoes its
    argument. *)

type endpoints = {
  config_name : string;
  call :
    command:int -> Xkernel.Msg.t -> (Xkernel.Msg.t, Rpc_error.t) result;
      (** run one RPC from node 0; must be called inside a fiber *)
  client_host : Xkernel.Host.t;
  server_host : Xkernel.Host.t;
  tops : Xkernel.Proto.t list;  (** for {!Xkernel.Proto.pp_graph} *)
}

val cmd_null : int
val cmd_echo : int

type mono_lower = L_eth | L_ip | L_vip

val mrpc : Netproto.World.t -> lower:mono_lower -> endpoints
(** Monolithic Sprite RPC over ETH, IP or VIP — Table I's M.RPC rows
    and Table II's M.RPC-VIP row. *)

val lrpc :
  ?adaptive:bool ->
  ?rto_load_floor:bool ->
  ?n_channels:int ->
  Netproto.World.t ->
  endpoints
(** SELECT-CHANNEL-FRAGMENT-VIP (Figure 3(a)) — L.RPC-VIP in Tables II
    and III.  [adaptive], [rto_load_floor] and [n_channels] are threaded
    to {!Channel.create} (the loss-sweep experiment builds fixed- and
    adaptive-timeout stacks side by side this way). *)

(** {1 Fan-in configurations}

    The load subsystem ({!Load}) drives M client hosts into one server
    over a {!Netproto.World.fanin} topology.  Each client host gets its
    own client-side stack; the server runs a single serving stack with
    the standard procedures registered. *)

type fan = {
  fan_name : string;
  fan_call :
    int -> command:int -> Xkernel.Msg.t -> (Xkernel.Msg.t, Rpc_error.t) result;
      (** [fan_call i] runs one RPC from client host [i]; must be
          called inside a fiber.  Calls from many fibers on the same
          client queue on that client's channel set. *)
  fan_clients : Xkernel.Host.t array;
  fan_server : Xkernel.Host.t;
}

val mrpc_fanin :
  ?lower:mono_lower -> ?n_channels:int -> Netproto.World.fanin -> fan
(** Monolithic Sprite RPC, one instance per client host (default lower
    [L_vip]), fanned into one server instance. *)

val lrpc_fanin :
  ?adaptive:bool ->
  ?rto_load_floor:bool ->
  ?n_channels:int ->
  Netproto.World.fanin ->
  fan
(** SELECT-CHANNEL-FRAGMENT-VIP fan-in: a full layered client stack
    per client host, one serving stack. *)

(** {1 Fan-out (replicated) configurations}

    The failover experiment drives M client hosts into K server
    replicas over a {!Netproto.World.fanout} topology.  Each client
    host gets its own stack {e plus} a {!Select_replica} map over all
    K servers; each server host runs a full serving stack with the
    standard procedures registered. *)

type fanout_stack = {
  fos_name : string;
  fos_call :
    int ->
    ?key:int ->
    command:int ->
    Xkernel.Msg.t ->
    (Xkernel.Msg.t, Rpc_error.t) result;
      (** [fos_call i] runs one RPC from client host [i] through its
          replica map (failover included); must be called inside a
          fiber.  [key] pins the preferred replica under
          [Select_replica.Hash]. *)
  fos_clients : Xkernel.Host.t array;
  fos_servers : Xkernel.Host.t array;
  fos_replicas : Select_replica.t array;
      (** One replica map per client host, index-aligned with
          [fos_clients] — for health/failover introspection. *)
  fos_selects : Select.t array;
      (** Server-side SELECT instances, index-aligned with
          [fos_servers] — for registering extra procedures ([[||]] for
          the monolithic stack, which has no SELECT layer). *)
  fos_admits : Admit.t array;
      (** Admission-control layers, index-aligned with [fos_servers];
          [[||]] unless built with [?admit]. *)
  fos_coord : Shard_map.Coordinator.t option;
      (** The MAP coordinator (on [fos_clients.(0)]'s host), present
          when built with [?shard_map].  Every replica map — and, on
          the layered stack, every server SELECT — has the initial map
          installed and is subscribed for later generations; each
          client's wrong-shard refresh hook pulls the coordinator's
          current map. *)
}

val lrpc_fanout :
  ?adaptive:bool ->
  ?rto_load_floor:bool ->
  ?n_channels:int ->
  ?policy:Select_replica.policy ->
  ?attempt_timeout:float ->
  ?deadline:float ->
  ?max_failovers:int ->
  ?probation:float ->
  ?probe_limit:int ->
  ?admit:Admit.config ->
  ?propagate_deadline:bool ->
  ?retry_budget:float ->
  ?hedge:bool ->
  ?probe_timeout:float ->
  ?dead_retry_interval:float ->
  ?drain_deadline:float ->
  ?shard_map:Shard_map.t ->
  ?map_delay:float ->
  ?map_jitter:float ->
  Netproto.World.fanout ->
  fanout_stack
(** REPLICA over SELECT-CHANNEL-FRAGMENT-VIP: a full layered client
    stack per client host with one lazily-opened connection per
    server replica.

    Overload-control knobs, all off by default: [admit] slots an
    {!Admit} layer between CHANNEL and SELECT on every server;
    [propagate_deadline] / [retry_budget] / [hedge] configure the
    client-side governance in {!Select_replica}.

    Sharding knobs, also all off by default: [shard_map] installs the
    map everywhere, enables server-side ownership checks and stands up
    the MAP coordinator ([fos_coord]); [drain_deadline] /
    [probe_timeout] / [dead_retry_interval] configure
    {!Select_replica}; [map_delay] / [map_jitter] shape MAP push
    delivery. *)

val mrpc_fanout :
  ?lower:mono_lower ->
  ?n_channels:int ->
  ?policy:Select_replica.policy ->
  ?attempt_timeout:float ->
  ?deadline:float ->
  ?max_failovers:int ->
  ?probation:float ->
  ?probe_limit:int ->
  ?probe_timeout:float ->
  ?dead_retry_interval:float ->
  ?drain_deadline:float ->
  ?shard_map:Shard_map.t ->
  ?map_delay:float ->
  ?map_jitter:float ->
  Netproto.World.fanout ->
  fanout_stack
(** REPLICA over monolithic Sprite RPC (default lower [L_vip]), one
    client instance per host fanned out to K server instances.  The
    monolithic wire cannot carry shard stamps, so with [?shard_map]
    the map steers client-side routing (and the coordinator still
    distributes updates) but servers never answer wrong-shard. *)

(** {1 Switched configurations}

    The same stacks over a {!Netproto.World.switched} star: every host
    on its own access link, all calls through the switch.  Peers are
    never on the local wire, so VIP always takes the IP-via-gateway
    path — the remote case of section 3.2 — and the switch sees (and
    may compute on) every RPC. *)

val lrpc_switched :
  ?adaptive:bool ->
  ?rto_load_floor:bool ->
  ?n_channels:int ->
  ?policy:Select_replica.policy ->
  ?attempt_timeout:float ->
  ?deadline:float ->
  ?max_failovers:int ->
  ?probation:float ->
  ?probe_limit:int ->
  ?admit:Admit.config ->
  ?propagate_deadline:bool ->
  ?retry_budget:float ->
  ?hedge:bool ->
  ?probe_timeout:float ->
  ?dead_retry_interval:float ->
  ?drain_deadline:float ->
  ?shard_map:Shard_map.t ->
  ?map_delay:float ->
  ?map_jitter:float ->
  ?inc_cacheable:int list ->
  ?inc_ttl:float ->
  ?inc_capacity:int ->
  Netproto.World.switched ->
  fanout_stack * Inc.t option
(** {!lrpc_fanout} over the switched star.  [inc_cacheable] installs
    the {!Inc} in-network computation on the switch, caching replies to
    the listed SELECT commands ([inc_ttl] / [inc_capacity] bound the
    cache); omitted, the switch is a plain forwarder and the second
    component is [None]. *)

val mrpc_switched :
  ?lower:mono_lower ->
  ?n_channels:int ->
  ?policy:Select_replica.policy ->
  ?attempt_timeout:float ->
  ?deadline:float ->
  ?max_failovers:int ->
  ?probation:float ->
  ?probe_limit:int ->
  ?probe_timeout:float ->
  ?dead_retry_interval:float ->
  ?drain_deadline:float ->
  ?shard_map:Shard_map.t ->
  ?map_delay:float ->
  ?map_jitter:float ->
  Netproto.World.switched ->
  fanout_stack
(** {!mrpc_fanout} over the switched star.  The monolithic wire format
    is opaque to {!Inc}, so there is no caching variant. *)

val lrpc_vip_size : Netproto.World.t -> endpoints
(** SELECT-CHANNEL-VIPsize with FRAGMENT below VIPsize and VIPaddr at
    the bottom (Figure 3(b)) — the section 4.3 configuration that
    dynamically removes FRAGMENT from the small-message path. *)

val channel_fragment_vip : Netproto.World.t -> endpoints
(** CHANNEL-FRAGMENT-VIP with a trivial echo above CHANNEL — Table III
    row 3.  [call]'s [command] is ignored. *)

val fragment_probe :
  Netproto.World.t -> Netproto.Probe.t * Netproto.Probe.t
(** FRAGMENT-VIP under the Probe echo harness — Table III row 2 and the
    FRAGMENT-alone throughput note of section 4.2.  Returns (client
    probe on node 0, serving probe on node 1). *)

val vip_probe : Netproto.World.t -> Netproto.Probe.t * Netproto.Probe.t
(** Bare VIP under Probe — Table III row 1. *)

val udp_probe :
  Netproto.World.t -> user_level:bool ->
  Netproto.Probe.t * Netproto.Probe.t
(** UDP-IP-ETH under Probe — the intro's UDP round-trip comparison
    (user-to-user when [user_level]). *)
