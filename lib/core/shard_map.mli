(** Versioned shard assignment plus the MAP control plane.

    A shard map partitions a keyspace into [S] virtual shards and
    assigns each to one of [K] replica endpoints by seeded rendezvous
    (highest-random-weight) hashing, so reassigning away from a failed
    replica moves only the shards it owned.  Maps carry a generation
    stamp — [(epoch, version)] compared lexicographically — and every
    consumer installs a map only when it is strictly newer than the one
    it holds, which makes redelivery and reordering of MAP pushes
    harmless.

    {!Coordinator} is the control-plane half: it owns the authoritative
    map and distributes each new generation to subscribed protocols
    through the uniform control operation ([Install_map], carrying the
    {!Wire_fmt.Map} encoding), with per-sink delay and seeded jitter so
    installs are never in lockstep.  Everything here is inert unless a
    stack opts in; no paper-pinned output changes. *)

type t

val create : seed:int -> shards:int -> replicas:int -> t
(** Generation 1 of a map: [epoch] is derived from [seed] (which also
    seeds the rendezvous weights), [version] is 1.  Raises on
    [shards]/[replicas] outside {!Wire_fmt.Map} bounds. *)

val shard_count : t -> int
val replica_count : t -> int
val epoch : t -> int
val version : t -> int

val shard_of_key : t -> int -> int
(** [key mod shard_count], normalised non-negative — the key-to-shard
    step is deliberately transparent so tests and load generators can
    target a chosen shard. *)

val owner : t -> shard:int -> int
(** Owning replica index. *)

val shards_owned : t -> replica:int -> int

val newer_than : t -> epoch:int -> version:int -> bool
(** Is [t] strictly newer than generation [(epoch, version)]? *)

val diff : t -> t -> int list
(** Shards whose owner differs, ascending. *)

val reassign : t -> dead:int list -> t option
(** Move every shard owned by a replica in [dead] to its best live
    rendezvous candidate, bumping [version].  [None] when nothing would
    move (or no replica is live). *)

val move : t -> shard:int -> to_:int -> t
(** Reassign one shard, bumping [version]; [t] unchanged if [to_]
    already owns it. *)

val encode : t -> string
(** The {!Wire_fmt.Map} wire form carried inside [Install_map]. *)

val decode : string -> t option

val pp : Format.formatter -> t -> unit

module Coordinator : sig
  type map = t
  type t

  val create :
    host:Xkernel.Host.t ->
    ?publish_delay:float ->
    ?jitter:float ->
    map:map ->
    unit ->
    t
  (** A coordinator protocol (["MAP"], virtual) on [host] holding [map]
      as the authoritative assignment.  Each push to each sink is
      delivered after [publish_delay] (default 2 ms) plus a seeded
      uniform jitter of up to [jitter] (default 2 ms). *)

  val subscribe : t -> Xkernel.Proto.t -> unit
  (** Add a sink; it immediately receives the current map (delayed and
      jittered like any push).  Sinks must answer
      [control (Install_map _)]. *)

  val install : t -> map -> unit
  (** Adopt [map] iff strictly newer and push it to every sink; counts
      owner changes into {!moved}. *)

  val publish : t -> unit
  (** Re-push the current map to every sink. *)

  val current : t -> map

  val moved : t -> int
  (** Cumulative shards whose owner changed across {!install}s. *)

  val proto : t -> Xkernel.Proto.t
end
