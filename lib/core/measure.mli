(** Measurement harness for the paper's experiments.

    Reproduces the methodology of section 4: latency is the averaged
    round-trip time of a null procedure with null arguments; throughput
    sends a series of large requests (1 KB to 16 KB) with null replies;
    the incremental cost is the least-squares slope of round-trip time
    over message size.  All times are virtual seconds from the
    simulator; the [runs]×[iters] double aggregation mirrors the
    paper's repeated 10,000-call runs (scaled down — the simulator is
    deterministic, so variance across runs is zero by construction and
    fewer iterations suffice). *)

type row = {
  row_name : string;
  latency_ms : float;  (** null-call round trip, msec *)
  throughput_kbs : float;
      (** 16 KB-request throughput, kbytes (1000 bytes) per second *)
  incr_cost_ms_per_kb : float;  (** msec per additional 1 KB *)
  client_cpu_ms : float;  (** client CPU time per 16 KB call *)
}

val latency :
  ?warmup:int -> ?iters:int -> Netproto.World.t -> Stacks.endpoints -> float
(** Average null-call round trip in msec.  Drives the simulator. *)

val sweep :
  ?sizes:int list -> ?iters:int -> Netproto.World.t -> Stacks.endpoints ->
  (int * float) list
(** [(size, seconds per call)] for each request size (default
    1 KB..16 KB in 1 KB steps), null replies. *)

val probe_latency :
  ?warmup:int -> ?iters:int -> ?size:int -> Netproto.World.t ->
  Netproto.Probe.t -> peer:Xkernel.Addr.Ip.t -> float
(** Same for a Probe-based stack (Table III rows without RPC). *)

val probe_sweep :
  ?sizes:int list -> ?iters:int -> Netproto.World.t -> Netproto.Probe.t ->
  peer:Xkernel.Addr.Ip.t -> (int * float) list
(** Size sweep for Probe stacks.  Note both directions carry [size]
    bytes (Probe echoes), unlike RPC's null replies. *)

val fit_slope : (int * float) list -> float
(** Least-squares slope in msec per KB over a [(bytes, seconds)]
    series.  Degenerate series — fewer than two points, or all sizes
    equal (zero variance in x) — have no slope and return [0.]. *)

val throughput_kbs : size:int -> float -> float
(** [throughput_kbs ~size seconds] = kbytes (1000 bytes)/second. *)

val row :
  Netproto.World.t -> Stacks.endpoints -> row
(** Full Table I/II row: latency, 16 KB throughput, incremental cost,
    client CPU per 16 KB call. *)
