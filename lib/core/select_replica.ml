open Xkernel

type policy = Round_robin | Hash

type health = Healthy | Suspect | Dead

type endpoint = {
  ep_addr : Addr.Ip.t;
  ep_call :
    ?expires:float ->
    ?shard:Wire_fmt.Select.stamp ->
    command:int ->
    Msg.t ->
    (Msg.t, Rpc_error.t) result;
}

type replica = {
  r_idx : int;
  r_addr : Addr.Ip.t;
  r_call :
    ?expires:float ->
    ?shard:Wire_fmt.Select.stamp ->
    command:int ->
    Msg.t ->
    (Msg.t, Rpc_error.t) result;
  mutable r_health : health;
  mutable r_probe_fails : int; (* consecutive failed recovery probes *)
  mutable r_probe_armed : bool;
  mutable r_next_retry : float; (* earliest Dead re-probe (dead_retry_interval) *)
}

(* One shard-routed attempt currently on the wire: enough for a map
   install to find the stragglers bound for an ex-owner and force them
   over at the drain deadline. *)
type inflight = {
  if_shard : int;
  if_owner : int;
  if_force : int -> unit; (* settle the attempt with [Wrong_shard v] *)
}

type t = {
  host : Host.t;
  p : Proto.t;
  replicas : replica array;
  policy : policy;
  attempt_timeout : float;
  deadline : float;
  max_failovers : int;
  probation : float;
  probe_limit : int;
  probe_command : int;
  rng : Random.State.t;
  stats : Stats.t;
  mutable rr : int; (* round-robin cursor *)
  (* Overload governance (all off by default). *)
  propagate_deadline : bool;
  retry_budget : float option; (* tokens earned per call; None = unlimited *)
  token_cap : float;
  mutable tokens : float;
  hedge : bool;
  h_lat : Histogram.t; (* successful-call latency, for the hedge delay *)
  (* Sharded routing (all inert until a map is installed). *)
  drain_deadline : float option;
  probe_timeout : float option;
  dead_retry_interval : float option;
  mutable map : Shard_map.t option;
  mutable on_refresh : (unit -> unit) option;
  mutable shard_calls : int array; (* per-shard routed-call counts *)
  mutable inflight : inflight list;
  (* Per-call counters, resolved once at create time (hot path). *)
  c_call : Stats.counter;
  c_ok : Stats.counter;
  c_failed : Stats.counter;
  c_failover : Stats.counter;
  c_failover_ok : Stats.counter;
  c_attempt_timeout : Stats.counter;
  c_deadline_expired : Stats.counter;
  c_probe_sent : Stats.counter;
  c_probe_ok : Stats.counter;
  c_late_ok : Stats.counter;
  c_busy_rx : Stats.counter;
  c_exhausted : Stats.counter;
  c_hedge_sent : Stats.counter;
  c_hedge_win : Stats.counter;
  c_all_dead : Stats.counter;
  c_map_rx : Stats.counter;
  c_wrong_shard_rx : Stats.counter;
  c_handoff_forced : Stats.counter;
}

(* The hedge delay is the p99 of observed call latencies; with fewer
   samples than this the estimate is noise and hedging stays off. *)
let hedge_min_samples = 32

let proto t = t.p
let replica_count t = Array.length t.replicas
let health t i = t.replicas.(i).r_health

let failovers t = Stats.value t.c_failover
let probes_sent t = Stats.value t.c_probe_sent
let probes_ok t = Stats.value t.c_probe_ok

let map_version t =
  match t.map with None -> 0 | Some m -> Shard_map.version m

let current_map t = t.map
let shard_calls t = Array.copy t.shard_calls
let set_refresh t f = t.on_refresh <- Some f

(* Gauges: how many replicas this client currently distrusts. *)
let set_gauges t =
  let suspect = ref 0 and dead = ref 0 in
  Array.iter
    (fun r ->
      match r.r_health with
      | Suspect -> incr suspect
      | Dead -> incr dead
      | Healthy -> ())
    t.replicas;
  Stats.set t.stats "replica-suspect" !suspect;
  Stats.set t.stats "replica-dead" !dead

let mark_healthy t r =
  if r.r_health <> Healthy then begin
    r.r_health <- Healthy;
    Stats.incr t.stats (Printf.sprintf "replica%d-recovered" r.r_idx);
    set_gauges t
  end;
  r.r_probe_fails <- 0

(* Seeded jitter keeps a fleet of clients that suspected a replica
   together from probing it in lockstep forever. *)
let probe_delay t fails =
  t.probation
  *. (2. ** float_of_int fails)
  *. (1. +. (0.2 *. Random.State.float t.rng 1.))

(* One recovery probe, optionally bounded by [probe_timeout] so that
   deciding a crashed replica's fate costs [probe_timeout] instead of
   the lower stack's full RTO ladder.  A bounded probe that completes
   late with [Ok] still heals the replica, like any late success. *)
let probe_once t r =
  match t.probe_timeout with
  | None -> r.r_call ~command:t.probe_command Msg.empty
  | Some pt -> (
      let sim = Host.sim t.host in
      let iv = Sim.Ivar.create sim in
      let settled = ref false in
      Sim.spawn sim (fun () ->
          let res = r.r_call ~command:t.probe_command Msg.empty in
          if !settled then begin
            match res with Ok _ -> mark_healthy t r | Error _ -> ()
          end
          else begin
            settled := true;
            Sim.Ivar.fill iv res
          end);
      match Sim.Ivar.read_timeout iv pt with
      | Some res -> res
      | None ->
          settled := true;
          Error Rpc_error.Timeout)

(* Recovery probes: after probation, one null call decides.  Probing is
   capped — [probe_limit] consecutive failures mark the replica [Dead]
   and stop re-arming, so the event queue still drains when a replica
   never comes back.  A dead replica is resurrected by a last-resort
   call attempt that happens to succeed (see {!order}), or — when
   [dead_retry_interval] is set — by the periodic lazy re-probe fired
   from the call path (see {!maybe_retry_dead}). *)
let rec arm_probe t r ~delay =
  if not r.r_probe_armed then begin
    r.r_probe_armed <- true;
    ignore
      (Event.schedule t.host delay (fun () ->
           r.r_probe_armed <- false;
           if r.r_health = Suspect then begin
             Stats.tick t.c_probe_sent;
             match probe_once t r with
             | Ok _ ->
                 Stats.tick t.c_probe_ok;
                 mark_healthy t r
             | Error _ ->
                 r.r_probe_fails <- r.r_probe_fails + 1;
                 if r.r_probe_fails >= t.probe_limit then begin
                   r.r_health <- Dead;
                   (match t.dead_retry_interval with
                   | Some iv ->
                       r.r_next_retry <- Sim.now (Host.sim t.host) +. iv
                   | None -> ());
                   Stats.incr t.stats
                     (Printf.sprintf "replica%d-dead" r.r_idx);
                   set_gauges t
                 end
                 else arm_probe t r ~delay:(probe_delay t r.r_probe_fails)
           end))
  end

(* The Dead-permanence fix: with [dead_retry_interval] set, each call
   checks whether any Dead replica is due a re-probe and fires one in
   its own fiber.  Piggybacking on the call path (instead of a standing
   timer) keeps the event queue drainable when traffic stops and a
   replica never returns.  Seeded jitter staggers a fleet of clients
   that buried the replica together. *)
let maybe_retry_dead t =
  match t.dead_retry_interval with
  | None -> ()
  | Some interval ->
      let sim = Host.sim t.host in
      let now = Sim.now sim in
      Array.iter
        (fun r ->
          if r.r_health = Dead && now >= r.r_next_retry then begin
            r.r_next_retry <-
              now +. (interval *. (1. +. (0.2 *. Random.State.float t.rng 1.)));
            Sim.spawn sim (fun () ->
                Stats.tick t.c_probe_sent;
                match probe_once t r with
                | Ok _ ->
                    Stats.tick t.c_probe_ok;
                    mark_healthy t r
                | Error _ -> ())
          end)
        t.replicas

let mark_suspect t r =
  match r.r_health with
  | Healthy ->
      r.r_health <- Suspect;
      Stats.incr t.stats (Printf.sprintf "replica%d-suspect" r.r_idx);
      set_gauges t;
      arm_probe t r ~delay:(probe_delay t 0)
  | Suspect | Dead -> ()

(* Retry-budget token bucket: every call earns a fraction of a token,
   every failover or hedge spends a whole one, so retries are bounded to
   roughly [ratio] of the offered load no matter how hard the servers
   are struggling — the amplification governor. *)
let earn_token t =
  match t.retry_budget with
  | None -> ()
  | Some ratio -> t.tokens <- Float.min t.token_cap (t.tokens +. ratio)

let take_token t =
  match t.retry_budget with
  | None -> true
  | Some _ ->
      if t.tokens >= 1. then begin
        t.tokens <- t.tokens -. 1.;
        true
      end
      else false

(* One bounded attempt against one replica.  The call itself runs in
   its own fiber so the attempt can be abandoned after [budget] without
   waiting out the channel's full RTO ladder; an abandoned call still
   completes in the background, and a late success teaches the health
   tracker that the replica is alive after all.

   [hedge_to]: optionally race a second replica, launched [hedge_after]
   seconds in (if the primary has not settled by then, and a retry
   token is available); the first settlement wins, the loser is
   absorbed by the late-completion machinery. *)
let attempt t r ?hedge_to ?shard ~budget ~expires ~command msg =
  let sim = Host.sim t.host in
  let iv = Sim.Ivar.create sim in
  let settled = ref false in
  let launch r' ~is_hedge =
    Sim.spawn sim (fun () ->
        let res = r'.r_call ?expires ?shard ~command msg in
        if !settled then begin
          match res with
          | Ok _ ->
              Stats.tick t.c_late_ok;
              mark_healthy t r'
          | Error _ -> ()
        end
        else begin
          settled := true;
          (match res with
          | Ok _ ->
              mark_healthy t r';
              if is_hedge then Stats.tick t.c_hedge_win
          | Error _ -> ());
          Sim.Ivar.fill iv res
        end)
  in
  (* Shard-routed attempts register themselves so a map install can
     find the stragglers bound for an ex-owner and, at the drain
     deadline, settle them with [Wrong_shard] — the forced handoff. *)
  let entry =
    match shard with
    | None -> None
    | Some st ->
        let e =
          {
            if_shard = st.Wire_fmt.Select.shard;
            if_owner = r.r_idx;
            if_force =
              (fun v ->
                if not !settled then begin
                  settled := true;
                  Stats.tick t.c_handoff_forced;
                  Sim.Ivar.fill iv (Error (Rpc_error.Wrong_shard v))
                end);
          }
        in
        t.inflight <- e :: t.inflight;
        Some e
  in
  let unregister () =
    match entry with
    | None -> ()
    | Some e -> t.inflight <- List.filter (fun e' -> e' != e) t.inflight
  in
  launch r ~is_hedge:false;
  (match hedge_to with
  | Some (rh, hedge_after) ->
      Sim.spawn sim (fun () ->
          Sim.delay sim hedge_after;
          if (not !settled) && take_token t then begin
            Stats.tick t.c_hedge_sent;
            launch rh ~is_hedge:true
          end)
  | None -> ());
  match Sim.Ivar.read_timeout iv budget with
  | Some res ->
      unregister ();
      res
  | None ->
      unregister ();
      if !settled then
        (* A force event won the race against the budget timer. *)
        Error
          (Rpc_error.Wrong_shard (match t.map with
          | Some m -> Shard_map.version m
          | None -> 0))
      else begin
        settled := true;
        Stats.tick t.c_attempt_timeout;
        Error Rpc_error.Timeout
      end

(* Candidate order: start from the policy's preferred replica and walk
   successors (the consistent-hash ring walk, degenerate for
   round-robin), then stable-sort by health so healthy replicas are
   tried first and dead ones only as a last resort. *)
let health_walk t ~start =
  let k = Array.length t.replicas in
  let rank i =
    match t.replicas.(i).r_health with
    | Healthy -> 0
    | Suspect -> 1
    | Dead -> 2
  in
  List.init k (fun i -> (start + i) mod k)
  |> List.stable_sort (fun a b -> compare (rank a) (rank b))

let order t ~key =
  let k = Array.length t.replicas in
  let start =
    match (t.policy, key) with
    | Hash, Some key -> ((key mod k) + k) mod k
    | Hash, None | Round_robin, _ ->
        let c = t.rr in
        t.rr <- (t.rr + 1) mod k;
        c
  in
  health_walk t ~start

(* Map routing: under [Hash] with a map installed, the key picks a
   virtual shard and the map's owner is the preferred replica — the
   ring walk and health sort still provide failover successors.  The
   returned stamp travels with the request so an ex-owner can refuse
   it. *)
let route t ~key =
  match (t.policy, key, t.map) with
  | Hash, Some key, Some m ->
      let shard = Shard_map.shard_of_key m key in
      let start = Shard_map.owner m ~shard mod Array.length t.replicas in
      ( health_walk t ~start,
        Some
          {
            Wire_fmt.Select.shard;
            epoch = Shard_map.epoch m;
            version = Shard_map.version m;
          } )
  | _ -> (order t ~key, None)

(* Accept a strictly newer map.  With a [drain_deadline], shard-routed
   attempts still in flight toward an owner the new map revoked get a
   force event: if they have not completed by then, they settle with
   [Wrong_shard] (["handoff-forced"]) and the call re-routes — the
   bounded half of graceful handoff.  In-flight calls whose owner is
   unchanged, and all of them when no drain deadline is configured,
   complete where they are. *)
let install_map t m =
  let newer =
    match t.map with
    | None -> true
    | Some cur ->
        Shard_map.newer_than m ~epoch:(Shard_map.epoch cur)
          ~version:(Shard_map.version cur)
  in
  if newer then begin
    let old = t.map in
    t.map <- Some m;
    if Array.length t.shard_calls <> Shard_map.shard_count m then
      t.shard_calls <- Array.make (Shard_map.shard_count m) 0;
    Stats.tick t.c_map_rx;
    Stats.set t.stats "map-version" (Shard_map.version m);
    Trace.debugf (Host.sim t.host) ~host:t.host.Host.name
      "REPLICA installs shard map v%d" (Shard_map.version m);
    (match (old, t.drain_deadline) with
    | Some o, Some d ->
        let changed = Shard_map.diff o m in
        let doomed =
          List.filter
            (fun e ->
              List.mem e.if_shard changed
              && e.if_owner <> Shard_map.owner m ~shard:e.if_shard)
            t.inflight
        in
        if doomed <> [] then begin
          let v = Shard_map.version m in
          ignore
            (Event.schedule t.host d (fun () ->
                 List.iter (fun e -> e.if_force v) doomed))
        end
    | _ -> ())
  end;
  newer

let all_dead t =
  Array.for_all (fun r -> r.r_health = Dead) t.replicas

let call t ?key ~command msg =
  let sim = Host.sim t.host in
  Stats.tick t.c_call;
  earn_token t;
  maybe_retry_dead t;
  Machine.charge_one t.host.Host.mach Machine.Virtual_op;
  Trace.packet sim ~host:t.host.Host.name ~proto:"REPLICA" ~dir:`Send msg;
  if all_dead t then begin
    (* Every replica is dead and probing has stopped: sleeping out the
       overall deadline would learn nothing.  Fail terminally now. *)
    Stats.tick t.c_all_dead;
    Stats.tick t.c_failed;
    Error Rpc_error.Timeout
  end
  else begin
    let t0 = Sim.now sim in
    let deadline_at = t0 +. t.deadline in
    let expires = if t.propagate_deadline then Some deadline_at else None in
    let max_attempts = min (t.max_failovers + 1) (Array.length t.replicas) in
    let rec go ~refreshed ~stamp tried last_err = function
      | [] -> Error last_err
      | _ when tried >= max_attempts -> Error last_err
      | i :: rest -> (
          let r = t.replicas.(i) in
          let remaining = deadline_at -. Sim.now sim in
          if remaining <= 0. then begin
            Stats.tick t.c_deadline_expired;
            Error Rpc_error.Timeout
          end
          else begin
            if tried > 0 then Stats.tick t.c_failover;
            let budget = Float.min t.attempt_timeout remaining in
            let hedge_to =
              if
                t.hedge && tried = 0 && rest <> []
                && Histogram.count t.h_lat >= hedge_min_samples
              then
                let p99 =
                  float_of_int (Histogram.percentile t.h_lat 99.) *. 1e-6
                in
                if p99 > 0. && p99 < budget then
                  Some (t.replicas.(List.hd rest), p99)
                else None
              else None
            in
            match
              attempt t r ?hedge_to ?shard:stamp ~budget ~expires ~command msg
            with
            | Ok reply ->
                if tried > 0 then Stats.tick t.c_failover_ok;
                Ok reply
            | Error Rpc_error.Busy as e ->
                (* Explicit admission pushback: the server is up and
                   refusing load.  Not a health failure — a failover
                   here is exactly the retry storm the budget exists to
                   prevent. *)
                Stats.tick t.c_busy_rx;
                e
            | Error (Rpc_error.Wrong_shard _) as e ->
                (* The replica answered from a newer map (or a map
                   install forced the attempt over): not a health
                   failure, and no retry token — the server did no work.
                   Refresh the map and re-route once; a second
                   wrong-shard means the control plane is churning and
                   the error surfaces. *)
                Stats.tick t.c_wrong_shard_rx;
                if refreshed then e
                else begin
                  (match t.on_refresh with Some f -> f () | None -> ());
                  let idxs, stamp = route t ~key in
                  go ~refreshed:true ~stamp tried last_err idxs
                end
            | Error (Rpc_error.Remote _) as e ->
                (* The replica answered: retrying elsewhere could
                   re-execute a non-idempotent procedure. *)
                e
            | Error ((Rpc_error.Timeout | Rpc_error.Rebooted) as err) ->
                Stats.incr t.stats (Printf.sprintf "replica%d-fail" r.r_idx);
                mark_suspect t r;
                if rest = [] || tried + 1 >= max_attempts then
                  go ~refreshed ~stamp (tried + 1) err rest
                else if take_token t then go ~refreshed ~stamp (tried + 1) err rest
                else begin
                  (* Out of retry tokens: absorb the failure instead of
                     amplifying the overload with another attempt. *)
                  Stats.tick t.c_exhausted;
                  Error err
                end
          end)
    in
    let idxs, stamp = route t ~key in
    (match stamp with
    | Some st
      when st.Wire_fmt.Select.shard < Array.length t.shard_calls ->
        t.shard_calls.(st.Wire_fmt.Select.shard) <-
          t.shard_calls.(st.Wire_fmt.Select.shard) + 1
    | _ -> ());
    let res = go ~refreshed:false ~stamp 0 Rpc_error.Timeout idxs in
    (match res with
    | Ok reply ->
        Stats.tick t.c_ok;
        Histogram.record t.h_lat
          (int_of_float ((Sim.now sim -. t0) *. 1e6));
        Trace.packet sim ~host:t.host.Host.name ~proto:"REPLICA" ~dir:`Recv
          reply
    | Error _ -> Stats.tick t.c_failed);
    res
  end

let create ~host ?(policy = Round_robin) ?(attempt_timeout = 0.25)
    ?(deadline = 1.0) ?max_failovers ?(probation = 0.1) ?(probe_limit = 3)
    ?(probe_command = 1) ?(propagate_deadline = false) ?retry_budget
    ?(hedge = false) ?probe_timeout ?dead_retry_interval ?drain_deadline
    ?shard_map ?(below = []) ~endpoints () =
  let k = Array.length endpoints in
  if k < 1 then invalid_arg "Select_replica.create: no endpoints";
  if attempt_timeout <= 0. then
    invalid_arg "Select_replica.create: attempt_timeout <= 0";
  if deadline <= 0. then invalid_arg "Select_replica.create: deadline <= 0";
  (match retry_budget with
  | Some r when r < 0. -> invalid_arg "Select_replica.create: retry_budget < 0"
  | _ -> ());
  (match probe_timeout with
  | Some v when v <= 0. -> invalid_arg "Select_replica.create: probe_timeout <= 0"
  | _ -> ());
  (match dead_retry_interval with
  | Some v when v <= 0. ->
      invalid_arg "Select_replica.create: dead_retry_interval <= 0"
  | _ -> ());
  (match drain_deadline with
  | Some v when v < 0. ->
      invalid_arg "Select_replica.create: drain_deadline < 0"
  | _ -> ());
  let max_failovers =
    match max_failovers with
    | Some n when n >= 0 -> n
    | Some _ -> invalid_arg "Select_replica.create: max_failovers < 0"
    | None -> k - 1
  in
  let p = Proto.create ~host ~name:"REPLICA" ~virtual_:true () in
  let stats = Proto.stats p in
  let t =
    {
      host;
      p;
      replicas =
        Array.mapi
          (fun i ep ->
            {
              r_idx = i;
              r_addr = ep.ep_addr;
              r_call = ep.ep_call;
              r_health = Healthy;
              r_probe_fails = 0;
              r_probe_armed = false;
              r_next_retry = 0.;
            })
          endpoints;
      policy;
      attempt_timeout;
      deadline;
      max_failovers;
      probation;
      probe_limit;
      probe_command;
      rng = Sim.rng (Host.sim host);
      stats;
      rr = 0;
      propagate_deadline;
      retry_budget;
      token_cap =
        (match retry_budget with
        | Some r -> Float.max 1. (10. *. r)
        | None -> 0.);
      tokens =
        (match retry_budget with Some r -> Float.max 1. (10. *. r) | None -> 0.);
      hedge;
      h_lat = Histogram.create ~max_value:100_000_000 ();
      drain_deadline;
      probe_timeout;
      dead_retry_interval;
      map = None;
      on_refresh = None;
      shard_calls = [||];
      inflight = [];
      c_call = Stats.counter stats "call";
      c_ok = Stats.counter stats "ok";
      c_failed = Stats.counter stats "failed";
      c_failover = Stats.counter stats "failovers";
      c_failover_ok = Stats.counter stats "failover-ok";
      c_attempt_timeout = Stats.counter stats "attempt-timeout";
      c_deadline_expired = Stats.counter stats "deadline-expired";
      c_probe_sent = Stats.counter stats "probe-sent";
      c_probe_ok = Stats.counter stats "probe-ok";
      c_late_ok = Stats.counter stats "late-ok";
      c_busy_rx = Stats.counter stats "busy-reject-rx";
      c_exhausted = Stats.counter stats "retry-budget-exhausted";
      c_hedge_sent = Stats.counter stats "hedge-sent";
      c_hedge_win = Stats.counter stats "hedge-win";
      c_all_dead = Stats.counter stats "all-dead";
      c_map_rx = Stats.counter stats "map-update-rx";
      c_wrong_shard_rx = Stats.counter stats "wrong-shard-rx";
      c_handoff_forced = Stats.counter stats "handoff-forced";
    }
  in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "Select_replica: use call");
      open_enable =
        (fun ~upper:_ _ -> invalid_arg "Select_replica: client-side only");
      open_done = (fun ~upper:_ _ -> invalid_arg "Select_replica: use call");
      demux =
        (fun ~lower:_ _ ->
          (* Headerless virtual protocol: replies come back through the
             per-replica call path, never by demux. *)
          Stats.incr t.stats "rx-unexpected");
      p_control =
        (fun req ->
          match req with
          | Control.Install_map bytes -> (
              (* The MAP control plane lands here. *)
              match Shard_map.decode bytes with
              | None -> Control.Unsupported
              | Some m ->
                  ignore (install_map t m);
                  Control.R_unit)
          | Control.Get_map_version when t.map <> None ->
              Control.R_int (map_version t)
          | req -> Stats.control t.stats req);
    };
  if below <> [] then Proto.declare_below p below;
  set_gauges t;
  (match shard_map with Some m -> ignore (install_map t m) | None -> ());
  t

let of_select ~host ~select ~servers ?policy ?attempt_timeout ?deadline
    ?max_failovers ?probation ?probe_limit ?probe_command ?propagate_deadline
    ?retry_budget ?hedge ?probe_timeout ?dead_retry_interval ?drain_deadline
    ?shard_map () =
  let endpoints =
    Array.map
      (fun addr ->
        (* Connect lazily, from inside the first calling fiber, like
           every Stacks builder does. *)
        let cl = ref None in
        {
          ep_addr = addr;
          ep_call =
            (fun ?expires ?shard ~command msg ->
              let c =
                match !cl with
                | Some c -> c
                | None ->
                    let c = Select.connect select ~server:addr in
                    cl := Some c;
                    c
              in
              Select.call c ?expires ?shard ~command msg);
        })
      servers
  in
  create ~host ?policy ?attempt_timeout ?deadline ?max_failovers ?probation
    ?probe_limit ?probe_command ?propagate_deadline ?retry_budget ?hedge
    ?probe_timeout ?dead_retry_interval ?drain_deadline ?shard_map
    ~below:[ Select.proto select ]
    ~endpoints ()
