open Xkernel

type policy = Round_robin | Hash

type health = Healthy | Suspect | Dead

type endpoint = {
  ep_addr : Addr.Ip.t;
  ep_call : ?expires:float -> command:int -> Msg.t -> (Msg.t, Rpc_error.t) result;
}

type replica = {
  r_idx : int;
  r_addr : Addr.Ip.t;
  r_call : ?expires:float -> command:int -> Msg.t -> (Msg.t, Rpc_error.t) result;
  mutable r_health : health;
  mutable r_probe_fails : int; (* consecutive failed recovery probes *)
  mutable r_probe_armed : bool;
}

type t = {
  host : Host.t;
  p : Proto.t;
  replicas : replica array;
  policy : policy;
  attempt_timeout : float;
  deadline : float;
  max_failovers : int;
  probation : float;
  probe_limit : int;
  probe_command : int;
  rng : Random.State.t;
  stats : Stats.t;
  mutable rr : int; (* round-robin cursor *)
  (* Overload governance (all off by default). *)
  propagate_deadline : bool;
  retry_budget : float option; (* tokens earned per call; None = unlimited *)
  token_cap : float;
  mutable tokens : float;
  hedge : bool;
  h_lat : Histogram.t; (* successful-call latency, for the hedge delay *)
  (* Per-call counters, resolved once at create time (hot path). *)
  c_call : Stats.counter;
  c_ok : Stats.counter;
  c_failed : Stats.counter;
  c_failover : Stats.counter;
  c_failover_ok : Stats.counter;
  c_attempt_timeout : Stats.counter;
  c_deadline_expired : Stats.counter;
  c_probe_sent : Stats.counter;
  c_probe_ok : Stats.counter;
  c_late_ok : Stats.counter;
  c_busy_rx : Stats.counter;
  c_exhausted : Stats.counter;
  c_hedge_sent : Stats.counter;
  c_hedge_win : Stats.counter;
  c_all_dead : Stats.counter;
}

(* The hedge delay is the p99 of observed call latencies; with fewer
   samples than this the estimate is noise and hedging stays off. *)
let hedge_min_samples = 32

let proto t = t.p
let replica_count t = Array.length t.replicas
let health t i = t.replicas.(i).r_health

let failovers t = Stats.value t.c_failover
let probes_sent t = Stats.value t.c_probe_sent
let probes_ok t = Stats.value t.c_probe_ok

(* Gauges: how many replicas this client currently distrusts. *)
let set_gauges t =
  let suspect = ref 0 and dead = ref 0 in
  Array.iter
    (fun r ->
      match r.r_health with
      | Suspect -> incr suspect
      | Dead -> incr dead
      | Healthy -> ())
    t.replicas;
  Stats.set t.stats "replica-suspect" !suspect;
  Stats.set t.stats "replica-dead" !dead

let mark_healthy t r =
  if r.r_health <> Healthy then begin
    r.r_health <- Healthy;
    Stats.incr t.stats (Printf.sprintf "replica%d-recovered" r.r_idx);
    set_gauges t
  end;
  r.r_probe_fails <- 0

(* Seeded jitter keeps a fleet of clients that suspected a replica
   together from probing it in lockstep forever. *)
let probe_delay t fails =
  t.probation
  *. (2. ** float_of_int fails)
  *. (1. +. (0.2 *. Random.State.float t.rng 1.))

(* Recovery probes: after probation, one null call decides.  Probing is
   capped — [probe_limit] consecutive failures mark the replica [Dead]
   and stop re-arming, so the event queue still drains when a replica
   never comes back.  A dead replica is only resurrected by a
   last-resort call attempt that happens to succeed (see {!order}). *)
let rec arm_probe t r ~delay =
  if not r.r_probe_armed then begin
    r.r_probe_armed <- true;
    ignore
      (Event.schedule t.host delay (fun () ->
           r.r_probe_armed <- false;
           if r.r_health = Suspect then begin
             Stats.tick t.c_probe_sent;
             match r.r_call ~command:t.probe_command Msg.empty with
             | Ok _ ->
                 Stats.tick t.c_probe_ok;
                 mark_healthy t r
             | Error _ ->
                 r.r_probe_fails <- r.r_probe_fails + 1;
                 if r.r_probe_fails >= t.probe_limit then begin
                   r.r_health <- Dead;
                   Stats.incr t.stats
                     (Printf.sprintf "replica%d-dead" r.r_idx);
                   set_gauges t
                 end
                 else arm_probe t r ~delay:(probe_delay t r.r_probe_fails)
           end))
  end

let mark_suspect t r =
  match r.r_health with
  | Healthy ->
      r.r_health <- Suspect;
      Stats.incr t.stats (Printf.sprintf "replica%d-suspect" r.r_idx);
      set_gauges t;
      arm_probe t r ~delay:(probe_delay t 0)
  | Suspect | Dead -> ()

(* Retry-budget token bucket: every call earns a fraction of a token,
   every failover or hedge spends a whole one, so retries are bounded to
   roughly [ratio] of the offered load no matter how hard the servers
   are struggling — the amplification governor. *)
let earn_token t =
  match t.retry_budget with
  | None -> ()
  | Some ratio -> t.tokens <- Float.min t.token_cap (t.tokens +. ratio)

let take_token t =
  match t.retry_budget with
  | None -> true
  | Some _ ->
      if t.tokens >= 1. then begin
        t.tokens <- t.tokens -. 1.;
        true
      end
      else false

(* One bounded attempt against one replica.  The call itself runs in
   its own fiber so the attempt can be abandoned after [budget] without
   waiting out the channel's full RTO ladder; an abandoned call still
   completes in the background, and a late success teaches the health
   tracker that the replica is alive after all.

   [hedge_to]: optionally race a second replica, launched [hedge_after]
   seconds in (if the primary has not settled by then, and a retry
   token is available); the first settlement wins, the loser is
   absorbed by the late-completion machinery. *)
let attempt t r ?hedge_to ~budget ~expires ~command msg =
  let sim = Host.sim t.host in
  let iv = Sim.Ivar.create sim in
  let settled = ref false in
  let launch r' ~is_hedge =
    Sim.spawn sim (fun () ->
        let res = r'.r_call ?expires ~command msg in
        if !settled then begin
          match res with
          | Ok _ ->
              Stats.tick t.c_late_ok;
              mark_healthy t r'
          | Error _ -> ()
        end
        else begin
          settled := true;
          (match res with
          | Ok _ ->
              mark_healthy t r';
              if is_hedge then Stats.tick t.c_hedge_win
          | Error _ -> ());
          Sim.Ivar.fill iv res
        end)
  in
  launch r ~is_hedge:false;
  (match hedge_to with
  | Some (rh, hedge_after) ->
      Sim.spawn sim (fun () ->
          Sim.delay sim hedge_after;
          if (not !settled) && take_token t then begin
            Stats.tick t.c_hedge_sent;
            launch rh ~is_hedge:true
          end)
  | None -> ());
  match Sim.Ivar.read_timeout iv budget with
  | Some res -> res
  | None ->
      settled := true;
      Stats.tick t.c_attempt_timeout;
      Error Rpc_error.Timeout

(* Candidate order: start from the policy's preferred replica and walk
   successors (the consistent-hash ring walk, degenerate for
   round-robin), then stable-sort by health so healthy replicas are
   tried first and dead ones only as a last resort. *)
let order t ~key =
  let k = Array.length t.replicas in
  let start =
    match (t.policy, key) with
    | Hash, Some key -> ((key mod k) + k) mod k
    | Hash, None | Round_robin, _ ->
        let c = t.rr in
        t.rr <- (t.rr + 1) mod k;
        c
  in
  let rank i =
    match t.replicas.(i).r_health with
    | Healthy -> 0
    | Suspect -> 1
    | Dead -> 2
  in
  List.init k (fun i -> (start + i) mod k)
  |> List.stable_sort (fun a b -> compare (rank a) (rank b))

let all_dead t =
  Array.for_all (fun r -> r.r_health = Dead) t.replicas

let call t ?key ~command msg =
  let sim = Host.sim t.host in
  Stats.tick t.c_call;
  earn_token t;
  Machine.charge_one t.host.Host.mach Machine.Virtual_op;
  Trace.packet sim ~host:t.host.Host.name ~proto:"REPLICA" ~dir:`Send msg;
  if all_dead t then begin
    (* Every replica is dead and probing has stopped: sleeping out the
       overall deadline would learn nothing.  Fail terminally now. *)
    Stats.tick t.c_all_dead;
    Stats.tick t.c_failed;
    Error Rpc_error.Timeout
  end
  else begin
    let t0 = Sim.now sim in
    let deadline_at = t0 +. t.deadline in
    let expires = if t.propagate_deadline then Some deadline_at else None in
    let max_attempts = min (t.max_failovers + 1) (Array.length t.replicas) in
    let rec go tried last_err = function
      | [] -> Error last_err
      | _ when tried >= max_attempts -> Error last_err
      | i :: rest -> (
          let r = t.replicas.(i) in
          let remaining = deadline_at -. Sim.now sim in
          if remaining <= 0. then begin
            Stats.tick t.c_deadline_expired;
            Error Rpc_error.Timeout
          end
          else begin
            if tried > 0 then Stats.tick t.c_failover;
            let budget = Float.min t.attempt_timeout remaining in
            let hedge_to =
              if
                t.hedge && tried = 0 && rest <> []
                && Histogram.count t.h_lat >= hedge_min_samples
              then
                let p99 =
                  float_of_int (Histogram.percentile t.h_lat 99.) *. 1e-6
                in
                if p99 > 0. && p99 < budget then
                  Some (t.replicas.(List.hd rest), p99)
                else None
              else None
            in
            match attempt t r ?hedge_to ~budget ~expires ~command msg with
            | Ok reply ->
                if tried > 0 then Stats.tick t.c_failover_ok;
                Ok reply
            | Error Rpc_error.Busy as e ->
                (* Explicit admission pushback: the server is up and
                   refusing load.  Not a health failure — a failover
                   here is exactly the retry storm the budget exists to
                   prevent. *)
                Stats.tick t.c_busy_rx;
                e
            | Error (Rpc_error.Remote _) as e ->
                (* The replica answered: retrying elsewhere could
                   re-execute a non-idempotent procedure. *)
                e
            | Error ((Rpc_error.Timeout | Rpc_error.Rebooted) as err) ->
                Stats.incr t.stats (Printf.sprintf "replica%d-fail" r.r_idx);
                mark_suspect t r;
                if rest = [] || tried + 1 >= max_attempts then
                  go (tried + 1) err rest
                else if take_token t then go (tried + 1) err rest
                else begin
                  (* Out of retry tokens: absorb the failure instead of
                     amplifying the overload with another attempt. *)
                  Stats.tick t.c_exhausted;
                  Error err
                end
          end)
    in
    let res = go 0 Rpc_error.Timeout (order t ~key) in
    (match res with
    | Ok reply ->
        Stats.tick t.c_ok;
        Histogram.record t.h_lat
          (int_of_float ((Sim.now sim -. t0) *. 1e6));
        Trace.packet sim ~host:t.host.Host.name ~proto:"REPLICA" ~dir:`Recv
          reply
    | Error _ -> Stats.tick t.c_failed);
    res
  end

let create ~host ?(policy = Round_robin) ?(attempt_timeout = 0.25)
    ?(deadline = 1.0) ?max_failovers ?(probation = 0.1) ?(probe_limit = 3)
    ?(probe_command = 1) ?(propagate_deadline = false) ?retry_budget
    ?(hedge = false) ?(below = []) ~endpoints () =
  let k = Array.length endpoints in
  if k < 1 then invalid_arg "Select_replica.create: no endpoints";
  if attempt_timeout <= 0. then
    invalid_arg "Select_replica.create: attempt_timeout <= 0";
  if deadline <= 0. then invalid_arg "Select_replica.create: deadline <= 0";
  (match retry_budget with
  | Some r when r < 0. -> invalid_arg "Select_replica.create: retry_budget < 0"
  | _ -> ());
  let max_failovers =
    match max_failovers with
    | Some n when n >= 0 -> n
    | Some _ -> invalid_arg "Select_replica.create: max_failovers < 0"
    | None -> k - 1
  in
  let p = Proto.create ~host ~name:"REPLICA" ~virtual_:true () in
  let stats = Proto.stats p in
  let t =
    {
      host;
      p;
      replicas =
        Array.mapi
          (fun i ep ->
            {
              r_idx = i;
              r_addr = ep.ep_addr;
              r_call = ep.ep_call;
              r_health = Healthy;
              r_probe_fails = 0;
              r_probe_armed = false;
            })
          endpoints;
      policy;
      attempt_timeout;
      deadline;
      max_failovers;
      probation;
      probe_limit;
      probe_command;
      rng = Sim.rng (Host.sim host);
      stats;
      rr = 0;
      propagate_deadline;
      retry_budget;
      token_cap =
        (match retry_budget with
        | Some r -> Float.max 1. (10. *. r)
        | None -> 0.);
      tokens =
        (match retry_budget with Some r -> Float.max 1. (10. *. r) | None -> 0.);
      hedge;
      h_lat = Histogram.create ~max_value:100_000_000 ();
      c_call = Stats.counter stats "call";
      c_ok = Stats.counter stats "ok";
      c_failed = Stats.counter stats "failed";
      c_failover = Stats.counter stats "failovers";
      c_failover_ok = Stats.counter stats "failover-ok";
      c_attempt_timeout = Stats.counter stats "attempt-timeout";
      c_deadline_expired = Stats.counter stats "deadline-expired";
      c_probe_sent = Stats.counter stats "probe-sent";
      c_probe_ok = Stats.counter stats "probe-ok";
      c_late_ok = Stats.counter stats "late-ok";
      c_busy_rx = Stats.counter stats "busy-reject-rx";
      c_exhausted = Stats.counter stats "retry-budget-exhausted";
      c_hedge_sent = Stats.counter stats "hedge-sent";
      c_hedge_win = Stats.counter stats "hedge-win";
      c_all_dead = Stats.counter stats "all-dead";
    }
  in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "Select_replica: use call");
      open_enable =
        (fun ~upper:_ _ -> invalid_arg "Select_replica: client-side only");
      open_done = (fun ~upper:_ _ -> invalid_arg "Select_replica: use call");
      demux =
        (fun ~lower:_ _ ->
          (* Headerless virtual protocol: replies come back through the
             per-replica call path, never by demux. *)
          Stats.incr t.stats "rx-unexpected");
      p_control = (fun req -> Stats.control t.stats req);
    };
  if below <> [] then Proto.declare_below p below;
  set_gauges t;
  t

let of_select ~host ~select ~servers ?policy ?attempt_timeout ?deadline
    ?max_failovers ?probation ?probe_limit ?probe_command ?propagate_deadline
    ?retry_budget ?hedge () =
  let endpoints =
    Array.map
      (fun addr ->
        (* Connect lazily, from inside the first calling fiber, like
           every Stacks builder does. *)
        let cl = ref None in
        {
          ep_addr = addr;
          ep_call =
            (fun ?expires ~command msg ->
              let c =
                match !cl with
                | Some c -> c
                | None ->
                    let c = Select.connect select ~server:addr in
                    cl := Some c;
                    c
              in
              Select.call c ?expires ~command msg);
        })
      servers
  in
  create ~host ?policy ?attempt_timeout ?deadline ?max_failovers ?probation
    ?probe_limit ?probe_command ?propagate_deadline ?retry_budget ?hedge
    ~below:[ Select.proto select ]
    ~endpoints ()
