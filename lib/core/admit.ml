open Xkernel

type config = {
  queue_limit : int;
  codel_target : float;
  codel_interval : float;
  lifo : bool;
}

let default =
  { queue_limit = 64; codel_target = 0.; codel_interval = 0.1; lifo = false }

type item = {
  msg : Msg.t;
  lower : Proto.session; (* the channel session the request claims *)
  at : float; (* enqueue time, for the sojourn clock *)
  expires : float option; (* propagated deadline, frozen at enqueue *)
}

type t = {
  host : Host.t;
  upper : Proto.t;
  cfg : config;
  p : Proto.t;
  q : item Queue.t; (* FIFO discipline *)
  mutable lifo_q : item list; (* LIFO-under-overload discipline *)
  mutable depth : int;
  work : Sim.Semaphore.sem;
  stats : Stats.t;
  (* Simplified CoDel: once sojourn stays above [codel_target] for a
     full [codel_interval], drop the head and restart the interval. *)
  mutable above_since : float; (* negative: not currently above target *)
  mutable sojourn_max : float;
  c_admitted : Stats.counter;
  c_busy_rejected : Stats.counter;
  c_codel_dropped : Stats.counter;
  c_expired : Stats.counter;
}

let proto t = t.p
let depth t = t.depth
let admitted t = Stats.value t.c_admitted
let busy_rejected t = Stats.value t.c_busy_rejected
let codel_dropped t = Stats.value t.c_codel_dropped
let expired_dropped t = Stats.value t.c_expired

let reject t lower =
  Stats.tick t.c_busy_rejected;
  ignore (Proto.session_control lower Control.Reject_busy)

let enqueue t ~lower msg =
  if t.depth >= t.cfg.queue_limit then reject t lower
  else begin
    let expires =
      match Proto.session_control lower Control.Get_rx_deadline with
      | Control.R_float e when e >= 0. -> Some e
      | _ -> None
    in
    let item = { msg; lower; at = Sim.now (Host.sim t.host); expires } in
    if t.cfg.lifo then t.lifo_q <- item :: t.lifo_q else Queue.add item t.q;
    t.depth <- t.depth + 1;
    Sim.Semaphore.v t.work
  end

let take t =
  t.depth <- t.depth - 1;
  if t.cfg.lifo then
    match t.lifo_q with
    | item :: rest ->
        t.lifo_q <- rest;
        item
    | [] -> assert false
  else Queue.take t.q

(* One admission decision at the head of the queue.  Runs in the worker
   fiber, so everything the admitted request costs — the SELECT header,
   the procedure itself, the reply's trip down the stack — is serialized
   here, and the queue sojourn is honest wall-clock waiting. *)
let dispatch t item =
  let now = Sim.now (Host.sim t.host) in
  let sojourn = now -. item.at in
  if sojourn > t.sojourn_max then begin
    t.sojourn_max <- sojourn;
    Stats.set t.stats "sojourn-max-us" (int_of_float (sojourn *. 1e6))
  end;
  let expired = match item.expires with Some e -> e <= now | None -> false in
  if expired then
    (* The caller's budget lapsed while the request queued here: no
       reply — the caller is gone — and, crucially, no procedure CPU. *)
    Stats.tick t.c_expired
  else if t.cfg.codel_target > 0. && sojourn > t.cfg.codel_target then
    if t.above_since < 0. then begin
      (* First sojourn above target: start the interval clock, admit. *)
      t.above_since <- now;
      Stats.tick t.c_admitted;
      Proto.deliver t.upper ~lower:item.lower item.msg
    end
    else if now -. t.above_since >= t.cfg.codel_interval then begin
      (* Persistently above target for a whole interval: shed. *)
      t.above_since <- now;
      Stats.tick t.c_codel_dropped;
      reject t item.lower
    end
    else begin
      Stats.tick t.c_admitted;
      Proto.deliver t.upper ~lower:item.lower item.msg
    end
  else begin
    t.above_since <- -1.;
    Stats.tick t.c_admitted;
    Proto.deliver t.upper ~lower:item.lower item.msg
  end

let create ~host ~upper ?(config = default) () =
  if config.queue_limit < 1 then invalid_arg "Admit: queue_limit < 1";
  let p = Proto.create ~host ~name:"ADMIT" ~virtual_:true () in
  let stats = Proto.stats p in
  let t =
    {
      host;
      upper;
      cfg = config;
      p;
      q = Queue.create ();
      lifo_q = [];
      depth = 0;
      work = Sim.Semaphore.create (Host.sim host) 0;
      stats;
      above_since = -1.;
      sojourn_max = 0.;
      c_admitted = Stats.counter stats "admitted";
      c_busy_rejected = Stats.counter stats "busy-rejected";
      c_codel_dropped = Stats.counter stats "codel-drop";
      c_expired = Stats.counter stats "deadline-expired-server";
    }
  in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "Admit: server-side only");
      open_enable = (fun ~upper:_ _ -> invalid_arg "Admit: server-side only");
      open_done = (fun ~upper:_ _ -> invalid_arg "Admit: server-side only");
      demux = (fun ~lower msg -> enqueue t ~lower msg);
      p_control = (fun req -> Stats.control stats req);
    };
  (* The executor: requests surface in [demux] (any demux fiber), but
     only this fiber runs them, one at a time — the explicit queue in
     front of the procedure that the admission policy governs. *)
  Sim.spawn (Host.sim host) ~name:"admit-worker" (fun () ->
      let rec loop () =
        Sim.Semaphore.p t.work;
        dispatch t (take t);
        loop ()
      in
      loop ());
  t
