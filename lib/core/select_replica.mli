(** REPLICA: client-side replicated-server selection and failover.

    A headerless virtual protocol composed above K server bindings
    (normally K {!Select} connections, one per replica).  Each call
    picks a replica by policy — round-robin or a static key hash — and
    runs a {e bounded} attempt against it: the underlying call executes
    in its own fiber and the caller waits at most [attempt_timeout], so
    failing over to a healthy replica never requires burning the dead
    host's full RTO ladder.  Attempt outcomes drive a per-replica
    health machine:

    - [Healthy] — preferred; a successful call (re)establishes it.
    - [Suspect] — entered on [Timeout]/[Rebooted]; a probation timer
      with seeded jitter fires a null-call recovery probe.
    - [Dead] — after [probe_limit] consecutive failed probes; probing
      stops (keeping the event queue drainable when a replica never
      returns) and the replica is tried only as a last resort.  A
      last-resort success — or the late completion of an abandoned
      attempt — resurrects it.

    [Remote]/[Busy] results return immediately without failover: the
    replica answered, and re-sending a non-idempotent procedure to a
    different replica could execute it twice.

    The whole call is bounded by [deadline]; when it expires the call
    fails with [Timeout] and the ["deadline-expired"] counter ticks.
    When {e every} replica is [Dead] (so probing has stopped), [call]
    fails terminally at once (["all-dead"]) instead of sleeping out the
    deadline against replicas known to be gone.

    Overload governance, all off by default:

    - [propagate_deadline] stamps the call's absolute deadline into each
      attempt ([?expires] on the endpoint), so the CHANNEL layer carries
      the remaining budget on the wire and the server can shed expired
      work.
    - [retry_budget] is a token bucket: each call earns [ratio] tokens
      (capped at [max 1 (10 * ratio)]), each failover or hedge spends
      one.  An exhausted bucket absorbs the failure
      (["retry-budget-exhausted"]) rather than amplifying the overload.
      An [Error Busy] — the server's explicit admission pushback —
      never fails over (["busy-reject-rx"]): it is backoff pressure,
      not a death certificate, so no failover storm.
    - [hedge] arms a second attempt against the next candidate after
      the observed p99 call latency (from an internal HDR histogram;
      needs 32 successful samples), cancelled on first settlement
      (["hedge-sent"] / ["hedge-win"]); hedges spend retry tokens too.

    Counters (["failovers"], ["failover-ok"], ["probe-sent"],
    ["probe-ok"], ["attempt-timeout"], per-replica ["replicaN-*"]) and
    gauges (["replica-suspect"], ["replica-dead"]) live in the
    protocol's ["host/REPLICA"] stats table. *)

type t

type policy =
  | Round_robin  (** rotate the preferred replica per call *)
  | Hash  (** preferred replica = [key mod K]; successors on failover *)

type health = Healthy | Suspect | Dead

type endpoint = {
  ep_addr : Xkernel.Addr.Ip.t;
  ep_call :
    ?expires:float ->
    ?shard:Wire_fmt.Select.stamp ->
    command:int ->
    Xkernel.Msg.t ->
    (Xkernel.Msg.t, Rpc_error.t) result;
}
(** One replica binding: its address plus a blocking call function
    (whatever stack the replica is reached through).  [expires] is the
    caller's absolute deadline, passed when [propagate_deadline] is
    set; [shard] is the routing stamp attached when a shard map routed
    the call (endpoints whose stack cannot carry it may ignore it). *)

val create :
  host:Xkernel.Host.t ->
  ?policy:policy ->
  ?attempt_timeout:float ->
  ?deadline:float ->
  ?max_failovers:int ->
  ?probation:float ->
  ?probe_limit:int ->
  ?probe_command:int ->
  ?propagate_deadline:bool ->
  ?retry_budget:float ->
  ?hedge:bool ->
  ?probe_timeout:float ->
  ?dead_retry_interval:float ->
  ?drain_deadline:float ->
  ?shard_map:Shard_map.t ->
  ?below:Xkernel.Proto.t list ->
  endpoints:endpoint array ->
  unit ->
  t
(** [create ~host ~endpoints ()] is a replica map over [endpoints].
    [attempt_timeout] (default 0.25 s) bounds each per-replica attempt;
    [deadline] (default 1 s) bounds the whole call including all
    failovers; [max_failovers] (default K-1) caps extra attempts;
    [probation] (default 0.1 s) is the base suspect-to-probe delay,
    doubled per failed probe with seeded jitter from the simulator rng;
    [probe_command] (default 1, the null procedure) is the recovery
    probe; [below] records the protocol graph for [pp_graph].

    [probe_timeout] bounds each recovery probe (default: unbounded, the
    lower stack's RTO ladder decides); [dead_retry_interval] re-probes
    [Dead] replicas from the call path every interval (with seeded
    jitter) so a replica that reboots heals back instead of staying
    buried; [drain_deadline] bounds graceful handoff (see
    {!install_map}); [shard_map] pre-installs a routing map. *)

val of_select :
  host:Xkernel.Host.t ->
  select:Select.t ->
  servers:Xkernel.Addr.Ip.t array ->
  ?policy:policy ->
  ?attempt_timeout:float ->
  ?deadline:float ->
  ?max_failovers:int ->
  ?probation:float ->
  ?probe_limit:int ->
  ?probe_command:int ->
  ?propagate_deadline:bool ->
  ?retry_budget:float ->
  ?hedge:bool ->
  ?probe_timeout:float ->
  ?dead_retry_interval:float ->
  ?drain_deadline:float ->
  ?shard_map:Shard_map.t ->
  unit ->
  t
(** [of_select ~host ~select ~servers ()] fronts one {!Select} client
    instance with one lazily-opened connection per server address —
    the standard way to build the layer over an L.RPC or M.RPC
    stack.  Shard stamps are threaded down to {!Select.call}. *)

val call :
  t ->
  ?key:int ->
  command:int ->
  Xkernel.Msg.t ->
  (Xkernel.Msg.t, Rpc_error.t) result
(** [call t ~command msg] runs the RPC against the replica set.  [key]
    selects the preferred replica under [Hash] (ignored — and the
    round-robin cursor used — when absent).  Blocks the calling fiber
    for at most [deadline] simulated seconds. *)

val proto : t -> Xkernel.Proto.t
val replica_count : t -> int

val health : t -> int -> health
(** This client's current opinion of replica [i]. *)

val failovers : t -> int
(** Failover attempts made (the ["failovers"] counter). *)

val probes_sent : t -> int

val probes_ok : t -> int

(** {1 Shard-map routing}

    With a {!Shard_map} installed and the [Hash] policy, [?key] picks a
    virtual shard and the map's owner becomes the preferred replica
    (ring-walk successors still provide failover).  Each routed request
    carries a {!Wire_fmt.Select.stamp}; an [Error (Wrong_shard v)]
    answer — the server routed by a newer map — refreshes the map (via
    the {!set_refresh} hook) and re-routes once, without marking the
    replica unhealthy or spending a retry token
    (["wrong-shard-rx"]). *)

val install_map : t -> Shard_map.t -> bool
(** Install a strictly newer map ([false] otherwise; ["map-update-rx"],
    gauge ["map-version"]).  The protocol also accepts maps through
    [control (Install_map bytes)] — the MAP control plane.  When
    [drain_deadline] was configured, shard-routed calls in flight
    toward an owner the new map revoked are allowed that long to finish
    and are then forced over with [Wrong_shard] (["handoff-forced"]);
    without it they complete where they are. *)

val map_version : t -> int
(** Version of the installed map; 0 when none. *)

val current_map : t -> Shard_map.t option

val set_refresh : t -> (unit -> unit) -> unit
(** Hook invoked on a wrong-shard answer before re-routing — typically
    a pull of the coordinator's current map into this client. *)

val shard_calls : t -> int array
(** Per-shard routed-call counts (a copy) — the load signal a
    rebalancer aggregates. *)
