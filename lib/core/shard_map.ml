open Xkernel

type t = {
  epoch : int;
  version : int;
  n_replicas : int;
  owners : int array;
}

let shard_count t = Array.length t.owners
let replica_count t = t.n_replicas
let epoch t = t.epoch
let version t = t.version
let owner t ~shard = t.owners.(shard)

(* SplitMix-style 63-bit mixer: deterministic across runs and hosts, so
   every participant that hashes the same (seed, shard, replica) triple
   agrees on the rendezvous weights without exchanging anything beyond
   the seed. *)
let mix a b =
  let h = ref ((a lxor (b * 0x9E3779B9)) land max_int) in
  h := !h lxor (!h lsr 29);
  h := !h * 0x2545F4914F6CDD1D land max_int;
  h := !h lxor (!h lsr 32);
  h := !h * 0x9E3779B97F4A7C1 land max_int;
  !h lxor (!h lsr 29)

let weight ~seed ~shard ~replica = mix (mix seed shard) replica

let shard_of_key t key = ((key mod shard_count t) + shard_count t) mod shard_count t

(* Rendezvous (highest-random-weight) assignment: each shard goes to the
   replica with the top hash weight among [live].  Removing a replica
   moves only the shards it owned — the minimal-movement property that
   makes crash rebalancing a bounded handoff rather than a reshuffle. *)
let assign ~seed ~shards ~live =
  if live = [] then invalid_arg "Shard_map.assign: no live replicas";
  Array.init shards (fun shard ->
      List.fold_left
        (fun best r ->
          match best with
          | None -> Some r
          | Some b ->
              if
                weight ~seed ~shard ~replica:r
                > weight ~seed ~shard ~replica:b
              then Some r
              else best)
        None live
      |> Option.get)

let create ~seed ~shards ~replicas =
  if shards < 1 || shards > Wire_fmt.Map.max_shards then
    invalid_arg "Shard_map.create: shards out of range";
  if replicas < 1 || replicas > Wire_fmt.Map.max_replicas then
    invalid_arg "Shard_map.create: replicas out of range";
  {
    epoch = seed land 0xFFFFFFFF;
    version = 1;
    n_replicas = replicas;
    owners = assign ~seed ~shards ~live:(List.init replicas Fun.id);
  }

let newer_than t ~epoch ~version =
  t.epoch > epoch || (t.epoch = epoch && t.version > version)

let diff a b =
  let changed = ref [] in
  let n = min (shard_count a) (shard_count b) in
  for shard = n - 1 downto 0 do
    if a.owners.(shard) <> b.owners.(shard) then changed := shard :: !changed
  done;
  !changed

let shards_owned t ~replica =
  Array.fold_left (fun n o -> if o = replica then n + 1 else n) 0 t.owners

let reassign t ~dead =
  let live =
    List.filter (fun r -> not (List.mem r dead)) (List.init t.n_replicas Fun.id)
  in
  if live = [] then None
  else
    let next = assign ~seed:t.epoch ~shards:(shard_count t) ~live in
    let owners =
      Array.mapi
        (fun shard o -> if List.mem o dead then next.(shard) else o)
        t.owners
    in
    if owners = t.owners then None
    else Some { t with version = t.version + 1; owners }

let move t ~shard ~to_ =
  if to_ < 0 || to_ >= t.n_replicas then invalid_arg "Shard_map.move: bad replica";
  if t.owners.(shard) = to_ then t
  else
    let owners = Array.copy t.owners in
    owners.(shard) <- to_;
    { t with version = t.version + 1; owners }

let encode t =
  Wire_fmt.Map.encode
    {
      Wire_fmt.Map.epoch = t.epoch;
      version = t.version;
      n_replicas = t.n_replicas;
      owners = t.owners;
    }

let decode s =
  Option.map
    (fun m ->
      {
        epoch = m.Wire_fmt.Map.epoch;
        version = m.Wire_fmt.Map.version;
        n_replicas = m.Wire_fmt.Map.n_replicas;
        owners = m.Wire_fmt.Map.owners;
      })
    (Wire_fmt.Map.decode s)

let pp fmt t =
  Format.fprintf fmt "map e%d v%d [%s]" t.epoch t.version
    (String.concat ""
       (Array.to_list (Array.map string_of_int t.owners)))

(* The MAP control plane.  One coordinator holds the authoritative map
   and pushes every new generation to its subscribers through the
   uniform control operation — [control (Install_map bytes)] against
   each sink protocol, exactly the late-binding channel the x-kernel
   already gives every layer.  Delivery is asynchronous: each sink gets
   its own timer at [publish_delay] plus seeded jitter, so a fleet
   never installs a map in lockstep and clients genuinely disagree
   about ownership for a window — the disagreement the wrong-shard
   handshake exists to absorb. *)
module Coordinator = struct
  type map = t

  type t = {
    host : Host.t;
    p : Proto.t;
    publish_delay : float;
    jitter : float;
    rng : Random.State.t;
    stats : Stats.t;
    mutable map : map;
    mutable sinks : Proto.t list; (* reverse subscription order *)
    mutable moved : int; (* cumulative shards that changed owner *)
    c_publish : Stats.counter;
    c_install : Stats.counter;
  }

  let current t = t.map
  let proto t = t.p
  let moved t = t.moved

  let push_to t sink encoded =
    Stats.tick t.c_publish;
    ignore (Proto.control sink (Control.Install_map encoded))

  (* [Sim.after], not [Event.schedule]: subscriptions happen at stack
     wiring time, outside any fiber, and charging a [Timer_op] would
     block there.  The push runs in the fresh fiber [Sim.after] gives
     its handler, so the control call may block freely. *)
  let publish t =
    let encoded = encode t.map in
    List.iter
      (fun sink ->
        let delay =
          t.publish_delay +. (t.jitter *. Random.State.float t.rng 1.)
        in
        ignore
          (Sim.after (Host.sim t.host) delay (fun () ->
               push_to t sink encoded)))
      (List.rev t.sinks)

  let subscribe t sink =
    t.sinks <- sink :: t.sinks;
    (* A late subscriber catches up immediately (same delayed path). *)
    let delay = t.publish_delay +. (t.jitter *. Random.State.float t.rng 1.) in
    let encoded = encode t.map in
    ignore
      (Sim.after (Host.sim t.host) delay (fun () -> push_to t sink encoded))

  let install t m =
    if newer_than m ~epoch:t.map.epoch ~version:t.map.version then begin
      t.moved <- t.moved + List.length (diff t.map m);
      t.map <- m;
      Stats.tick t.c_install;
      Stats.set t.stats "map-version" m.version;
      Trace.debugf (Host.sim t.host) ~host:t.host.Host.name
        "MAP coordinator installs v%d (%d moved so far)" m.version t.moved;
      publish t
    end

  let create ~host ?(publish_delay = 0.002) ?(jitter = 0.002) ~map () =
    if publish_delay < 0. || jitter < 0. then
      invalid_arg "Coordinator.create: negative delay";
    let p = Proto.create ~host ~name:"MAP" ~virtual_:true () in
    let stats = Proto.stats p in
    let t =
      {
        host;
        p;
        publish_delay;
        jitter;
        rng = Sim.rng (Host.sim host);
        stats;
        map;
        sinks = [];
        moved = 0;
        c_publish = Stats.counter stats "map-publish";
        c_install = Stats.counter stats "map-install";
      }
    in
    Proto.set_ops p
      {
        Proto.open_ = (fun ~upper:_ _ -> invalid_arg "Coordinator: control only");
        open_enable =
          (fun ~upper:_ _ -> invalid_arg "Coordinator: control only");
        open_done = (fun ~upper:_ _ -> invalid_arg "Coordinator: control only");
        demux = (fun ~lower:_ _ -> Stats.incr stats "rx-unexpected");
        p_control =
          (fun req ->
            match req with
            | Control.Get_map_version -> Control.R_int t.map.version
            | req -> Stats.control stats req);
      };
    Stats.set stats "map-version" map.version;
    t
end
