(** ADMIT — server-side admission control as a virtual protocol.

    The overload policy the paper's virtual-protocol technique makes
    composable: slotted between CHANNEL and a {!Select} server (via
    {!Select.serve_behind}), it puts an explicit, bounded queue in
    front of the procedure and decides, per request, to

    - {b execute} it (delivered on to the SELECT server by a single
      worker fiber, so the queue sojourn is honest waiting time);
    - {b reject} it with an explicit busy-pushback reply
      ([Control.Reject_busy] on the channel session, surfaced at the
      caller as [Error Busy] in one round trip) when the queue is full,
      or when a CoDel-style controller has seen the sojourn time stay
      above [codel_target] for a whole [codel_interval];
    - {b drop} it silently when its propagated deadline
      ([Control.Get_rx_deadline]) lapsed while it queued — the caller
      has given up, so no reply is owed and no procedure CPU is spent.

    With [lifo] set, overload flips the queue to last-in-first-out:
    fresh requests (whose callers are still waiting) are served first
    and stale ones age out via the deadline check — the classic
    LIFO-under-overload discipline.

    Statistics (registered as ["<host>/ADMIT"]): ["admitted"],
    ["busy-rejected"], ["codel-drop"], ["deadline-expired-server"], and
    the gauge ["sojourn-max-us"]. *)

type config = {
  queue_limit : int;  (** bound on queued requests; beyond it, reject *)
  codel_target : float;
      (** sojourn-time target in seconds; [0.] disables the controller *)
  codel_interval : float;
      (** how long sojourn must stay above target before a drop *)
  lifo : bool;  (** serve newest-first under overload *)
}

val default : config
(** [{ queue_limit = 64; codel_target = 0.; codel_interval = 0.1;
      lifo = false }] — a plain bounded FIFO. *)

type t

val create :
  host:Xkernel.Host.t -> upper:Xkernel.Proto.t -> ?config:config -> unit -> t
(** [create ~host ~upper ()] builds the layer on [host], forwarding
    admitted requests to [upper] (the SELECT server's protocol, via
    {!Select.serve_behind} — or any protocol whose [demux] executes
    them).  Spawns the worker fiber immediately. *)

val proto : t -> Xkernel.Proto.t
(** Pass as [upper] to {!Select.serve_behind}. *)

val depth : t -> int
(** Requests currently queued. *)

val admitted : t -> int

val busy_rejected : t -> int

val codel_dropped : t -> int

val expired_dropped : t -> int
