open Xkernel
module S = Wire_fmt.Select

type handler = Msg.t -> (Msg.t, int) result

type t = {
  host : Host.t;
  channel : Channel.t;
  proto_num : int;
  p : Proto.t;
  handlers : (int, handler) Hashtbl.t;
  stats : Stats.t;
  (* Sharding (off unless [enable_sharding] is called): which replica
     index this server is, and the shard map it last installed. *)
  mutable shard_self : int option;
  mutable shard_map : Shard_map.t option;
  (* Per-call counters, resolved once at create time (hot path). *)
  c_call : Stats.counter;
  c_handled : Stats.counter;
}

type client = {
  c_t : t;
  free : Proto.session Queue.t;
  free_sem : Sim.Semaphore.sem;
  size : int;
}

let proto t = t.p

let connect t ~server =
  let n = Channel.n_channels t.channel in
  let free = Queue.create () in
  for chan = 0 to n - 1 do
    let part =
      Part.v
        ~local:
          [
            Part.Ip t.host.Host.ip;
            Part.Ip_proto t.proto_num;
            Part.Channel chan;
          ]
        ~remotes:[ [ Part.Ip server; Part.Ip_proto t.proto_num ] ]
        ()
    in
    Queue.add (Proto.open_ (Channel.proto t.channel) ~upper:t.p part) free
  done;
  { c_t = t; free; free_sem = Sim.Semaphore.create (Host.sim t.host) n; size = n }

let free_channels c = Queue.length c.free

let call c ?expires ?shard ~command msg =
  let t = c.c_t in
  (* Choose one of the existing channels; block if none is available. *)
  Sim.Semaphore.p c.free_sem;
  let chan_sess = Queue.take c.free in
  Stats.tick t.c_call;
  Machine.charge t.host.Host.mach
    [ Machine.Semaphore_op; Machine.Layer_crossing; Machine.Header S.bytes ];
  let typ =
    match shard with None -> S.typ_request | Some _ -> S.typ_request_sharded
  in
  let hdr = S.encode { S.typ; command; status = S.status_ok } in
  let request =
    match shard with
    | None -> Msg.push msg hdr
    | Some stamp ->
        (* Shard-routed: the stamp rides between header and body so an
           ex-owner can answer wrong-shard instead of executing. *)
        Machine.charge_one t.host.Host.mach (Machine.Header S.stamp_bytes);
        Msg.push (Msg.push msg (S.encode_stamp stamp)) hdr
  in
  Trace.packet (Host.sim t.host) ~host:t.host.Host.name ~proto:"SELECT"
    ~dir:`Send request;
  let result = Channel.call ?expires t.channel chan_sess request in
  Queue.add chan_sess c.free;
  Sim.Semaphore.v c.free_sem;
  Machine.charge_one t.host.Host.mach (Machine.Layer_crossing);
  match result with
  | Error e -> Error e
  | Ok reply -> (
      Machine.charge_one t.host.Host.mach (Machine.Header S.bytes);
      match Msg.pop reply S.bytes with
      | None -> Error (Rpc_error.Remote S.status_error)
      | Some (raw, body) -> (
          match S.decode raw with
          | Some { S.typ; status; _ }
            when typ = S.typ_reply && status = S.status_ok ->
              Ok body
          | Some { S.typ; status; _ }
            when typ = S.typ_reply && status = S.status_wrong_shard ->
              (* The server answered but disowned the shard: its newer
                 map version rides in the body so the caller can refresh
                 and re-route. *)
              Error
                (Rpc_error.Wrong_shard
                   (Option.value ~default:0
                      (S.decode_wrong_shard (Msg.to_string body))))
          | Some { S.status; _ } -> Error (Rpc_error.Remote status)
          | None -> Error (Rpc_error.Remote S.status_error)))

let register t ~command handler = Hashtbl.replace t.handlers command handler

(* Ownership check for a shard-stamped request: refuse only when this
   server's installed map both disowns the shard {e and} is strictly
   newer than the stamp's generation — a stale client that must refresh.
   When the stamp is current (or newer than us), serve it even if we are
   not the owner: the client is failing over around a peer it could not
   reach, and disagreeing with it here would turn every failover into a
   livelock. *)
let reject_shard t = function
  | None -> None
  | Some st -> (
      match (t.shard_self, t.shard_map) with
      | Some self, Some m
        when st.S.shard >= 0
             && st.S.shard < Shard_map.shard_count m
             && Shard_map.owner m ~shard:st.S.shard <> self
             && Shard_map.newer_than m ~epoch:st.S.epoch ~version:st.S.version
        ->
          Some (Shard_map.version m)
      | _ -> None)

(* Server: map the command onto a procedure, run it, reply through the
   channel session the request arrived on. *)
let input t ~lower msg =
  Machine.charge_one t.host.Host.mach (Machine.Header S.bytes);
  Trace.packet (Host.sim t.host) ~host:t.host.Host.name ~proto:"SELECT"
    ~dir:`Recv msg;
  match Msg.pop msg S.bytes with
  | None -> Stats.incr t.stats "rx-runt"
  | Some (raw, rest) -> (
      match S.decode raw with
      | None -> Stats.incr t.stats "rx-malformed"
      | Some hdr ->
          let sharded = hdr.S.typ = S.typ_request_sharded in
          let stamp, body =
            if sharded then (
              Machine.charge_one t.host.Host.mach
                (Machine.Header S.stamp_bytes);
              match Msg.pop rest S.stamp_bytes with
              | None -> (None, rest)
              | Some (sraw, body) -> (S.decode_stamp sraw, body))
            else (None, rest)
          in
          if (not sharded) && hdr.S.typ <> S.typ_request then
            Stats.incr t.stats "rx-unexpected"
          else if sharded && stamp = None then
            Stats.incr t.stats "rx-malformed"
          else if
            (* Last call before the procedure's CPU is charged: a
               request whose propagated deadline lapsed while it queued
               below us is dropped, and the doomed reply suppressed —
               the caller has already given up on it. *)
            match Proto.session_control lower Control.Get_rx_deadline with
            | Control.R_float e -> e >= 0. && e <= Sim.now (Host.sim t.host)
            | _ -> false
          then Stats.incr t.stats "deadline-expired-server"
          else begin
            let reply_body, status =
              match reject_shard t stamp with
              | Some version ->
                  Stats.incr t.stats "wrong-shard-tx";
                  ( Msg.of_string (S.encode_wrong_shard ~version),
                    S.status_wrong_shard )
              | None -> (
                  (* Accepted but not ours: the caller is failing over
                     around the owner (or runs a newer map than us).
                     The counter is the affinity-loss signal — a static
                     map with a dead owner shows it climbing forever,
                     a rebalanced one converges back to zero. *)
                  (match (stamp, t.shard_self, t.shard_map) with
                  | Some st, Some self, Some m
                    when st.S.shard >= 0
                         && st.S.shard < Shard_map.shard_count m
                         && Shard_map.owner m ~shard:st.S.shard <> self ->
                      Stats.incr t.stats "foreign-shard-rx"
                  | _ -> ());
                  Stats.tick t.c_handled;
                  Machine.charge_one t.host.Host.mach (Machine.Semaphore_op);
                  match Hashtbl.find_opt t.handlers hdr.S.command with
                  | None -> (Msg.empty, S.status_no_command)
                  | Some h -> (
                      match h body with
                      | Ok reply -> (reply, S.status_ok)
                      | Error s -> (Msg.empty, s)))
            in
            Machine.charge_one t.host.Host.mach (Machine.Header S.bytes);
            let rhdr =
              S.encode
                { S.typ = S.typ_reply; command = hdr.S.command; status }
            in
            let reply = Msg.push reply_body rhdr in
            Trace.packet (Host.sim t.host) ~host:t.host.Host.name
              ~proto:"SELECT" ~dir:`Send reply;
            Proto.push lower reply
          end)

let serve t =
  Proto.open_enable (Channel.proto t.channel) ~upper:t.p
    (Part.v ~local:[ Part.Ip_proto t.proto_num ] ())

(* Same enable, but requests surface in [upper] (an admission layer)
   instead of here; [upper] forwards the survivors with Proto.deliver,
   which lands in our demux as usual. *)
let serve_behind t ~upper =
  Proto.open_enable (Channel.proto t.channel) ~upper
    (Part.v ~local:[ Part.Ip_proto t.proto_num ] ())

let calls_handled t = Stats.get t.stats "handled"

let set_shard_gauges t =
  match t.shard_map with
  | None -> ()
  | Some m -> (
      Stats.set t.stats "map-version" (Shard_map.version m);
      match t.shard_self with
      | Some i ->
          Stats.set t.stats "shards-owned" (Shard_map.shards_owned m ~replica:i)
      | None -> ())

let install_shard_map t m =
  let newer =
    match t.shard_map with
    | None -> true
    | Some cur ->
        Shard_map.newer_than m ~epoch:(Shard_map.epoch cur)
          ~version:(Shard_map.version cur)
  in
  if newer then begin
    t.shard_map <- Some m;
    Stats.incr t.stats "map-update-rx";
    set_shard_gauges t;
    Trace.debugf (Host.sim t.host) ~host:t.host.Host.name
      "SELECT installs shard map v%d" (Shard_map.version m)
  end;
  newer

let enable_sharding t ~self =
  if self < 0 then invalid_arg "Select.enable_sharding: self < 0";
  t.shard_self <- Some self;
  set_shard_gauges t

let shard_map_version t =
  match t.shard_map with None -> 0 | Some m -> Shard_map.version m

let create ~host ~channel ?(proto_num = 90) () =
  let p = Proto.create ~host ~name:"SELECT" () in
  let stats = Proto.stats p in
  let t =
    {
      host;
      channel;
      proto_num;
      p;
      handlers = Hashtbl.create 16;
      stats;
      shard_self = None;
      shard_map = None;
      c_call = Stats.counter stats "call";
      c_handled = Stats.counter stats "handled";
    }
  in
  Proto.set_ops p
    {
      Proto.open_ =
        (fun ~upper:_ _ -> invalid_arg "Select: use connect/call");
      open_enable = (fun ~upper:_ _ -> invalid_arg "Select: use serve");
      open_done = (fun ~upper:_ _ -> invalid_arg "Select: use serve");
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control =
        (fun req ->
          match req with
          (* Sprite RPC never hands the layers below more than a 16 KB
             argument plus its own headers; it fragments for itself. *)
          | Control.Get_max_msg_size ->
              Proto.control (Channel.proto t.channel) req
          | Control.Install_map bytes when t.shard_self <> None -> (
              (* The MAP control plane lands here: decode, install iff
                 strictly newer than what we hold. *)
              match Shard_map.decode bytes with
              | None -> Control.Unsupported
              | Some m ->
                  ignore (install_shard_map t m);
                  Control.R_unit)
          | Control.Get_map_version when t.shard_map <> None ->
              Control.R_int (shard_map_version t)
          | req -> Stats.control t.stats req);
    };
  Proto.declare_below p [ Channel.proto channel ];
  t
