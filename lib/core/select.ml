open Xkernel
module S = Wire_fmt.Select

type handler = Msg.t -> (Msg.t, int) result

type t = {
  host : Host.t;
  channel : Channel.t;
  proto_num : int;
  p : Proto.t;
  handlers : (int, handler) Hashtbl.t;
  stats : Stats.t;
  (* Per-call counters, resolved once at create time (hot path). *)
  c_call : Stats.counter;
  c_handled : Stats.counter;
}

type client = {
  c_t : t;
  free : Proto.session Queue.t;
  free_sem : Sim.Semaphore.sem;
  size : int;
}

let proto t = t.p

let connect t ~server =
  let n = Channel.n_channels t.channel in
  let free = Queue.create () in
  for chan = 0 to n - 1 do
    let part =
      Part.v
        ~local:
          [
            Part.Ip t.host.Host.ip;
            Part.Ip_proto t.proto_num;
            Part.Channel chan;
          ]
        ~remotes:[ [ Part.Ip server; Part.Ip_proto t.proto_num ] ]
        ()
    in
    Queue.add (Proto.open_ (Channel.proto t.channel) ~upper:t.p part) free
  done;
  { c_t = t; free; free_sem = Sim.Semaphore.create (Host.sim t.host) n; size = n }

let free_channels c = Queue.length c.free

let call c ?expires ~command msg =
  let t = c.c_t in
  (* Choose one of the existing channels; block if none is available. *)
  Sim.Semaphore.p c.free_sem;
  let chan_sess = Queue.take c.free in
  Stats.tick t.c_call;
  Machine.charge t.host.Host.mach
    [ Machine.Semaphore_op; Machine.Layer_crossing; Machine.Header S.bytes ];
  let hdr =
    S.encode { S.typ = S.typ_request; command; status = S.status_ok }
  in
  let request = Msg.push msg hdr in
  Trace.packet (Host.sim t.host) ~host:t.host.Host.name ~proto:"SELECT"
    ~dir:`Send request;
  let result = Channel.call ?expires t.channel chan_sess request in
  Queue.add chan_sess c.free;
  Sim.Semaphore.v c.free_sem;
  Machine.charge_one t.host.Host.mach (Machine.Layer_crossing);
  match result with
  | Error e -> Error e
  | Ok reply -> (
      Machine.charge_one t.host.Host.mach (Machine.Header S.bytes);
      match Msg.pop reply S.bytes with
      | None -> Error (Rpc_error.Remote S.status_error)
      | Some (raw, body) -> (
          match S.decode raw with
          | Some { S.typ; status; _ }
            when typ = S.typ_reply && status = S.status_ok ->
              Ok body
          | Some { S.status; _ } -> Error (Rpc_error.Remote status)
          | None -> Error (Rpc_error.Remote S.status_error)))

let register t ~command handler = Hashtbl.replace t.handlers command handler

(* Server: map the command onto a procedure, run it, reply through the
   channel session the request arrived on. *)
let input t ~lower msg =
  Machine.charge_one t.host.Host.mach (Machine.Header S.bytes);
  Trace.packet (Host.sim t.host) ~host:t.host.Host.name ~proto:"SELECT"
    ~dir:`Recv msg;
  match Msg.pop msg S.bytes with
  | None -> Stats.incr t.stats "rx-runt"
  | Some (raw, body) -> (
      match S.decode raw with
      | None -> Stats.incr t.stats "rx-malformed"
      | Some hdr ->
          if hdr.S.typ <> S.typ_request then Stats.incr t.stats "rx-unexpected"
          else if
            (* Last call before the procedure's CPU is charged: a
               request whose propagated deadline lapsed while it queued
               below us is dropped, and the doomed reply suppressed —
               the caller has already given up on it. *)
            match Proto.session_control lower Control.Get_rx_deadline with
            | Control.R_float e -> e >= 0. && e <= Sim.now (Host.sim t.host)
            | _ -> false
          then Stats.incr t.stats "deadline-expired-server"
          else begin
            Stats.tick t.c_handled;
            Machine.charge_one t.host.Host.mach (Machine.Semaphore_op);
            let reply_body, status =
              match Hashtbl.find_opt t.handlers hdr.S.command with
              | None -> (Msg.empty, S.status_no_command)
              | Some h -> (
                  match h body with
                  | Ok reply -> (reply, S.status_ok)
                  | Error s -> (Msg.empty, s))
            in
            Machine.charge_one t.host.Host.mach (Machine.Header S.bytes);
            let rhdr =
              S.encode
                { S.typ = S.typ_reply; command = hdr.S.command; status }
            in
            let reply = Msg.push reply_body rhdr in
            Trace.packet (Host.sim t.host) ~host:t.host.Host.name
              ~proto:"SELECT" ~dir:`Send reply;
            Proto.push lower reply
          end)

let serve t =
  Proto.open_enable (Channel.proto t.channel) ~upper:t.p
    (Part.v ~local:[ Part.Ip_proto t.proto_num ] ())

(* Same enable, but requests surface in [upper] (an admission layer)
   instead of here; [upper] forwards the survivors with Proto.deliver,
   which lands in our demux as usual. *)
let serve_behind t ~upper =
  Proto.open_enable (Channel.proto t.channel) ~upper
    (Part.v ~local:[ Part.Ip_proto t.proto_num ] ())

let calls_handled t = Stats.get t.stats "handled"

let create ~host ~channel ?(proto_num = 90) () =
  let p = Proto.create ~host ~name:"SELECT" () in
  let stats = Proto.stats p in
  let t =
    {
      host;
      channel;
      proto_num;
      p;
      handlers = Hashtbl.create 16;
      stats;
      c_call = Stats.counter stats "call";
      c_handled = Stats.counter stats "handled";
    }
  in
  Proto.set_ops p
    {
      Proto.open_ =
        (fun ~upper:_ _ -> invalid_arg "Select: use connect/call");
      open_enable = (fun ~upper:_ _ -> invalid_arg "Select: use serve");
      open_done = (fun ~upper:_ _ -> invalid_arg "Select: use serve");
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control =
        (fun req ->
          match req with
          (* Sprite RPC never hands the layers below more than a 16 KB
             argument plus its own headers; it fragments for itself. *)
          | Control.Get_max_msg_size ->
              Proto.control (Channel.proto t.channel) req
          | req -> Stats.control t.stats req);
    };
  Proto.declare_below p [ Channel.proto channel ];
  t
