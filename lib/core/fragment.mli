(** FRAGMENT — unreliable, persistent bulk transfer (section 3.2).

    The bottom layer of layered Sprite RPC, deliberately carved out so
    other protocols (Psync, Sun RPC mixes) can reuse it.  Semantics:

    - {b unreliable}: messages may arrive out of order, duplicated, or
      not at all; no positive acknowledgements are ever sent;
    - {b persistent}: a receiver missing fragments asks the sender for
      exactly those fragments (a NACK carrying the missing-fragment
      mask), a bounded number of times;
    - the sender keeps a copy of each message's fragments and discards
      it when a timer expires — not when the message is acknowledged,
      because it never is;
    - a message re-pushed by a higher-level protocol (e.g. a CHANNEL
      retransmission) is an independent message with a fresh sequence
      number.

    Each message is split into at most 16 fragments (the 16-bit
    fragment mask), 1 KB each by default, carrying the 23-byte
    FRAGMENT_HDR of the paper's appendix. *)

type t

val create :
  host:Xkernel.Host.t ->
  lower:Xkernel.Proto.t ->
  ?proto_num:int ->
  ?frag_size:int ->
  ?cache_ttl:float ->
  ?nack_delay:float ->
  ?nack_retries:int ->
  unit ->
  t
(** [proto_num] (default 92) is FRAGMENT's *own* protocol number toward
    the layer below; the protocol-number field inside its header names
    whichever upper protocol each message belongs to — the reason a
    reusable layer "must have its own protocol number (type) field"
    (section 3.2).  [frag_size] defaults to 1024 (Sprite's fragment size: a 16 KB
    message becomes 16 packets, per section 4.2); [cache_ttl] (default
    2 s) is the sender-side discard timer; [nack_delay] (default
    30 ms) is how long a receiver waits on an incomplete message before
    requesting the missing fragments, rearmed up to [nack_retries]
    (default 3) times. *)

val proto : t -> Xkernel.Proto.t

val max_message : t -> int
(** 16 × fragment size: the largest message one FRAGMENT sequence
    number can carry. *)

val recent_count : t -> int
(** Total entries in the recently-completed dedup tables across all
    sessions — bounded by the prune timer; exposed for tests. *)

val reasm_count : t -> int
(** Total in-progress partial reassemblies across all sessions —
    cleared by a {!Xkernel.Host.reboot} of the owning host; exposed for
    tests. *)

(** Participants: like VIP — [Ip peer] + [Ip_proto n].  Sessions answer
    [Get_peer_host], [Get_frag_size], [Get_max_packet]
    (= [max_message]), [Get_opt_packet] (= fragment size).  The protocol
    answers [Get_max_msg_size] with fragment size + header, so a VIP
    *below* FRAGMENT knows it never needs the IP path for local peers.

    Statistics: ["tx-msg"], ["tx-frag"], ["rx-msg"], ["rx-frag"],
    ["nack-tx"], ["nack-rx"], ["retransmit"], ["cache-drop"],
    ["give-up"], ["recent-pruned"]. *)
