open Xkernel
module F = Wire_fmt.Fragment

let max_frags = 16 (* the 16-bit fragment mask *)

type reasm = {
  pieces : Msg.t option array;
  mutable have : int; (* mask of fragments received *)
  r_num : int;
  mutable nacks_left : int;
}

type send_entry = { frags : (F.t * Msg.t) array }

type sess = {
  peer : Addr.Ip.t;
  proto_num : int;
  upper : Proto.t;
  lower_sess : Proto.session;
  mutable next_seq : int;
  cache : (int, send_entry) Hashtbl.t; (* sent messages awaiting discard *)
  reasm : (int, reasm) Hashtbl.t;
  recent : (int, float) Hashtbl.t; (* recently completed sequence numbers *)
  recent_q : (int * float) Queue.t;
      (* [recent] in insertion order.  Sim time is monotone and a
         sequence number is noted at most once, so the queue front is
         always the oldest entry and pruning pops a prefix instead of
         folding the whole table on every delivery. *)
  mutable prune_armed : bool; (* a sweep of [recent] is scheduled *)
  mutable xs : Proto.session option;
}

type t = {
  host : Host.t;
  lower : Proto.t;
  own_proto : int;
      (* FRAGMENT's own protocol number toward the layer below; the
         protocol-number *field* in its header names the layer above *)
  mutable frag_size : int;
  cache_ttl : float;
  nack_delay : float;
  nack_retries : int;
  p : Proto.t;
  sessions : (int * int, sess) Hashtbl.t; (* (peer, proto_num) *)
  enabled : (int, Proto.t) Hashtbl.t;
  stats : Stats.t;
  (* Per-fragment counters, resolved once at create time (hot path). *)
  c_tx_frag : Stats.counter;
  c_tx_msg : Stats.counter;
  c_rx_msg : Stats.counter;
  c_rx_frag : Stats.counter;
  c_recent_pruned : Stats.counter;
}

let proto t = t.p
let max_message t = max_frags * t.frag_size
let full_mask num = (1 lsl num) - 1

let lower_part t ~peer =
  Part.v
    ~local:[ Part.Ip t.host.Host.ip; Part.Ip_proto t.own_proto ]
    ~remotes:[ [ Part.Ip peer; Part.Ip_proto t.own_proto ] ]
    ()

let send_fragment t s (hdr, piece) =
  Machine.charge t.host.Host.mach
    [ Machine.Frag_bookkeep; Machine.Header F.bytes ];
  Stats.tick t.c_tx_frag;
  let frame = Msg.push piece (F.encode hdr) in
  Trace.packet (Host.sim t.host) ~host:t.host.Host.name ~proto:"FRAGMENT"
    ~dir:`Send frame;
  Proto.push s.lower_sess frame

(* Sender side: split, transmit, cache, and arm the discard timer (no
   positive acks exist, so only time frees the cache).

   The 16-bit fragment mask allows at most 16 fragments, so messages a
   little larger than 16 x frag_size (an upper protocol's headers on a
   16 KB payload, say) round the fragment size up — bounded by what the
   layer below can carry in one packet. *)
let push_message t s msg =
  let len = Msg.length msg in
  let cap =
    match Proto.session_control s.lower_sess Control.Get_opt_packet with
    | Control.R_int n -> n - F.bytes
    | _ -> t.frag_size
  in
  let chunk = min cap (max t.frag_size ((len + max_frags - 1) / max_frags)) in
  let num = max 1 ((len + chunk - 1) / chunk) in
  if num > max_frags then Stats.incr t.stats "too-big"
  else begin
    let seq = s.next_seq in
    s.next_seq <- s.next_seq + 1;
    Stats.tick t.c_tx_msg;
    let frag i =
      let off = i * chunk in
      let this = min chunk (len - off) in
      let piece = if this <= 0 then Msg.empty else Msg.sub msg off this in
      ( {
          F.typ = F.typ_data;
          clnt_host = t.host.Host.ip;
          srvr_host = s.peer;
          protocol_num = s.proto_num;
          sequence_num = seq;
          num_frags = num;
          frag_mask = 1 lsl i;
          len = Msg.length piece;
        },
        piece )
    in
    let entry = { frags = Array.init num frag } in
    Hashtbl.replace s.cache seq entry;
    ignore
      (Event.schedule t.host t.cache_ttl (fun () ->
           if Hashtbl.mem s.cache seq then begin
             Hashtbl.remove s.cache seq;
             Stats.incr t.stats "cache-drop"
           end));
    Array.iter (send_fragment t s) entry.frags
  end

let send_nack t s ~seq ~num ~missing =
  Stats.incr t.stats "nack-tx";
  let hdr =
    {
      F.typ = F.typ_nack;
      clnt_host = t.host.Host.ip;
      srvr_host = s.peer;
      protocol_num = s.proto_num;
      sequence_num = seq;
      num_frags = num;
      frag_mask = missing;
      len = 0;
    }
  in
  Machine.charge_one t.host.Host.mach (Machine.Header F.bytes);
  Proto.push s.lower_sess (Msg.of_string (F.encode hdr))

(* Receiver side: the persistence mechanism.  While a message sits
   incomplete, periodically ask the sender for exactly the missing
   fragments; give up after [nack_retries] — the layer is unreliable. *)
let rec arm_gap_timer t s seq =
  ignore
    (Event.schedule t.host t.nack_delay (fun () ->
         match Hashtbl.find_opt s.reasm seq with
         | None -> ()
         | Some entry ->
             if entry.nacks_left <= 0 then begin
               Hashtbl.remove s.reasm seq;
               Stats.incr t.stats "give-up"
             end
             else begin
               entry.nacks_left <- entry.nacks_left - 1;
               let missing = full_mask entry.r_num land lnot entry.have in
               send_nack t s ~seq ~num:entry.r_num ~missing;
               arm_gap_timer t s seq
             end))

let prune_recent t s =
  let now = Sim.now (Host.sim t.host) in
  let rec go () =
    match Queue.peek_opt s.recent_q with
    | Some (seq, time) when now -. time > t.cache_ttl ->
        ignore (Queue.pop s.recent_q);
        Hashtbl.remove s.recent seq;
        Stats.tick t.c_recent_pruned;
        go ()
    | _ -> ()
  in
  go ()

(* The dedup table must not grow without bound on a receiver whose
   traffic stops: deliver_complete prunes on traffic, and this timer
   sweeps the tail, re-arming only while entries remain (so the event
   queue drains when the session goes quiet). *)
let rec arm_prune_timer t s =
  if not s.prune_armed then begin
    s.prune_armed <- true;
    ignore
      (Event.schedule t.host t.cache_ttl (fun () ->
           s.prune_armed <- false;
           prune_recent t s;
           if Hashtbl.length s.recent > 0 then arm_prune_timer t s))
  end

let note_recent t s seq =
  let now = Sim.now (Host.sim t.host) in
  Hashtbl.replace s.recent seq now;
  Queue.add (seq, now) s.recent_q;
  arm_prune_timer t s

let deliver_complete t s msg =
  prune_recent t s;
  Stats.tick t.c_rx_msg;
  Proto.deliver s.upper ~lower:(Option.get s.xs) msg

let handle_data t s (hdr : F.t) piece =
  let seq = hdr.F.sequence_num in
  if Hashtbl.mem s.recent seq then Stats.incr t.stats "rx-dup-complete"
  else if hdr.F.num_frags = 1 then begin
    note_recent t s seq;
    deliver_complete t s piece
  end
  else begin
    let num = hdr.F.num_frags in
    if num < 1 || num > max_frags then Stats.incr t.stats "rx-malformed"
    else
      let idx =
        let rec find i =
          if i >= num then None
          else if hdr.F.frag_mask = 1 lsl i then Some i
          else find (i + 1)
        in
        find 0
      in
      match idx with
      | None -> Stats.incr t.stats "rx-malformed"
      | Some idx -> (
          let entry =
            match Hashtbl.find_opt s.reasm seq with
            | Some e -> e
            | None ->
                let e =
                  {
                    pieces = Array.make num None;
                    have = 0;
                    r_num = num;
                    nacks_left = t.nack_retries;
                  }
                in
                Hashtbl.replace s.reasm seq e;
                arm_gap_timer t s seq;
                e
          in
          if entry.r_num <> num then Stats.incr t.stats "rx-malformed"
          else begin
            if entry.pieces.(idx) = None then begin
              entry.pieces.(idx) <- Some piece;
              entry.have <- entry.have lor (1 lsl idx)
            end
            else Stats.incr t.stats "rx-dup-frag";
            if entry.have = full_mask num then begin
              Hashtbl.remove s.reasm seq;
              note_recent t s seq;
              let whole =
                Array.fold_left
                  (fun acc piece -> Msg.append acc (Option.get piece))
                  Msg.empty entry.pieces
              in
              deliver_complete t s whole
            end
          end)
  end

let handle_nack t s (hdr : F.t) =
  Stats.incr t.stats "nack-rx";
  match Hashtbl.find_opt s.cache hdr.F.sequence_num with
  | None -> Stats.incr t.stats "nack-stale"
  | Some entry ->
      Array.iter
        (fun ((fh : F.t), _piece as frag) ->
          if fh.F.frag_mask land hdr.F.frag_mask <> 0 then begin
            Stats.incr t.stats "retransmit";
            send_fragment t s frag
          end)
        entry.frags

let make_session t ~upper ~peer ~proto_num =
  let lower_sess = Proto.open_ t.lower ~upper:t.p (lower_part t ~peer) in
  let s =
    {
      peer;
      proto_num;
      upper;
      lower_sess;
      next_seq = 1;
      cache = Hashtbl.create 8;
      reasm = Hashtbl.create 8;
      recent = Hashtbl.create 16;
      recent_q = Queue.create ();
      prune_armed = false;
      xs = None;
    }
  in
  let push msg = push_message t s msg in
  let pop _msg = () (* all delivery goes through deliver_complete *) in
  let s_control = function
    | Control.Get_peer_host -> Control.R_ip peer
    | Control.Get_my_host -> Control.R_ip t.host.Host.ip
    | Control.Get_peer_proto | Control.Get_my_proto -> Control.R_int proto_num
    | Control.Get_frag_size -> Control.R_int t.frag_size
    | Control.Get_max_packet -> Control.R_int (max_message t)
    | Control.Get_opt_packet -> Control.R_int t.frag_size
    | req -> Stats.control t.stats req
  in
  let close () =
    Hashtbl.remove t.sessions (Addr.Ip.to_int peer, proto_num)
  in
  let xs =
    Proto.make_session t.p
      ~name:(Printf.sprintf "frag(%s,%d)" (Addr.Ip.to_string peer) proto_num)
      { push; pop; s_control; close }
  in
  s.xs <- Some xs;
  Hashtbl.replace t.sessions (Addr.Ip.to_int peer, proto_num) s;
  s

let find_or_create t ~peer ~proto_num =
  match Hashtbl.find_opt t.sessions (Addr.Ip.to_int peer, proto_num) with
  | Some s -> Some s
  | None -> (
      match Hashtbl.find_opt t.enabled proto_num with
      | Some upper -> Some (make_session t ~upper ~peer ~proto_num)
      | None -> None)

let recent_count t =
  Hashtbl.fold (fun _ s acc -> acc + Hashtbl.length s.recent) t.sessions 0

let reasm_count t =
  Hashtbl.fold (fun _ s acc -> acc + Hashtbl.length s.reasm) t.sessions 0

let input t msg =
  Machine.charge t.host.Host.mach
    [ Machine.Header F.bytes; Machine.Frag_bookkeep ];
  Trace.packet (Host.sim t.host) ~host:t.host.Host.name ~proto:"FRAGMENT"
    ~dir:`Recv msg;
  match Msg.pop msg F.bytes with
  | None -> Stats.incr t.stats "rx-runt"
  | Some (raw, rest) -> (
      match F.decode raw with
      | None -> Stats.incr t.stats "rx-malformed"
      | Some hdr -> (
          Stats.tick t.c_rx_frag;
          (* The peer is whoever sent this packet. *)
          match find_or_create t ~peer:hdr.F.clnt_host ~proto_num:hdr.F.protocol_num with
          | None -> Stats.incr t.stats "rx-unbound"
          | Some s ->
              if hdr.F.typ = F.typ_nack then handle_nack t s hdr
              else if hdr.F.typ = F.typ_data then begin
                if Msg.length rest < hdr.F.len then
                  Stats.incr t.stats "rx-short"
                else handle_data t s hdr (Msg.sub rest 0 hdr.F.len)
              end
              else Stats.incr t.stats "rx-malformed"))

let open_session t ~upper part =
  let peer_part = Part.peer part in
  let peer =
    match Part.find_ip peer_part with
    | Some ip -> ip
    | None -> invalid_arg "Fragment.open_: peer has no IP address"
  in
  let proto_num =
    match
      (Part.find_ip_proto peer_part, Part.find_ip_proto part.Part.local)
    with
    | Some n, _ | None, Some n -> n
    | None, None -> invalid_arg "Fragment.open_: no IP protocol number"
  in
  let s =
    match Hashtbl.find_opt t.sessions (Addr.Ip.to_int peer, proto_num) with
    | Some s -> s
    | None -> make_session t ~upper ~peer ~proto_num
  in
  Option.get s.xs

let create ~host ~lower ?(proto_num = 92) ?(frag_size = 1024)
    ?(cache_ttl = 2.0) ?(nack_delay = 0.03) ?(nack_retries = 3) () =
  let p = Proto.create ~host ~name:"FRAGMENT" () in
  let t =
    {
      host;
      lower;
      own_proto = proto_num;
      frag_size;
      cache_ttl;
      nack_delay;
      nack_retries;
      p;
      sessions = Hashtbl.create 16;
      enabled = Hashtbl.create 8;
      stats = Proto.stats p;
      c_tx_frag = Stats.counter (Proto.stats p) "tx-frag";
      c_tx_msg = Stats.counter (Proto.stats p) "tx-msg";
      c_rx_msg = Stats.counter (Proto.stats p) "rx-msg";
      c_rx_frag = Stats.counter (Proto.stats p) "rx-frag";
      c_recent_pruned = Stats.counter (Proto.stats p) "recent-pruned";
    }
  in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper part -> open_session t ~upper part);
      open_enable =
        (fun ~upper part ->
          match Part.find_ip_proto part.Part.local with
          | None -> invalid_arg "Fragment.open_enable: no IP protocol number"
          | Some proto_num ->
              Hashtbl.replace t.enabled proto_num upper;
              (* FRAGMENT itself must be reachable from below, under
                 its own protocol number. *)
              Proto.open_enable t.lower ~upper:t.p
                (Part.v ~local:[ Part.Ip_proto t.own_proto ] ()));
      open_done = (fun ~upper part -> open_session t ~upper part);
      demux = (fun ~lower:_ msg -> input t msg);
      p_control =
        (fun req ->
          match req with
          (* What we push below is one fragment plus our header, so a
             VIP beneath us can safely choose the ethernet-only path. *)
          | Control.Get_max_msg_size -> Control.R_int (t.frag_size + F.bytes)
          | Control.Get_max_packet -> Control.R_int (max_message t)
          | Control.Get_opt_packet -> Control.R_int t.frag_size
          | Control.Get_frag_size -> Control.R_int t.frag_size
          | Control.Set_frag_size n ->
              if n < 1 || n > 65535 then Control.Unsupported
              else begin
                t.frag_size <- n;
                Control.R_unit
              end
          | Control.Get_my_host -> Control.R_ip host.Host.ip
          | req -> Stats.control t.stats req);
    };
  Proto.declare_below p [ lower ];
  Host.at_reboot host (fun () ->
      (* Crash semantics: partial reassemblies, the sent-message cache
         and the duplicate-suppression tables all die with the kernel —
         otherwise a gap timer surviving the reboot would NACK for a
         pre-crash message and deliver it into the new incarnation.
         Surviving cache/gap timers find their entries gone and no-op.
         [next_seq] is deliberately NOT reset: the peer's [recent]
         table outlives our crash, and reusing pre-crash sequence
         numbers within its TTL would make it wrongly dedup fresh
         post-reboot messages. *)
      Hashtbl.iter
        (fun _ s ->
          Hashtbl.reset s.cache;
          Hashtbl.reset s.reasm;
          Hashtbl.reset s.recent;
          Queue.clear s.recent_q)
        t.sessions;
      Stats.incr t.stats "crash-reset");
  t
