(** RPC failure outcomes shared by all client-facing call interfaces. *)

type t =
  | Timeout  (** retransmissions exhausted with no reply *)
  | Rebooted
      (** the server's boot id changed while the call was outstanding;
          at-most-once semantics cannot say whether the procedure ran *)
  | Busy
      (** a transaction is already outstanding on this channel; the
          call was rejected without transmitting anything *)
  | Remote of int  (** server-reported status (e.g. unknown command) *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
