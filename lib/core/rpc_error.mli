(** RPC failure outcomes shared by all client-facing call interfaces. *)

type t =
  | Timeout  (** retransmissions exhausted with no reply *)
  | Rebooted
      (** the server's boot id changed while the call was outstanding;
          at-most-once semantics cannot say whether the procedure ran *)
  | Busy
      (** a transaction is already outstanding on this channel; the
          call was rejected without transmitting anything *)
  | Wrong_shard of int
      (** the server answered but no longer owns the request's shard
          under its installed map (whose version is carried here), or a
          map install forced an in-flight attempt to hand off; the
          request was not executed — refresh the map and retry the new
          owner *)
  | Remote of int  (** server-reported status (e.g. unknown command) *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
