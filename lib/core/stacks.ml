open Xkernel
module World = Netproto.World

type endpoints = {
  config_name : string;
  call : command:int -> Msg.t -> (Msg.t, Rpc_error.t) result;
  client_host : Host.t;
  server_host : Host.t;
  tops : Proto.t list;
}

let cmd_null = 1
let cmd_echo = 2

let standard_handlers register =
  register ~command:cmd_null (fun _req -> Ok Msg.empty);
  register ~command:cmd_echo (fun req -> Ok req)

type mono_lower = L_eth | L_ip | L_vip

let mrpc (w : World.t) ~lower =
  let c = World.node w 0 and s = World.node w 1 in
  let proto_num = 91 in
  let lower_name, lower_of =
    match lower with
    | L_eth -> ("ETH", fun (n : World.node) -> Netproto.Eth.proto n.eth)
    | L_ip -> ("IP", fun (n : World.node) -> Netproto.Ip.proto n.ip)
    | L_vip -> ("VIP", fun (n : World.node) -> Netproto.Vip.proto n.vip)
  in
  let m_c = Sprite_mono.create ~host:c.host ~lower:(lower_of c) ~proto_num () in
  let m_s = Sprite_mono.create ~host:s.host ~lower:(lower_of s) ~proto_num () in
  standard_handlers (Sprite_mono.register m_s);
  let eth_type = Addr.eth_type_of_ip_proto proto_num in
  (match lower with
  | L_eth -> Sprite_mono.serve m_s ~enable:[ Part.Eth_type eth_type ] ()
  | L_ip | L_vip -> Sprite_mono.serve m_s ());
  let client = ref None in
  let connect () =
    match !client with
    | Some cl -> cl
    | None ->
        (* Over raw ethernet, RPC itself must name the peer with an
           ethernet address; resolve it once, up front, with ARP. *)
        let cl =
          match lower with
          | L_eth ->
              let peer_eth =
                match Netproto.Arp.resolve c.arp s.host.Host.ip with
                | Some e -> e
                | None -> failwith "mrpc-eth: cannot resolve server"
              in
              Sprite_mono.connect m_c ~server:s.host.Host.ip
                ~remote:[ Part.Eth peer_eth; Part.Eth_type eth_type ]
                ()
          | L_ip | L_vip -> Sprite_mono.connect m_c ~server:s.host.Host.ip ()
        in
        client := Some cl;
        cl
  in
  {
    config_name = "M.RPC-" ^ lower_name;
    call = (fun ~command msg -> Sprite_mono.call (connect ()) ~command msg);
    client_host = c.host;
    server_host = s.host;
    tops = [ Sprite_mono.proto m_c ];
  }

(* --- fan-in configurations: many client hosts, one server ------------- *)

type fan = {
  fan_name : string;
  fan_call :
    int -> command:int -> Msg.t -> (Msg.t, Rpc_error.t) result;
  fan_clients : Host.t array;
  fan_server : Host.t;
}

let mrpc_fanin ?(lower = L_vip) ?n_channels (f : World.fanin) =
  let proto_num = 91 in
  let lower_name, lower_of =
    match lower with
    | L_eth -> ("ETH", fun (n : World.node) -> Netproto.Eth.proto n.eth)
    | L_ip -> ("IP", fun (n : World.node) -> Netproto.Ip.proto n.ip)
    | L_vip -> ("VIP", fun (n : World.node) -> Netproto.Vip.proto n.vip)
  in
  let s = f.World.server in
  let m_s =
    Sprite_mono.create ~host:s.World.host ~lower:(lower_of s) ~proto_num
      ?n_channels ()
  in
  standard_handlers (Sprite_mono.register m_s);
  let eth_type = Addr.eth_type_of_ip_proto proto_num in
  (match lower with
  | L_eth -> Sprite_mono.serve m_s ~enable:[ Part.Eth_type eth_type ] ()
  | L_ip | L_vip -> Sprite_mono.serve m_s ());
  let server_ip = s.World.host.Host.ip in
  let mk_client (n : World.node) =
    let m_c =
      Sprite_mono.create ~host:n.World.host ~lower:(lower_of n) ~proto_num
        ?n_channels ()
    in
    let client = ref None in
    fun ~command msg ->
      let cl =
        match !client with
        | Some cl -> cl
        | None ->
            let cl =
              match lower with
              | L_eth ->
                  let peer_eth =
                    match Netproto.Arp.resolve n.World.arp server_ip with
                    | Some e -> e
                    | None -> failwith "mrpc_fanin-eth: cannot resolve server"
                  in
                  Sprite_mono.connect m_c ~server:server_ip
                    ~remote:[ Part.Eth peer_eth; Part.Eth_type eth_type ]
                    ()
              | L_ip | L_vip -> Sprite_mono.connect m_c ~server:server_ip ()
            in
            client := Some cl;
            cl
      in
      Sprite_mono.call cl ~command msg
  in
  let calls = Array.map mk_client f.World.clients in
  {
    fan_name = "M.RPC-" ^ lower_name;
    fan_call = (fun i -> calls.(i));
    fan_clients =
      Array.map (fun (n : World.node) -> n.World.host) f.World.clients;
    fan_server = s.World.host;
  }

(* SELECT-CHANNEL-FRAGMENT-VIP on one node (fan-in variant below). *)
let lrpc_node ?adaptive ?rto_load_floor ?n_channels (n : World.node) =
  let frag =
    Fragment.create ~host:n.host ~lower:(Netproto.Vip.proto n.vip) ()
  in
  let chan =
    Channel.create ~host:n.host ~lower:(Fragment.proto frag) ?adaptive
      ?rto_load_floor ?n_channels ()
  in
  let sel = Select.create ~host:n.host ~channel:chan () in
  (frag, chan, sel)

let lrpc ?adaptive ?rto_load_floor ?n_channels (w : World.t) =
  let c = World.node w 0 and s = World.node w 1 in
  let _, _, sel_c = lrpc_node ?adaptive ?rto_load_floor ?n_channels c in
  let _, _, sel_s = lrpc_node ?adaptive ?rto_load_floor ?n_channels s in
  standard_handlers (Select.register sel_s);
  Select.serve sel_s;
  let client = ref None in
  let connect () =
    match !client with
    | Some cl -> cl
    | None ->
        let cl = Select.connect sel_c ~server:s.host.Host.ip in
        client := Some cl;
        cl
  in
  {
    config_name = "L.RPC-VIP";
    call = (fun ~command msg -> Select.call (connect ()) ~command msg);
    client_host = c.host;
    server_host = s.host;
    tops = [ Select.proto sel_c ];
  }

let lrpc_fanin ?adaptive ?rto_load_floor ?n_channels (f : World.fanin) =
  let _, _, sel_s =
    lrpc_node ?adaptive ?rto_load_floor ?n_channels f.World.server
  in
  standard_handlers (Select.register sel_s);
  Select.serve sel_s;
  let server_ip = f.World.server.World.host.Host.ip in
  let mk_client (n : World.node) =
    let _, _, sel_c = lrpc_node ?adaptive ?rto_load_floor ?n_channels n in
    let client = ref None in
    fun ~command msg ->
      let cl =
        match !client with
        | Some cl -> cl
        | None ->
            let cl = Select.connect sel_c ~server:server_ip in
            client := Some cl;
            cl
      in
      Select.call cl ~command msg
  in
  let calls = Array.map mk_client f.World.clients in
  {
    fan_name = "L.RPC-VIP";
    fan_call = (fun i -> calls.(i));
    fan_clients =
      Array.map (fun (n : World.node) -> n.World.host) f.World.clients;
    fan_server = f.World.server.World.host;
  }

type fanout_stack = {
  fos_name : string;
  fos_call :
    int -> ?key:int -> command:int -> Msg.t -> (Msg.t, Rpc_error.t) result;
  fos_clients : Host.t array;
  fos_servers : Host.t array;
  fos_replicas : Select_replica.t array;
  fos_selects : Select.t array;
  fos_admits : Admit.t array;
  fos_coord : Shard_map.Coordinator.t option;
}

(* Sharded control plane for a fan-out stack: the coordinator lives on
   the first client host (it must survive any server crash), every
   shard-aware protocol gets the initial map installed directly (no
   startup race) and subscribes for subsequent generations, and each
   client's wrong-shard refresh hook pulls the coordinator's current
   map — the client-initiated half of the MAP protocol. *)
let wire_shards ~host ?map_delay ?map_jitter ~replicas ~selects = function
  | None -> None
  | Some m ->
      let coord =
        Shard_map.Coordinator.create ~host ?publish_delay:map_delay
          ?jitter:map_jitter ~map:m ()
      in
      Array.iteri
        (fun i sel ->
          Select.enable_sharding sel ~self:i;
          ignore (Select.install_shard_map sel m);
          Shard_map.Coordinator.subscribe coord (Select.proto sel))
        selects;
      Array.iter
        (fun r ->
          ignore (Select_replica.install_map r m);
          Select_replica.set_refresh r (fun () ->
              ignore
                (Select_replica.install_map r
                   (Shard_map.Coordinator.current coord)));
          Shard_map.Coordinator.subscribe coord (Select_replica.proto r))
        replicas;
      Some coord

let lrpc_fanout ?adaptive ?rto_load_floor ?n_channels ?policy ?attempt_timeout
    ?deadline ?max_failovers ?probation ?probe_limit ?admit
    ?propagate_deadline ?retry_budget ?hedge ?probe_timeout
    ?dead_retry_interval ?drain_deadline ?shard_map ?map_delay ?map_jitter
    (f : World.fanout) =
  let selects =
    Array.map
      (fun (n : World.node) ->
        let _, _, sel_s = lrpc_node ?adaptive ?rto_load_floor ?n_channels n in
        standard_handlers (Select.register sel_s);
        sel_s)
      f.World.servers
  in
  let admits =
    match admit with
    | None ->
        Array.iter Select.serve selects;
        [||]
    | Some config ->
        (* Slot the admission layer between CHANNEL and SELECT on every
           server: requests surface in ADMIT's queue, survivors are
           forwarded into the SELECT server. *)
        Array.map2
          (fun (n : World.node) sel_s ->
            let adm =
              Admit.create ~host:n.World.host ~upper:(Select.proto sel_s)
                ~config ()
            in
            Select.serve_behind sel_s ~upper:(Admit.proto adm);
            adm)
          f.World.servers selects
  in
  let server_ips =
    Array.map (fun (n : World.node) -> n.World.host.Host.ip) f.World.servers
  in
  let replicas =
    Array.map
      (fun (n : World.node) ->
        let _, _, sel_c = lrpc_node ?adaptive ?rto_load_floor ?n_channels n in
        Select_replica.of_select ~host:n.World.host ~select:sel_c
          ~servers:server_ips ?policy ?attempt_timeout ?deadline ?max_failovers
          ?probation ?probe_limit ?propagate_deadline ?retry_budget ?hedge
          ?probe_timeout ?dead_retry_interval ?drain_deadline ())
      f.World.fo_clients
  in
  let coord =
    wire_shards ~host:f.World.fo_clients.(0).World.host ?map_delay ?map_jitter
      ~replicas ~selects shard_map
  in
  {
    fos_name = "L.RPC-VIP-REPLICA";
    fos_call =
      (fun i ?key ~command msg ->
        Select_replica.call replicas.(i) ?key ~command msg);
    fos_clients =
      Array.map (fun (n : World.node) -> n.World.host) f.World.fo_clients;
    fos_servers =
      Array.map (fun (n : World.node) -> n.World.host) f.World.servers;
    fos_replicas = replicas;
    fos_selects = selects;
    fos_admits = admits;
    fos_coord = coord;
  }

let mrpc_fanout ?(lower = L_vip) ?n_channels ?policy ?attempt_timeout ?deadline
    ?max_failovers ?probation ?probe_limit ?probe_timeout ?dead_retry_interval
    ?drain_deadline ?shard_map ?map_delay ?map_jitter (f : World.fanout) =
  let proto_num = 91 in
  let lower_name, lower_of =
    match lower with
    | L_eth -> ("ETH", fun (n : World.node) -> Netproto.Eth.proto n.eth)
    | L_ip -> ("IP", fun (n : World.node) -> Netproto.Ip.proto n.ip)
    | L_vip -> ("VIP", fun (n : World.node) -> Netproto.Vip.proto n.vip)
  in
  let eth_type = Addr.eth_type_of_ip_proto proto_num in
  Array.iter
    (fun (s : World.node) ->
      let m_s =
        Sprite_mono.create ~host:s.World.host ~lower:(lower_of s) ~proto_num
          ?n_channels ()
      in
      standard_handlers (Sprite_mono.register m_s);
      match lower with
      | L_eth -> Sprite_mono.serve m_s ~enable:[ Part.Eth_type eth_type ] ()
      | L_ip | L_vip -> Sprite_mono.serve m_s ())
    f.World.servers;
  let mk_client (n : World.node) =
    let m_c =
      Sprite_mono.create ~host:n.World.host ~lower:(lower_of n) ~proto_num
        ?n_channels ()
    in
    let endpoints =
      Array.map
        (fun (s : World.node) ->
          let server_ip = s.World.host.Host.ip in
          let client = ref None in
          {
            Select_replica.ep_addr = server_ip;
            ep_call =
              (* The monolithic stack cannot carry a shard stamp; the
                 routing map still steers which replica is called. *)
              (fun ?expires:_ ?shard:_ ~command msg ->
                let cl =
                  match !client with
                  | Some cl -> cl
                  | None ->
                      let cl =
                        match lower with
                        | L_eth ->
                            let peer_eth =
                              match
                                Netproto.Arp.resolve n.World.arp server_ip
                              with
                              | Some e -> e
                              | None ->
                                  failwith
                                    "mrpc_fanout-eth: cannot resolve server"
                            in
                            Sprite_mono.connect m_c ~server:server_ip
                              ~remote:
                                [ Part.Eth peer_eth; Part.Eth_type eth_type ]
                              ()
                        | L_ip | L_vip ->
                            Sprite_mono.connect m_c ~server:server_ip ()
                      in
                      client := Some cl;
                      cl
                in
                Sprite_mono.call cl ~command msg);
          })
        f.World.servers
    in
    Select_replica.create ~host:n.World.host ?policy ?attempt_timeout ?deadline
      ?max_failovers ?probation ?probe_limit ?probe_timeout
      ?dead_retry_interval ?drain_deadline
      ~below:[ Sprite_mono.proto m_c ] ~endpoints ()
  in
  let replicas = Array.map mk_client f.World.fo_clients in
  let coord =
    wire_shards ~host:f.World.fo_clients.(0).World.host ?map_delay ?map_jitter
      ~replicas ~selects:[||] shard_map
  in
  {
    fos_name = "M.RPC-" ^ lower_name ^ "-REPLICA";
    fos_call =
      (fun i ?key ~command msg ->
        Select_replica.call replicas.(i) ?key ~command msg);
    fos_clients =
      Array.map (fun (n : World.node) -> n.World.host) f.World.fo_clients;
    fos_servers =
      Array.map (fun (n : World.node) -> n.World.host) f.World.servers;
    fos_replicas = replicas;
    fos_selects = [||];
    fos_admits = [||];
    fos_coord = coord;
  }

(* --- switched configurations: per-host access links, one switch ------ *)

(* The layered stack unchanged, over a switched star instead of a shared
   wire.  Every call crosses the switch (peers are never on-link, so VIP
   falls back to IP-via-gateway), which is exactly what lets an
   in-network computation see the traffic: [?inc_cacheable] installs
   {!Inc} on the switch's forwarding IP instance. *)
let lrpc_switched ?adaptive ?rto_load_floor ?n_channels ?policy
    ?attempt_timeout ?deadline ?max_failovers ?probation ?probe_limit ?admit
    ?propagate_deadline ?retry_budget ?hedge ?probe_timeout
    ?dead_retry_interval ?drain_deadline ?shard_map ?map_delay ?map_jitter
    ?inc_cacheable ?inc_ttl ?inc_capacity (sw : World.switched) =
  let stack =
    lrpc_fanout ?adaptive ?rto_load_floor ?n_channels ?policy ?attempt_timeout
      ?deadline ?max_failovers ?probation ?probe_limit ?admit
      ?propagate_deadline ?retry_budget ?hedge ?probe_timeout
      ?dead_retry_interval ?drain_deadline ?shard_map ?map_delay ?map_jitter
      sw.World.sw
  in
  let inc =
    match inc_cacheable with
    | None -> None
    | Some cacheable ->
        Some
          (Inc.install ~host:sw.World.sw_ports.(0).World.pt_host
             ~ip:sw.World.sw_ip ~cacheable ?ttl:inc_ttl ?capacity:inc_capacity
             ())
  in
  ({ stack with fos_name = "L.RPC-VIP-SWITCHED" }, inc)

let mrpc_switched ?lower ?n_channels ?policy ?attempt_timeout ?deadline
    ?max_failovers ?probation ?probe_limit ?probe_timeout ?dead_retry_interval
    ?drain_deadline ?shard_map ?map_delay ?map_jitter (sw : World.switched) =
  let stack =
    mrpc_fanout ?lower ?n_channels ?policy ?attempt_timeout ?deadline
      ?max_failovers ?probation ?probe_limit ?probe_timeout
      ?dead_retry_interval ?drain_deadline ?shard_map ?map_delay ?map_jitter
      sw.World.sw
  in
  { stack with fos_name = stack.fos_name ^ "-SWITCHED" }

(* SELECT-CHANNEL-VIPsize, with FRAGMENT moved below VIPsize and
   VIPaddr below both (Figure 3(b)). *)
let lrpc_vip_size_node (n : World.node) =
  let vaddr = Netproto.Vip_addr.proto n.vip_addr in
  let frag = Fragment.create ~host:n.host ~lower:vaddr () in
  let vsize =
    Netproto.Vip_size.create ~host:n.host ~bulk:(Fragment.proto frag)
      ~direct:vaddr ~arp:n.arp
  in
  let chan =
    Channel.create ~host:n.host ~lower:(Netproto.Vip_size.proto vsize) ()
  in
  let sel = Select.create ~host:n.host ~channel:chan () in
  (frag, vsize, chan, sel)

let lrpc_vip_size (w : World.t) =
  let c = World.node w 0 and s = World.node w 1 in
  let _, _, _, sel_c = lrpc_vip_size_node c in
  let _, _, _, sel_s = lrpc_vip_size_node s in
  standard_handlers (Select.register sel_s);
  Select.serve sel_s;
  let client = ref None in
  let connect () =
    match !client with
    | Some cl -> cl
    | None ->
        let cl = Select.connect sel_c ~server:s.host.Host.ip in
        client := Some cl;
        cl
  in
  {
    config_name = "SELECT-CHANNEL-VIPsize";
    call = (fun ~command msg -> Select.call (connect ()) ~command msg);
    client_host = c.host;
    server_host = s.host;
    tops = [ Select.proto sel_c ];
  }

(* A trivial upper protocol that replies to every CHANNEL request with
   its own body — the measurement harness for Table III row 3. *)
let channel_echo ~host ~channel:chan =
  let p = Proto.create ~host ~name:"CHAN-ECHO" () in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "chan-echo");
      open_enable = (fun ~upper:_ _ -> invalid_arg "chan-echo");
      open_done = (fun ~upper:_ _ -> invalid_arg "chan-echo");
      demux =
        (fun ~lower msg ->
          Machine.charge_one host.Host.mach (Machine.Layer_crossing);
          Proto.push lower msg);
      p_control = (fun _ -> Control.Unsupported);
    };
  Proto.declare_below p [ Channel.proto chan ];
  p

let channel_fragment_vip (w : World.t) =
  let c = World.node w 0 and s = World.node w 1 in
  let _, chan_c, _ = lrpc_node c in
  let _, chan_s, _ = lrpc_node s in
  let proto_num = 90 in
  let echo = channel_echo ~host:s.host ~channel:chan_s in
  Proto.open_enable (Channel.proto chan_s) ~upper:echo
    (Part.v ~local:[ Part.Ip_proto proto_num ] ());
  let sess = ref None in
  let session () =
    match !sess with
    | Some x -> x
    | None ->
        let part =
          Part.v
            ~local:
              [
                Part.Ip c.host.Host.ip; Part.Ip_proto proto_num; Part.Channel 0;
              ]
            ~remotes:[ [ Part.Ip s.host.Host.ip; Part.Ip_proto proto_num ] ]
            ()
        in
        let upper = channel_echo ~host:c.host ~channel:chan_c in
        let x = Proto.open_ (Channel.proto chan_c) ~upper part in
        sess := Some x;
        x
  in
  {
    config_name = "CHANNEL-FRAGMENT-VIP";
    call = (fun ~command:_ msg -> Channel.call chan_c (session ()) msg);
    client_host = c.host;
    server_host = s.host;
    tops = [ Channel.proto chan_c ];
  }

let fragment_probe (w : World.t) =
  let c = World.node w 0 and s = World.node w 1 in
  let frag_c =
    Fragment.create ~host:c.host ~lower:(Netproto.Vip.proto c.vip) ()
  in
  let frag_s =
    Fragment.create ~host:s.host ~lower:(Netproto.Vip.proto s.vip) ()
  in
  let pc =
    Netproto.Probe.create ~host:c.host ~lower:(Fragment.proto frag_c) ()
  in
  let ps =
    Netproto.Probe.create ~host:s.host ~lower:(Fragment.proto frag_s) ()
  in
  Netproto.Probe.serve ps;
  (pc, ps)

let vip_probe (w : World.t) =
  let c = World.node w 0 and s = World.node w 1 in
  let pc =
    Netproto.Probe.create ~host:c.host ~lower:(Netproto.Vip.proto c.vip) ()
  in
  let ps =
    Netproto.Probe.create ~host:s.host ~lower:(Netproto.Vip.proto s.vip) ()
  in
  Netproto.Probe.serve ps;
  (pc, ps)

let udp_probe (w : World.t) ~user_level =
  let c = World.node w 0 and s = World.node w 1 in
  let udp_c =
    Netproto.Udp.create ~host:c.host ~lower:(Netproto.Ip.proto c.ip) ()
  in
  let udp_s =
    Netproto.Udp.create ~host:s.host ~lower:(Netproto.Ip.proto s.ip) ()
  in
  let pc =
    Netproto.Probe.create ~host:c.host ~lower:(Netproto.Udp.proto udp_c)
      ~port:7 ~user_level ()
  in
  let ps =
    Netproto.Probe.create ~host:s.host ~lower:(Netproto.Udp.proto udp_s)
      ~port:7 ~user_level ()
  in
  Netproto.Probe.serve ps;
  (pc, ps)
