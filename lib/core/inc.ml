open Xkernel
module F = Wire_fmt.Fragment
module Ch = Wire_fmt.Channel
module Sel = Wire_fmt.Select
module Flags = Wire_fmt.Flags

(* In-network computation on the switch: a headerless virtual protocol
   hung off the forwarding IP instance's hook.  It inspects whole
   SELECT-CHANNEL-FRAGMENT datagrams in transit and, without any wire
   format of its own, (a) answers repeated idempotent requests from a
   reply cache — charging the fabric CPU and the client's access link
   but neither the server's wire nor its CPU — and (b) sheds requests
   whose propagated deadline already expired, which the server would
   only drop after paying to receive them.

   Correctness rests on what it refuses to do: only single-fragment
   data frames are examined (anything else forwards untouched), only
   explicitly registered commands are cacheable, replies are synthesized
   under a sequence space disjoint from any real sender's, and a cached
   reply is never served across a shard-map generation it predates. *)

type entry = {
  e_reply : string;  (* CHANNEL payload: SELECT header + body *)
  e_boot_id : int;  (* server boot observed in the stored reply *)
  e_gen : int * int;  (* (epoch, version) stamped on the request *)
  e_stored : float;
}

type t = {
  host : Host.t;
  ip : Netproto.Ip.t;
  ttl : float;
  capacity : int;
  cacheable : (int, unit) Hashtbl.t;
  cache : (string, entry) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for eviction *)
  pending : (int * int * int * int, string * (int * int)) Hashtbl.t;
  server_boot : (int, int) Hashtbl.t;
  (* Newest shard-map generation observed in transit; entries stamped
     with an older one are dead. *)
  mutable gen : int * int;
  (* Synthesized replies use their own sequence space, far above any
     real FRAGMENT sender's (those count up from 1), so they can never
     collide in a client's duplicate-suppression table. *)
  mutable synth_seq : int;
  stats : Stats.t;
  c_hits : Stats.counter;
  c_misses : Stats.counter;
  c_sheds : Stats.counter;
  c_forwarded : Stats.counter;
  c_stored : Stats.counter;
  c_invalidated : Stats.counter;
}

let gen_newer (e1, v1) (e0, v0) = e1 > e0 || (e1 = e0 && v1 > v0)

let flush_stale t =
  let dead =
    Hashtbl.fold
      (fun k e acc ->
        if e.e_gen <> (0, 0) && gen_newer t.gen e.e_gen then k :: acc else acc)
      t.cache []
  in
  List.iter
    (fun k ->
      Hashtbl.remove t.cache k;
      Stats.tick t.c_invalidated)
    dead

let observe_gen t g =
  if gen_newer g t.gen then begin
    t.gen <- g;
    flush_stale t
  end

(* A server reboot invalidates its at-most-once state; replies recorded
   under the old boot must die with it. *)
let observe_boot t ~server ~boot_id =
  match Hashtbl.find_opt t.server_boot server with
  | Some b when b = boot_id -> ()
  | prev ->
      Hashtbl.replace t.server_boot server boot_id;
      if prev <> None then begin
        let dead =
          Hashtbl.fold
            (fun k e acc -> if e.e_boot_id <> 0 then k :: acc else acc)
            t.cache []
        in
        List.iter
          (fun k ->
            Hashtbl.remove t.cache k;
            Stats.tick t.c_invalidated)
          dead
      end

let key ~client ~server req =
  Printf.sprintf "%d|%d|%s" (Addr.Ip.to_int client) (Addr.Ip.to_int server) req

let store t k e =
  if not (Hashtbl.mem t.cache k) then begin
    Queue.push k t.order;
    while Hashtbl.length t.cache >= t.capacity && not (Queue.is_empty t.order) do
      let victim = Queue.pop t.order in
      Hashtbl.remove t.cache victim
    done
  end;
  Hashtbl.replace t.cache k e;
  Stats.tick t.c_stored

(* Answer from the cache on the server's behalf: a CHANNEL reply under a
   fresh FRAGMENT header whose [clnt_host] (the sender field) is the
   server, so the client's FRAGMENT session for that peer accepts it. *)
let synthesize t ~client ~server ~ch (e : entry) =
  let mach = t.host.Host.mach in
  Machine.charge mach
    [ Machine.Header Ch.bytes; Machine.Header F.bytes; Machine.Process_switch ];
  let reply_hdr =
    {
      Ch.flags = Flags.reply;
      channel = ch.Ch.channel;
      protocol_num = ch.Ch.protocol_num;
      sequence_num = ch.Ch.sequence_num;
      error = 0;
      boot_id = e.e_boot_id;
      deadline_us = -1;
    }
  in
  let chan_payload = Ch.encode reply_hdr ^ e.e_reply in
  let seq = t.synth_seq in
  t.synth_seq <- t.synth_seq + 1;
  let frag_hdr =
    {
      F.typ = F.typ_data;
      clnt_host = server;
      srvr_host = client;
      protocol_num = 93;
      sequence_num = seq;
      num_frags = 1;
      frag_mask = 1;
      len = String.length chan_payload;
    }
  in
  let frame = Msg.push (Msg.of_string chan_payload) (F.encode frag_hdr) in
  Trace.debugf (Host.sim t.host) ~host:t.host.Host.name
    "INC hit: reply %d bytes for %s from cache" (String.length e.e_reply)
    (Addr.Ip.to_string client);
  Sim.spawn (Host.sim t.host) (fun () ->
      Netproto.Ip.inject t.ip ~src:server ~dst:client ~proto_num:92 frame)

let on_request t ~client ~server ~ch body =
  if ch.Ch.deadline_us = 0 then begin
    (* Already expired when stamped: the server would pay an interrupt
       and a header parse only to drop it.  Shed here instead. *)
    Stats.tick t.c_sheds;
    Trace.debugf (Host.sim t.host) ~host:t.host.Host.name
      "INC shed: expired deadline from %s" (Addr.Ip.to_string client);
    true
  end
  else
    match Sel.decode body with
    | None ->
        Stats.tick t.c_forwarded;
        false
    | Some sel ->
        let gen =
          if sel.Sel.typ = Sel.typ_request_sharded then
            match
              Sel.decode_stamp
                (String.sub body Sel.bytes (String.length body - Sel.bytes))
            with
            | Some s ->
                observe_gen t (s.Sel.epoch, s.Sel.version);
                (s.Sel.epoch, s.Sel.version)
            | None -> (0, 0)
          else (0, 0)
        in
        let request =
          sel.Sel.typ = Sel.typ_request
          || sel.Sel.typ = Sel.typ_request_sharded
        in
        if not (request && Hashtbl.mem t.cacheable sel.Sel.command) then begin
          Stats.tick t.c_forwarded;
          false
        end
        else begin
          let k = key ~client ~server body in
          let fresh e =
            Sim.now (Host.sim t.host) -. e.e_stored <= t.ttl
            && not (gen_newer t.gen e.e_gen && e.e_gen <> (0, 0))
          in
          match Hashtbl.find_opt t.cache k with
          | Some e when fresh e ->
              Stats.tick t.c_hits;
              synthesize t ~client ~server ~ch e;
              true
          | found ->
              if found <> None then Hashtbl.remove t.cache k;
              Stats.tick t.c_misses;
              Stats.tick t.c_forwarded;
              if Hashtbl.length t.pending > 4 * t.capacity then
                Hashtbl.reset t.pending;
              Hashtbl.replace t.pending
                ( Addr.Ip.to_int client,
                  Addr.Ip.to_int server,
                  ch.Ch.channel,
                  ch.Ch.sequence_num )
                (k, gen);
              false
        end

let on_reply t ~client ~server ~ch body =
  observe_boot t ~server:(Addr.Ip.to_int server) ~boot_id:ch.Ch.boot_id;
  let pkey =
    ( Addr.Ip.to_int client,
      Addr.Ip.to_int server,
      ch.Ch.channel,
      ch.Ch.sequence_num )
  in
  (match Sel.decode body with
  | Some sel
    when sel.Sel.typ = Sel.typ_reply && sel.Sel.status = Sel.status_wrong_shard
    -> (
      (* The owner moved under a routed call: everything cached under
         the older map generation is suspect. *)
      Hashtbl.remove t.pending pkey;
      match
        Sel.decode_wrong_shard
          (String.sub body Sel.bytes (String.length body - Sel.bytes))
      with
      | Some v -> observe_gen t (fst t.gen, max v (snd t.gen + 1))
      | None -> observe_gen t (fst t.gen, snd t.gen + 1))
  | Some sel
    when sel.Sel.typ = Sel.typ_reply
         && sel.Sel.status = Sel.status_ok
         && ch.Ch.error = 0 -> (
      match Hashtbl.find_opt t.pending pkey with
      | Some (k, gen) ->
          Hashtbl.remove t.pending pkey;
          if not (gen_newer t.gen gen && gen <> (0, 0)) then
            store t k
              {
                e_reply = body;
                e_boot_id = ch.Ch.boot_id;
                e_gen = gen;
                e_stored = Sim.now (Host.sim t.host);
              }
      | None -> ())
  | _ -> Hashtbl.remove t.pending pkey);
  (* Replies always travel on to the client. *)
  false

let hook t ~src:_ ~dst:_ ~proto_num (msg : Msg.t) =
  if proto_num <> 92 then false
  else
    let s = Msg.to_string msg in
    match F.decode s with
    | None -> false
    | Some fh ->
        if fh.F.typ <> F.typ_data || fh.F.num_frags <> 1 || fh.F.protocol_num <> 93
        then false
        else begin
          Machine.charge t.host.Host.mach
            [ Machine.Virtual_op; Machine.Header F.bytes; Machine.Header Ch.bytes ];
          let rest = String.sub s F.bytes (String.length s - F.bytes) in
          match Ch.decode_full rest with
          | None -> false
          | Some ch ->
              let skip =
                Ch.bytes
                + if ch.Ch.flags land Flags.deadline <> 0 then Ch.ext_bytes else 0
              in
              let body = String.sub rest skip (String.length rest - skip) in
              if ch.Ch.flags land Flags.request <> 0 then
                (* In a request frame FRAGMENT's sender field is the
                   client; in a reply it is the server. *)
                on_request t ~client:fh.F.clnt_host ~server:fh.F.srvr_host ~ch
                  body
              else if ch.Ch.flags land Flags.reply <> 0 then
                on_reply t ~client:fh.F.srvr_host ~server:fh.F.clnt_host ~ch
                  body
              else false
        end

let install ~host ~ip ?(cacheable = []) ?(ttl = 2.0) ?(capacity = 1024) () =
  let stats = Stats.create ~name:(host.Host.name ^ "/INC") () in
  let t =
    {
      host;
      ip;
      ttl;
      capacity = max 1 capacity;
      cacheable = Hashtbl.create 8;
      cache = Hashtbl.create 64;
      order = Queue.create ();
      pending = Hashtbl.create 64;
      server_boot = Hashtbl.create 8;
      gen = (0, 0);
      synth_seq = 0x40000000;
      stats;
      c_hits = Stats.counter stats "hits";
      c_misses = Stats.counter stats "misses";
      c_sheds = Stats.counter stats "sheds";
      c_forwarded = Stats.counter stats "forwarded";
      c_stored = Stats.counter stats "stored";
      c_invalidated = Stats.counter stats "invalidated";
    }
  in
  List.iter (fun c -> Hashtbl.replace t.cacheable c ()) cacheable;
  Netproto.Ip.set_forward_hook ip
    (Some (fun ~src ~dst ~proto_num msg -> hook t ~src ~dst ~proto_num msg));
  t

let uninstall t = Netproto.Ip.set_forward_hook t.ip None
let set_cacheable t ~command = Hashtbl.replace t.cacheable command ()
let stats t = t.stats
let hits t = Stats.value t.c_hits
let misses t = Stats.value t.c_misses
let sheds t = Stats.value t.c_sheds
let forwarded t = Stats.value t.c_forwarded
let stored t = Stats.value t.c_stored
let invalidated t = Stats.value t.c_invalidated
let cache_size t = Hashtbl.length t.cache
let map_generation t = t.gen
