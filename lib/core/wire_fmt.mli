(** Header formats from the paper's appendix.

    Binary codecs for the four C structures: SPRITE_HDR (monolithic
    RPC), SELECT_HDR, CHANNEL_HDR and FRAGMENT_HDR.  As the paper notes,
    the union of the three layered headers is nearly identical to the
    monolithic header, with sequence numbers and protocol-number fields
    duplicated because FRAGMENT and CHANNEL are each meant to be used by
    multiple high-level protocols.

    Decoders return [None] on truncated or malformed input. *)

(** Flag bits shared by SPRITE_HDR and CHANNEL_HDR. *)
module Flags : sig
  val request : int

  val reply : int

  (** explicit acknowledgement *)
  val ack : int

  (** set on retransmissions *)
  val please_ack : int

  (** CHANNEL_HDR only: a 4-byte remaining-deadline extension follows
      the base header (not in the paper; off unless the caller stamps a
      deadline) *)
  val deadline : int
end

module Sprite : sig
  type t = {
    flags : int;
    clnt_host : Xkernel.Addr.Ip.t;
    srvr_host : Xkernel.Addr.Ip.t;
    channel : int;
    srvr_process : int;
    sequence_num : int;
    num_frags : int;
    frag_mask : int;
    command : int;
    boot_id : int;
    data1_sz : int;
    data2_sz : int;
    data1_off : int;
    data2_off : int;
        (** The dual size/offset fields exist only in the monolithic
            header; "layered RPC does not make use of [them]" because
            x-kernel messages compose without scatter/gather offsets. *)
  }

  val bytes : int
  (** 36 *)

  val encode : t -> string
  val decode : string -> t option
end

module Select : sig
  type t = { typ : int; command : int; status : int }

  val bytes : int
  (** 4 *)

  val typ_request : int
  val typ_reply : int

  val typ_request_sharded : int
  (** request whose header is followed by a {!stamp} extension (not in
      the paper; absent unless the caller routes through a shard map) *)

  val status_ok : int
  val status_no_command : int
  val status_error : int

  val status_wrong_shard : int
  (** reply from an ex-owner: the named shard is not owned by this
      server under its installed map; the body carries the server's map
      version (u32) and the procedure was {e not} executed *)

  val encode : t -> string
  val decode : string -> t option

  type stamp = { shard : int; epoch : int; version : int }
  (** Which virtual shard the client routed by, and under which map
      generation, carried between header and body on
      [typ_request_sharded] requests. *)

  val stamp_bytes : int
  (** 10 *)

  val encode_stamp : stamp -> string
  val decode_stamp : string -> stamp option

  val encode_wrong_shard : version:int -> string
  val decode_wrong_shard : string -> int option
end

module Channel : sig
  type t = {
    flags : int;
    channel : int;
    protocol_num : int;
    sequence_num : int;
    error : int;
    boot_id : int;
    deadline_us : int;
        (** remaining call budget in microseconds at transmit time;
            [-1] means "no deadline stamped" and keeps the header at its
            paper-exact 18 bytes.  [encode] sets or clears
            {!Flags.deadline} itself and appends the extension word only
            when the field is non-negative, clamped to
            {!max_deadline_us}. *)
  }

  val bytes : int
  (** 18 — the base header; unchanged from the paper's appendix *)

  val ext_bytes : int
  (** 4 — the optional deadline extension word *)

  val err_busy : int
  (** error code carried in a reply when the server refuses admission *)

  val max_deadline_us : int
  (** largest encodable remaining deadline (u32) *)

  val encode : t -> string

  val decode : string -> t option
  (** base 18-byte header only; [deadline_us] is [-1] in the result even
      when {!Flags.deadline} is set — callers pop {!ext_bytes} more and
      use {!decode_ext} (as CHANNEL's input path does) *)

  val decode_ext : string -> int option
  (** the 4-byte extension word alone *)

  val decode_full : string -> t option
  (** whole-header convenience for tests: base header plus, when flagged,
      the extension *)
end

(** MAP — the shard-map control-plane message pushed by a coordinator
    (via [Control.Install_map]) to every shard-aware client and server.
    Carries the full assignment: one owner byte per virtual shard, plus
    the (epoch, version) generation stamp receivers use for monotonic
    acceptance. *)
module Map : sig
  type t = {
    epoch : int;
    version : int;
    n_replicas : int;
    owners : int array;  (** shard index -> owning replica index *)
  }

  val header_bytes : int
  (** 12; the full message is [header_bytes + n_shards] *)

  val max_shards : int
  val max_replicas : int

  val encode : t -> string

  val decode : string -> t option
  (** [None] on truncation, out-of-range sizes, or any owner index
      [>= n_replicas]. *)
end

module Fragment : sig
  type t = {
    typ : int;
    clnt_host : Xkernel.Addr.Ip.t;  (** sending host *)
    srvr_host : Xkernel.Addr.Ip.t;  (** receiving host *)
    protocol_num : int;
    sequence_num : int;
    num_frags : int;
    frag_mask : int;
    len : int;  (** payload bytes in this fragment *)
  }

  val bytes : int
  (** 23 *)

  val typ_data : int
  val typ_nack : int
  (** request for the missing fragments named in [frag_mask] *)

  val encode : t -> string
  val decode : string -> t option
end
