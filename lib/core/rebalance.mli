(** Chaos-driven shard rebalancing policy.

    A periodic controller that watches two signals — per-replica health
    (as the clients' {!Select_replica} machines see it) and per-shard
    load — and emits new map generations through a
    {!Shard_map.Coordinator}:

    - {b crash}: a replica declared [Dead] that still owns shards has
      them all reassigned to their best live rendezvous candidates in
      one generation (["rebalance-crash"] in the coordinator's stats).
    - {b skew}: when the hottest live replica carries more than
      [skew_ratio] times the coldest's load for [sustain] consecutive
      ticks, the hottest shard moves to the coldest replica
      (["rebalance-skew"]) and the streak resets — hysteresis, so one
      noisy interval never moves anything and each move must re-earn
      its evidence under the new map.  A move is only taken when the
      shard's load is smaller than the hot/cold gap, so it genuinely
      narrows the imbalance; the hottest shard that passes that guard
      moves, so a monolithic hot shard never ping-pongs — its owner's
      other shards drain away around it instead.

    The controller only ever runs when an experiment starts it; nothing
    here is wired into any default stack. *)

type t

val create :
  host:Xkernel.Host.t ->
  coord:Shard_map.Coordinator.t ->
  replica_health:(int -> [ `Up | `Dead ]) ->
  shard_load:(unit -> int array) ->
  ?interval:float ->
  ?skew_ratio:float ->
  ?sustain:int ->
  ?on_crash:bool ->
  ?on_skew:bool ->
  unit ->
  t
(** [replica_health] is the controller's view of replica [i] (typically
    aggregated over the clients' health machines); [shard_load] returns
    {e cumulative} per-shard call counts — the controller diffs
    successive snapshots itself.  [interval] (default 50 ms) is the
    tick period; [skew_ratio] (default 3.0) and [sustain] (default 2
    ticks) gate the skew policy. *)

val start : t -> until:float -> unit
(** Snapshot the load baseline and arm the periodic tick, re-arming
    after each fire while the current time is at most [until] —
    bounded, so the event queue drains. *)

val tick : t -> unit
(** One decision step (exposed for tests). *)

val moves : t -> int
(** Shards moved by decisions taken so far. *)
