open Xkernel
module S = Wire_fmt.Select

type t = {
  host : Host.t;
  channel : Channel.t;
  delegate : Addr.Ip.t;
  proto_num : int;
  p : Proto.t;
  sel : Select.t; (* ordinary selector used as our client toward the delegate *)
  mutable client : Select.client option;
  stats : Stats.t;
}

let forwarded t = Stats.get t.stats "forwarded"

let client t =
  match t.client with
  | Some c -> c
  | None ->
      let c = Select.connect t.sel ~server:t.delegate in
      t.client <- Some c;
      c

(* Relay: decode just enough of the SELECT header to re-issue the call
   toward the delegate, then send the delegate's answer back on the
   channel session the original request arrived on. *)
let input t ~lower msg =
  Machine.charge_one t.host.Host.mach (Machine.Header S.bytes);
  match Msg.pop msg S.bytes with
  | None -> Stats.incr t.stats "rx-runt"
  | Some (raw, body) -> (
      match S.decode raw with
      | Some hdr when hdr.S.typ = S.typ_request ->
          Stats.incr t.stats "forwarded";
          let reply_hdr status =
            S.encode { S.typ = S.typ_reply; command = hdr.S.command; status }
          in
          let reply =
            match Select.call (client t) ~command:hdr.S.command body with
            | Ok reply_body -> Msg.push reply_body (reply_hdr S.status_ok)
            | Error (Rpc_error.Remote status) ->
                Msg.of_string (reply_hdr status)
            | Error
                ( Rpc_error.Timeout | Rpc_error.Rebooted | Rpc_error.Busy
                | Rpc_error.Wrong_shard _ ) ->
                Msg.of_string (reply_hdr S.status_error)
          in
          Machine.charge_one t.host.Host.mach (Machine.Header S.bytes);
          Proto.push lower reply
      | Some _ -> Stats.incr t.stats "rx-unexpected"
      | None -> Stats.incr t.stats "rx-malformed")

let serve t =
  Proto.open_enable (Channel.proto t.channel) ~upper:t.p
    (Part.v ~local:[ Part.Ip_proto t.proto_num ] ())

let create ~host ~channel ~delegate ?(proto_num = 90) () =
  let p = Proto.create ~host ~name:"SELECT-FWD" () in
  let sel = Select.create ~host ~channel ~proto_num () in
  let t =
    {
      host;
      channel;
      delegate;
      proto_num;
      p;
      sel;
      client = None;
      stats = Proto.stats p;
    }
  in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "Select_fwd: server only");
      open_enable = (fun ~upper:_ _ -> invalid_arg "Select_fwd: use serve");
      open_done = (fun ~upper:_ _ -> invalid_arg "Select_fwd: server only");
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control = (fun req -> Stats.control t.stats req);
    };
  Proto.declare_below p [ Channel.proto channel ];
  t
