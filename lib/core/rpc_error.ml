type t = Timeout | Rebooted | Busy | Wrong_shard of int | Remote of int

let to_string = function
  | Timeout -> "timeout"
  | Rebooted -> "server rebooted"
  | Busy -> "channel busy"
  | Wrong_shard v -> Printf.sprintf "wrong shard (map version %d)" v
  | Remote s -> Printf.sprintf "remote status %d" s

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a = b
