(** CHANNEL — request/reply with at-most-once semantics (section 3.2).

    The middle layer of layered Sprite RPC.  Each channel is a separate
    x-kernel session carrying one outstanding transaction, using
    Sprite's implicit-acknowledgement scheme: a reply acknowledges its
    request, and the next request on a channel acknowledges the previous
    reply, so in the common case no acknowledgement packets exist.
    Timeouts trigger request retransmission; a retransmission asks for
    an explicit acknowledgement, which a busy server answers with an ACK
    packet ("I have it; keep waiting").

    At-most-once: the server keeps, per channel, the last sequence
    number executed and the cached reply; a duplicate request gets the
    cached reply back instead of a re-execution.  Boot identifiers on
    both sides detect restarts — a reply from a different incarnation of
    the server surfaces as [Rebooted] rather than a silent
    re-execution.

    CHANNEL's timeout is a step function tuned to FRAGMENT living below
    it as a separate protocol: single-fragment requests use a short
    timeout; multi-fragment requests wait long enough to be sure the
    fragmentation layer is not still transmitting (the fragment count is
    read from the lower session with [control Get_frag_size]).

    On top of the step function each channel keeps an adaptive
    retransmission timeout: Jacobson's SRTT/RTTVAR estimate
    (RTO = srtt + 4 x rttvar) with Karn's rule (retransmitted
    transactions yield no sample), exponential backoff with a cap and
    seeded jitter.  The step function still governs until the first RTT
    sample, and its fragment-serialization component remains a hard
    floor, so a loss-free run behaves exactly like the fixed-timeout
    stack while a lossy or congested one converges to the real RTT.

    Crash/restart: {!create} registers a {!Xkernel.Host.at_reboot} hook
    that resets every channel in place — outstanding callers are woken
    with [Error Rebooted], timers die, at-most-once reply caches and RTT
    estimates are cleared — while the session handles upper layers hold
    stay valid for the next incarnation. *)

type t

val create :
  host:Xkernel.Host.t ->
  lower:Xkernel.Proto.t ->
  ?proto_num:int ->
  ?n_channels:int ->
  ?base_timeout:float ->
  ?per_frag_timeout:float ->
  ?retries:int ->
  ?adaptive:bool ->
  ?rto_load_floor:bool ->
  ?rto_max:float ->
  unit ->
  t
(** [proto_num] (default 93) is CHANNEL's own protocol number toward
    the layer below (its header's protocol-number field names the upper
    protocol).  [n_channels] (default 8) is Sprite's fixed, predefined channel
    count.  Timeout step function: [base_timeout] (default 20 ms) for
    single-fragment requests; plus [per_frag_timeout] (default 3 ms) per
    expected fragment otherwise.  [retries] defaults to 5.

    [adaptive] (default [true]) enables the per-channel RTT estimator;
    [false] gives the paper's fixed step-function timeout on every
    transmission.  [rto_max] (default 1 s) caps the adaptive RTO and its
    exponential backoff.

    [rto_load_floor] (default [true]) scales the {e armed} retransmit
    timer by the ratio of currently in-flight requests to the in-flight
    count behind the RTT estimate.  An srtt learned at idle otherwise
    fires prematurely the moment queueing delay under load exceeds
    [srtt + 4*rttvar], and Karn's rule then starves the estimator of
    the samples that would correct it — the retransmission storm the
    adaptive fan-in stack exhibits past the capacity knee.  The scale
    only ever lengthens the armed timer; the reported RTO gauges are
    the bare estimate. *)

val proto : t -> Xkernel.Proto.t
val n_channels : t -> int

val call :
  ?expires:float ->
  t -> Xkernel.Proto.session -> Xkernel.Msg.t ->
  (Xkernel.Msg.t, Rpc_error.t) result
(** [call t session request] runs one transaction on [session] (which
    must be a channel session of [t]): sends, blocks the calling fiber,
    retransmits on timeout, and returns the reply.  This is the paper's
    "a high-level protocol pushes a message into the session and a reply
    message is returned".  Raises [Invalid_argument] if a transaction is
    already outstanding on the channel.

    [expires] (absolute sim time) propagates the caller's deadline: each
    transmission — including retransmits — stamps the budget remaining
    {e at that instant} into the header's deadline extension, the
    retransmit timer gives up with [Error Timeout] once it passes
    (["deadline-give-up"]), and the server drops requests whose stamp
    arrives already spent (["deadline-expired-server"]) without touching
    the channel.  Without [expires] the wire format is byte-identical to
    the paper's 18-byte header. *)

(** Uniform-interface use: [open_] takes [Ip peer], [Ip_proto n] and
    [Channel c] components.  A plain [push] sends a request whose reply
    is delivered *up* (via the opener's [demux]) instead of returned.
    The server side is passive: [open_enable] with [Ip_proto n]; each
    incoming request is delivered up, and the upper protocol replies by
    pushing into the session the request arrived on.

    Session control: [Get_timeout] and [Get_rto] both report the
    {e effective} RTO for a request the size of the last one sent —
    fragment-aware, adaptive once a sample exists; [Get_srtt] reports
    the smoothed RTT (0 before the first sample).  Server-side sessions
    additionally answer [Get_rx_deadline] (absolute expiry of the
    request being served, [-1.] if none was propagated) and
    [Reject_busy] (reply to the claiming request with the explicit
    busy-pushback error, surfaced at the caller as [Error Busy]) — the
    hooks an admission-control layer runs on.

    Statistics: ["req-tx"], ["req-rx"], ["reply-tx"], ["reply-rx"],
    ["retransmit"], ["ack-tx"], ["ack-rx"], ["dup-req"],
    ["cached-reply-tx"], ["stale-rx"]; estimator: ["rtt-sample"],
    ["karn-skip"], ["rto-backoff"], ["crash-reset"], and gauges
    ["srtt-us"] / ["rto-us"]; overload control: ["deadline-give-up"],
    ["deadline-expired-server"], ["busy-reply-rx"], ["uniform-busy"]
    (plus a ["busy-dropped"] counter on the {e upper} protocol whose
    uniform push was discarded). *)
