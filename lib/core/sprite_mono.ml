open Xkernel
module H = Wire_fmt.Sprite

let max_frags = 16
let flag_error = 0x10 (* reply carries an error status in [command] *)

type reasm = {
  pieces : Msg.t option array;
  mutable have : int;
  r_num : int;
  r_command : int;
}

type outstanding = {
  o_seq : int;
  o_command : int;
  iv : (Msg.t, Rpc_error.t) result Sim.Ivar.ivar;
  frags : (H.t * Msg.t) array;
  mutable acked_mask : int; (* fragments the server has acknowledged *)
  mutable timer : Event.t option;
  mutable tries_left : int;
  mutable patient : bool;
}

(* Client-role session: one per (server, channel). *)
type csess = {
  c_peer : Addr.Ip.t;
  c_chan : int;
  c_lower : Proto.session;
  mutable next_seq : int;
  mutable out : outstanding option;
  mutable rep_reasm : (int * reasm) option;
}

(* Server-role session: one per (client, channel). *)
type ssess = {
  s_peer : Addr.Ip.t;
  s_chan : int;
  mutable s_lower : Proto.session;
  mutable last_seq : int;
  mutable client_boot : int;
  mutable cached_reply : (H.t * Msg.t) array option;
  mutable busy : bool;
  mutable req_reasm : (int * reasm) option;
}

type t = {
  host : Host.t;
  lower : Proto.t;
  proto_num : int;
  frag_size : int;
  chans : int;
  base_timeout : float;
  per_frag_timeout : float;
  retries : int;
  p : Proto.t;
  clients : (int * int, csess) Hashtbl.t; (* (server, chan) *)
  servers : (int * int, ssess) Hashtbl.t; (* (client, chan) *)
  (* Boot ids are a property of the peer host, shared by all channels
     toward it. *)
  server_boots : (int, int) Hashtbl.t;
  handlers : (int, Select.handler) Hashtbl.t;
  stats : Stats.t;
}

type client = {
  cl_t : t;
  server : Addr.Ip.t;
  free : csess Queue.t;
  free_sem : Sim.Semaphore.sem;
}

let proto t = t.p
let max_args t = max_frags * t.frag_size
let full_mask n = (1 lsl n) - 1
let stat t name = Stats.get t.stats name
let calls_handled t = stat t "handled"

let fragment t ~flags ~peer ~chan ~seq ~command ~as_client msg =
  let len = Msg.length msg in
  let chunk = max t.frag_size ((len + max_frags - 1) / max_frags) in
  let num = max 1 ((len + chunk - 1) / chunk) in
  let clnt, srvr =
    if as_client then (t.host.Host.ip, peer) else (peer, t.host.Host.ip)
  in
  Array.init num (fun i ->
      let off = i * chunk in
      let this = min chunk (len - off) in
      let piece = if this <= 0 then Msg.empty else Msg.sub msg off this in
      ( {
          H.flags;
          clnt_host = clnt;
          srvr_host = srvr;
          channel = chan;
          srvr_process = 0;
          sequence_num = seq;
          num_frags = num;
          frag_mask = 1 lsl i;
          command;
          boot_id = t.host.Host.boot_id;
          data1_sz = Msg.length piece;
          data2_sz = 0;
          data1_off = off;
          data2_off = 0;
        },
        piece ))

let send_frag t lower_sess ((hdr : H.t), piece) =
  Machine.charge t.host.Host.mach
    [ Machine.Header H.bytes; Machine.Frag_bookkeep ];
  Stats.incr t.stats "tx-frag";
  Proto.push lower_sess (Msg.push piece (H.encode hdr))

let reasm_step entry idx piece =
  let fresh = entry.pieces.(idx) = None in
  if fresh then begin
    entry.pieces.(idx) <- Some piece;
    entry.have <- entry.have lor (1 lsl idx)
  end;
  let whole =
    if entry.have = full_mask entry.r_num then
      Some
        (Array.fold_left
           (fun acc p -> Msg.append acc (Option.get p))
           Msg.empty entry.pieces)
    else None
  in
  (fresh, whole)

let frag_index (hdr : H.t) =
  let rec find i =
    if i >= hdr.H.num_frags then None
    else if hdr.H.frag_mask = 1 lsl i then Some i
    else find (i + 1)
  in
  if hdr.H.num_frags >= 1 && hdr.H.num_frags <= max_frags then find 0 else None

(* --- client side ------------------------------------------------- *)

let rpc_timeout t nfrags =
  if nfrags <= 1 then t.base_timeout
  else t.base_timeout +. (float_of_int nfrags *. t.per_frag_timeout)

let cancel_timer t (o : outstanding) =
  match o.timer with
  | Some ev ->
      ignore (Event.cancel t.host ev);
      o.timer <- None
  | None -> ()

let complete_call t cs outcome =
  match cs.out with
  | None -> ()
  | Some o ->
      (* Clear the slot before anything that can yield, so a concurrent
         timer firing cannot complete the same call twice. *)
      cs.out <- None;
      cs.rep_reasm <- None;
      cancel_timer t o;
      Machine.charge t.host.Host.mach
        [ Machine.Semaphore_op; Machine.Process_switch ];
      Sim.Ivar.fill o.iv outcome

let rec arm_timer t cs (o : outstanding) timeout =
  o.timer <-
    Some
      (Event.schedule t.host timeout (fun () ->
           match cs.out with
           | Some o' when o' == o ->
               if o.tries_left <= 0 then
                 complete_call t cs (Error Rpc_error.Timeout)
               else begin
                 o.tries_left <- o.tries_left - 1;
                 (* Selective retransmission, Sprite style: probe with
                    the first unacknowledged fragment and ask for an
                    explicit (partial) acknowledgement; the ack's
                    fragment mask tells us exactly what to resend. *)
                 let probe =
                   Array.to_seq o.frags
                   |> Seq.filter (fun ((h : H.t), _) ->
                          h.H.frag_mask land o.acked_mask = 0)
                   |> Seq.uncons
                 in
                 (match probe with
                 | Some (((h : H.t), piece), _) ->
                     Stats.incr t.stats "retransmit";
                     send_frag t cs.c_lower
                       ( { h with
                           H.flags = h.H.flags lor Wire_fmt.Flags.please_ack
                         },
                         piece )
                 | None -> ());
                 let timeout =
                   if o.patient then t.base_timeout *. 4. else rpc_timeout t 1
                 in
                 arm_timer t cs o timeout
               end
           | _ -> ()))

let start_call t cs ~command msg =
  if cs.out <> None then invalid_arg "Sprite_mono: channel busy";
  cs.next_seq <- cs.next_seq + 1;
  let seq = cs.next_seq in
  let frags =
    fragment t ~flags:Wire_fmt.Flags.request ~peer:cs.c_peer ~chan:cs.c_chan
      ~seq ~command ~as_client:true msg
  in
  if Array.length frags > max_frags then invalid_arg "Sprite_mono: message too large";
  let iv = Sim.Ivar.create (Host.sim t.host) in
  Machine.charge_one t.host.Host.mach (Machine.Reasm_lookup);
  let o =
    {
      o_seq = seq;
      o_command = command;
      iv;
      frags;
      acked_mask = 0;
      timer = None;
      tries_left = t.retries;
      patient = false;
    }
  in
  cs.out <- Some o;
  Stats.incr t.stats "call-tx";
  Machine.charge t.host.Host.mach
    [ Machine.Semaphore_op; Machine.Process_switch ];
  Array.iter (send_frag t cs.c_lower) frags;
  arm_timer t cs o (rpc_timeout t (Array.length frags));
  iv

let handle_reply t cs (hdr : H.t) piece =
  match cs.out with
  | Some o when hdr.H.sequence_num = o.o_seq -> (
      let peer_key = Addr.Ip.to_int cs.c_peer in
      let reboot =
        match Hashtbl.find_opt t.server_boots peer_key with
        | Some b when b <> hdr.H.boot_id -> true
        | _ -> false
      in
      Hashtbl.replace t.server_boots peer_key hdr.H.boot_id;
      if reboot && o.tries_left < t.retries then
        complete_call t cs (Error Rpc_error.Rebooted)
      else if hdr.H.flags land flag_error <> 0 then
        complete_call t cs (Error (Rpc_error.Remote hdr.H.command))
      else
        match frag_index hdr with
        | None -> Stats.incr t.stats "rx-malformed"
        | Some idx -> (
            let entry =
              match cs.rep_reasm with
              | Some (seq, e) when seq = hdr.H.sequence_num -> e
              | _ ->
                  let e =
                    {
                      pieces = Array.make hdr.H.num_frags None;
                      have = 0;
                      r_num = hdr.H.num_frags;
                      r_command = hdr.H.command;
                    }
                  in
                  cs.rep_reasm <- Some (hdr.H.sequence_num, e);
                  e
            in
            if entry.r_num <> hdr.H.num_frags then
              Stats.incr t.stats "rx-malformed"
            else
              match reasm_step entry idx piece with
              | _, Some whole ->
                  Stats.incr t.stats "reply-rx";
                  complete_call t cs (Ok whole)
              | _, None -> ()))
  | _ -> Stats.incr t.stats "stale-rx"

let handle_ack t cs (hdr : H.t) =
  match cs.out with
  | Some o when hdr.H.sequence_num = o.o_seq ->
      Stats.incr t.stats "ack-rx";
      o.acked_mask <- o.acked_mask lor hdr.H.frag_mask;
      if o.acked_mask land full_mask (Array.length o.frags)
         = full_mask (Array.length o.frags)
      then
        (* The server has the whole request and is working on it. *)
        o.patient <- true
      else
        (* Resend exactly what the partial ack reports missing. *)
        Array.iter
          (fun ((h : H.t), piece) ->
            if h.H.frag_mask land o.acked_mask = 0 then begin
              Stats.incr t.stats "retransmit";
              send_frag t cs.c_lower (h, piece)
            end)
          o.frags
  | _ -> Stats.incr t.stats "stale-rx"

(* --- server side ------------------------------------------------- *)

let send_ack t ss ~seq ~mask =
  Stats.incr t.stats "ack-tx";
  let hdr =
    {
      H.flags = Wire_fmt.Flags.ack;
      clnt_host = ss.s_peer;
      srvr_host = t.host.Host.ip;
      channel = ss.s_chan;
      srvr_process = 0;
      sequence_num = seq;
      num_frags = 0;
      frag_mask = mask;
      command = 0;
      boot_id = t.host.Host.boot_id;
      data1_sz = 0;
      data2_sz = 0;
      data1_off = 0;
      data2_off = 0;
    }
  in
  Machine.charge_one t.host.Host.mach (Machine.Header H.bytes);
  Proto.push ss.s_lower (Msg.of_string (H.encode hdr))

let send_reply_frags t ss frags =
  Array.iter (send_frag t ss.s_lower) frags

let execute t ss ~seq ~command body =
  ss.last_seq <- seq;
  ss.busy <- true;
  ss.cached_reply <- None;
  ss.req_reasm <- None;
  Machine.charge_one t.host.Host.mach (Machine.Semaphore_op);
  Stats.incr t.stats "handled";
  let reply_body, flags, rcommand =
    match Hashtbl.find_opt t.handlers command with
    | None -> (Msg.empty, Wire_fmt.Flags.reply lor flag_error, 1)
    | Some h -> (
        match h body with
        | Ok reply -> (reply, Wire_fmt.Flags.reply, command)
        | Error status -> (Msg.empty, Wire_fmt.Flags.reply lor flag_error, status))
  in
  let frags =
    fragment t ~flags ~peer:ss.s_peer ~chan:ss.s_chan ~seq ~command:rcommand
      ~as_client:false reply_body
  in
  ss.cached_reply <- Some frags;
  ss.busy <- false;
  Stats.incr t.stats "reply-tx";
  send_reply_frags t ss frags

let handle_request t ss ~lower (hdr : H.t) piece =
  ss.s_lower <- lower;
  if hdr.H.boot_id <> ss.client_boot then begin
    ss.client_boot <- hdr.H.boot_id;
    ss.last_seq <- 0;
    ss.cached_reply <- None;
    ss.busy <- false;
    ss.req_reasm <- None
  end;
  let seq = hdr.H.sequence_num in
  if seq < ss.last_seq then Stats.incr t.stats "stale-rx"
  else if seq = ss.last_seq then begin
    Stats.incr t.stats "dup-req";
    match ss.cached_reply with
    | Some frags ->
        Stats.incr t.stats "cached-reply-tx";
        send_reply_frags t ss frags
    | None ->
        if ss.busy then send_ack t ss ~seq ~mask:(full_mask hdr.H.num_frags)
  end
  else begin
    match frag_index hdr with
    | None -> Stats.incr t.stats "rx-malformed"
    | Some idx -> (
        let entry =
          match ss.req_reasm with
          | Some (s, e) when s = seq -> e
          | _ ->
              let e =
                {
                  pieces = Array.make hdr.H.num_frags None;
                  have = 0;
                  r_num = hdr.H.num_frags;
                  r_command = hdr.H.command;
                }
              in
              ss.req_reasm <- Some (seq, e);
              e
        in
        if entry.r_num <> hdr.H.num_frags then Stats.incr t.stats "rx-malformed"
        else
          match reasm_step entry idx piece with
          | _, Some whole -> execute t ss ~seq ~command:entry.r_command whole
          | fresh, None ->
              (* A retransmitted fragment of a partially received
                 request: tell the client what we already have so it
                 resends only the rest (Sprite's partial ack). *)
              if (not fresh) && hdr.H.flags land Wire_fmt.Flags.please_ack <> 0
              then send_ack t ss ~seq ~mask:entry.have)
  end

(* --- demux -------------------------------------------------------- *)

let client_session t ~server ~chan ~remote =
  match Hashtbl.find_opt t.clients (Addr.Ip.to_int server, chan) with
  | Some cs -> cs
  | None ->
      let part =
        Part.v
          ~local:[ Part.Ip t.host.Host.ip; Part.Ip_proto t.proto_num ]
          ~remotes:[ remote ]
          ()
      in
      let lower = Proto.open_ t.lower ~upper:t.p part in
      let cs =
        {
          c_peer = server;
          c_chan = chan;
          c_lower = lower;
          next_seq = 0;
          out = None;
          rep_reasm = None;
        }
      in
      Hashtbl.replace t.clients (Addr.Ip.to_int server, chan) cs;
      cs

let server_session t ~client_ip ~chan ~lower =
  match Hashtbl.find_opt t.servers (Addr.Ip.to_int client_ip, chan) with
  | Some ss -> ss
  | None ->
      let ss =
        {
          s_peer = client_ip;
          s_chan = chan;
          s_lower = lower;
          last_seq = 0;
          client_boot = 0;
          cached_reply = None;
          busy = false;
          req_reasm = None;
        }
      in
      Hashtbl.replace t.servers (Addr.Ip.to_int client_ip, chan) ss;
      ss

let input t ~lower msg =
  Machine.charge t.host.Host.mach
    [
      Machine.Header H.bytes;
      Machine.Frag_bookkeep;
      Machine.Reasm_lookup;
      Machine.Semaphore_op;
    ];
  match Msg.pop msg H.bytes with
  | None -> Stats.incr t.stats "rx-runt"
  | Some (raw, rest) -> (
      match H.decode raw with
      | None -> Stats.incr t.stats "rx-malformed"
      | Some hdr ->
          let piece =
            if Msg.length rest >= hdr.H.data1_sz then
              Msg.sub rest 0 hdr.H.data1_sz
            else rest
          in
          let f = hdr.H.flags in
          if f land Wire_fmt.Flags.request <> 0 then
            let ss =
              server_session t ~client_ip:hdr.H.clnt_host ~chan:hdr.H.channel
                ~lower
            in
            handle_request t ss ~lower hdr piece
          else begin
            match
              Hashtbl.find_opt t.clients
                (Addr.Ip.to_int hdr.H.srvr_host, hdr.H.channel)
            with
            | None -> Stats.incr t.stats "rx-unbound"
            | Some cs ->
                if f land Wire_fmt.Flags.reply <> 0 then
                  handle_reply t cs hdr piece
                else if f land Wire_fmt.Flags.ack <> 0 then handle_ack t cs hdr
                else Stats.incr t.stats "rx-malformed"
          end)

(* --- public API ---------------------------------------------------- *)

let connect t ~server ?remote () =
  let remote =
    Option.value remote
      ~default:[ Part.Ip server; Part.Ip_proto t.proto_num ]
  in
  let free = Queue.create () in
  for chan = 0 to t.chans - 1 do
    Queue.add (client_session t ~server ~chan ~remote) free
  done;
  {
    cl_t = t;
    server;
    free;
    free_sem = Sim.Semaphore.create (Host.sim t.host) t.chans;
  }

let call cl ~command msg =
  let t = cl.cl_t in
  Sim.Semaphore.p cl.free_sem;
  let cs = Queue.take cl.free in
  let iv = start_call t cs ~command msg in
  let result = Sim.Ivar.read iv in
  Queue.add cs cl.free;
  Sim.Semaphore.v cl.free_sem;
  result

let register t ~command handler = Hashtbl.replace t.handlers command handler

let serve t ?enable () =
  let local =
    Option.value enable ~default:[ Part.Ip_proto t.proto_num ]
  in
  Proto.open_enable t.lower ~upper:t.p (Part.v ~local ())

let create ~host ~lower ?(proto_num = 91) ?(frag_size = 1024)
    ?(n_channels = 8) ?(base_timeout = 0.02) ?(per_frag_timeout = 0.003)
    ?(retries = 5) () =
  let p = Proto.create ~host ~name:"M.RPC" () in
  let t =
    {
      host;
      lower;
      proto_num;
      frag_size;
      chans = n_channels;
      base_timeout;
      per_frag_timeout;
      retries;
      p;
      clients = Hashtbl.create 16;
      servers = Hashtbl.create 16;
      server_boots = Hashtbl.create 4;
      handlers = Hashtbl.create 16;
      stats = Proto.stats p;
    }
  in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "Sprite_mono: use connect");
      open_enable = (fun ~upper:_ _ -> invalid_arg "Sprite_mono: use serve");
      open_done = (fun ~upper:_ _ -> invalid_arg "Sprite_mono: use serve");
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control =
        (fun req ->
          match req with
          (* Sprite RPC reports that it never pushes more than one
             fragment plus header at a time: it has its own
             fragmentation mechanism (section 3.1). *)
          | Control.Get_max_msg_size ->
              Control.R_int (t.frag_size + H.bytes)
          | Control.Get_channel_count -> Control.R_int t.chans
          | Control.Flush_cache ->
              (* What an actual reboot does to the protocol state. *)
              Hashtbl.reset t.clients;
              Hashtbl.reset t.servers;
              Hashtbl.reset t.server_boots;
              Control.R_unit
          | req -> Stats.control t.stats req);
    };
  Proto.declare_below p [ lower ];
  t
