open Xkernel

module Flags = struct
  let request = 0x1
  let reply = 0x2
  let ack = 0x4
  let please_ack = 0x8
  let deadline = 0x10
end

let decode_with bytes f s =
  if String.length s < bytes then None
  else
    let r = Codec.R.of_string s in
    match f r with v -> Some v | exception Codec.R.Truncated -> None

module Sprite = struct
  type t = {
    flags : int;
    clnt_host : Addr.Ip.t;
    srvr_host : Addr.Ip.t;
    channel : int;
    srvr_process : int;
    sequence_num : int;
    num_frags : int;
    frag_mask : int;
    command : int;
    boot_id : int;
    data1_sz : int;
    data2_sz : int;
    data1_off : int;
    data2_off : int;
  }

  let bytes = 36

  let encode t =
    let w = Codec.W.create ~size:bytes () in
    Codec.W.u16 w t.flags;
    Codec.W.u32 w (Addr.Ip.to_int t.clnt_host);
    Codec.W.u32 w (Addr.Ip.to_int t.srvr_host);
    Codec.W.u16 w t.channel;
    Codec.W.u16 w t.srvr_process;
    Codec.W.u32 w t.sequence_num;
    Codec.W.u16 w t.num_frags;
    Codec.W.u16 w t.frag_mask;
    Codec.W.u16 w t.command;
    Codec.W.u32 w t.boot_id;
    Codec.W.u16 w t.data1_sz;
    Codec.W.u16 w t.data2_sz;
    Codec.W.u16 w t.data1_off;
    Codec.W.u16 w t.data2_off;
    Codec.W.contents w

  let decode =
    decode_with bytes (fun r ->
        let flags = Codec.R.u16 r in
        let clnt_host = Addr.Ip.of_int32_bits (Codec.R.u32 r) in
        let srvr_host = Addr.Ip.of_int32_bits (Codec.R.u32 r) in
        let channel = Codec.R.u16 r in
        let srvr_process = Codec.R.u16 r in
        let sequence_num = Codec.R.u32 r in
        let num_frags = Codec.R.u16 r in
        let frag_mask = Codec.R.u16 r in
        let command = Codec.R.u16 r in
        let boot_id = Codec.R.u32 r in
        let data1_sz = Codec.R.u16 r in
        let data2_sz = Codec.R.u16 r in
        let data1_off = Codec.R.u16 r in
        let data2_off = Codec.R.u16 r in
        {
          flags;
          clnt_host;
          srvr_host;
          channel;
          srvr_process;
          sequence_num;
          num_frags;
          frag_mask;
          command;
          boot_id;
          data1_sz;
          data2_sz;
          data1_off;
          data2_off;
        })
end

module Select = struct
  type t = { typ : int; command : int; status : int }

  let bytes = 4
  let typ_request = 1
  let typ_reply = 2
  let typ_request_sharded = 3
  let status_ok = 0
  let status_no_command = 1
  let status_error = 2
  let status_wrong_shard = 3

  let encode t =
    let w = Codec.W.create ~size:bytes () in
    Codec.W.u8 w t.typ;
    Codec.W.u16 w t.command;
    Codec.W.u8 w t.status;
    Codec.W.contents w

  let decode =
    decode_with bytes (fun r ->
        let typ = Codec.R.u8 r in
        let command = Codec.R.u16 r in
        let status = Codec.R.u8 r in
        { typ; command; status })

  (* Shard-stamped requests ([typ_request_sharded]) carry this extension
     between the 4-byte header and the body: which virtual shard the
     caller routed by, and under which map generation.  An ex-owner uses
     it to answer [status_wrong_shard] (body: its map version, u32)
     instead of executing a stale-routed procedure. *)
  type stamp = { shard : int; epoch : int; version : int }

  let stamp_bytes = 10

  let encode_stamp s =
    let w = Codec.W.create ~size:stamp_bytes () in
    Codec.W.u16 w s.shard;
    Codec.W.u32 w s.epoch;
    Codec.W.u32 w s.version;
    Codec.W.contents w

  let decode_stamp =
    decode_with stamp_bytes (fun r ->
        let shard = Codec.R.u16 r in
        let epoch = Codec.R.u32 r in
        let version = Codec.R.u32 r in
        { shard; epoch; version })

  let encode_wrong_shard ~version =
    let w = Codec.W.create ~size:4 () in
    Codec.W.u32 w version;
    Codec.W.contents w

  let decode_wrong_shard = decode_with 4 (fun r -> Codec.R.u32 r)
end

module Channel = struct
  type t = {
    flags : int;
    channel : int;
    protocol_num : int;
    sequence_num : int;
    error : int;
    boot_id : int;
    deadline_us : int;
  }

  let bytes = 18
  let ext_bytes = 4
  let err_busy = 0xB5
  let max_deadline_us = 0xFFFFFFFF

  let encode t =
    let stamped = t.deadline_us >= 0 in
    let flags =
      if stamped then t.flags lor Flags.deadline
      else t.flags land lnot Flags.deadline
    in
    let w = Codec.W.create ~size:(if stamped then bytes + ext_bytes else bytes) () in
    Codec.W.u16 w flags;
    Codec.W.u16 w t.channel;
    Codec.W.u32 w t.protocol_num;
    Codec.W.u32 w t.sequence_num;
    Codec.W.u16 w t.error;
    Codec.W.u32 w t.boot_id;
    if stamped then Codec.W.u32 w (min t.deadline_us max_deadline_us);
    Codec.W.contents w

  let decode =
    decode_with bytes (fun r ->
        let flags = Codec.R.u16 r in
        let channel = Codec.R.u16 r in
        let protocol_num = Codec.R.u32 r in
        let sequence_num = Codec.R.u32 r in
        let error = Codec.R.u16 r in
        let boot_id = Codec.R.u32 r in
        {
          flags;
          channel;
          protocol_num;
          sequence_num;
          error;
          boot_id;
          deadline_us = -1;
        })

  let decode_ext = decode_with ext_bytes (fun r -> Codec.R.u32 r)

  let decode_full s =
    match decode s with
    | None -> None
    | Some hdr ->
        if hdr.flags land Flags.deadline = 0 then Some hdr
        else
          let rest = String.sub s bytes (String.length s - bytes) in
          Option.map (fun d -> { hdr with deadline_us = d }) (decode_ext rest)
end

(* MAP: the shard-map control-plane message.  A coordinator encodes its
   whole assignment (S virtual shards -> K replica indices) with its
   generation stamp; receivers install it iff (epoch, version) is newer
   than what they hold.  Small by construction: one byte per shard. *)
module Map = struct
  type t = {
    epoch : int;
    version : int;
    n_replicas : int;
    owners : int array;  (* shard -> replica index *)
  }

  let header_bytes = 12
  let max_shards = 4096
  let max_replicas = 255

  let encode t =
    let s = Array.length t.owners in
    let w = Codec.W.create ~size:(header_bytes + s) () in
    Codec.W.u32 w t.epoch;
    Codec.W.u32 w t.version;
    Codec.W.u16 w t.n_replicas;
    Codec.W.u16 w s;
    Array.iter (fun o -> Codec.W.u8 w o) t.owners;
    Codec.W.contents w

  let decode s =
    match
      decode_with header_bytes
        (fun r ->
          let epoch = Codec.R.u32 r in
          let version = Codec.R.u32 r in
          let n_replicas = Codec.R.u16 r in
          let n_shards = Codec.R.u16 r in
          (epoch, version, n_replicas, n_shards))
        s
    with
    | None -> None
    | Some (epoch, version, n_replicas, n_shards) ->
        if
          n_shards > max_shards || n_replicas > max_replicas
          || String.length s < header_bytes + n_shards
        then None
        else
          let owners =
            Array.init n_shards (fun i ->
                Char.code s.[header_bytes + i])
          in
          if Array.exists (fun o -> o >= n_replicas) owners then None
          else Some { epoch; version; n_replicas; owners }
end

module Fragment = struct
  type t = {
    typ : int;
    clnt_host : Addr.Ip.t;
    srvr_host : Addr.Ip.t;
    protocol_num : int;
    sequence_num : int;
    num_frags : int;
    frag_mask : int;
    len : int;
  }

  let bytes = 23
  let typ_data = 1
  let typ_nack = 2

  let encode t =
    let w = Codec.W.create ~size:bytes () in
    Codec.W.u8 w t.typ;
    Codec.W.u32 w (Addr.Ip.to_int t.clnt_host);
    Codec.W.u32 w (Addr.Ip.to_int t.srvr_host);
    Codec.W.u32 w t.protocol_num;
    Codec.W.u32 w t.sequence_num;
    Codec.W.u16 w t.num_frags;
    Codec.W.u16 w t.frag_mask;
    Codec.W.u16 w t.len;
    Codec.W.contents w

  let decode =
    decode_with bytes (fun r ->
        let typ = Codec.R.u8 r in
        let clnt_host = Addr.Ip.of_int32_bits (Codec.R.u32 r) in
        let srvr_host = Addr.Ip.of_int32_bits (Codec.R.u32 r) in
        let protocol_num = Codec.R.u32 r in
        let sequence_num = Codec.R.u32 r in
        let num_frags = Codec.R.u16 r in
        let frag_mask = Codec.R.u16 r in
        let len = Codec.R.u16 r in
        {
          typ;
          clnt_host;
          srvr_host;
          protocol_num;
          sequence_num;
          num_frags;
          frag_mask;
          len;
        })
end
