open Xkernel
module World = Netproto.World

type arrival = Uniform | Poisson

type result = {
  r_config : string;
  r_mode : string;
  offered_rps : float;
  achieved_rps : float;
  arrivals : int;
  completed : int;
  failed : int;
  shed : int;
  elapsed_s : float;
  wire_util : float;
  queue_depth_max : int;
  pending_max : int;
  hist : Histogram.t;
  per_client : Histogram.t array;
}

(* Latencies are recorded in microseconds; 100 s of range is far past
   any retry-exhausted call. *)
let new_hist () = Histogram.create ~max_value:100_000_000 ()

let us_of seconds = int_of_float ((seconds *. 1e6) +. 0.5)

let sample_interval = 0.5e-3

(* Sample the server CPU's run-queue depth every [sample_interval]
   until [stop].  The samples charge nothing, so the workload's timing
   is unaffected. *)
let spawn_queue_sampler (w : World.t) mach stop =
  let peak = ref 0 in
  World.spawn w (fun () ->
      while not !stop do
        let d = Machine.queue_depth mach in
        if d > !peak then peak := d;
        Sim.delay w.World.sim sample_interval
      done);
  peak

let payload_of size = if size = 0 then Msg.empty else Msg.fill size 'l'

let finish (f : World.fanin) (s : Stacks.fan) ~mode ~offered ~arrivals
    ~completed ~failed ~shed ~t0 ~t_end ~bytes0 ~queue_peak ~pending_max
    ~hists =
  let hist = new_hist () in
  Array.iter (fun h -> Histogram.merge_into ~src:h ~dst:hist) hists;
  let elapsed = t_end -. t0 in
  let wire = f.World.fan.World.wire in
  let wire_bits = float_of_int (((Wire.stats wire).Wire.bytes - bytes0) * 8) in
  let achieved_rps =
    if elapsed > 0. then float_of_int completed /. elapsed else 0.
  in
  let wire_util =
    if elapsed > 0. then wire_bits /. Wire.bandwidth_bps wire /. elapsed
    else 0.
  in
  let st = Stats.create ~name:("load/" ^ s.Stacks.fan_name) () in
  Stats.set st "queue-depth-max" queue_peak;
  Stats.set st "pending-max" pending_max;
  Stats.set st "shed" shed;
  Stats.set st "completed" completed;
  Stats.set st "wire-util-pct" (int_of_float (wire_util *. 100. +. 0.5));
  {
    r_config = s.Stacks.fan_name;
    r_mode = mode;
    offered_rps = offered;
    achieved_rps;
    arrivals;
    completed;
    failed;
    shed;
    elapsed_s = elapsed;
    wire_util;
    queue_depth_max = queue_peak;
    pending_max;
    hist;
    per_client = hists;
  }

let run_closed ?(fibers = 8) ?(calls = 25) ?(warmup = 2) ?(think = 0.)
    ?(size = 0) (f : World.fanin) (s : Stacks.fan) =
  if fibers < 1 then invalid_arg "Load.run_closed: fibers < 1";
  let w = f.World.fan in
  let sim = w.World.sim in
  let m = Array.length f.World.clients in
  let hists = Array.init m (fun _ -> new_hist ()) in
  let completed = ref 0 and failed = ref 0 in
  let t0 = ref 0. and t_end = ref 0. and bytes0 = ref 0 in
  let stop = ref false in
  let queue_peak = ref (ref 0) in
  let payload = payload_of size in
  let gate = Sim.Ivar.create sim in
  let warm_left = ref fibers and running = ref fibers in
  for k = 0 to fibers - 1 do
    let i = k mod m in
    World.spawn w (fun () ->
        for _ = 1 to warmup do
          ignore (s.Stacks.fan_call i ~command:Stacks.cmd_null Msg.empty)
        done;
        decr warm_left;
        if !warm_left = 0 then begin
          (* last fiber to warm up opens the measured phase for all *)
          t0 := Sim.now sim;
          t_end := !t0;
          bytes0 := (Wire.stats w.World.wire).Wire.bytes;
          queue_peak := spawn_queue_sampler w s.Stacks.fan_server.Host.mach stop;
          Sim.Ivar.fill gate ()
        end;
        Sim.Ivar.read gate;
        for _ = 1 to calls do
          let t = Sim.now sim in
          (match s.Stacks.fan_call i ~command:Stacks.cmd_null payload with
          | Ok _ -> incr completed
          | Error _ -> incr failed);
          let now = Sim.now sim in
          Histogram.record hists.(i) (us_of (now -. t));
          if now > !t_end then t_end := now;
          if think > 0. then Sim.delay sim think
        done;
        decr running;
        if !running = 0 then stop := true)
  done;
  World.run w;
  let r =
    finish f s ~mode:"closed" ~offered:0. ~arrivals:(fibers * calls)
      ~completed:!completed ~failed:!failed ~shed:0 ~t0:!t0 ~t_end:!t_end
      ~bytes0:!bytes0 ~queue_peak:!(!queue_peak) ~pending_max:fibers ~hists
  in
  (* Closed loop has no independent offered rate: it offers exactly
     what it achieves. *)
  { r with offered_rps = r.achieved_rps }

let run_open ?(arrival = Poisson) ?(arrivals = 200) ?(window = 32)
    ?(warmup = 1) ?(size = 0) ~rate (f : World.fanin) (s : Stacks.fan) =
  if rate <= 0. then invalid_arg "Load.run_open: rate <= 0";
  if window < 1 then invalid_arg "Load.run_open: window < 1";
  let w = f.World.fan in
  let sim = w.World.sim in
  let m = Array.length f.World.clients in
  let hists = Array.init m (fun _ -> new_hist ()) in
  let completed = ref 0 and failed = ref 0 and shed = ref 0 in
  let pending = ref 0 and pending_max = ref 0 in
  let t0 = ref 0. and t_end = ref 0. and bytes0 = ref 0 in
  let stop = ref false in
  let queue_peak = ref (ref 0) in
  let dispatched_all = ref false in
  let payload = payload_of size in
  let finish_if_drained () =
    if !dispatched_all && !pending = 0 then stop := true
  in
  let one_call i =
    let t = Sim.now sim in
    (match s.Stacks.fan_call i ~command:Stacks.cmd_null payload with
    | Ok _ -> incr completed
    | Error _ -> incr failed);
    let now = Sim.now sim in
    Histogram.record hists.(i) (us_of (now -. t));
    if now > !t_end then t_end := now;
    decr pending;
    finish_if_drained ()
  in
  let interarrival =
    match arrival with
    | Uniform -> fun () -> 1. /. rate
    | Poisson ->
        let rng = Sim.rng sim in
        fun () -> -.log (1. -. Random.State.float rng 1.) /. rate
  in
  let dispatcher () =
    t0 := Sim.now sim;
    t_end := !t0;
    bytes0 := (Wire.stats w.World.wire).Wire.bytes;
    queue_peak := spawn_queue_sampler w s.Stacks.fan_server.Host.mach stop;
    for k = 0 to arrivals - 1 do
      (* The arrival happens whether or not we can serve it: a full
         window sheds the call instead of queueing it unboundedly. *)
      if !pending >= window then incr shed
      else begin
        incr pending;
        if !pending > !pending_max then pending_max := !pending;
        let i = k mod m in
        Sim.spawn sim (fun () -> one_call i)
      end;
      if k < arrivals - 1 then Sim.delay sim (interarrival ())
    done;
    dispatched_all := true;
    finish_if_drained ()
  in
  (* Warm every client host (ARP, session caches, RTT estimators)
     before the arrival clock starts. *)
  let warm_left = ref m in
  for i = 0 to m - 1 do
    World.spawn w (fun () ->
        for _ = 1 to max 1 warmup do
          ignore (s.Stacks.fan_call i ~command:Stacks.cmd_null Msg.empty)
        done;
        decr warm_left;
        if !warm_left = 0 then Sim.spawn sim dispatcher)
  done;
  World.run w;
  let mode =
    match arrival with
    | Uniform -> "open-uniform"
    | Poisson -> "open-poisson"
  in
  finish f s ~mode ~offered:rate ~arrivals ~completed:!completed
    ~failed:!failed ~shed:!shed ~t0:!t0 ~t_end:!t_end ~bytes0:!bytes0
    ~queue_peak:!(!queue_peak) ~pending_max:!pending_max ~hists

let to_json r =
  Json.Obj
    [
      ("config", Json.Str r.r_config);
      ("mode", Json.Str r.r_mode);
      ("offered_rps", Json.Float r.offered_rps);
      ("achieved_rps", Json.Float r.achieved_rps);
      ("arrivals", Json.Int r.arrivals);
      ("completed", Json.Int r.completed);
      ("failed", Json.Int r.failed);
      ("shed", Json.Int r.shed);
      ("elapsed_ms", Json.Float (r.elapsed_s *. 1e3));
      ("wire_util", Json.Float r.wire_util);
      ("queue_depth_max", Json.Int r.queue_depth_max);
      ("pending_max", Json.Int r.pending_max);
      ("latency_us", Histogram.to_json r.hist);
    ]
