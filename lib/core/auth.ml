open Xkernel

let flavor_none = 0
let flavor_unix = 1
let flavor_digest = 3

(* flavour (1) + upper protocol number (4) + credential length (2) *)
let fixed_bytes = 7

type t = {
  host : Host.t;
  lower : Proto.t;
  own_proto : int;
  flavor : int;
  cred_for : Msg.t -> string;
  verify : cred:string -> Msg.t -> bool;
  p : Proto.t;
  sessions : (int * int, Proto.session) Hashtbl.t; (* (peer, upper proto) *)
  enabled : (int, Proto.t) Hashtbl.t;
  stats : Stats.t;
}

let proto t = t.p
let rejects t = Stats.get t.stats "auth-reject"

let encode t ~upper_proto cred =
  let w = Codec.W.create ~size:(fixed_bytes + String.length cred) () in
  Codec.W.u8 w t.flavor;
  Codec.W.u32 w upper_proto;
  Codec.W.u16 w (String.length cred);
  Codec.W.bytes w cred;
  Codec.W.contents w

let make_session t ~upper ~peer ~upper_proto =
  let lower_sess =
    Proto.open_ t.lower ~upper:t.p
      (Part.v
         ~local:[ Part.Ip t.host.Host.ip; Part.Ip_proto t.own_proto ]
         ~remotes:[ [ Part.Ip peer; Part.Ip_proto t.own_proto ] ]
         ())
  in
  let cell = ref None in
  let push msg =
    let cred = t.cred_for msg in
    Stats.incr t.stats "tx";
    Machine.charge t.host.Host.mach
      [ Machine.Header (fixed_bytes + String.length cred) ];
    Proto.push lower_sess (Msg.push msg (encode t ~upper_proto cred))
  in
  let pop msg = Proto.deliver upper ~lower:(Option.get !cell) msg in
  let s_control = function
    | Control.Get_peer_host -> Control.R_ip peer
    | Control.Get_peer_proto | Control.Get_my_proto -> Control.R_int upper_proto
    | req -> Proto.session_control lower_sess req
  in
  let close () = Hashtbl.remove t.sessions (Addr.Ip.to_int peer, upper_proto) in
  let xs = Proto.make_session t.p { push; pop; s_control; close } in
  cell := Some xs;
  Hashtbl.replace t.sessions (Addr.Ip.to_int peer, upper_proto) xs;
  xs

let input t ~lower msg =
  match Proto.session_control lower Control.Get_peer_host with
  | Control.R_ip peer -> (
      Machine.charge_one t.host.Host.mach (Machine.Header fixed_bytes);
      match Msg.pop msg fixed_bytes with
      | None -> Stats.incr t.stats "rx-runt"
      | Some (raw, rest) -> (
          let r = Codec.R.of_string raw in
          let flavor = Codec.R.u8 r in
          let upper_proto = Codec.R.u32 r in
          let cred_len = Codec.R.u16 r in
          match Msg.pop rest cred_len with
          | None -> Stats.incr t.stats "rx-runt"
          | Some (cred, body) ->
              if flavor <> t.flavor then Stats.incr t.stats "flavor-mismatch"
              else if not (t.verify ~cred body) then
                Stats.incr t.stats "auth-reject"
              else begin
                Stats.incr t.stats "rx";
                let xs =
                  match
                    Hashtbl.find_opt t.sessions
                      (Addr.Ip.to_int peer, upper_proto)
                  with
                  | Some xs -> Some xs
                  | None -> (
                      match Hashtbl.find_opt t.enabled upper_proto with
                      | Some upper ->
                          Some (make_session t ~upper ~peer ~upper_proto)
                      | None -> None)
                in
                match xs with
                | Some xs -> Proto.pop xs body
                | None -> Stats.incr t.stats "rx-unbound"
              end))
  | _ -> Stats.incr t.stats "rx-unidentified"

let make ~host ~lower ~proto_num ~flavor ~name ~cred_for ~verify =
  let p = Proto.create ~host ~name () in
  let t =
    {
      host;
      lower;
      own_proto = proto_num;
      flavor;
      cred_for;
      verify;
      p;
      sessions = Hashtbl.create 8;
      enabled = Hashtbl.create 8;
      stats = Proto.stats p;
    }
  in
  Proto.set_ops p
    {
      Proto.open_ =
        (fun ~upper part ->
          let peer_part = Part.peer part in
          let peer =
            match Part.find_ip peer_part with
            | Some ip -> ip
            | None -> invalid_arg "Auth.open_: no peer IP"
          in
          let upper_proto =
            match
              (Part.find_ip_proto peer_part, Part.find_ip_proto part.Part.local)
            with
            | Some n, _ | None, Some n -> n
            | None, None -> invalid_arg "Auth.open_: no proto number"
          in
          match
            Hashtbl.find_opt t.sessions (Addr.Ip.to_int peer, upper_proto)
          with
          | Some xs -> xs
          | None -> make_session t ~upper ~peer ~upper_proto);
      open_enable =
        (fun ~upper part ->
          match Part.find_ip_proto part.Part.local with
          | None -> invalid_arg "Auth.open_enable: no proto number"
          | Some n ->
              Hashtbl.replace t.enabled n upper;
              Proto.open_enable t.lower ~upper:t.p
                (Part.v ~local:[ Part.Ip_proto t.own_proto ] ()));
      open_done = (fun ~upper:_ _ -> invalid_arg "Auth: open_done");
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control =
        (fun req ->
          match req with
          | Control.Get_max_msg_size | Control.Get_max_packet
          | Control.Get_opt_packet ->
              Proto.control t.lower req
          | req -> Stats.control t.stats req);
    };
  Proto.declare_below p [ lower ];
  t

let none ~host ~lower ?(proto_num = 96) () =
  make ~host ~lower ~proto_num ~flavor:flavor_none ~name:"AUTH_NONE"
    ~cred_for:(fun _ -> "")
    ~verify:(fun ~cred:_ _ -> true)

let unix ~host ~lower ?(proto_num = 96) ~uid ~gid ~allow () =
  let cred_for _msg =
    let w = Codec.W.create ~size:8 () in
    Codec.W.u32 w uid;
    Codec.W.u32 w gid;
    Codec.W.contents w
  in
  let verify ~cred _msg =
    String.length cred = 8
    &&
    let r = Codec.R.of_string cred in
    let uid = Codec.R.u32 r in
    let gid = Codec.R.u32 r in
    allow ~uid ~gid
  in
  make ~host ~lower ~proto_num ~flavor:flavor_unix ~name:"AUTH_UNIX" ~cred_for
    ~verify

(* Toy keyed checksum: a weighted byte sum of key and body.  Enough to
   catch tampering in tests; not cryptography. *)
let digest_of ~key msg =
  let h = ref 5381 in
  let feed c = h := (((!h lsl 5) + !h) + Char.code c) land 0x3fffffff in
  String.iter feed key;
  String.iter feed (Msg.to_string msg);
  let w = Codec.W.create ~size:4 () in
  Codec.W.u32 w !h;
  Codec.W.contents w

let digest ~host ~lower ?(proto_num = 96) ~key () =
  make ~host ~lower ~proto_num ~flavor:flavor_digest ~name:"AUTH_DIGEST"
    ~cred_for:(fun msg -> digest_of ~key msg)
    ~verify:(fun ~cred msg -> String.equal cred (digest_of ~key msg))
