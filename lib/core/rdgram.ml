open Xkernel

type t = {
  host : Host.t;
  channel : Channel.t;
  proto_num : int;
  p : Proto.t;
  mutable on_receive : (Addr.Ip.t -> Msg.t -> unit) option;
  sessions : (int, Proto.session) Hashtbl.t;
  stats : Stats.t;
}

let received t = Stats.get t.stats "rx"

let session t ~dest =
  match Hashtbl.find_opt t.sessions (Addr.Ip.to_int dest) with
  | Some s -> s
  | None ->
      let part =
        Part.v
          ~local:
            [ Part.Ip t.host.Host.ip; Part.Ip_proto t.proto_num; Part.Channel 0 ]
          ~remotes:[ [ Part.Ip dest; Part.Ip_proto t.proto_num ] ]
          ()
      in
      let s = Proto.open_ (Channel.proto t.channel) ~upper:t.p part in
      Hashtbl.replace t.sessions (Addr.Ip.to_int dest) s;
      s

let send t ~dest msg =
  Stats.incr t.stats "tx";
  match Channel.call t.channel (session t ~dest) msg with
  | Ok _empty_ack -> Ok ()
  | Error e -> Error e

(* Server side: deliver the datagram up and answer with an empty reply,
   which is the acknowledgement. *)
let input t ~lower msg =
  Stats.incr t.stats "rx";
  (match (t.on_receive, Proto.session_control lower Control.Get_peer_host) with
  | Some f, Control.R_ip peer -> f peer msg
  | _ -> ());
  Proto.push lower Msg.empty

let listen t f =
  t.on_receive <- Some f;
  Proto.open_enable (Channel.proto t.channel) ~upper:t.p
    (Part.v ~local:[ Part.Ip_proto t.proto_num ] ())

let create ~host ~channel ?(proto_num = 94) () =
  let p = Proto.create ~host ~name:"RDGRAM" () in
  let t =
    {
      host;
      channel;
      proto_num;
      p;
      on_receive = None;
      sessions = Hashtbl.create 4;
      stats = Proto.stats p;
    }
  in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "Rdgram: use send");
      open_enable = (fun ~upper:_ _ -> invalid_arg "Rdgram: use listen");
      open_done = (fun ~upper:_ _ -> invalid_arg "Rdgram: use send");
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control = (fun req -> Stats.control t.stats req);
    };
  Proto.declare_below p [ Channel.proto channel ];
  t
