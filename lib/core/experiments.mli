(** Experiment runners: one function per table/figure of the paper.

    Each prints a table of "paper / here" values to stdout, building
    fresh simulated worlds internally, and returns the measured rows as
    JSON (an array of row objects, or [Null] for the figure printer) so
    callers can assemble a machine-readable results file with
    [--json].  The per-experiment index in DESIGN.md maps these to the
    paper's artifacts; EXPERIMENTS.md records representative output. *)

val intro : unit -> Xkernel.Json.t
(** The introduction's UDP/IP user-to-user comparison (2.00 msec in the
    x-kernel vs 5.36 in SunOS 4.0). *)

val table1 : unit -> Xkernel.Json.t
(** Table I: N.RPC, M.RPC-ETH, M.RPC-IP, M.RPC-VIP — latency,
    throughput, incremental cost. *)

val table2 : unit -> Xkernel.Json.t
(** Table II: monolithic vs layered RPC, plus the CPU-time note and the
    FRAGMENT-alone throughput of section 4.2. *)

val table3 : unit -> Xkernel.Json.t
(** Table III: per-layer latency of VIP, FRAGMENT-VIP,
    CHANNEL-FRAGMENT-VIP, SELECT-CHANNEL-FRAGMENT-VIP. *)

val removal : unit -> Xkernel.Json.t
(** Section 4.3: SELECT-CHANNEL-VIPsize recovers monolithic latency
    while 16 KB messages still flow through FRAGMENT. *)

val figures :
  ?fig2_extra:(host:Xkernel.Host.t -> lower:Xkernel.Proto.t -> Xkernel.Proto.t) ->
  unit ->
  Xkernel.Json.t
(** Figures 1-3 as executable protocol graphs.  [fig2_extra] lets a
    caller that links layers above this library (Psync) add them to the
    Figure 2 suite.  Always returns [Null]: the graphs are diagrams,
    not measurements. *)

val ablation : unit -> Xkernel.Json.t
(** Section 5 "Potential Pitfalls": pre-allocated header buffer vs
    per-header allocation. *)

val cpu_note : unit -> Xkernel.Json.t
(** Client CPU time per 16 KB call across configurations. *)

val loss_sweep : unit -> Xkernel.Json.t
(** Robustness: concurrent null-RPC benchmark over L.RPC-VIP at drop
    rates 0-20%, fixed step-function timeout vs adaptive
    (Jacobson/Karn) RTO side by side.  Reports completed/failed calls,
    retransmission counts, elapsed virtual time and call rate; rows use
    [table = "loss"].  Resets the {!Xkernel.Stats} registry for each
    configuration it runs. *)

val capacity :
  ?stacks:string list ->
  ?rates:float list ->
  ?arrivals:int ->
  ?clients:int ->
  ?window:int ->
  ?conc:int list ->
  unit ->
  Xkernel.Json.t
(** Capacity sweep ({!Load} over a fan-in topology): for each stack
    (default [["mrpc-vip"; "lrpc"]]; also accepts ["mrpc-eth"],
    ["mrpc-ip"]) a closed-loop concurrency sweep ([conc] total fibers)
    followed by an open-loop offered-load sweep ([rates] calls/s,
    Poisson arrivals, [arrivals] arrivals per step, pending window
    [window]) across [clients] client hosts into one server.  Each
    step builds a fresh world with the default seed, so the whole
    sweep is deterministic.  Rows use [table = "capacity"] and carry
    achieved throughput, the p50/p90/p99/p99.9 latency summary
    (microseconds, under ["latency_us"]), shed counts, peak server
    queue depth and wire utilization. *)

val failover :
  ?servers:int ->
  ?clients:int ->
  ?rate:float ->
  ?arrivals:int ->
  ?window:int ->
  ?seed:int ->
  unit ->
  Xkernel.Json.t
(** Crash-availability over replicated servers: [clients] client hosts
    round-robin over [servers] L.RPC replicas through the REPLICA
    failover layer (open loop, uniform arrivals at [rate] calls/s,
    [arrivals] arrivals, pending window [window]).  A third of the way
    through, replica 0 crashes and stays partitioned for a quarter of
    the sweep, then heals; suspect marking, bounded failover and
    recovery probes keep the goodput dip to at most one replica's
    share.  Prints per-phase goodput (pre-crash / outage / healed) and
    the tail-latency summary; returns one row with [table =
    "failover"] carrying the phase goodputs, [failovers], probe
    counts, shed counts (total and after heal), the world [seed], the
    final client [map_version] (0 — no shard map here) and the latency
    histogram.  Deterministic for a fixed parameter set ([seed],
    default 42; uniform arrivals).  Resets the {!Xkernel.Stats}
    registry. *)

val rebalance_modes : string list
(** The three policies the rebalance experiment compares: ["static"]
    (shard map installed, never updated), ["crash-rebalance"] (crash
    chaos plus the crash policy) and ["skew-rebalance"] (hot-shard
    arrivals plus the skew policy). *)

val rebalance :
  ?servers:int ->
  ?clients:int ->
  ?shards:int ->
  ?rate:float ->
  ?arrivals:int ->
  ?window:int ->
  ?seed:int ->
  ?modes:string list ->
  unit ->
  Xkernel.Json.t
(** Dynamic shard map under chaos: [clients] clients route [shards]
    virtual shards over [servers] L.RPC replicas by the installed
    {!Shard_map} (open loop, uniform arrivals at [rate] calls/s,
    [arrivals] arrivals per mode).  30% in, crash modes lose replica 0
    for the rest of the run (crash + partition); the skew mode instead
    redirects every second arrival at one hot shard.  Each mode runs
    in a fresh world seeded with [seed] and resets the
    {!Xkernel.Stats} registry, so rows are deterministic and
    independent.

    Goodput survives the crash in every mode — the REPLICA health
    machinery below the map routes around the dead owner — so the
    map's value shows in affinity: the static map serves every
    orphaned-shard call at a non-owner forever ([foreign_shard_rx]
    keeps climbing), while the rebalanced map converges ownership
    back.

    Rows use [table = "rebalance"] and carry per-phase goodput
    (pre / dip / healed, with the dip a fixed 250 ms from the fault),
    per-phase p99/p99.9, [moved_shards], the control plane's reaction
    time ([t_rebalance_ms], -1 when no map change was observed),
    wrong-shard, foreign-shard and forced-handoff counts, the final
    client [map_version], [seed] and [lost_calls] — which must be 0:
    every arrival is completed, failed or shed. *)

val overload_controls : string list
(** The four control stacks the overload sweep compares, weakest
    first: ["none"] (no overload control), ["deadline"] (deadline
    propagation on the wire), ["deadline+admit"] (plus a server-side
    {!Admit} layer), ["full"] (plus retry budget and hedging). *)

val overload :
  ?servers:int ->
  ?clients:int ->
  ?rates:float list ->
  ?arrivals:int ->
  ?window:int ->
  ?service_us:int ->
  ?deadline:float ->
  ?controls:string list ->
  ?spike:float ->
  unit ->
  Xkernel.Json.t
(** End-to-end overload control: for each control stack in [controls]
    (a subset of {!overload_controls}) an open-loop uniform-arrival
    sweep over [rates] calls/s, [arrivals] arrivals per step, through
    [clients] clients round-robining over [servers] L.RPC replicas.
    Every call runs a procedure costing [service_us] of server CPU
    under a [deadline] (default 25 ms) whole-call bound, with the
    attempt timeout at half the deadline.  Each step builds a fresh
    default-seed world and resets the {!Xkernel.Stats} registry, so
    rows are deterministic and independent.  [spike] adds a
    {!Xkernel.Chaos.Delay_spike} of that many seconds over the middle
    half of each step's arrival window.

    Rows use [table = "overload"] and carry goodput, the ground-truth
    wasted server CPU ([wasted_cpu_us]: service charges completed after
    the caller's deadline), server-side expired drops and busy rejects,
    client-side busy receipts, retry-budget exhaustions, failovers,
    hedge counts, server CPU busy/wait time and the latency
    histogram. *)

val inc_modes : string list
(** The three cells the INC experiment compares: ["no-inc"] (plain
    forwarding switch), ["cold"] (INC installed, no request ever
    repeats) and ["hot"] (INC installed, every client repeats one
    cacheable request). *)

val inc :
  ?clients:int ->
  ?rate:float ->
  ?arrivals:int ->
  ?window:int ->
  ?seed:int ->
  ?modes:string list ->
  unit ->
  Xkernel.Json.t
(** In-network computation on the switched star: [clients] clients and
    one server, each on its own wire behind the switch, driven open
    loop (uniform arrivals at [rate] calls/s aggregate, [arrivals] per
    mode, pending window [window]) at a rate past the single-server
    knee.  The hot mode repeats one cacheable SELECT echo, so after
    the first miss the {!Inc} layer answers every call at the switch;
    cold never repeats a request; no-inc runs the hot workload through
    a plain forwarding switch.  Each mode builds a fresh world seeded
    [seed] and resets the {!Xkernel.Stats} registry.

    Rows use [table = "inc"] and carry goodput, cache
    hits/misses/sheds/stored/invalidated, the server access wire's
    frame and byte deltas over the measured window, server and switch
    CPU time, shed/lost counts and the latency histogram.  The
    headline: hot goodput strictly above no-inc goodput, with server
    wire bytes and CPU strictly lower. *)

val shardscale_modes : string list
(** The shardscale cells: ["uniform"] (keys sweep the shard space,
    run at every K), ["zipf"] and ["zipf-rebalance"] (zipfian keys at
    the largest K, without and with the skew rebalancer). *)

val shardscale :
  ?ks:int list ->
  ?clients:int ->
  ?shards:int ->
  ?rate:float ->
  ?arrivals:int ->
  ?window:int ->
  ?seed:int ->
  ?modes:string list ->
  unit ->
  Xkernel.Json.t
(** Capacity over K servers now that every server has its own access
    wire: [clients] clients route [shards] shards over K ∈ [ks]
    L.RPC replicas through the switch ({!Shard_map} routing, hash
    policy), open loop at [rate] calls/s aggregate, [arrivals] per
    cell.  Uniform cells run at every K; zipfian cells (exponent 1.2
    over the shard space) run at the largest K, with
    ["zipf-rebalance"] adding the {!Rebalance} skew policy.  Each cell
    builds a fresh world seeded [seed] and resets the
    {!Xkernel.Stats} registry.

    Rows use [table = "shardscale"] and carry aggregate goodput,
    per-cell shed/failed/lost counts ([lost_calls] must be 0),
    summed and max per-server CPU (the imbalance signal),
    wrong-shard and foreign-shard counters, [moved_shards] and the
    latency histogram.  The headline: uniform goodput at K=4 at least
    twice K=1, and the skew rebalancer recovering part of the zipf
    cell's lost slope. *)
