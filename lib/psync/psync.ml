open Xkernel

let typ_data = 1
let typ_resend = 2
let resend_delay = 0.05
let resend_tries = 3

type msg_id = { origin : Addr.Ip.t; seq : int }

type packet = {
  pk_conv : int;
  pk_id : msg_id;
  pk_ctx : msg_id list;
  pk_body : Msg.t;
}

type conversation = {
  cv : t;
  conv_id : int;
  members : Addr.Ip.t list;
  sessions : (Addr.Ip.t * Proto.session) list;
  mutable my_seq : int;
  delivered_ids : (int * int, unit) Hashtbl.t; (* (origin, seq) *)
  origin_store : (int, msg_id list * Msg.t) Hashtbl.t; (* my seq -> ctx,body *)
  mutable waiting : packet list;
  mutable leaves : msg_id list;
  mutable callback :
    (sender:Addr.Ip.t -> id:msg_id -> context:msg_id list -> Msg.t -> unit)
    option;
  requested : (int * int, int) Hashtbl.t; (* resend attempts per id *)
}

and t = {
  host : Host.t;
  lower : Proto.t;
  proto_num : int;
  p : Proto.t;
  convs : (int, conversation) Hashtbl.t;
  stats : Stats.t;
}

let proto t = t.p

let key (id : msg_id) = (Addr.Ip.to_int id.origin, id.seq)

let header_of pk ~typ =
  let w = Codec.W.create () in
  Codec.W.u8 w typ;
  Codec.W.u32 w pk.pk_conv;
  Codec.W.u32 w (Addr.Ip.to_int pk.pk_id.origin);
  Codec.W.u32 w pk.pk_id.seq;
  Codec.W.u8 w (List.length pk.pk_ctx);
  List.iter
    (fun id ->
      Codec.W.u32 w (Addr.Ip.to_int id.origin);
      Codec.W.u32 w id.seq)
    pk.pk_ctx;
  Codec.W.contents w

let parse msg =
  (* fixed part: 14 bytes; context entries: 8 bytes each *)
  match Msg.pop msg 14 with
  | None -> None
  | Some (fixed, rest) -> (
      let r = Codec.R.of_string fixed in
      let typ = Codec.R.u8 r in
      let conv = Codec.R.u32 r in
      let origin = Addr.Ip.of_int32_bits (Codec.R.u32 r) in
      let seq = Codec.R.u32 r in
      let nctx = Codec.R.u8 r in
      match Msg.pop rest (nctx * 8) with
      | None -> None
      | Some (ctx_raw, body) ->
          let cr = Codec.R.of_string ctx_raw in
          let ctx =
            List.init nctx (fun _ ->
                let origin = Addr.Ip.of_int32_bits (Codec.R.u32 cr) in
                let seq = Codec.R.u32 cr in
                { origin; seq })
          in
          Some (typ, { pk_conv = conv; pk_id = { origin; seq }; pk_ctx = ctx; pk_body = body }))

let transmit t sess ~typ pk =
  let hdr = header_of pk ~typ in
  Machine.charge_one t.host.Host.mach (Machine.Header (String.length hdr));
  Proto.push sess (Msg.push pk.pk_body hdr)


let is_delivered cv id = Hashtbl.mem cv.delivered_ids (key id)

let mark_delivered cv pk =
  Hashtbl.replace cv.delivered_ids (key pk.pk_id) ();
  (* The new message supersedes its context in the frontier. *)
  cv.leaves <-
    pk.pk_id
    :: List.filter
         (fun leaf -> not (List.exists (fun c -> key c = key leaf) pk.pk_ctx))
         cv.leaves

let deliver cv pk =
  mark_delivered cv pk;
  Stats.incr cv.cv.stats "delivered";
  match cv.callback with
  | Some f ->
      f ~sender:pk.pk_id.origin ~id:pk.pk_id ~context:pk.pk_ctx pk.pk_body
  | None -> ()

(* Deliver every buffered message whose context is now satisfied;
   repeat to a fixpoint since each delivery can unblock others. *)
let rec drain cv =
  let ready, still =
    List.partition
      (fun pk -> List.for_all (is_delivered cv) pk.pk_ctx)
      cv.waiting
  in
  cv.waiting <- still;
  if ready <> [] then begin
    List.iter (fun pk -> if not (is_delivered cv pk.pk_id) then deliver cv pk) ready;
    drain cv
  end

(* Psync-style recovery: ask a message's original sender to resend it,
   a bounded number of times. *)
let rec request_missing cv id =
  let k = key id in
  let tries = Option.value (Hashtbl.find_opt cv.requested k) ~default:0 in
  if tries < resend_tries && not (is_delivered cv id) then begin
    Hashtbl.replace cv.requested k (tries + 1);
    Stats.incr cv.cv.stats "resend-req-tx";
    (match List.assoc_opt id.origin cv.sessions with
    | Some sess ->
        transmit cv.cv sess ~typ:typ_resend
          { pk_conv = cv.conv_id; pk_id = id; pk_ctx = []; pk_body = Msg.empty }
    | None -> ());
    ignore
      (Event.schedule cv.cv.host resend_delay (fun () ->
           if not (is_delivered cv id) then request_missing cv id))
  end

let receive_data cv pk =
  if is_delivered cv pk.pk_id then Stats.incr cv.cv.stats "dup"
  else if List.exists (fun w -> key w.pk_id = key pk.pk_id) cv.waiting then
    Stats.incr cv.cv.stats "dup"
  else begin
    cv.waiting <- pk :: cv.waiting;
    drain cv;
    (* Anything still waiting has missing context: recover it. *)
    List.iter
      (fun w ->
        List.iter
          (fun c -> if not (is_delivered cv c) then request_missing cv c)
          w.pk_ctx)
      cv.waiting
  end

let receive_resend cv pk ~from =
  Stats.incr cv.cv.stats "resend-req-rx";
  if Addr.Ip.equal pk.pk_id.origin cv.cv.host.Host.ip then begin
    match Hashtbl.find_opt cv.origin_store pk.pk_id.seq with
    | Some (ctx, body) -> (
        match List.assoc_opt from cv.sessions with
        | Some sess ->
            Stats.incr cv.cv.stats "resend-tx";
            transmit cv.cv sess ~typ:typ_data
              { pk_conv = cv.conv_id; pk_id = pk.pk_id; pk_ctx = ctx; pk_body = body }
        | None -> ())
    | None -> Stats.incr cv.cv.stats "resend-unknown"
  end

let input t ~lower msg =
  match parse msg with
  | None -> Stats.incr t.stats "rx-malformed"
  | Some (typ, pk) -> (
      match Hashtbl.find_opt t.convs pk.pk_conv with
      | None -> Stats.incr t.stats "rx-no-conv"
      | Some cv ->
          if typ = typ_data then receive_data cv pk
          else if typ = typ_resend then begin
            match Proto.session_control lower Control.Get_peer_host with
            | Control.R_ip from -> receive_resend cv pk ~from
            | _ -> Stats.incr t.stats "rx-unidentified"
          end
          else Stats.incr t.stats "rx-malformed")

let join t ~conv_id ~members =
  match Hashtbl.find_opt t.convs conv_id with
  | Some cv -> cv
  | None ->
      let others =
        List.filter (fun m -> not (Addr.Ip.equal m t.host.Host.ip)) members
      in
      let sessions =
        List.map
          (fun m ->
            let part =
              Part.v
                ~local:[ Part.Ip t.host.Host.ip; Part.Ip_proto t.proto_num ]
                ~remotes:[ [ Part.Ip m; Part.Ip_proto t.proto_num ] ]
                ()
            in
            (m, Proto.open_ t.lower ~upper:t.p part))
          others
      in
      let cv =
        {
          cv = t;
          conv_id;
          members;
          sessions;
          my_seq = 0;
          delivered_ids = Hashtbl.create 64;
          origin_store = Hashtbl.create 64;
          waiting = [];
          leaves = [];
          callback = None;
          requested = Hashtbl.create 16;
        }
      in
      Hashtbl.replace t.convs conv_id cv;
      cv

let send cv msg =
  let t = cv.cv in
  cv.my_seq <- cv.my_seq + 1;
  let id = { origin = t.host.Host.ip; seq = cv.my_seq } in
  let ctx = cv.leaves in
  Hashtbl.replace cv.origin_store cv.my_seq (ctx, msg);
  Hashtbl.replace cv.delivered_ids (key id) ();
  cv.leaves <- [ id ];
  Stats.incr t.stats "sent";
  List.iter
    (fun (_m, sess) ->
      transmit t sess ~typ:typ_data
        { pk_conv = cv.conv_id; pk_id = id; pk_ctx = ctx; pk_body = msg })
    cv.sessions;
  id

let on_deliver cv f = cv.callback <- Some f
let delivered cv = Stats.get cv.cv.stats "delivered"
let blocked cv = List.length cv.waiting

let create ~host ~lower ?(proto_num = 97) () =
  let p = Proto.create ~host ~name:"PSYNC" () in
  let t =
    { host; lower; proto_num; p; convs = Hashtbl.create 4; stats = Proto.stats p }
  in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "Psync: use join/send");
      open_enable = (fun ~upper:_ _ -> invalid_arg "Psync: use join");
      open_done = (fun ~upper:_ _ -> invalid_arg "Psync: use join");
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control =
        (fun req ->
          match req with
          (* Psync accommodates messages of up to 16 KB (section 3.2);
             it relies on the bulk-transfer layer below. *)
          | Control.Get_max_msg_size ->
              Proto.control t.lower Control.Get_max_msg_size
          | req -> Stats.control t.stats req);
    };
  Proto.open_enable lower ~upper:p
    (Part.v ~local:[ Part.Ip_proto proto_num ] ());
  Proto.declare_below p [ lower ];
  t
