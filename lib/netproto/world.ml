open Xkernel

type node = {
  host : Host.t;
  dev : Netdev.t;
  eth : Eth.t;
  arp : Arp.t;
  ip : Ip.t;
  vip : Vip.t;
  vip_addr : Vip_addr.t;
}

type t = { sim : Sim.t; wire : Wire.t; nodes : node array }

let eth_base = 0x08_00_20_00_00_00

let make_node sim wire ~name ~ip_addr ~eth_addr ~profile ~gateway =
  let host =
    Host.create sim ~name ~ip:ip_addr ~eth:(Addr.Eth.v eth_addr) ~profile ()
  in
  let dev = Netdev.create ~host ~wire in
  let eth = Eth.create ~host ~dev in
  let arp = Arp.create ~host ~eth in
  let ip = Ip.create_simple ~host ~eth ~arp ?gateway () in
  let vip = Vip.create ~host ~eth ~ip ~arp () in
  let vip_addr = Vip_addr.create ~host ~eth ~ip ~arp in
  { host; dev; eth; arp; ip; vip; vip_addr }

let create_net sim wire ~net_prefix ~count ~profile ~gateway ~eth_off =
  let nodes =
    Array.init count (fun i ->
        make_node sim wire
          ~name:(Printf.sprintf "h%d.%d" net_prefix i)
          ~ip_addr:(Addr.Ip.v 10 0 net_prefix (i + 1))
          ~eth_addr:(eth_base + (net_prefix * 256) + eth_off + i)
          ~profile ~gateway)
  in
  { sim; wire; nodes }

let create ?max_events ?(n = 2) ?(profile = Machine.xkernel_sun3) ?(seed = 42)
    () =
  let sim = Sim.create ?max_events ~seed () in
  let wire = Wire.create sim ~seed () in
  create_net sim wire ~net_prefix:0 ~count:n ~profile ~gateway:None ~eth_off:0

type fanin = { fan : t; server : node; clients : node array }

let create_fanin ?max_events ?(clients = 4) ?profile ?seed () =
  if clients < 1 then invalid_arg "World.create_fanin: clients < 1";
  let t = create ?max_events ~n:(clients + 1) ?profile ?seed () in
  {
    fan = t;
    server = t.nodes.(0);
    clients = Array.sub t.nodes 1 clients;
  }

type fanout = { fo : t; servers : node array; fo_clients : node array }

(* Servers occupy node (and device) indices 0 .. servers-1, so a chaos
   plan targeting replica k is simply [Crash k] against {!devices}. *)
let create_fanout ?max_events ?(clients = 4) ?(servers = 2) ?profile ?seed () =
  if clients < 1 then invalid_arg "World.create_fanout: clients < 1";
  if servers < 1 then invalid_arg "World.create_fanout: servers < 1";
  let t = create ?max_events ~n:(servers + clients) ?profile ?seed () in
  {
    fo = t;
    servers = Array.sub t.nodes 0 servers;
    fo_clients = Array.sub t.nodes servers clients;
  }

let devices t = Array.map (fun n -> n.dev) t.nodes

let node t i = t.nodes.(i)
let ip_of t i = (node t i).host.Host.ip
let run ?until t = Sim.run ?until t.sim
let spawn t f = Sim.spawn t.sim f

type internet = {
  inet_sim : Sim.t;
  west : t;
  east : t;
  router : node * node;
}

let create_internet ?(profile = Machine.xkernel_sun3) ?(seed = 42) () =
  let sim = Sim.create ~seed () in
  let wire_w = Wire.create sim ~seed () in
  let wire_e = Wire.create sim ~seed:(seed + 1) () in
  let gw_w = Addr.Ip.v 10 0 0 254 and gw_e = Addr.Ip.v 10 0 1 254 in
  let west =
    create_net sim wire_w ~net_prefix:0 ~count:2 ~profile
      ~gateway:(Some gw_w) ~eth_off:0
  in
  let east =
    create_net sim wire_e ~net_prefix:1 ~count:2 ~profile
      ~gateway:(Some gw_e) ~eth_off:0
  in
  (* The router is one box with an interface (and therefore a host
     record carrying the interface address) on each wire; a single
     forwarding IP instance spans both. *)
  let rw_host =
    Host.create sim ~name:"router.w" ~ip:gw_w
      ~eth:(Addr.Eth.v (eth_base + 0xf0))
      ~profile ()
  in
  let re_host =
    Host.create sim ~name:"router.e" ~ip:gw_e
      ~eth:(Addr.Eth.v (eth_base + 0xf1))
      ~profile ()
  in
  let mk_iface host wire =
    let dev = Netdev.create ~host ~wire in
    let eth = Eth.create ~host ~dev in
    let arp = Arp.create ~host ~eth in
    (dev, eth, arp)
  in
  let dev_w, eth_w, arp_w = mk_iface rw_host wire_w in
  let dev_e, eth_e, arp_e = mk_iface re_host wire_e in
  let router_ip =
    Ip.create ~host:rw_host
      ~ifaces:
        [
          { Ip.if_ip = gw_w; if_eth = eth_w; if_arp = arp_w };
          { Ip.if_ip = gw_e; if_eth = eth_e; if_arp = arp_e };
        ]
      ~forward:true ()
  in
  let mk_router_node host dev eth arp =
    let vip = Vip.create ~host ~eth ~ip:router_ip ~arp () in
    let vip_addr = Vip_addr.create ~host ~eth ~ip:router_ip ~arp in
    { host; dev; eth; arp; ip = router_ip; vip; vip_addr }
  in
  {
    inet_sim = sim;
    west;
    east;
    router =
      ( mk_router_node rw_host dev_w eth_w arp_w,
        mk_router_node re_host dev_e eth_e arp_e );
  }

type port = {
  pt_host : Host.t;
  pt_dev : Netdev.t;
  pt_eth : Eth.t;
  pt_arp : Arp.t;
  pt_wire : Wire.t;
  pt_label : string;
}

type switched = { sw : fanout; sw_ip : Ip.t; sw_ports : port array }

(* The switch generalizes [create_internet]'s two-interface router to N
   ports: one host record per port (carrying that port's gateway
   address, which is what its ARP answers for and what its device
   filters on), and a single forwarding IP instance spanning all of
   them.  Per-port receive and transmit costs charge per-port engines;
   IP-level work — routing, and any in-network computation installed via
   [Ip.set_forward_hook] — charges port 0's engine, the fabric CPU. *)
let create_switched ?max_events ?(clients = 4) ?(servers = 1)
    ?(profile = Machine.xkernel_sun3)
    ?(switch_profile = Machine.switch_fabric) ?(seed = 42) () =
  if clients < 1 then invalid_arg "World.create_switched: clients < 1";
  if servers < 1 then invalid_arg "World.create_switched: servers < 1";
  let n = servers + clients in
  (* Each port is its own 10.0.<i>.x network; the prefix byte bounds N. *)
  if n > 200 then invalid_arg "World.create_switched: too many hosts";
  let sim = Sim.create ?max_events ~seed () in
  let label i =
    if i < servers then Printf.sprintf "s%d" i
    else Printf.sprintf "c%d" (i - servers)
  in
  let wires =
    Array.init n (fun i -> Wire.create sim ~seed:(seed + i) ~label:(label i) ())
  in
  let gw i = Addr.Ip.v 10 0 i 254 in
  let nodes =
    Array.init n (fun i ->
        (create_net sim wires.(i) ~net_prefix:i ~count:1 ~profile
           ~gateway:(Some (gw i)) ~eth_off:0)
          .nodes.(0))
  in
  let ports =
    Array.init n (fun i ->
        let pt_host =
          Host.create sim
            ~name:(Printf.sprintf "switch.p%d" i)
            ~ip:(gw i)
            ~eth:(Addr.Eth.v (eth_base + 0xff0000 + i))
            ~profile:switch_profile ()
        in
        let pt_dev = Netdev.create ~host:pt_host ~wire:wires.(i) in
        let pt_eth = Eth.create ~host:pt_host ~dev:pt_dev in
        let pt_arp = Arp.create ~host:pt_host ~eth:pt_eth in
        {
          pt_host;
          pt_dev;
          pt_eth;
          pt_arp;
          pt_wire = wires.(i);
          pt_label = label i;
        })
  in
  let sw_ip =
    Ip.create ~host:ports.(0).pt_host
      ~ifaces:
        (Array.to_list
           (Array.map
              (fun p ->
                {
                  Ip.if_ip = p.pt_host.Host.ip;
                  if_eth = p.pt_eth;
                  if_arp = p.pt_arp;
                })
              ports))
      ~forward:true ()
  in
  (* [t.wire] must name one wire; server 0's access link is the one a
     single-wire experiment most often watches. *)
  let t = { sim; wire = wires.(0); nodes } in
  {
    sw =
      {
        fo = t;
        servers = Array.sub nodes 0 servers;
        fo_clients = Array.sub nodes servers clients;
      };
    sw_ip;
    sw_ports = ports;
  }

let switched_wires sw =
  Array.to_list (Array.map (fun p -> (p.pt_label, p.pt_wire)) sw.sw_ports)

let switch_machines sw = Array.map (fun p -> p.pt_host.Host.mach) sw.sw_ports

let port_wire sw ~label =
  match
    Array.find_opt (fun p -> String.equal p.pt_label label) sw.sw_ports
  with
  | Some p -> p.pt_wire
  | None -> invalid_arg (Printf.sprintf "World.port_wire: no port %S" label)
