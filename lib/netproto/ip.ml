open Xkernel

let header_bytes = 20
let max_packet = 65535 - header_bytes
let reasm_timeout = 1.0
let flag_mf = 0x2000

type iface = { if_ip : Addr.Ip.t; if_eth : Eth.t; if_arp : Arp.t }

(* Why a datagram could not be delivered; reported to the error hook
   (ICMP) together with the offending header + 8 payload bytes. *)
type delivery_error = Ttl_exceeded | Proto_unreachable

type header = {
  totlen : int;
  ident : int;
  mf : bool;
  frag_off : int; (* bytes *)
  ttl : int;
  proto_num : int;
  src : Addr.Ip.t;
  dst : Addr.Ip.t;
}

type reasm = {
  mutable pieces : (int * Msg.t) list; (* (offset, data) *)
  mutable total : int option; (* known once the last fragment arrives *)
  mutable timer : Event.t option;
}

type t = {
  host : Host.t;
  ifaces : iface list;
  gateway : Addr.Ip.t option;
  forward : bool;
  mutable ttl_default : int;
  p : Proto.t;
  sessions : (int * int, Proto.session) Hashtbl.t; (* (peer, proto) *)
  enabled : (int, Proto.t) Hashtbl.t;
  eth_cache : (Addr.Ip.t, Proto.session) Hashtbl.t; (* next hop -> eth sess *)
  reassembly : (int * int, reasm) Hashtbl.t; (* (src, ident) *)
  mutable next_ident : int;
  mutable error_hook :
    (src:Addr.Ip.t -> delivery_error -> Msg.t -> unit) option;
  mutable forward_hook :
    (src:Addr.Ip.t -> dst:Addr.Ip.t -> proto_num:int -> Msg.t -> bool) option;
  stats : Stats.t;
}

let proto t = t.p
let set_error_hook t f = t.error_hook <- Some f
let set_forward_hook t f = t.forward_hook <- f


let encode_header h =
  let w = Codec.W.create ~size:header_bytes () in
  Codec.W.u8 w 0x45;
  Codec.W.u8 w 0;
  Codec.W.u16 w h.totlen;
  Codec.W.u16 w h.ident;
  Codec.W.u16 w ((if h.mf then flag_mf else 0) lor (h.frag_off / 8));
  Codec.W.u8 w h.ttl;
  Codec.W.u8 w h.proto_num;
  Codec.W.u16 w 0;
  Codec.W.u32 w (Addr.Ip.to_int h.src);
  Codec.W.u32 w (Addr.Ip.to_int h.dst);
  let raw = Codec.W.contents w in
  let cksum = Codec.ip_checksum raw in
  let b = Bytes.of_string raw in
  Bytes.set_uint8 b 10 (cksum lsr 8);
  Bytes.set_uint8 b 11 (cksum land 0xff);
  Bytes.to_string b

let decode_header s =
  let r = Codec.R.of_string s in
  let ver_ihl = Codec.R.u8 r in
  if ver_ihl <> 0x45 then None
  else begin
    let _tos = Codec.R.u8 r in
    let totlen = Codec.R.u16 r in
    let ident = Codec.R.u16 r in
    let flags_off = Codec.R.u16 r in
    let ttl = Codec.R.u8 r in
    let proto_num = Codec.R.u8 r in
    let _cksum = Codec.R.u16 r in
    let src = Addr.Ip.of_int32_bits (Codec.R.u32 r) in
    let dst = Addr.Ip.of_int32_bits (Codec.R.u32 r) in
    if Codec.ones_complement_sum s <> 0xffff then None
    else
      Some
        {
          totlen;
          ident;
          mf = flags_off land flag_mf <> 0;
          frag_off = (flags_off land 0x1fff) * 8;
          ttl;
          proto_num;
          src;
          dst;
        }
  end

let report_error t h payload err =
  match t.error_hook with
  | Some hook when h.proto_num <> 1 && not (Addr.Ip.equal h.src Addr.Ip.any) ->
      let quote =
        Msg.push
          (Msg.sub payload 0 (min 8 (Msg.length payload)))
          (encode_header h)
      in
      hook ~src:h.src err quote
  | _ -> ()

(* Routing: a destination on one of our interface networks is reached
   directly; anything else goes to the gateway. *)
let route t dst =
  let local =
    List.find_opt (fun i -> Addr.Ip.same_network i.if_ip dst) t.ifaces
  in
  match local with
  | Some iface -> Some (iface, dst)
  | None -> (
      match t.gateway with
      | None -> None
      | Some gw -> (
          match
            List.find_opt (fun i -> Addr.Ip.same_network i.if_ip gw) t.ifaces
          with
          | Some iface -> Some (iface, gw)
          | None -> None))

let eth_session t iface next_hop =
  match Hashtbl.find_opt t.eth_cache next_hop with
  | Some s -> Some s
  | None -> (
      match Arp.resolve iface.if_arp next_hop with
      | None -> None
      | Some peer_eth ->
          let part =
            Part.v
              ~local:
                [ Part.Eth t.host.Host.eth; Part.Eth_type Addr.eth_type_ip ]
              ~remotes:[ [ Part.Eth peer_eth ] ]
              ()
          in
          let s = Proto.open_ (Eth.proto iface.if_eth) ~upper:t.p part in
          Hashtbl.replace t.eth_cache next_hop s;
          Some s)

let lower_payload _t iface =
  let mtu = Control.int_exn (Proto.control (Eth.proto iface.if_eth) Get_mtu) in
  mtu - header_bytes

(* Emit one datagram (fragmenting as needed) toward [dst]. *)
let send_datagram t ~src ~dst ~proto_num ~ttl msg =
  Trace.packet (Host.sim t.host) ~host:t.host.Host.name ~proto:"IP"
    ~dir:`Send msg;
  Machine.charge_one t.host.Host.mach (Machine.Route_lookup);
  match route t dst with
  | None -> Stats.incr t.stats "no-route"
  | Some (iface, next_hop) -> (
      match eth_session t iface next_hop with
      | None -> Stats.incr t.stats "arp-fail"
      | Some eth_sess ->
          let payload_max = lower_payload t iface in
          (* Fragment offsets must be multiples of 8. *)
          let chunk = payload_max - (payload_max mod 8) in
          let len = Msg.length msg in
          let ident = t.next_ident in
          t.next_ident <- (t.next_ident + 1) land 0xffff;
          let rec emit off =
            let remaining = len - off in
            let this = min chunk remaining in
            let mf = off + this < len in
            let piece = Msg.sub msg off this in
            let hdr =
              encode_header
                {
                  totlen = header_bytes + this;
                  ident;
                  mf;
                  frag_off = off;
                  ttl;
                  proto_num;
                  src;
                  dst;
                }
            in
            Machine.charge t.host.Host.mach
              [ Machine.Header header_bytes; Machine.Checksum header_bytes ];
            Stats.incr t.stats (if mf || off > 0 then "tx-frag" else "tx");
            Proto.push eth_sess (Msg.push piece hdr);
            if mf then emit (off + this)
          in
          if len > max_packet then Stats.incr t.stats "too-big" else emit 0)

(* Emit a datagram from the forwarding path with an explicit source
   address — an in-network layer answering on another host's behalf. *)
let inject t ~src ~dst ~proto_num msg =
  send_datagram t ~src ~dst ~proto_num ~ttl:t.ttl_default msg

let session_key ~peer ~proto_num = (Addr.Ip.to_int peer, proto_num)

let make_session t ~upper ~peer ~proto_num =
  let cell = ref None in
  let self () = Option.get !cell in
  let push msg =
    send_datagram t ~src:t.host.Host.ip ~dst:peer ~proto_num
      ~ttl:t.ttl_default msg
  in
  let pop msg = Proto.deliver upper ~lower:(self ()) msg in
  let s_control = function
    | Control.Get_peer_host -> Control.R_ip peer
    | Control.Get_my_host -> Control.R_ip t.host.Host.ip
    | Control.Get_peer_proto | Control.Get_my_proto -> Control.R_int proto_num
    | Control.Get_max_packet -> Control.R_int max_packet
    | Control.Get_opt_packet | Control.Get_mtu ->
        Control.R_int (lower_payload t (List.hd t.ifaces))
    | req -> Stats.control t.stats req
  in
  let close () = Hashtbl.remove t.sessions (session_key ~peer ~proto_num) in
  let xs =
    Proto.make_session t.p
      ~name:(Printf.sprintf "ip(%s,%d)" (Addr.Ip.to_string peer) proto_num)
      { push; pop; s_control; close }
  in
  cell := Some xs;
  Hashtbl.replace t.sessions (session_key ~peer ~proto_num) xs;
  xs

let open_session t ~upper part =
  let peer_part = Part.peer part in
  let peer =
    match Part.find_ip peer_part with
    | Some ip -> ip
    | None -> invalid_arg "Ip.open_: peer has no IP address"
  in
  let proto_num =
    match
      (Part.find_ip_proto peer_part, Part.find_ip_proto part.Part.local)
    with
    | Some n, _ | None, Some n -> n
    | None, None -> invalid_arg "Ip.open_: no IP protocol number"
  in
  match Hashtbl.find_opt t.sessions (session_key ~peer ~proto_num) with
  | Some s -> s
  | None -> make_session t ~upper ~peer ~proto_num

let deliver_up t ~src ~dst ~proto_num ~ttl msg =
  Trace.packet (Host.sim t.host) ~host:t.host.Host.name ~proto:"IP"
    ~dir:`Recv msg;
  match Hashtbl.find_opt t.sessions (session_key ~peer:src ~proto_num) with
  | Some xs -> Proto.pop xs msg
  | None -> (
      match Hashtbl.find_opt t.enabled proto_num with
      | Some upper ->
          let xs = make_session t ~upper ~peer:src ~proto_num in
          Proto.pop xs msg
      | None ->
          Stats.incr t.stats "rx-unbound";
          report_error t
            {
              totlen = header_bytes + Msg.length msg;
              ident = 0;
              mf = false;
              frag_off = 0;
              ttl;
              proto_num;
              src;
              dst;
            }
            msg Proto_unreachable)

(* Reassembly: collect (offset, piece) pairs until they cover
   [0, total).  Overlaps from duplicated fragments are tolerated by
   keeping the first piece seen for an offset. *)
let reasm_insert t key entry ~off ~mf piece =
  if not (List.mem_assoc off entry.pieces) then
    entry.pieces <- (off, piece) :: entry.pieces;
  if not mf then entry.total <- Some (off + Msg.length piece);
  match entry.total with
  | None -> None
  | Some total ->
      let sorted =
        List.sort (fun (a, _) (b, _) -> Int.compare a b) entry.pieces
      in
      let rec covered pos = function
        | [] -> pos >= total
        | (off, piece) :: rest ->
            if off > pos then false
            else covered (max pos (off + Msg.length piece)) rest
      in
      if covered 0 sorted then begin
        (match entry.timer with
        | Some timer -> ignore (Event.cancel t.host timer)
        | None -> ());
        Hashtbl.remove t.reassembly key;
        (* Assemble, trimming overlaps. *)
        let body =
          List.fold_left
            (fun acc (off, piece) ->
              let have = Msg.length acc in
              if off >= have then Msg.append acc piece
              else if off + Msg.length piece <= have then acc
              else Msg.append acc (Msg.sub piece (have - off) (Msg.length piece - (have - off))))
            Msg.empty sorted
        in
        Some (Msg.sub body 0 total)
      end
      else None

let input t msg =
  Machine.charge t.host.Host.mach
    [
      Machine.Header header_bytes;
      Machine.Checksum header_bytes;
      Machine.Reasm_lookup;
    ];
  match Msg.pop msg header_bytes with
  | None -> Stats.incr t.stats "rx-runt"
  | Some (hdr_raw, rest) -> (
      match decode_header hdr_raw with
      | None -> Stats.incr t.stats "rx-bad-checksum"
      | Some h -> (
          let payload_len = h.totlen - header_bytes in
          if Msg.length rest < payload_len then Stats.incr t.stats "rx-short"
          else
            let payload = Msg.sub rest 0 payload_len in
            let local_dst =
              List.exists (fun i -> Addr.Ip.equal i.if_ip h.dst) t.ifaces
              || Addr.Ip.equal h.dst Addr.Ip.broadcast
            in
            if not local_dst then begin
              if t.forward && h.ttl <= 1 then begin
                Stats.incr t.stats "ttl-exceeded";
                report_error t h payload Ttl_exceeded
              end
              else if t.forward then begin
                (* A forwarding hook (an in-network computation layer)
                   sees whole datagrams only — a fragment in transit
                   cannot be parsed — and may consume one instead of
                   forwarding it. *)
                if
                  (not h.mf) && h.frag_off = 0
                  && (match t.forward_hook with
                     | Some hook ->
                         hook ~src:h.src ~dst:h.dst ~proto_num:h.proto_num
                           payload
                     | None -> false)
                then Stats.incr t.stats "hook-consumed"
                else begin
                Stats.incr t.stats "forwarded";
                (* Forward the fragment as-is (same ident/offset/MF) so
                   the final destination can still reassemble. *)
                Machine.charge_one t.host.Host.mach (Machine.Route_lookup);
                match route t h.dst with
                | None -> Stats.incr t.stats "no-route"
                | Some (iface, next_hop) -> (
                    match eth_session t iface next_hop with
                    | None -> Stats.incr t.stats "arp-fail"
                    | Some eth_sess ->
                        let hdr = encode_header { h with ttl = h.ttl - 1 } in
                        Machine.charge t.host.Host.mach
                          [
                            Machine.Header header_bytes;
                            Machine.Checksum header_bytes;
                          ];
                        Proto.push eth_sess (Msg.push payload hdr))
                end
              end
              else Stats.incr t.stats "rx-not-mine"
            end
            else if (not h.mf) && h.frag_off = 0 then begin
              Stats.incr t.stats "rx";
              deliver_up t ~src:h.src ~dst:h.dst ~proto_num:h.proto_num
                ~ttl:h.ttl payload
            end
            else begin
              Stats.incr t.stats "rx-frag";
              let key = (Addr.Ip.to_int h.src, h.ident) in
              let entry =
                match Hashtbl.find_opt t.reassembly key with
                | Some e -> e
                | None ->
                    (* Insert before scheduling the GC timer: scheduling
                       charges (and so yields), and a concurrent shepherd
                       carrying the next fragment must find this entry. *)
                    let e = { pieces = []; total = None; timer = None } in
                    Hashtbl.replace t.reassembly key e;
                    e.timer <-
                      Some
                        (Event.schedule t.host reasm_timeout (fun () ->
                             if Hashtbl.mem t.reassembly key then begin
                               Hashtbl.remove t.reassembly key;
                               Stats.incr t.stats "reasm-timeout"
                             end));
                    e
              in
              match
                reasm_insert t key entry ~off:h.frag_off ~mf:h.mf payload
              with
              | None -> ()
              | Some whole ->
                  Stats.incr t.stats "rx";
                  deliver_up t ~src:h.src ~dst:h.dst ~proto_num:h.proto_num
                    ~ttl:h.ttl whole
            end))

let create ~host ~ifaces ?gateway ?(forward = false) ?(ttl = 32) () =
  if ifaces = [] then invalid_arg "Ip.create: no interfaces";
  let p = Proto.create ~host ~name:"IP" () in
  let t =
    {
      host;
      ifaces;
      gateway;
      forward;
      ttl_default = ttl;
      p;
      sessions = Hashtbl.create 16;
      enabled = Hashtbl.create 16;
      eth_cache = Hashtbl.create 16;
      reassembly = Hashtbl.create 16;
      next_ident = 1;
      error_hook = None;
      forward_hook = None;
      stats = Proto.stats p;
    }
  in
  let ops =
    {
      Proto.open_ = (fun ~upper part -> open_session t ~upper part);
      open_enable =
        (fun ~upper part ->
          match Part.find_ip_proto part.Part.local with
          | Some n -> Hashtbl.replace t.enabled n upper
          | None -> invalid_arg "Ip.open_enable: no IP protocol number");
      open_done = (fun ~upper part -> open_session t ~upper part);
      demux = (fun ~lower:_ msg -> input t msg);
      p_control =
        (fun req ->
          match req with
          | Control.Get_max_packet -> Control.R_int max_packet
          | Control.Get_opt_packet | Control.Get_mtu ->
              Control.R_int (lower_payload t (List.hd t.ifaces))
          | Control.Get_my_host -> Control.R_ip host.Host.ip
          | Control.Get_ttl -> Control.R_int t.ttl_default
          | Control.Set_ttl n ->
              if n < 1 || n > 255 then Control.Unsupported
              else begin
                t.ttl_default <- n;
                Control.R_unit
              end
          | req -> Stats.control t.stats req);
    }
  in
  Proto.set_ops p ops;
  List.iter
    (fun iface ->
      Proto.open_enable (Eth.proto iface.if_eth) ~upper:p
        (Part.v ~local:[ Part.Eth_type Addr.eth_type_ip ] ()))
    ifaces;
  Proto.declare_below p (List.map (fun i -> Eth.proto i.if_eth) ifaces);
  t

let create_simple ~host ~eth ~arp ?gateway () =
  create ~host
    ~ifaces:[ { if_ip = host.Host.ip; if_eth = eth; if_arp = arp } ]
    ?gateway ()
