open Xkernel

let mtu = 1500
let header_bytes = Netdev.eth_header_bytes (* 14 *)

type t = {
  host : Host.t;
  dev : Netdev.t;
  p : Proto.t;
  (* Active and passively-created sessions, keyed (peer, type). *)
  sessions : (int * int, Proto.session) Hashtbl.t;
  (* open_enable registrations: type -> upper protocol. *)
  enabled : (int, Proto.t) Hashtbl.t;
  stats : Stats.t;
}

let proto t = t.p

let encode_header ~dst ~src ~typ =
  let w = Codec.W.create ~size:header_bytes () in
  Codec.W.u48 w (Addr.Eth.to_int dst);
  Codec.W.u48 w (Addr.Eth.to_int src);
  Codec.W.u16 w typ;
  Codec.W.contents w

let decode_header hdr =
  let r = Codec.R.of_string hdr in
  let dst = Addr.Eth.v (Codec.R.u48 r) in
  let src = Addr.Eth.v (Codec.R.u48 r) in
  let typ = Codec.R.u16 r in
  (dst, src, typ)

let session_key ~peer ~typ = (Addr.Eth.to_int peer, typ)

let common_control t = function
  | Control.Get_mtu | Control.Get_max_packet | Control.Get_opt_packet ->
      Control.R_int mtu
  | Control.Get_my_eth -> Control.R_eth t.host.Host.eth
  | req -> Stats.control t.stats req

let make_session t ~upper ~peer ~typ =
  let cell = ref None in
  let self () = Option.get !cell in
  let push msg =
    Stats.incr t.stats "tx";
    Trace.packet (Host.sim t.host) ~host:t.host.Host.name ~proto:"ETH"
      ~dir:`Send msg;
    Machine.charge_one t.host.Host.mach (Machine.Header header_bytes);
    let hdr = encode_header ~dst:peer ~src:t.host.Host.eth ~typ in
    Netdev.transmit t.dev (Msg.push msg hdr)
  in
  let pop msg = Proto.deliver upper ~lower:(self ()) msg in
  let s_control = function
    | Control.Get_peer_eth -> Control.R_eth peer
    | Control.Get_peer_proto -> Control.R_int typ
    | req -> common_control t req
  in
  let close () = Hashtbl.remove t.sessions (session_key ~peer ~typ) in
  let xs =
    Proto.make_session t.p
      ~name:(Printf.sprintf "eth(%s,0x%04x)" (Addr.Eth.to_string peer) typ)
      { push; pop; s_control; close }
  in
  cell := Some xs;
  Hashtbl.replace t.sessions (session_key ~peer ~typ) xs;
  xs

let open_session t ~upper part =
  let peer_part = Part.peer part in
  let peer =
    match Part.find_eth peer_part with
    | Some e -> e
    | None -> invalid_arg "Eth.open_: peer has no ethernet address"
  in
  let typ =
    match
      (Part.find_eth_type peer_part, Part.find_eth_type part.Part.local)
    with
    | Some ty, _ | None, Some ty -> ty
    | None, None -> invalid_arg "Eth.open_: no ethernet type"
  in
  match Hashtbl.find_opt t.sessions (session_key ~peer ~typ) with
  | Some xs -> xs
  | None -> make_session t ~upper ~peer ~typ

(* Shared receive path; the layer crossing itself is charged by the
   caller (device handler or Proto.deliver). *)
let input t msg =
  Machine.charge_one t.host.Host.mach (Machine.Header header_bytes);
  match Msg.pop msg header_bytes with
  | None -> Stats.incr t.stats "rx-runt"
  | Some (hdr, rest) -> (
      let dst, src, typ = decode_header hdr in
      let for_me =
        Addr.Eth.equal dst t.host.Host.eth || Addr.Eth.is_broadcast dst
      in
      if not for_me then Stats.incr t.stats "rx-other"
      else begin
        Stats.incr t.stats "rx";
        Trace.packet (Host.sim t.host) ~host:t.host.Host.name ~proto:"ETH"
          ~dir:`Recv rest;
        match Hashtbl.find_opt t.sessions (session_key ~peer:src ~typ) with
        | Some xs -> Proto.pop xs rest
        | None -> (
            match Hashtbl.find_opt t.enabled typ with
            | Some upper ->
                let xs = make_session t ~upper ~peer:src ~typ in
                Proto.pop xs rest
            | None -> Stats.incr t.stats "rx-unbound")
      end)

let create ~host ~dev =
  let p = Proto.create ~host ~name:"ETH" () in
  let t =
    {
      host;
      dev;
      p;
      sessions = Hashtbl.create 16;
      enabled = Hashtbl.create 16;
      stats = Proto.stats p;
    }
  in
  let ops =
    {
      Proto.open_ = (fun ~upper part -> open_session t ~upper part);
      open_enable =
        (fun ~upper part ->
          match Part.find_eth_type part.Part.local with
          | Some typ -> Hashtbl.replace t.enabled typ upper
          | None -> invalid_arg "Eth.open_enable: no ethernet type");
      open_done = (fun ~upper part -> open_session t ~upper part);
      demux = (fun ~lower:_ msg -> input t msg);
      p_control = (fun req -> common_control t req);
    }
  in
  Proto.set_ops p ops;
  Netdev.set_handler dev (fun frame ->
      Machine.charge_one host.Host.mach (Machine.Layer_crossing);
      input t frame);
  t
