open Xkernel

type t = {
  host : Host.t;
  eth : Eth.t;
  ip : Ip.t;
  arp : Arp.t;
  p : Proto.t;
  stats : Stats.t;
}

let proto t = t.p

let peer_and_proto part =
  let peer_part = Part.peer part in
  let peer_ip =
    match Part.find_ip peer_part with
    | Some ip -> ip
    | None -> invalid_arg "Vip_addr.open_: peer has no IP address"
  in
  let proto_num =
    match
      (Part.find_ip_proto peer_part, Part.find_ip_proto part.Part.local)
    with
    | Some n, _ | None, Some n -> n
    | None, None -> invalid_arg "Vip_addr.open_: no IP protocol number"
  in
  (peer_ip, proto_num)

(* The whole protocol is this one decision, made once per open; the
   session handed back belongs to ETH or IP, so no VIPaddr code runs on
   the message path. *)
let open_session t ~upper part =
  let peer_ip, proto_num = peer_and_proto part in
  match Arp.resolve t.arp peer_ip with
  | Some peer_eth when not (Addr.Eth.is_broadcast peer_eth) ->
      Stats.incr t.stats "open-eth";
      Proto.open_ (Eth.proto t.eth) ~upper
        (Part.v
           ~local:
             [
               Part.Eth t.host.Host.eth;
               Part.Eth_type (Addr.eth_type_of_ip_proto proto_num);
             ]
           ~remotes:[ [ Part.Eth peer_eth ] ]
           ())
  | _ ->
      Stats.incr t.stats "open-ip";
      Proto.open_ (Ip.proto t.ip) ~upper
        (Part.v
           ~local:[ Part.Ip t.host.Host.ip; Part.Ip_proto proto_num ]
           ~remotes:[ [ Part.Ip peer_ip; Part.Ip_proto proto_num ] ]
           ())

let create ~host ~eth ~ip ~arp =
  let p = Proto.create ~host ~name:"VIPaddr" ~virtual_:true () in
  let t = { host; eth; ip; arp; p; stats = Proto.stats p } in
  let ops =
    {
      Proto.open_ = (fun ~upper part -> open_session t ~upper part);
      open_enable =
        (fun ~upper part ->
          match Part.find_ip_proto part.Part.local with
          | None -> invalid_arg "Vip_addr.open_enable: no IP protocol number"
          | Some proto_num ->
              Proto.open_enable (Eth.proto t.eth) ~upper
                (Part.v
                   ~local:
                     [ Part.Eth_type (Addr.eth_type_of_ip_proto proto_num) ]
                   ());
              Proto.open_enable (Ip.proto t.ip) ~upper
                (Part.v ~local:[ Part.Ip_proto proto_num ] ()));
      open_done = (fun ~upper part -> open_session t ~upper part);
      demux =
        (fun ~lower:_ _ ->
          (* Nothing ever registers VIPaddr as an upper protocol. *)
          Stats.incr t.stats "rx-unexpected");
      p_control =
        (fun req ->
          match req with
          | Control.Get_max_packet -> Control.R_int Ip.max_packet
          | Control.Get_opt_packet | Control.Get_mtu ->
              Proto.control (Eth.proto t.eth) Control.Get_mtu
          | Control.Get_my_host -> Control.R_ip host.Host.ip
          | req -> Stats.control t.stats req);
    }
  in
  Proto.set_ops p ops;
  Proto.declare_below p [ Eth.proto eth; Ip.proto ip ];
  t
