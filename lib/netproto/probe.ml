open Xkernel

let header_bytes = 5
let kind_request = 1
let kind_reply = 2

type t = {
  host : Host.t;
  lower : Proto.t;
  proto_num : int;
  max_msg : int;
  port : int option;
  user_level : bool;
  p : Proto.t;
  sessions : (int, Proto.session) Hashtbl.t; (* peer ip *)
  pending : (int, Msg.t Sim.Ivar.ivar) Hashtbl.t; (* seq *)
  mutable next_seq : int;
  stats : Stats.t;
}

(* User-to-user measurements cross the user/kernel boundary once per
   message in each direction (the paper's intro comparison); the
   kernel-to-kernel experiments of section 4 skip this. *)
let boundary t =
  if t.user_level then
    Machine.charge t.host.Host.mach [ Machine.Syscall; Machine.Os_per_message ]

let proto t = t.p

let encode ~kind ~seq =
  let w = Codec.W.create ~size:header_bytes () in
  Codec.W.u8 w kind;
  Codec.W.u32 w seq;
  Codec.W.contents w

let decode s =
  let r = Codec.R.of_string s in
  let kind = Codec.R.u8 r in
  let seq = Codec.R.u32 r in
  (kind, seq)

let with_port t comps =
  match t.port with Some p -> Part.Port p :: comps | None -> comps

let session_for t ~peer =
  match Hashtbl.find_opt t.sessions (Addr.Ip.to_int peer) with
  | Some s -> s
  | None ->
      let part =
        Part.v
          ~local:
            (with_port t [ Part.Ip t.host.Host.ip; Part.Ip_proto t.proto_num ])
          ~remotes:
            [ with_port t [ Part.Ip peer; Part.Ip_proto t.proto_num ] ]
          ()
      in
      let s = Proto.open_ t.lower ~upper:t.p part in
      Hashtbl.replace t.sessions (Addr.Ip.to_int peer) s;
      s

let send t sess ~kind ~seq payload =
  Machine.charge t.host.Host.mach
    [ Machine.Layer_crossing; Machine.Header header_bytes ];
  Proto.push sess (Msg.push payload (encode ~kind ~seq))

let rtt t ~peer ?(size = 0) ?(timeout = 1.0) () =
  let sess = session_for t ~peer in
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  let iv = Sim.Ivar.create (Host.sim t.host) in
  Hashtbl.replace t.pending seq iv;
  let t0 = Sim.now (Host.sim t.host) in
  Stats.incr t.stats "tx";
  boundary t;
  send t sess ~kind:kind_request ~seq (Msg.fill size 'p');
  let result = Sim.Ivar.read_timeout iv timeout in
  Hashtbl.remove t.pending seq;
  match result with
  | Some _ ->
      boundary t;
      Some (Sim.now (Host.sim t.host) -. t0)
  | None -> None

let input t ~lower msg =
  Machine.charge_one t.host.Host.mach (Machine.Header header_bytes);
  match Msg.pop msg header_bytes with
  | None -> Stats.incr t.stats "rx-runt"
  | Some (hdr, rest) ->
      let kind, seq = decode hdr in
      if kind = kind_request then begin
        Stats.incr t.stats "echoed";
        boundary t;
        boundary t;
        (* Echo straight back through the session the request arrived
           on — sessions are bidirectional endpoints. *)
        Machine.charge_one t.host.Host.mach (Machine.Header header_bytes);
        Proto.push lower (Msg.push rest (encode ~kind:kind_reply ~seq))
      end
      else begin
        match Hashtbl.find_opt t.pending seq with
        | Some iv when not (Sim.Ivar.is_filled iv) ->
            Stats.incr t.stats "rx";
            Sim.Ivar.fill iv rest
        | _ -> Stats.incr t.stats "rx-stale"
      end

let create ~host ~lower ?(proto_num = 200) ?(max_msg = 1480) ?port
    ?(user_level = false) () =
  let p = Proto.create ~host ~name:"PROBE" () in
  let t =
    {
      host;
      lower;
      proto_num;
      max_msg;
      port;
      user_level;
      p;
      sessions = Hashtbl.create 4;
      pending = Hashtbl.create 8;
      next_seq = 1;
      stats = Proto.stats p;
    }
  in
  let no_sessions _ = invalid_arg "Probe has no upper sessions" in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ part -> no_sessions part);
      open_enable = (fun ~upper:_ _ -> invalid_arg "Probe: open_enable");
      open_done = (fun ~upper:_ part -> no_sessions part);
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control =
        (fun req ->
          match req with
          | Control.Get_max_msg_size -> Control.R_int t.max_msg
          | req -> Stats.control t.stats req);
    };
  Proto.declare_below p [ lower ];
  t

let serve t =
  Proto.open_enable t.lower ~upper:t.p
    (Part.v ~local:(with_port t [ Part.Ip_proto t.proto_num ]) ())

let echoes t = Stats.get t.stats "echoed"
