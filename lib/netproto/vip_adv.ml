open Xkernel

let eth_type_vip_adv = 0x4101 (* just past VIP's mapped range *)
let op_beacon = 1
let op_query = 2
let version = 1
let packet_bytes = 6

type t = {
  host : Host.t;
  eth : Eth.t;
  p : Proto.t;
  table : (int, unit) Hashtbl.t; (* advertiser IPs *)
  mutable bcast : Proto.session option;
  stats : Stats.t;
}

let proto t = t.p
let known t = Hashtbl.length t.table

let supports t ip =
  Addr.Ip.equal ip t.host.Host.ip || Hashtbl.mem t.table (Addr.Ip.to_int ip)

let broadcast_session t =
  match t.bcast with
  | Some s -> s
  | None ->
      let s =
        Proto.open_ (Eth.proto t.eth) ~upper:t.p
          (Part.v
             ~local:[ Part.Eth t.host.Host.eth; Part.Eth_type eth_type_vip_adv ]
             ~remotes:[ [ Part.Eth Addr.Eth.broadcast ] ]
             ())
      in
      t.bcast <- Some s;
      s

let send t ~op =
  let w = Codec.W.create ~size:packet_bytes () in
  Codec.W.u8 w op;
  Codec.W.u32 w (Addr.Ip.to_int t.host.Host.ip);
  Codec.W.u8 w version;
  Machine.charge_one t.host.Host.mach (Machine.Header packet_bytes);
  Proto.push (broadcast_session t) (Msg.of_string (Codec.W.contents w))

let advertise t =
  Stats.incr t.stats "beacon-tx";
  send t ~op:op_beacon

let query t =
  Stats.incr t.stats "query-tx";
  send t ~op:op_query

let input t msg =
  Machine.charge_one t.host.Host.mach (Machine.Header packet_bytes);
  match Msg.pop msg packet_bytes with
  | None -> Stats.incr t.stats "rx-runt"
  | Some (raw, _) ->
      let r = Codec.R.of_string raw in
      let op = Codec.R.u8 r in
      let ip = Addr.Ip.of_int32_bits (Codec.R.u32 r) in
      let _version = Codec.R.u8 r in
      if op = op_beacon then begin
        Stats.incr t.stats "beacon-rx";
        if not (Addr.Ip.equal ip t.host.Host.ip) then
          Hashtbl.replace t.table (Addr.Ip.to_int ip) ()
      end
      else if op = op_query then begin
        Stats.incr t.stats "query-rx";
        (* everyone who hears a query re-advertises, and we also learn
           the querier if it beacons *)
        advertise t
      end
      else Stats.incr t.stats "rx-malformed"

let create ~host ~eth =
  let p = Proto.create ~host ~name:"VIP-ADV" () in
  let t =
    { host; eth; p; table = Hashtbl.create 8; bcast = None; stats = Proto.stats p }
  in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "Vip_adv: broadcast only");
      open_enable = (fun ~upper:_ _ -> invalid_arg "Vip_adv: implicit");
      open_done = (fun ~upper:_ _ -> invalid_arg "Vip_adv: broadcast only");
      demux = (fun ~lower:_ msg -> input t msg);
      p_control = (fun req -> Stats.control t.stats req);
    };
  Proto.open_enable (Eth.proto eth) ~upper:p
    (Part.v ~local:[ Part.Eth_type eth_type_vip_adv ] ());
  Proto.declare_below p [ Eth.proto eth ];
  (* announce ourselves as soon as the simulation starts *)
  Sim.spawn (Host.sim host) ~name:(host.Host.name ^ ":vip-adv") (fun () ->
      advertise t);
  t
