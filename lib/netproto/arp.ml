open Xkernel

let op_request = 1
let op_reply = 2
let header_bytes = 21
let retry_timeout = 0.05
let max_tries = 3

type t = {
  host : Host.t;
  eth : Eth.t;
  p : Proto.t;
  table : (Addr.Ip.t, Addr.Eth.t) Hashtbl.t;
  pending : (Addr.Ip.t, Addr.Eth.t Sim.Ivar.ivar list ref) Hashtbl.t;
  mutable bcast : Proto.session option;
  stats : Stats.t;
}

let proto t = t.p

let encode ~op ~sender_ip ~sender_eth ~target_ip ~target_eth =
  let w = Codec.W.create ~size:header_bytes () in
  Codec.W.u8 w op;
  Codec.W.u32 w (Addr.Ip.to_int sender_ip);
  Codec.W.u48 w (Addr.Eth.to_int sender_eth);
  Codec.W.u32 w (Addr.Ip.to_int target_ip);
  Codec.W.u48 w (Addr.Eth.to_int target_eth);
  Codec.W.contents w

let decode s =
  let r = Codec.R.of_string s in
  let op = Codec.R.u8 r in
  let sender_ip = Addr.Ip.of_int32_bits (Codec.R.u32 r) in
  let sender_eth = Addr.Eth.v (Codec.R.u48 r) in
  let target_ip = Addr.Ip.of_int32_bits (Codec.R.u32 r) in
  let target_eth = Addr.Eth.v (Codec.R.u48 r) in
  (op, sender_ip, sender_eth, target_ip, target_eth)

let add_entry t ip eth = Hashtbl.replace t.table ip eth
let cache_size t = Hashtbl.length t.table

let reverse t eth =
  Hashtbl.fold
    (fun ip e acc -> if Addr.Eth.equal e eth then Some ip else acc)
    t.table None

let broadcast_session t =
  match t.bcast with
  | Some s -> s
  | None ->
      let part =
        Part.v
          ~local:[ Part.Eth t.host.Host.eth; Part.Eth_type Addr.eth_type_arp ]
          ~remotes:[ [ Part.Eth Addr.Eth.broadcast ] ]
          ()
      in
      let s = Proto.open_ (Eth.proto t.eth) ~upper:t.p part in
      t.bcast <- Some s;
      s

let send t ~via ~op ~target_ip ~target_eth =
  Machine.charge_one t.host.Host.mach (Machine.Header header_bytes);
  let pkt =
    encode ~op ~sender_ip:t.host.Host.ip ~sender_eth:t.host.Host.eth
      ~target_ip ~target_eth
  in
  Proto.push via (Msg.of_string pkt)

let resolve t ip =
  if Addr.Ip.equal ip Addr.Ip.broadcast then Some Addr.Eth.broadcast
  else if Addr.Ip.equal ip t.host.Host.ip then Some t.host.Host.eth
  else
    match Hashtbl.find_opt t.table ip with
    | Some e -> Some e
    | None ->
        let iv = Sim.Ivar.create (Host.sim t.host) in
        let waiters =
          match Hashtbl.find_opt t.pending ip with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace t.pending ip l;
              l
        in
        waiters := iv :: !waiters;
        let rec attempt tries =
          if tries = 0 then begin
            waiters := List.filter (fun i -> i != iv) !waiters;
            Stats.incr t.stats "resolve-fail";
            None
          end
          else begin
            Stats.incr t.stats "request-tx";
            send t ~via:(broadcast_session t) ~op:op_request ~target_ip:ip
              ~target_eth:(Addr.Eth.v 0);
            match Sim.Ivar.read_timeout iv retry_timeout with
            | Some e -> Some e
            | None -> attempt (tries - 1)
          end
        in
        attempt max_tries

let learn t ip eth =
  if not (Addr.Ip.equal ip t.host.Host.ip) then begin
    Hashtbl.replace t.table ip eth;
    match Hashtbl.find_opt t.pending ip with
    | None -> ()
    | Some waiters ->
        let to_wake = !waiters in
        waiters := [];
        Hashtbl.remove t.pending ip;
        List.iter (fun iv -> Sim.Ivar.fill iv eth) to_wake
  end

let input t msg =
  Machine.charge_one t.host.Host.mach (Machine.Header header_bytes);
  match Msg.pop msg header_bytes with
  | None -> Stats.incr t.stats "rx-runt"
  | Some (hdr, _rest) ->
      let op, sender_ip, sender_eth, target_ip, _target_eth = decode hdr in
      learn t sender_ip sender_eth;
      if op = op_request && Addr.Ip.equal target_ip t.host.Host.ip then begin
        Stats.incr t.stats "reply-tx";
        (* Reply unicast to the requester. *)
        let part =
          Part.v
            ~local:
              [ Part.Eth t.host.Host.eth; Part.Eth_type Addr.eth_type_arp ]
            ~remotes:[ [ Part.Eth sender_eth ] ]
            ()
        in
        let via = Proto.open_ (Eth.proto t.eth) ~upper:t.p part in
        send t ~via ~op:op_reply ~target_ip:sender_ip ~target_eth:sender_eth
      end

let create ~host ~eth =
  let p = Proto.create ~host ~name:"ARP" () in
  let t =
    {
      host;
      eth;
      p;
      table = Hashtbl.create 16;
      pending = Hashtbl.create 8;
      bcast = None;
      stats = Proto.stats p;
    }
  in
  add_entry t host.Host.ip host.Host.eth;
  let unsupported_open _ = invalid_arg "ARP has no upper sessions" in
  let ops =
    {
      Proto.open_ = (fun ~upper:_ part -> unsupported_open part);
      open_enable = (fun ~upper:_ _ -> invalid_arg "ARP: open_enable");
      open_done = (fun ~upper:_ part -> unsupported_open part);
      demux = (fun ~lower:_ msg -> input t msg);
      p_control =
        (fun req ->
          match req with
          | Control.Resolve ip -> (
              match resolve t ip with
              | Some e -> Control.R_eth e
              | None -> Control.R_bool false)
          | Control.Reverse_resolve e -> (
              match reverse t e with
              | Some ip -> Control.R_ip ip
              | None -> Control.R_bool false)
          | Control.Is_local ip -> Control.R_bool (resolve t ip <> None)
          | req -> Stats.control t.stats req);
    }
  in
  Proto.set_ops p ops;
  Proto.open_enable (Eth.proto eth) ~upper:p
    (Part.v ~local:[ Part.Eth_type Addr.eth_type_arp ] ());
  Proto.declare_below p [ Eth.proto eth ];
  t
