open Xkernel

let ip_proto_icmp = 1
let header_bytes = 8
let typ_echo_reply = 0
let typ_unreachable = 3
let typ_time_exceeded = 11
let typ_echo_request = 8
let code_proto_unreachable = 2
let code_host_unreachable = 1

type event =
  | Echo_reply of { from : Addr.Ip.t; seq : int }
  | Time_exceeded of { from : Addr.Ip.t }
  | Unreachable of { from : Addr.Ip.t; code : int }

type t = {
  host : Host.t;
  ip : Ip.t;
  p : Proto.t;
  ident : int;
  mutable next_seq : int;
  pending : (int, unit Sim.Ivar.ivar) Hashtbl.t; (* outstanding echo seqs *)
  mutable observer : (event -> unit) option;
  sessions : (int, Proto.session) Hashtbl.t; (* peer *)
  stats : Stats.t;
}

let proto t = t.p
let stat t name = Stats.get t.stats name
let on_event t f = t.observer <- Some f

let emit t ev = match t.observer with Some f -> f ev | None -> ()

(* Checksum covers the whole ICMP message with the checksum field
   zeroed, exactly like the IP header checksum. *)
let encode ~typ ~code ~ident ~seq payload =
  let w = Codec.W.create () in
  Codec.W.u8 w typ;
  Codec.W.u8 w code;
  Codec.W.u16 w 0;
  Codec.W.u16 w ident;
  Codec.W.u16 w seq;
  Codec.W.bytes w (Msg.to_string payload);
  let raw = Codec.W.contents w in
  let ck = Codec.ip_checksum raw in
  let b = Bytes.of_string raw in
  Bytes.set_uint8 b 2 (ck lsr 8);
  Bytes.set_uint8 b 3 (ck land 0xff);
  Msg.of_string (Bytes.to_string b)

let session_to t peer =
  match Hashtbl.find_opt t.sessions (Addr.Ip.to_int peer) with
  | Some s -> s
  | None ->
      let s =
        Proto.open_ (Ip.proto t.ip) ~upper:t.p
          (Part.v
             ~local:[ Part.Ip t.host.Host.ip; Part.Ip_proto ip_proto_icmp ]
             ~remotes:[ [ Part.Ip peer; Part.Ip_proto ip_proto_icmp ] ]
             ())
      in
      Hashtbl.replace t.sessions (Addr.Ip.to_int peer) s;
      s

let transmit t ~peer ~typ ~code ~ident ~seq payload =
  Machine.charge t.host.Host.mach
    [
      Machine.Header header_bytes;
      Machine.Checksum (header_bytes + Msg.length payload);
    ];
  Proto.push (session_to t peer) (encode ~typ ~code ~ident ~seq payload)

let ping t ~peer ?(payload = 56) ?(timeout = 1.0) () =
  t.next_seq <- t.next_seq + 1;
  let seq = t.next_seq in
  let iv = Sim.Ivar.create (Host.sim t.host) in
  Hashtbl.replace t.pending seq iv;
  Stats.incr t.stats "echo-tx";
  let t0 = Sim.now (Host.sim t.host) in
  transmit t ~peer ~typ:typ_echo_request ~code:0 ~ident:t.ident ~seq
    (Msg.fill payload 'i');
  let result = Sim.Ivar.read_timeout iv timeout in
  Hashtbl.remove t.pending seq;
  match result with
  | Some () -> Some (Sim.now (Host.sim t.host) -. t0)
  | None -> None

let input t ~lower msg =
  Machine.charge t.host.Host.mach
    [ Machine.Header header_bytes; Machine.Checksum (Msg.length msg) ];
  if Codec.ones_complement_sum (Msg.to_string msg) <> 0xffff then
    Stats.incr t.stats "rx-bad-checksum"
  else
    match Msg.pop msg header_bytes with
    | None -> Stats.incr t.stats "rx-runt"
    | Some (raw, rest) -> (
        let r = Codec.R.of_string raw in
        let typ = Codec.R.u8 r in
        let code = Codec.R.u8 r in
        let _ck = Codec.R.u16 r in
        let ident = Codec.R.u16 r in
        let seq = Codec.R.u16 r in
        let from =
          match Proto.session_control lower Control.Get_peer_host with
          | Control.R_ip ip -> ip
          | _ -> Addr.Ip.any
        in
        if typ = typ_echo_request then begin
          Stats.incr t.stats "echo-rx";
          transmit t ~peer:from ~typ:typ_echo_reply ~code:0 ~ident ~seq rest
        end
        else if typ = typ_echo_reply then begin
          Stats.incr t.stats "reply-rx";
          emit t (Echo_reply { from; seq });
          if ident = t.ident then
            match Hashtbl.find_opt t.pending seq with
            | Some iv when not (Sim.Ivar.is_filled iv) -> Sim.Ivar.fill iv ()
            | _ -> Stats.incr t.stats "rx-stale"
        end
        else if typ = typ_time_exceeded then begin
          Stats.incr t.stats "time-exceeded-rx";
          emit t (Time_exceeded { from })
        end
        else if typ = typ_unreachable then begin
          Stats.incr t.stats "unreachable-rx";
          emit t (Unreachable { from; code })
        end
        else Stats.incr t.stats "rx-unknown-type")

let create ~host ~ip =
  let p = Proto.create ~host ~name:"ICMP" () in
  let t =
    {
      host;
      ip;
      p;
      ident = Addr.Ip.to_int host.Host.ip land 0xffff;
      next_seq = 0;
      pending = Hashtbl.create 8;
      observer = None;
      sessions = Hashtbl.create 8;
      stats = Proto.stats p;
    }
  in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "Icmp: use ping");
      open_enable = (fun ~upper:_ _ -> invalid_arg "Icmp: use on_event");
      open_done = (fun ~upper:_ _ -> invalid_arg "Icmp: use ping");
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control = (fun req -> Stats.control t.stats req);
    };
  Proto.open_enable (Ip.proto ip) ~upper:p
    (Part.v ~local:[ Part.Ip_proto ip_proto_icmp ] ());
  (* Turn IP's delivery failures into error messages to the source. *)
  Ip.set_error_hook ip (fun ~src err quote ->
      match err with
      | Ip.Ttl_exceeded ->
          Stats.incr t.stats "time-exceeded-tx";
          transmit t ~peer:src ~typ:typ_time_exceeded ~code:0 ~ident:0 ~seq:0
            quote
      | Ip.Proto_unreachable ->
          Stats.incr t.stats "unreachable-tx";
          transmit t ~peer:src ~typ:typ_unreachable
            ~code:code_proto_unreachable ~ident:0 ~seq:0 quote);
  Proto.declare_below p [ Ip.proto ip ];
  t
