open Xkernel

let header_bytes = 8
let ip_proto_udp = 17

type t = {
  host : Host.t;
  lower : Proto.t;
  checksum : bool;
  p : Proto.t;
  sessions : (int * int * int, Proto.session) Hashtbl.t;
      (* (local port, peer ip, peer port) *)
  enabled : (int, Proto.t) Hashtbl.t; (* local port -> upper *)
  mutable next_ephemeral : int;
  stats : Stats.t;
}

let proto t = t.p

let pseudo_checksum ~src ~dst payload =
  let w = Codec.W.create () in
  Codec.W.u32 w (Addr.Ip.to_int src);
  Codec.W.u32 w (Addr.Ip.to_int dst);
  Codec.W.bytes w (Msg.to_string payload);
  Codec.ip_checksum (Codec.W.contents w)

let encode ~sport ~dport ~len ~cksum =
  let w = Codec.W.create ~size:header_bytes () in
  Codec.W.u16 w sport;
  Codec.W.u16 w dport;
  Codec.W.u16 w len;
  Codec.W.u16 w cksum;
  Codec.W.contents w

let decode s =
  let r = Codec.R.of_string s in
  let sport = Codec.R.u16 r in
  let dport = Codec.R.u16 r in
  let len = Codec.R.u16 r in
  let cksum = Codec.R.u16 r in
  (sport, dport, len, cksum)

let ephemeral t =
  let p = t.next_ephemeral in
  t.next_ephemeral <- (if p >= 65535 then 49152 else p + 1);
  p

let lower_part t ~peer_ip =
  Part.v
    ~local:[ Part.Ip t.host.Host.ip; Part.Ip_proto ip_proto_udp ]
    ~remotes:[ [ Part.Ip peer_ip; Part.Ip_proto ip_proto_udp ] ]
    ()

let make_session t ~upper ~lport ~peer_ip ~rport =
  let cell = ref None in
  let self () = Option.get !cell in
  let lower_sess = Proto.open_ t.lower ~upper:t.p (lower_part t ~peer_ip) in
  let push msg =
    Stats.incr t.stats "tx";
    let len = header_bytes + Msg.length msg in
    let cksum =
      if t.checksum then begin
        Machine.charge_one t.host.Host.mach (Machine.Checksum (Msg.length msg));
        let dst =
          Control.ip_exn (Proto.session_control lower_sess Get_peer_host)
        in
        pseudo_checksum ~src:t.host.Host.ip ~dst msg
      end
      else 0
    in
    Machine.charge_one t.host.Host.mach (Machine.Header header_bytes);
    Proto.push lower_sess
      (Msg.push msg (encode ~sport:lport ~dport:rport ~len ~cksum))
  in
  let pop msg = Proto.deliver upper ~lower:(self ()) msg in
  let s_control = function
    | Control.Get_my_port -> Control.R_int lport
    | Control.Get_peer_port -> Control.R_int rport
    | ( Control.Get_peer_host | Control.Get_max_packet
      | Control.Get_opt_packet | Control.Get_mtu ) as req ->
        Proto.session_control lower_sess req
    | req -> Stats.control t.stats req
  in
  let close () =
    Hashtbl.remove t.sessions (lport, Addr.Ip.to_int peer_ip, rport)
  in
  let xs =
    Proto.make_session t.p
      ~name:
        (Printf.sprintf "udp(%d,%s:%d)" lport (Addr.Ip.to_string peer_ip)
           rport)
      { push; pop; s_control; close }
  in
  cell := Some xs;
  Hashtbl.replace t.sessions (lport, Addr.Ip.to_int peer_ip, rport) xs;
  xs

let open_session t ~upper part =
  let peer_part = Part.peer part in
  let peer_ip =
    match Part.find_ip peer_part with
    | Some ip -> ip
    | None -> invalid_arg "Udp.open_: peer has no IP address"
  in
  let rport =
    match Part.find_port peer_part with
    | Some p -> p
    | None -> invalid_arg "Udp.open_: peer has no port"
  in
  let lport =
    match Part.find_port part.Part.local with
    | Some p -> p
    | None -> ephemeral t
  in
  match Hashtbl.find_opt t.sessions (lport, Addr.Ip.to_int peer_ip, rport) with
  | Some s -> s
  | None -> make_session t ~upper ~lport ~peer_ip ~rport

let input t ~lower msg =
  Machine.charge_one t.host.Host.mach (Machine.Header header_bytes);
  match Msg.pop msg header_bytes with
  | None -> Stats.incr t.stats "rx-runt"
  | Some (hdr, rest) -> (
      let sport, dport, len, cksum = decode hdr in
      if len < header_bytes || Msg.length rest < len - header_bytes then
        Stats.incr t.stats "rx-short"
      else
        let payload = Msg.sub rest 0 (len - header_bytes) in
        let src =
          Control.ip_exn (Proto.session_control lower Get_peer_host)
        in
        let checksum_ok =
          cksum = 0
          ||
          begin
            Machine.charge t.host.Host.mach
              [ Machine.Checksum (Msg.length payload) ];
            pseudo_checksum ~src ~dst:t.host.Host.ip payload = cksum
          end
        in
        if not checksum_ok then Stats.incr t.stats "rx-bad-checksum"
        else
          match
            Hashtbl.find_opt t.sessions (dport, Addr.Ip.to_int src, sport)
          with
          | Some xs ->
              Stats.incr t.stats "rx";
              Proto.pop xs payload
          | None -> (
              match Hashtbl.find_opt t.enabled dport with
              | Some upper ->
                  Stats.incr t.stats "rx";
                  let xs =
                    make_session t ~upper ~lport:dport ~peer_ip:src
                      ~rport:sport
                  in
                  Proto.pop xs payload
              | None -> Stats.incr t.stats "rx-unbound"))

let create ~host ~lower ?(checksum = false) () =
  let p = Proto.create ~host ~name:"UDP" () in
  let t =
    {
      host;
      lower;
      checksum;
      p;
      sessions = Hashtbl.create 16;
      enabled = Hashtbl.create 8;
      next_ephemeral = 49152;
      stats = Proto.stats p;
    }
  in
  let ops =
    {
      Proto.open_ = (fun ~upper part -> open_session t ~upper part);
      open_enable =
        (fun ~upper part ->
          match Part.find_port part.Part.local with
          | Some port -> Hashtbl.replace t.enabled port upper
          | None -> invalid_arg "Udp.open_enable: no local port");
      open_done = (fun ~upper part -> open_session t ~upper part);
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control =
        (fun req ->
          match req with
          (* UDP relies on the layer below to fragment, so it will push
             messages as large as that layer accepts (section 3.1). *)
          | Control.Get_max_msg_size -> Proto.control t.lower Get_max_packet
          | Control.Get_max_packet | Control.Get_opt_packet | Control.Get_mtu
            ->
              Proto.control t.lower req
          | req -> Stats.control t.stats req);
    }
  in
  Proto.set_ops p ops;
  Proto.open_enable t.lower ~upper:p
    (Part.v ~local:[ Part.Ip_proto ip_proto_udp ] ());
  Proto.declare_below p [ lower ];
  t
