open Xkernel

type t = {
  host : Host.t;
  eth : Eth.t;
  ip : Ip.t;
  arp : Arp.t;
  adv : Vip_adv.t option;
  p : Proto.t;
  sessions : (int * int, Proto.session) Hashtbl.t; (* (peer ip, proto) *)
  enabled : (int, Proto.t) Hashtbl.t;
  stats : Stats.t;
}

let proto t = t.p
let eth_payload t = Control.int_exn (Proto.control (Eth.proto t.eth) Get_mtu)

(* The largest message the upper protocol says it will ever push.
   Sprite RPC answers 1500 (it fragments for itself); UDP answers IP's
   maximum (it relies on the layer below to fragment); a protocol that
   does not answer is assumed to need the full IP service. *)
let upper_max_msg upper =
  match Proto.control upper Control.Get_max_msg_size with
  | Control.R_int n -> n
  | _ -> Ip.max_packet

let eth_part t ~peer_eth ~proto_num =
  Part.v
    ~local:
      [
        Part.Eth t.host.Host.eth;
        Part.Eth_type (Addr.eth_type_of_ip_proto proto_num);
      ]
    ~remotes:[ [ Part.Eth peer_eth ] ]
    ()

let ip_part t ~peer_ip ~proto_num =
  Part.v
    ~local:[ Part.Ip t.host.Host.ip; Part.Ip_proto proto_num ]
    ~remotes:[ [ Part.Ip peer_ip; Part.Ip_proto proto_num ] ]
    ()

let make_session t ~upper ~peer_ip ~proto_num =
  (* Open-time binding: resolve locality with ARP, ask the upper
     protocol its maximum message size, then open ETH, IP or both. *)
  let max_msg = upper_max_msg upper in
  let payload = eth_payload t in
  (* The peer must both be on the local wire (ARP) and — when the
     advertisement table is in use — have announced that it runs VIP;
     otherwise raw-ethernet VIP packets would just be dropped on its
     floor (section 3.1). *)
  let peer_runs_vip =
    match t.adv with None -> true | Some adv -> Vip_adv.supports adv peer_ip
  in
  let local_eth = if peer_runs_vip then Arp.resolve t.arp peer_ip else None in
  let eth_sess =
    match local_eth with
    | Some peer_eth when not (Addr.Eth.is_broadcast peer_eth) ->
        Some
          (Proto.open_ (Eth.proto t.eth) ~upper:t.p
             (eth_part t ~peer_eth ~proto_num))
    | _ -> None
  in
  let need_ip =
    match eth_sess with None -> true | Some _ -> max_msg > payload
  in
  let ip_sess =
    if need_ip then
      Some (Proto.open_ (Ip.proto t.ip) ~upper:t.p (ip_part t ~peer_ip ~proto_num))
    else None
  in
  Stats.incr t.stats
    (match (eth_sess, ip_sess) with
    | Some _, Some _ -> "open-both"
    | Some _, None -> "open-eth"
    | None, Some _ -> "open-ip"
    | None, None -> "open-none");
  let cell = ref None in
  let self () = Option.get !cell in
  let push msg =
    Trace.packet (Host.sim t.host) ~host:t.host.Host.name ~proto:"VIP"
      ~dir:`Send msg;
    (* The single test in VIP push (its cost is the Virtual_op charged
       by Proto.push). *)
    match (eth_sess, ip_sess) with
    | Some es, _ when Msg.length msg <= payload ->
        Stats.incr t.stats "tx-eth";
        Proto.push es msg
    | _, Some is ->
        Stats.incr t.stats "tx-ip";
        Proto.push is msg
    | Some es, None ->
        (* The upper protocol exceeded its advertised maximum; all we
           can do is let the ethernet refuse it. *)
        Stats.incr t.stats "tx-oversize";
        Proto.push es msg
    | None, None -> Stats.incr t.stats "tx-unroutable"
  in
  let pop msg = Proto.deliver upper ~lower:(self ()) msg in
  let s_control = function
    | Control.Get_peer_host -> Control.R_ip peer_ip
    | Control.Get_my_host -> Control.R_ip t.host.Host.ip
    | Control.Get_peer_proto | Control.Get_my_proto -> Control.R_int proto_num
    | Control.Get_opt_packet | Control.Get_mtu -> Control.R_int payload
    | Control.Get_max_packet ->
        Control.R_int
          (match ip_sess with Some _ -> Ip.max_packet | None -> payload)
    | req -> Stats.control t.stats req
  in
  let close () =
    Hashtbl.remove t.sessions (Addr.Ip.to_int peer_ip, proto_num)
  in
  let xs =
    Proto.make_session t.p
      ~name:
        (Printf.sprintf "vip(%s,%d)" (Addr.Ip.to_string peer_ip) proto_num)
      { push; pop; s_control; close }
  in
  cell := Some xs;
  Hashtbl.replace t.sessions (Addr.Ip.to_int peer_ip, proto_num) xs;
  xs

let open_session t ~upper part =
  let peer_part = Part.peer part in
  let peer_ip =
    match Part.find_ip peer_part with
    | Some ip -> ip
    | None -> invalid_arg "Vip.open_: peer has no IP address"
  in
  let proto_num =
    match
      (Part.find_ip_proto peer_part, Part.find_ip_proto part.Part.local)
    with
    | Some n, _ | None, Some n -> n
    | None, None -> invalid_arg "Vip.open_: no IP protocol number"
  in
  match Hashtbl.find_opt t.sessions (Addr.Ip.to_int peer_ip, proto_num) with
  | Some s -> s
  | None -> make_session t ~upper ~peer_ip ~proto_num

let input t ~lower msg =
  match Lower_id.identify ~arp:t.arp lower with
  | None -> Stats.incr t.stats "rx-unidentified"
  | Some (peer_ip, proto_num) -> (
      Trace.packet (Host.sim t.host) ~host:t.host.Host.name ~proto:"VIP"
        ~dir:`Recv msg;
      match
        Hashtbl.find_opt t.sessions (Addr.Ip.to_int peer_ip, proto_num)
      with
      | Some xs -> Proto.pop xs msg
      | None -> (
          match Hashtbl.find_opt t.enabled proto_num with
          | Some upper ->
              let xs = make_session t ~upper ~peer_ip ~proto_num in
              Proto.pop xs msg
          | None -> Stats.incr t.stats "rx-unbound"))

let create ~host ~eth ~ip ~arp ?adv () =
  let p = Proto.create ~host ~name:"VIP" ~virtual_:true () in
  let t =
    {
      host;
      eth;
      ip;
      arp;
      adv;
      p;
      sessions = Hashtbl.create 16;
      enabled = Hashtbl.create 8;
      stats = Proto.stats p;
    }
  in
  let ops =
    {
      Proto.open_ = (fun ~upper part -> open_session t ~upper part);
      open_enable =
        (fun ~upper part ->
          match Part.find_ip_proto part.Part.local with
          | None -> invalid_arg "Vip.open_enable: no IP protocol number"
          | Some proto_num ->
              Hashtbl.replace t.enabled proto_num upper;
              (* Enable both lower paths: messages may arrive via the
                 mapped ethernet type or via IP. *)
              Proto.open_enable (Eth.proto t.eth) ~upper:t.p
                (Part.v
                   ~local:
                     [ Part.Eth_type (Addr.eth_type_of_ip_proto proto_num) ]
                   ());
              Proto.open_enable (Ip.proto t.ip) ~upper:t.p
                (Part.v ~local:[ Part.Ip_proto proto_num ] ()));
      open_done = (fun ~upper part -> open_session t ~upper part);
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control =
        (fun req ->
          match req with
          | Control.Get_max_packet -> Control.R_int Ip.max_packet
          | Control.Get_opt_packet | Control.Get_mtu ->
              Control.R_int (eth_payload t)
          | Control.Get_my_host -> Control.R_ip host.Host.ip
          | req -> Stats.control t.stats req);
    }
  in
  Proto.set_ops p ops;
  Proto.declare_below p [ Eth.proto eth; Ip.proto ip ];
  t
