(** Internet Protocol.

    Unreliable datagram delivery to 32-bit IP addresses: 20-byte header
    with one's-complement checksum, 8-bit protocol demultiplexing,
    fragmentation/reassembly up to 64 KB, TTL, local-vs-gateway routing
    over one or more interfaces, and optional forwarding (so a
    three-host test can put a router between two wires).

    In the paper this is the layer whose fixed 0.37 msec round-trip cost
    motivates VIP: "inserting IP between Sprite RPC and the ethernet
    automatically implies a 21% performance penalty" (section 3.1). *)

type t

type iface = {
  if_ip : Xkernel.Addr.Ip.t;
  if_eth : Eth.t;
  if_arp : Arp.t;
}

val create :
  host:Xkernel.Host.t ->
  ifaces:iface list ->
  ?gateway:Xkernel.Addr.Ip.t ->
  ?forward:bool ->
  ?ttl:int ->
  unit ->
  t
(** [create ~host ~ifaces ()] — [ifaces] must be non-empty; the first is
    the primary interface.  [gateway] is the next hop for non-local
    destinations.  [forward] (default false) makes this instance a
    router.  [ttl] defaults to 32. *)

val create_simple :
  host:Xkernel.Host.t ->
  eth:Eth.t ->
  arp:Arp.t ->
  ?gateway:Xkernel.Addr.Ip.t ->
  unit ->
  t
(** Single-interface convenience using the host's own IP. *)

val proto : t -> Xkernel.Proto.t

val max_packet : int
(** 65,515 bytes of payload — "IP is able to deliver 64k-byte packets to
    any host in the Internet" (section 3.1). *)

val header_bytes : int
(** 20. *)

type delivery_error = Ttl_exceeded | Proto_unreachable

val set_error_hook :
  t ->
  (src:Xkernel.Addr.Ip.t -> delivery_error -> Xkernel.Msg.t -> unit) ->
  unit
(** Install the error reporter (ICMP): called with the source to
    notify, the reason, and the offending header plus up to eight
    payload bytes.  Errors about ICMP traffic itself are suppressed. *)

(** {2 In-network computation hooks}

    A forwarding instance (a router or switch) can interpose a
    computation on traffic in transit — the NetRPC idea of moving RPC
    work into the network, expressed with the x-kernel's
    virtual-protocol technique. *)

val set_forward_hook :
  t ->
  (src:Xkernel.Addr.Ip.t ->
  dst:Xkernel.Addr.Ip.t ->
  proto_num:int ->
  Xkernel.Msg.t ->
  bool)
  option ->
  unit
(** Consulted on each {e whole} datagram this instance is about to
    forward (fragments in transit pass through unexamined).  Returning
    [true] consumes the datagram — it is not forwarded, not counted
    ["forwarded"], and charges nothing downstream; the hook owns
    whatever happens next (e.g. answering from a cache with {!inject}).
    [None] uninstalls. *)

val inject :
  t ->
  src:Xkernel.Addr.Ip.t ->
  dst:Xkernel.Addr.Ip.t ->
  proto_num:int ->
  Xkernel.Msg.t ->
  unit
(** Emit one datagram from this instance with an {e explicit} source
    address — how an in-network layer answers on a server's behalf.
    Routes, resolves and fragments exactly like a locally originated
    datagram.  Must run in a fiber. *)

(** Participants: active [open_] needs [Ip dst] in the peer and
    [Ip_proto n] in either participant; [open_enable] needs
    [Ip_proto n].  Sessions answer [Get_peer_host], [Get_my_host],
    [Get_peer_proto], [Get_max_packet] (65,515), [Get_opt_packet]
    (lower MTU minus 20). *)
