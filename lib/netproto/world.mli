(** Test-bed configuration: simulated hosts with standard stacks.

    Mirrors configuring an x-kernel instance: each node gets a device,
    ETH, ARP, IP, VIP and VIPaddr objects wired together.  {!create}
    builds the paper's test bed — Sun 3/75-profile hosts on one isolated
    10 Mb/s ethernet; {!create_internet} builds two wires joined by a
    forwarding router, for experiments where the peer is *not* on the
    local ethernet (VIP's remote case). *)

type node = {
  host : Xkernel.Host.t;
  dev : Xkernel.Netdev.t;
  eth : Eth.t;
  arp : Arp.t;
  ip : Ip.t;
  vip : Vip.t;
  vip_addr : Vip_addr.t;
}

type t = {
  sim : Xkernel.Sim.t;
  wire : Xkernel.Wire.t;
  nodes : node array;
}

val create :
  ?max_events:int ->
  ?n:int -> ?profile:Xkernel.Machine.profile -> ?seed:int -> unit -> t
(** [create ()] is two hosts ([h0] = 10.0.0.1, [h1] = 10.0.0.2) on one
    wire.  [n] adds more hosts on the same wire.  [max_events] raises
    the simulator's runaway guard for million-call sweeps. *)

type fanin = {
  fan : t;
  server : node;  (** node 0 *)
  clients : node array;  (** nodes 1..n *)
}

val create_fanin :
  ?max_events:int ->
  ?clients:int -> ?profile:Xkernel.Machine.profile -> ?seed:int -> unit ->
  fanin
(** [create_fanin ~clients ()] is the load-generation topology: one
    server plus [clients] (default 4) client hosts, all on one wire —
    {!create}[ ~n:(clients+1)] with the roles named.  The load
    subsystem ({!Rpc.Load}) fans M client hosts into the single
    server. *)

type fanout = {
  fo : t;
  servers : node array;  (** nodes 0..servers-1 *)
  fo_clients : node array;  (** nodes servers.. *)
}

val create_fanout :
  ?max_events:int ->
  ?clients:int ->
  ?servers:int ->
  ?profile:Xkernel.Machine.profile ->
  ?seed:int ->
  unit ->
  fanout
(** [create_fanout ~clients ~servers ()] is the replication topology: K
    server replicas (default 2) plus M client hosts (default 4), all on
    one wire.  Servers occupy node — and therefore {!devices} — indices
    [0..K-1], so a {!Xkernel.Chaos} plan can target replica [k] with
    [Crash k] directly. *)

val devices : t -> Xkernel.Netdev.t array
(** One device per node, in node order — the [devices] array a
    {!Xkernel.Chaos.apply} call wants. *)

val node : t -> int -> node
val ip_of : t -> int -> Xkernel.Addr.Ip.t

val run : ?until:float -> t -> unit
(** Drive the simulator (delegates to {!Xkernel.Sim.run}). *)

val spawn : t -> (unit -> unit) -> unit

type internet = {
  inet_sim : Xkernel.Sim.t;
  west : t;  (** network 10.0.0.x, gateway 10.0.0.254 *)
  east : t;  (** network 10.0.1.x, gateway 10.0.1.254 *)
  router : node * node;  (** the router's two interfaces (west, east) *)
}

val create_internet : ?profile:Xkernel.Machine.profile -> ?seed:int -> unit -> internet
(** Two 2-host ethernets joined by an IP router; hosts have their
    gateway configured, so cross-network traffic exercises IP
    forwarding while VIP detects non-locality via ARP failure. *)

(** {2 Switched star}

    Every host on its own labelled wire, joined by an N-port switch —
    the shared-medium bottleneck of the single-wire worlds replaced by
    per-host access links, so aggregate capacity scales with the number
    of servers until the switch itself saturates. *)

type port = {
  pt_host : Xkernel.Host.t;  (** carries the port's gateway address *)
  pt_dev : Xkernel.Netdev.t;
  pt_eth : Eth.t;
  pt_arp : Arp.t;
  pt_wire : Xkernel.Wire.t;
  pt_label : string;  (** ["s<k>"] for servers, ["c<j>"] for clients *)
}

type switched = {
  sw : fanout;
      (** the end hosts with roles named; [sw.fo.wire] is server 0's
          access link *)
  sw_ip : Ip.t;
      (** the switch's forwarding IP instance — the place to hang an
          in-network computation via {!Ip.set_forward_hook} *)
  sw_ports : port array;  (** port [i] faces node [i] *)
}

val create_switched :
  ?max_events:int ->
  ?clients:int ->
  ?servers:int ->
  ?profile:Xkernel.Machine.profile ->
  ?switch_profile:Xkernel.Machine.profile ->
  ?seed:int ->
  unit ->
  switched
(** [create_switched ~clients ~servers ()] (defaults 4 and 1) puts each
    of the [servers + clients] hosts on its own wire (network
    [10.0.<i>.x], gateway [10.0.<i>.254]) behind one switch.  Servers
    occupy node/port indices [0..servers-1], as in {!create_fanout}.
    End hosts run [profile] (default Sun 3/75); the switch's ports run
    [switch_profile] (default {!Xkernel.Machine.switch_fabric}, which
    forwards minimum frames several times faster than a wire can carry
    them).  Wires are labelled, so each registers its own
    [wire/<label>] stats table.

    Note that cross-wire {!Xkernel.Chaos.apply} [Partition] specs are
    meaningless here — attachments are per-wire; target a named wire
    with [Wire_down]/[Wire_loss] (via {!switched_wires}) or a host with
    [Crash] instead. *)

val switched_wires : switched -> (string * Xkernel.Wire.t) list
(** Label-to-wire pairs in port order — exactly the [?wires] argument
    {!Xkernel.Chaos.apply} wants. *)

val switch_machines : switched -> Xkernel.Machine.t array
(** The per-port fabric engines, for CPU accounting (port 0 also
    carries the switch's IP-level and in-network work). *)

val port_wire : switched -> label:string -> Xkernel.Wire.t
(** The named access link.
    @raise Invalid_argument on an unknown label. *)
