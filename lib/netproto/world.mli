(** Test-bed configuration: simulated hosts with standard stacks.

    Mirrors configuring an x-kernel instance: each node gets a device,
    ETH, ARP, IP, VIP and VIPaddr objects wired together.  {!create}
    builds the paper's test bed — Sun 3/75-profile hosts on one isolated
    10 Mb/s ethernet; {!create_internet} builds two wires joined by a
    forwarding router, for experiments where the peer is *not* on the
    local ethernet (VIP's remote case). *)

type node = {
  host : Xkernel.Host.t;
  dev : Xkernel.Netdev.t;
  eth : Eth.t;
  arp : Arp.t;
  ip : Ip.t;
  vip : Vip.t;
  vip_addr : Vip_addr.t;
}

type t = {
  sim : Xkernel.Sim.t;
  wire : Xkernel.Wire.t;
  nodes : node array;
}

val create :
  ?max_events:int ->
  ?n:int -> ?profile:Xkernel.Machine.profile -> ?seed:int -> unit -> t
(** [create ()] is two hosts ([h0] = 10.0.0.1, [h1] = 10.0.0.2) on one
    wire.  [n] adds more hosts on the same wire.  [max_events] raises
    the simulator's runaway guard for million-call sweeps. *)

type fanin = {
  fan : t;
  server : node;  (** node 0 *)
  clients : node array;  (** nodes 1..n *)
}

val create_fanin :
  ?max_events:int ->
  ?clients:int -> ?profile:Xkernel.Machine.profile -> ?seed:int -> unit ->
  fanin
(** [create_fanin ~clients ()] is the load-generation topology: one
    server plus [clients] (default 4) client hosts, all on one wire —
    {!create}[ ~n:(clients+1)] with the roles named.  The load
    subsystem ({!Rpc.Load}) fans M client hosts into the single
    server. *)

type fanout = {
  fo : t;
  servers : node array;  (** nodes 0..servers-1 *)
  fo_clients : node array;  (** nodes servers.. *)
}

val create_fanout :
  ?max_events:int ->
  ?clients:int ->
  ?servers:int ->
  ?profile:Xkernel.Machine.profile ->
  ?seed:int ->
  unit ->
  fanout
(** [create_fanout ~clients ~servers ()] is the replication topology: K
    server replicas (default 2) plus M client hosts (default 4), all on
    one wire.  Servers occupy node — and therefore {!devices} — indices
    [0..K-1], so a {!Xkernel.Chaos} plan can target replica [k] with
    [Crash k] directly. *)

val devices : t -> Xkernel.Netdev.t array
(** One device per node, in node order — the [devices] array a
    {!Xkernel.Chaos.apply} call wants. *)

val node : t -> int -> node
val ip_of : t -> int -> Xkernel.Addr.Ip.t

val run : ?until:float -> t -> unit
(** Drive the simulator (delegates to {!Xkernel.Sim.run}). *)

val spawn : t -> (unit -> unit) -> unit

type internet = {
  inet_sim : Xkernel.Sim.t;
  west : t;  (** network 10.0.0.x, gateway 10.0.0.254 *)
  east : t;  (** network 10.0.1.x, gateway 10.0.1.254 *)
  router : node * node;  (** the router's two interfaces (west, east) *)
}

val create_internet : ?profile:Xkernel.Machine.profile -> ?seed:int -> unit -> internet
(** Two 2-host ethernets joined by an IP router; hosts have their
    gateway configured, so cross-network traffic exercises IP
    forwarding while VIP detects non-locality via ARP failure. *)
