open Xkernel

type t = {
  host : Host.t;
  bulk : Proto.t;
  direct : Proto.t;
  arp : Arp.t;
  p : Proto.t;
  sessions : (int * int, Proto.session) Hashtbl.t;
  enabled : (int, Proto.t) Hashtbl.t;
  stats : Stats.t;
}

let proto t = t.p

let upper_max_msg upper =
  match Proto.control upper Control.Get_max_msg_size with
  | Control.R_int n -> n
  | _ -> max_int

let part_for t ~peer_ip ~proto_num =
  Part.v
    ~local:[ Part.Ip t.host.Host.ip; Part.Ip_proto proto_num ]
    ~remotes:[ [ Part.Ip peer_ip; Part.Ip_proto proto_num ] ]
    ()

let make_session t ~upper ~peer_ip ~proto_num =
  let part = part_for t ~peer_ip ~proto_num in
  let direct_sess = Proto.open_ t.direct ~upper:t.p part in
  let threshold =
    Control.int_exn (Proto.session_control direct_sess Control.Get_opt_packet)
  in
  let bulk_sess =
    if upper_max_msg upper > threshold then
      Some (Proto.open_ t.bulk ~upper:t.p part)
    else None
  in
  let cell = ref None in
  let self () = Option.get !cell in
  let push msg =
    (* The single size test; its cost is the Virtual_op charged by
       Proto.push. *)
    match bulk_sess with
    | Some bs when Msg.length msg > threshold ->
        Stats.incr t.stats "tx-bulk";
        Proto.push bs msg
    | _ ->
        Stats.incr t.stats "tx-direct";
        Proto.push direct_sess msg
  in
  let pop msg = Proto.deliver upper ~lower:(self ()) msg in
  let s_control = function
    | Control.Get_peer_host -> Control.R_ip peer_ip
    | Control.Get_my_host -> Control.R_ip t.host.Host.ip
    | Control.Get_peer_proto | Control.Get_my_proto -> Control.R_int proto_num
    | Control.Get_opt_packet | Control.Get_mtu -> Control.R_int threshold
    | Control.Get_max_packet -> (
        match bulk_sess with
        | Some bs -> Proto.session_control bs Control.Get_max_packet
        | None -> Control.R_int threshold)
    | Control.Get_frag_size as req -> (
        match bulk_sess with
        | Some bs -> Proto.session_control bs req
        | None -> Control.Unsupported)
    | req -> Stats.control t.stats req
  in
  let close () =
    Hashtbl.remove t.sessions (Addr.Ip.to_int peer_ip, proto_num)
  in
  let xs =
    Proto.make_session t.p
      ~name:
        (Printf.sprintf "vipsize(%s,%d)" (Addr.Ip.to_string peer_ip)
           proto_num)
      { push; pop; s_control; close }
  in
  cell := Some xs;
  Hashtbl.replace t.sessions (Addr.Ip.to_int peer_ip, proto_num) xs;
  xs

let open_session t ~upper part =
  let peer_part = Part.peer part in
  let peer_ip =
    match Part.find_ip peer_part with
    | Some ip -> ip
    | None -> invalid_arg "Vip_size.open_: peer has no IP address"
  in
  let proto_num =
    match
      (Part.find_ip_proto peer_part, Part.find_ip_proto part.Part.local)
    with
    | Some n, _ | None, Some n -> n
    | None, None -> invalid_arg "Vip_size.open_: no IP protocol number"
  in
  match Hashtbl.find_opt t.sessions (Addr.Ip.to_int peer_ip, proto_num) with
  | Some s -> s
  | None -> make_session t ~upper ~peer_ip ~proto_num

let input t ~lower msg =
  match Lower_id.identify ~arp:t.arp lower with
  | None -> Stats.incr t.stats "rx-unidentified"
  | Some (peer_ip, proto_num) -> (
      match
        Hashtbl.find_opt t.sessions (Addr.Ip.to_int peer_ip, proto_num)
      with
      | Some xs -> Proto.pop xs msg
      | None -> (
          match Hashtbl.find_opt t.enabled proto_num with
          | Some upper ->
              let xs = make_session t ~upper ~peer_ip ~proto_num in
              Proto.pop xs msg
          | None -> Stats.incr t.stats "rx-unbound"))

let create ~host ~bulk ~direct ~arp =
  let p = Proto.create ~host ~name:"VIPsize" ~virtual_:true () in
  let t =
    {
      host;
      bulk;
      direct;
      arp;
      p;
      sessions = Hashtbl.create 16;
      enabled = Hashtbl.create 8;
      stats = Proto.stats p;
    }
  in
  let ops =
    {
      Proto.open_ = (fun ~upper part -> open_session t ~upper part);
      open_enable =
        (fun ~upper part ->
          match Part.find_ip_proto part.Part.local with
          | None -> invalid_arg "Vip_size.open_enable: no IP protocol number"
          | Some proto_num ->
              Hashtbl.replace t.enabled proto_num upper;
              let enable_part =
                Part.v ~local:[ Part.Ip_proto proto_num ] ()
              in
              Proto.open_enable t.bulk ~upper:t.p enable_part;
              Proto.open_enable t.direct ~upper:t.p enable_part);
      open_done = (fun ~upper part -> open_session t ~upper part);
      demux = (fun ~lower msg -> input t ~lower msg);
      p_control =
        (fun req ->
          match req with
          | Control.Get_max_packet -> Proto.control t.bulk req
          | Control.Get_opt_packet | Control.Get_mtu ->
              Proto.control t.direct Control.Get_opt_packet
          | Control.Get_my_host -> Control.R_ip host.Host.ip
          | req -> Stats.control t.stats req);
    }
  in
  Proto.set_ops p ops;
  Proto.declare_below p [ bulk; direct ];
  t
