(* Benchmark harness: regenerates every table and figure of the paper.

   Tables I-III and the section 4.3 experiment are virtual-time
   measurements from the simulator (the numbers to compare against the
   paper); the final section uses Bechamel for wall-clock
   microbenchmarks of the infrastructure itself (one procedure call per
   layer crossing, message push/pop, header codecs). *)

open Xkernel
module E = Rpc.Experiments
module World = Netproto.World
module Stacks = Rpc.Stacks
module Load = Rpc.Load

let pr = Printf.printf
let section title = pr "\n=== %s ===\n%!" title

(* --- wall-clock microbenchmarks ------------------------------------------ *)

let microbench () =
  section "Wall-clock microbenchmarks (Bechamel; real ns, not simulated)";
  let open Bechamel in
  let open Toolkit in
  (* A chain of [n] trivial protocols on a zero-cost machine: the real
     price of one layer crossing in this infrastructure. *)
  let make_chain n =
    let sim = Sim.create () in
    let host =
      Host.create sim ~name:"bench" ~ip:(Addr.Ip.v 10 9 9 9)
        ~eth:(Addr.Eth.v 42) ~profile:Machine.zero_cost ()
    in
    let hits = ref 0 in
    let bottom_proto = Proto.create ~host ~name:"bottom" () in
    let bottom =
      Proto.make_session bottom_proto
        {
          Proto.push = (fun _ -> incr hits);
          pop = (fun _ -> ());
          s_control = (fun _ -> Control.Unsupported);
          close = (fun () -> ());
        }
    in
    let rec wrap k sess =
      if k = 0 then sess
      else begin
        let p = Proto.create ~host ~name:(Printf.sprintf "layer%d" k) () in
        let s =
          Proto.make_session p
            {
              Proto.push = (fun msg -> Proto.push sess msg);
              pop = (fun _ -> ());
              s_control = (fun _ -> Control.Unsupported);
              close = (fun () -> ());
            }
        in
        wrap (k - 1) s
      end
    in
    wrap n bottom
  in
  let crossing n =
    let top = make_chain n in
    let msg = Msg.of_string "x" in
    Test.make ~name:(Printf.sprintf "push through %2d layers" n)
      (Staged.stage (fun () -> Proto.push top msg))
  in
  let msg_ops =
    let m = Msg.fill 1024 'a' in
    [
      Test.make ~name:"msg push+pop 36B header"
        (Staged.stage (fun () ->
             match Msg.pop (Msg.push m (String.make 36 'h')) 36 with
             | Some _ -> ()
             | None -> assert false));
      Test.make ~name:"msg split+append 1KB"
        (Staged.stage (fun () -> ignore (Msg.append (fst (Msg.split m 512)) m)));
      Test.make ~name:"SPRITE_HDR encode+decode"
        (Staged.stage
           (let h =
              {
                Rpc.Wire_fmt.Sprite.flags = 1;
                clnt_host = Addr.Ip.v 10 0 0 1;
                srvr_host = Addr.Ip.v 10 0 0 2;
                channel = 1;
                srvr_process = 0;
                sequence_num = 7;
                num_frags = 1;
                frag_mask = 1;
                command = 3;
                boot_id = 1;
                data1_sz = 0;
                data2_sz = 0;
                data1_off = 0;
                data2_off = 0;
              }
            in
            fun () ->
              ignore
                (Rpc.Wire_fmt.Sprite.decode (Rpc.Wire_fmt.Sprite.encode h))));
      Test.make ~name:"IP checksum over 20B"
        (Staged.stage
           (let hdr = String.make 20 '\x42' in
            fun () -> ignore (Codec.ip_checksum hdr)));
    ]
  in
  let tests =
    Test.make_grouped ~name:"xkernel"
      ([ crossing 1; crossing 5; crossing 10 ] @ msg_ops)
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, ns) -> pr "%-40s %10.1f ns\n" name ns) rows;
  pr
    "\n(A layer crossing adds only a handful of ns of real work - the\n\
    \ x-kernel claim that a layer costs one procedure call.)\n"

(* --- harness throughput benchmark ---------------------------------------- *)

(* How fast is the simulator itself?  A fan-in world (4 client hosts
   into 1 server, the capacity-sweep topology) runs a closed-loop
   million-call sweep and we report *wall-clock* simulated-calls/sec
   and events/sec — the numbers that decide whether K-server x
   M-client x 10^6-call sweeps fit in CI.  Tracked across PRs in
   BENCH_harness.json the same way the paper tables are. *)

let harness ~calls ~out ~baseline () =
  section
    (Printf.sprintf
       "Harness throughput: %d-call closed-loop fan-in (wall clock)" calls);
  (* 2 fibers per client host keeps the fixed-RTO stack below its
     retransmission knee, so the sweep measures the per-call event path
     rather than timeout pathology, and the workload is identical
     before and after any RTO-policy change. *)
  let clients = 4 and fibers = 8 in
  let per_fiber = max 1 (calls / fibers) in
  (* a layered null call is a few hundred sim events (charges, timers,
     fiber switches); leave generous headroom *)
  let f = World.create_fanin ~max_events:(1000 * calls) ~clients () in
  let fan = Stacks.lrpc_fanin ~adaptive:false f in
  let sim = f.World.fan.World.sim in
  let ev0 = Sim.processed sim in
  let w0 = Unix.gettimeofday () in
  let r = Load.run_closed ~fibers ~calls:per_fiber f fan in
  let wall = Unix.gettimeofday () -. w0 in
  let events = Sim.processed sim - ev0 in
  let completed = r.Load.completed in
  let calls_per_sec = float_of_int completed /. wall in
  let events_per_sec = float_of_int events /. wall in
  pr "%-28s %12d\n" "calls completed" completed;
  pr "%-28s %12d\n" "simulator events" events;
  pr "%-28s %12.2f s\n" "wall clock" wall;
  pr "%-28s %12.2f s\n" "simulated time" r.Load.elapsed_s;
  pr "%-28s %12.0f\n" "calls/sec (wall)" calls_per_sec;
  pr "%-28s %12.0f\n" "events/sec (wall)" events_per_sec;
  let fields =
    [
      ("bench", Json.Str "harness");
      ("config", Json.Str fan.Stacks.fan_name);
      ("mode", Json.Str "closed");
      ("clients", Json.Int clients);
      ("fibers", Json.Int fibers);
      ("calls", Json.Int (per_fiber * fibers));
      ("completed", Json.Int completed);
      ("failed", Json.Int r.Load.failed);
      ("events", Json.Int events);
      ("events_per_call", Json.Float (float_of_int events /. float_of_int completed));
      ("sim_elapsed_s", Json.Float r.Load.elapsed_s);
      ("wall_s", Json.Float wall);
      ("calls_per_sec", Json.Float calls_per_sec);
      ("events_per_sec", Json.Float events_per_sec);
    ]
  in
  (* [--harness-baseline FILE] embeds a pre-optimization run (same
     schema) so the committed BENCH_harness.json records the speedup. *)
  let fields =
    match baseline with
    | None -> fields
    | Some path -> (
        match Json.parse_file path with
        | Ok (Json.Obj b) ->
            let bcps =
              match List.assoc_opt "calls_per_sec" b with
              | Some (Json.Float v) -> v
              | Some (Json.Int v) -> float_of_int v
              | _ -> 0.
            in
            fields
            @ [
                ("baseline", Json.Obj b);
                ( "speedup",
                  Json.Float (if bcps > 0. then calls_per_sec /. bcps else 0.)
                );
              ]
        | Ok _ | Error _ ->
            Printf.eprintf "bench: cannot read baseline %s\n" path;
            exit 1)
  in
  let doc = Json.Obj fields in
  (match out with
  | None -> ()
  | Some path -> (
      match Json.write_file path doc with
      | () -> pr "wrote harness benchmark to %s\n" path
      | exception Sys_error e ->
          Printf.eprintf "bench: cannot write %s: %s\n" path e;
          exit 1));
  doc

(* Hand-parsed flags: [--json FILE] writes every experiment's rows plus
   the full stats-registry dump; [--harness-calls N], [--harness-out
   FILE], [--harness-baseline FILE] and [--harness-only] control the
   harness throughput benchmark. *)
type opts = {
  o_json : string option;
  o_harness_calls : int;
  o_harness_out : string option;
  o_harness_baseline : string option;
  o_harness_only : bool;
}

let parse_opts () =
  let o =
    ref
      {
        o_json = None;
        o_harness_calls = 1_000_000;
        o_harness_out = None;
        o_harness_baseline = None;
        o_harness_only = false;
      }
  in
  let argv = Sys.argv in
  let value i flag =
    if i + 1 < Array.length argv then argv.(i + 1)
    else begin
      Printf.eprintf "bench: %s needs an argument\n" flag;
      exit 2
    end
  in
  Array.iteri
    (fun i a ->
      match a with
      | "--json" -> o := { !o with o_json = Some (value i a) }
      | "--harness-calls" ->
          o := { !o with o_harness_calls = int_of_string (value i a) }
      | "--harness-out" -> o := { !o with o_harness_out = Some (value i a) }
      | "--harness-baseline" ->
          o := { !o with o_harness_baseline = Some (value i a) }
      | "--harness-only" -> o := { !o with o_harness_only = true }
      | _ -> ())
    argv;
  !o

let () =
  let opts = parse_opts () in
  if opts.o_harness_only then begin
    ignore
      (harness ~calls:opts.o_harness_calls ~out:opts.o_harness_out
         ~baseline:opts.o_harness_baseline ());
    exit 0
  end;
  pr "RPC in the x-Kernel: reproduction benchmarks\n";
  pr "(virtual-time msec from the calibrated simulator; see DESIGN.md)\n";
  let sections =
    [
      ("intro", E.intro ());
      ("table1", E.table1 ());
      ("table2", E.table2 ());
      ("table3", E.table3 ());
      ("removal", E.removal ());
      ( "figures",
        E.figures
          ~fig2_extra:(fun ~host ~lower ->
            Psync.proto (Psync.create ~host ~lower ()))
          () );
      ("ablation", E.ablation ());
      ("cpu_note", E.cpu_note ());
      ("loss_sweep", E.loss_sweep ());
      ("capacity", E.capacity ());
      ("failover", E.failover ());
      ("rebalance", E.rebalance ());
      ("overload", E.overload ());
      ("inc", E.inc ());
      ("shardscale", E.shardscale ());
      ( "harness",
        harness
          ~calls:opts.o_harness_calls
          ~out:opts.o_harness_out ~baseline:opts.o_harness_baseline () );
    ]
  in
  microbench ();
  match opts.o_json with
  | None -> ()
  | Some path -> (
      let doc =
        Json.Obj
          [ ("experiments", Json.Obj sections); ("stats", Stats.json ()) ]
      in
      match Json.write_file path doc with
      | () -> pr "\nwrote JSON results to %s\n" path
      | exception Sys_error e ->
          Printf.eprintf "bench: cannot write JSON: %s\n" e;
          exit 1)
