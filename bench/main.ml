(* Benchmark harness: regenerates every table and figure of the paper.

   Tables I-III and the section 4.3 experiment are virtual-time
   measurements from the simulator (the numbers to compare against the
   paper); the final section uses Bechamel for wall-clock
   microbenchmarks of the infrastructure itself (one procedure call per
   layer crossing, message push/pop, header codecs). *)

open Xkernel
module E = Rpc.Experiments

let pr = Printf.printf
let section title = pr "\n=== %s ===\n%!" title

(* --- wall-clock microbenchmarks ------------------------------------------ *)

let microbench () =
  section "Wall-clock microbenchmarks (Bechamel; real ns, not simulated)";
  let open Bechamel in
  let open Toolkit in
  (* A chain of [n] trivial protocols on a zero-cost machine: the real
     price of one layer crossing in this infrastructure. *)
  let make_chain n =
    let sim = Sim.create () in
    let host =
      Host.create sim ~name:"bench" ~ip:(Addr.Ip.v 10 9 9 9)
        ~eth:(Addr.Eth.v 42) ~profile:Machine.zero_cost ()
    in
    let hits = ref 0 in
    let bottom_proto = Proto.create ~host ~name:"bottom" () in
    let bottom =
      Proto.make_session bottom_proto
        {
          Proto.push = (fun _ -> incr hits);
          pop = (fun _ -> ());
          s_control = (fun _ -> Control.Unsupported);
          close = (fun () -> ());
        }
    in
    let rec wrap k sess =
      if k = 0 then sess
      else begin
        let p = Proto.create ~host ~name:(Printf.sprintf "layer%d" k) () in
        let s =
          Proto.make_session p
            {
              Proto.push = (fun msg -> Proto.push sess msg);
              pop = (fun _ -> ());
              s_control = (fun _ -> Control.Unsupported);
              close = (fun () -> ());
            }
        in
        wrap (k - 1) s
      end
    in
    wrap n bottom
  in
  let crossing n =
    let top = make_chain n in
    let msg = Msg.of_string "x" in
    Test.make ~name:(Printf.sprintf "push through %2d layers" n)
      (Staged.stage (fun () -> Proto.push top msg))
  in
  let msg_ops =
    let m = Msg.fill 1024 'a' in
    [
      Test.make ~name:"msg push+pop 36B header"
        (Staged.stage (fun () ->
             match Msg.pop (Msg.push m (String.make 36 'h')) 36 with
             | Some _ -> ()
             | None -> assert false));
      Test.make ~name:"msg split+append 1KB"
        (Staged.stage (fun () -> ignore (Msg.append (fst (Msg.split m 512)) m)));
      Test.make ~name:"SPRITE_HDR encode+decode"
        (Staged.stage
           (let h =
              {
                Rpc.Wire_fmt.Sprite.flags = 1;
                clnt_host = Addr.Ip.v 10 0 0 1;
                srvr_host = Addr.Ip.v 10 0 0 2;
                channel = 1;
                srvr_process = 0;
                sequence_num = 7;
                num_frags = 1;
                frag_mask = 1;
                command = 3;
                boot_id = 1;
                data1_sz = 0;
                data2_sz = 0;
                data1_off = 0;
                data2_off = 0;
              }
            in
            fun () ->
              ignore
                (Rpc.Wire_fmt.Sprite.decode (Rpc.Wire_fmt.Sprite.encode h))));
      Test.make ~name:"IP checksum over 20B"
        (Staged.stage
           (let hdr = String.make 20 '\x42' in
            fun () -> ignore (Codec.ip_checksum hdr)));
    ]
  in
  let tests =
    Test.make_grouped ~name:"xkernel"
      ([ crossing 1; crossing 5; crossing 10 ] @ msg_ops)
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, ns) -> pr "%-40s %10.1f ns\n" name ns) rows;
  pr
    "\n(A layer crossing adds only a handful of ns of real work - the\n\
    \ x-kernel claim that a layer costs one procedure call.)\n"

(* One optional flag, parsed by hand: [--json FILE] writes every
   experiment's rows plus the full stats-registry dump to FILE. *)
let json_path () =
  let p = ref None in
  let argv = Sys.argv in
  Array.iteri
    (fun i a ->
      if a = "--json" then
        if i + 1 < Array.length argv then p := Some argv.(i + 1)
        else begin
          prerr_endline "bench: --json needs a FILE argument";
          exit 2
        end)
    argv;
  !p

let () =
  let json_path = json_path () in
  pr "RPC in the x-Kernel: reproduction benchmarks\n";
  pr "(virtual-time msec from the calibrated simulator; see DESIGN.md)\n";
  let sections =
    [
      ("intro", E.intro ());
      ("table1", E.table1 ());
      ("table2", E.table2 ());
      ("table3", E.table3 ());
      ("removal", E.removal ());
      ( "figures",
        E.figures
          ~fig2_extra:(fun ~host ~lower ->
            Psync.proto (Psync.create ~host ~lower ()))
          () );
      ("ablation", E.ablation ());
      ("cpu_note", E.cpu_note ());
      ("loss_sweep", E.loss_sweep ());
      ("capacity", E.capacity ());
    ]
  in
  microbench ();
  match json_path with
  | None -> ()
  | Some path -> (
      let doc =
        Json.Obj
          [ ("experiments", Json.Obj sections); ("stats", Stats.json ()) ]
      in
      match Json.write_file path doc with
      | () -> pr "\nwrote JSON results to %s\n" path
      | exception Sys_error e ->
          Printf.eprintf "bench: cannot write JSON: %s\n" e;
          exit 1)
