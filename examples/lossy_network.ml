(* At-most-once and persistence on a lossy wire.

   Sweeps the drop rate of the shared ethernet from 0% to 30% and runs
   a batch of 16 KB RPCs through layered Sprite RPC, counting calls
   that succeed, calls that time out, and — the invariant that matters —
   how many times each call executed on the server.

   Run with:  dune exec examples/lossy_network.exe *)

open Xkernel
module World = Netproto.World

let calls = 20
let payload_size = 16000

let run_batch drop_rate =
  (* fresh registry per batch so the final dump shows only the last run *)
  Stats.reset_registry ();
  let w = World.create ~seed:(7 + int_of_float (drop_rate *. 100.)) () in
  let executions = ref 0 in
  let build (n : World.node) =
    let fragment =
      Rpc.Fragment.create ~host:n.World.host
        ~lower:(Netproto.Vip.proto n.World.vip) ()
    in
    let channel =
      Rpc.Channel.create ~host:n.World.host
        ~lower:(Rpc.Fragment.proto fragment) ()
    in
    (fragment, channel, Rpc.Select.create ~host:n.World.host ~channel ())
  in
  let frag_c, chan_c, sel_c = build (World.node w 0) in
  let _, _, sel_s = build (World.node w 1) in
  Rpc.Select.register sel_s ~command:1 (fun msg ->
      incr executions;
      Ok msg);
  Rpc.Select.serve sel_s;
  let ok = ref 0 and timeouts = ref 0 in
  World.spawn w (fun () ->
      let cl = Rpc.Select.connect sel_c ~server:(World.ip_of w 1) in
      (* Warm up cleanly so ARP is not part of the story. *)
      ignore (Rpc.Select.call cl ~command:1 Msg.empty);
      Wire.set_drop_rate w.World.wire drop_rate;
      let payload = Msg.fill payload_size 'L' in
      for _ = 1 to calls do
        match Rpc.Select.call cl ~command:1 payload with
        | Ok reply ->
            assert (Msg.length reply = payload_size);
            incr ok
        | Error Rpc.Rpc_error.Timeout -> incr timeouts
        | Error e -> failwith (Rpc.Rpc_error.to_string e)
      done);
  World.run w;
  let stat p name = Control.int_exn (Proto.control p (Control.Get_stat name)) in
  Printf.printf "%5.0f%% %9d %9d %12d %12d %12d %14d\n%!" (drop_rate *. 100.)
    !ok !timeouts
    (!executions - 1) (* minus warm-up *)
    (stat (Rpc.Channel.proto chan_c) "retransmit")
    (stat (Rpc.Fragment.proto frag_c) "retransmit")
    (stat (Rpc.Fragment.proto frag_c) "nack-tx")

let () =
  Printf.printf
    "%d calls of %d KB through SELECT-CHANNEL-FRAGMENT-VIP per drop rate\n\n"
    calls (payload_size / 1000);
  Printf.printf "%5s %9s %9s %12s %12s %12s %14s\n" "drop" "ok" "timeout"
    "executions" "chan-rexmit" "frag-rexmit" "frag-nack-tx";
  print_endline (String.make 80 '-');
  List.iter run_batch [ 0.0; 0.01; 0.05; 0.10; 0.20; 0.30 ];
  print_endline
    "\nInvariant on display: executions never exceeds ok + timeouts — a call\n\
     may fail, but it never runs twice (at-most-once), no matter how many\n\
     retransmissions and fragment NACKs the loss forces underneath.";
  print_endline
    "FRAGMENT's NACKs repair most single-fragment losses cheaply; CHANNEL's\n\
     retransmissions (full-message retries) only kick in when a whole\n\
     message or a reply vanished.";
  (* Client-side counters from the last (30% drop) batch, via the stats
     registry: every nonzero counter of the h0.0/* protocol tables. *)
  print_endline "\nClient-side counters of the 30% batch (stats registry):";
  List.iter
    (fun (name, counters) ->
      if String.length name >= 5 && String.sub name 0 5 = "h0.0/" then
        let nonzero = List.filter (fun (_, v) -> v <> 0) counters in
        if nonzero <> [] then begin
          Printf.printf "  %-14s" name;
          List.iter (fun (k, v) -> Printf.printf " %s=%d" k v) nonzero;
          print_newline ()
        end)
    (Stats.dump ())
