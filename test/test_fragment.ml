open Xkernel
module World = Netproto.World
module Fragment = Rpc.Fragment

(* Build a FRAGMENT-VIP pair with a recording sink above the server
   side and a raw session open on the client side. *)
let setup ?(frag_size = 1024) w =
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let f0 =
    Fragment.create ~host:n0.World.host ~lower:(Netproto.Vip.proto n0.World.vip)
      ~frag_size ()
  in
  let f1 =
    Fragment.create ~host:n1.World.host ~lower:(Netproto.Vip.proto n1.World.vip)
      ~frag_size ()
  in
  let received = ref [] in
  let up = Proto.create ~host:n1.World.host ~name:"SINK" () in
  Proto.set_ops up
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "sink");
      open_enable = (fun ~upper:_ _ -> invalid_arg "sink");
      open_done = (fun ~upper:_ _ -> invalid_arg "sink");
      demux = (fun ~lower:_ msg -> received := Msg.to_string msg :: !received);
      p_control = (fun _ -> Control.Unsupported);
    };
  Proto.open_enable (Fragment.proto f1) ~upper:up
    (Part.v ~local:[ Part.Ip_proto 200 ] ());
  let sess =
    Tutil.run_in w (fun () ->
        Proto.open_ (Fragment.proto f0)
          ~upper:(Proto.create ~host:n0.World.host ~name:"NULL" ())
          (Part.v
             ~local:[ Part.Ip n0.World.host.Host.ip; Part.Ip_proto 200 ]
             ~remotes:[ [ Part.Ip n1.World.host.Host.ip; Part.Ip_proto 200 ] ]
             ()))
  in
  (f0, f1, sess, received)

let send w sess m = Tutil.run_in w (fun () -> Proto.push sess m)

let single_fragment () =
  let w = World.create () in
  let f0, f1, sess, got = setup w in
  send w sess (Msg.of_string "tiny");
  Alcotest.(check (list string)) "delivered" [ "tiny" ] !got;
  Tutil.check_int "one fragment" 1 (Tutil.stat (Fragment.proto f0) "tx-frag");
  Tutil.check_int "one message" 1 (Tutil.stat (Fragment.proto f1) "rx-msg")

let sixteen_fragments () =
  (* "for each 16k-byte message, FRAGMENT handles 16 messages" *)
  let w = World.create () in
  let f0, f1, sess, got = setup w in
  let payload = Tutil.body 16384 in
  send w sess (Msg.of_string payload);
  (match !got with
  | [ s ] -> Tutil.check_str "16k roundtrip" payload s
  | _ -> Alcotest.fail "expected one delivery");
  Tutil.check_int "exactly 16 packets" 16 (Tutil.stat (Fragment.proto f0) "tx-frag");
  Tutil.check_int "received 16" 16 (Tutil.stat (Fragment.proto f1) "rx-frag")

let empty_message () =
  let w = World.create () in
  let _, _, sess, got = setup w in
  send w sess Msg.empty;
  Alcotest.(check (list string)) "empty delivered" [ "" ] !got

let odd_sizes_roundtrip () =
  let w = World.create () in
  let _, _, sess, got = setup w in
  let sizes = [ 1; 1023; 1024; 1025; 2048; 5000; 16000 ] in
  List.iter (fun n -> send w sess (Msg.of_string (Tutil.body n))) sizes;
  let lens = List.rev_map String.length !got in
  Alcotest.(check (list int)) "all sizes arrive intact" sizes lens

let nack_recovers_lost_fragment () =
  let w = World.create () in
  (* Drop one data fragment (after the ARP exchange, frames 2+ carry
     data; drop the 4th transmission). *)
  Wire.set_fault_hook w.World.wire
    (Some (fun n _ -> if n = 4 then [ Wire.Drop ] else []));
  let f0, f1, sess, got = setup w in
  let payload = Tutil.body 8192 in
  send w sess (Msg.of_string payload);
  Tutil.run_in w (fun () -> Sim.delay w.World.sim 0.5);
  (match !got with
  | [ s ] -> Tutil.check_str "recovered" payload s
  | _ -> Alcotest.fail "expected one (recovered) delivery");
  Alcotest.(check bool) "receiver asked for the missing piece" true
    (Tutil.stat (Fragment.proto f1) "nack-tx" >= 1);
  Alcotest.(check bool) "sender retransmitted from cache" true
    (Tutil.stat (Fragment.proto f0) "retransmit" >= 1)

let whole_message_loss_is_silent () =
  (* Unreliable: if every fragment dies, nobody ever finds out. *)
  let w = World.create () in
  let f0, f1, sess, got = setup w in
  (* warm up ARP/open with one successful message *)
  send w sess (Msg.of_string "warm");
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Drop ]));
  send w sess (Msg.of_string "doomed");
  Tutil.run_in w (fun () -> Sim.delay w.World.sim 3.0);
  Alcotest.(check (list string)) "only the warm-up arrived" [ "warm" ] !got;
  Tutil.check_int "no nacks (nothing arrived)" 0
    (Tutil.stat (Fragment.proto f1) "nack-tx");
  Alcotest.(check bool) "sender cache discarded by timer" true
    (Tutil.stat (Fragment.proto f0) "cache-drop" >= 1)

let gives_up_after_nack_retries () =
  let w = World.create () in
  let drop_all_retransmits = ref false in
  Wire.set_fault_hook w.World.wire
    (Some
       (fun n _ ->
         (* Drop fragment #4 and, once we flip the switch, everything
            the sender emits — so NACKs can never be satisfied. *)
         if n = 4 || !drop_all_retransmits then [ Wire.Drop ] else []));
  let f0, f1, sess, got = setup w in
  ignore f0;
  drop_all_retransmits := false;
  (* trick: mark after initial send; flip inside a fiber after push *)
  Tutil.run_in w (fun () ->
      Proto.push sess (Msg.fill 4096 'x');
      drop_all_retransmits := true);
  Tutil.run_in w (fun () -> Sim.delay w.World.sim 3.0);
  Alcotest.(check (list string)) "never delivered" [] !got;
  Alcotest.(check bool) "gave up" true (Tutil.stat (Fragment.proto f1) "give-up" >= 1)

let duplicate_suppression () =
  let w = World.create () in
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Duplicate ]));
  let _, f1, sess, got = setup w in
  send w sess (Msg.of_string (Tutil.body 3000));
  Tutil.check_int "delivered once" 1 (List.length !got);
  Alcotest.(check bool) "duplicates observed" true
    (Tutil.stat (Fragment.proto f1) "rx-dup-frag"
     + Tutil.stat (Fragment.proto f1) "rx-dup-complete"
    > 0)

let idle_receiver_prunes_recent () =
  (* The dedup table used to be pruned only on the next delivery, so a
     receiver whose traffic stopped kept every completed sequence number
     forever.  The prune timer must empty it once the cache TTL (2 s)
     has passed with no traffic. *)
  let w = World.create () in
  let _, f1, sess, got = setup w in
  let while_hot = ref 0 in
  (* One fiber sends everything, then samples the table while the
     traffic is still fresh; the run then idles until the event queue —
     prune timers included — drains. *)
  Tutil.run_in w (fun () ->
      for i = 1 to 20 do
        Proto.push sess (Msg.of_string (string_of_int i))
      done;
      Sim.delay w.World.sim 0.05;
      while_hot := Fragment.recent_count f1);
  Tutil.check_int "all delivered" 20 (List.length !got);
  Tutil.check_int "dedup table populated while hot" 20 !while_hot;
  Tutil.check_int "dedup table empty after idling" 0
    (Fragment.recent_count f1);
  Tutil.check_int "prunes counted" 20
    (Tutil.stat (Fragment.proto f1) "recent-pruned")

let reboot_clears_partial_reassembly () =
  (* A reboot mid-reassembly must drop the partial message with the
     crashed kernel.  Without the at_reboot hook the surviving gap
     timer would find the stale entry, NACK for the missing fragment,
     and the sender's retransmission would complete a pre-crash message
     into the new incarnation. *)
  let w = World.create () in
  let n1 = World.node w 1 in
  let _, f1, sess, got = setup w in
  let partial = ref (-1) and after_reboot = ref (-1) in
  Tutil.run_in w (fun () ->
      (* Drop the third frame of the four-fragment message, leaving the
         receiver holding a partial reassembly with a gap timer armed. *)
      let n = ref 0 in
      Wire.set_fault_hook w.World.wire
        (Some
           (fun _ _ ->
             incr n;
             if !n = 3 then [ Wire.Drop ] else []));
      Proto.push sess (Msg.of_string (Tutil.body 4096));
      Wire.set_fault_hook w.World.wire None;
      Sim.delay w.World.sim 0.01;
      partial := Fragment.reasm_count f1;
      Host.reboot n1.World.host;
      after_reboot := Fragment.reasm_count f1);
  Tutil.check_int "partial reassembly held before the crash" 1 !partial;
  Tutil.check_int "cleared by the reboot" 0 !after_reboot;
  (* The run has drained: every surviving gap/cache timer fired and
     no-opped.  No NACK was sent, nothing was delivered. *)
  Alcotest.(check (list string)) "pre-crash message never delivered" [] !got;
  Tutil.check_int "no NACK from the new incarnation" 0
    (Tutil.stat (Fragment.proto f1) "nack-tx");
  Tutil.check_int "dedup tables died with the kernel" 0
    (Fragment.recent_count f1);
  Tutil.check_int "crash reset counted" 1
    (Tutil.stat (Fragment.proto f1) "crash-reset");
  (* The layer still works across the boot: a fresh post-reboot message
     (fresh sequence number — the sender keeps counting) is delivered. *)
  Tutil.run_in w (fun () -> Proto.push sess (Msg.of_string "fresh"));
  Alcotest.(check (list string)) "post-reboot delivery" [ "fresh" ] !got

let resend_is_new_message () =
  (* A higher-level retransmission through FRAGMENT gets a fresh
     sequence number and is delivered again: FRAGMENT does not dedup
     across pushes (section 3.2). *)
  let w = World.create () in
  let _, _, sess, got = setup w in
  send w sess (Msg.of_string "again");
  send w sess (Msg.of_string "again");
  Alcotest.(check (list string)) "two deliveries" [ "again"; "again" ] !got

let reorder_within_message () =
  let w = World.create () in
  Wire.set_fault_hook w.World.wire
    (Some (fun n _ -> if n mod 2 = 0 then [ Wire.Delay 0.003 ] else []));
  let _, _, sess, got = setup w in
  let payload = Tutil.body 6000 in
  send w sess (Msg.of_string payload);
  Tutil.run_in w (fun () -> Sim.delay w.World.sim 0.5);
  match !got with
  | [ s ] -> Tutil.check_str "reassembled despite reorder" payload s
  | _ -> Alcotest.fail "expected one delivery"

let max_message_enforced () =
  let w = World.create () in
  let f0, _, sess, got = setup w in
  (* Slightly over 16 x frag_size still fits by rounding the fragment
     size up (headers on a 16 KB payload must work)... *)
  send w sess (Msg.fill (Fragment.max_message f0 + 100) 'x');
  Tutil.check_int "slack absorbed" 1 (List.length !got);
  (* ...but 16 fragments of wire-MTU size is a hard ceiling. *)
  send w sess (Msg.fill (16 * (1500 - 23) + 1) 'y');
  Tutil.check_int "nothing more delivered" 1 (List.length !got);
  Tutil.check_int "too-big" 1 (Tutil.stat (Fragment.proto f0) "too-big")

let controls () =
  let w = World.create () in
  let f0, _, sess, _ = setup w in
  Tutil.check_int "frag size" 1024
    (Control.int_exn (Proto.session_control sess Control.Get_frag_size));
  Tutil.check_int "max message" 16384
    (Control.int_exn (Proto.session_control sess Control.Get_max_packet));
  Tutil.check_int "max msg to lower is one fragment" (1024 + 23)
    (Control.int_exn (Proto.control (Fragment.proto f0) Control.Get_max_msg_size))

(* Property: under arbitrary (bounded) drop/dup/reorder of individual
   frames, every message FRAGMENT *does* deliver is byte-identical to
   one that was sent, and never delivered as a corrupted hybrid. *)
let prop_integrity_under_faults =
  Tutil.qtest ~count:30 "delivered messages are intact under faults"
    QCheck.(pair (int_bound 1000) (list_of_size (Gen.int_range 1 4) (int_range 0 5000)))
    (fun (seed, sizes) ->
      let w = World.create ~seed () in
      let rng = Random.State.make [| seed |] in
      Wire.set_fault_hook w.World.wire
        (Some
           (fun _ _ ->
             match Random.State.int rng 10 with
             | 0 -> [ Wire.Drop ]
             | 1 -> [ Wire.Duplicate ]
             | 2 -> [ Wire.Delay 0.002 ]
             | _ -> []));
      let _, _, sess, got = setup w in
      let sent = List.map (fun n -> Tutil.body n) sizes in
      List.iter (fun s -> Tutil.run_in w (fun () -> Proto.push sess (Msg.of_string s))) sent;
      Tutil.run_in w (fun () -> Sim.delay w.World.sim 1.0);
      List.for_all (fun d -> List.mem d sent) !got)

let () =
  Alcotest.run "fragment"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "single fragment" `Quick single_fragment;
          Alcotest.test_case "16k = 16 packets" `Quick sixteen_fragments;
          Alcotest.test_case "empty message" `Quick empty_message;
          Alcotest.test_case "odd sizes" `Quick odd_sizes_roundtrip;
          Alcotest.test_case "controls" `Quick controls;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "NACK recovers loss" `Quick nack_recovers_lost_fragment;
          Alcotest.test_case "whole-message loss is silent" `Quick
            whole_message_loss_is_silent;
          Alcotest.test_case "gives up eventually" `Quick gives_up_after_nack_retries;
          Alcotest.test_case "duplicate suppression" `Quick duplicate_suppression;
          Alcotest.test_case "re-push is a new message" `Quick resend_is_new_message;
          Alcotest.test_case "reboot clears partial reassembly" `Quick
            reboot_clears_partial_reassembly;
          Alcotest.test_case "idle receiver prunes dedup table" `Quick
            idle_receiver_prunes_recent;
          Alcotest.test_case "reorder within message" `Quick reorder_within_message;
          Alcotest.test_case "max message enforced" `Quick max_message_enforced;
          prop_integrity_under_faults;
        ] );
    ]
