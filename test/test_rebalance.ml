(* Dynamic shard map: rendezvous assignment, the wire codec, the MAP
   coordinator, the wrong-shard handshake, graceful handoff, and the
   chaos rebalancer — unit-level first, then end-to-end over replicated
   fan-outs with a scripted crash. *)
open Xkernel
module World = Netproto.World
module Stacks = Rpc.Stacks
module Shard_map = Rpc.Shard_map
module Select = Rpc.Select
module Select_replica = Rpc.Select_replica
module Rebalance = Rpc.Rebalance
module S = Rpc.Wire_fmt.Select

(* --- the map itself ------------------------------------------------------ *)

let assignment_deterministic () =
  let a = Shard_map.create ~seed:42 ~shards:16 ~replicas:4 in
  let b = Shard_map.create ~seed:42 ~shards:16 ~replicas:4 in
  Tutil.check_int "same version" (Shard_map.version a) (Shard_map.version b);
  for s = 0 to 15 do
    Tutil.check_int
      (Printf.sprintf "shard %d same owner" s)
      (Shard_map.owner a ~shard:s)
      (Shard_map.owner b ~shard:s);
    Alcotest.(check bool) "owner in range" true
      (Shard_map.owner a ~shard:s >= 0 && Shard_map.owner a ~shard:s < 4)
  done;
  let total =
    List.fold_left
      (fun acc r -> acc + Shard_map.shards_owned a ~replica:r)
      0 [ 0; 1; 2; 3 ]
  in
  Tutil.check_int "every shard owned exactly once" 16 total

let reassign_moves_only_the_dead_replicas_shards () =
  let m = Shard_map.create ~seed:7 ~shards:32 ~replicas:4 in
  let dead = 1 in
  let owned = Shard_map.shards_owned m ~replica:dead in
  Alcotest.(check bool) "seed 7 gives replica 1 some shards" true (owned > 0);
  match Shard_map.reassign m ~dead:[ dead ] with
  | None -> Alcotest.fail "reassign returned None with shards to move"
  | Some m' ->
      Tutil.check_int "version bumped"
        (Shard_map.version m + 1)
        (Shard_map.version m');
      let changed = Shard_map.diff m m' in
      (* Minimal movement: exactly the dead replica's shards moved, and
         every survivor kept its owner. *)
      Tutil.check_int "exactly the dead shards moved" owned
        (List.length changed);
      List.iter
        (fun s ->
          Tutil.check_int "moved shard was the dead replica's" dead
            (Shard_map.owner m ~shard:s);
          Alcotest.(check bool) "new owner is live" true
            (Shard_map.owner m' ~shard:s <> dead))
        changed;
      Tutil.check_int "dead replica drained" 0
        (Shard_map.shards_owned m' ~replica:dead);
      (* Nothing left to do: a second reassign is a no-op. *)
      Alcotest.(check bool) "reassign idempotent" true
        (Shard_map.reassign m' ~dead:[ dead ] = None)

let move_and_versioning () =
  let m = Shard_map.create ~seed:3 ~shards:8 ~replicas:3 in
  let o = Shard_map.owner m ~shard:5 in
  let m' = Shard_map.move m ~shard:5 ~to_:((o + 1) mod 3) in
  Tutil.check_int "moved" ((o + 1) mod 3) (Shard_map.owner m' ~shard:5);
  Tutil.check_int "version bumped" 2 (Shard_map.version m');
  (* A no-op move does not burn a generation. *)
  let same = Shard_map.move m ~shard:5 ~to_:o in
  Tutil.check_int "no-op move keeps the version" 1 (Shard_map.version same);
  Alcotest.(check bool) "newer_than is lexicographic" true
    (Shard_map.newer_than m' ~epoch:(Shard_map.epoch m) ~version:1);
  Alcotest.(check bool) "not newer than itself" false
    (Shard_map.newer_than m' ~epoch:(Shard_map.epoch m') ~version:2)

let codec_roundtrip () =
  let m = Shard_map.create ~seed:99 ~shards:24 ~replicas:5 in
  let m = Shard_map.move m ~shard:3 ~to_:((Shard_map.owner m ~shard:3 + 1) mod 5) in
  (match Shard_map.decode (Shard_map.encode m) with
  | None -> Alcotest.fail "roundtrip decode failed"
  | Some d ->
      Tutil.check_int "epoch" (Shard_map.epoch m) (Shard_map.epoch d);
      Tutil.check_int "version" (Shard_map.version m) (Shard_map.version d);
      for s = 0 to 23 do
        Tutil.check_int "owner"
          (Shard_map.owner m ~shard:s)
          (Shard_map.owner d ~shard:s)
      done);
  (* Malformed inputs are rejected, not trusted. *)
  Alcotest.(check bool) "empty rejected" true (Shard_map.decode "" = None);
  let enc = Shard_map.encode m in
  Alcotest.(check bool) "truncated rejected" true
    (Shard_map.decode (String.sub enc 0 (String.length enc - 1)) = None);
  let bad = Bytes.of_string enc in
  (* Owner byte out of range (>= n_replicas). *)
  Bytes.set bad (String.length enc - 1) '\xff';
  Alcotest.(check bool) "bad owner rejected" true
    (Shard_map.decode (Bytes.to_string bad) = None)

let stamp_codec_roundtrip () =
  let st = { S.shard = 513; epoch = 0xDEADBEE; version = 42 } in
  match S.decode_stamp (S.encode_stamp st) with
  | None -> Alcotest.fail "stamp roundtrip failed"
  | Some d ->
      Tutil.check_int "shard" st.S.shard d.S.shard;
      Tutil.check_int "epoch" st.S.epoch d.S.epoch;
      Tutil.check_int "version" st.S.version d.S.version

(* --- the MAP coordinator -------------------------------------------------- *)

let coordinator_monotonic () =
  let w = World.create () in
  let host = (World.node w 0).World.host in
  let m1 = Shard_map.create ~seed:5 ~shards:8 ~replicas:3 in
  let c = Shard_map.Coordinator.create ~host ~map:m1 () in
  let m2 =
    Shard_map.move m1 ~shard:0 ~to_:((Shard_map.owner m1 ~shard:0 + 1) mod 3)
  in
  Shard_map.Coordinator.install c m2;
  Tutil.check_int "installed v2" 2
    (Shard_map.version (Shard_map.Coordinator.current c));
  Tutil.check_int "one shard moved" 1 (Shard_map.Coordinator.moved c);
  (* Stale generations are refused silently. *)
  Shard_map.Coordinator.install c m1;
  Tutil.check_int "still v2" 2
    (Shard_map.version (Shard_map.Coordinator.current c));
  Tutil.check_int "no phantom movement" 1 (Shard_map.Coordinator.moved c);
  World.run w

(* --- the wrong-shard handshake, end to end ------------------------------- *)

let wrong_shard_refresh_retry () =
  Stats.reset_registry ();
  let fo = World.create_fanout ~clients:1 ~servers:3 () in
  let w = fo.World.fo in
  let map = Shard_map.create ~seed:7 ~shards:6 ~replicas:3 in
  let s = Stacks.lrpc_fanout ~policy:Select_replica.Hash ~shard_map:map fo in
  let r = s.Stacks.fos_replicas.(0) in
  (* Move shard 0 (key 0) and teach the servers the new generation out
     of band; the client deliberately stays on v1 with a refresh hook
     that installs v2 — exactly the stale-client window. *)
  let old_owner = Shard_map.owner map ~shard:0 in
  let m2 = Shard_map.move map ~shard:0 ~to_:((old_owner + 1) mod 3) in
  Array.iter
    (fun sel -> ignore (Select.install_shard_map sel m2))
    s.Stacks.fos_selects;
  Select_replica.set_refresh r (fun () ->
      ignore (Select_replica.install_map r m2));
  let res =
    Tutil.run_in w (fun () ->
        s.Stacks.fos_call 0 ~key:0 ~command:Stacks.cmd_echo
          (Msg.of_string "k"))
  in
  (match res with
  | Ok reply -> Tutil.check_str "echo survived" "k" (Msg.to_string reply)
  | Error e ->
      Alcotest.failf "handshake failed: %s" (Rpc.Rpc_error.to_string e));
  Tutil.check_int "client refreshed to v2" 2 (Select_replica.map_version r);
  Alcotest.(check bool) "stale stamp was bounced" true
    (Tutil.stat (Select_replica.proto r) "wrong-shard-rx" >= 1);
  (* The refresh retry is free: no failover, no health damage. *)
  Tutil.check_int "no failover burned" 0 (Select_replica.failovers r);
  Alcotest.(check bool) "old owner still healthy" true
    (Select_replica.health r old_owner = Select_replica.Healthy)

(* --- graceful handoff ----------------------------------------------------- *)

let handoff_forces_the_straggler () =
  let w = World.create () in
  let host = (World.node w 0).World.host in
  let sim = w.World.sim in
  let map = Shard_map.create ~seed:1 ~shards:4 ~replicas:3 in
  let shard = 0 in
  let old_owner = Shard_map.owner map ~shard in
  let new_owner = (old_owner + 1) mod 3 in
  let hits = Array.make 3 0 in
  let endpoints =
    Array.init 3 (fun i ->
        {
          Select_replica.ep_addr = Addr.Ip.v 10 9 9 (i + 1);
          ep_call =
            (fun ?expires:_ ?shard:_ ~command:_ msg ->
              hits.(i) <- hits.(i) + 1;
              (* The old owner never answers within the attempt; the
                 drain deadline, not the attempt timeout, must cut the
                 call over. *)
              if i = old_owner then Sim.delay sim 2.0;
              Ok msg);
        })
  in
  let t =
    Select_replica.create ~host ~policy:Select_replica.Hash
      ~attempt_timeout:1.0 ~deadline:3.0 ~drain_deadline:0.01 ~shard_map:map
      ~endpoints ()
  in
  let m2 = Shard_map.move map ~shard ~to_:new_owner in
  Select_replica.set_refresh t (fun () ->
      ignore (Select_replica.install_map t m2));
  (* Install the new map while the call is parked on the old owner. *)
  ignore (Sim.after sim 0.05 (fun () -> ignore (Select_replica.install_map t m2)));
  let elapsed = ref 0. in
  let res =
    Tutil.run_in w (fun () ->
        let t0 = Sim.now sim in
        let r = Select_replica.call t ~key:shard ~command:Stacks.cmd_null Msg.empty in
        elapsed := Sim.now sim -. t0;
        r)
  in
  ignore (Tutil.ok_exn "handoff completed the call" res);
  Tutil.check_int "old owner was tried" 1 hits.(old_owner);
  Tutil.check_int "new owner served" 1 hits.(new_owner);
  Tutil.check_int "one forced handoff" 1
    (Tutil.stat (Select_replica.proto t) "handoff-forced");
  Alcotest.(check bool)
    (Printf.sprintf "drain bound, not the attempt timeout (%.3f s)" !elapsed)
    true
    (!elapsed < 0.2)

(* --- chaos crash over the monolithic fan-out ------------------------------ *)

(* Open loop over mrpc_fanout (whose wire cannot carry stamps) with a
   mid-run crash and the crash rebalancer: conservation must hold
   exactly — every arrival completes, fails or is shed, none lost, and
   the run drains (no hung fibers). *)
let mrpc_chaos_run () =
  Stats.reset_registry ();
  let arrivals = 250 and rate = 500. and window = 16 in
  let fo = World.create_fanout ~clients:2 ~servers:3 ~seed:11 () in
  let w = fo.World.fo in
  let sim = w.World.sim in
  let map = Shard_map.create ~seed:11 ~shards:8 ~replicas:3 in
  let s =
    Stacks.mrpc_fanout ~policy:Select_replica.Hash ~shard_map:map
      ~attempt_timeout:0.04 ~deadline:0.3 ~probation:0.02 ~probe_limit:2
      ~probe_timeout:0.03 fo
  in
  Chaos.apply ~wire:w.World.wire ~devices:(World.devices w)
    [
      { Chaos.from_t = 0.3; until_t = 1.2; spec = Chaos.Crash 0 };
      {
        Chaos.from_t = 0.3;
        until_t = 1.2;
        spec = Chaos.Partition { a = [ 0 ]; b = [ 1; 2; 3; 4 ] };
      };
    ];
  let coord = Option.get s.Stacks.fos_coord in
  let replicas = s.Stacks.fos_replicas in
  let replica_health r =
    let dead =
      Array.fold_left
        (fun n cl ->
          if Select_replica.health cl r = Select_replica.Dead then n + 1 else n)
        0 replicas
    in
    if 2 * dead >= Array.length replicas then `Dead else `Up
  in
  let shard_load () =
    let acc = Array.make 8 0 in
    Array.iter
      (fun cl ->
        Array.iteri
          (fun i v -> acc.(i) <- acc.(i) + v)
          (Select_replica.shard_calls cl))
      replicas;
    acc
  in
  let rb =
    Rebalance.create ~host:s.Stacks.fos_clients.(0) ~coord ~replica_health
      ~shard_load ~interval:0.025 ~on_skew:false ()
  in
  Rebalance.start rb ~until:0.8;
  let completed = ref 0 and failed = ref 0 and shed = ref 0 in
  let pending = ref 0 in
  Tutil.run_in w (fun () ->
      for k = 0 to arrivals - 1 do
        if !pending >= window then incr shed
        else begin
          incr pending;
          Sim.spawn sim (fun () ->
              (match
                 s.Stacks.fos_call (k mod 2) ~key:k ~command:Stacks.cmd_null
                   Msg.empty
               with
              | Ok _ -> incr completed
              | Error _ -> incr failed);
              decr pending)
        end;
        if k < arrivals - 1 then Sim.delay sim (1. /. rate)
      done);
  (* run_in drained the world: no hung fibers. *)
  let lost = arrivals - !completed - !failed - !shed in
  Json.to_string
    (Json.Obj
       [
         ("completed", Json.Int !completed);
         ("failed", Json.Int !failed);
         ("shed", Json.Int !shed);
         ("lost", Json.Int lost);
         ("moved", Json.Int (Rebalance.moves rb));
         ( "map_version",
           Json.Int
             (Array.fold_left
                (fun a r -> max a (Select_replica.map_version r))
                0 replicas) );
       ])

let mrpc_chaos_conservation () =
  let row = mrpc_chaos_run () in
  let get k =
    match Json.parse row with
    | Ok (Json.Obj kvs) -> (
        match List.assoc k kvs with Json.Int n -> n | _ -> -1)
    | _ -> -1
  in
  Alcotest.(check bool) "some calls completed" true (get "completed" > 0);
  Tutil.check_int "lost_calls is zero" 0 (get "lost");
  Alcotest.(check bool) "the crash moved shards" true (get "moved" > 0);
  Alcotest.(check bool) "clients installed the new map" true
    (get "map_version" > 1)

let mrpc_chaos_deterministic () =
  let a = mrpc_chaos_run () in
  let b = mrpc_chaos_run () in
  Tutil.check_str "identical JSON twice" a b

let experiment_deterministic () =
  let run () =
    Rpc.Experiments.rebalance ~servers:3 ~clients:2 ~shards:8 ~rate:400.
      ~arrivals:240 ~modes:[ "crash-rebalance" ] ()
  in
  let a = Json.to_string (run ()) in
  let b = Json.to_string (run ()) in
  Tutil.check_str "identical JSON twice" a b

let () =
  Alcotest.run "rebalance"
    [
      ( "map",
        [
          Alcotest.test_case "assignment deterministic" `Quick
            assignment_deterministic;
          Alcotest.test_case "reassign moves only the dead shards" `Quick
            reassign_moves_only_the_dead_replicas_shards;
          Alcotest.test_case "move and versioning" `Quick move_and_versioning;
          Alcotest.test_case "codec roundtrip and rejection" `Quick
            codec_roundtrip;
          Alcotest.test_case "stamp codec roundtrip" `Quick
            stamp_codec_roundtrip;
        ] );
      ( "control-plane",
        [
          Alcotest.test_case "coordinator monotonic" `Quick
            coordinator_monotonic;
          Alcotest.test_case "wrong-shard refresh retry" `Quick
            wrong_shard_refresh_retry;
          Alcotest.test_case "handoff forces the straggler" `Quick
            handoff_forces_the_straggler;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "mrpc crash: conservation" `Quick
            mrpc_chaos_conservation;
          Alcotest.test_case "mrpc crash: deterministic" `Quick
            mrpc_chaos_deterministic;
          Alcotest.test_case "experiment deterministic" `Quick
            experiment_deterministic;
        ] );
    ]
