open Xkernel
module World = Netproto.World
module Stacks = Rpc.Stacks
module Measure = Rpc.Measure

(* Integration: every measured configuration completes RPCs correctly,
   and the paper's qualitative performance claims hold. *)

let all_builders =
  [
    ("M.RPC-ETH", fun w -> Stacks.mrpc w ~lower:Stacks.L_eth);
    ("M.RPC-IP", fun w -> Stacks.mrpc w ~lower:Stacks.L_ip);
    ("M.RPC-VIP", fun w -> Stacks.mrpc w ~lower:Stacks.L_vip);
    ("L.RPC-VIP", fun w -> Stacks.lrpc w);
    ("SELECT-CHANNEL-VIPsize", Stacks.lrpc_vip_size);
  ]

let every_config_echoes () =
  List.iter
    (fun (name, mk) ->
      let w = World.create () in
      let e = mk w in
      let payload = Tutil.body 3000 in
      let r =
        Tutil.run_in w (fun () ->
            e.Stacks.call ~command:Stacks.cmd_echo (Msg.of_string payload))
      in
      Tutil.check_str (name ^ " echoes 3k") payload
        (Msg.to_string (Tutil.ok_exn name r)))
    all_builders

let every_config_null_call () =
  List.iter
    (fun (name, mk) ->
      let w = World.create () in
      let e = mk w in
      let r =
        Tutil.run_in w (fun () -> e.Stacks.call ~command:Stacks.cmd_null Msg.empty)
      in
      Alcotest.(check bool) (name ^ " null ok") true
        (match r with Ok m -> Msg.is_empty m | Error _ -> false))
    all_builders

let mono_and_layered_equivalent () =
  (* Semantically equivalent services: same inputs, same outputs,
     different wire protocols. *)
  let run mk =
    let w = World.create () in
    let e = mk w in
    Tutil.run_in w (fun () ->
        List.map
          (fun size ->
            Msg.to_string
              (Tutil.ok_exn "call"
                 (e.Stacks.call ~command:Stacks.cmd_echo (Msg.of_string (Tutil.body size)))))
          [ 0; 1; 1024; 5000; 16000 ])
  in
  let mono = run (fun w -> Stacks.mrpc w ~lower:Stacks.L_vip) in
  let layered = run (fun w -> Stacks.lrpc w) in
  Alcotest.(check (list string)) "identical results" mono layered

let layered_under_loss_and_dup () =
  (* End-to-end correctness of the full layered stack under a nasty
     wire: random drops, duplicates and reordering. *)
  let w = World.create ~seed:3 () in
  let e = Stacks.lrpc w in
  (* warm up cleanly, then make the wire nasty *)
  ignore
    (Tutil.run_in w (fun () -> e.Stacks.call ~command:Stacks.cmd_null Msg.empty));
  let rng = Random.State.make [| 99 |] in
  Wire.set_fault_hook w.World.wire
    (Some
       (fun _ _ ->
         match Random.State.int rng 12 with
         | 0 -> [ Wire.Drop ]
         | 1 -> [ Wire.Duplicate ]
         | 2 -> [ Wire.Delay 0.001 ]
         | _ -> []));
  let payload = Tutil.body 8000 in
  Tutil.run_in w (fun () ->
      for _ = 1 to 10 do
        match e.Stacks.call ~command:Stacks.cmd_echo (Msg.of_string payload) with
        | Ok r -> Tutil.check_str "intact under faults" payload (Msg.to_string r)
        | Error Rpc.Rpc_error.Timeout -> () (* legitimate under heavy loss *)
        | Error e -> Alcotest.failf "unexpected: %s" (Rpc.Rpc_error.to_string e)
      done)

(* --- the paper's shape claims, asserted --- *)

let lat mk =
  let w = World.create () in
  Measure.latency ~iters:20 w (mk w)

let vip_overhead_negligible () =
  let eth = lat (fun w -> Stacks.mrpc w ~lower:Stacks.L_eth) in
  let vip = lat (fun w -> Stacks.mrpc w ~lower:Stacks.L_vip) in
  Alcotest.(check bool)
    (Printf.sprintf "VIP (%.2f) within 0.1ms of ETH (%.2f)" vip eth)
    true
    (vip -. eth < 0.1 && vip >= eth)

let ip_penalty_significant () =
  let eth = lat (fun w -> Stacks.mrpc w ~lower:Stacks.L_eth) in
  let ip = lat (fun w -> Stacks.mrpc w ~lower:Stacks.L_ip) in
  let penalty = ip -. eth in
  Alcotest.(check bool)
    (Printf.sprintf "IP penalty %.2fms in [0.2, 0.6]" penalty)
    true
    (penalty > 0.2 && penalty < 0.6)

let layering_costs_something_but_not_much () =
  let mono = lat (fun w -> Stacks.mrpc w ~lower:Stacks.L_vip) in
  let layered = lat (fun w -> Stacks.lrpc w) in
  let penalty = layered -. mono in
  Alcotest.(check bool)
    (Printf.sprintf "layering penalty %.2fms in (0, 0.5)" penalty)
    true
    (penalty > 0. && penalty < 0.5)

let vip_size_recovers_monolithic_latency () =
  (* Section 4.3: bypassing FRAGMENT recovers M.RPC latency. *)
  let mono = lat (fun w -> Stacks.mrpc w ~lower:Stacks.L_vip) in
  let layered = lat (fun w -> Stacks.lrpc w) in
  let bypass = lat Stacks.lrpc_vip_size in
  Alcotest.(check bool)
    (Printf.sprintf "bypass (%.2f) < layered (%.2f)" bypass layered)
    true (bypass < layered);
  Alcotest.(check bool)
    (Printf.sprintf "bypass (%.2f) within 0.15ms of mono (%.2f)" bypass mono)
    true
    (Float.abs (bypass -. mono) < 0.15)

let vip_size_still_handles_bulk () =
  (* The bypass must not break large messages: they go via FRAGMENT. *)
  let w = World.create () in
  let e = Stacks.lrpc_vip_size w in
  let payload = Tutil.body 16000 in
  let r =
    Tutil.run_in w (fun () ->
        e.Stacks.call ~command:Stacks.cmd_echo (Msg.of_string payload))
  in
  Tutil.check_str "16k through fig 3(b)" payload (Msg.to_string (Tutil.ok_exn "r" r))

let throughputs_comparable () =
  (* Both versions saturate the controller: within 10% of each other. *)
  let tput mk =
    let w = World.create () in
    let e = mk w in
    let points = Measure.sweep ~sizes:[ 16384 ] ~iters:4 w e in
    match points with
    | [ (size, t) ] -> Measure.throughput_kbs ~size t
    | _ -> assert false
  in
  let mono = tput (fun w -> Stacks.mrpc w ~lower:Stacks.L_vip) in
  let layered = tput (fun w -> Stacks.lrpc w) in
  Alcotest.(check bool)
    (Printf.sprintf "mono %.0f vs layered %.0f kB/s" mono layered)
    true
    (Float.abs (mono -. layered) /. mono < 0.10)

let fragment_handles_packets_uppers_handle_messages () =
  (* Section 4.2's CPU argument: for a 16 KB message FRAGMENT handles 16
     packets but CHANNEL and SELECT handle one message. *)
  let w = World.create () in
  let n0 = World.node w 0 in
  let frag =
    Rpc.Fragment.create ~host:n0.World.host ~lower:(Netproto.Vip.proto n0.World.vip) ()
  in
  let chan = Rpc.Channel.create ~host:n0.World.host ~lower:(Rpc.Fragment.proto frag) () in
  let sel = Rpc.Select.create ~host:n0.World.host ~channel:chan () in
  (* server side *)
  let n1 = World.node w 1 in
  let frag1 =
    Rpc.Fragment.create ~host:n1.World.host ~lower:(Netproto.Vip.proto n1.World.vip) ()
  in
  let chan1 = Rpc.Channel.create ~host:n1.World.host ~lower:(Rpc.Fragment.proto frag1) () in
  let sel1 = Rpc.Select.create ~host:n1.World.host ~channel:chan1 () in
  Rpc.Select.register sel1 ~command:1 (fun _ -> Ok Msg.empty);
  Rpc.Select.serve sel1;
  Tutil.run_in w (fun () ->
      let cl = Rpc.Select.connect sel ~server:(World.ip_of w 1) in
      ignore (Tutil.ok_exn "16k" (Rpc.Select.call cl ~command:1 (Msg.fill 16384 'x'))));
  Tutil.check_int "FRAGMENT sent 16 packets" 16
    (Tutil.stat (Rpc.Fragment.proto frag) "tx-frag");
  Tutil.check_int "CHANNEL sent 1 request" 1
    (Tutil.stat (Rpc.Channel.proto chan) "req-tx");
  Tutil.check_int "SELECT made 1 call" 1 (Tutil.stat (Rpc.Select.proto sel) "call")

let buffer_scheme_ablation_end_to_end () =
  (* Section 5 "Potential Pitfalls": per-header allocation adds roughly
     0.4 msec per layer of round trip. *)
  let lat_with scheme =
    let profile = Machine.with_buffer_scheme scheme Machine.xkernel_sun3 in
    let w = World.create ~profile () in
    Measure.latency ~iters:10 w (Stacks.lrpc w)
  in
  let fast = lat_with Machine.Prealloc in
  let slow = lat_with Machine.Per_header_alloc in
  Alcotest.(check bool)
    (Printf.sprintf "per-header alloc hurts: %.2f vs %.2f" slow fast)
    true
    (slow -. fast > 0.8)

let sprite_profile_slower () =
  (* The N.RPC baseline: same protocol, heavier kernel. *)
  let xk = lat (fun w -> Stacks.mrpc w ~lower:Stacks.L_eth) in
  let sprite =
    let w = World.create ~profile:Machine.sprite_kernel () in
    Measure.latency ~iters:20 w (Stacks.mrpc w ~lower:Stacks.L_eth)
  in
  Alcotest.(check bool)
    (Printf.sprintf "native sprite (%.2f) slower than x-kernel (%.2f)" sprite xk)
    true
    (sprite > xk +. 0.5)

let () =
  Alcotest.run "stacks"
    [
      ( "integration",
        [
          Alcotest.test_case "every config: null call" `Quick every_config_null_call;
          Alcotest.test_case "every config: 3k echo" `Quick every_config_echoes;
          Alcotest.test_case "mono and layered equivalent" `Quick
            mono_and_layered_equivalent;
          Alcotest.test_case "layered stack under faults" `Quick
            layered_under_loss_and_dup;
          Alcotest.test_case "VIPsize handles bulk" `Quick vip_size_still_handles_bulk;
        ] );
      ( "shape claims",
        [
          Alcotest.test_case "VIP overhead negligible" `Quick vip_overhead_negligible;
          Alcotest.test_case "IP penalty significant" `Quick ip_penalty_significant;
          Alcotest.test_case "layering penalty bounded" `Quick
            layering_costs_something_but_not_much;
          Alcotest.test_case "VIPsize recovers monolithic latency" `Quick
            vip_size_recovers_monolithic_latency;
          Alcotest.test_case "throughputs comparable" `Quick throughputs_comparable;
          Alcotest.test_case "packet counts per layer" `Quick
            fragment_handles_packets_uppers_handle_messages;
          Alcotest.test_case "buffer management ablation" `Quick
            buffer_scheme_ablation_end_to_end;
          Alcotest.test_case "sprite kernel slower" `Quick sprite_profile_slower;
        ] );
    ]
