(* The switched star topology: N-port IP forwarding (ARP per port, ICMP
   through two hops, TTL, no forwarding loops), per-wire labelled stats,
   and chaos plans cutting a named access link. *)

open Xkernel
module World = Netproto.World
module Fragment = Rpc.Fragment
module Channel = Rpc.Channel
module Select = Rpc.Select

let icmp_pair sw i j =
  let ni = World.node sw.World.sw.World.fo i
  and nj = World.node sw.World.sw.World.fo j in
  let ci =
    Netproto.Icmp.create ~host:ni.World.host ~ip:ni.World.ip
  and _cj =
    Netproto.Icmp.create ~host:nj.World.host ~ip:nj.World.ip
  in
  (ci, ni, nj)

let arp_resolves_per_port_gateway () =
  (* Each host's ARP resolves its own gateway to the facing switch
     port's ethernet address — and only that port answers. *)
  let sw = World.create_switched ~clients:2 ~servers:1 () in
  let n1 = World.node sw.World.sw.World.fo 1 in
  let gw = Addr.Ip.v 10 0 1 254 in
  let resolved =
    Tutil.run_in sw.World.sw.World.fo (fun () ->
        Netproto.Arp.resolve n1.World.arp gw)
  in
  match resolved with
  | None -> Alcotest.fail "gateway did not resolve"
  | Some eth ->
      Alcotest.check Tutil.ip "port host carries the gateway address" gw
        sw.World.sw_ports.(1).World.pt_host.Host.ip;
      Alcotest.(check bool)
        "resolved to the facing port's ethernet address" true
        (Addr.Eth.equal eth sw.World.sw_ports.(1).World.pt_host.Host.eth)

let ping_crosses_the_switch () =
  (* Client -> switch -> server and back: two IP forwards, nonzero
     round-trip time, no extra copies. *)
  let sw = World.create_switched ~clients:2 ~servers:1 () in
  let ci, _, nj = icmp_pair sw 1 0 in
  let rtt =
    Tutil.run_in sw.World.sw.World.fo (fun () ->
        Netproto.Icmp.ping ci ~peer:nj.World.host.Host.ip ())
  in
  (match rtt with
  | None -> Alcotest.fail "ping did not come back"
  | Some t -> Alcotest.(check bool) "took time" true (t > 0.));
  Tutil.check_int "request and reply each forwarded once" 2
    (Tutil.stat (Netproto.Ip.proto sw.World.sw_ip) "forwarded")

let ttl_expires_at_the_switch () =
  (* A datagram arriving with TTL 1 dies in the fabric: counted, never
     forwarded, and reported back as ICMP Time-Exceeded from the
     switch's own ICMP to the sender's. *)
  let sw = World.create_switched ~clients:1 ~servers:1 () in
  let _sw_icmp =
    Netproto.Icmp.create
      ~host:sw.World.sw_ports.(0).World.pt_host
      ~ip:sw.World.sw_ip
  in
  let ci, ni, nj = icmp_pair sw 1 0 in
  let exceeded = ref 0 in
  Netproto.Icmp.on_event ci (function
    | Netproto.Icmp.Time_exceeded _ -> incr exceeded
    | _ -> ());
  ignore (Proto.control (Netproto.Ip.proto ni.World.ip) (Control.Set_ttl 1));
  let proto_num = 99 in
  Tutil.run_in sw.World.sw.World.fo (fun () ->
      let sess =
        Proto.open_ (Netproto.Ip.proto ni.World.ip)
          ~upper:(Proto.create ~host:ni.World.host ~name:"RAW" ())
          (Part.v
             ~local:[ Part.Ip ni.World.host.Host.ip; Part.Ip_proto proto_num ]
             ~remotes:
               [ [ Part.Ip nj.World.host.Host.ip; Part.Ip_proto proto_num ] ]
             ())
      in
      Proto.push sess (Msg.of_string "doomed");
      Sim.delay sw.World.sw.World.fo.World.sim 0.1);
  Tutil.check_int "switch counted the expiry" 1
    (Tutil.stat (Netproto.Ip.proto sw.World.sw_ip) "ttl-exceeded");
  Tutil.check_int "time-exceeded reported to the source" 1 !exceeded;
  Tutil.check_int "nothing was forwarded" 0
    (Tutil.stat (Netproto.Ip.proto sw.World.sw_ip) "forwarded")

(* Any (source, destination) port pair: the ping crosses exactly two
   forwards — datagrams neither loop among the ports nor fan out. *)
let qcheck_no_forwarding_loops =
  Tutil.qtest ~count:15 "random port pairs forward exactly twice"
    QCheck.(pair (int_bound 3) (int_bound 3))
    (fun (i, j) ->
      QCheck.assume (i <> j);
      let sw = World.create_switched ~clients:2 ~servers:2 () in
      let ci, _, nj = icmp_pair sw i j in
      let rtt =
        Tutil.run_in sw.World.sw.World.fo (fun () ->
            Netproto.Icmp.ping ci ~peer:nj.World.host.Host.ip ())
      in
      rtt <> None
      && Tutil.stat (Netproto.Ip.proto sw.World.sw_ip) "forwarded" = 2)

let labelled_wires_register_distinct_stats () =
  (* Satellite regression: two wires in one registry under distinct
     names, counting their own traffic — not each other's. *)
  Stats.reset_registry ();
  let sw = World.create_switched ~clients:2 ~servers:1 () in
  let ci, _, nj = icmp_pair sw 1 0 in
  ignore
    (Tutil.run_in sw.World.sw.World.fo (fun () ->
         Netproto.Icmp.ping ci ~peer:nj.World.host.Host.ip ()));
  let table l =
    match Stats.find ("wire/" ^ l) with
    | Some t -> t
    | None -> Alcotest.failf "wire/%s not registered" l
  in
  Alcotest.(check bool) "client wire saw frames" true
    (Stats.get (table "c0") "frames" > 0);
  Alcotest.(check bool) "server wire saw frames" true
    (Stats.get (table "s0") "frames" > 0);
  Tutil.check_int "idle wire stayed silent" 0
    (Stats.get (table "c1") "frames");
  Alcotest.(check bool) "wire bytes mirrored" true
    (Stats.get (table "c0") "bytes"
    = (Wire.stats (World.port_wire sw ~label:"c0")).Wire.bytes)

(* SELECT-CHANNEL-FRAGMENT-VIP client and server on switched nodes. *)
let lnode (n : World.node) =
  let f =
    Fragment.create ~host:n.World.host
      ~lower:(Netproto.Vip.proto n.World.vip) ()
  in
  let ch = Channel.create ~host:n.World.host ~lower:(Fragment.proto f) () in
  Select.create ~host:n.World.host ~channel:ch ()

let chaos_cuts_a_server_access_link () =
  (* A chaos plan unplugs the server's named wire mid-run: calls inside
     the window time out, the cut is counted [partitioned] on that wire
     alone, and calls after the heal succeed. *)
  let sw = World.create_switched ~clients:2 ~servers:1 () in
  let w = sw.World.sw.World.fo in
  let server = World.node w 0 and client = World.node w 1 in
  let sel_s = lnode server and sel_c = lnode client in
  Select.register sel_s ~command:Rpc.Stacks.cmd_echo (fun req -> Ok req);
  Select.serve sel_s;
  Chaos.apply ~wires:(World.switched_wires sw) ~wire:w.World.wire
    ~devices:(World.devices w)
    [ { Chaos.from_t = 0.5; until_t = 20.0; spec = Chaos.Wire_down "s0" } ];
  let during, after =
    Tutil.run_in w (fun () ->
        let cl = Select.connect sel_c ~server:server.World.host.Host.ip in
        ignore
          (Tutil.ok_exn "warm"
             (Select.call cl ~command:Rpc.Stacks.cmd_echo
                (Msg.of_string "warm")));
        Sim.delay w.World.sim (0.6 -. Sim.now w.World.sim);
        let during =
          Select.call cl ~command:Rpc.Stacks.cmd_echo (Msg.of_string "cut")
        in
        Sim.delay w.World.sim (21.0 -. Sim.now w.World.sim);
        let after =
          Select.call cl ~command:Rpc.Stacks.cmd_echo (Msg.of_string "back")
        in
        (during, after))
  in
  Alcotest.(check bool) "call inside the window failed" true
    (Result.is_error during);
  (match after with
  | Ok reply -> Tutil.check_str "healed" "back" (Msg.to_string reply)
  | Error e ->
      Alcotest.failf "call after heal failed: %s" (Rpc.Rpc_error.to_string e));
  Alcotest.(check bool) "cut counted as partitioned on s0" true
    ((Wire.stats (World.port_wire sw ~label:"s0")).Wire.partitioned > 0);
  Tutil.check_int "client wire unaffected" 0
    (Wire.stats (World.port_wire sw ~label:"c0")).Wire.partitioned;
  Alcotest.(check bool) "wire back up" true
    (not (Wire.is_down (World.port_wire sw ~label:"s0")))

let chaos_rejects_unknown_wire () =
  let sw = World.create_switched ~clients:1 ~servers:1 () in
  let w = sw.World.sw.World.fo in
  let rejected plan =
    match
      Chaos.apply ~wires:(World.switched_wires sw) ~wire:w.World.wire
        ~devices:(World.devices w) plan
    with
    | exception Invalid_argument _ -> true
    | () -> false
  in
  Alcotest.(check bool) "unknown wire name" true
    (rejected
       [ { Chaos.from_t = 0.; until_t = 1.; spec = Chaos.Wire_down "s9" } ]);
  Alcotest.(check bool) "wire loss probability above 1" true
    (rejected
       [
         {
           Chaos.from_t = 0.;
           until_t = 1.;
           spec = Chaos.Wire_loss { wire = "s0"; p = 1.5 };
         };
       ])

let wire_loss_on_named_wire () =
  (* Total loss on the server's access link behaves like the cut: the
     call times out, and the drops land on that wire's own counters. *)
  let sw = World.create_switched ~clients:1 ~servers:1 () in
  let w = sw.World.sw.World.fo in
  let server = World.node w 0 and client = World.node w 1 in
  let sel_s = lnode server and sel_c = lnode client in
  Select.register sel_s ~command:Rpc.Stacks.cmd_echo (fun req -> Ok req);
  Select.serve sel_s;
  Chaos.apply ~wires:(World.switched_wires sw) ~wire:w.World.wire
    ~devices:(World.devices w)
    [
      {
        Chaos.from_t = 0.5;
        until_t = 20.0;
        spec = Chaos.Wire_loss { wire = "s0"; p = 1.0 };
      };
    ];
  let during =
    Tutil.run_in w (fun () ->
        let cl = Select.connect sel_c ~server:server.World.host.Host.ip in
        ignore
          (Tutil.ok_exn "warm"
             (Select.call cl ~command:Rpc.Stacks.cmd_echo
                (Msg.of_string "warm")));
        Sim.delay w.World.sim (0.6 -. Sim.now w.World.sim);
        Select.call cl ~command:Rpc.Stacks.cmd_echo (Msg.of_string "lost"))
  in
  Alcotest.(check bool) "call inside the loss window failed" true
    (Result.is_error during);
  Alcotest.(check bool) "drops counted on s0" true
    ((Wire.stats (World.port_wire sw ~label:"s0")).Wire.dropped > 0);
  Tutil.check_int "client wire dropped nothing" 0
    (Wire.stats (World.port_wire sw ~label:"c0")).Wire.dropped

let () =
  Alcotest.run "switch"
    [
      ( "forwarding",
        [
          Alcotest.test_case "ARP resolves per-port gateway" `Quick
            arp_resolves_per_port_gateway;
          Alcotest.test_case "ping crosses the switch" `Quick
            ping_crosses_the_switch;
          Alcotest.test_case "TTL expires at the switch" `Quick
            ttl_expires_at_the_switch;
          qcheck_no_forwarding_loops;
        ] );
      ( "wires",
        [
          Alcotest.test_case "labelled wires, distinct stats" `Quick
            labelled_wires_register_distinct_stats;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "cut a server access link" `Quick
            chaos_cuts_a_server_access_link;
          Alcotest.test_case "validation" `Quick chaos_rejects_unknown_wire;
          Alcotest.test_case "loss on a named wire" `Quick
            wire_loss_on_named_wire;
        ] );
    ]
