(* Scripted fault injection: chaos plans driving CHANNEL's fault
   tolerance — total-loss windows, partitions, mid-call server crashes,
   duplicate replies, and the determinism of a seeded plan. *)

open Xkernel
module World = Netproto.World
module Fragment = Rpc.Fragment
module Channel = Rpc.Channel

let proto_num = 90

(* CHANNEL-FRAGMENT-VIP with a counting echo server, as in
   test_channel, plus the device array a chaos plan addresses. *)
let setup ?(n_channels = 8) w =
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let mk (n : World.node) =
    let f =
      Fragment.create ~host:n.World.host
        ~lower:(Netproto.Vip.proto n.World.vip) ()
    in
    Channel.create ~host:n.World.host ~lower:(Fragment.proto f) ~n_channels ()
  in
  let ch0 = mk n0 and ch1 = mk n1 in
  let executions = ref 0 in
  let up = Proto.create ~host:n1.World.host ~name:"ECHO" () in
  Proto.set_ops up
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "echo");
      open_enable = (fun ~upper:_ _ -> invalid_arg "echo");
      open_done = (fun ~upper:_ _ -> invalid_arg "echo");
      demux =
        (fun ~lower msg ->
          incr executions;
          Proto.push lower msg);
      p_control = (fun _ -> Control.Unsupported);
    };
  Proto.open_enable (Channel.proto ch1) ~upper:up
    (Part.v ~local:[ Part.Ip_proto proto_num ] ());
  let sess chan =
    Tutil.run_in w (fun () ->
        Proto.open_ (Channel.proto ch0)
          ~upper:(Proto.create ~host:n0.World.host ~name:"NULL" ())
          (Part.v
             ~local:
               [
                 Part.Ip n0.World.host.Host.ip;
                 Part.Ip_proto proto_num;
                 Part.Channel chan;
               ]
             ~remotes:
               [ [ Part.Ip n1.World.host.Host.ip; Part.Ip_proto proto_num ] ]
             ()))
  in
  let devices = [| n0.World.dev; n1.World.dev |] in
  (ch0, ch1, sess, executions, devices)

let total_loss_times_out () =
  (* A 100%-loss window: the call fails with Timeout after exactly
     [retries] retransmissions — no more, no fewer. *)
  let w = World.create () in
  let ch0, _, sess, _, devices = setup w in
  let s = sess 0 in
  Chaos.apply ~wire:w.World.wire ~devices
    [ { Chaos.from_t = 0.1; until_t = 60.0; spec = Chaos.Burst_loss 1.0 } ];
  let result =
    Tutil.run_in w (fun () ->
        ignore
          (Tutil.ok_exn "warm" (Channel.call ch0 s (Msg.of_string "warm")));
        Sim.delay w.World.sim 0.15;
        Channel.call ch0 s (Msg.of_string "doomed"))
  in
  Alcotest.(check bool) "times out" true (result = Error Rpc.Rpc_error.Timeout);
  Tutil.check_int "exactly retries retransmissions" 5
    (Tutil.stat (Channel.proto ch0) "retransmit")

let partition_heals () =
  (* A partition window: deliveries are suppressed (counted as
     [partitioned], not [dropped]) and the call survives the cut via
     retransmission once it heals. *)
  let w = World.create () in
  let ch0, _, sess, execs, devices = setup w in
  let s = sess 0 in
  Chaos.apply ~wire:w.World.wire ~devices
    [
      {
        Chaos.from_t = 0.05;
        until_t = 0.12;
        spec = Chaos.Partition { a = [ 0 ]; b = [ 1 ] };
      };
    ];
  let result =
    Tutil.run_in w (fun () ->
        ignore
          (Tutil.ok_exn "warm" (Channel.call ch0 s (Msg.of_string "warm")));
        Sim.delay w.World.sim 0.055;
        Channel.call ch0 s (Msg.of_string "cut"))
  in
  (match result with
  | Ok reply -> Tutil.check_str "echoed across the heal" "cut" (Msg.to_string reply)
  | Error e -> Alcotest.failf "call failed: %s" (Rpc.Rpc_error.to_string e));
  Alcotest.(check bool) "partitioned counted" true
    ((Wire.stats w.World.wire).Wire.partitioned > 0);
  Alcotest.(check bool) "retransmitted across the window" true
    (Tutil.stat (Channel.proto ch0) "retransmit" > 0);
  Tutil.check_int "executed once per call" 2 !execs

let crash_mid_call_rebooted () =
  (* The server crashes while the client is retransmitting into a
     partition: the retransmission reaches the fresh incarnation, whose
     changed boot id surfaces as [Rebooted] — the client cannot know
     whether the procedure executed. *)
  let w = World.create () in
  let n1 = World.node w 1 in
  let ch0, _, sess, _, devices = setup w in
  let s = sess 0 in
  Chaos.apply ~wire:w.World.wire ~devices
    [
      {
        Chaos.from_t = 0.05;
        until_t = 0.12;
        spec = Chaos.Partition { a = [ 0 ]; b = [ 1 ] };
      };
      { Chaos.from_t = 0.06; until_t = 0.06; spec = Chaos.Crash 1 };
    ];
  let result =
    Tutil.run_in w (fun () ->
        ignore
          (Tutil.ok_exn "warm" (Channel.call ch0 s (Msg.of_string "warm")));
        Sim.delay w.World.sim 0.055;
        Channel.call ch0 s (Msg.of_string "during-crash"))
  in
  Alcotest.(check bool) "reboot surfaces" true
    (result = Error Rpc.Rpc_error.Rebooted);
  Tutil.check_int "server on its second incarnation" 2
    n1.World.host.Host.boot_id

let crash_clears_reply_cache () =
  (* A top-level reboot (outside any fiber): the server forgets its
     at-most-once state and reply cache, and a reconnecting client
     resumes cleanly against the fresh incarnation. *)
  let w = World.create () in
  let n1 = World.node w 1 in
  let ch0, ch1, sess, execs, _devices = setup w in
  let s = sess 0 in
  ignore
    (Tutil.ok_exn "before"
       (Tutil.run_in w (fun () -> Channel.call ch0 s (Msg.of_string "a"))));
  Host.reboot n1.World.host;
  Tutil.check_int "boot id advanced" 2 n1.World.host.Host.boot_id;
  Tutil.check_int "server channels torn down" 1
    (Tutil.stat (Channel.proto ch1) "crash-reset");
  (match Tutil.run_in w (fun () -> Channel.call ch0 s (Msg.of_string "b")) with
  | Ok reply -> Tutil.check_str "resumed" "b" (Msg.to_string reply)
  | Error e -> Alcotest.failf "resume failed: %s" (Rpc.Rpc_error.to_string e));
  Tutil.check_int "both executed" 2 !execs;
  Tutil.check_int "no duplicate requests seen" 0
    (Tutil.stat (Channel.proto ch1) "dup-req")

let duplicate_reply_stale () =
  (* Every frame duplicated: the second copy of each reply arrives
     after the transaction completed and is dropped as stale, without
     corrupting channel state or re-executing anything.  CHANNEL sits
     directly on VIP here — FRAGMENT below would dedup completed
     messages itself and hide the stale path under test. *)
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let mk (n : World.node) =
    Channel.create ~host:n.World.host
      ~lower:(Netproto.Vip.proto n.World.vip) ()
  in
  let ch0 = mk n0 and ch1 = mk n1 in
  let execs = ref 0 in
  let up = Proto.create ~host:n1.World.host ~name:"ECHO" () in
  Proto.set_ops up
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "echo");
      open_enable = (fun ~upper:_ _ -> invalid_arg "echo");
      open_done = (fun ~upper:_ _ -> invalid_arg "echo");
      demux =
        (fun ~lower msg ->
          incr execs;
          Proto.push lower msg);
      p_control = (fun _ -> Control.Unsupported);
    };
  Proto.open_enable (Channel.proto ch1) ~upper:up
    (Part.v ~local:[ Part.Ip_proto proto_num ] ());
  let s =
    Tutil.run_in w (fun () ->
        Proto.open_ (Channel.proto ch0)
          ~upper:(Proto.create ~host:n0.World.host ~name:"NULL" ())
          (Part.v
             ~local:
               [
                 Part.Ip n0.World.host.Host.ip;
                 Part.Ip_proto proto_num;
                 Part.Channel 0;
               ]
             ~remotes:
               [ [ Part.Ip n1.World.host.Host.ip; Part.Ip_proto proto_num ] ]
             ()))
  in
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Duplicate ]));
  let r1 = Tutil.run_in w (fun () -> Channel.call ch0 s (Msg.of_string "one")) in
  let r2 = Tutil.run_in w (fun () -> Channel.call ch0 s (Msg.of_string "two")) in
  (match (r1, r2) with
  | Ok a, Ok b ->
      Tutil.check_str "first echo" "one" (Msg.to_string a);
      Tutil.check_str "second echo" "two" (Msg.to_string b)
  | _ -> Alcotest.fail "duplicated frames broke the calls");
  Alcotest.(check bool) "stale replies counted" true
    (Tutil.stat (Channel.proto ch0) "stale-rx" > 0);
  Tutil.check_int "at-most-once preserved" 2 !execs

let plan_is_deterministic () =
  (* The same seeded chaos plan twice: bit-identical counters. *)
  let run () =
    let w = World.create () in
    let ch0, _, sess, execs, devices = setup w in
    let s = sess 0 in
    (* The first (warm) call finishes in ~2 ms; the loss window opens
       just after it and covers the remaining calls. *)
    Chaos.apply ~wire:w.World.wire ~devices
      [
        { Chaos.from_t = 0.004; until_t = 2.0; spec = Chaos.Burst_loss 0.3 };
        { Chaos.from_t = 0.05; until_t = 0.15; spec = Chaos.Delay_spike 0.002 };
      ];
    let oks = ref 0 and errs = ref 0 in
    Tutil.run_in w (fun () ->
        for i = 1 to 12 do
          match Channel.call ch0 s (Msg.of_string (string_of_int i)) with
          | Ok _ -> incr oks
          | Error _ -> incr errs
        done);
    let st = Wire.stats w.World.wire in
    ( !oks,
      !errs,
      !execs,
      Tutil.stat (Channel.proto ch0) "retransmit",
      st.Wire.frames,
      st.Wire.dropped,
      st.Wire.delayed,
      Sim.now w.World.sim )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical outcome, counters and clock" true (a = b);
  let oks, errs, _, retr, _, dropped, _, _ = a in
  Alcotest.(check bool) "the plan actually bit" true
    (dropped > 0 && retr > 0 && oks + errs = 12)

let invalid_plans_rejected () =
  let w = World.create () in
  let _, _, _, _, devices = setup w in
  let rejected plan =
    match Chaos.apply ~wire:w.World.wire ~devices plan with
    | exception Invalid_argument _ -> true
    | () -> false
  in
  Alcotest.(check bool) "device index out of range" true
    (rejected [ { Chaos.from_t = 0.; until_t = 1.; spec = Chaos.Crash 7 } ]);
  Alcotest.(check bool) "window ends before it starts" true
    (rejected
       [ { Chaos.from_t = 1.; until_t = 0.5; spec = Chaos.Burst_loss 0.1 } ]);
  Alcotest.(check bool) "loss probability above 1" true
    (rejected
       [ { Chaos.from_t = 0.; until_t = 1.; spec = Chaos.Burst_loss 1.5 } ]);
  Alcotest.(check bool) "nonpositive flap period" true
    (rejected
       [
         {
           Chaos.from_t = 0.;
           until_t = 1.;
           spec = Chaos.Link_flap { dev = 0; period = 0. };
         };
       ])

let plan_to_json () =
  let plan =
    [
      {
        Chaos.from_t = 0.1;
        until_t = 0.2;
        spec = Chaos.Partition { a = [ 0 ]; b = [ 1 ] };
      };
      { Chaos.from_t = 0.3; until_t = 0.3; spec = Chaos.Crash 1 };
    ]
  in
  Tutil.check_str "schema"
    "[{\"from\":0.1,\"until\":0.2,\"spec\":\"partition\",\"a\":[0],\"b\":[1]},\
     {\"from\":0.3,\"until\":0.3,\"spec\":\"crash\",\"dev\":1}]"
    (Json.to_string (Chaos.to_json plan))

let () =
  Alcotest.run "chaos"
    [
      ( "faults",
        [
          Alcotest.test_case "total loss times out" `Quick total_loss_times_out;
          Alcotest.test_case "partition heals" `Quick partition_heals;
          Alcotest.test_case "crash mid-call: Rebooted" `Quick
            crash_mid_call_rebooted;
          Alcotest.test_case "crash clears reply cache" `Quick
            crash_clears_reply_cache;
          Alcotest.test_case "duplicate reply is stale" `Quick
            duplicate_reply_stale;
        ] );
      ( "plans",
        [
          Alcotest.test_case "deterministic" `Quick plan_is_deterministic;
          Alcotest.test_case "validation" `Quick invalid_plans_rejected;
          Alcotest.test_case "json schema" `Quick plan_to_json;
        ] );
    ]
