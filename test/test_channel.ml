open Xkernel
module World = Netproto.World
module Fragment = Rpc.Fragment
module Channel = Rpc.Channel

let proto_num = 90

(* CHANNEL-FRAGMENT-VIP with a counting echo server above CHANNEL. *)
let setup ?(server = fun msg -> msg) ?(n_channels = 8) ?adaptive w =
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let mk (n : World.node) =
    let f = Fragment.create ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip) () in
    Channel.create ~host:n.World.host ~lower:(Fragment.proto f) ~n_channels
      ?adaptive ()
  in
  let ch0 = mk n0 and ch1 = mk n1 in
  let executions = ref 0 in
  let up = Proto.create ~host:n1.World.host ~name:"ECHO" () in
  Proto.set_ops up
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "echo");
      open_enable = (fun ~upper:_ _ -> invalid_arg "echo");
      open_done = (fun ~upper:_ _ -> invalid_arg "echo");
      demux =
        (fun ~lower msg ->
          incr executions;
          Proto.push lower (server msg));
      p_control = (fun _ -> Control.Unsupported);
    };
  Proto.open_enable (Channel.proto ch1) ~upper:up
    (Part.v ~local:[ Part.Ip_proto proto_num ] ());
  let sess chan =
    Tutil.run_in w (fun () ->
        Proto.open_ (Channel.proto ch0)
          ~upper:(Proto.create ~host:n0.World.host ~name:"NULL" ())
          (Part.v
             ~local:
               [
                 Part.Ip n0.World.host.Host.ip;
                 Part.Ip_proto proto_num;
                 Part.Channel chan;
               ]
             ~remotes:[ [ Part.Ip n1.World.host.Host.ip; Part.Ip_proto proto_num ] ]
             ()))
  in
  (ch0, ch1, sess, executions)

let call w ch sess msg = Tutil.run_in w (fun () -> Channel.call ch sess msg)

let basic_transaction () =
  let w = World.create () in
  let ch0, _, sess, execs = setup w in
  let s = sess 0 in
  (match call w ch0 s (Msg.of_string "ping") with
  | Ok reply -> Tutil.check_str "echo" "ping" (Msg.to_string reply)
  | Error e -> Alcotest.failf "failed: %s" (Rpc.Rpc_error.to_string e));
  Tutil.check_int "executed once" 1 !execs

let implicit_ack_no_extra_packets () =
  (* In the common case no acknowledgement packets exist: n calls
     produce exactly n requests + n replies at the channel layer. *)
  let w = World.create () in
  let ch0, ch1, sess, _ = setup w in
  let s = sess 0 in
  for i = 1 to 5 do
    ignore (Tutil.ok_exn "call" (call w ch0 s (Msg.of_string (string_of_int i))))
  done;
  Tutil.check_int "no retransmits" 0 (Tutil.stat (Channel.proto ch0) "retransmit");
  Tutil.check_int "no explicit acks" 0 (Tutil.stat (Channel.proto ch1) "ack-tx");
  Tutil.check_int "five requests" 5 (Tutil.stat (Channel.proto ch0) "req-tx");
  Tutil.check_int "five replies" 5 (Tutil.stat (Channel.proto ch1) "reply-tx")

let sequential_calls_reuse_channel () =
  let w = World.create () in
  let ch0, _, sess, execs = setup w in
  let s = sess 0 in
  for _ = 1 to 10 do
    ignore (Tutil.ok_exn "call" (call w ch0 s Msg.empty))
  done;
  Tutil.check_int "all executed" 10 !execs

let at_most_once_under_duplication () =
  let w = World.create () in
  let ch0, _ch1, sess, execs = setup w in
  let s = sess 0 in
  ignore (Tutil.ok_exn "warm" (call w ch0 s (Msg.of_string "w")));
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Duplicate ]));
  for _ = 1 to 5 do
    ignore (Tutil.ok_exn "dup call" (call w ch0 s (Msg.of_string "x")))
  done;
  Tutil.run_in w (fun () -> Sim.delay w.World.sim 0.5);
  Tutil.check_int "executed exactly once per call" 6 !execs;
  (* The duplicates were absorbed below: either FRAGMENT's
     recently-completed cache or CHANNEL's duplicate filter saw them. *)
  Alcotest.(check bool) "replies survived duplication" true
    (Tutil.stat (Channel.proto ch0) "reply-rx" >= 6)

let lost_request_retransmitted () =
  let w = World.create () in
  let ch0, _, sess, execs = setup w in
  let s = sess 0 in
  ignore (Tutil.ok_exn "warm" (call w ch0 s (Msg.of_string "w")));
  let dropped = ref false in
  Wire.set_fault_hook w.World.wire
    (Some
       (fun _ _ ->
         if !dropped then []
         else begin
           dropped := true;
           [ Wire.Drop ]
         end));
  (match call w ch0 s (Msg.of_string "retry me") with
  | Ok r -> Tutil.check_str "echoed after retry" "retry me" (Msg.to_string r)
  | Error e -> Alcotest.failf "failed: %s" (Rpc.Rpc_error.to_string e));
  Tutil.check_int "one retransmission" 1 (Tutil.stat (Channel.proto ch0) "retransmit");
  Tutil.check_int "executed once" 2 !execs

let lost_reply_not_reexecuted () =
  (* The reply is lost; the client retransmits; the server answers from
     its reply cache without executing again — at-most-once. *)
  let w = World.create () in
  let ch0, ch1, sess, execs = setup w in
  let s = sess 0 in
  ignore (Tutil.ok_exn "warm" (call w ch0 s (Msg.of_string "w")));
  let armed = ref true in
  let count = ref 0 in
  Wire.set_fault_hook w.World.wire
    (Some
       (fun _ _ ->
         if not !armed then []
         else begin
           incr count;
           if !count = 2 then begin
             armed := false;
             [ Wire.Drop ]
           end
           else []
         end));
  (match call w ch0 s (Msg.of_string "once only") with
  | Ok r -> Tutil.check_str "got cached reply" "once only" (Msg.to_string r)
  | Error e -> Alcotest.failf "failed: %s" (Rpc.Rpc_error.to_string e));
  Tutil.check_int "executed once despite reply loss" 2 !execs;
  Tutil.check_int "cached reply used" 1
    (Tutil.stat (Channel.proto ch1) "cached-reply-tx")

let slow_server_explicit_ack () =
  let w = World.create () in
  let slow msg =
    Sim.delay w.World.sim 0.08;
    msg
  in
  let ch0, ch1, sess, execs = setup ~server:slow w in
  let s = sess 0 in
  (match call w ch0 s (Msg.of_string "slow") with
  | Ok r -> Tutil.check_str "eventually answered" "slow" (Msg.to_string r)
  | Error e -> Alcotest.failf "failed: %s" (Rpc.Rpc_error.to_string e));
  Tutil.check_int "executed once" 1 !execs;
  Alcotest.(check bool) "explicit ack sent" true
    (Tutil.stat (Channel.proto ch1) "ack-tx" >= 1);
  Alcotest.(check bool) "client saw the ack" true
    (Tutil.stat (Channel.proto ch0) "ack-rx" >= 1)

let timeout_when_server_gone () =
  let w = World.create () in
  let ch0, _, sess, _ = setup w in
  let s = sess 0 in
  ignore (Tutil.ok_exn "warm" (call w ch0 s (Msg.of_string "w")));
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Drop ]));
  let result = call w ch0 s (Msg.of_string "void") in
  Alcotest.(check bool) "times out" true (result = Error Rpc.Rpc_error.Timeout);
  Tutil.check_int "five retries" 5 (Tutil.stat (Channel.proto ch0) "retransmit")

let multi_fragment_timeout_is_longer () =
  (* The step function: a 16-fragment request must not spuriously
     retransmit even though its transfer outlasts the single-fragment
     timeout. *)
  let w = World.create () in
  let ch0, _, sess, _ = setup w in
  let s = sess 0 in
  ignore (Tutil.ok_exn "warm" (call w ch0 s (Msg.of_string "w")));
  ignore (Tutil.ok_exn "16k call" (call w ch0 s (Msg.fill 16000 'x')));
  Tutil.check_int "no spurious retransmit" 0
    (Tutil.stat (Channel.proto ch0) "retransmit")

let effective_timeout_reported () =
  (* Get_timeout reports the *effective* RTO: the step function before
     any sample, the adaptive estimate after a warm call. *)
  let w = World.create () in
  let ch0, _, sess, _ = setup w in
  let s = sess 0 in
  let get req = Control.float_exn (Proto.session_control s req) in
  Alcotest.(check (float 1e-9)) "cold: step function" 0.02
    (get Control.Get_timeout);
  Alcotest.(check (float 1e-9)) "cold: no srtt" 0. (get Control.Get_srtt);
  ignore (Tutil.ok_exn "warm" (call w ch0 s (Msg.of_string "a")));
  let srtt = get Control.Get_srtt in
  Alcotest.(check bool) "srtt measured" true (srtt > 0.);
  let rto = get Control.Get_rto in
  Alcotest.(check (float 1e-9)) "Get_timeout = Get_rto" rto
    (get Control.Get_timeout);
  Alcotest.(check bool) "adaptive RTO below the fixed step" true
    (rto < 0.02);
  Alcotest.(check bool) "RTO covers the measured RTT" true (rto > srtt)

let backoff_decays_after_fresh_sample () =
  (* Karn backoff persistence must not outlive the loss that earned it:
     a retransmitted-but-completed transaction decays the multiplier
     one step, and the first fresh sample clears it outright, so the
     armed RTO returns to srtt + 4*rttvar within one clean call. *)
  let w = World.create () in
  let ch0, _, sess, _ = setup w in
  let s = sess 0 in
  let get req = Control.float_exn (Proto.session_control s req) in
  for _ = 1 to 3 do
    ignore (Tutil.ok_exn "warm" (call w ch0 s (Msg.of_string "w")))
  done;
  (* Drop the next two frames: the call completes only after two
     retransmissions, so Karn's rule yields no sample and the backoff
     multiplier is pumped to 2. *)
  let drops = ref 2 in
  Wire.set_fault_hook w.World.wire
    (Some
       (fun _ _ ->
         if !drops > 0 then begin
           decr drops;
           [ Wire.Drop ]
         end
         else []));
  ignore (Tutil.ok_exn "lossy" (call w ch0 s (Msg.of_string "x")));
  Wire.set_fault_hook w.World.wire None;
  let bare = get Control.Get_rto in
  (* The completion itself decayed one of the two backoff steps; the
     next transmission would still arm double the bare estimate. *)
  Alcotest.(check (float 1e-12)) "one backoff step survives the completion"
    (2. *. bare)
    (get Control.Get_rto_backed);
  ignore (Tutil.ok_exn "clean" (call w ch0 s (Msg.of_string "y")));
  let rto = get Control.Get_rto in
  Alcotest.(check (float 1e-12)) "fresh sample restores srtt + 4*rttvar" rto
    (get Control.Get_rto_backed);
  Alcotest.(check bool) "and the estimate is live" true
    (rto > get Control.Get_srtt)

let fixed_timeout_unchanged () =
  (* With adaptation off the step function governs forever. *)
  let w = World.create () in
  let ch0, _, sess, _ = setup ~adaptive:false w in
  let s = sess 0 in
  ignore (Tutil.ok_exn "warm" (call w ch0 s (Msg.of_string "a")));
  Alcotest.(check (float 1e-9)) "still the step function" 0.02
    (Control.float_exn (Proto.session_control s Control.Get_timeout));
  Alcotest.(check (float 1e-9)) "no srtt kept" 0.
    (Control.float_exn (Proto.session_control s Control.Get_srtt));
  Tutil.check_int "no samples counted" 0
    (Tutil.stat (Channel.proto ch0) "rtt-sample")

let reboot_detected () =
  let w = World.create () in
  let n1 = World.node w 1 in
  let ch0, _, sess, _ = setup w in
  let s = sess 0 in
  ignore (Tutil.ok_exn "before" (call w ch0 s (Msg.of_string "a")));
  let fired = ref false in
  Wire.set_fault_hook w.World.wire
    (Some
       (fun _ _ ->
         if !fired then []
         else begin
           fired := true;
           Host.reboot n1.World.host;
           [ Wire.Drop ]
         end));
  let result = call w ch0 s (Msg.of_string "during") in
  Alcotest.(check bool) "reboot surfaces" true
    (result = Error Rpc.Rpc_error.Rebooted)

let client_reboot_resets_server_state () =
  let w = World.create () in
  let n0 = World.node w 0 in
  let ch0, _, sess, execs = setup w in
  let s = sess 0 in
  ignore (Tutil.ok_exn "a" (call w ch0 s (Msg.of_string "a")));
  ignore (Tutil.ok_exn "b" (call w ch0 s (Msg.of_string "b")));
  Host.reboot n0.World.host;
  let s' = sess 1 in
  ignore (Tutil.ok_exn "after reboot" (call w ch0 s' (Msg.of_string "c")));
  Tutil.check_int "all executed" 3 !execs

let concurrent_channels () =
  let w = World.create () in
  let ch0, _, sess, execs = setup w in
  let s0 = sess 0 and s1 = sess 1 and s2 = sess 2 in
  let results = ref 0 in
  World.spawn w (fun () ->
      ignore (Tutil.ok_exn "c0" (Channel.call ch0 s0 (Msg.fill 3000 'a')));
      incr results);
  World.spawn w (fun () ->
      ignore (Tutil.ok_exn "c1" (Channel.call ch0 s1 (Msg.fill 3000 'b')));
      incr results);
  World.spawn w (fun () ->
      ignore (Tutil.ok_exn "c2" (Channel.call ch0 s2 Msg.empty));
      incr results);
  World.run w;
  Tutil.check_int "all three completed" 3 !results;
  Tutil.check_int "three executions" 3 !execs

let busy_channel_rejected () =
  (* A second concurrent call on the same channel is rejected with
     [Busy] — without crashing, and without disturbing the first. *)
  let w = World.create () in
  let ch0, _, sess, execs = setup w in
  let s = sess 0 in
  let first = ref None and second = ref None in
  World.spawn w (fun () ->
      first := Some (Channel.call ch0 s (Msg.of_string "first")));
  World.spawn w (fun () ->
      second := Some (Channel.call ch0 s (Msg.of_string "second")));
  World.run w;
  Alcotest.(check bool) "first call completed" true
    (match !first with Some (Ok r) -> Msg.to_string r = "first" | _ -> false);
  Alcotest.(check bool) "second rejected as busy" true
    (!second = Some (Error Rpc.Rpc_error.Busy));
  Tutil.check_int "server executed once" 1 !execs;
  Tutil.check_int "busy counted" 1 (Tutil.stat (Channel.proto ch0) "call-busy")

let uniform_busy_push_dropped () =
  (* A uniform-path push while a transaction is outstanding used to
     raise (a remotely-triggerable crash); now it is counted and
     dropped, and the channel keeps working afterwards. *)
  let w = World.create () in
  let n0 = World.node w 0 in
  let ch0, _, _, execs = setup w in
  let replies = ref 0 in
  let up = Proto.create ~host:n0.World.host ~name:"UP" () in
  Proto.set_ops up
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "up");
      open_enable = (fun ~upper:_ _ -> invalid_arg "up");
      open_done = (fun ~upper:_ _ -> invalid_arg "up");
      demux = (fun ~lower:_ _ -> incr replies);
      p_control = (fun _ -> Control.Unsupported);
    };
  let n1 = World.node w 1 in
  let s =
    Tutil.run_in w (fun () ->
        Proto.open_ (Channel.proto ch0) ~upper:up
          (Part.v
             ~local:
               [
                 Part.Ip n0.World.host.Host.ip;
                 Part.Ip_proto proto_num;
                 Part.Channel 0;
               ]
             ~remotes:
               [ [ Part.Ip n1.World.host.Host.ip; Part.Ip_proto proto_num ] ]
             ()))
  in
  Tutil.run_in w (fun () ->
      Proto.push s (Msg.of_string "one");
      (* Still outstanding: this second push must be dropped, not raise. *)
      Proto.push s (Msg.of_string "two"));
  Tutil.check_int "first reply came up" 1 !replies;
  Tutil.check_int "server executed once" 1 !execs;
  Tutil.check_int "drop counted" 1
    (Tutil.stat (Channel.proto ch0) "uniform-busy");
  Tutil.check_int "charged to the pushing protocol" 1
    (Stats.get (Proto.stats up) "busy-dropped");
  (* The channel is usable again once the transaction finished. *)
  Tutil.run_in w (fun () -> Proto.push s (Msg.of_string "three"));
  Tutil.check_int "later push succeeds" 2 !replies

let many_sessions_constant_call () =
  (* Regression for the O(n) session scan in Channel.call: with 64 open
     channels every call must still resolve its session directly. *)
  let w = World.create () in
  let ch0, _, sess, execs = setup ~n_channels:64 w in
  let sessions = List.init 64 sess in
  List.iteri
    (fun i s ->
      match call w ch0 s (Msg.of_string (string_of_int i)) with
      | Ok r -> Tutil.check_str "echo" (string_of_int i) (Msg.to_string r)
      | Error e -> Alcotest.failf "call %d failed: %s" i (Rpc.Rpc_error.to_string e))
    sessions;
  Tutil.check_int "all executed" 64 !execs;
  (* A session that belongs to a different CHANNEL instance is still
     rejected: the reverse table is per protocol object. *)
  let other = Channel.create ~host:(World.node w 0).World.host
      ~lower:(Fragment.proto
                (Fragment.create ~host:(World.node w 0).World.host
                   ~lower:(Netproto.Vip.proto (World.node w 0).World.vip)
                   ~proto_num:77 ()))
      ~proto_num:78 ()
  in
  Alcotest.(check bool) "foreign session rejected" true
    (match Tutil.run_in w (fun () -> Channel.call other (List.hd sessions) Msg.empty) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let channel_out_of_range () =
  let w = World.create () in
  let _, _, sess, _ = setup w in
  Alcotest.(check bool) "channel id bounded" true
    (match sess 99 with
    | exception Alcotest.Test_error -> true
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- the deadline extension ---------------------------------------------- *)

module C = Rpc.Wire_fmt.Channel

let deadline_header_codec () =
  let base =
    {
      C.flags = Rpc.Wire_fmt.Flags.request;
      channel = 3;
      protocol_num = proto_num;
      sequence_num = 7;
      error = 0;
      boot_id = 42;
      deadline_us = -1;
    }
  in
  (* Unstamped: the paper-exact 18 bytes, flag clear, [-1] back out. *)
  let s = C.encode base in
  Tutil.check_int "base length" C.bytes (String.length s);
  (match C.decode_full s with
  | Some h ->
      Tutil.check_int "absent decodes -1" (-1) h.C.deadline_us;
      Tutil.check_int "flag clear" 0 (h.C.flags land Rpc.Wire_fmt.Flags.deadline)
  | None -> Alcotest.fail "decode_full failed on base header");
  (* Stamped: round-trips, including the zero (arrived-expired) and
     near-zero remaining budgets. *)
  List.iter
    (fun d ->
      let s = C.encode { base with C.deadline_us = d } in
      Tutil.check_int "stamped length" (C.bytes + C.ext_bytes) (String.length s);
      match C.decode_full s with
      | Some h ->
          Tutil.check_int (Printf.sprintf "round trip %d" d) d h.C.deadline_us;
          Tutil.check_bool "flag set" true
            (h.C.flags land Rpc.Wire_fmt.Flags.deadline <> 0)
      | None -> Alcotest.fail "decode_full failed on stamped header")
    [ 0; 1; 12345; C.max_deadline_us ];
  (* Oversized budgets clamp to the largest encodable word. *)
  (match C.decode_full (C.encode { base with C.deadline_us = C.max_deadline_us + 5 }) with
  | Some h -> Tutil.check_int "clamped" C.max_deadline_us h.C.deadline_us
  | None -> Alcotest.fail "decode_full failed on clamped header");
  (* The two-stage path CHANNEL's input uses: the base decoder leaves
     [-1] even when flagged; the extension word is popped separately. *)
  let s = C.encode { base with C.deadline_us = 99 } in
  (match C.decode (String.sub s 0 C.bytes) with
  | Some h -> Tutil.check_int "base decode sees -1" (-1) h.C.deadline_us
  | None -> Alcotest.fail "base decode failed");
  match C.decode_ext (String.sub s C.bytes C.ext_bytes) with
  | Some d -> Tutil.check_int "extension word" 99 d
  | None -> Alcotest.fail "decode_ext failed"

(* Like [setup], but the server records the reconstructed absolute
   deadline ([Get_rx_deadline]) of every request it executes. *)
let deadline_setup ?adaptive w =
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let mk (n : World.node) =
    let f =
      Fragment.create ~host:n.World.host
        ~lower:(Netproto.Vip.proto n.World.vip) ()
    in
    Channel.create ~host:n.World.host ~lower:(Fragment.proto f) ?adaptive ()
  in
  let ch0 = mk n0 and ch1 = mk n1 in
  let rx = ref [] in
  let execs = ref 0 in
  let up = Proto.create ~host:n1.World.host ~name:"ECHO" () in
  Proto.set_ops up
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "echo");
      open_enable = (fun ~upper:_ _ -> invalid_arg "echo");
      open_done = (fun ~upper:_ _ -> invalid_arg "echo");
      demux =
        (fun ~lower msg ->
          incr execs;
          (match Proto.session_control lower Control.Get_rx_deadline with
          | Control.R_float e -> rx := e :: !rx
          | _ -> ());
          Proto.push lower msg);
      p_control = (fun _ -> Control.Unsupported);
    };
  Proto.open_enable (Channel.proto ch1) ~upper:up
    (Part.v ~local:[ Part.Ip_proto proto_num ] ());
  let sess =
    Tutil.run_in w (fun () ->
        Proto.open_ (Channel.proto ch0)
          ~upper:(Proto.create ~host:n0.World.host ~name:"NULL" ())
          (Part.v
             ~local:
               [
                 Part.Ip n0.World.host.Host.ip;
                 Part.Ip_proto proto_num;
                 Part.Channel 0;
               ]
             ~remotes:
               [ [ Part.Ip n1.World.host.Host.ip; Part.Ip_proto proto_num ] ]
             ()))
  in
  (ch0, ch1, sess, execs, rx)

let deadline_stamp_received () =
  let w = World.create () in
  let ch0, _, s, _, rx = deadline_setup w in
  ignore (Tutil.ok_exn "plain" (call w ch0 s (Msg.of_string "a")));
  Alcotest.(check (list (float 1e-9))) "no deadline propagated" [ -1. ] !rx;
  let expiry = ref 0. in
  Tutil.run_in w (fun () ->
      let e = Sim.now w.World.sim +. 0.1 in
      expiry := e;
      ignore
        (Tutil.ok_exn "stamped"
           (Channel.call ~expires:e ch0 s (Msg.of_string "b"))));
  match !rx with
  | [ got; _ ] ->
      (* remaining-at-transmit plus decode time lands the reconstruction
         on the caller's absolute deadline, give or take the transit. *)
      Alcotest.(check bool) "server rebuilt the absolute expiry" true
        (got > 0. && Float.abs (got -. !expiry) < 0.005)
  | _ -> Alcotest.fail "expected two executed requests"

let retransmit_carries_decremented_deadline () =
  (* Fixed step-function RTO (20 ms) so a replayed first-transmission
     stamp would shift the server's reconstruction by a clear 20 ms. *)
  let w = World.create () in
  let ch0, _, s, _, rx = deadline_setup ~adaptive:false w in
  ignore (Tutil.ok_exn "warm" (call w ch0 s (Msg.of_string "w")));
  rx := [];
  let dropped = ref false in
  Wire.set_fault_hook w.World.wire
    (Some
       (fun _ _ ->
         if !dropped then []
         else begin
           dropped := true;
           [ Wire.Drop ]
         end));
  let expiry = ref 0. in
  Tutil.run_in w (fun () ->
      let e = Sim.now w.World.sim +. 0.5 in
      expiry := e;
      ignore
        (Tutil.ok_exn "retried"
           (Channel.call ~expires:e ch0 s (Msg.of_string "r"))));
  Tutil.check_int "one retransmission" 1
    (Tutil.stat (Channel.proto ch0) "retransmit");
  match !rx with
  | [ got ] ->
      (* The retransmit restamped the budget remaining at *its* transmit
         time: the reconstruction still lands on the caller's absolute
         deadline.  A replayed original stamp would land one RTO late. *)
      Alcotest.(check bool) "retransmit restamped the remaining budget" true
        (Float.abs (got -. !expiry) < 0.01)
  | _ -> Alcotest.fail "expected exactly one executed request"

let deadline_gives_up () =
  let w = World.create () in
  let ch0, _, s, _, _ = deadline_setup ~adaptive:false w in
  ignore (Tutil.ok_exn "warm" (call w ch0 s (Msg.of_string "w")));
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Drop ]));
  let elapsed = ref 0. in
  let res =
    Tutil.run_in w (fun () ->
        let t0 = Sim.now w.World.sim in
        let r = Channel.call ~expires:(t0 +. 0.05) ch0 s (Msg.of_string "x") in
        elapsed := Sim.now w.World.sim -. t0;
        r)
  in
  Alcotest.(check bool) "times out" true (res = Error Rpc.Rpc_error.Timeout);
  Tutil.check_int "gave up at the deadline" 1
    (Tutil.stat (Channel.proto ch0) "deadline-give-up");
  (* Two 20 ms RTO fires land inside the 50 ms budget; the third gives
     up instead of walking the rest of the five-retry ladder. *)
  Tutil.check_int "stopped retransmitting" 2
    (Tutil.stat (Channel.proto ch0) "retransmit");
  Alcotest.(check bool) "returned promptly" true (!elapsed < 0.1)

let server_drops_expired_request () =
  let w = World.create () in
  let ch0, ch1, s, execs, _ = deadline_setup w in
  ignore (Tutil.ok_exn "warm" (call w ch0 s (Msg.of_string "w")));
  let res =
    Tutil.run_in w (fun () ->
        Channel.call
          ~expires:(Sim.now w.World.sim)
          ch0 s
          (Msg.of_string "late"))
  in
  Alcotest.(check bool) "caller times out" true
    (res = Error Rpc.Rpc_error.Timeout);
  Tutil.check_int "procedure never ran" 1 !execs;
  Alcotest.(check bool) "server counted the expired arrival" true
    (Tutil.stat (Channel.proto ch1) "deadline-expired-server" >= 1)

let () =
  Alcotest.run "channel"
    [
      ( "transactions",
        [
          Alcotest.test_case "basic echo" `Quick basic_transaction;
          Alcotest.test_case "implicit ack: no extra packets" `Quick
            implicit_ack_no_extra_packets;
          Alcotest.test_case "sequential reuse" `Quick sequential_calls_reuse_channel;
          Alcotest.test_case "concurrent channels" `Quick concurrent_channels;
          Alcotest.test_case "busy channel rejected" `Quick busy_channel_rejected;
          Alcotest.test_case "uniform busy push dropped" `Quick
            uniform_busy_push_dropped;
          Alcotest.test_case "64 sessions: O(1) call" `Quick
            many_sessions_constant_call;
          Alcotest.test_case "channel id bounded" `Quick channel_out_of_range;
        ] );
      ( "at-most-once",
        [
          Alcotest.test_case "duplication on the wire" `Quick
            at_most_once_under_duplication;
          Alcotest.test_case "lost request retransmitted" `Quick
            lost_request_retransmitted;
          Alcotest.test_case "lost reply: cached, not re-executed" `Quick
            lost_reply_not_reexecuted;
          Alcotest.test_case "client reboot resets server" `Quick
            client_reboot_resets_server_state;
        ] );
      ( "timers",
        [
          Alcotest.test_case "slow server: explicit ack" `Quick
            slow_server_explicit_ack;
          Alcotest.test_case "timeout when server gone" `Quick timeout_when_server_gone;
          Alcotest.test_case "effective timeout reported" `Quick
            effective_timeout_reported;
          Alcotest.test_case "backoff decays after fresh sample" `Quick
            backoff_decays_after_fresh_sample;
          Alcotest.test_case "fixed timeout unchanged" `Quick
            fixed_timeout_unchanged;
          Alcotest.test_case "step-function timeout" `Quick
            multi_fragment_timeout_is_longer;
          Alcotest.test_case "server reboot detected" `Quick reboot_detected;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "header codec round-trips" `Quick
            deadline_header_codec;
          Alcotest.test_case "server rebuilds the expiry" `Quick
            deadline_stamp_received;
          Alcotest.test_case "retransmit restamps remaining" `Quick
            retransmit_carries_decremented_deadline;
          Alcotest.test_case "client gives up at the deadline" `Quick
            deadline_gives_up;
          Alcotest.test_case "expired arrival dropped server-side" `Quick
            server_drops_expired_request;
        ] );
    ]
