(* End-to-end overload control: the ADMIT layer's queue disciplines
   against stub sessions, the client-side governance in REPLICA (retry
   budget, busy pushback, all-dead fast-fail, hedging) against scripted
   endpoints, and the overload experiment's determinism. *)
open Xkernel
module World = Netproto.World
module Admit = Rpc.Admit
module Stacks = Rpc.Stacks
module Select_replica = Rpc.Select_replica

(* --- ADMIT against stubs ------------------------------------------------- *)

(* A stub "channel" session: answers [Get_rx_deadline] from [expiry]
   and counts [Reject_busy] pushbacks. *)
let stub_session host ?(expiry = -1.) () =
  let p = Proto.create ~host ~name:"STUB" () in
  let rejects = ref 0 in
  let sess =
    Proto.make_session p
      {
        Proto.push = (fun _ -> ());
        pop = (fun _ -> ());
        s_control =
          (function
          | Control.Get_rx_deadline -> Control.R_float expiry
          | Control.Reject_busy ->
              incr rejects;
              Control.R_unit
          | _ -> Control.Unsupported);
        close = (fun () -> ());
      }
  in
  (sess, rejects)

(* An upper protocol recording what reaches it, optionally burning
   [delay] seconds per message (a slow procedure). *)
let recording_upper host ?(delay = 0.) () =
  let served = ref [] in
  let up = Proto.create ~host ~name:"SRV" () in
  Proto.set_ops up
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "srv");
      open_enable = (fun ~upper:_ _ -> invalid_arg "srv");
      open_done = (fun ~upper:_ _ -> invalid_arg "srv");
      demux =
        (fun ~lower:_ msg ->
          if delay > 0. then Sim.delay (Host.sim host) delay;
          served := Msg.to_string msg :: !served);
      p_control = (fun _ -> Control.Unsupported);
    };
  (up, served)

(* Zero-cost profile: [Proto.deliver] does not yield on the CPU
   semaphore, so a burst enqueued in one fiber turn really is a burst —
   the worker only runs once the enqueuer blocks. *)
let zero_world () = World.create ~profile:Machine.zero_cost ()

let admit_queue_full_rejects () =
  let w = zero_world () in
  let host = (World.node w 0).World.host in
  let up, served = recording_upper host () in
  let t = Admit.create ~host ~upper:up ~config:{ Admit.default with queue_limit = 2 } () in
  let sess, rejects = stub_session host () in
  Tutil.run_in w (fun () ->
      for i = 1 to 5 do
        Proto.deliver (Admit.proto t) ~lower:sess
          (Msg.of_string (string_of_int i))
      done);
  Tutil.check_int "first two admitted" 2 (Admit.admitted t);
  Tutil.check_int "overflow rejected" 3 (Admit.busy_rejected t);
  Tutil.check_int "each reject answered with busy" 3 !rejects;
  Tutil.check_int "served the admitted ones" 2 (List.length !served);
  Tutil.check_int "queue drained" 0 (Admit.depth t)

let admit_drops_expired () =
  let w = zero_world () in
  let host = (World.node w 0).World.host in
  let up, served = recording_upper host () in
  let t = Admit.create ~host ~upper:up () in
  (* Expiry at the epoch: already lapsed when the worker looks. *)
  let sess, rejects = stub_session host ~expiry:0. () in
  Tutil.run_in w (fun () ->
      Proto.deliver (Admit.proto t) ~lower:sess (Msg.of_string "stale"));
  Tutil.check_int "silently dropped" 1 (Admit.expired_dropped t);
  Tutil.check_int "no reply owed" 0 !rejects;
  Tutil.check_int "procedure never ran" 0 (List.length !served);
  Tutil.check_int "nothing admitted" 0 (Admit.admitted t)

let admit_lifo_serves_newest_first () =
  let w = zero_world () in
  let host = (World.node w 0).World.host in
  let up, served = recording_upper host () in
  let t = Admit.create ~host ~upper:up ~config:{ Admit.default with lifo = true } () in
  let sess, _ = stub_session host () in
  Tutil.run_in w (fun () ->
      List.iter
        (fun s -> Proto.deliver (Admit.proto t) ~lower:sess (Msg.of_string s))
        [ "a"; "b"; "c" ]);
  (* [served] is itself newest-first, so LIFO service order c,b,a reads
     back as a,b,c. *)
  Alcotest.(check (list string)) "newest first" [ "a"; "b"; "c" ] !served

let admit_codel_sheds_persistent_queue () =
  let w = zero_world () in
  let host = (World.node w 0).World.host in
  let sim = Host.sim host in
  (* 5 ms of service per request, arrivals every 1 ms: sojourn climbs
     past the 1 ms target and stays there, so after a full 10 ms
     interval above target the controller starts shedding. *)
  let up, served = recording_upper host ~delay:0.005 () in
  let t =
    Admit.create ~host ~upper:up
      ~config:
        {
          Admit.queue_limit = 100;
          codel_target = 0.001;
          codel_interval = 0.01;
          lifo = false;
        }
      ()
  in
  let sess, rejects = stub_session host () in
  Tutil.run_in w (fun () ->
      for i = 1 to 20 do
        Proto.deliver (Admit.proto t) ~lower:sess
          (Msg.of_string (string_of_int i));
        Sim.delay sim 0.001
      done);
  Alcotest.(check bool) "controller shed" true (Admit.codel_dropped t > 0);
  Alcotest.(check bool) "sheds answered with busy" true
    (!rejects = Admit.codel_dropped t);
  Alcotest.(check bool) "still serving" true (List.length !served > 0);
  Tutil.check_int "accounted for every request" 20
    (Admit.admitted t + Admit.codel_dropped t)

(* --- REPLICA governance against scripted endpoints ----------------------- *)

type behaviour = Reply | Fail of Rpc.Rpc_error.t | Block of float

let scripted w ?policy ?attempt_timeout ?deadline ?probation ?probe_limit
    ?retry_budget ?hedge ~k behave =
  let host = (World.node w 0).World.host in
  let sim = w.World.sim in
  let hits = Array.make k 0 in
  let endpoints =
    Array.init k (fun i ->
        {
          Select_replica.ep_addr = Addr.Ip.v 10 8 8 (i + 1);
          ep_call =
            (fun ?expires:_ ?shard:_ ~command:_ msg ->
              hits.(i) <- hits.(i) + 1;
              match behave i with
              | Reply -> Ok msg
              | Fail e -> Error e
              | Block d ->
                  Sim.delay sim d;
                  Ok msg);
        })
  in
  let t =
    Select_replica.create ~host ?policy ?attempt_timeout ?deadline ?probation
      ?probe_limit ?retry_budget ?hedge ~endpoints ()
  in
  (t, hits)

let rstat t name =
  Control.int_exn
    (Proto.control (Select_replica.proto t) (Control.Get_stat name))

let retry_budget_bounds_attempts () =
  let w = World.create () in
  (* Probation far out so recovery probes stay clear of the window.
     Ratio 0.25 is exact in binary floating point, so the bucket
     arithmetic below is deterministic down to the last token. *)
  let t, hits =
    scripted w ~retry_budget:0.25 ~probation:1000. ~k:3 (fun _ ->
        Fail Rpc.Rpc_error.Timeout)
  in
  let total = ref 0 in
  Tutil.run_in w (fun () ->
      for _ = 1 to 11 do
        ignore (Select_replica.call t ~command:Stacks.cmd_null Msg.empty)
      done;
      total := Array.fold_left ( + ) 0 hits);
  (* The bucket starts at its cap (2.5): call 1 pays for both
     failovers, then every fourth call accrues a whole token and
     retries once (calls 3, 7, 11); the rest absorb their failure.
     Without the budget 11 all-failing calls would make 33 attempts. *)
  Tutil.check_int "16 attempts for 11 calls" 16 !total;
  Tutil.check_int "five paid failovers" 5 (Select_replica.failovers t);
  Tutil.check_int "exhaustions absorbed the rest" 10
    (rstat t "retry-budget-exhausted")

let busy_pushback_no_failover () =
  let w = World.create () in
  let t, hits =
    scripted w ~policy:Select_replica.Hash ~k:2 (fun i ->
        if i = 0 then Fail Rpc.Rpc_error.Busy else Reply)
  in
  let res =
    Tutil.run_in w (fun () ->
        Select_replica.call t ~key:0 ~command:Stacks.cmd_null Msg.empty)
  in
  Alcotest.(check bool) "busy surfaces" true
    (res = Error Rpc.Rpc_error.Busy);
  Tutil.check_int "no second replica tried" 0 hits.(1);
  Tutil.check_int "no failover" 0 (Select_replica.failovers t);
  Tutil.check_int "pushback counted" 1 (rstat t "busy-reject-rx");
  Alcotest.(check bool) "replica not marked unhealthy" true
    (Select_replica.health t 0 = Select_replica.Healthy)

let all_dead_fails_fast () =
  let w = World.create () in
  let t, _ =
    scripted w ~attempt_timeout:0.05 ~probation:0.01 ~probe_limit:1 ~k:2
      (fun _ -> Fail Rpc.Rpc_error.Timeout)
  in
  let elapsed = ref 1. and res = ref (Ok Msg.empty) in
  Tutil.run_in w (fun () ->
      (* One call marks both replicas suspect; their single recovery
         probes fail and kill them. *)
      ignore (Select_replica.call t ~command:Stacks.cmd_null Msg.empty);
      Sim.delay w.World.sim 1.;
      Alcotest.(check bool) "both dead" true
        (Select_replica.health t 0 = Select_replica.Dead
        && Select_replica.health t 1 = Select_replica.Dead);
      let t0 = Sim.now w.World.sim in
      res := Select_replica.call t ~command:Stacks.cmd_null Msg.empty;
      elapsed := Sim.now w.World.sim -. t0);
  Alcotest.(check bool) "terminal timeout" true
    (!res = Error Rpc.Rpc_error.Timeout);
  Alcotest.(check bool) "immediate, not a slept-out deadline" true
    (!elapsed < 0.001);
  Tutil.check_int "fast-fail counted" 1 (rstat t "all-dead")

let hedge_races_the_slow_replica () =
  let w = World.create () in
  let slow = ref false in
  let t, hits =
    scripted w ~policy:Select_replica.Hash ~hedge:true ~k:2 (fun i ->
        if i = 1 then Block 0.001
        else if !slow then Block 0.2
        else Block 0.002)
  in
  let elapsed = ref 0. in
  Tutil.run_in w (fun () ->
      (* Feed the latency histogram past its minimum sample count while
         replica 0 is fast... *)
      for _ = 1 to 40 do
        ignore
          (Tutil.ok_exn "warm"
             (Select_replica.call t ~key:0 ~command:Stacks.cmd_null Msg.empty))
      done;
      (* ...then stall it.  The hedge arms after the observed p99
         (~2 ms), fires long before the 200 ms stall resolves, and the
         fast replica's reply settles the call. *)
      slow := true;
      let t0 = Sim.now w.World.sim in
      ignore
        (Tutil.ok_exn "hedged"
           (Select_replica.call t ~key:0 ~command:Stacks.cmd_null Msg.empty));
      elapsed := Sim.now w.World.sim -. t0);
  Tutil.check_int "hedge launched" 1 (rstat t "hedge-sent");
  Tutil.check_int "hedge settled the call" 1 (rstat t "hedge-win");
  Tutil.check_int "second replica served it" 1 hits.(1);
  Alcotest.(check bool) "well under the primary's stall" true
    (!elapsed < 0.05);
  Tutil.check_int "not counted as a failover" 0 (Select_replica.failovers t)

(* --- the experiment ------------------------------------------------------ *)

let overload_experiment_deterministic () =
  let run () =
    Json.to_string
      (Rpc.Experiments.overload ~servers:2 ~clients:2 ~rates:[ 1800. ]
         ~arrivals:40 ~window:64 ~controls:[ "deadline+admit" ] ())
  in
  let a = run () in
  let b = run () in
  Alcotest.(check string) "identical JSON twice" a b

let () =
  Alcotest.run "overload"
    [
      ( "admit",
        [
          Alcotest.test_case "bounded queue rejects overflow" `Quick
            admit_queue_full_rejects;
          Alcotest.test_case "expired request dropped silently" `Quick
            admit_drops_expired;
          Alcotest.test_case "lifo serves newest first" `Quick
            admit_lifo_serves_newest_first;
          Alcotest.test_case "codel sheds a persistent queue" `Quick
            admit_codel_sheds_persistent_queue;
        ] );
      ( "governance",
        [
          Alcotest.test_case "retry budget bounds attempts" `Quick
            retry_budget_bounds_attempts;
          Alcotest.test_case "busy pushback: no failover" `Quick
            busy_pushback_no_failover;
          Alcotest.test_case "all dead: fail fast" `Quick all_dead_fails_fast;
          Alcotest.test_case "hedge races the slow replica" `Quick
            hedge_races_the_slow_replica;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "deterministic" `Quick
            overload_experiment_deterministic;
        ] );
    ]
