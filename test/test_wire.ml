open Xkernel

let mk () =
  let sim = Sim.create () in
  let wire = Wire.create sim () in
  (sim, wire)

let attach_recv wire received =
  Wire.attach wire ~recv:(fun m -> received := Msg.to_string m :: !received)

let broadcast_delivery () =
  let sim, wire = mk () in
  let r1 = ref [] and r2 = ref [] in
  let tap0 = Wire.attach wire ~recv:(fun _ -> Alcotest.fail "echoed to sender") in
  let _t1 = attach_recv wire r1 in
  let _t2 = attach_recv wire r2 in
  Sim.spawn sim (fun () -> Wire.transmit wire ~from:tap0 (Msg.of_string "hi"));
  Sim.run sim;
  Alcotest.(check (list string)) "receiver 1" [ "hi" ] !r1;
  Alcotest.(check (list string)) "receiver 2" [ "hi" ] !r2

let serialization_time () =
  let sim, wire = mk () in
  let tap0 = Wire.attach wire ~recv:(fun _ -> ()) in
  let arrival = ref 0. in
  let _ = Wire.attach wire ~recv:(fun _ -> arrival := Sim.now sim) in
  Sim.spawn sim (fun () ->
      Wire.transmit wire ~from:tap0 (Msg.fill 1486 'x'));
  Sim.run sim;
  (* (1486+4+20) bytes * 8 bits / 10 Mb/s + 5 us propagation *)
  let expect = (float_of_int (Wire.on_wire_bytes 1486 * 8) /. 10e6) +. 5e-6 in
  Alcotest.(check (float 1e-9)) "arrival time" expect !arrival

let min_frame_padding () =
  Tutil.check_int "runt padded to 64+20" 84 (Wire.on_wire_bytes 1);
  Tutil.check_int "large frame" 1510 (Wire.on_wire_bytes 1486)

let half_duplex_queueing () =
  let sim, wire = mk () in
  let tap0 = Wire.attach wire ~recv:(fun _ -> ()) in
  let times = ref [] in
  let _ = Wire.attach wire ~recv:(fun _ -> times := Sim.now sim :: !times) in
  (* Two transmitters contend for the medium: second waits. *)
  Sim.spawn sim (fun () -> Wire.transmit wire ~from:tap0 (Msg.fill 1000 'a'));
  Sim.spawn sim (fun () -> Wire.transmit wire ~from:tap0 (Msg.fill 1000 'b'));
  Sim.run sim;
  match List.sort compare !times with
  | [ t1; t2 ] ->
      let ser = float_of_int (Wire.on_wire_bytes 1000 * 8) /. 10e6 in
      Alcotest.(check (float 1e-9)) "second serialized after first" ser (t2 -. t1)
  | _ -> Alcotest.fail "expected two deliveries"

let drop_fault () =
  let sim, wire = mk () in
  Wire.set_fault_hook wire (Some (fun n _ -> if n = 0 then [ Wire.Drop ] else []));
  let tap0 = Wire.attach wire ~recv:(fun _ -> ()) in
  let received = ref [] in
  let _ = attach_recv wire received in
  Sim.spawn sim (fun () ->
      Wire.transmit wire ~from:tap0 (Msg.of_string "lost");
      Wire.transmit wire ~from:tap0 (Msg.of_string "kept"));
  Sim.run sim;
  Alcotest.(check (list string)) "first dropped" [ "kept" ] !received;
  Tutil.check_int "stats dropped" 1 (Wire.stats wire).Wire.dropped

let duplicate_fault () =
  let sim, wire = mk () in
  Wire.set_fault_hook wire (Some (fun _ _ -> [ Wire.Duplicate ]));
  let tap0 = Wire.attach wire ~recv:(fun _ -> ()) in
  let received = ref [] in
  let _ = attach_recv wire received in
  Sim.spawn sim (fun () -> Wire.transmit wire ~from:tap0 (Msg.of_string "x"));
  Sim.run sim;
  Alcotest.(check (list string)) "two copies" [ "x"; "x" ] !received

let corrupt_fault () =
  let sim, wire = mk () in
  Wire.set_fault_hook wire (Some (fun _ _ -> [ Wire.Corrupt 1 ]));
  let tap0 = Wire.attach wire ~recv:(fun _ -> ()) in
  let received = ref [] in
  let _ = attach_recv wire received in
  Sim.spawn sim (fun () -> Wire.transmit wire ~from:tap0 (Msg.of_string "abc"));
  Sim.run sim;
  (match !received with
  | [ s ] ->
      Alcotest.(check bool) "byte 1 flipped" true (s.[1] <> 'b');
      Alcotest.(check char) "byte 0 intact" 'a' s.[0]
  | _ -> Alcotest.fail "expected one delivery");
  Tutil.check_int "stats corrupted" 1 (Wire.stats wire).Wire.corrupted

let duplicate_and_corrupt_accounting () =
  (* One frame, duplicated and corrupted, one receiving tap: [delivered]
     counts both scheduled copies, the corruption hits only the original
     transmission, and the duplicate carries the clean bits. *)
  let sim, wire = mk () in
  Wire.set_fault_hook wire
    (Some (fun _ _ -> [ Wire.Duplicate; Wire.Corrupt 0 ]));
  let tap0 = Wire.attach wire ~recv:(fun _ -> ()) in
  let received = ref [] in
  let _ = attach_recv wire received in
  Sim.spawn sim (fun () -> Wire.transmit wire ~from:tap0 (Msg.of_string "ok"));
  Sim.run sim;
  let st = Wire.stats wire in
  Tutil.check_int "frames" 1 st.Wire.frames;
  Tutil.check_int "delivered counts both copies" 2 st.Wire.delivered;
  Tutil.check_int "duplicated" 1 st.Wire.duplicated;
  Tutil.check_int "corrupted" 1 st.Wire.corrupted;
  match List.sort compare !received with
  | [ a; b ] ->
      Alcotest.(check bool) "exactly one copy corrupted" true
        (List.length (List.filter (String.equal "ok") [ a; b ]) = 1)
  | l -> Alcotest.failf "expected two deliveries, got %d" (List.length l)

let reorder_fault () =
  let sim, wire = mk () in
  Wire.set_fault_hook wire
    (Some (fun n _ -> if n = 0 then [ Wire.Delay 0.01 ] else []));
  let tap0 = Wire.attach wire ~recv:(fun _ -> ()) in
  let received = ref [] in
  let _ = attach_recv wire received in
  Sim.spawn sim (fun () ->
      Wire.transmit wire ~from:tap0 (Msg.of_string "first");
      Wire.transmit wire ~from:tap0 (Msg.of_string "second"));
  Sim.run sim;
  Alcotest.(check (list string)) "overtaken" [ "first"; "second" ] !received

let probabilistic_drops_deterministic () =
  (* Same seed, same loss pattern: determinism matters for repro. *)
  let run seed =
    let sim = Sim.create () in
    let wire = Wire.create sim ~seed () in
    Wire.set_drop_rate wire 0.5;
    let tap0 = Wire.attach wire ~recv:(fun _ -> ()) in
    let count = ref 0 in
    let _ = Wire.attach wire ~recv:(fun _ -> incr count) in
    Sim.spawn sim (fun () ->
        for _ = 1 to 100 do
          Wire.transmit wire ~from:tap0 (Msg.of_string "m")
        done);
    Sim.run sim;
    !count
  in
  Tutil.check_int "same seed, same outcome" (run 7) (run 7);
  Alcotest.(check bool) "some but not all dropped" true
    (let c = run 7 in
     c > 0 && c < 100)

let stats_accumulate () =
  let sim, wire = mk () in
  let tap0 = Wire.attach wire ~recv:(fun _ -> ()) in
  let _ = Wire.attach wire ~recv:(fun _ -> ()) in
  Sim.spawn sim (fun () ->
      Wire.transmit wire ~from:tap0 (Msg.fill 100 'x');
      Wire.transmit wire ~from:tap0 (Msg.fill 100 'x'));
  Sim.run sim;
  let st = Wire.stats wire in
  Tutil.check_int "frames" 2 st.Wire.frames;
  Tutil.check_int "delivered" 2 st.Wire.delivered;
  Wire.reset_stats wire;
  Tutil.check_int "reset" 0 (Wire.stats wire).Wire.frames

let pair_blocking () =
  let sim, wire = mk () in
  let tap0 = Wire.attach wire ~recv:(fun _ -> ()) in
  let r1 = ref [] and r2 = ref [] in
  let t1 = attach_recv wire r1 in
  let _t2 = attach_recv wire r2 in
  Wire.block_pair wire ~from:tap0 ~to_:t1;
  Tutil.check_bool "pair reported blocked" true
    (Wire.pair_blocked wire ~from:tap0 ~to_:t1);
  Tutil.check_bool "reverse direction open" false
    (Wire.pair_blocked wire ~from:t1 ~to_:tap0);
  Sim.spawn sim (fun () -> Wire.transmit wire ~from:tap0 (Msg.of_string "one"));
  Sim.run sim;
  (* The cut is directional and per-pair: t1 starved, t2 untouched. *)
  Alcotest.(check (list string)) "blocked receiver" [] !r1;
  Alcotest.(check (list string)) "other receiver" [ "one" ] !r2;
  Tutil.check_int "partitioned counted" 1 (Wire.stats wire).Wire.partitioned;
  Tutil.check_int "delivered counted" 1 (Wire.stats wire).Wire.delivered;
  Wire.unblock_pair wire ~from:tap0 ~to_:t1;
  Sim.spawn sim (fun () -> Wire.transmit wire ~from:tap0 (Msg.of_string "two"));
  Sim.run sim;
  Alcotest.(check (list string)) "heals after unblock" [ "two" ] !r1;
  Tutil.check_int "no further partitioned" 1 (Wire.stats wire).Wire.partitioned

let () =
  Alcotest.run "wire"
    [
      ( "medium",
        [
          Alcotest.test_case "broadcast delivery" `Quick broadcast_delivery;
          Alcotest.test_case "serialization time" `Quick serialization_time;
          Alcotest.test_case "minimum frame size" `Quick min_frame_padding;
          Alcotest.test_case "half-duplex queueing" `Quick half_duplex_queueing;
          Alcotest.test_case "stats" `Quick stats_accumulate;
        ] );
      ( "faults",
        [
          Alcotest.test_case "drop" `Quick drop_fault;
          Alcotest.test_case "duplicate" `Quick duplicate_fault;
          Alcotest.test_case "corrupt" `Quick corrupt_fault;
          Alcotest.test_case "duplicate+corrupt accounting" `Quick
            duplicate_and_corrupt_accounting;
          Alcotest.test_case "reorder delay" `Quick reorder_fault;
          Alcotest.test_case "deterministic randomness" `Quick
            probabilistic_drops_deterministic;
          Alcotest.test_case "pair blocking" `Quick pair_blocking;
        ] );
    ]
