open Xkernel

(* --- Addr --- *)

let ip_roundtrip () =
  let a = Addr.Ip.v 10 1 2 254 in
  Tutil.check_str "to_string" "10.1.2.254" (Addr.Ip.to_string a);
  Alcotest.(check bool) "of_string" true (Addr.Ip.of_string "10.1.2.254" = Some a)

let ip_of_string_rejects () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " rejected") true (Addr.Ip.of_string s = None))
    [ "10.0.0"; "10.0.0.0.0"; "256.0.0.1"; "a.b.c.d"; ""; "10.0.0.-1" ]

let ip_octet_bounds () =
  Alcotest.(check bool) "octet > 255" true
    (match Addr.Ip.v 300 0 0 1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let ip_networks () =
  let a = Addr.Ip.v 10 0 0 1 and b = Addr.Ip.v 10 0 0 99 in
  let c = Addr.Ip.v 10 0 1 1 in
  Alcotest.(check bool) "same /24" true (Addr.Ip.same_network a b);
  Alcotest.(check bool) "different /24" false (Addr.Ip.same_network a c)

let eth_format () =
  Tutil.check_str "formatting" "08:00:20:01:02:03"
    (Addr.Eth.to_string (Addr.Eth.v 0x080020010203));
  Alcotest.(check bool) "broadcast" true (Addr.Eth.is_broadcast Addr.Eth.broadcast);
  Alcotest.(check bool) "48-bit bound" true
    (match Addr.Eth.v (1 lsl 48) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let vip_type_mapping () =
  (* 256 IP protocol numbers map injectively into the reserved range and
     back (section 3.1's 8-bit -> 16-bit argument). *)
  for p = 0 to 255 do
    let ty = Addr.eth_type_of_ip_proto p in
    Alcotest.(check bool) "in reserved range" true
      (ty >= Addr.vip_eth_type_base && ty < Addr.vip_eth_type_base + 256);
    Tutil.check_int "roundtrip" p (Option.get (Addr.ip_proto_of_eth_type ty))
  done;
  Alcotest.(check bool) "IP's own type is outside the range" true
    (Addr.ip_proto_of_eth_type Addr.eth_type_ip = None);
  Alcotest.(check bool) "bad input rejected" true
    (match Addr.eth_type_of_ip_proto 256 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_ip_roundtrip =
  Tutil.qtest "ip string roundtrip" QCheck.(int_bound 0xffffffff) (fun n ->
      let a = Addr.Ip.of_int32_bits n in
      Addr.Ip.of_string (Addr.Ip.to_string a) = Some a)

(* --- Part --- *)

let participant_accessors () =
  let p =
    [
      Part.Ip (Addr.Ip.v 10 0 0 1);
      Part.Port 53;
      Part.Ip_proto 17;
      Part.Channel 3;
      Part.Command 9;
      Part.Program (100003, 2);
      Part.Procedure 4;
    ]
  in
  Alcotest.(check bool) "ip" true (Part.find_ip p = Some (Addr.Ip.v 10 0 0 1));
  Alcotest.(check bool) "port" true (Part.find_port p = Some 53);
  Alcotest.(check bool) "proto" true (Part.find_ip_proto p = Some 17);
  Alcotest.(check bool) "channel" true (Part.find_channel p = Some 3);
  Alcotest.(check bool) "command" true (Part.find_command p = Some 9);
  Alcotest.(check bool) "program" true (Part.find_program p = Some (100003, 2));
  Alcotest.(check bool) "procedure" true (Part.find_procedure p = Some 4);
  Alcotest.(check bool) "missing eth" true (Part.find_eth p = None)

let first_match_wins () =
  let p = [ Part.Port 1; Part.Port 2 ] in
  Alcotest.(check bool) "front to back" true (Part.find_port p = Some 1);
  let p' = Part.with_component p (Part.Port 0) in
  Alcotest.(check bool) "with_component prepends" true (Part.find_port p' = Some 0)

let peer_required () =
  let ps = Part.v ~local:[ Part.Port 1 ] () in
  Alcotest.(check bool) "no remotes" true (Part.peer_opt ps = None);
  Alcotest.(check bool) "peer raises" true
    (match Part.peer ps with exception Invalid_argument _ -> true | _ -> false);
  let ps2 = Part.v ~local:[] ~remotes:[ [ Part.Port 2 ]; [ Part.Port 3 ] ] () in
  Alcotest.(check bool) "first remote" true
    (Part.find_port (Part.peer ps2) = Some 2)

let printing () =
  let s =
    Format.asprintf "%a" Part.pp
      (Part.v
         ~local:[ Part.Ip (Addr.Ip.v 10 0 0 1); Part.Ip_proto 17 ]
         ~remotes:[ [ Part.Any ] ]
         ())
  in
  Alcotest.(check bool) "mentions ip" true
    (let contains hay needle =
       let ln = String.length needle and lh = String.length hay in
       let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
       go 0
     in
     contains s "10.0.0.1" && contains s "ipproto:17" && contains s "*")

(* --- Control --- *)

let control_accessors () =
  Tutil.check_int "int" 5 (Control.int_exn (Control.R_int 5));
  Alcotest.(check bool) "bool" true (Control.bool_exn (Control.R_bool true));
  Alcotest.(check bool) "shape mismatch raises" true
    (match Control.int_exn Control.R_unit with
    | exception Failure _ -> true
    | _ -> false);
  Alcotest.(check bool) "int_opt on other" true (Control.int_opt Control.R_unit = None)

let control_via_chain () =
  let h1 = function Control.Get_mtu -> Control.R_int 1500 | _ -> Control.Unsupported in
  let h2 = function Control.Get_my_port -> Control.R_int 9 | _ -> Control.Unsupported in
  Tutil.check_int "first handler" 1500
    (Control.int_exn (Proto.control_via [ h1; h2 ] Control.Get_mtu));
  Tutil.check_int "second handler" 9
    (Control.int_exn (Proto.control_via [ h1; h2 ] Control.Get_my_port));
  Alcotest.(check bool) "nobody answers" true
    (Proto.control_via [ h1; h2 ] Control.Get_boot_id = Control.Unsupported)

let control_vocabulary_size () =
  (* "on the order of two dozen" *)
  Alcotest.(check bool) "about two dozen opcodes" true
    (Control.op_count >= 20 && Control.op_count <= 36)

(* --- Stats --- *)

let stats_counters () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "b" 5;
  Tutil.check_int "incr" 2 (Stats.get s "a");
  Tutil.check_int "add" 5 (Stats.get s "b");
  Tutil.check_int "missing" 0 (Stats.get s "zzz");
  Alcotest.(check (list (pair string int))) "sorted list"
    [ ("a", 2); ("b", 5) ] (Stats.to_list s);
  (match Stats.control s (Control.Get_stat "a") with
  | Control.R_int 2 -> ()
  | _ -> Alcotest.fail "control get_stat");
  ignore (Stats.control s Control.Flush_cache);
  Tutil.check_int "flushed" 0 (Stats.get s "a")

(* --- Host --- *)

let host_reboot () =
  let sim = Sim.create () in
  let h = Host.create sim ~name:"h" ~ip:(Addr.Ip.v 10 0 0 1) ~eth:(Addr.Eth.v 5) () in
  let b0 = h.Host.boot_id in
  Host.reboot h;
  Tutil.check_int "boot id bumps" (b0 + 1) h.Host.boot_id

let () =
  Alcotest.run "addr-part-control"
    [
      ( "addr",
        [
          Alcotest.test_case "ip roundtrip" `Quick ip_roundtrip;
          Alcotest.test_case "ip parse rejects" `Quick ip_of_string_rejects;
          Alcotest.test_case "ip octet bounds" `Quick ip_octet_bounds;
          Alcotest.test_case "networks" `Quick ip_networks;
          Alcotest.test_case "eth formatting" `Quick eth_format;
          Alcotest.test_case "VIP type mapping" `Quick vip_type_mapping;
          prop_ip_roundtrip;
        ] );
      ( "part",
        [
          Alcotest.test_case "accessors" `Quick participant_accessors;
          Alcotest.test_case "first match wins" `Quick first_match_wins;
          Alcotest.test_case "peer required" `Quick peer_required;
          Alcotest.test_case "printing" `Quick printing;
        ] );
      ( "control",
        [
          Alcotest.test_case "typed accessors" `Quick control_accessors;
          Alcotest.test_case "control_via chain" `Quick control_via_chain;
          Alcotest.test_case "vocabulary size" `Quick control_vocabulary_size;
        ] );
      ( "stats-host",
        [
          Alcotest.test_case "counters" `Quick stats_counters;
          Alcotest.test_case "host reboot" `Quick host_reboot;
        ] );
    ]
