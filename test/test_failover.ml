(* The REPLICA layer: policy ordering, the health machine (suspect →
   probe → healthy / dead), bounded attempts and the overall deadline —
   first against scripted endpoints, then end-to-end over a replicated
   L.RPC fan-out with a scripted crash. *)
open Xkernel
module World = Netproto.World
module Stacks = Rpc.Stacks
module Select_replica = Rpc.Select_replica

(* Scripted endpoints: [behave i ~command] decides what endpoint [i]
   does for one call.  Each call is tallied in [hits.(i)]. *)
type behaviour =
  | Reply
  | Fail of Rpc.Rpc_error.t
  | Block of float  (* serve only after this much delay *)

let scripted w ?policy ?attempt_timeout ?deadline ?max_failovers ?probation
    ?probe_limit ?probe_timeout ?dead_retry_interval ~k behave =
  let host = (World.node w 0).World.host in
  let sim = w.World.sim in
  let hits = Array.make k 0 in
  let endpoints =
    Array.init k (fun i ->
        {
          Select_replica.ep_addr = Addr.Ip.v 10 9 9 (i + 1);
          ep_call =
            (fun ?expires:_ ?shard:_ ~command msg ->
              hits.(i) <- hits.(i) + 1;
              match behave i ~command with
              | Reply -> Ok msg
              | Fail e -> Error e
              | Block d ->
                  Sim.delay sim d;
                  Ok msg);
        })
  in
  let t =
    Select_replica.create ~host ?policy ?attempt_timeout ?deadline
      ?max_failovers ?probation ?probe_limit ?probe_timeout
      ?dead_retry_interval ~endpoints ()
  in
  (t, hits)

let call w t ?key () =
  Tutil.run_in w (fun () ->
      Select_replica.call t ?key ~command:Stacks.cmd_null Msg.empty)

let round_robin_spreads () =
  let w = World.create () in
  let t, hits = scripted w ~k:4 (fun _ ~command:_ -> Reply) in
  for _ = 1 to 8 do
    ignore (Tutil.ok_exn "call" (call w t ()))
  done;
  Array.iteri (fun i n -> Tutil.check_int (Printf.sprintf "ep %d" i) 2 n) hits;
  Tutil.check_int "no failovers" 0 (Select_replica.failovers t)

let hash_key_affinity () =
  let w = World.create () in
  let t, hits =
    scripted w ~policy:Select_replica.Hash ~k:4 (fun _ ~command:_ -> Reply)
  in
  for _ = 1 to 6 do
    ignore (Tutil.ok_exn "call" (call w t ~key:5 ()))
  done;
  Tutil.check_int "all calls on key mod k" 6 hits.(1);
  Tutil.check_int "others untouched" 0 (hits.(0) + hits.(2) + hits.(3))

let failover_marks_suspect () =
  let w = World.create () in
  let down = ref true in
  let t, hits =
    scripted w ~attempt_timeout:0.05 ~probation:0.1 ~k:3 (fun i ~command:_ ->
        if i = 0 && !down then Block 5. else Reply)
  in
  let seen = ref Select_replica.Healthy in
  Tutil.run_in w (fun () ->
      (match Select_replica.call t ~command:Stacks.cmd_null Msg.empty with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "failover failed: %s" (Rpc.Rpc_error.to_string e));
      seen := Select_replica.health t 0;
      (* Revive the replica before the probation probe fires. *)
      down := false);
  Alcotest.(check bool) "suspect right after the failover" true
    (!seen = Select_replica.Suspect);
  (* The run drained: the probe fired against the revived endpoint. *)
  Alcotest.(check bool) "healthy again after the probe" true
    (Select_replica.health t 0 = Select_replica.Healthy);
  Tutil.check_int "one failover" 1 (Select_replica.failovers t);
  Tutil.check_int "one probe, successful" 1 (Select_replica.probes_ok t);
  Alcotest.(check bool) "the stalled attempt was abandoned, not killed" true
    (hits.(0) >= 1)

let dead_after_probe_limit () =
  let w = World.create () in
  let t, hits =
    scripted w ~attempt_timeout:0.05 ~probation:0.02 ~probe_limit:3 ~k:2
      (fun i ~command:_ ->
        if i = 0 then Fail Rpc.Rpc_error.Timeout else Reply)
  in
  ignore (Tutil.ok_exn "first call fails over" (call w t ()));
  (* The run terminated even though replica 0 never recovers: probing
     stopped at [probe_limit] and the event queue drained. *)
  Alcotest.(check bool) "declared dead" true
    (Select_replica.health t 0 = Select_replica.Dead);
  Tutil.check_int "exactly probe_limit probes" 3 (Select_replica.probes_sent t);
  let h1 = hits.(1) in
  ignore (Tutil.ok_exn "later call" (call w t ()));
  ignore (Tutil.ok_exn "later call" (call w t ()));
  (* Dead replicas are last resort: both round-robin turns land on 1. *)
  Tutil.check_int "dead replica avoided" (h1 + 2) hits.(1)

(* The dead-retry pin: without [dead_retry_interval], a buried replica
   stays Dead forever once probing stops; with it, the next call past
   the interval fires a lazy re-probe and a rebooted replica heals back
   into the rotation. *)
let dead_retry_heals_rebooted_replica () =
  let w = World.create () in
  let sim = w.World.sim in
  let down = ref true in
  let t, hits =
    scripted w ~attempt_timeout:0.05 ~probation:0.02 ~probe_limit:2
      ~dead_retry_interval:0.2 ~k:2 (fun i ~command:_ ->
        if i = 0 && !down then Fail Rpc.Rpc_error.Timeout else Reply)
  in
  Tutil.run_in w (fun () ->
      ignore
        (Tutil.ok_exn "first call fails over"
           (Select_replica.call t ~command:Stacks.cmd_null Msg.empty));
      (* Let probation and both probes play out: replica 0 is Dead. *)
      Sim.delay sim 0.5;
      Alcotest.(check bool) "dead after the probe budget" true
        (Select_replica.health t 0 = Select_replica.Dead);
      (* The replica reboots.  Nothing notices until traffic flows. *)
      down := false;
      Sim.delay sim 0.5;
      ignore
        (Tutil.ok_exn "call while dead"
           (Select_replica.call t ~command:Stacks.cmd_null Msg.empty));
      (* That call fired the lazy re-probe in its own fiber; give it a
         beat to land, then the rotation includes replica 0 again. *)
      Sim.delay sim 0.1;
      Alcotest.(check bool) "healed by the lazy re-probe" true
        (Select_replica.health t 0 = Select_replica.Healthy);
      let h0 = hits.(0) in
      for _ = 1 to 4 do
        ignore
          (Tutil.ok_exn "post-heal call"
             (Select_replica.call t ~command:Stacks.cmd_null Msg.empty))
      done;
      Alcotest.(check bool) "replica 0 back in rotation" true
        (hits.(0) > h0))

let deadline_bounds_the_call () =
  let w = World.create () in
  let sim = w.World.sim in
  let t, _ =
    scripted w ~attempt_timeout:0.1 ~deadline:0.25 ~k:4 (fun _ ~command:_ ->
        Block 5.)
  in
  let elapsed = ref 0. in
  let res = ref (Ok Msg.empty) in
  Tutil.run_in w (fun () ->
      let t0 = Sim.now sim in
      res := Select_replica.call t ~command:Stacks.cmd_null Msg.empty;
      elapsed := Sim.now sim -. t0);
  Alcotest.(check bool) "times out" true (!res = Error Rpc.Rpc_error.Timeout);
  (* The observed time is the deadline plus the layer's own (virtual)
     CPU charge, a few microseconds. *)
  Alcotest.(check bool)
    (Printf.sprintf "bounded by the deadline (took %.6f s)" !elapsed)
    true
    (!elapsed <= 0.25 +. 1e-4)

let remote_error_no_failover () =
  let w = World.create () in
  let t, hits =
    scripted w ~k:3 (fun i ~command:_ ->
        if i = 0 then Fail (Rpc.Rpc_error.Remote 7) else Reply)
  in
  (match call w t () with
  | Error (Rpc.Rpc_error.Remote 7) -> ()
  | _ -> Alcotest.fail "expected the Remote error back");
  Tutil.check_int "no failover on a served error" 0
    (Select_replica.failovers t);
  Alcotest.(check bool) "replica still trusted" true
    (Select_replica.health t 0 = Select_replica.Healthy);
  Tutil.check_int "no other replica tried" 0 (hits.(1) + hits.(2))

(* --- end to end over a replicated L.RPC fan-out -------------------------- *)

let lrpc_fanout_crash_recovery () =
  Stats.reset_registry ();
  let fo = World.create_fanout ~clients:2 ~servers:3 () in
  let w = fo.World.fo in
  (* Replica 0 crashes at t=0.5 and is unreachable until t=1.0. *)
  Chaos.apply ~wire:w.World.wire ~devices:(World.devices w)
    [
      { Chaos.from_t = 0.5; until_t = 1.0; spec = Chaos.Crash 0 };
      {
        Chaos.from_t = 0.5;
        until_t = 1.0;
        spec = Chaos.Partition { a = [ 0 ]; b = [ 1; 2; 3; 4 ] };
      };
    ];
  let s =
    Stacks.lrpc_fanout ~attempt_timeout:0.05 ~deadline:0.5 ~probation:0.05
      ~probe_limit:10 fo
  in
  let server_handled i =
    match Stats.find (Printf.sprintf "h0.%d/SELECT" i) with
    | Some st -> Stats.get st "handled"
    | None -> 0
  in
  let ok = ref 0 in
  let spread = ref [||] in
  let during = ref Select_replica.Healthy in
  Tutil.run_in w (fun () ->
      let burst n =
        for _ = 1 to n do
          match s.Stacks.fos_call 0 ~command:Stacks.cmd_echo (Msg.of_string "x") with
          | Ok _ -> incr ok
          | Error e -> Alcotest.failf "call failed: %s" (Rpc.Rpc_error.to_string e)
        done
      in
      (* Before the crash: round-robin spreads over all three replicas. *)
      burst 6;
      spread := Array.init 3 server_handled;
      (* During the outage: every call still succeeds, via failover. *)
      Sim.delay w.World.sim (0.6 -. Sim.now w.World.sim);
      burst 6;
      during := Select_replica.health s.Stacks.fos_replicas.(0) 0;
      (* After the heal, wait for a probe to recover the replica. *)
      Sim.delay w.World.sim (1.5 -. Sim.now w.World.sim);
      burst 6);
  Tutil.check_int "every call succeeded" 18 !ok;
  Array.iteri
    (fun i n -> Tutil.check_int (Printf.sprintf "server %d pre-crash" i) 2 n)
    !spread;
  Alcotest.(check bool) "replica 0 distrusted during the outage" true
    (!during <> Select_replica.Healthy);
  let fos = s.Stacks.fos_replicas.(0) in
  Alcotest.(check bool) "failovers happened" true
    (Select_replica.failovers fos > 0);
  Alcotest.(check bool) "a probe recovered it" true
    (Select_replica.probes_ok fos > 0);
  Alcotest.(check bool) "healthy again after the heal" true
    (Select_replica.health fos 0 = Select_replica.Healthy)

let experiment_deterministic () =
  let run () =
    Rpc.Experiments.failover ~servers:2 ~clients:2 ~rate:400. ~arrivals:60 ()
  in
  let a = Json.to_string (run ()) in
  let b = Json.to_string (run ()) in
  Tutil.check_str "identical JSON twice" a b

let () =
  Alcotest.run "failover"
    [
      ( "policy",
        [
          Alcotest.test_case "round-robin spreads" `Quick round_robin_spreads;
          Alcotest.test_case "hash key affinity" `Quick hash_key_affinity;
          Alcotest.test_case "remote error: no failover" `Quick
            remote_error_no_failover;
        ] );
      ( "health",
        [
          Alcotest.test_case "failover marks suspect, probe heals" `Quick
            failover_marks_suspect;
          Alcotest.test_case "dead after probe limit" `Quick
            dead_after_probe_limit;
          Alcotest.test_case "dead retry heals a rebooted replica" `Quick
            dead_retry_heals_rebooted_replica;
          Alcotest.test_case "deadline bounds the call" `Quick
            deadline_bounds_the_call;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "crash, failover, recovery" `Quick
            lrpc_fanout_crash_recovery;
          Alcotest.test_case "experiment deterministic" `Quick
            experiment_deterministic;
        ] );
    ]
