(* The observability layer: the stats registry, JSON export, and the
   per-layer packet/crossing accounting that reproduces the paper's
   section 4.2 counts. *)
open Xkernel
module World = Netproto.World
module Stacks = Rpc.Stacks

(* -------------------------------------------------------------------- *)
(* A strict recursive-descent JSON validator — just enough to assert
   that what we emit is well-formed without a JSON dependency. *)

exception Bad of string

let validate s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos >= n then raise (Bad "unexpected end") else s.[!pos] in
  let advance () = incr pos in
  let expect c =
    if peek () <> c then
      raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
    else advance ()
  in
  let rec skip_ws () =
    if
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    then begin
      advance ();
      skip_ws ()
    end
  in
  let literal lit = String.iter expect lit in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' -> (
          advance ();
          match peek () with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' ->
              advance ();
              go ()
          | 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance ()
                | _ -> raise (Bad "bad \\u escape")
              done;
              go ()
          | _ -> raise (Bad "bad escape"))
      | c when Char.code c < 0x20 -> raise (Bad "raw control char in string")
      | _ ->
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    let is_num = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    if not (is_num (peek ())) then raise (Bad "number expected");
    while !pos < n && is_num s.[!pos] do
      advance ()
    done
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string_lit ()
    | 't' -> literal "true"
    | 'f' -> literal "false"
    | 'n' -> literal "null"
    | '-' | '0' .. '9' -> number ()
    | c -> raise (Bad (Printf.sprintf "unexpected %c" c))
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            members ()
        | '}' -> advance ()
        | _ -> raise (Bad "expected , or } in object")
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            elems ()
        | ']' -> advance ()
        | _ -> raise (Bad "expected , or ] in array")
      in
      elems ()
  in
  value ();
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage")

let check_valid what s =
  match validate s with
  | () -> ()
  | exception Bad why -> Alcotest.failf "%s: invalid JSON (%s): %s" what why s

(* -------------------------------------------------------------------- *)

let json_serializer () =
  let doc =
    Json.(
      Obj
        [
          ("a", Int 1);
          ("s", Str "he\"llo\nworld");
          ("f", Float 1.5);
          ("nan", Float Float.nan);
          ("l", Arr [ Bool true; Null ]);
          ("e", Obj []);
        ])
  in
  let s = Json.to_string doc in
  check_valid "serializer output" s;
  Tutil.check_str "exact rendering"
    {|{"a":1,"s":"he\"llo\nworld","f":1.5,"nan":null,"l":[true,null],"e":{}}|}
    s

let registry_dump_and_find () =
  Stats.reset_registry ();
  let anon = Stats.create () in
  Stats.incr anon "invisible";
  let s = Stats.create ~name:"test/T" () in
  Stats.incr s "a";
  Stats.add s "b" 3;
  (match Stats.find "test/T" with
  | Some t -> Tutil.check_int "find reads the table" 1 (Stats.get t "a")
  | None -> Alcotest.fail "named table not registered");
  Alcotest.(check bool) "anonymous tables stay out" true
    (Stats.find "invisible" = None);
  (match Stats.dump () with
  | [ ("test/T", counters) ] ->
      Alcotest.(check (list (pair string int)))
        "sorted counters"
        [ ("a", 1); ("b", 3) ]
        counters
  | d -> Alcotest.failf "expected one registered table, got %d" (List.length d));
  check_valid "registry json" (Stats.to_json ())

(* Pre-resolved counter handles (Stats.counter/tick/bump/value) must be
   observationally identical to the string API — same values read back
   either way, and byte-identical registry JSON from an equivalent
   program. *)
let counter_handles () =
  Stats.reset_registry ();
  let a = Stats.create ~name:"test/A" () in
  let ca = Stats.counter a "hits" in
  Stats.tick ca;
  Stats.incr a "hits";
  Stats.bump ca 3;
  Tutil.check_int "string API sees handle increments" 5 (Stats.get a "hits");
  Tutil.check_int "handle sees string increments" 5 (Stats.value ca);
  (* A handle resolved but never ticked stays out of the dump, exactly
     like a name never touched through the string API. *)
  let _idle = Stats.counter a "idle" in
  (match Stats.dump () with
  | [ ("test/A", [ ("hits", 5) ]) ] -> ()
  | d -> Alcotest.failf "unexpected dump shape (%d tables)" (List.length d));
  (* reset zeroes in place, so handles resolved before it stay valid *)
  Stats.reset a;
  Tutil.check_int "reset zeroes through handle" 0 (Stats.value ca);
  Stats.tick ca;
  Tutil.check_int "handle live after reset" 1 (Stats.value ca)

let counter_handle_dump_identical () =
  let dump_of f =
    Stats.reset_registry ();
    let t = Stats.create ~name:"test/H" () in
    f t;
    Stats.to_json ()
  in
  let via_strings =
    dump_of (fun t ->
        Stats.incr t "x";
        Stats.add t "y" 5;
        Stats.incr t "x";
        (* add 0 still materializes the counter in the dump *)
        Stats.add t "zero" 0)
  in
  let via_handles =
    dump_of (fun t ->
        let x = Stats.counter t "x" and y = Stats.counter t "y" in
        let z = Stats.counter t "zero" in
        Stats.tick x;
        Stats.bump y 5;
        Stats.tick x;
        Stats.bump z 0)
  in
  Tutil.check_str "registry JSON byte-identical" via_strings via_handles

(* Per-call counter deltas of one null RPC over the layered stack
   (SELECT-CHANNEL-FRAGMENT-VIP-ETH), after a warm-up call has opened
   every session and resolved ARP.  This pins the packet/crossing
   counts behind the paper's section 4.2 analysis: a null call is one
   request frame and one reply frame, each crossing every layer once. *)
let null_rpc_layer_counts () =
  Stats.reset_registry ();
  let w = World.create () in
  let e = Stacks.lrpc w in
  let call () =
    ignore
      (Tutil.ok_exn "null call"
         (Tutil.run_in w (fun () -> e.Stacks.call ~command:Stacks.cmd_null Msg.empty)))
  in
  call ();
  (* warmed up: sessions open, ARP resolved *)
  let table name =
    match Stats.find name with
    | Some t -> t
    | None -> Alcotest.failf "no registered stats table %s" name
  in
  let watched =
    [
      ("h0.0/CHANNEL", "req-tx", 1);
      ("h0.0/CHANNEL", "reply-rx", 1);
      ("h0.0/CHANNEL", "pushes", 0); (* Select calls Channel.call directly *)
      ("h0.0/CHANNEL", "demuxes", 1);
      ("h0.0/CHANNEL", "crossings", 1);
      ("h0.0/FRAGMENT", "pushes", 1);
      ("h0.0/FRAGMENT", "demuxes", 1);
      ("h0.0/FRAGMENT", "crossings", 2);
      ("h0.0/FRAGMENT", "tx-frag", 1);
      ("h0.0/FRAGMENT", "rx-msg", 1);
      ("h0.0/VIP", "pushes", 1);
      ("h0.0/VIP", "demuxes", 1);
      ("h0.0/VIP", "crossings", 2);
      ("h0.0/ETH", "pushes", 1);
      ("h0.0/ETH", "rx", 1);
      ("h0.1/SELECT", "demuxes", 1);
      ("h0.1/SELECT", "handled", 1);
      ("h0.1/CHANNEL", "req-rx", 1);
      ("h0.1/CHANNEL", "reply-tx", 1);
      ("h0.1/CHANNEL", "pushes", 1); (* the reply, pushed by SELECT *)
      ("h0.1/CHANNEL", "demuxes", 1);
      ("h0.1/FRAGMENT", "pushes", 1);
      ("h0.1/FRAGMENT", "demuxes", 1);
      ("h0.1/ETH", "pushes", 1);
      ("h0.1/ETH", "rx", 1);
    ]
  in
  let snapshot () =
    List.map (fun (tbl, key, _) -> Stats.get (table tbl) key) watched
  in
  let before = snapshot () in
  let frames_before = (Wire.stats w.World.wire).Wire.frames in
  call ();
  let frames_after = (Wire.stats w.World.wire).Wire.frames in
  Tutil.check_int "a null RPC is exactly two frames" 2
    (frames_after - frames_before);
  List.iter2
    (fun (tbl, key, expect) b ->
      Tutil.check_int
        (Printf.sprintf "%s %s per null call" tbl key)
        expect
        (Stats.get (table tbl) key - b))
    watched before;
  (* The full dump must be valid JSON and mention the crossing counters. *)
  let j = Stats.to_json () in
  check_valid "stats dump" j;
  Alcotest.(check bool) "dump carries crossings" true
    (let needle = {|"crossings"|} in
     let nl = String.length needle in
     let rec search i =
       if i + nl > String.length j then false
       else if String.sub j i nl = needle then true
       else search (i + 1)
     in
     search 0)

let () =
  Alcotest.run "observe"
    [
      ( "json",
        [
          Alcotest.test_case "serializer" `Quick json_serializer;
          Alcotest.test_case "registry dump and find" `Quick
            registry_dump_and_find;
        ] );
      ( "counter handles",
        [
          Alcotest.test_case "handle and string API agree" `Quick
            counter_handles;
          Alcotest.test_case "dump byte-identical via handles" `Quick
            counter_handle_dump_identical;
        ] );
      ( "layer accounting",
        [
          Alcotest.test_case "null RPC over L.RPC" `Quick
            null_rpc_layer_counts;
        ] );
    ]
