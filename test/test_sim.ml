open Xkernel

let time_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.after sim 0.3 (fun () -> log := 3 :: !log));
  ignore (Sim.after sim 0.1 (fun () -> log := 1 :: !log));
  ignore (Sim.after sim 0.2 (fun () -> log := 2 :: !log));
  Sim.run sim;
  Alcotest.(check (list int)) "fires in time order" [ 1; 2; 3 ] (List.rev !log)

let fifo_at_same_time () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.after sim 0.1 (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO among equals" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let clock_advances () =
  let sim = Sim.create () in
  let seen = ref [] in
  Sim.spawn sim (fun () ->
      seen := Sim.now sim :: !seen;
      Sim.delay sim 1.5;
      seen := Sim.now sim :: !seen;
      Sim.delay sim 0.5;
      seen := Sim.now sim :: !seen);
  Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "timestamps" [ 0.; 1.5; 2.0 ] (List.rev !seen)

let cancel_timer () =
  let sim = Sim.create () in
  let fired = ref false in
  let ev = Sim.after sim 1.0 (fun () -> fired := true) in
  Alcotest.(check bool) "cancel succeeds" true (Sim.cancel ev);
  Alcotest.(check bool) "second cancel fails" false (Sim.cancel ev);
  Sim.run sim;
  Alcotest.(check bool) "did not fire" false !fired

let run_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  ignore (Sim.after sim 1.0 (fun () -> incr fired));
  ignore (Sim.after sim 3.0 (fun () -> incr fired));
  Sim.run ~until:2.0 sim;
  Tutil.check_int "only first fired" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock at bound" 2.0 (Sim.now sim);
  Sim.run sim;
  Tutil.check_int "remaining fires" 2 !fired

let not_in_fiber () =
  let sim = Sim.create () in
  Alcotest.check_raises "delay outside fiber" Sim.Not_in_fiber (fun () ->
      Sim.delay sim 1.0)

let stall_guard () =
  let sim = Sim.create ~max_events:100 () in
  let rec forever () =
    ignore (Sim.after sim 0.001 forever)
  in
  forever ();
  Alcotest.(check bool) "raises Stalled" true
    (match Sim.run sim with
    | () -> false
    | exception Sim.Stalled _ -> true)

let semaphore_mutex () =
  let sim = Sim.create () in
  let sem = Sim.Semaphore.create sim 1 in
  let log = ref [] in
  let worker i =
    Sim.spawn sim (fun () ->
        Sim.Semaphore.p sem;
        log := (i, Sim.now sim) :: !log;
        Sim.delay sim 1.0;
        Sim.Semaphore.v sem)
  in
  worker 1;
  worker 2;
  worker 3;
  Sim.run sim;
  let order = List.rev_map fst !log in
  Alcotest.(check (list int)) "FIFO entry order" [ 1; 2; 3 ] order;
  let times = List.rev_map snd !log in
  Alcotest.(check (list (float 1e-9))) "serialized" [ 0.; 1.; 2. ] times

let semaphore_counts () =
  let sim = Sim.create () in
  let sem = Sim.Semaphore.create sim 2 in
  Tutil.check_int "initial" 2 (Sim.Semaphore.count sem);
  Sim.spawn sim (fun () ->
      Sim.Semaphore.p sem;
      Sim.Semaphore.p sem;
      Tutil.check_int "drained" 0 (Sim.Semaphore.count sem);
      Sim.Semaphore.v sem;
      Tutil.check_int "restored" 1 (Sim.Semaphore.count sem));
  Sim.run sim

let semaphore_waiters () =
  let sim = Sim.create () in
  let sem = Sim.Semaphore.create sim 0 in
  let got = ref false in
  Sim.spawn sim (fun () ->
      Sim.Semaphore.p sem;
      got := true);
  ignore
    (Sim.after sim 1.0 (fun () ->
         Tutil.check_int "one waiter" 1 (Sim.Semaphore.waiters sem);
         Sim.Semaphore.v sem));
  Sim.run sim;
  Alcotest.(check bool) "released" true !got

let ivar_basic () =
  let sim = Sim.create () in
  let iv = Sim.Ivar.create sim in
  let got = ref 0 in
  Sim.spawn sim (fun () -> got := Sim.Ivar.read iv);
  ignore (Sim.after sim 2.0 (fun () -> Sim.Ivar.fill iv 42));
  Sim.run sim;
  Tutil.check_int "read blocks then returns" 42 !got

let ivar_double_fill () =
  let sim = Sim.create () in
  let iv = Sim.Ivar.create sim in
  Sim.Ivar.fill iv 1;
  Alcotest.check_raises "second fill" (Invalid_argument "Ivar.fill: already filled")
    (fun () -> Sim.Ivar.fill iv 2)

let ivar_timeout_expires () =
  let sim = Sim.create () in
  let iv : int Sim.Ivar.ivar = Sim.Ivar.create sim in
  let got = ref (Some 0) in
  Sim.spawn sim (fun () -> got := Sim.Ivar.read_timeout iv 1.0);
  Sim.run sim;
  Alcotest.(check bool) "timed out" true (!got = None);
  Alcotest.(check (float 1e-9)) "waited exactly" 1.0 (Sim.now sim)

let ivar_timeout_wins () =
  let sim = Sim.create () in
  let iv = Sim.Ivar.create sim in
  let got = ref None in
  Sim.spawn sim (fun () -> got := Sim.Ivar.read_timeout iv 1.0);
  ignore (Sim.after sim 0.5 (fun () -> Sim.Ivar.fill iv 7));
  Sim.run sim;
  Alcotest.(check bool) "value before timeout" true (!got = Some 7)

let ivar_multiple_readers () =
  let sim = Sim.create () in
  let iv = Sim.Ivar.create sim in
  let sum = ref 0 in
  for _ = 1 to 3 do
    Sim.spawn sim (fun () -> sum := !sum + Sim.Ivar.read iv)
  done;
  ignore (Sim.after sim 1.0 (fun () -> Sim.Ivar.fill iv 5));
  Sim.run sim;
  Tutil.check_int "all readers woken" 15 !sum

let event_module_cancel () =
  let sim = Sim.create () in
  let host =
    Host.create sim ~name:"h" ~ip:(Addr.Ip.v 10 0 0 1) ~eth:(Addr.Eth.v 1) ()
  in
  let fired = ref false in
  Sim.spawn sim (fun () ->
      let ev = Event.schedule host 1.0 (fun () -> fired := true) in
      Alcotest.(check bool) "cancel ok" true (Event.cancel host ev);
      Alcotest.(check bool) "marks done" true (Event.cancelled_or_fired ev));
  Sim.run sim;
  Alcotest.(check bool) "never fired" false !fired

(* --- heap + immediate-queue event structure vs a (time, seq) model ----- *)

(* The event queue (binary min-heap plus same-instant FIFO ring) must
   fire events in exactly the order of a stable sort by time — FIFO
   among equals, i.e. keyed (time, seq) with seq assigned at schedule
   time. *)
let qcheck_heap_order =
  Tutil.qtest ~count:300 "firing order is a stable sort by time"
    QCheck.(list_of_size (Gen.int_range 0 80) (int_bound 9))
    (fun times ->
      let sim = Sim.create () in
      let log = ref [] in
      List.iteri
        (fun i t ->
          ignore
            (Sim.after sim (float_of_int t /. 10.) (fun () -> log := i :: !log)))
        times;
      Sim.run sim;
      let model =
        List.mapi (fun i t -> (t, i)) times
        |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
        |> List.map snd
      in
      List.rev !log = model)

(* Events scheduled from inside callbacks — including at the current
   instant, the immediate-queue fast path — against a list-based
   reference scheduler that takes the (time, seq) minimum each step. *)
let qcheck_nested_order =
  Tutil.qtest ~count:300 "nested scheduling matches reference scheduler"
    QCheck.(
      list_of_size (Gen.int_range 1 25)
        (pair (int_bound 5) (list_of_size (Gen.int_range 0 3) (int_bound 3))))
    (fun plan ->
      let sim = Sim.create () in
      let log = ref [] in
      List.iteri
        (fun i (t, offs) ->
          ignore
            (Sim.after sim (float_of_int t /. 10.) (fun () ->
                 log := i :: !log;
                 List.iteri
                   (fun j off ->
                     ignore
                       (Sim.after sim (float_of_int off /. 10.) (fun () ->
                            log := ((i + 1) * 1000) + j :: !log)))
                   offs)))
        plan;
      Sim.run sim;
      let seq = ref 0 in
      let pending = ref [] in
      let add time id kids =
        Stdlib.incr seq;
        pending := (time, !seq, id, kids) :: !pending
      in
      List.iteri (fun i (t, offs) -> add (float_of_int t /. 10.) i offs) plan;
      let order = ref [] in
      while !pending <> [] do
        let ((time, _, id, kids) as best) =
          List.fold_left
            (fun ((bt, bs, _, _) as b) ((t, s, _, _) as e) ->
              if t < bt || (t = bt && s < bs) then e else b)
            (List.hd !pending) (List.tl !pending)
        in
        pending := List.filter (fun e -> e != best) !pending;
        order := id :: !order;
        List.iteri
          (fun j off ->
            add (time +. (float_of_int off /. 10.)) (((id + 1) * 1000) + j) [])
          kids
      done;
      !log = !order)

(* Mass cancellation: [pending] counts only live events, the lazy-
   deletion purge must not disturb firing order, and [processed] counts
   executed events. *)
let cancel_purge_pending () =
  let sim = Sim.create () in
  let fired = ref [] in
  let evs =
    List.init 300 (fun i ->
        (i, Sim.after sim (1.0 +. float_of_int i) (fun () -> fired := i :: !fired)))
  in
  Tutil.check_int "all live before cancels" 300 (Sim.pending sim);
  let live =
    List.filter_map
      (fun (i, ev) ->
        if i mod 4 = 0 then Some i
        else begin
          Alcotest.(check bool) "cancel ok" true (Sim.cancel ev);
          None
        end)
      evs
  in
  Tutil.check_int "pending counts only live events" (List.length live)
    (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check (list int)) "live events fire in order" live (List.rev !fired);
  Tutil.check_int "processed counts executions" (List.length live)
    (Sim.processed sim)

let cancel_after_fire () =
  let sim = Sim.create () in
  let ev = Sim.after sim 0.5 ignore in
  Sim.run sim;
  Alcotest.(check bool) "cancel after fire fails" false (Sim.cancel ev);
  Tutil.check_int "nothing pending" 0 (Sim.pending sim)

let yield_interleaves () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn sim (fun () ->
      log := "a1" :: !log;
      Sim.yield sim;
      log := "a2" :: !log);
  Sim.spawn sim (fun () -> log := "b" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "yield lets b run" [ "a1"; "b"; "a2" ]
    (List.rev !log)

let () =
  Alcotest.run "sim"
    [
      ( "scheduler",
        [
          Alcotest.test_case "time ordering" `Quick time_ordering;
          Alcotest.test_case "FIFO at same instant" `Quick fifo_at_same_time;
          Alcotest.test_case "clock advances with delay" `Quick clock_advances;
          Alcotest.test_case "timer cancellation" `Quick cancel_timer;
          Alcotest.test_case "run ~until" `Quick run_until;
          Alcotest.test_case "blocking outside fiber" `Quick not_in_fiber;
          Alcotest.test_case "runaway guard" `Quick stall_guard;
          Alcotest.test_case "yield" `Quick yield_interleaves;
        ] );
      ( "event queue",
        [
          qcheck_heap_order;
          qcheck_nested_order;
          Alcotest.test_case "cancel purge and pending" `Quick
            cancel_purge_pending;
          Alcotest.test_case "cancel after fire" `Quick cancel_after_fire;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "mutual exclusion + FIFO" `Quick semaphore_mutex;
          Alcotest.test_case "counting" `Quick semaphore_counts;
          Alcotest.test_case "waiter accounting" `Quick semaphore_waiters;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "read blocks until fill" `Quick ivar_basic;
          Alcotest.test_case "double fill rejected" `Quick ivar_double_fill;
          Alcotest.test_case "timeout expires" `Quick ivar_timeout_expires;
          Alcotest.test_case "fill beats timeout" `Quick ivar_timeout_wins;
          Alcotest.test_case "multiple readers" `Quick ivar_multiple_readers;
          Alcotest.test_case "event library cancel" `Quick event_module_cancel;
        ] );
    ]
