(* The INC in-network computation: reply caching at the switch (the
   server's wire and CPU stay cold on a hit), deadline shedding in the
   fabric, TTL and boot-id hygiene, and the shard-map generation guard
   that keeps cached replies from outliving a rebalance. *)

open Xkernel
module World = Netproto.World
module Fragment = Rpc.Fragment
module Channel = Rpc.Channel
module Select = Rpc.Select
module Stacks = Rpc.Stacks
module Inc = Rpc.Inc
module Shard_map = Rpc.Shard_map

(* One channel, so the warm-up call in [setup] leaves the RTT estimator
   adapted to the two-hop path and later calls never retransmit —
   counter assertions below can then be exact. *)
let lnode (n : World.node) =
  let f =
    Fragment.create ~host:n.World.host
      ~lower:(Netproto.Vip.proto n.World.vip) ()
  in
  let ch =
    Channel.create ~host:n.World.host ~lower:(Fragment.proto f) ~n_channels:1
      ()
  in
  Select.create ~host:n.World.host ~channel:ch ()

(* One server, one client, echo registered, INC caching [cmd_echo],
   ARP/VIP/RTT warmed by one call. *)
let setup ?ttl ?capacity () =
  let sw = World.create_switched ~clients:2 ~servers:1 () in
  let w = sw.World.sw.World.fo in
  let server = World.node w 0 and client = World.node w 1 in
  let sel_s = lnode server and sel_c = lnode client in
  Select.register sel_s ~command:Stacks.cmd_echo (fun req -> Ok req);
  Select.serve sel_s;
  let inc =
    Inc.install
      ~host:sw.World.sw_ports.(0).World.pt_host
      ~ip:sw.World.sw_ip
      ~cacheable:[ Stacks.cmd_echo ] ?ttl ?capacity ()
  in
  let cl =
    Tutil.run_in w (fun () ->
        let cl = Select.connect sel_c ~server:server.World.host.Host.ip in
        ignore
          (Tutil.ok_exn "warm"
             (Select.call cl ~command:Stacks.cmd_echo (Msg.of_string "warm")));
        cl)
  in
  (sw, w, server, sel_s, cl, inc)

let hit_spares_the_server () =
  let sw, w, server, _, cl, inc = setup () in
  let s0 = World.port_wire sw ~label:"s0" in
  let h0 = Inc.hits inc and m0 = Inc.misses inc and st0 = Inc.stored inc in
  let r1, frames_between, cpu_between, r2 =
    Tutil.run_in w (fun () ->
        let r1 = Select.call cl ~command:Stacks.cmd_echo (Msg.of_string "q") in
        let frames = (Wire.stats s0).Wire.frames in
        let cpu = Machine.cpu_seconds server.World.host.Host.mach in
        let r2 = Select.call cl ~command:Stacks.cmd_echo (Msg.of_string "q") in
        ( r1,
          (Wire.stats s0).Wire.frames - frames,
          Machine.cpu_seconds server.World.host.Host.mach -. cpu,
          r2 ))
  in
  Tutil.check_str "first call executed" "q"
    (Msg.to_string (Tutil.ok_exn "miss" r1));
  Tutil.check_str "second call answered from the switch" "q"
    (Msg.to_string (Tutil.ok_exn "hit" r2));
  Tutil.check_int "one miss" 1 (Inc.misses inc - m0);
  Tutil.check_int "one hit" 1 (Inc.hits inc - h0);
  Tutil.check_int "reply stored once" 1 (Inc.stored inc - st0);
  Tutil.check_int "server wire idle on the hit" 0 frames_between;
  Alcotest.(check (float 0.)) "server CPU idle on the hit" 0. cpu_between

let null_not_cached () =
  (* cmd_null is not registered as cacheable: both calls reach the
     server, nothing is stored. *)
  let sw = World.create_switched ~clients:1 ~servers:1 () in
  let w = sw.World.sw.World.fo in
  let server = World.node w 0 and client = World.node w 1 in
  let sel_s = lnode server and sel_c = lnode client in
  Select.register sel_s ~command:Stacks.cmd_null (fun _ -> Ok Msg.empty);
  Select.serve sel_s;
  let inc =
    Inc.install
      ~host:sw.World.sw_ports.(0).World.pt_host
      ~ip:sw.World.sw_ip ~cacheable:[ Stacks.cmd_echo ] ()
  in
  Tutil.run_in w (fun () ->
      let cl = Select.connect sel_c ~server:server.World.host.Host.ip in
      ignore
        (Tutil.ok_exn "null 1"
           (Select.call cl ~command:Stacks.cmd_null Msg.empty));
      ignore
        (Tutil.ok_exn "null 2"
           (Select.call cl ~command:Stacks.cmd_null Msg.empty)));
  Tutil.check_int "no hits" 0 (Inc.hits inc);
  Tutil.check_int "nothing stored" 0 (Inc.stored inc);
  Alcotest.(check bool) "requests forwarded" true (Inc.forwarded inc >= 2)

let ttl_expires_entries () =
  let _, w, _, _, cl, inc = setup ~ttl:0.05 () in
  let h0 = Inc.hits inc in
  Tutil.run_in w (fun () ->
      ignore
        (Tutil.ok_exn "miss"
           (Select.call cl ~command:Stacks.cmd_echo (Msg.of_string "t")));
      Sim.delay w.World.sim 0.2;
      ignore
        (Tutil.ok_exn "expired -> miss again"
           (Select.call cl ~command:Stacks.cmd_echo (Msg.of_string "t"))));
  Tutil.check_int "no hits across the TTL" 0 (Inc.hits inc - h0)

let deadline_shed_at_the_switch () =
  (* A request stamped with an already-spent deadline is consumed by the
     fabric: the server never sees it — not even to drop it. *)
  let _, w, _, sel_s, cl, inc = setup () in
  let result =
    Tutil.run_in w (fun () ->
        Select.call cl
          ~expires:(Sim.now w.World.sim)
          ~command:Stacks.cmd_echo (Msg.of_string "late"))
  in
  Alcotest.(check bool) "the late call failed" true (Result.is_error result);
  Alcotest.(check bool) "shed in the fabric" true (Inc.sheds inc >= 1);
  Tutil.check_int "the server never saw it" 0
    (Tutil.stat (Select.proto sel_s) "deadline-expired-server")

let reboot_flushes_cache () =
  (* Replies recorded under a dead incarnation must go the moment the
     switch observes the successor's boot id in transit. *)
  let _, w, server, _, cl, inc = setup () in
  Tutil.run_in w (fun () ->
      ignore
        (Tutil.ok_exn "before"
           (Select.call cl ~command:Stacks.cmd_echo (Msg.of_string "r"))));
  Host.reboot server.World.host;
  let h0 = Inc.hits inc in
  Tutil.run_in w (fun () ->
      (* First call after the crash reaches the server (fresh body, so
         no cache involvement); its reply carries the new boot id, which
         flushes everything recorded under boot 1. *)
      ignore (Select.call cl ~command:Stacks.cmd_echo (Msg.of_string "fresh"));
      ignore (Select.call cl ~command:Stacks.cmd_echo (Msg.of_string "r")));
  Alcotest.(check bool) "old-boot entries invalidated" true
    (Inc.invalidated inc >= 1);
  Tutil.check_int "the pre-crash reply was not served" 0 (Inc.hits inc - h0)

(* The generation guard, end to end: a sharded switched stack with INC
   caching, a mid-run rebalance moving the hot shard, and a reply whose
   content names the executing server — so serving a stale cached reply
   would be visible, not just wrong in principle. *)
let cmd_whoami = 50

let rebalance_under_inc () =
  let sw = World.create_switched ~clients:2 ~servers:2 () in
  let w = sw.World.sw.World.fo in
  let map = Shard_map.create ~seed:7 ~shards:8 ~replicas:2 in
  let stack, inc_opt =
    (* The first call over the switched star pays the VIP gateway
       fallback (~0.3 s), longer than the stock 0.25 s attempt timeout. *)
    Stacks.lrpc_switched ~n_channels:1 ~policy:Rpc.Select_replica.Hash
      ~attempt_timeout:2.0 ~deadline:8.0 ~shard_map:map
      ~inc_cacheable:[ cmd_whoami ] sw
  in
  let inc = Option.get inc_opt in
  Array.iteri
    (fun i sel ->
      Select.register sel ~command:cmd_whoami (fun req ->
          Ok (Msg.push req (Printf.sprintf "s%d:" i))))
    stack.Stacks.fos_selects;
  let key = 3 in
  let shard = Shard_map.shard_of_key map key in
  let owner_a = Shard_map.owner map ~shard in
  let owner_b = 1 - owner_a in
  let map2 = Shard_map.move map ~shard ~to_:owner_b in
  let coord = Option.get stack.Stacks.fos_coord in
  let call () =
    stack.Stacks.fos_call 0 ~key ~command:cmd_whoami (Msg.of_string "x")
  in
  let r1, r2, r3, r4 =
    Tutil.run_in w (fun () ->
        (* Let the initial MAP pushes land before driving load. *)
        Sim.delay w.World.sim 0.05;
        let r1 = call () in
        let r2 = call () in
        Shard_map.Coordinator.install coord map2;
        Sim.delay w.World.sim 0.1;
        let r3 = call () in
        let r4 = call () in
        (r1, r2, r3, r4))
  in
  (* Zero lost calls across the rebalance... *)
  let body what r = Msg.to_string (Tutil.ok_exn what r) in
  let a = Printf.sprintf "s%d:x" owner_a
  and b = Printf.sprintf "s%d:x" owner_b in
  Tutil.check_str "round 1 executed by the old owner" a (body "r1" r1);
  Tutil.check_str "round 1 hit repeats the old owner" a (body "r2" r2);
  (* ...and no reply served across the generation: after the move the
     same request names the new owner, from execution and from cache. *)
  Tutil.check_str "round 2 executed by the new owner" b (body "r3" r3);
  Tutil.check_str "round 2 hit repeats the new owner" b (body "r4" r4);
  Alcotest.(check bool) "cache hit in each generation" true
    (Inc.hits inc >= 2);
  Alcotest.(check bool) "old generation invalidated" true
    (Inc.invalidated inc >= 1);
  let _, v = Inc.map_generation inc in
  Tutil.check_int "switch observed the new generation" 2 v

let () =
  Alcotest.run "inc"
    [
      ( "cache",
        [
          Alcotest.test_case "hit spares the server" `Quick
            hit_spares_the_server;
          Alcotest.test_case "null not cached" `Quick null_not_cached;
          Alcotest.test_case "TTL expires entries" `Quick ttl_expires_entries;
        ] );
      ( "safety",
        [
          Alcotest.test_case "deadline shed at the switch" `Quick
            deadline_shed_at_the_switch;
          Alcotest.test_case "reboot flushes the cache" `Quick
            reboot_flushes_cache;
          Alcotest.test_case "rebalance under INC" `Quick rebalance_under_inc;
        ] );
    ]
