(* The workload subsystem: Histogram precision and merging, the
   fit_slope degenerate guard, and closed-/open-loop load generation
   over a fan-in world. *)
open Xkernel
module World = Netproto.World
module Load = Rpc.Load
module Stacks = Rpc.Stacks

(* --- Histogram ----------------------------------------------------------- *)

(* Below sub_count (256 at the default 8 bits) every value has its own
   sub-bucket, so small recordings are exact. *)
let hist_exact_small () =
  let h = Histogram.create () in
  for v = 1 to 100 do
    Histogram.record h v
  done;
  Tutil.check_int "count" 100 (Histogram.count h);
  Tutil.check_int "min" 1 (Histogram.min_value h);
  Tutil.check_int "max" 100 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Histogram.mean h);
  Tutil.check_int "p50" 50 (Histogram.percentile h 50.);
  Tutil.check_int "p90" 90 (Histogram.percentile h 90.);
  Tutil.check_int "p100" 100 (Histogram.percentile h 100.);
  Tutil.check_int "p0+" 1 (Histogram.percentile h 0.5)

let hist_empty_and_errors () =
  let h = Histogram.create () in
  Tutil.check_int "empty count" 0 (Histogram.count h);
  Tutil.check_int "empty percentile" 0 (Histogram.percentile h 99.);
  Tutil.check_int "empty min" 0 (Histogram.min_value h);
  Alcotest.(check (float 0.)) "empty mean" 0. (Histogram.mean h);
  Alcotest.check_raises "negative"
    (Invalid_argument "Histogram.record: negative value") (fun () ->
      Histogram.record h (-1))

let hist_clamps () =
  let h = Histogram.create ~max_value:1000 () in
  Histogram.record h 5000;
  Histogram.record h 7;
  Tutil.check_int "count includes clamped" 2 (Histogram.count h);
  Tutil.check_int "clamped" 1 (Histogram.clamped h);
  Alcotest.(check bool) "max near cap" true (Histogram.max_value h <= 1023)

(* The HDR error bound: a single recorded value comes back from
   [percentile _ 100.] no smaller than itself and within the
   sub-bucket width (relative error <= 2^-(bits-1)). *)
let hist_precision =
  Tutil.qtest ~count:500 "histogram relative error bound"
    QCheck.(int_range 0 100_000_000)
    (fun v ->
      let h = Histogram.create () in
      Histogram.record h v;
      let got = Histogram.percentile h 100. in
      got >= v && float_of_int (got - v) <= (float_of_int v /. 128.) +. 1.)

let hist_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  let all = Histogram.create () in
  List.iter
    (fun v ->
      Histogram.record a v;
      Histogram.record all v)
    [ 3; 14; 159; 2653 ];
  List.iter
    (fun v ->
      Histogram.record b v;
      Histogram.record all v)
    [ 1; 1_000_000; 58 ];
  Histogram.merge_into ~src:b ~dst:a;
  Tutil.check_int "merged count" 7 (Histogram.count a);
  Tutil.check_int "src unchanged" 3 (Histogram.count b);
  Alcotest.(check bool) "merge == recording the union" true
    (Histogram.to_json a = Histogram.to_json all)

let hist_merge_mismatch () =
  let a = Histogram.create ~max_value:1000 () in
  let b = Histogram.create ~max_value:2000 () in
  Alcotest.(check bool) "mismatched merge raises" true
    (match Histogram.merge_into ~src:a ~dst:b with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- Measure.fit_slope degenerate series --------------------------------- *)

let fit_slope_degenerate () =
  Alcotest.(check (float 0.)) "empty" 0. (Rpc.Measure.fit_slope []);
  Alcotest.(check (float 0.)) "single point" 0.
    (Rpc.Measure.fit_slope [ (1024, 0.001) ]);
  Alcotest.(check (float 0.)) "zero x-variance" 0.
    (Rpc.Measure.fit_slope [ (2048, 0.001); (2048, 0.002); (2048, 0.004) ]);
  (* sanity: a real series still fits; 1 msec per extra KB *)
  Alcotest.(check (float 1e-9)) "normal slope" 1.
    (Rpc.Measure.fit_slope [ (1024, 0.001); (2048, 0.002); (3072, 0.003) ])

(* --- closed loop over a fan-in world ------------------------------------- *)

let closed_fanin () =
  let f = World.create_fanin ~clients:8 () in
  let fan = Stacks.mrpc_fanin f in
  let r = Load.run_closed ~fibers:16 ~calls:10 f fan in
  Tutil.check_int "every call completed" 160 r.Load.completed;
  Tutil.check_int "no failures" 0 r.Load.failed;
  Tutil.check_int "no shedding (closed loop)" 0 r.Load.shed;
  Tutil.check_int "one histogram per client host" 8
    (Array.length r.Load.per_client);
  Tutil.check_int "global count = sum of per-client" 160
    (Array.fold_left (fun n h -> n + Histogram.count h) 0 r.Load.per_client);
  (* re-merging the per-client histograms reproduces the global one *)
  let again = Load.new_hist () in
  Array.iter (fun h -> Histogram.merge_into ~src:h ~dst:again) r.Load.per_client;
  Alcotest.(check bool) "per-client merge == global" true
    (Histogram.to_json again = Histogram.to_json r.Load.hist);
  Alcotest.(check bool) "positive throughput" true (r.Load.achieved_rps > 0.);
  Alcotest.(check bool) "some wire traffic" true (r.Load.wire_util > 0.);
  (* the run registered its gauges *)
  match Stats.find ("load/" ^ fan.Stacks.fan_name) with
  | None -> Alcotest.fail "load stats table not registered"
  | Some t -> Tutil.check_int "completed gauge" 160 (Stats.get t "completed")

(* --- open loop: shed behaviour around the knee --------------------------- *)

let open_below_knee () =
  let f = World.create_fanin ~clients:4 () in
  let r = Load.run_open ~rate:200. ~arrivals:80 f (Stacks.mrpc_fanin f) in
  Tutil.check_int "nothing shed below the knee" 0 r.Load.shed;
  Tutil.check_int "all arrivals completed" 80 r.Load.completed;
  Tutil.check_int "no failures" 0 r.Load.failed;
  Alcotest.(check bool) "achieved tracks offered (within 25%)" true
    (Float.abs (r.Load.achieved_rps -. r.Load.offered_rps)
    < 0.25 *. r.Load.offered_rps)

let open_past_knee () =
  let f = World.create_fanin ~clients:4 () in
  (* ~1650 calls/s is M.RPC's ceiling here; offer 20x that into a
     4-call window, so most arrivals find it full *)
  let r =
    Load.run_open ~rate:40_000. ~arrivals:120 ~window:4 f
      (Stacks.mrpc_fanin f)
  in
  Alcotest.(check bool) "overload sheds" true (r.Load.shed > 0);
  Tutil.check_int "shed + completed = arrivals" 120
    (r.Load.shed + r.Load.completed + r.Load.failed);
  Alcotest.(check bool) "window respected" true (r.Load.pending_max <= 4)

let open_uniform_deterministic_arrivals () =
  let f = World.create_fanin ~clients:2 () in
  let r =
    Load.run_open ~arrival:Load.Uniform ~rate:500. ~arrivals:50 f
      (Stacks.lrpc_fanin f)
  in
  Tutil.check_int "all arrivals completed" 50 r.Load.completed;
  Tutil.check_int "nothing shed" 0 r.Load.shed;
  Alcotest.(check string) "mode label" "open-uniform" r.Load.r_mode

(* --- lrpc-arto: no premature-retransmission storm under rising load ------ *)

(* The PR-3 defect: with the adaptive RTO, srtt learned from idle
   warm-up calls fires prematurely once open-loop queueing delay grows
   past srtt + 4*rttvar, and Karn's rule then starves the estimator —
   a retransmission storm at rates the fixed timeout rides through.
   The load-sensitive floor (Channel [rto_load_floor]) must keep
   spurious retransmissions to a trickle; with the floor disabled the
   same run still storms, which is what makes this a regression test
   of the floor rather than of the workload. *)
(* --- chaos under load: liveness ------------------------------------------ *)

let crash_under_load_no_hung_fibers () =
  (* Crashing the single fan-in server mid-run must not strand any
     fiber: every dispatched call ends in a reply, a Timeout or a
     Rebooted, so run_open's accounting balances and the run drains.
     (A hung fiber would leave pending calls unaccounted for.) *)
  let f = World.create_fanin ~clients:4 () in
  let w = f.World.fan in
  Chaos.apply ~wire:w.World.wire ~devices:(World.devices w)
    [ { Chaos.from_t = 0.15; until_t = 0.16; spec = Chaos.Crash 0 } ];
  let r = Load.run_open ~rate:800. ~arrivals:200 f (Stacks.lrpc_fanin f) in
  Tutil.check_int "every arrival accounted for" 200
    (r.Load.completed + r.Load.failed + r.Load.shed);
  Alcotest.(check bool) "the crash was observed" true (r.Load.failed > 0);
  Alcotest.(check bool) "calls completed after the restart" true
    (r.Load.completed > r.Load.failed)

let arto_storm ~rto_load_floor =
  Stats.reset_registry ();
  let f = World.create_fanin ~clients:4 () in
  let fan = Stacks.lrpc_fanin ~adaptive:true ~rto_load_floor f in
  let r = Load.run_open ~rate:1200. ~arrivals:200 f fan in
  let retransmits =
    List.fold_left
      (fun acc i ->
        match Stats.find (Printf.sprintf "h0.%d/CHANNEL" i) with
        | Some st -> acc + Stats.get st "retransmit"
        | None -> acc)
      0 [ 1; 2; 3; 4 ]
  in
  (r, retransmits)

let arto_no_storm () =
  let r, retransmits = arto_storm ~rto_load_floor:true in
  Tutil.check_int "nothing shed" 0 r.Load.shed;
  Tutil.check_int "no failed calls" 0 r.Load.failed;
  Alcotest.(check bool)
    (Printf.sprintf "retransmissions a trickle (%d of %d)" retransmits
       r.Load.completed)
    true
    (retransmits * 10 <= r.Load.completed)

let arto_storm_without_floor () =
  let r, retransmits = arto_storm ~rto_load_floor:false in
  Alcotest.(check bool)
    (Printf.sprintf "floor off still storms (%d retransmits, %d shed)"
       retransmits r.Load.shed)
    true
    (retransmits * 10 > r.Load.completed || r.Load.shed > 0)

(* --- determinism: identical JSON across two fresh runs ------------------- *)

let sweep_deterministic () =
  let once () =
    let f = World.create_fanin ~clients:4 () in
    let closed = Load.run_closed ~fibers:8 ~calls:10 f (Stacks.lrpc_fanin f) in
    let f2 = World.create_fanin ~clients:4 () in
    let opened =
      Load.run_open ~rate:400. ~arrivals:60 f2 (Stacks.mrpc_fanin f2)
    in
    Json.to_string (Json.Arr [ Load.to_json closed; Load.to_json opened ])
  in
  Alcotest.(check string) "same worlds, same JSON" (once ()) (once ())

let () =
  Alcotest.run "load"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact below sub_count" `Quick hist_exact_small;
          Alcotest.test_case "empty and errors" `Quick hist_empty_and_errors;
          Alcotest.test_case "clamps above max_value" `Quick hist_clamps;
          hist_precision;
          Alcotest.test_case "merge" `Quick hist_merge;
          Alcotest.test_case "merge mismatch" `Quick hist_merge_mismatch;
        ] );
      ( "measure",
        [ Alcotest.test_case "fit_slope degenerate" `Quick fit_slope_degenerate ] );
      ( "closed",
        [ Alcotest.test_case "8-client fan-in" `Quick closed_fanin ] );
      ( "open",
        [
          Alcotest.test_case "below knee: no shedding" `Quick open_below_knee;
          Alcotest.test_case "past knee: sheds" `Quick open_past_knee;
          Alcotest.test_case "uniform arrivals" `Quick
            open_uniform_deterministic_arrivals;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "server crash: no hung fibers" `Quick
            crash_under_load_no_hung_fibers;
        ] );
      ( "arto",
        [
          Alcotest.test_case "no storm with load floor" `Quick arto_no_storm;
          Alcotest.test_case "floor off still storms" `Quick
            arto_storm_without_floor;
        ] );
      ( "determinism",
        [ Alcotest.test_case "identical JSON twice" `Quick sweep_deterministic ] );
    ]
