(* xkrpc — command-line driver for the reproduction.

   Subcommands:
     exp    run one experiment (or all) by id: intro, t1, t2, t3,
            removal, figures, ablation, cpu, all
     graph  print the protocol graph of a named configuration
     rpc    run an ad-hoc RPC workload (configurable size/count/loss)
     trace  run one RPC with packet tracing enabled *)

open Xkernel
module World = Netproto.World
module E = Rpc.Experiments

(* The capacity sweep is parameterized from the command line; every
   other experiment is a closed (unit -> Json.t). *)
type cap_opts = {
  cap_stacks : string list option;
  cap_rates : float list option;
  cap_arrivals : int option;
  cap_clients : int option;
  cap_window : int option;
  cap_conc : int list option;
  cap_servers : int option;
  cap_controls : string list option;
  cap_spike : float option;
  cap_seed : int option;
  cap_shards : int option;
  cap_modes : string list option;
  cap_ks : int list option;
}

let experiments cap =
  [
    ("intro", E.intro);
    ("t1", E.table1);
    ("t2", E.table2);
    ("t3", E.table3);
    ("removal", E.removal);
    ( "figures",
      fun () ->
        E.figures
          ~fig2_extra:(fun ~host ~lower ->
            Psync.proto (Psync.create ~host ~lower ()))
          () );
    ("ablation", E.ablation);
    ("cpu", E.cpu_note);
    ("loss", E.loss_sweep);
    ( "capacity",
      fun () ->
        E.capacity ?stacks:cap.cap_stacks ?rates:cap.cap_rates
          ?arrivals:cap.cap_arrivals ?clients:cap.cap_clients
          ?window:cap.cap_window ?conc:cap.cap_conc () );
    ( "failover",
      fun () ->
        E.failover ?servers:cap.cap_servers ?clients:cap.cap_clients
          ?rate:
            (match cap.cap_rates with
            | Some (r :: _) -> Some r
            | _ -> None)
          ?arrivals:cap.cap_arrivals ?window:cap.cap_window ?seed:cap.cap_seed
          () );
    ( "rebalance",
      fun () ->
        E.rebalance ?servers:cap.cap_servers ?clients:cap.cap_clients
          ?shards:cap.cap_shards
          ?rate:
            (match cap.cap_rates with
            | Some (r :: _) -> Some r
            | _ -> None)
          ?arrivals:cap.cap_arrivals ?window:cap.cap_window ?seed:cap.cap_seed
          ?modes:cap.cap_modes () );
    ( "overload",
      fun () ->
        E.overload ?servers:cap.cap_servers ?clients:cap.cap_clients
          ?rates:cap.cap_rates ?arrivals:cap.cap_arrivals
          ?window:cap.cap_window ?controls:cap.cap_controls
          ?spike:cap.cap_spike () );
    ( "inc",
      fun () ->
        E.inc ?clients:cap.cap_clients
          ?rate:
            (match cap.cap_rates with
            | Some (r :: _) -> Some r
            | _ -> None)
          ?arrivals:cap.cap_arrivals ?window:cap.cap_window ?seed:cap.cap_seed
          ?modes:cap.cap_modes () );
    ( "shardscale",
      fun () ->
        E.shardscale ?ks:cap.cap_ks ?clients:cap.cap_clients
          ?shards:cap.cap_shards
          ?rate:
            (match cap.cap_rates with
            | Some (r :: _) -> Some r
            | _ -> None)
          ?arrivals:cap.cap_arrivals ?window:cap.cap_window ?seed:cap.cap_seed
          ?modes:cap.cap_modes () );
  ]

let write_json path doc =
  match Json.write_file path doc with
  | () -> Printf.printf "wrote JSON results to %s\n" path
  | exception Sys_error e ->
      Printf.eprintf "xkrpc: cannot write JSON: %s\n" e;
      exit 1

let run_exp json cap ids =
  let experiments = experiments cap in
  let ids = if ids = [] || List.mem "all" ids then List.map fst experiments else ids in
  let sections =
    List.map
      (fun id ->
        match List.assoc_opt id experiments with
        | Some f -> (id, f ())
        | None ->
            Printf.eprintf "unknown experiment %S (try: %s, all)\n" id
              (String.concat ", " (List.map fst experiments));
            exit 1)
      ids
  in
  match json with
  | None -> ()
  | Some path ->
      write_json path
        (Json.Obj
           [ ("experiments", Json.Obj sections); ("stats", Stats.json ()) ])

let stack_builders =
  [
    ("mrpc-eth", fun w -> Rpc.Stacks.mrpc w ~lower:Rpc.Stacks.L_eth);
    ("mrpc-ip", fun w -> Rpc.Stacks.mrpc w ~lower:Rpc.Stacks.L_ip);
    ("mrpc-vip", fun w -> Rpc.Stacks.mrpc w ~lower:Rpc.Stacks.L_vip);
    ("lrpc", fun w -> Rpc.Stacks.lrpc w);
    ("lrpc-vipsize", Rpc.Stacks.lrpc_vip_size);
  ]

let stack_names = String.concat ", " (List.map fst stack_builders)

let with_stack name f =
  match List.assoc_opt name stack_builders with
  | Some mk -> f mk
  | None ->
      Printf.eprintf "unknown configuration %S (try: %s)\n" name stack_names;
      exit 1

let run_graph name =
  with_stack name (fun mk ->
      let w = World.create () in
      let e = mk w in
      Format.printf "%a" Proto.pp_graph e.Rpc.Stacks.tops)

let run_rpc name size count drop seed json =
  with_stack name (fun mk ->
      let w = World.create ~seed () in
      let e = mk w in
      let ok = ref 0 and failed = ref 0 in
      let total = ref 0. in
      World.spawn w (fun () ->
          (* warm up before enabling loss so ARP isn't part of the story *)
          ignore (e.Rpc.Stacks.call ~command:Rpc.Stacks.cmd_null Msg.empty);
          Wire.set_drop_rate w.World.wire drop;
          let payload = Msg.fill size 'x' in
          let t0 = Sim.now w.World.sim in
          for _ = 1 to count do
            match e.Rpc.Stacks.call ~command:Rpc.Stacks.cmd_null payload with
            | Ok _ -> incr ok
            | Error _ -> incr failed
          done;
          let dt = Sim.now w.World.sim -. t0 in
          total := dt;
          Printf.printf
            "%s: %d/%d calls ok (%d failed) in %.2f ms simulated\n" name !ok
            count !failed (dt *. 1e3);
          Printf.printf "per call: %.3f ms" (dt /. float_of_int count *. 1e3);
          if size > 0 then
            Printf.printf "  (%.0f kB/s)"
              (float_of_int size /. (dt /. float_of_int count) /. 1000.);
          print_newline ());
      World.run w;
      match json with
      | None -> ()
      | Some path ->
          write_json path
            (Json.Obj
               [
                 ( "workload",
                   Json.Obj
                     [
                       ("config", Json.Str name);
                       ("size", Json.Int size);
                       ("count", Json.Int count);
                       ("drop", Json.Float drop);
                       ("seed", Json.Int seed);
                       ("ok", Json.Int !ok);
                       ("failed", Json.Int !failed);
                       ("total_ms", Json.Float (!total *. 1e3));
                       ( "per_call_ms",
                         Json.Float (!total /. float_of_int count *. 1e3) );
                     ] );
                 ("stats", Stats.json ());
               ]))

let run_trace name size =
  Trace.set_level (Some Logs.Debug);
  with_stack name (fun mk ->
      let w = World.create () in
      let e = mk w in
      World.spawn w (fun () ->
          match e.Rpc.Stacks.call ~command:Rpc.Stacks.cmd_null (Msg.fill size 't') with
          | Ok _ -> Printf.printf "call completed at %.3f ms\n" (Sim.now w.World.sim *. 1e3)
          | Error err -> Printf.printf "call failed: %s\n" (Rpc.Rpc_error.to_string err));
      World.run w)

let run_ping remote =
  if remote then begin
    let inet = World.create_internet () in
    let wn = World.node inet.World.west 0 in
    let en = World.node inet.World.east 0 in
    let iw = Netproto.Icmp.create ~host:wn.World.host ~ip:wn.World.ip in
    let _ie = Netproto.Icmp.create ~host:en.World.host ~ip:en.World.ip in
    Sim.spawn inet.World.inet_sim (fun () ->
        for seq = 1 to 4 do
          match Netproto.Icmp.ping iw ~peer:en.World.host.Host.ip ~timeout:5.0 () with
          | Some rtt ->
              Printf.printf "64 bytes from %s (via router): seq=%d time=%.2f ms\n"
                (Addr.Ip.to_string en.World.host.Host.ip) seq (rtt *. 1e3)
          | None -> Printf.printf "seq=%d timed out\n" seq
        done);
    Sim.run inet.World.inet_sim
  end
  else begin
    let w = World.create () in
    let n0 = World.node w 0 and n1 = World.node w 1 in
    let i0 = Netproto.Icmp.create ~host:n0.World.host ~ip:n0.World.ip in
    let _i1 = Netproto.Icmp.create ~host:n1.World.host ~ip:n1.World.ip in
    World.spawn w (fun () ->
        for seq = 1 to 4 do
          match Netproto.Icmp.ping i0 ~peer:n1.World.host.Host.ip () with
          | Some rtt ->
              Printf.printf "64 bytes from %s: seq=%d time=%.2f ms\n"
                (Addr.Ip.to_string n1.World.host.Host.ip) seq (rtt *. 1e3)
          | None -> Printf.printf "seq=%d timed out\n" seq
        done);
    World.run w
  end

let run_check name =
  with_stack name (fun mk ->
      let w = World.create () in
      let e = mk w in
      let issues = Rpc.Meta.check e.Rpc.Stacks.tops in
      Format.printf "%a" Rpc.Meta.pp_report issues;
      if issues <> [] then exit 1)

(* --- cmdliner plumbing ---------------------------------------------------- *)

open Cmdliner

let json_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write results and the full stats dump to $(docv) as JSON")

(* Comma-separated list options for the capacity sweep. *)
let split_list conv what s =
  try Some (List.map conv (String.split_on_char ',' (String.trim s)))
  with _ ->
    Printf.eprintf "xkrpc: cannot parse %s list %S\n" what s;
    exit 1

let cap_opts_term =
  let stacks =
    Arg.(
      value
      & opt (some string) None
      & info [ "stacks" ] ~docv:"S1,S2"
          ~doc:
            "Capacity sweep: stacks to drive (mrpc-eth, mrpc-ip, mrpc-vip, \
             lrpc)")
  in
  let rates =
    Arg.(
      value
      & opt (some string) None
      & info [ "rates" ] ~docv:"R1,R2"
          ~doc:"Capacity sweep: open-loop offered loads in calls/second")
  in
  let arrivals =
    Arg.(
      value
      & opt (some int) None
      & info [ "arrivals" ] ~docv:"N"
          ~doc:"Capacity sweep: arrivals per open-loop step")
  in
  let clients =
    Arg.(
      value
      & opt (some int) None
      & info [ "load-clients" ] ~docv:"M"
          ~doc:"Capacity sweep: client hosts fanning into the server")
  in
  let window =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ] ~docv:"W"
          ~doc:"Capacity sweep: open-loop pending-call window (beyond: shed)")
  in
  let conc =
    Arg.(
      value
      & opt (some string) None
      & info [ "conc" ] ~docv:"C1,C2"
          ~doc:"Capacity sweep: closed-loop concurrency steps (total fibers)")
  in
  let servers =
    Arg.(
      value
      & opt (some int) None
      & info [ "servers" ] ~docv:"K"
          ~doc:"Failover experiment: server replicas behind the REPLICA map")
  in
  let controls =
    Arg.(
      value
      & opt (some string) None
      & info [ "controls" ] ~docv:"C1,C2"
          ~doc:
            "Overload sweep: control stacks to compare (none, deadline, \
             deadline+admit, full)")
  in
  let spike =
    Arg.(
      value
      & opt (some float) None
      & info [ "spike" ] ~docv:"SECS"
          ~doc:
            "Overload sweep: add a delay spike of $(docv) seconds over the \
             middle half of each step")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "exp-seed" ] ~docv:"SEED"
          ~doc:"Failover/rebalance experiments: world seed")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"S"
          ~doc:"Rebalance experiment: virtual shards in the map")
  in
  let modes =
    Arg.(
      value
      & opt (some string) None
      & info [ "modes" ] ~docv:"M1,M2"
          ~doc:
            "Rebalance/inc/shardscale experiments: modes to run (e.g. \
             static, crash-rebalance, skew-rebalance; no-inc, cold, hot; \
             uniform, zipf, zipf-rebalance)")
  in
  let ks =
    Arg.(
      value
      & opt (some string) None
      & info [ "ks" ] ~docv:"K1,K2"
          ~doc:"Shardscale experiment: server counts to sweep")
  in
  let assemble stacks rates arrivals clients window conc servers controls spike
      seed shards modes ks =
    {
      cap_stacks = Option.map (fun s -> String.split_on_char ',' s) stacks;
      cap_rates =
        Option.bind rates (split_list float_of_string "rate");
      cap_arrivals = arrivals;
      cap_clients = clients;
      cap_window = window;
      cap_conc = Option.bind conc (split_list int_of_string "concurrency");
      cap_servers = servers;
      cap_controls = Option.map (fun s -> String.split_on_char ',' s) controls;
      cap_spike = spike;
      cap_seed = seed;
      cap_shards = shards;
      cap_modes = Option.map (fun s -> String.split_on_char ',' s) modes;
      cap_ks = Option.bind ks (split_list int_of_string "server count");
    }
  in
  Term.(
    const assemble $ stacks $ rates $ arrivals $ clients $ window $ conc
    $ servers $ controls $ spike $ seed $ shards $ modes $ ks)

let exp_cmd =
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  Cmd.v
    (Cmd.info "exp" ~doc:"Run experiments by id (default: all)")
    Term.(const run_exp $ json_opt $ cap_opts_term $ ids)

let config_pos =
  Arg.(value & pos 0 string "lrpc" & info [] ~docv:"CONFIG")

let graph_cmd =
  Cmd.v
    (Cmd.info "graph" ~doc:"Print a configuration's protocol graph")
    Term.(const run_graph $ config_pos)

let rpc_cmd =
  let size =
    Arg.(value & opt int 0 & info [ "s"; "size" ] ~docv:"BYTES" ~doc:"Request size")
  in
  let count =
    Arg.(value & opt int 100 & info [ "n"; "count" ] ~docv:"N" ~doc:"Number of calls")
  in
  let drop =
    Arg.(
      value
      & opt float 0.
      & info [ "d"; "drop" ] ~docv:"P" ~doc:"Frame drop probability")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed")
  in
  Cmd.v
    (Cmd.info "rpc" ~doc:"Run an ad-hoc RPC workload")
    Term.(const run_rpc $ config_pos $ size $ count $ drop $ seed $ json_opt)

let trace_cmd =
  let size =
    Arg.(value & opt int 0 & info [ "s"; "size" ] ~docv:"BYTES" ~doc:"Request size")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run one RPC with packet tracing")
    Term.(const run_trace $ config_pos $ size)

let ping_cmd =
  let remote =
    Arg.(value & flag & info [ "r"; "remote" ] ~doc:"Ping across the router")
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"ICMP echo through the simulated network")
    Term.(const run_ping $ remote)

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Verify a configuration against the meta-protocol rules")
    Term.(const run_check $ config_pos)

let () =
  let doc = "RPC in the x-Kernel — reproduction driver" in
  let info = Cmd.info "xkrpc" ~doc ~version:"1.0" in
  exit (Cmd.eval (Cmd.group info [ exp_cmd; graph_cmd; rpc_cmd; trace_cmd; ping_cmd; check_cmd ]))
