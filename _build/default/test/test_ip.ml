open Xkernel
module World = Netproto.World

(* Upper protocol over IP that records deliveries. *)
let sink host =
  let received = ref [] in
  let p = Proto.create ~host ~name:"SINK" () in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "sink");
      open_enable = (fun ~upper:_ _ -> invalid_arg "sink");
      open_done = (fun ~upper:_ _ -> invalid_arg "sink");
      demux = (fun ~lower:_ msg -> received := Msg.to_string msg :: !received);
      p_control = (fun _ -> Control.Unsupported);
    };
  (p, received)

let proto_num = 200

let setup w =
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let p1, got1 = sink n1.World.host in
  Proto.open_enable (Netproto.Ip.proto n1.World.ip) ~upper:p1
    (Part.v ~local:[ Part.Ip_proto proto_num ] ());
  let send msg =
    Tutil.run_in w (fun () ->
        let sess =
          Proto.open_ (Netproto.Ip.proto n0.World.ip)
            ~upper:(fst (sink n0.World.host))
            (Part.v
               ~local:[ Part.Ip n0.World.host.Host.ip; Part.Ip_proto proto_num ]
               ~remotes:
                 [ [ Part.Ip n1.World.host.Host.ip; Part.Ip_proto proto_num ] ]
               ())
        in
        Proto.push sess msg)
  in
  (n0, n1, send, got1)

let small_datagram () =
  let w = World.create () in
  let _, _, send, got = setup w in
  send (Msg.of_string "small");
  Alcotest.(check (list string)) "delivered" [ "small" ] !got

let empty_datagram () =
  let w = World.create () in
  let _, _, send, got = setup w in
  send Msg.empty;
  Alcotest.(check (list string)) "empty ok" [ "" ] !got

let fragmentation_roundtrip () =
  let w = World.create () in
  let n0, n1, send, got = setup w in
  let payload = Tutil.body 5000 in
  send (Msg.of_string payload);
  (match !got with
  | [ s ] -> Tutil.check_str "reassembled" payload s
  | _ -> Alcotest.fail "expected one delivery");
  Alcotest.(check bool) "sender fragmented" true
    (Tutil.stat (Netproto.Ip.proto n0.World.ip) "tx-frag" >= 3);
  Alcotest.(check bool) "receiver saw fragments" true
    (Tutil.stat (Netproto.Ip.proto n1.World.ip) "rx-frag" >= 3)

let max_size_datagram () =
  let w = World.create () in
  let _, _, send, got = setup w in
  let payload = String.make Netproto.Ip.max_packet 'M' in
  send (Msg.of_string payload);
  match !got with
  | [ s ] -> Tutil.check_int "64k reassembled" Netproto.Ip.max_packet (String.length s)
  | _ -> Alcotest.fail "expected one delivery"

let oversize_rejected () =
  let w = World.create () in
  let n0, _, send, got = setup w in
  send (Msg.fill (Netproto.Ip.max_packet + 1) 'x');
  Alcotest.(check (list string)) "nothing delivered" [] !got;
  Tutil.check_int "counted too-big" 1
    (Tutil.stat (Netproto.Ip.proto n0.World.ip) "too-big")

let corrupt_header_dropped () =
  let w = World.create () in
  let n1 = World.node w 1 in
  let _, _, send, got = setup w in
  (* Warm up ARP and the session first, then flip a byte inside the IP
     header of every subsequent frame (eth 14 + offset 8 = ttl). *)
  send (Msg.of_string "warm");
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Corrupt 22 ]));
  send (Msg.of_string "doomed");
  Alcotest.(check (list string)) "only warm-up delivered" [ "warm" ] !got;
  Alcotest.(check bool) "checksum counter" true
    (Tutil.stat (Netproto.Ip.proto n1.World.ip) "rx-bad-checksum" >= 1)

let lost_fragment_times_out () =
  let w = World.create () in
  let n1 = World.node w 1 in
  let _, _, send, got = setup w in
  (* Warm up ARP (frames 0-1) and the session (frame 2), then drop one
     fragment of the real message: reassembly must not deliver, and the
     partial state must be garbage collected. *)
  send (Msg.of_string "warm");
  Wire.set_fault_hook w.World.wire
    (Some (fun n _ -> if n = 4 then [ Wire.Drop ] else []));
  send (Msg.fill 4000 'f');
  Alcotest.(check (list string)) "not delivered" [ "warm" ] !got;
  (* run past the reassembly timer *)
  Tutil.run_in w (fun () -> Sim.delay w.World.sim 2.0);
  Tutil.check_int "reassembly GCed" 1
    (Tutil.stat (Netproto.Ip.proto n1.World.ip) "reasm-timeout")

let reordered_fragments_ok () =
  let w = World.create () in
  (* Delay the first fragment so it arrives after the others. *)
  Wire.set_fault_hook w.World.wire
    (Some (fun n _ -> if n = 0 then [ Wire.Delay 0.01 ] else []));
  let _, _, send, got = setup w in
  let payload = Tutil.body 4000 in
  send (Msg.of_string payload);
  match !got with
  | [ s ] -> Tutil.check_str "reassembled out of order" payload s
  | _ -> Alcotest.fail "expected one delivery"

let duplicate_fragments_ok () =
  let w = World.create () in
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Duplicate ]));
  let _, _, send, got = setup w in
  let payload = Tutil.body 3000 in
  send (Msg.of_string payload);
  (* IP is unreliable: duplicated fragments may yield the datagram once
     or twice, but every copy must be intact — no corrupted hybrids. *)
  Alcotest.(check bool) "delivered at least once" true (!got <> []);
  List.iter (fun s -> Tutil.check_str "intact copy" payload s) !got

let routing_via_gateway () =
  let inet = World.create_internet () in
  let wn = World.node inet.World.west 0 in
  let en = World.node inet.World.east 0 in
  let p_e, got = sink en.World.host in
  Proto.open_enable (Netproto.Ip.proto en.World.ip) ~upper:p_e
    (Part.v ~local:[ Part.Ip_proto proto_num ] ());
  let result = ref [] in
  Sim.spawn inet.World.inet_sim (fun () ->
      let sess =
        Proto.open_ (Netproto.Ip.proto wn.World.ip)
          ~upper:(fst (sink wn.World.host))
          (Part.v
             ~local:[ Part.Ip wn.World.host.Host.ip; Part.Ip_proto proto_num ]
             ~remotes:[ [ Part.Ip en.World.host.Host.ip; Part.Ip_proto proto_num ] ]
             ())
      in
      Proto.push sess (Msg.of_string "across the router");
      result := [ "sent" ]);
  Sim.run inet.World.inet_sim;
  Alcotest.(check (list string)) "sent" [ "sent" ] !result;
  Alcotest.(check (list string)) "forwarded end to end" [ "across the router" ] !got;
  Alcotest.(check bool) "router counted it" true
    (Tutil.stat (Netproto.Ip.proto (fst inet.World.router).World.ip) "forwarded" >= 1)

let fragments_forwarded () =
  let inet = World.create_internet () in
  let wn = World.node inet.World.west 0 in
  let en = World.node inet.World.east 0 in
  let p_e, got = sink en.World.host in
  Proto.open_enable (Netproto.Ip.proto en.World.ip) ~upper:p_e
    (Part.v ~local:[ Part.Ip_proto proto_num ] ());
  let payload = Tutil.body 4000 in
  Sim.spawn inet.World.inet_sim (fun () ->
      let sess =
        Proto.open_ (Netproto.Ip.proto wn.World.ip)
          ~upper:(fst (sink wn.World.host))
          (Part.v
             ~local:[ Part.Ip wn.World.host.Host.ip; Part.Ip_proto proto_num ]
             ~remotes:[ [ Part.Ip en.World.host.Host.ip; Part.Ip_proto proto_num ] ]
             ())
      in
      Proto.push sess (Msg.of_string payload));
  Sim.run inet.World.inet_sim;
  match !got with
  | [ s ] -> Tutil.check_str "fragments crossed router" payload s
  | _ -> Alcotest.fail "expected one delivery"

let no_route_counted () =
  let w = World.create () in
  let n0 = World.node w 0 in
  Tutil.run_in w (fun () ->
      let sess =
        Proto.open_ (Netproto.Ip.proto n0.World.ip)
          ~upper:(fst (sink n0.World.host))
          (Part.v
             ~local:[ Part.Ip n0.World.host.Host.ip; Part.Ip_proto proto_num ]
             ~remotes:[ [ Part.Ip (Addr.Ip.v 192 168 9 9); Part.Ip_proto proto_num ] ]
             ())
      in
      Proto.push sess (Msg.of_string "nowhere"));
  Tutil.check_int "no-route" 1 (Tutil.stat (Netproto.Ip.proto n0.World.ip) "no-route")

let controls () =
  let w = World.create () in
  let n0 = World.node w 0 in
  let p = Netproto.Ip.proto n0.World.ip in
  Tutil.check_int "max packet" 65515 (Control.int_exn (Proto.control p Control.Get_max_packet));
  Tutil.check_int "opt packet" 1480 (Control.int_exn (Proto.control p Control.Get_opt_packet))

let () =
  Alcotest.run "ip"
    [
      ( "datagrams",
        [
          Alcotest.test_case "small" `Quick small_datagram;
          Alcotest.test_case "empty" `Quick empty_datagram;
          Alcotest.test_case "controls" `Quick controls;
        ] );
      ( "fragmentation",
        [
          Alcotest.test_case "roundtrip" `Quick fragmentation_roundtrip;
          Alcotest.test_case "64k maximum" `Quick max_size_datagram;
          Alcotest.test_case "oversize rejected" `Quick oversize_rejected;
          Alcotest.test_case "lost fragment times out" `Quick lost_fragment_times_out;
          Alcotest.test_case "reordered fragments" `Quick reordered_fragments_ok;
          Alcotest.test_case "duplicate fragments" `Quick duplicate_fragments_ok;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "corrupt header dropped" `Quick corrupt_header_dropped;
          Alcotest.test_case "no route counted" `Quick no_route_counted;
        ] );
      ( "routing",
        [
          Alcotest.test_case "via gateway" `Quick routing_via_gateway;
          Alcotest.test_case "fragments forwarded" `Quick fragments_forwarded;
        ] );
    ]
