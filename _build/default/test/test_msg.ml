open Xkernel

let push_pop_stack () =
  let m = Msg.of_string "payload" in
  let m = Msg.push m "HDR2" in
  let m = Msg.push m "H1" in
  (* Pops come off in reverse push order — stack discipline. *)
  let h1, m = Option.get (Msg.pop m 2) in
  Tutil.check_str "inner header" "H1" h1;
  let h2, m = Option.get (Msg.pop m 4) in
  Tutil.check_str "outer header" "HDR2" h2;
  Tutil.check_str "payload intact" "payload" (Msg.to_string m)

let pop_too_short () =
  Alcotest.(check bool)
    "pop beyond length" true
    (Msg.pop (Msg.of_string "ab") 3 = None)

let length_o1 () =
  let m = Msg.fill 1_000_000 'x' in
  Tutil.check_int "large fill length" 1_000_000 (Msg.length m);
  let m2 = Msg.append m m in
  Tutil.check_int "append length" 2_000_000 (Msg.length m2)

let split_rejoin () =
  let m = Msg.of_string "abcdefgh" in
  let a, b = Msg.split m 3 in
  Tutil.check_str "left" "abc" (Msg.to_string a);
  Tutil.check_str "right" "defgh" (Msg.to_string b);
  Alcotest.check Tutil.msg "rejoin" m (Msg.append a b)

let split_bounds () =
  let m = Msg.of_string "abc" in
  let a, b = Msg.split m 0 in
  Alcotest.(check bool) "empty left" true (Msg.is_empty a);
  Tutil.check_str "full right" "abc" (Msg.to_string b);
  let a, b = Msg.split m 3 in
  Tutil.check_str "full left" "abc" (Msg.to_string a);
  Alcotest.(check bool) "empty right" true (Msg.is_empty b);
  Alcotest.check_raises "negative" (Invalid_argument "Msg.split") (fun () ->
      ignore (Msg.split m (-1)));
  Alcotest.check_raises "too big" (Invalid_argument "Msg.split") (fun () ->
      ignore (Msg.split m 4))

let sub_slices () =
  let m = Msg.append (Msg.of_string "abcd") (Msg.of_string "efgh") in
  Tutil.check_str "across leaves" "cdef" (Msg.to_string (Msg.sub m 2 4));
  Tutil.check_str "empty sub" "" (Msg.to_string (Msg.sub m 4 0))

let map_byte_corrupts () =
  let m = Msg.of_string "abcdef" in
  let m' = Msg.map_byte 2 (fun c -> Char.chr (Char.code c lxor 0xff)) m in
  Alcotest.(check bool) "changed" false (Msg.equal m m');
  Tutil.check_str "only byte 2" "ab\x9cdef" (Msg.to_string m')

let equal_ignores_shape () =
  let a = Msg.append (Msg.of_string "ab") (Msg.of_string "cd") in
  let b = Msg.of_string "abcd" in
  Alcotest.(check bool) "equal across shapes" true (Msg.equal a b)

let fill_content () =
  Tutil.check_str "fill bytes" "zzzz" (Msg.to_string (Msg.fill 4 'z'));
  Alcotest.(check bool) "fill 0 empty" true (Msg.is_empty (Msg.fill 0 'z'))

(* qcheck: a message with arbitrary structure *)
let gen_msg =
  QCheck.make
    ~print:(fun parts -> String.concat "|" parts)
    QCheck.Gen.(list_size (int_range 0 8) (string_size (int_range 0 32)))

let build parts =
  List.fold_left (fun acc s -> Msg.append acc (Msg.of_string s)) Msg.empty parts

let prop_split_concat =
  Tutil.qtest "split n; append = id"
    QCheck.(pair gen_msg (int_bound 300))
    (fun (parts, n) ->
      let m = build parts in
      let n = if Msg.length m = 0 then 0 else n mod (Msg.length m + 1) in
      let a, b = Msg.split m n in
      Msg.equal m (Msg.append a b)
      && Msg.length a = n
      && Msg.length b = Msg.length m - n)

let prop_push_pop =
  Tutil.qtest "push h; pop |h| = (h, id)"
    QCheck.(pair gen_msg (string_of_size (Gen.int_range 0 40)))
    (fun (parts, h) ->
      let m = build parts in
      match Msg.pop (Msg.push m h) (String.length h) with
      | Some (h', rest) -> String.equal h h' && Msg.equal rest m
      | None -> false)

let prop_to_string_concat =
  Tutil.qtest "to_string distributes over append" gen_msg (fun parts ->
      String.equal (Msg.to_string (build parts)) (String.concat "" parts))

let prop_fragment_reassemble =
  Tutil.qtest "chunked split reassembles"
    QCheck.(pair gen_msg (int_range 1 64))
    (fun (parts, chunk) ->
      let m = build parts in
      let rec frags acc off =
        if off >= Msg.length m then List.rev acc
        else
          let this = min chunk (Msg.length m - off) in
          frags (Msg.sub m off this :: acc) (off + this)
      in
      let back =
        List.fold_left Msg.append Msg.empty (frags [] 0)
      in
      Msg.equal m back)

let () =
  Alcotest.run "msg"
    [
      ( "stack",
        [
          Alcotest.test_case "push/pop discipline" `Quick push_pop_stack;
          Alcotest.test_case "pop too short" `Quick pop_too_short;
          prop_push_pop;
        ] );
      ( "structure",
        [
          Alcotest.test_case "O(1) length" `Quick length_o1;
          Alcotest.test_case "split and rejoin" `Quick split_rejoin;
          Alcotest.test_case "split bounds" `Quick split_bounds;
          Alcotest.test_case "sub across leaves" `Quick sub_slices;
          Alcotest.test_case "map_byte" `Quick map_byte_corrupts;
          Alcotest.test_case "equality ignores shape" `Quick equal_ignores_shape;
          Alcotest.test_case "fill" `Quick fill_content;
          prop_split_concat;
          prop_to_string_concat;
          prop_fragment_reassemble;
        ] );
    ]
