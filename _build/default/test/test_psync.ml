open Xkernel
module World = Netproto.World
module Fragment = Rpc.Fragment

(* Psync over FRAGMENT over VIP on [n] hosts, all joined to one
   conversation. *)
let setup w =
  let n = Array.length w.World.nodes in
  let members = List.init n (fun i -> World.ip_of w i) in
  let nodes = List.init n (fun i -> World.node w i) in
  let protos =
    List.map
      (fun (node : World.node) ->
        let f =
          Fragment.create ~host:node.World.host
            ~lower:(Netproto.Vip.proto node.World.vip) ()
        in
        Psync.create ~host:node.World.host ~lower:(Fragment.proto f) ())
      nodes
  in
  (* join opens sessions (ARP resolution), so it runs in a fiber *)
  Tutil.run_in w (fun () ->
      List.map (fun ps -> Psync.join ps ~conv_id:1 ~members) protos)

let log_deliveries cv =
  let log = ref [] in
  Psync.on_deliver cv (fun ~sender:_ ~id ~context:_ msg ->
      log := (id, Msg.to_string msg) :: !log);
  log

let broadcast_reaches_all () =
  let w = World.create ~n:3 () in
  match setup w with
  | [ c0; c1; c2 ] ->
      let l1 = log_deliveries c1 and l2 = log_deliveries c2 in
      Tutil.run_in w (fun () -> ignore (Psync.send c0 (Msg.of_string "hello all")));
      Tutil.run_in w (fun () -> Sim.delay w.World.sim 0.2);
      Tutil.check_int "c1 got it" 1 (List.length !l1);
      Tutil.check_int "c2 got it" 1 (List.length !l2)
  | _ -> assert false

let context_carried () =
  let w = World.create ~n:2 () in
  match setup w with
  | [ c0; c1 ] ->
      let ctxs = ref [] in
      Psync.on_deliver c1 (fun ~sender:_ ~id:_ ~context msg ->
          ctxs := (Msg.to_string msg, context) :: !ctxs);
      Tutil.run_in w (fun () ->
          ignore (Psync.send c0 (Msg.of_string "first"));
          Sim.delay w.World.sim 0.05;
          ignore (Psync.send c0 (Msg.of_string "second")));
      Tutil.run_in w (fun () -> Sim.delay w.World.sim 0.2);
      let ctx_of name = List.assoc name !ctxs in
      Tutil.check_int "first has empty context" 0 (List.length (ctx_of "first"));
      Tutil.check_int "second names its predecessor" 1 (List.length (ctx_of "second"))
  | _ -> assert false

let causal_order_under_reorder () =
  (* Delay the first message on the wire so the reply overtakes it; the
     receiver must still deliver in causal order. *)
  let w = World.create ~n:2 () in
  match setup w with
  | [ c0; c1 ] ->
      let order = ref [] in
      Psync.on_deliver c1 (fun ~sender:_ ~id:_ ~context:_ msg ->
          order := Msg.to_string msg :: !order);
      (* First psync data frame gets a big extra delay. *)
      let armed = ref true in
      Wire.set_fault_hook w.World.wire
        (Some
           (fun _ _ ->
             if !armed then begin
               armed := false;
               [ Wire.Delay 0.02 ]
             end
             else []));
      Tutil.run_in w (fun () ->
          ignore (Psync.send c0 (Msg.of_string "m1"));
          ignore (Psync.send c0 (Msg.of_string "m2")));
      Tutil.run_in w (fun () -> Sim.delay w.World.sim 0.5);
      Alcotest.(check (list string)) "causal order preserved" [ "m1"; "m2" ]
        (List.rev !order)
  | _ -> assert false

let lost_message_recovered_by_context () =
  (* m1 is lost entirely; m2 arrives naming m1 in its context; the
     receiver asks m1's sender to resend — Psync's recovery. *)
  let w = World.create ~n:2 () in
  match setup w with
  | [ c0; c1 ] ->
      let order = ref [] in
      Psync.on_deliver c1 (fun ~sender:_ ~id:_ ~context:_ msg ->
          order := Msg.to_string msg :: !order);
      let armed = ref true in
      Wire.set_fault_hook w.World.wire
        (Some
           (fun _ _ ->
             if !armed then begin
               armed := false;
               [ Wire.Drop ]
             end
             else []));
      Tutil.run_in w (fun () ->
          ignore (Psync.send c0 (Msg.of_string "lost"));
          ignore (Psync.send c0 (Msg.of_string "carrier")));
      Tutil.run_in w (fun () -> Sim.delay w.World.sim 1.0);
      Alcotest.(check (list string)) "both delivered, in order"
        [ "lost"; "carrier" ] (List.rev !order);
      Tutil.check_int "nothing left blocked" 0 (Psync.blocked c1)
  | _ -> assert false

let many_to_many_conversation () =
  let w = World.create ~n:3 () in
  match setup w with
  | [ c0; c1; c2 ] ->
      let l0 = log_deliveries c0 and l1 = log_deliveries c1 and l2 = log_deliveries c2 in
      Tutil.run_in w (fun () ->
          ignore (Psync.send c0 (Msg.of_string "from-0"));
          Sim.delay w.World.sim 0.05;
          ignore (Psync.send c1 (Msg.of_string "from-1"));
          Sim.delay w.World.sim 0.05;
          ignore (Psync.send c2 (Msg.of_string "from-2")));
      Tutil.run_in w (fun () -> Sim.delay w.World.sim 0.3);
      (* everyone sees the two messages they did not send *)
      Tutil.check_int "c0 sees 2" 2 (List.length !l0);
      Tutil.check_int "c1 sees 2" 2 (List.length !l1);
      Tutil.check_int "c2 sees 2" 2 (List.length !l2)
  | _ -> assert false

let bulk_messages_reuse_fragment () =
  (* Psync's 16 KB messages ride FRAGMENT — the reuse the paper made
     FRAGMENT unreliable for. *)
  let w = World.create ~n:2 () in
  match setup w with
  | [ c0; c1 ] ->
      let l1 = log_deliveries c1 in
      let payload = Tutil.body 16000 in
      Tutil.run_in w (fun () -> ignore (Psync.send c0 (Msg.of_string payload)));
      Tutil.run_in w (fun () -> Sim.delay w.World.sim 0.5);
      (match !l1 with
      | [ (_, s) ] -> Tutil.check_str "16k conversation message" payload s
      | _ -> Alcotest.fail "expected one delivery");
      (* IP never touched: FRAGMENT under VIP keeps it on the wire *)
      Tutil.check_int "IP idle" 0
        (Tutil.stat (Netproto.Ip.proto (World.node w 0).World.ip) "tx")
  | _ -> assert false

let () =
  Alcotest.run "psync"
    [
      ( "conversations",
        [
          Alcotest.test_case "broadcast reaches members" `Quick broadcast_reaches_all;
          Alcotest.test_case "context carried" `Quick context_carried;
          Alcotest.test_case "many-to-many" `Quick many_to_many_conversation;
          Alcotest.test_case "16k via FRAGMENT reuse" `Quick
            bulk_messages_reuse_fragment;
        ] );
      ( "causality",
        [
          Alcotest.test_case "causal order under reorder" `Quick
            causal_order_under_reorder;
          Alcotest.test_case "loss recovered via context" `Quick
            lost_message_recovered_by_context;
        ] );
    ]
