open Xkernel

let roundtrip_fixed () =
  let w = Codec.W.create () in
  Codec.W.u8 w 0xab;
  Codec.W.u16 w 0xbeef;
  Codec.W.u32 w 0xdeadbeef;
  Codec.W.u48 w 0x080020010203;
  Codec.W.bytes w "tail";
  let r = Codec.R.of_string (Codec.W.contents w) in
  Tutil.check_int "u8" 0xab (Codec.R.u8 r);
  Tutil.check_int "u16" 0xbeef (Codec.R.u16 r);
  Tutil.check_int "u32" 0xdeadbeef (Codec.R.u32 r);
  Tutil.check_int "u48" 0x080020010203 (Codec.R.u48 r);
  Tutil.check_str "bytes" "tail" (Codec.R.bytes r 4);
  Tutil.check_int "remaining" 0 (Codec.R.remaining r)

let truncation () =
  let r = Codec.R.of_string "\x01" in
  Tutil.check_int "u8 ok" 1 (Codec.R.u8 r);
  Alcotest.check_raises "u8 past end" Codec.R.Truncated (fun () ->
      ignore (Codec.R.u8 r));
  let r2 = Codec.R.of_string "\x01\x02\x03" in
  Alcotest.check_raises "u32 short" Codec.R.Truncated (fun () ->
      ignore (Codec.R.u32 r2))

let masking () =
  let w = Codec.W.create () in
  Codec.W.u8 w 0x1ff;
  Codec.W.u16 w 0x1ffff;
  let r = Codec.R.of_string (Codec.W.contents w) in
  Tutil.check_int "u8 masks" 0xff (Codec.R.u8 r);
  Tutil.check_int "u16 masks" 0xffff (Codec.R.u16 r)

let pos_tracking () =
  let r = Codec.R.of_string "abcdef" in
  Tutil.check_int "pos 0" 0 (Codec.R.pos r);
  ignore (Codec.R.u16 r);
  Tutil.check_int "pos 2" 2 (Codec.R.pos r);
  Tutil.check_int "remaining" 4 (Codec.R.remaining r)

let checksum_zero () =
  Tutil.check_int "empty" 0xffff (Codec.ip_checksum "");
  Tutil.check_int "zeros" 0xffff (Codec.ip_checksum "\x00\x00\x00\x00")

(* A header whose checksum field holds ip_checksum of the rest sums to
   0xffff — the standard IP verification identity. *)
let checksum_verifies () =
  let base =
    "\x45\x00\x00\x1c\x00\x01\x00\x00\x20\x11\x00\x00\x0a\x00\x00\x01\x0a\x00\x00\x02"
  in
  let ck = Codec.ip_checksum base in
  let b = Bytes.of_string base in
  Bytes.set_uint8 b 10 (ck lsr 8);
  Bytes.set_uint8 b 11 (ck land 0xff);
  Tutil.check_int "sums to ffff" 0xffff
    (Codec.ones_complement_sum (Bytes.to_string b))

let checksum_catches_flip () =
  let base = Tutil.body 20 in
  let ck = Codec.ip_checksum base in
  let corrupt = Bytes.of_string base in
  Bytes.set_uint8 corrupt 5 (Bytes.get_uint8 corrupt 5 lxor 0xff);
  Alcotest.(check bool)
    "different checksum" false
    (Codec.ip_checksum (Bytes.to_string corrupt) = ck)

let odd_length () =
  Tutil.check_int "odd == padded even"
    (Codec.ones_complement_sum "abc")
    (Codec.ones_complement_sum "abc\x00")

let prop_u32_roundtrip =
  Tutil.qtest "u32 roundtrip" QCheck.(int_bound 0xffffffff) (fun n ->
      let w = Codec.W.create () in
      Codec.W.u32 w n;
      Codec.R.u32 (Codec.R.of_string (Codec.W.contents w)) = n)

let prop_checksum_identity =
  Tutil.qtest "checksum identity over even-length strings"
    QCheck.(string_of_size (Gen.int_range 0 64))
    (fun s ->
      let s = if String.length s mod 2 = 0 then s else s ^ "\x00" in
      let ck = Codec.ip_checksum s in
      let full =
        s
        ^ String.make 1 (Char.chr (ck lsr 8))
        ^ String.make 1 (Char.chr (ck land 0xff))
      in
      Codec.ones_complement_sum full = 0xffff)

let () =
  Alcotest.run "codec"
    [
      ( "writer-reader",
        [
          Alcotest.test_case "fixed roundtrip" `Quick roundtrip_fixed;
          Alcotest.test_case "truncation raises" `Quick truncation;
          Alcotest.test_case "values masked to width" `Quick masking;
          Alcotest.test_case "position tracking" `Quick pos_tracking;
          prop_u32_roundtrip;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "zero cases" `Quick checksum_zero;
          Alcotest.test_case "header verifies" `Quick checksum_verifies;
          Alcotest.test_case "bit flip detected" `Quick checksum_catches_flip;
          Alcotest.test_case "odd length padding" `Quick odd_length;
          prop_checksum_identity;
        ] );
    ]
