open Xkernel
module World = Netproto.World
module RR = Rpc.Request_reply
module Sun = Rpc.Sun_select
module Fragment = Rpc.Fragment
module Channel = Rpc.Channel

let sun_proto = 98

(* SUN_SELECT over a transaction layer over a delivery stack, with a
   counting echo registered as (prog 100003, vers 2, proc 1). *)
let register_std sun execs =
  Sun.register sun ~prog:100003 ~vers:2 ~proc:1 (fun msg ->
      incr execs;
      Ok msg);
  Sun.register sun ~prog:100003 ~vers:2 ~proc:2 (fun _ -> Error 5)

let setup_rr w =
  let mk (n : World.node) =
    let rr =
      RR.create ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip) ()
    in
    (rr, Sun.create ~host:n.World.host ~transaction:(Sun.over_request_reply rr ~proto_num:sun_proto))
  in
  let rr0, sun0 = mk (World.node w 0) in
  let rr1, sun1 = mk (World.node w 1) in
  let execs = ref 0 in
  register_std sun1 execs;
  Sun.serve sun1;
  (rr0, rr1, sun0, sun1, execs)

let basic_sun_call () =
  let w = World.create () in
  let _, _, sun0, sun1, execs = setup_rr w in
  let r =
    Tutil.run_in w (fun () ->
        let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:100003 ~vers:2 in
        Sun.call cl ~proc:1 (Msg.of_string "nfs read"))
  in
  Tutil.check_str "echo" "nfs read" (Msg.to_string (Tutil.ok_exn "r" r));
  Tutil.check_int "executed" 1 !execs;
  Tutil.check_int "handled" 1 (Sun.calls_handled sun1)

let prog_unavail () =
  let w = World.create () in
  let _, _, sun0, _, _ = setup_rr w in
  let r =
    Tutil.run_in w (fun () ->
        let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:42 ~vers:1 in
        Sun.call cl ~proc:1 Msg.empty)
  in
  Alcotest.(check bool) "program unavailable" true
    (r = Error (Rpc.Rpc_error.Remote Sun.status_prog_unavail))

let proc_unavail () =
  let w = World.create () in
  let _, _, sun0, _, _ = setup_rr w in
  let r =
    Tutil.run_in w (fun () ->
        let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:100003 ~vers:2 in
        Sun.call cl ~proc:99 Msg.empty)
  in
  Alcotest.(check bool) "procedure unavailable" true
    (r = Error (Rpc.Rpc_error.Remote Sun.status_proc_unavail))

let handler_status () =
  let w = World.create () in
  let _, _, sun0, _, _ = setup_rr w in
  let r =
    Tutil.run_in w (fun () ->
        let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:100003 ~vers:2 in
        Sun.call cl ~proc:2 Msg.empty)
  in
  Alcotest.(check bool) "handler status" true (r = Error (Rpc.Rpc_error.Remote 5))

let zero_or_more_reexecutes () =
  (* The defining contrast with CHANNEL: a duplicated request really is
     executed again, because REQUEST_REPLY keeps no server state. *)
  let w = World.create () in
  let _, rr1, sun0, _, execs = setup_rr w in
  Tutil.run_in w (fun () ->
      let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:100003 ~vers:2 in
      ignore (Tutil.ok_exn "warm" (Sun.call cl ~proc:1 (Msg.of_string "w"))));
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Duplicate ]));
  Tutil.run_in w (fun () ->
      let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:100003 ~vers:2 in
      ignore (Tutil.ok_exn "dup" (Sun.call cl ~proc:1 (Msg.of_string "x"))));
  Tutil.run_in w (fun () -> Sim.delay w.World.sim 0.5);
  Alcotest.(check bool)
    (Printf.sprintf "re-executed (%d executions for 2 calls)" !execs)
    true (!execs > 2);
  Alcotest.(check bool) "server-side executions counted" true
    (RR.executions rr1 > 2)

let at_most_once_with_channel_swap () =
  (* "one can replace the REQUEST_REPLY protocol with the CHANNEL
     protocol": same SUN_SELECT, at-most-once semantics now hold. *)
  let w = World.create () in
  let mk (n : World.node) =
    let f =
      Fragment.create ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip) ()
    in
    let ch = Channel.create ~host:n.World.host ~lower:(Fragment.proto f) () in
    Sun.create ~host:n.World.host
      ~transaction:(Sun.over_channel ch ~proto_num:sun_proto)
  in
  let sun0 = mk (World.node w 0) in
  let sun1 = mk (World.node w 1) in
  let execs = ref 0 in
  register_std sun1 execs;
  Sun.serve sun1;
  Tutil.run_in w (fun () ->
      let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:100003 ~vers:2 in
      ignore (Tutil.ok_exn "warm" (Sun.call cl ~proc:1 (Msg.of_string "w"))));
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Duplicate ]));
  Tutil.run_in w (fun () ->
      let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:100003 ~vers:2 in
      for _ = 1 to 5 do
        ignore (Tutil.ok_exn "amo" (Sun.call cl ~proc:1 (Msg.of_string "x")))
      done);
  Tutil.run_in w (fun () -> Sim.delay w.World.sim 0.5);
  Tutil.check_int "exactly once per call" 6 !execs

let retransmit_on_loss () =
  let w = World.create () in
  let rr0, _, sun0, _, execs = setup_rr w in
  Tutil.run_in w (fun () ->
      let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:100003 ~vers:2 in
      ignore (Tutil.ok_exn "warm" (Sun.call cl ~proc:1 (Msg.of_string "w"))));
  let dropped = ref false in
  Wire.set_fault_hook w.World.wire
    (Some
       (fun _ _ ->
         if !dropped then []
         else begin
           dropped := true;
           [ Wire.Drop ]
         end));
  let r =
    Tutil.run_in w (fun () ->
        let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:100003 ~vers:2 in
        Sun.call cl ~proc:1 (Msg.of_string "again"))
  in
  Tutil.check_str "recovered" "again" (Msg.to_string (Tutil.ok_exn "r" r));
  Alcotest.(check bool) "retransmitted" true
    (Tutil.stat (RR.proto rr0) "retransmit" >= 1);
  Alcotest.(check bool) "at least the two executions" true (!execs >= 2)

(* --- authentication layers --- *)

let with_auth ~mk_auth w =
  let mk (n : World.node) =
    let auth = mk_auth n in
    let rr = RR.create ~host:n.World.host ~lower:(Rpc.Auth.proto auth) () in
    ( auth,
      Sun.create ~host:n.World.host
        ~transaction:(Sun.over_request_reply rr ~proto_num:sun_proto) )
  in
  let a0, sun0 = mk (World.node w 0) in
  let a1, sun1 = mk (World.node w 1) in
  let execs = ref 0 in
  register_std sun1 execs;
  Sun.serve sun1;
  (a0, a1, sun0, sun1, execs)

let auth_none_passes () =
  let w = World.create () in
  let _, _, sun0, _, execs =
    with_auth w ~mk_auth:(fun (n : World.node) ->
        Rpc.Auth.none ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip) ())
  in
  let r =
    Tutil.run_in w (fun () ->
        let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:100003 ~vers:2 in
        Sun.call cl ~proc:1 (Msg.of_string "open sesame"))
  in
  Tutil.check_str "through AUTH_NONE" "open sesame"
    (Msg.to_string (Tutil.ok_exn "r" r));
  Tutil.check_int "executed" 1 !execs

let auth_unix_accepts_allowed_uid () =
  let w = World.create () in
  let mk_auth (n : World.node) =
    Rpc.Auth.unix ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip)
      ~uid:100 ~gid:10
      ~allow:(fun ~uid ~gid:_ -> uid = 100)
      ()
  in
  let _, _, sun0, _, execs = with_auth w ~mk_auth in
  let r =
    Tutil.run_in w (fun () ->
        let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:100003 ~vers:2 in
        Sun.call cl ~proc:1 (Msg.of_string "as uid 100"))
  in
  Tutil.check_str "accepted" "as uid 100" (Msg.to_string (Tutil.ok_exn "r" r));
  Tutil.check_int "executed" 1 !execs

let auth_unix_rejects_wrong_uid () =
  let w = World.create () in
  let mk_auth (n : World.node) =
    Rpc.Auth.unix ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip)
      ~uid:666 ~gid:10
      ~allow:(fun ~uid ~gid:_ -> uid = 100)
      ()
  in
  let _, a1, sun0, _, execs = with_auth w ~mk_auth in
  let r =
    Tutil.run_in w (fun () ->
        let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:100003 ~vers:2 in
        Sun.call cl ~proc:1 (Msg.of_string "as uid 666"))
  in
  Alcotest.(check bool) "call times out" true (r = Error Rpc.Rpc_error.Timeout);
  Tutil.check_int "never executed" 0 !execs;
  Alcotest.(check bool) "rejections counted" true (Rpc.Auth.rejects a1 > 0)

let auth_digest_detects_tampering () =
  let w = World.create () in
  let mk_auth (n : World.node) =
    Rpc.Auth.digest ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip)
      ~key:"shared-secret" ()
  in
  let _, a1, sun0, _, execs = with_auth w ~mk_auth in
  (* First call clean. *)
  let r =
    Tutil.run_in w (fun () ->
        let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:100003 ~vers:2 in
        Sun.call cl ~proc:1 (Msg.of_string "signed"))
  in
  Tutil.check_str "clean call passes" "signed" (Msg.to_string (Tutil.ok_exn "r" r));
  Tutil.check_int "one execution" 1 !execs;
  (* Now corrupt payload bytes on the wire: digest must catch it and the
     call must never execute. *)
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Corrupt 60 ]));
  let r2 =
    Tutil.run_in w (fun () ->
        let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:100003 ~vers:2 in
        Sun.call cl ~proc:1 (Msg.of_string "tampered-with-payload"))
  in
  Alcotest.(check bool) "tampered call fails" true (r2 = Error Rpc.Rpc_error.Timeout);
  Tutil.check_int "still one execution" 1 !execs;
  Alcotest.(check bool) "digest rejections" true (Rpc.Auth.rejects a1 > 0)

let mix_sun_select_with_fragment () =
  (* "one can compose SUN_SELECT and REQUEST_REPLY with FRAGMENT rather
     than having to depend on IP to fragment large messages." *)
  let w = World.create () in
  let mk (n : World.node) =
    let f =
      Fragment.create ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip) ()
    in
    let rr = RR.create ~host:n.World.host ~lower:(Fragment.proto f) () in
    ( f,
      Sun.create ~host:n.World.host
        ~transaction:(Sun.over_request_reply rr ~proto_num:sun_proto) )
  in
  let f0, sun0 = mk (World.node w 0) in
  let _, sun1 = mk (World.node w 1) in
  let execs = ref 0 in
  register_std sun1 execs;
  Sun.serve sun1;
  let payload = Tutil.body 12000 in
  let r =
    Tutil.run_in w (fun () ->
        let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog:100003 ~vers:2 in
        Sun.call cl ~proc:1 (Msg.of_string payload))
  in
  Tutil.check_str "12k both ways" payload (Msg.to_string (Tutil.ok_exn "r" r));
  Alcotest.(check bool) "FRAGMENT did the splitting" true
    (Tutil.stat (Fragment.proto f0) "tx-frag" >= 12);
  (* and IP stayed out of it entirely *)
  Tutil.check_int "IP idle" 0
    (Tutil.stat (Netproto.Ip.proto (World.node w 0).World.ip) "tx")

let () =
  Alcotest.run "sunrpc"
    [
      ( "sun_select",
        [
          Alcotest.test_case "basic call" `Quick basic_sun_call;
          Alcotest.test_case "program unavailable" `Quick prog_unavail;
          Alcotest.test_case "procedure unavailable" `Quick proc_unavail;
          Alcotest.test_case "handler status" `Quick handler_status;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "zero-or-more re-executes" `Quick zero_or_more_reexecutes;
          Alcotest.test_case "CHANNEL swap gives at-most-once" `Quick
            at_most_once_with_channel_swap;
          Alcotest.test_case "retransmit on loss" `Quick retransmit_on_loss;
        ] );
      ( "auth layers",
        [
          Alcotest.test_case "AUTH_NONE passes" `Quick auth_none_passes;
          Alcotest.test_case "AUTH_UNIX accepts" `Quick auth_unix_accepts_allowed_uid;
          Alcotest.test_case "AUTH_UNIX rejects" `Quick auth_unix_rejects_wrong_uid;
          Alcotest.test_case "AUTH_DIGEST detects tampering" `Quick
            auth_digest_detects_tampering;
        ] );
      ( "mix and match",
        [
          Alcotest.test_case "SUN_SELECT + RR + FRAGMENT" `Quick
            mix_sun_select_with_fragment;
        ] );
    ]
