open Xkernel
module World = Netproto.World
module Icmp = Netproto.Icmp

let mk (n : World.node) = Icmp.create ~host:n.World.host ~ip:n.World.ip

let ping_local () =
  let w = World.create () in
  let i0 = mk (World.node w 0) and i1 = mk (World.node w 1) in
  ignore i1;
  let rtt = Tutil.run_in w (fun () -> Icmp.ping i0 ~peer:(World.ip_of w 1) ()) in
  Alcotest.(check bool) "echo comes back" true
    (match rtt with Some t -> t > 0. | None -> false);
  Tutil.check_int "request counted" 1 (Icmp.stat i0 "echo-tx");
  Tutil.check_int "served on the peer" 1 (Icmp.stat i1 "echo-rx")

let ping_across_router () =
  let inet = World.create_internet () in
  let wn = World.node inet.World.west 0 in
  let en = World.node inet.World.east 0 in
  let iw = Icmp.create ~host:wn.World.host ~ip:wn.World.ip in
  let _ie = Icmp.create ~host:en.World.host ~ip:en.World.ip in
  let rtt = ref None in
  Sim.spawn inet.World.inet_sim (fun () ->
      rtt := Icmp.ping iw ~peer:en.World.host.Host.ip ~timeout:5.0 ());
  Sim.run inet.World.inet_sim;
  Alcotest.(check bool) "cross-network ping" true (!rtt <> None)

let ping_timeout () =
  let w = World.create () in
  let i0 = mk (World.node w 0) in
  (* no ICMP instance on the peer: the request dies quietly *)
  let rtt =
    Tutil.run_in w (fun () -> Icmp.ping i0 ~peer:(World.ip_of w 1) ~timeout:0.2 ())
  in
  Alcotest.(check bool) "no reply" true (rtt = None)

let payload_sizes () =
  let w = World.create () in
  let i0 = mk (World.node w 0) and _i1 = mk (World.node w 1) in
  Tutil.run_in w (fun () ->
      List.iter
        (fun payload ->
          match Icmp.ping i0 ~peer:(World.ip_of w 1) ~payload ~timeout:2.0 () with
          | Some _ -> ()
          | None -> Alcotest.failf "payload %d timed out" payload)
        [ 0; 56; 1400; 4000 ])

let ttl_exceeded_reported () =
  (* Force a routing loop at the router: a ttl-1 datagram arriving at
     the router cannot be forwarded, and the sender hears about it. *)
  let inet = World.create_internet () in
  let wn = World.node inet.World.west 0 in
  let iw = Icmp.create ~host:wn.World.host ~ip:wn.World.ip in
  let router_ip = (fst inet.World.router).World.ip in
  let _ir =
    Icmp.create ~host:(fst inet.World.router).World.host ~ip:router_ip
  in
  let events = ref [] in
  Icmp.on_event iw (fun ev -> events := ev :: !events);
  (* Lower the sender's TTL to 1 so the first hop is the last. *)
  (match
     Proto.control (Netproto.Ip.proto wn.World.ip) (Control.Set_ttl 1)
   with
  | Control.R_unit -> ()
  | _ -> Alcotest.fail "Set_ttl unsupported");
  let en = World.node inet.World.east 0 in
  Sim.spawn inet.World.inet_sim (fun () ->
      let sess =
        Proto.open_ (Netproto.Ip.proto wn.World.ip)
          ~upper:(Proto.create ~host:wn.World.host ~name:"X" ())
          (Part.v
             ~local:[ Part.Ip wn.World.host.Host.ip; Part.Ip_proto 77 ]
             ~remotes:[ [ Part.Ip en.World.host.Host.ip; Part.Ip_proto 77 ] ]
             ())
      in
      Proto.push sess (Msg.of_string "dies at the router"));
  Sim.run inet.World.inet_sim;
  Alcotest.(check bool) "time exceeded received" true
    (List.exists (function Icmp.Time_exceeded _ -> true | _ -> false) !events)

let proto_unreachable_reported () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let i0 = mk n0 and i1 = mk n1 in
  ignore i1;
  let events = ref [] in
  Icmp.on_event i0 (fun ev -> events := ev :: !events);
  (* Send to a protocol number nothing on n1 has enabled. *)
  Tutil.run_in w (fun () ->
      let sess =
        Proto.open_ (Netproto.Ip.proto n0.World.ip)
          ~upper:(Proto.create ~host:n0.World.host ~name:"X" ())
          (Part.v
             ~local:[ Part.Ip n0.World.host.Host.ip; Part.Ip_proto 123 ]
             ~remotes:[ [ Part.Ip n1.World.host.Host.ip; Part.Ip_proto 123 ] ]
             ())
      in
      Proto.push sess (Msg.of_string "nobody listens"));
  Tutil.run_in w (fun () -> Sim.delay w.World.sim 0.1);
  Alcotest.(check bool) "unreachable received" true
    (List.exists
       (function
         | Icmp.Unreachable { code; _ } ->
             code = Icmp.code_proto_unreachable
         | _ -> false)
       !events)

let corrupted_icmp_dropped () =
  let w = World.create () in
  let i0 = mk (World.node w 0) and i1 = mk (World.node w 1) in
  (* Warm ARP first, then corrupt the ICMP payload region of every
     frame: the ICMP checksum must reject it (IP's checksum only covers
     the IP header). *)
  Tutil.run_in w (fun () -> ignore (Icmp.ping i0 ~peer:(World.ip_of w 1) ()));
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Corrupt 50 ]));
  let rtt =
    Tutil.run_in w (fun () -> Icmp.ping i0 ~peer:(World.ip_of w 1) ~timeout:0.2 ())
  in
  Alcotest.(check bool) "no reply to corrupted echo" true (rtt = None);
  Alcotest.(check bool) "checksum rejections counted" true
    (Icmp.stat i1 "rx-bad-checksum" + Icmp.stat i0 "rx-bad-checksum" > 0)

let () =
  Alcotest.run "icmp"
    [
      ( "echo",
        [
          Alcotest.test_case "ping local" `Quick ping_local;
          Alcotest.test_case "ping across router" `Quick ping_across_router;
          Alcotest.test_case "ping timeout" `Quick ping_timeout;
          Alcotest.test_case "payload sizes" `Quick payload_sizes;
          Alcotest.test_case "corruption rejected" `Quick corrupted_icmp_dropped;
        ] );
      ( "errors",
        [
          Alcotest.test_case "ttl exceeded" `Quick ttl_exceeded_reported;
          Alcotest.test_case "protocol unreachable" `Quick
            proto_unreachable_reported;
        ] );
    ]
