open Xkernel
module World = Netproto.World
module M = Rpc.Sprite_mono

(* M.RPC-VIP with counting handlers on node 1. *)
let setup ?(lower = `Vip) w =
  let lower_of (n : World.node) =
    match lower with
    | `Vip -> Netproto.Vip.proto n.World.vip
    | `Ip -> Netproto.Ip.proto n.World.ip
  in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let m0 = M.create ~host:n0.World.host ~lower:(lower_of n0) () in
  let m1 = M.create ~host:n1.World.host ~lower:(lower_of n1) () in
  let execs = ref 0 in
  M.register m1 ~command:1 (fun msg ->
      incr execs;
      Ok msg);
  M.register m1 ~command:2 (fun _ -> Error 9);
  M.serve m1 ();
  let client = ref None in
  let cl () =
    match !client with
    | Some c -> c
    | None ->
        let c = M.connect m0 ~server:n1.World.host.Host.ip () in
        client := Some c;
        c
  in
  (m0, m1, cl, execs)

let call w cl ~command msg = Tutil.run_in w (fun () -> M.call (cl ()) ~command msg)

let basic_echo () =
  let w = World.create () in
  let _, _, cl, execs = setup w in
  let r = call w cl ~command:1 (Msg.of_string "hello sprite") in
  Tutil.check_str "echo" "hello sprite" (Msg.to_string (Tutil.ok_exn "r" r));
  Tutil.check_int "one execution" 1 !execs

let error_status () =
  let w = World.create () in
  let _, _, cl, _ = setup w in
  let r = call w cl ~command:2 Msg.empty in
  Alcotest.(check bool) "remote status" true (r = Error (Rpc.Rpc_error.Remote 9))

let unknown_command () =
  let w = World.create () in
  let _, _, cl, _ = setup w in
  let r = call w cl ~command:77 Msg.empty in
  Alcotest.(check bool) "unknown command errors" true
    (match r with Error (Rpc.Rpc_error.Remote _) -> true | _ -> false)

let internal_fragmentation () =
  let w = World.create () in
  let m0, m1, cl, _ = setup w in
  let payload = Tutil.body 16384 in
  let r = call w cl ~command:1 (Msg.of_string payload) in
  Tutil.check_str "16k each way" payload (Msg.to_string (Tutil.ok_exn "r" r));
  (* 16 request packets + 16 reply packets, all carrying SPRITE_HDR. *)
  Tutil.check_int "client sent 16 fragments" 16 (M.stat m0 "tx-frag");
  Tutil.check_int "server sent 16 fragments" 16 (M.stat m1 "tx-frag")

let large_via_own_fragmentation_stays_on_ethernet () =
  (* M.RPC tells VIP its messages never exceed one fragment, so even a
     16 KB RPC travels over the ethernet path, never IP (section 3.1). *)
  let w = World.create () in
  let n0 = World.node w 0 in
  let _, _, cl, _ = setup w in
  ignore (Tutil.ok_exn "r" (call w cl ~command:1 (Msg.fill 16384 'x')));
  Tutil.check_int "VIP opened ethernet only" 1
    (Tutil.stat (Netproto.Vip.proto n0.World.vip) "open-eth");
  Tutil.check_int "nothing via IP" 0
    (Tutil.stat (Netproto.Vip.proto n0.World.vip) "tx-ip")

let at_most_once_under_duplication () =
  let w = World.create () in
  let _, _, cl, execs = setup w in
  ignore (Tutil.ok_exn "warm" (call w cl ~command:1 (Msg.of_string "w")));
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Duplicate ]));
  for _ = 1 to 5 do
    ignore (Tutil.ok_exn "dup" (call w cl ~command:1 (Msg.of_string "x")))
  done;
  Tutil.run_in w (fun () -> Sim.delay w.World.sim 0.5);
  Tutil.check_int "once per call" 6 !execs

let selective_retransmission () =
  (* Drop one fragment of a 8-fragment request: the client must resend
     only what the server's partial ack reports missing. *)
  let w = World.create () in
  let m0, m1, cl, execs = setup w in
  ignore (Tutil.ok_exn "warm" (call w cl ~command:1 (Msg.of_string "w")));
  let k = ref 0 in
  Wire.set_fault_hook w.World.wire
    (Some
       (fun _ _ ->
         incr k;
         if !k = 3 then [ Wire.Drop ] else []));
  let payload = Tutil.body 8192 in
  let r = call w cl ~command:1 (Msg.of_string payload) in
  Tutil.check_str "recovered" payload (Msg.to_string (Tutil.ok_exn "r" r));
  Tutil.check_int "executed once" 2 !execs;
  Alcotest.(check bool) "server partial-acked" true (M.stat m1 "ack-tx" >= 1);
  (* Selective: far fewer retransmissions than the 8 fragments. *)
  Alcotest.(check bool)
    (Printf.sprintf "selective resend (%d)" (M.stat m0 "retransmit"))
    true
    (M.stat m0 "retransmit" >= 1 && M.stat m0 "retransmit" <= 3)

let lost_reply_cached () =
  let w = World.create () in
  let m1_stats = ref 0 in
  let _, m1, cl, execs = setup w in
  ignore (Tutil.ok_exn "warm" (call w cl ~command:1 (Msg.of_string "w")));
  let armed = ref true in
  let k = ref 0 in
  Wire.set_fault_hook w.World.wire
    (Some
       (fun _ _ ->
         if not !armed then []
         else begin
           incr k;
           if !k = 2 then begin
             armed := false;
             [ Wire.Drop ]
           end
           else []
         end));
  let r = call w cl ~command:1 (Msg.of_string "keep me once") in
  Tutil.check_str "cached reply arrives" "keep me once"
    (Msg.to_string (Tutil.ok_exn "r" r));
  Tutil.check_int "no re-execution" 2 !execs;
  m1_stats := M.stat m1 "cached-reply-tx";
  Alcotest.(check bool) "reply came from cache" true (!m1_stats >= 1)

let timeout_surfaces () =
  let w = World.create () in
  let _, _, cl, _ = setup w in
  ignore (Tutil.ok_exn "warm" (call w cl ~command:1 (Msg.of_string "w")));
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Drop ]));
  let r = call w cl ~command:1 Msg.empty in
  Alcotest.(check bool) "timeout" true (r = Error Rpc.Rpc_error.Timeout)

let server_reboot_detected () =
  let w = World.create () in
  let n1 = World.node w 1 in
  let _, m1, cl, _ = setup w in
  ignore (Tutil.ok_exn "warm" (call w cl ~command:1 (Msg.of_string "w")));
  let fired = ref false in
  Wire.set_fault_hook w.World.wire
    (Some
       (fun _ _ ->
         if !fired then []
         else begin
           fired := true;
           Host.reboot n1.World.host;
           ignore (Proto.control (M.proto m1) Control.Flush_cache);
           [ Wire.Drop ]
         end));
  let r = call w cl ~command:1 (Msg.of_string "during") in
  Alcotest.(check bool) "reboot detected" true (r = Error Rpc.Rpc_error.Rebooted)

let concurrent_channel_pool () =
  let w = World.create () in
  let _, _, cl, execs = setup w in
  let done_count = ref 0 in
  (* force client creation first *)
  ignore (Tutil.ok_exn "warm" (call w cl ~command:1 Msg.empty));
  for i = 1 to 12 do
    World.spawn w (fun () ->
        ignore
          (Tutil.ok_exn "conc"
             (M.call (cl ()) ~command:1 (Msg.fill (i * 100) 'c')));
        incr done_count)
  done;
  World.run w;
  Tutil.check_int "all completed" 12 !done_count;
  Tutil.check_int "all executed" 13 !execs

let equivalent_over_ip () =
  (* Late binding: same protocol code over IP instead of VIP. *)
  let w = World.create () in
  let _, _, cl, _ = setup ~lower:`Ip w in
  let payload = Tutil.body 4000 in
  let r = call w cl ~command:1 (Msg.of_string payload) in
  Tutil.check_str "works over IP" payload (Msg.to_string (Tutil.ok_exn "r" r))

let header_codec_roundtrip =
  let gen =
    QCheck.make
      QCheck.Gen.(
        tup4 (int_bound 0xffff) (int_bound 0xffff) (int_bound 0xffffffff)
          (int_bound 0xffff))
  in
  Tutil.qtest "SPRITE_HDR codec roundtrip" gen (fun (flags, chan, seq, cmd) ->
      let h =
        {
          Rpc.Wire_fmt.Sprite.flags;
          clnt_host = Addr.Ip.v 10 0 0 1;
          srvr_host = Addr.Ip.v 10 0 0 2;
          channel = chan;
          srvr_process = 3;
          sequence_num = seq;
          num_frags = 4;
          frag_mask = 0x8;
          command = cmd;
          boot_id = 77;
          data1_sz = 123;
          data2_sz = 0;
          data1_off = 45;
          data2_off = 0;
        }
      in
      Rpc.Wire_fmt.Sprite.decode (Rpc.Wire_fmt.Sprite.encode h) = Some h)

let () =
  Alcotest.run "sprite_mono"
    [
      ( "calls",
        [
          Alcotest.test_case "basic echo" `Quick basic_echo;
          Alcotest.test_case "error status" `Quick error_status;
          Alcotest.test_case "unknown command" `Quick unknown_command;
          Alcotest.test_case "concurrent channel pool" `Quick concurrent_channel_pool;
          Alcotest.test_case "over IP (late binding)" `Quick equivalent_over_ip;
          header_codec_roundtrip;
        ] );
      ( "fragmentation",
        [
          Alcotest.test_case "16k = 16 packets each way" `Quick internal_fragmentation;
          Alcotest.test_case "stays on ethernet under VIP" `Quick
            large_via_own_fragmentation_stays_on_ethernet;
          Alcotest.test_case "selective retransmission" `Quick selective_retransmission;
        ] );
      ( "at-most-once",
        [
          Alcotest.test_case "duplication" `Quick at_most_once_under_duplication;
          Alcotest.test_case "lost reply cached" `Quick lost_reply_cached;
          Alcotest.test_case "timeout" `Quick timeout_surfaces;
          Alcotest.test_case "server reboot" `Quick server_reboot_detected;
        ] );
    ]
