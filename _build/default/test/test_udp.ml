open Xkernel
module World = Netproto.World

let sink host =
  let received = ref [] in
  let p = Proto.create ~host ~name:"SINK" () in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "sink");
      open_enable = (fun ~upper:_ _ -> invalid_arg "sink");
      open_done = (fun ~upper:_ _ -> invalid_arg "sink");
      demux = (fun ~lower:_ msg -> received := Msg.to_string msg :: !received);
      p_control = (fun _ -> Control.Unsupported);
    };
  (p, received)

let setup ?(checksum = false) w =
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let udp0 =
    Netproto.Udp.create ~host:n0.World.host
      ~lower:(Netproto.Ip.proto n0.World.ip) ~checksum ()
  in
  let udp1 =
    Netproto.Udp.create ~host:n1.World.host
      ~lower:(Netproto.Ip.proto n1.World.ip) ~checksum ()
  in
  (n0, n1, udp0, udp1)

let open_session w (n0 : World.node) (n1 : World.node) udp0 ~sport ~dport =
  Tutil.run_in w (fun () ->
      Proto.open_ (Netproto.Udp.proto udp0)
        ~upper:(fst (sink n0.World.host))
        (Part.v
           ~local:[ Part.Ip n0.World.host.Host.ip; Part.Port sport ]
           ~remotes:[ [ Part.Ip n1.World.host.Host.ip; Part.Port dport ] ]
           ()))

let basic_delivery () =
  let w = World.create () in
  let n0, n1, udp0, udp1 = setup w in
  let p1, got = sink n1.World.host in
  Proto.open_enable (Netproto.Udp.proto udp1) ~upper:p1
    (Part.v ~local:[ Part.Port 1234 ] ());
  let sess = open_session w n0 n1 udp0 ~sport:555 ~dport:1234 in
  Tutil.run_in w (fun () -> Proto.push sess (Msg.of_string "datagram"));
  Alcotest.(check (list string)) "delivered" [ "datagram" ] !got

let port_demux () =
  let w = World.create () in
  let n0, n1, udp0, udp1 = setup w in
  let pa, got_a = sink n1.World.host in
  let pb, got_b = sink n1.World.host in
  Proto.open_enable (Netproto.Udp.proto udp1) ~upper:pa
    (Part.v ~local:[ Part.Port 1 ] ());
  Proto.open_enable (Netproto.Udp.proto udp1) ~upper:pb
    (Part.v ~local:[ Part.Port 2 ] ());
  let s1 = open_session w n0 n1 udp0 ~sport:555 ~dport:1 in
  let s2 = open_session w n0 n1 udp0 ~sport:555 ~dport:2 in
  Tutil.run_in w (fun () ->
      Proto.push s1 (Msg.of_string "one");
      Proto.push s2 (Msg.of_string "two"));
  Alcotest.(check (list string)) "port 1" [ "one" ] !got_a;
  Alcotest.(check (list string)) "port 2" [ "two" ] !got_b

let unbound_port_dropped () =
  let w = World.create () in
  let n0, n1, udp0, udp1 = setup w in
  let sess = open_session w n0 n1 udp0 ~sport:555 ~dport:9999 in
  Tutil.run_in w (fun () -> Proto.push sess (Msg.of_string "void"));
  Tutil.check_int "rx-unbound" 1 (Tutil.stat (Netproto.Udp.proto udp1) "rx-unbound")

let large_message_via_ip_frag () =
  (* UDP depends on IP to fragment (section 3.1). *)
  let w = World.create () in
  let n0, n1, udp0, udp1 = setup w in
  let p1, got = sink n1.World.host in
  Proto.open_enable (Netproto.Udp.proto udp1) ~upper:p1
    (Part.v ~local:[ Part.Port 1234 ] ());
  let sess = open_session w n0 n1 udp0 ~sport:555 ~dport:1234 in
  let payload = Tutil.body 9000 in
  Tutil.run_in w (fun () -> Proto.push sess (Msg.of_string payload));
  (match !got with
  | [ s ] -> Tutil.check_str "9k through IP fragmentation" payload s
  | _ -> Alcotest.fail "expected one delivery");
  Alcotest.(check bool) "IP fragmented" true
    (Tutil.stat (Netproto.Ip.proto (World.node w 0).World.ip) "tx-frag" > 0)

let checksum_detects_payload_corruption () =
  let w = World.create () in
  (* Corrupt a payload byte: eth(14) + ip(20) + udp(8) + 2 *)
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Corrupt 44 ]));
  let n0, n1, udp0, udp1 = setup ~checksum:true w in
  let p1, got = sink n1.World.host in
  Proto.open_enable (Netproto.Udp.proto udp1) ~upper:p1
    (Part.v ~local:[ Part.Port 1234 ] ());
  let sess = open_session w n0 n1 udp0 ~sport:555 ~dport:1234 in
  Tutil.run_in w (fun () -> Proto.push sess (Msg.of_string "precious data"));
  Alcotest.(check (list string)) "dropped, not delivered corrupted" [] !got;
  Tutil.check_int "bad checksum counted" 1
    (Tutil.stat (Netproto.Udp.proto udp1) "rx-bad-checksum")

let no_checksum_lets_corruption_through () =
  (* The checksum-off configuration delivers the damaged payload —
     the contrast that justifies the option. *)
  let w = World.create () in
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Corrupt 44 ]));
  let n0, n1, udp0, udp1 = setup ~checksum:false w in
  let p1, got = sink n1.World.host in
  Proto.open_enable (Netproto.Udp.proto udp1) ~upper:p1
    (Part.v ~local:[ Part.Port 1234 ] ());
  let sess = open_session w n0 n1 udp0 ~sport:555 ~dport:1234 in
  Tutil.run_in w (fun () -> Proto.push sess (Msg.of_string "precious data"));
  match !got with
  | [ s ] -> Alcotest.(check bool) "delivered damaged" false (s = "precious data")
  | _ -> Alcotest.fail "expected delivery"

let udp_over_vip () =
  (* Late binding: the same UDP code runs over VIP instead of IP. *)
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let udp0 =
    Netproto.Udp.create ~host:n0.World.host
      ~lower:(Netproto.Vip.proto n0.World.vip) ()
  in
  let udp1 =
    Netproto.Udp.create ~host:n1.World.host
      ~lower:(Netproto.Vip.proto n1.World.vip) ()
  in
  let p1, got = sink n1.World.host in
  Proto.open_enable (Netproto.Udp.proto udp1) ~upper:p1
    (Part.v ~local:[ Part.Port 80 ] ());
  Tutil.run_in w (fun () ->
      let sess =
        Proto.open_ (Netproto.Udp.proto udp0)
          ~upper:(fst (sink n0.World.host))
          (Part.v
             ~local:[ Part.Ip n0.World.host.Host.ip; Part.Port 81 ]
             ~remotes:[ [ Part.Ip n1.World.host.Host.ip; Part.Port 80 ] ]
             ())
      in
      Proto.push sess (Msg.of_string "via vip"));
  Alcotest.(check (list string)) "delivered over VIP" [ "via vip" ] !got;
  (* UDP advertises IP-sized messages, so VIP opened both paths and the
     small datagram went over the ethernet. *)
  Alcotest.(check bool) "VIP used ethernet path" true
    (Tutil.stat (Netproto.Vip.proto n0.World.vip) "tx-eth" >= 1)

let () =
  Alcotest.run "udp"
    [
      ( "delivery",
        [
          Alcotest.test_case "basic" `Quick basic_delivery;
          Alcotest.test_case "port demux" `Quick port_demux;
          Alcotest.test_case "unbound port" `Quick unbound_port_dropped;
          Alcotest.test_case "large via IP fragmentation" `Quick
            large_message_via_ip_frag;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "detects corruption" `Quick
            checksum_detects_payload_corruption;
          Alcotest.test_case "off lets corruption through" `Quick
            no_checksum_lets_corruption_through;
        ] );
      ( "late-binding",
        [ Alcotest.test_case "UDP over VIP" `Quick udp_over_vip ] );
    ]
