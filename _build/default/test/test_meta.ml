open Xkernel
module World = Netproto.World
module Meta = Rpc.Meta

let lrpc_top w =
  let n = World.node w 0 in
  let f = Rpc.Fragment.create ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip) () in
  let c = Rpc.Channel.create ~host:n.World.host ~lower:(Rpc.Fragment.proto f) () in
  let s = Rpc.Select.create ~host:n.World.host ~channel:c () in
  Rpc.Select.proto s

let measured_stacks_adhere () =
  (* Every configuration the paper measures passes the rule check. *)
  let w = World.create () in
  Alcotest.(check (list string)) "L.RPC clean" []
    (List.map (fun i -> i.Meta.rule) (Meta.check [ lrpc_top w ]));
  let w2 = World.create () in
  let n = World.node w2 0 in
  let m =
    Rpc.Sprite_mono.create ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip) ()
  in
  Alcotest.(check (list string)) "M.RPC clean" []
    (List.map (fun i -> i.Meta.rule) (Meta.check [ Rpc.Sprite_mono.proto m ]))

let fig3b_adheres () =
  let w = World.create () in
  let n = World.node w 0 in
  let vaddr = Netproto.Vip_addr.proto n.World.vip_addr in
  let f = Rpc.Fragment.create ~host:n.World.host ~lower:vaddr () in
  let vsize =
    Netproto.Vip_size.create ~host:n.World.host ~bulk:(Rpc.Fragment.proto f)
      ~direct:vaddr ~arp:n.World.arp
  in
  let c =
    Rpc.Channel.create ~host:n.World.host ~lower:(Netproto.Vip_size.proto vsize) ()
  in
  let s = Rpc.Select.create ~host:n.World.host ~channel:c () in
  Alcotest.(check (list string)) "fig 3(b) clean" []
    (List.map (fun i -> i.Meta.rule) (Meta.check [ Rpc.Select.proto s ]))

let oversized_upper_flagged () =
  (* A protocol claiming 64 KB messages over FRAGMENT (max 16 KB) breaks
     the size-compatibility rule. *)
  let w = World.create () in
  let n = World.node w 0 in
  let f = Rpc.Fragment.create ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip) () in
  let greedy =
    Netproto.Probe.create ~host:n.World.host ~lower:(Rpc.Fragment.proto f)
      ~max_msg:65535 ()
  in
  let issues = Meta.check [ Netproto.Probe.proto greedy ] in
  Alcotest.(check bool) "violation found" true
    (List.exists (fun i -> i.Meta.rule = "size-compatibility") issues)

let well_sized_upper_clean () =
  let w = World.create () in
  let n = World.node w 0 in
  let f = Rpc.Fragment.create ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip) () in
  let modest =
    Netproto.Probe.create ~host:n.World.host ~lower:(Rpc.Fragment.proto f)
      ~max_msg:16000 ()
  in
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun i -> i.Meta.rule) (Meta.check [ Netproto.Probe.proto modest ]))

let mute_interior_flagged () =
  (* An interior protocol that answers no size questions starves the
     layers above of the information VIP-style decisions need. *)
  let w = World.create () in
  let n = World.node w 0 in
  let mute = Proto.create ~host:n.World.host ~name:"MUTE" () in
  Proto.set_ops mute
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "mute");
      open_enable = (fun ~upper:_ _ -> invalid_arg "mute");
      open_done = (fun ~upper:_ _ -> invalid_arg "mute");
      demux = (fun ~lower:_ _ -> ());
      p_control = (fun _ -> Control.Unsupported);
    };
  Proto.declare_below mute [ Netproto.Eth.proto n.World.eth ];
  let top = Proto.create ~host:n.World.host ~name:"TOP" () in
  Proto.set_ops top
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "top");
      open_enable = (fun ~upper:_ _ -> invalid_arg "top");
      open_done = (fun ~upper:_ _ -> invalid_arg "top");
      demux = (fun ~lower:_ _ -> ());
      p_control = (fun _ -> Control.Unsupported);
    };
  Proto.declare_below top [ mute ];
  let issues = Meta.check [ top ] in
  Alcotest.(check bool) "answerability violation" true
    (List.exists
       (fun i -> i.Meta.rule = "answerability" && i.Meta.about = "MUTE")
       issues)

let report_rendering () =
  let w = World.create () in
  let clean = Format.asprintf "%a" Meta.pp_report (Meta.check [ lrpc_top w ]) in
  Alcotest.(check bool) "adherence line" true
    (String.length clean > 0 && String.sub clean 0 11 = "composition")

let () =
  Alcotest.run "meta"
    [
      ( "rules",
        [
          Alcotest.test_case "measured stacks adhere" `Quick measured_stacks_adhere;
          Alcotest.test_case "figure 3(b) adheres" `Quick fig3b_adheres;
          Alcotest.test_case "oversized upper flagged" `Quick oversized_upper_flagged;
          Alcotest.test_case "well-sized upper clean" `Quick well_sized_upper_clean;
          Alcotest.test_case "mute interior flagged" `Quick mute_interior_flagged;
          Alcotest.test_case "report rendering" `Quick report_rendering;
        ] );
    ]
