open Xkernel
module World = Netproto.World
module Probe = Netproto.Probe

let vip_stat (n : World.node) name = Tutil.stat (Netproto.Vip.proto n.World.vip) name

let local_small_uses_eth_only () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  (* Probe advertises max 1480: VIP should not open IP at all. *)
  let pc = Probe.create ~host:n0.World.host ~lower:(Netproto.Vip.proto n0.World.vip) () in
  let ps = Probe.create ~host:n1.World.host ~lower:(Netproto.Vip.proto n1.World.vip) () in
  Probe.serve ps;
  let rtt = Tutil.run_in w (fun () -> Probe.rtt pc ~peer:n1.World.host.Host.ip ()) in
  Alcotest.(check bool) "echoed" true (rtt <> None);
  Tutil.check_int "opened ethernet only" 1 (vip_stat n0 "open-eth");
  Tutil.check_int "no dual session" 0 (vip_stat n0 "open-both");
  Alcotest.(check bool) "sent over ethernet" true (vip_stat n0 "tx-eth" > 0);
  Tutil.check_int "nothing over IP" 0 (vip_stat n0 "tx-ip");
  (* IP protocol object on the client saw no traffic at all. *)
  Tutil.check_int "IP idle" 0 (Tutil.stat (Netproto.Ip.proto n0.World.ip) "tx")

let large_upper_opens_both () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  (* An upper protocol that may push up to 64k: VIP opens ETH and IP,
     then picks per message by length — the single test in push. *)
  let pc =
    Probe.create ~host:n0.World.host ~lower:(Netproto.Vip.proto n0.World.vip)
      ~max_msg:Netproto.Ip.max_packet ()
  in
  let ps =
    Probe.create ~host:n1.World.host ~lower:(Netproto.Vip.proto n1.World.vip)
      ~max_msg:Netproto.Ip.max_packet ()
  in
  Probe.serve ps;
  Tutil.run_in w (fun () ->
      Alcotest.(check bool) "small echo" true
        (Probe.rtt pc ~peer:n1.World.host.Host.ip ~size:100 () <> None);
      Alcotest.(check bool) "large echo" true
        (Probe.rtt pc ~peer:n1.World.host.Host.ip ~size:8000 ~timeout:5.0 ()
        <> None));
  Tutil.check_int "opened both" 1 (vip_stat n0 "open-both");
  Alcotest.(check bool) "small went over ethernet" true (vip_stat n0 "tx-eth" > 0);
  Alcotest.(check bool) "large went over IP" true (vip_stat n0 "tx-ip" > 0)

let remote_peer_uses_ip () =
  let inet = World.create_internet () in
  let wn = World.node inet.World.west 0 in
  let en = World.node inet.World.east 0 in
  let pc = Probe.create ~host:wn.World.host ~lower:(Netproto.Vip.proto wn.World.vip) () in
  let ps = Probe.create ~host:en.World.host ~lower:(Netproto.Vip.proto en.World.vip) () in
  Probe.serve ps;
  let rtt = ref None in
  Sim.spawn inet.World.inet_sim (fun () ->
      rtt := Probe.rtt pc ~peer:en.World.host.Host.ip ~timeout:5.0 ());
  Sim.run inet.World.inet_sim;
  Alcotest.(check bool) "cross-network echo" true (!rtt <> None);
  (* ARP could not resolve the remote peer, so VIP fell back to IP. *)
  Tutil.check_int "opened IP" 1 (vip_stat wn "open-ip");
  Tutil.check_int "never opened ethernet session" 0 (vip_stat wn "open-eth")

let vip_cheaper_than_ip () =
  (* The whole point of Table I: on the local wire, VIP ≈ ETH < IP. *)
  let lat lower_of =
    let w = World.create () in
    let n0 = World.node w 0 and n1 = World.node w 1 in
    let pc = Probe.create ~host:n0.World.host ~lower:(lower_of n0) () in
    let ps = Probe.create ~host:n1.World.host ~lower:(lower_of n1) () in
    Probe.serve ps;
    Tutil.run_in w (fun () ->
        ignore (Probe.rtt pc ~peer:n1.World.host.Host.ip ());
        let t0 = Sim.now w.World.sim in
        for _ = 1 to 20 do
          ignore (Probe.rtt pc ~peer:n1.World.host.Host.ip ())
        done;
        (Sim.now w.World.sim -. t0) /. 20.)
  in
  let via_vip = lat (fun n -> Netproto.Vip.proto n.World.vip) in
  let via_ip = lat (fun n -> Netproto.Ip.proto n.World.ip) in
  Alcotest.(check bool)
    (Printf.sprintf "vip (%.3fms) < ip (%.3fms)" (via_vip *. 1e3) (via_ip *. 1e3))
    true
    (via_vip < via_ip);
  (* and the gap is substantial: IP costs ~0.3-0.4 ms extra round trip *)
  Alcotest.(check bool) "gap > 0.2ms" true (via_ip -. via_vip > 0.2e-3)

let headerless () =
  (* VIP adds no header: the ethernet payload for a VIP-carried probe
     is exactly the probe packet. *)
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let seen_len = ref 0 in
  let tap = Proto.create ~host:n1.World.host ~name:"TAP" () in
  Proto.set_ops tap
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "tap");
      open_enable = (fun ~upper:_ _ -> invalid_arg "tap");
      open_done = (fun ~upper:_ _ -> invalid_arg "tap");
      demux = (fun ~lower:_ msg -> seen_len := Msg.length msg);
      p_control = (fun _ -> Control.Unsupported);
    };
  (* Tap the raw ethernet type VIP maps protocol 200 onto. *)
  Proto.open_enable (Netproto.Eth.proto n1.World.eth) ~upper:tap
    (Part.v ~local:[ Part.Eth_type (Addr.eth_type_of_ip_proto 200) ] ());
  let pc = Probe.create ~host:n0.World.host ~lower:(Netproto.Vip.proto n0.World.vip) () in
  Tutil.run_in w (fun () ->
      ignore (Probe.rtt pc ~peer:n1.World.host.Host.ip ~size:11 ~timeout:0.05 ()));
  (* probe header (5) + payload (11): nothing from VIP. *)
  Tutil.check_int "no VIP header bytes" 16 !seen_len

let vip_addr_returns_lower_session () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let upper = Proto.create ~host:n0.World.host ~name:"UP" () in
  Proto.set_ops upper
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "up");
      open_enable = (fun ~upper:_ _ -> invalid_arg "up");
      open_done = (fun ~upper:_ _ -> invalid_arg "up");
      demux = (fun ~lower:_ _ -> ());
      p_control = (fun _ -> Control.Unsupported);
    };
  let sess =
    Tutil.run_in w (fun () ->
        Proto.open_ (Netproto.Vip_addr.proto n0.World.vip_addr) ~upper
          (Part.v
             ~local:[ Part.Ip n0.World.host.Host.ip; Part.Ip_proto 200 ]
             ~remotes:[ [ Part.Ip n1.World.host.Host.ip; Part.Ip_proto 200 ] ]
             ()))
  in
  (* The session handed back belongs to ETH, not to VIPaddr. *)
  Tutil.check_str "owned by ETH" "ETH" (Proto.name (Proto.session_proto sess))

let probe_swaps_ip_for_vip_unchanged () =
  (* The uniform interface: the same Probe code runs over IP or VIP
     with no change but the protocol object handed to it. *)
  List.iter
    (fun lower_of ->
      let w = World.create () in
      let n0 = World.node w 0 and n1 = World.node w 1 in
      let pc = Probe.create ~host:n0.World.host ~lower:(lower_of n0) () in
      let ps = Probe.create ~host:n1.World.host ~lower:(lower_of n1) () in
      Probe.serve ps;
      let r = Tutil.run_in w (fun () -> Probe.rtt pc ~peer:n1.World.host.Host.ip ()) in
      Alcotest.(check bool) "echo works" true (r <> None))
    [
      (fun (n : World.node) -> Netproto.Ip.proto n.World.ip);
      (fun (n : World.node) -> Netproto.Vip.proto n.World.vip);
      (fun (n : World.node) -> Netproto.Vip_addr.proto n.World.vip_addr);
    ]

let advertisement_gates_ethernet_path () =
  (* Section 3.1's generalization: with the broadcast advertisement
     table in play, VIP takes the ethernet path only toward hosts that
     announced VIP support; everyone else is reached via IP even though
     ARP resolves them. *)
  let w = World.create ~n:3 () in
  let n0 = World.node w 0 and n1 = World.node w 1 and n2 = World.node w 2 in
  (* n0 and n1 run the advertisement protocol; n2 does not. *)
  let adv0 = Netproto.Vip_adv.create ~host:n0.World.host ~eth:n0.World.eth in
  let _adv1 = Netproto.Vip_adv.create ~host:n1.World.host ~eth:n1.World.eth in
  let vip0 =
    Netproto.Vip.create ~host:n0.World.host ~eth:n0.World.eth ~ip:n0.World.ip
      ~arp:n0.World.arp ~adv:adv0 ()
  in
  (* let the beacons fly *)
  Netproto.World.run w;
  Alcotest.(check bool) "n0 learned n1" true
    (Netproto.Vip_adv.supports adv0 n1.World.host.Host.ip);
  Alcotest.(check bool) "n0 did not learn n2" false
    (Netproto.Vip_adv.supports adv0 n2.World.host.Host.ip);
  (* open toward both peers; only the advertiser gets an ETH session *)
  let upper =
    let p = Proto.create ~host:n0.World.host ~name:"SMALL" () in
    Proto.set_ops p
      {
        Proto.open_ = (fun ~upper:_ _ -> invalid_arg "small");
        open_enable = (fun ~upper:_ _ -> invalid_arg "small");
        open_done = (fun ~upper:_ _ -> invalid_arg "small");
        demux = (fun ~lower:_ _ -> ());
        p_control =
          (function
          | Control.Get_max_msg_size -> Control.R_int 100
          | _ -> Control.Unsupported);
      };
    p
  in
  let open_to peer =
    Tutil.run_in w (fun () ->
        ignore
          (Proto.open_ (Netproto.Vip.proto vip0) ~upper
             (Part.v
                ~local:[ Part.Ip n0.World.host.Host.ip; Part.Ip_proto 201 ]
                ~remotes:[ [ Part.Ip peer; Part.Ip_proto 201 ] ]
                ())))
  in
  open_to n1.World.host.Host.ip;
  Tutil.check_int "advertiser: ethernet" 1
    (Tutil.stat (Netproto.Vip.proto vip0) "open-eth");
  open_to n2.World.host.Host.ip;
  Tutil.check_int "non-advertiser: IP fallback" 1
    (Tutil.stat (Netproto.Vip.proto vip0) "open-ip")

let query_reaches_late_joiner () =
  let w = World.create ~n:2 () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let adv0 = Netproto.Vip_adv.create ~host:n0.World.host ~eth:n0.World.eth in
  Netproto.World.run w;
  (* n1 starts advertising only later — its initial beacon predates n0?
     No: both beacons flew already.  Simulate a late joiner by flushing
     n0's table, then querying. *)
  ignore (Proto.control (Netproto.Vip_adv.proto adv0) Control.Flush_cache);
  let _adv1 = Netproto.Vip_adv.create ~host:n1.World.host ~eth:n1.World.eth in
  Tutil.run_in w (fun () -> Netproto.Vip_adv.query adv0);
  Netproto.World.run w;
  Alcotest.(check bool) "query repopulated the table" true
    (Netproto.Vip_adv.supports adv0 n1.World.host.Host.ip)

let graph_rendering () =
  let w = World.create () in
  let n0 = World.node w 0 in
  let s = Format.asprintf "%a" Proto.pp_graph [ Netproto.Vip.proto n0.World.vip ] in
  let contains hay needle =
    let ln = String.length needle and lh = String.length hay in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "VIP (virtual)" true (contains s "VIP (virtual)");
  Alcotest.(check bool) "ETH below" true (contains s "ETH");
  Alcotest.(check bool) "IP below" true (contains s "IP")

let () =
  Alcotest.run "vip"
    [
      ( "path selection",
        [
          Alcotest.test_case "local small: ETH only" `Quick local_small_uses_eth_only;
          Alcotest.test_case "large upper: both, split by size" `Quick
            large_upper_opens_both;
          Alcotest.test_case "remote peer: IP" `Quick remote_peer_uses_ip;
        ] );
      ( "properties",
        [
          Alcotest.test_case "VIP cheaper than IP" `Quick vip_cheaper_than_ip;
          Alcotest.test_case "header-less" `Quick headerless;
          Alcotest.test_case "VIPaddr returns lower session" `Quick
            vip_addr_returns_lower_session;
          Alcotest.test_case "uniform substitution" `Quick
            probe_swaps_ip_for_vip_unchanged;
          Alcotest.test_case "graph rendering" `Quick graph_rendering;
        ] );
      ( "advertisement",
        [
          Alcotest.test_case "table gates ethernet path" `Quick
            advertisement_gates_ethernet_path;
          Alcotest.test_case "query reaches late joiner" `Quick
            query_reaches_late_joiner;
        ] );
    ]
