open Xkernel

let p = Machine.xkernel_sun3

let charge_advances_clock () =
  let sim = Sim.create () in
  let m = Machine.create sim p in
  Sim.spawn sim (fun () ->
      Machine.charge m [ Machine.Busy 0.001; Machine.Busy 0.002 ]);
  Sim.run sim;
  Alcotest.(check (float 1e-12)) "summed" 0.003 (Sim.now sim);
  Alcotest.(check (float 1e-12)) "cpu accounted" 0.003 (Machine.cpu_seconds m)

let zero_charge_free () =
  let sim = Sim.create () in
  let m = Machine.create sim p in
  (* a zero-cost charge must not require a fiber at all *)
  Machine.charge m [];
  Machine.charge m [ Machine.Busy 0. ];
  Alcotest.(check (float 1e-12)) "no time" 0. (Sim.now sim)

let cpu_is_exclusive () =
  let sim = Sim.create () in
  let m = Machine.create sim p in
  let done_at = ref [] in
  for _ = 1 to 3 do
    Sim.spawn sim (fun () ->
        Machine.charge m [ Machine.Busy 1.0 ];
        done_at := Sim.now sim :: !done_at)
  done;
  Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "serialized on one CPU" [ 1.; 2.; 3. ]
    (List.sort compare !done_at)

let two_hosts_parallel () =
  let sim = Sim.create () in
  let m1 = Machine.create sim p and m2 = Machine.create sim p in
  let done_at = ref [] in
  Sim.spawn sim (fun () ->
      Machine.charge m1 [ Machine.Busy 1.0 ];
      done_at := Sim.now sim :: !done_at);
  Sim.spawn sim (fun () ->
      Machine.charge m2 [ Machine.Busy 1.0 ];
      done_at := Sim.now sim :: !done_at);
  Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "independent CPUs overlap" [ 1.; 1. ]
    !done_at

let buffer_scheme_ablation () =
  (* Per-header allocation makes every header cost ~an allocation more:
     the 0.50 vs 0.11 msec per layer contrast of section 5. *)
  let cheap = Machine.op_cost p (Machine.Header 20) in
  let dear =
    Machine.op_cost
      (Machine.with_buffer_scheme Machine.Per_header_alloc p)
      (Machine.Header 20)
  in
  Alcotest.(check (float 1e-9)) "difference is the alloc cost" p.Machine.alloc
    (dear -. cheap)

let profile_ordering () =
  (* The Sprite-kernel and SunOS profiles must be uniformly no cheaper
     than the x-kernel profile on the shared cost axes. *)
  let ops =
    [
      Machine.Layer_crossing;
      Machine.Header 36;
      Machine.Process_switch;
      Machine.Interrupt 64;
      Machine.Device_send 64;
      Machine.Os_per_message;
    ]
  in
  List.iter
    (fun op ->
      let base = Machine.op_cost Machine.xkernel_sun3 op in
      Alcotest.(check bool) "sprite >= xkernel" true
        (Machine.op_cost Machine.sprite_kernel op >= base);
      Alcotest.(check bool) "sunos >= xkernel" true
        (Machine.op_cost Machine.sunos_socket op >= base))
    ops

let per_byte_costs_scale () =
  let small = Machine.op_cost p (Machine.Device_send 64) in
  let large = Machine.op_cost p (Machine.Device_send 1500) in
  Alcotest.(check bool) "larger frame costs more" true (large > small);
  Alcotest.(check (float 1e-9)) "linear in bytes"
    (float_of_int (1500 - 64) *. p.Machine.device_per_byte)
    (large -. small)

let set_profile_switches () =
  let sim = Sim.create () in
  let m = Machine.create sim p in
  Machine.set_profile m Machine.sprite_kernel;
  Alcotest.(check string) "profile swapped" "sprite-kernel"
    (Machine.profile m).Machine.profile_name

let virtual_op_cheaper () =
  Alcotest.(check bool) "virtual < layer crossing" true
    (Machine.op_cost p Machine.Virtual_op
    < Machine.op_cost p Machine.Layer_crossing)

let () =
  Alcotest.run "machine"
    [
      ( "charging",
        [
          Alcotest.test_case "charge advances clock" `Quick charge_advances_clock;
          Alcotest.test_case "zero charge is free" `Quick zero_charge_free;
          Alcotest.test_case "CPU mutual exclusion" `Quick cpu_is_exclusive;
          Alcotest.test_case "hosts run in parallel" `Quick two_hosts_parallel;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "buffer scheme ablation" `Quick buffer_scheme_ablation;
          Alcotest.test_case "profile cost ordering" `Quick profile_ordering;
          Alcotest.test_case "per-byte scaling" `Quick per_byte_costs_scale;
          Alcotest.test_case "profile switching" `Quick set_profile_switches;
          Alcotest.test_case "virtual op cheaper" `Quick virtual_op_cheaper;
        ] );
    ]
