open Xkernel
module World = Netproto.World

(* A minimal upper protocol that records what reaches it and can send
   through a session — used to drive ETH directly. *)
let sink host =
  let received = ref [] in
  let p = Proto.create ~host ~name:"SINK" () in
  Proto.set_ops p
    {
      Proto.open_ = (fun ~upper:_ _ -> invalid_arg "sink");
      open_enable = (fun ~upper:_ _ -> invalid_arg "sink");
      open_done = (fun ~upper:_ _ -> invalid_arg "sink");
      demux = (fun ~lower:_ msg -> received := Msg.to_string msg :: !received);
      p_control = (fun _ -> Control.Unsupported);
    };
  (p, received)

let eth_unicast () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let _, got0 = sink n0.World.host in
  let p1, got1 = sink n1.World.host in
  Proto.open_enable (Netproto.Eth.proto n1.World.eth) ~upper:p1
    (Part.v ~local:[ Part.Eth_type 0x7001 ] ());
  Tutil.run_in w (fun () ->
      let sess =
        Proto.open_ (Netproto.Eth.proto n0.World.eth) ~upper:(fst (sink n0.World.host))
          (Part.v
             ~local:[ Part.Eth n0.World.host.Host.eth; Part.Eth_type 0x7001 ]
             ~remotes:[ [ Part.Eth n1.World.host.Host.eth ] ]
             ())
      in
      Proto.push sess (Msg.of_string "hello"));
  Alcotest.(check (list string)) "delivered to n1" [ "hello" ] !got1;
  Alcotest.(check (list string)) "not echoed to n0" [] !got0

let eth_type_demux () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let pa, got_a = sink n1.World.host in
  let pb, got_b = sink n1.World.host in
  let eth1 = Netproto.Eth.proto n1.World.eth in
  Proto.open_enable eth1 ~upper:pa (Part.v ~local:[ Part.Eth_type 0x7001 ] ());
  Proto.open_enable eth1 ~upper:pb (Part.v ~local:[ Part.Eth_type 0x7002 ] ());
  Tutil.run_in w (fun () ->
      let open_to typ =
        Proto.open_ (Netproto.Eth.proto n0.World.eth)
          ~upper:(fst (sink n0.World.host))
          (Part.v
             ~local:[ Part.Eth n0.World.host.Host.eth; Part.Eth_type typ ]
             ~remotes:[ [ Part.Eth n1.World.host.Host.eth ] ]
             ())
      in
      Proto.push (open_to 0x7001) (Msg.of_string "for-a");
      Proto.push (open_to 0x7002) (Msg.of_string "for-b"));
  Alcotest.(check (list string)) "type 7001" [ "for-a" ] !got_a;
  Alcotest.(check (list string)) "type 7002" [ "for-b" ] !got_b

let eth_unbound_dropped () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  Tutil.run_in w (fun () ->
      let sess =
        Proto.open_ (Netproto.Eth.proto n0.World.eth)
          ~upper:(fst (sink n0.World.host))
          (Part.v
             ~local:[ Part.Eth n0.World.host.Host.eth; Part.Eth_type 0x7003 ]
             ~remotes:[ [ Part.Eth n1.World.host.Host.eth ] ]
             ())
      in
      Proto.push sess (Msg.of_string "nobody-home"));
  Tutil.check_int "counted unbound" 1
    (Tutil.stat (Netproto.Eth.proto n1.World.eth) "rx-unbound")

let eth_wrong_dst_filtered () =
  let w = World.create ~n:3 () in
  let n0 = World.node w 0 and n1 = World.node w 1 and n2 = World.node w 2 in
  let p1, got1 = sink n1.World.host in
  Proto.open_enable (Netproto.Eth.proto n1.World.eth) ~upper:p1
    (Part.v ~local:[ Part.Eth_type 0x7001 ] ());
  Tutil.run_in w (fun () ->
      let sess =
        Proto.open_ (Netproto.Eth.proto n0.World.eth)
          ~upper:(fst (sink n0.World.host))
          (Part.v
             ~local:[ Part.Eth n0.World.host.Host.eth; Part.Eth_type 0x7001 ]
             ~remotes:[ [ Part.Eth n1.World.host.Host.eth ] ]
             ())
      in
      Proto.push sess (Msg.of_string "for n1 only"));
  Alcotest.(check (list string)) "n1 got it" [ "for n1 only" ] !got1;
  (* n2's ETH never even saw it: the device filtered in hardware. *)
  Tutil.check_int "n2 eth rx" 0 (Tutil.stat (Netproto.Eth.proto n2.World.eth) "rx")

let arp_resolves () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let resolved =
    Tutil.run_in w (fun () -> Netproto.Arp.resolve n0.World.arp n1.World.host.Host.ip)
  in
  Alcotest.(check bool) "resolved" true
    (match resolved with
    | Some e -> Addr.Eth.equal e n1.World.host.Host.eth
    | None -> false)

let arp_caches () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  Tutil.run_in w (fun () ->
      ignore (Netproto.Arp.resolve n0.World.arp n1.World.host.Host.ip);
      ignore (Netproto.Arp.resolve n0.World.arp n1.World.host.Host.ip);
      ignore (Netproto.Arp.resolve n0.World.arp n1.World.host.Host.ip));
  Tutil.check_int "one broadcast for three resolves" 1
    (Tutil.stat (Netproto.Arp.proto n0.World.arp) "request-tx")

let arp_gleans_from_request () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  Tutil.run_in w (fun () ->
      ignore (Netproto.Arp.resolve n0.World.arp n1.World.host.Host.ip));
  (* The responder learned the requester's binding from the broadcast. *)
  Alcotest.(check bool) "n1 knows n0" true
    (Netproto.Arp.reverse n1.World.arp n0.World.host.Host.eth
    = Some n0.World.host.Host.ip)

let arp_unresolvable_times_out () =
  let w = World.create () in
  let n0 = World.node w 0 in
  let t0 = ref 0. in
  let resolved =
    Tutil.run_in w (fun () ->
        t0 := Sim.now w.World.sim;
        Netproto.Arp.resolve n0.World.arp (Addr.Ip.v 10 0 0 99))
  in
  Alcotest.(check bool) "no answer" true (resolved = None);
  Tutil.check_int "three tries" 3
    (Tutil.stat (Netproto.Arp.proto n0.World.arp) "request-tx");
  Alcotest.(check bool) "waited for retries" true
    (Sim.now w.World.sim -. !t0 >= 0.15 -. 1e-9)

let arp_broadcast_special () =
  let w = World.create () in
  let n0 = World.node w 0 in
  let r =
    Tutil.run_in w (fun () -> Netproto.Arp.resolve n0.World.arp Addr.Ip.broadcast)
  in
  Alcotest.(check bool) "broadcast maps to broadcast" true
    (r = Some Addr.Eth.broadcast)

let arp_control_interface () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  Tutil.run_in w (fun () ->
      let p = Netproto.Arp.proto n0.World.arp in
      (match Proto.control p (Control.Resolve n1.World.host.Host.ip) with
      | Control.R_eth e ->
          Alcotest.(check bool) "control resolve" true
            (Addr.Eth.equal e n1.World.host.Host.eth)
      | _ -> Alcotest.fail "expected R_eth");
      match Proto.control p (Control.Is_local (Addr.Ip.v 10 0 0 99)) with
      | Control.R_bool b -> Alcotest.(check bool) "not local" false b
      | _ -> Alcotest.fail "expected R_bool")

let arp_lossy_retry () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  (* Drop the first broadcast; the retry succeeds. *)
  Wire.set_fault_hook w.World.wire
    (Some (fun n _ -> if n = 0 then [ Wire.Drop ] else []));
  let resolved =
    Tutil.run_in w (fun () -> Netproto.Arp.resolve n0.World.arp n1.World.host.Host.ip)
  in
  Alcotest.(check bool) "resolved on retry" true (resolved <> None);
  Tutil.check_int "two requests" 2
    (Tutil.stat (Netproto.Arp.proto n0.World.arp) "request-tx")

let () =
  Alcotest.run "eth-arp"
    [
      ( "eth",
        [
          Alcotest.test_case "unicast delivery" `Quick eth_unicast;
          Alcotest.test_case "type demultiplexing" `Quick eth_type_demux;
          Alcotest.test_case "unbound type dropped" `Quick eth_unbound_dropped;
          Alcotest.test_case "hardware dst filter" `Quick eth_wrong_dst_filtered;
        ] );
      ( "arp",
        [
          Alcotest.test_case "resolve" `Quick arp_resolves;
          Alcotest.test_case "cache hit" `Quick arp_caches;
          Alcotest.test_case "gleaning" `Quick arp_gleans_from_request;
          Alcotest.test_case "timeout after retries" `Quick arp_unresolvable_times_out;
          Alcotest.test_case "broadcast address" `Quick arp_broadcast_special;
          Alcotest.test_case "control interface" `Quick arp_control_interface;
          Alcotest.test_case "retry under loss" `Quick arp_lossy_retry;
        ] );
    ]
