(* Shared helpers for the test suites. *)
open Xkernel

let msg = Alcotest.testable Msg.pp Msg.equal

let ip = Alcotest.testable Addr.Ip.pp Addr.Ip.equal

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Run [f] as a fiber in [w] and drive the simulator to completion,
   returning [f]'s result.  Fails the test on deadlock. *)
let run_in (w : Netproto.World.t) f =
  let result = ref None in
  Netproto.World.spawn w (fun () -> result := Some (f ()));
  Netproto.World.run w;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "fiber did not complete (deadlock?)"

(* Same for a bare simulator. *)
let run_sim sim f =
  let result = ref None in
  Sim.spawn sim (fun () -> result := Some (f ()));
  Sim.run sim;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "fiber did not complete (deadlock?)"

let stat p name = Control.int_exn (Proto.control p (Control.Get_stat name))

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected RPC failure: %s" what (Rpc.Rpc_error.to_string e)

let body n = String.init n (fun i -> Char.chr (i * 7 mod 256))

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
