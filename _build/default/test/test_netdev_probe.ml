open Xkernel
module World = Netproto.World
module Probe = Netproto.Probe

(* --- Netdev --- *)

let frame ~dst ~src ~typ payload =
  let w = Codec.W.create () in
  Codec.W.u48 w (Addr.Eth.to_int dst);
  Codec.W.u48 w (Addr.Eth.to_int src);
  Codec.W.u16 w typ;
  Msg.push (Msg.of_string payload) (Codec.W.contents w)

let dst_filter () =
  let w = World.create ~n:3 () in
  let n0 = World.node w 0 and n1 = World.node w 1 and n2 = World.node w 2 in
  let hits1 = ref 0 and hits2 = ref 0 in
  Netdev.set_handler n1.World.dev (fun _ -> incr hits1);
  Netdev.set_handler n2.World.dev (fun _ -> incr hits2);
  World.spawn w (fun () ->
      Netdev.transmit n0.World.dev
        (frame ~dst:n1.World.host.Host.eth ~src:n0.World.host.Host.eth
           ~typ:0x9999 "x"));
  World.run w;
  Tutil.check_int "addressed station" 1 !hits1;
  Tutil.check_int "other station filtered" 0 !hits2

let broadcast_reaches_everyone () =
  let w = World.create ~n:3 () in
  let n0 = World.node w 0 in
  let hits = Array.make 3 0 in
  for i = 1 to 2 do
    Netdev.set_handler (World.node w i).World.dev (fun _ ->
        hits.(i) <- hits.(i) + 1)
  done;
  World.spawn w (fun () ->
      Netdev.transmit n0.World.dev
        (frame ~dst:Addr.Eth.broadcast ~src:n0.World.host.Host.eth ~typ:0x9999
           "b"));
  World.run w;
  Tutil.check_int "n1" 1 hits.(1);
  Tutil.check_int "n2" 1 hits.(2)

let promiscuous_tap () =
  let w = World.create ~n:3 () in
  let n0 = World.node w 0 and n1 = World.node w 1 and n2 = World.node w 2 in
  let snoop = ref 0 in
  Netdev.set_promiscuous n2.World.dev true;
  Netdev.set_handler n2.World.dev (fun _ -> incr snoop);
  Netdev.set_handler n1.World.dev (fun _ -> ());
  World.spawn w (fun () ->
      Netdev.transmit n0.World.dev
        (frame ~dst:n1.World.host.Host.eth ~src:n0.World.host.Host.eth
           ~typ:0x9999 "private"));
  World.run w;
  Tutil.check_int "promiscuous device sees other traffic" 1 !snoop

let peek_dst_works () =
  let f = frame ~dst:(Addr.Eth.v 0xaabbccddeeff) ~src:(Addr.Eth.v 1) ~typ:0 "" in
  Alcotest.(check bool) "peek" true
    (Netdev.peek_dst f = Some (Addr.Eth.v 0xaabbccddeeff));
  Alcotest.(check bool) "runt" true (Netdev.peek_dst (Msg.of_string "ab") = None)

let pipelining_overlaps () =
  (* transmit returns after the driver charge, not after serialization:
     queueing 4 frames costs far less than 4 serializations. *)
  let w = World.create () in
  let n0 = World.node w 0 in
  let queued_at = ref 0. in
  World.spawn w (fun () ->
      for _ = 1 to 4 do
        Netdev.transmit n0.World.dev
          (frame ~dst:(World.node w 1).World.host.Host.eth
             ~src:n0.World.host.Host.eth ~typ:0x9999 (String.make 1400 'x'))
      done;
      queued_at := Sim.now w.World.sim);
  World.run w;
  let serialization =
    float_of_int (Wire.on_wire_bytes 1414 * 8) /. 10e6 *. 4.
  in
  Alcotest.(check bool)
    (Printf.sprintf "queued in %.2fms < 4 serializations %.2fms"
       (!queued_at *. 1e3) (serialization *. 1e3))
    true
    (!queued_at < serialization);
  Alcotest.(check bool) "wire still drained it all" true
    (Sim.now w.World.sim >= serialization)

(* --- Probe --- *)

let probe_rtt_and_timeout () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let pc = Probe.create ~host:n0.World.host ~lower:(Netproto.Vip.proto n0.World.vip) () in
  let ps = Probe.create ~host:n1.World.host ~lower:(Netproto.Vip.proto n1.World.vip) () in
  Probe.serve ps;
  let r1 = Tutil.run_in w (fun () -> Probe.rtt pc ~peer:n1.World.host.Host.ip ()) in
  Alcotest.(check bool) "positive rtt" true
    (match r1 with Some t -> t > 0. | None -> false);
  Tutil.check_int "one echo" 1 (Probe.echoes ps);
  (* now break the wire: rtt must time out, not hang *)
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Drop ]));
  let t0 = ref 0. in
  let r2 =
    Tutil.run_in w (fun () ->
        t0 := Sim.now w.World.sim;
        Probe.rtt pc ~peer:n1.World.host.Host.ip ~timeout:0.25 ())
  in
  Alcotest.(check bool) "timed out" true (r2 = None);
  (* a little send-side CPU time precedes the wait *)
  Alcotest.(check (float 1e-3)) "after roughly the timeout" 0.25
    (Sim.now w.World.sim -. !t0)

let probe_sizes_echoed () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let pc = Probe.create ~host:n0.World.host ~lower:(Netproto.Ip.proto n0.World.ip) () in
  let ps = Probe.create ~host:n1.World.host ~lower:(Netproto.Ip.proto n1.World.ip) () in
  Probe.serve ps;
  Tutil.run_in w (fun () ->
      List.iter
        (fun size ->
          match Probe.rtt pc ~peer:n1.World.host.Host.ip ~size ~timeout:2.0 () with
          | Some _ -> ()
          | None -> Alcotest.failf "size %d timed out" size)
        [ 0; 1; 1400; 5000 ])

let larger_probes_take_longer () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let pc = Probe.create ~host:n0.World.host ~lower:(Netproto.Vip.proto n0.World.vip) () in
  let ps = Probe.create ~host:n1.World.host ~lower:(Netproto.Vip.proto n1.World.vip) () in
  Probe.serve ps;
  let rtt size =
    Tutil.run_in w (fun () ->
        Option.get (Probe.rtt pc ~peer:n1.World.host.Host.ip ~size ()))
  in
  ignore (rtt 0);
  let small = rtt 0 and big = rtt 1400 in
  Alcotest.(check bool)
    (Printf.sprintf "%.3f < %.3f ms" (small *. 1e3) (big *. 1e3))
    true (small < big)

(* --- World topology --- *)

let world_addresses_distinct () =
  let w = World.create ~n:5 () in
  let ips = Array.to_list (Array.map (fun (n : World.node) -> Addr.Ip.to_int n.World.host.Host.ip) w.World.nodes) in
  let eths = Array.to_list (Array.map (fun (n : World.node) -> Addr.Eth.to_int n.World.host.Host.eth) w.World.nodes) in
  Tutil.check_int "distinct ips" 5 (List.length (List.sort_uniq compare ips));
  Tutil.check_int "distinct eths" 5 (List.length (List.sort_uniq compare eths))

let internet_isolated_wires () =
  (* Hosts on different wires cannot ARP each other; only IP+router
     connects them. *)
  let inet = World.create_internet () in
  let wn = World.node inet.World.west 0 in
  let en = World.node inet.World.east 0 in
  let resolved =
    let r = ref (Some Addr.Eth.broadcast) in
    Sim.spawn inet.World.inet_sim (fun () ->
        r := Netproto.Arp.resolve wn.World.arp en.World.host.Host.ip);
    Sim.run inet.World.inet_sim;
    !r
  in
  Alcotest.(check bool) "cross-wire ARP fails" true (resolved = None)

let () =
  Alcotest.run "netdev-probe"
    [
      ( "netdev",
        [
          Alcotest.test_case "destination filter" `Quick dst_filter;
          Alcotest.test_case "broadcast" `Quick broadcast_reaches_everyone;
          Alcotest.test_case "promiscuous tap" `Quick promiscuous_tap;
          Alcotest.test_case "peek_dst" `Quick peek_dst_works;
          Alcotest.test_case "tx pipelining" `Quick pipelining_overlaps;
        ] );
      ( "probe",
        [
          Alcotest.test_case "rtt and timeout" `Quick probe_rtt_and_timeout;
          Alcotest.test_case "payload sizes" `Quick probe_sizes_echoed;
          Alcotest.test_case "size monotonicity" `Quick larger_probes_take_longer;
        ] );
      ( "world",
        [
          Alcotest.test_case "distinct addresses" `Quick world_addresses_distinct;
          Alcotest.test_case "internet wire isolation" `Quick internet_isolated_wires;
        ] );
    ]
