open Xkernel
module World = Netproto.World
module Stream = Rpc.Stream

(* A STREAM pair over a chosen lower layer, with the receiver logging
   every in-order chunk. *)
let setup ?(lower = `Vip) ?window ?rto w =
  let lower_of (n : World.node) =
    match lower with
    | `Vip -> Netproto.Vip.proto n.World.vip
    | `Ip -> Netproto.Ip.proto n.World.ip
  in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let s0 = Stream.create ~host:n0.World.host ~lower:(lower_of n0) ?window ?rto () in
  let s1 = Stream.create ~host:n1.World.host ~lower:(lower_of n1) ?window ?rto () in
  let received = Buffer.create 256 in
  Stream.on_receive s1 (fun ~peer:_ chunk ->
      Buffer.add_string received (Msg.to_string chunk));
  (s0, s1, received)

let send_all w conn payloads =
  Tutil.run_in w (fun () ->
      List.iter (fun p -> Stream.send conn (Msg.of_string p)) payloads;
      Stream.flush conn)

let simple_transfer () =
  let w = World.create () in
  let s0, _, received = setup w in
  let conn = Tutil.run_in w (fun () -> Stream.connect s0 ~peer:(World.ip_of w 1)) in
  send_all w conn [ "hello "; "stream "; "world" ];
  Tutil.check_str "in order, complete" "hello stream world"
    (Buffer.contents received);
  Tutil.check_int "all acked" (Stream.bytes_sent conn) (Stream.bytes_acked conn)

let large_transfer_segments () =
  let w = World.create () in
  let s0, s1, received = setup w in
  let conn = Tutil.run_in w (fun () -> Stream.connect s0 ~peer:(World.ip_of w 1)) in
  let payload = Tutil.body 50_000 in
  send_all w conn [ payload ];
  Tutil.check_str "50 KB intact" payload (Buffer.contents received);
  Alcotest.(check bool) "many segments" true (Stream.stat s0 "seg-tx" > 30);
  Tutil.check_int "no retransmissions on a clean wire" 0
    (Stream.stat s0 "retransmit");
  ignore s1

let window_blocks_sender () =
  (* With a window of 2 segments, the sender cannot run ahead of the
     acks: at most window segments are ever unacknowledged. *)
  let w = World.create () in
  let s0, _, received = setup ~window:2 w in
  let conn = Tutil.run_in w (fun () -> Stream.connect s0 ~peer:(World.ip_of w 1)) in
  let payload = Tutil.body 20_000 in
  send_all w conn [ payload ];
  Tutil.check_str "still intact" payload (Buffer.contents received)

let loss_recovered () =
  let w = World.create () in
  let s0, _, received = setup w in
  let conn = Tutil.run_in w (fun () -> Stream.connect s0 ~peer:(World.ip_of w 1)) in
  (* warm the path (ARP) with a small chunk, then lose every 7th frame *)
  send_all w conn [ "warm." ];
  let k = ref 0 in
  Wire.set_fault_hook w.World.wire
    (Some
       (fun _ _ ->
         incr k;
         if !k mod 7 = 0 then [ Wire.Drop ] else []));
  let payload = Tutil.body 30_000 in
  send_all w conn [ payload ];
  Tutil.check_str "delivered despite loss" ("warm." ^ payload)
    (Buffer.contents received);
  Alcotest.(check bool) "retransmissions happened" true
    (Stream.stat s0 "retransmit" > 0)

let reorder_recovered () =
  let w = World.create () in
  let s0, s1, received = setup w in
  let conn = Tutil.run_in w (fun () -> Stream.connect s0 ~peer:(World.ip_of w 1)) in
  send_all w conn [ "warm." ];
  let k = ref 0 in
  Wire.set_fault_hook w.World.wire
    (Some
       (fun _ _ ->
         incr k;
         if !k mod 5 = 0 then [ Wire.Delay 0.004 ] else []));
  let payload = Tutil.body 20_000 in
  send_all w conn [ payload ];
  Tutil.check_str "in-order despite reordering" ("warm." ^ payload)
    (Buffer.contents received);
  Alcotest.(check bool) "receiver buffered out-of-order segments" true
    (Stream.stat s1 "rx-ooo" > 0)

let duplication_exactly_once () =
  let w = World.create () in
  let s0, _, received = setup w in
  let conn = Tutil.run_in w (fun () -> Stream.connect s0 ~peer:(World.ip_of w 1)) in
  send_all w conn [ "warm." ];
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Duplicate ]));
  let payload = Tutil.body 10_000 in
  send_all w conn [ payload ];
  Tutil.check_str "exactly once" ("warm." ^ payload) (Buffer.contents received)

let breaks_when_peer_gone () =
  let w = World.create () in
  let s0, _, _ = setup ~rto:0.01 w in
  let conn = Tutil.run_in w (fun () -> Stream.connect s0 ~peer:(World.ip_of w 1)) in
  send_all w conn [ "warm." ];
  Wire.set_fault_hook w.World.wire (Some (fun _ _ -> [ Wire.Drop ]));
  let broke =
    Tutil.run_in w (fun () ->
        match
          Stream.send conn (Msg.of_string (Tutil.body 20_000));
          Stream.flush conn
        with
        | () -> false
        | exception Rpc.Stream.Broken -> true)
  in
  Alcotest.(check bool) "stream breaks after retries" true broke;
  Alcotest.(check bool) "send on broken stream raises" true
    (Tutil.run_in w (fun () ->
         match Stream.send conn (Msg.of_string "more") with
         | () -> false
         | exception Rpc.Stream.Broken -> true))

let bidirectional () =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let s0 =
    Stream.create ~host:n0.World.host ~lower:(Netproto.Vip.proto n0.World.vip) ()
  in
  let s1 =
    Stream.create ~host:n1.World.host ~lower:(Netproto.Vip.proto n1.World.vip) ()
  in
  let got0 = Buffer.create 64 and got1 = Buffer.create 64 in
  Stream.on_receive s0 (fun ~peer:_ c -> Buffer.add_string got0 (Msg.to_string c));
  Stream.on_receive s1 (fun ~peer:_ c -> Buffer.add_string got1 (Msg.to_string c));
  Tutil.run_in w (fun () ->
      let c01 = Stream.connect s0 ~peer:n1.World.host.Host.ip in
      Stream.send c01 (Msg.of_string "ping from 0");
      Stream.flush c01);
  Tutil.run_in w (fun () ->
      let c10 = Stream.connect s1 ~peer:n0.World.host.Host.ip in
      Stream.send c10 (Msg.of_string "pong from 1");
      Stream.flush c10);
  Tutil.check_str "0 -> 1" "ping from 0" (Buffer.contents got1);
  Tutil.check_str "1 -> 0" "pong from 1" (Buffer.contents got0)

let same_code_over_ip_and_vip () =
  (* The section 5 point: unlike TCP, STREAM has no compiled-in
     dependency on IP, so it runs over VIP (and the local ethernet
     path) untouched. *)
  List.iter
    (fun lower ->
      let w = World.create () in
      let s0, _, received = setup ~lower w in
      let conn =
        Tutil.run_in w (fun () -> Stream.connect s0 ~peer:(World.ip_of w 1))
      in
      let payload = Tutil.body 8_000 in
      send_all w conn [ payload ];
      Tutil.check_str "transfer ok" payload (Buffer.contents received))
    [ `Ip; `Vip ];
  (* and over VIP the local stream actually used the ethernet path *)
  let w = World.create () in
  let s0, _, _ = setup ~lower:`Vip w in
  let conn = Tutil.run_in w (fun () -> Stream.connect s0 ~peer:(World.ip_of w 1)) in
  send_all w conn [ Tutil.body 4000 ];
  Alcotest.(check bool) "ethernet path" true
    (Tutil.stat (Netproto.Vip.proto (World.node w 0).World.vip) "tx-eth" > 0);
  Tutil.check_int "IP untouched" 0
    (Tutil.stat (Netproto.Ip.proto (World.node w 0).World.ip) "tx")

let prop_integrity_random_chunks_and_faults =
  Tutil.qtest ~count:25 "byte stream intact under random chunks + faults"
    QCheck.(pair (int_bound 1000) (list_of_size (Gen.int_range 1 6) (int_range 1 4000)))
    (fun (seed, sizes) ->
      let w = World.create ~seed () in
      let s0, _, received = setup w in
      let conn =
        Tutil.run_in w (fun () -> Stream.connect s0 ~peer:(World.ip_of w 1))
      in
      (* warm, then mild random faults *)
      send_all w conn [ "w" ];
      let rng = Random.State.make [| seed |] in
      Wire.set_fault_hook w.World.wire
        (Some
           (fun _ _ ->
             match Random.State.int rng 12 with
             | 0 -> [ Wire.Drop ]
             | 1 -> [ Wire.Duplicate ]
             | 2 -> [ Wire.Delay 0.002 ]
             | _ -> []));
      let chunks = List.map Tutil.body sizes in
      send_all w conn chunks;
      String.equal (Buffer.contents received) ("w" ^ String.concat "" chunks))

let () =
  Alcotest.run "stream"
    [
      ( "transfer",
        [
          Alcotest.test_case "simple in-order" `Quick simple_transfer;
          Alcotest.test_case "50 KB, many segments" `Quick large_transfer_segments;
          Alcotest.test_case "window blocks sender" `Quick window_blocks_sender;
          Alcotest.test_case "bidirectional" `Quick bidirectional;
          Alcotest.test_case "IP and VIP, unchanged" `Quick same_code_over_ip_and_vip;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "loss recovered" `Quick loss_recovered;
          Alcotest.test_case "reorder recovered" `Quick reorder_recovered;
          Alcotest.test_case "duplication: exactly once" `Quick
            duplication_exactly_once;
          Alcotest.test_case "breaks when peer gone" `Quick breaks_when_peer_gone;
          prop_integrity_random_chunks_and_faults;
        ] );
    ]
