open Xkernel
module World = Netproto.World
module Fragment = Rpc.Fragment
module Channel = Rpc.Channel
module Select = Rpc.Select

(* Full L.RPC stacks (SELECT-CHANNEL-FRAGMENT-VIP) on both nodes. *)
let setup ?(n_channels = 8) w =
  let mk (n : World.node) =
    let f = Fragment.create ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip) () in
    let c = Channel.create ~host:n.World.host ~lower:(Fragment.proto f) ~n_channels () in
    Select.create ~host:n.World.host ~channel:c ()
  in
  let sel0 = mk (World.node w 0) and sel1 = mk (World.node w 1) in
  (sel0, sel1)

let dispatch_by_command () =
  let w = World.create () in
  let sel0, sel1 = setup w in
  Select.register sel1 ~command:1 (fun _ -> Ok (Msg.of_string "one"));
  Select.register sel1 ~command:2 (fun _ -> Ok (Msg.of_string "two"));
  Select.serve sel1;
  let r1, r2 =
    Tutil.run_in w (fun () ->
        let cl = Select.connect sel0 ~server:(World.ip_of w 1) in
        ( Select.call cl ~command:1 Msg.empty,
          Select.call cl ~command:2 Msg.empty ))
  in
  Tutil.check_str "command 1" "one" (Msg.to_string (Tutil.ok_exn "c1" r1));
  Tutil.check_str "command 2" "two" (Msg.to_string (Tutil.ok_exn "c2" r2))

let unknown_command_status () =
  let w = World.create () in
  let sel0, sel1 = setup w in
  Select.serve sel1;
  let r =
    Tutil.run_in w (fun () ->
        let cl = Select.connect sel0 ~server:(World.ip_of w 1) in
        Select.call cl ~command:42 Msg.empty)
  in
  Alcotest.(check bool) "no-such-command status" true
    (r = Error (Rpc.Rpc_error.Remote Rpc.Wire_fmt.Select.status_no_command))

let handler_error_status () =
  let w = World.create () in
  let sel0, sel1 = setup w in
  Select.register sel1 ~command:1 (fun _ -> Error 7);
  Select.serve sel1;
  let r =
    Tutil.run_in w (fun () ->
        let cl = Select.connect sel0 ~server:(World.ip_of w 1) in
        Select.call cl ~command:1 Msg.empty)
  in
  Alcotest.(check bool) "handler status propagates" true
    (r = Error (Rpc.Rpc_error.Remote 7))

let arguments_and_results_roundtrip () =
  let w = World.create () in
  let sel0, sel1 = setup w in
  Select.register sel1 ~command:5 (fun req ->
      (* reverse the payload *)
      let s = Msg.to_string req in
      Ok (Msg.of_string (String.init (String.length s) (fun i ->
          s.[String.length s - 1 - i]))));
  Select.serve sel1;
  let r =
    Tutil.run_in w (fun () ->
        let cl = Select.connect sel0 ~server:(World.ip_of w 1) in
        Select.call cl ~command:5 (Msg.of_string "abcdef"))
  in
  Tutil.check_str "computed on server" "fedcba" (Msg.to_string (Tutil.ok_exn "r" r))

let large_args_and_reply () =
  let w = World.create () in
  let sel0, sel1 = setup w in
  Select.register sel1 ~command:1 (fun req -> Ok req);
  Select.serve sel1;
  let payload = Tutil.body 16000 in
  let r =
    Tutil.run_in w (fun () ->
        let cl = Select.connect sel0 ~server:(World.ip_of w 1) in
        Select.call cl ~command:1 (Msg.of_string payload))
  in
  Tutil.check_str "16k each way" payload (Msg.to_string (Tutil.ok_exn "r" r))

let channel_pool_blocks () =
  (* With 2 channels, a third concurrent call must wait for a free
     channel — "it blocks if there are none available". *)
  let w = World.create () in
  let sel0, sel1 = setup ~n_channels:2 w in
  let active = ref 0 and peak = ref 0 and finished = ref 0 in
  Select.register sel1 ~command:1 (fun msg ->
      incr active;
      peak := max !peak !active;
      Sim.delay (Host.sim (World.node w 1).World.host) 0.01;
      decr active;
      Ok msg);
  Select.serve sel1;
  let cl = ref None in
  World.spawn w (fun () -> cl := Some (Select.connect sel0 ~server:(World.ip_of w 1)));
  World.run w;
  let cl = Option.get !cl in
  for _ = 1 to 4 do
    World.spawn w (fun () ->
        ignore (Tutil.ok_exn "pooled" (Select.call cl ~command:1 Msg.empty));
        incr finished)
  done;
  World.run w;
  Tutil.check_int "all completed" 4 !finished;
  Alcotest.(check bool) "never more than 2 in flight" true (!peak <= 2);
  Tutil.check_int "pool refilled" 2 (Select.free_channels cl)

let sessions_cached () =
  let w = World.create () in
  let sel0, sel1 = setup w in
  Select.register sel1 ~command:1 (fun m -> Ok m);
  Select.serve sel1;
  Tutil.run_in w (fun () ->
      let cl = Select.connect sel0 ~server:(World.ip_of w 1) in
      for _ = 1 to 20 do
        ignore (Tutil.ok_exn "r" (Select.call cl ~command:1 Msg.empty))
      done);
  (* Exactly one ARP exchange happened: everything else was cached. *)
  Tutil.check_int "one ARP request" 1
    (Tutil.stat (Netproto.Arp.proto (World.node w 0).World.arp) "request-tx")

let forwarding_select () =
  (* Three hosts: client -> forwarder -> worker.  Swapping SELECT for
     SELECT-FWD moves execution without touching CHANNEL/FRAGMENT. *)
  let w = World.create ~n:3 () in
  let mk (n : World.node) =
    let f = Fragment.create ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip) () in
    Channel.create ~host:n.World.host ~lower:(Fragment.proto f) ()
  in
  let ch0 = mk (World.node w 0) in
  let ch1 = mk (World.node w 1) in
  let ch2 = mk (World.node w 2) in
  let sel0 = Select.create ~host:(World.node w 0).World.host ~channel:ch0 () in
  let fwd =
    Rpc.Select_fwd.create ~host:(World.node w 1).World.host ~channel:ch1
      ~delegate:(World.ip_of w 2) ()
  in
  Rpc.Select_fwd.serve fwd;
  let sel2 = Select.create ~host:(World.node w 2).World.host ~channel:ch2 () in
  Select.register sel2 ~command:9 (fun m ->
      Ok (Msg.push m "worker:"));
  Select.serve sel2;
  let r =
    Tutil.run_in w (fun () ->
        let cl = Select.connect sel0 ~server:(World.ip_of w 1) in
        Select.call cl ~command:9 (Msg.of_string "job"))
  in
  Tutil.check_str "executed on the worker" "worker:job"
    (Msg.to_string (Tutil.ok_exn "fwd" r));
  Tutil.check_int "forwarder relayed" 1 (Rpc.Select_fwd.forwarded fwd);
  Tutil.check_int "worker handled" 1 (Select.calls_handled sel2)

let rdgram_reliable_delivery () =
  let w = World.create () in
  let mk (n : World.node) =
    let f = Fragment.create ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip) () in
    Channel.create ~host:n.World.host ~lower:(Fragment.proto f) ()
  in
  let ch0 = mk (World.node w 0) and ch1 = mk (World.node w 1) in
  let rd0 = Rpc.Rdgram.create ~host:(World.node w 0).World.host ~channel:ch0 () in
  let rd1 = Rpc.Rdgram.create ~host:(World.node w 1).World.host ~channel:ch1 () in
  let inbox = ref [] in
  Rpc.Rdgram.listen rd1 (fun _src msg -> inbox := Msg.to_string msg :: !inbox);
  (* lose some frames: the datagram still arrives exactly once *)
  let n = ref 0 in
  Wire.set_fault_hook w.World.wire
    (Some
       (fun _ _ ->
         incr n;
         if !n = 3 then [ Wire.Drop ] else []));
  Tutil.run_in w (fun () ->
      match Rpc.Rdgram.send rd0 ~dest:(World.ip_of w 1) (Msg.of_string "dgram") with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send failed: %s" (Rpc.Rpc_error.to_string e));
  Alcotest.(check (list string)) "delivered exactly once" [ "dgram" ] !inbox

let () =
  Alcotest.run "select"
    [
      ( "dispatch",
        [
          Alcotest.test_case "by command" `Quick dispatch_by_command;
          Alcotest.test_case "unknown command" `Quick unknown_command_status;
          Alcotest.test_case "handler error status" `Quick handler_error_status;
          Alcotest.test_case "args/results roundtrip" `Quick
            arguments_and_results_roundtrip;
          Alcotest.test_case "16k args and reply" `Quick large_args_and_reply;
        ] );
      ( "channels",
        [
          Alcotest.test_case "pool blocks when exhausted" `Quick channel_pool_blocks;
          Alcotest.test_case "sessions cached" `Quick sessions_cached;
        ] );
      ( "alternative selectors",
        [
          Alcotest.test_case "forwarding SELECT" `Quick forwarding_select;
          Alcotest.test_case "reliable datagram on CHANNEL" `Quick
            rdgram_reliable_delivery;
        ] );
    ]
