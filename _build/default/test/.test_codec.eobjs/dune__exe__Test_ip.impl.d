test/test_ip.ml: Addr Alcotest Control Host List Msg Netproto Part Proto Sim String Tutil Wire Xkernel
