test/test_addr_part.mli:
