test/test_addr_part.ml: Addr Alcotest Control Format Host List Option Part Proto QCheck Sim Stats String Tutil Xkernel
