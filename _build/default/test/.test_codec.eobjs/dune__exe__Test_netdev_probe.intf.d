test/test_netdev_probe.mli:
