test/test_fragment.ml: Alcotest Control Gen Host List Msg Netproto Part Proto QCheck Random Rpc Sim String Tutil Wire Xkernel
