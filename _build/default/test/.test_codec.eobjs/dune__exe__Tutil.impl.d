test/tutil.ml: Addr Alcotest Char Control Msg Netproto Proto QCheck QCheck_alcotest Rpc Sim String Xkernel
