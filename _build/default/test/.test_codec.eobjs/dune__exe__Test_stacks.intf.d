test/test_stacks.mli:
