test/test_channel.ml: Alcotest Control Host Msg Netproto Part Proto Rpc Sim Tutil Wire Xkernel
