test/test_machine.ml: Alcotest List Machine Sim Xkernel
