test/test_psync.mli:
