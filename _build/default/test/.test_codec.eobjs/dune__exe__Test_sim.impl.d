test/test_sim.ml: Addr Alcotest Event Host List Sim Tutil Xkernel
