test/test_icmp.mli:
