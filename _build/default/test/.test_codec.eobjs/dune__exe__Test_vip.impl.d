test/test_vip.ml: Addr Alcotest Control Format Host List Msg Netproto Part Printf Proto Sim String Tutil Xkernel
