test/test_eth_arp.ml: Addr Alcotest Control Host Msg Netproto Part Proto Sim Tutil Wire Xkernel
