test/test_stacks.ml: Alcotest Float List Machine Msg Netproto Printf Random Rpc Tutil Wire Xkernel
