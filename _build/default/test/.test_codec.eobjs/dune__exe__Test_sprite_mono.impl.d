test/test_sprite_mono.ml: Addr Alcotest Control Host Msg Netproto Printf Proto QCheck Rpc Sim Tutil Wire Xkernel
