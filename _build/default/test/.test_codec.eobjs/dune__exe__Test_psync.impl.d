test/test_psync.ml: Alcotest Array List Msg Netproto Psync Rpc Sim Tutil Wire Xkernel
