test/test_sunrpc.mli:
