test/test_udp.mli:
