test/test_select.ml: Alcotest Host Msg Netproto Option Rpc Sim String Tutil Wire Xkernel
