test/test_sunrpc.ml: Alcotest Msg Netproto Printf Rpc Sim Tutil Wire Xkernel
