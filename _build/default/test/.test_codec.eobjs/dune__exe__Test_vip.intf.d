test/test_vip.mli:
