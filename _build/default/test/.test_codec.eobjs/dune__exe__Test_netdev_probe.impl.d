test/test_netdev_probe.ml: Addr Alcotest Array Codec Host List Msg Netdev Netproto Option Printf Sim String Tutil Wire Xkernel
