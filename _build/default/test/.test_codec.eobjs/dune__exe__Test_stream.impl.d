test/test_stream.ml: Alcotest Buffer Gen Host List Msg Netproto QCheck Random Rpc String Tutil Wire Xkernel
