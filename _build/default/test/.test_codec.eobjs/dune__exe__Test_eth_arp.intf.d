test/test_eth_arp.mli:
