test/test_wire.ml: Alcotest List Msg Sim String Tutil Wire Xkernel
