test/test_meta.ml: Alcotest Control Format List Netproto Proto Rpc String Xkernel
