test/test_codec.ml: Alcotest Bytes Char Codec Gen QCheck String Tutil Xkernel
