test/test_udp.ml: Alcotest Control Host Msg Netproto Part Proto Tutil Wire Xkernel
