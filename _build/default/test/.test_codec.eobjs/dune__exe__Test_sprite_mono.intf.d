test/test_sprite_mono.mli:
