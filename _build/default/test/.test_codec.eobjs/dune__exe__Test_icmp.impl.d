test/test_icmp.ml: Alcotest Control Host List Msg Netproto Part Proto Sim Tutil Wire Xkernel
