test/test_msg.ml: Alcotest Char Gen List Msg Option QCheck String Tutil Xkernel
