(* STREAM over VIP: the stream-oriented composition of section 5.

   The paper explains why TCP cannot sit on VIP — it reads the IP
   header's length field and checksums across it.  STREAM carries its
   own length field, so the same code runs over IP or VIP; over VIP a
   local transfer stays on the raw ethernet path with no IP header on
   any packet.

   Run with:  dune exec examples/stream_transfer.exe *)

open Xkernel
module World = Netproto.World
module Stream = Rpc.Stream

let transfer ~label ~lower_of ~drop =
  let w = World.create () in
  let n0 = World.node w 0 and n1 = World.node w 1 in
  let s0 = Stream.create ~host:n0.World.host ~lower:(lower_of n0) () in
  let s1 = Stream.create ~host:n1.World.host ~lower:(lower_of n1) () in
  let received = Buffer.create 4096 in
  Stream.on_receive s1 (fun ~peer:_ chunk ->
      Buffer.add_string received (Msg.to_string chunk));
  let payload = String.init 65536 (fun i -> Char.chr (32 + (i mod 95))) in
  World.spawn w (fun () ->
      let conn = Stream.connect s0 ~peer:n1.World.host.Host.ip in
      (* lose frames mid-transfer; go-back-N recovers *)
      Wire.set_drop_rate w.World.wire drop;
      let t0 = Sim.now w.World.sim in
      Stream.send conn (Msg.of_string payload);
      Stream.flush conn;
      let dt = Sim.now w.World.sim -. t0 in
      Printf.printf "%-14s 64 KB in %6.1f ms (%.0f kB/s), %d segments, %d retransmitted — %s\n"
        label (dt *. 1e3)
        (65536. /. dt /. 1000.)
        (Stream.stat s0 "seg-tx")
        (Stream.stat s0 "retransmit")
        (if Buffer.contents received = payload then "intact" else "CORRUPT"));
  World.run w;
  w

let () =
  print_endline "One STREAM implementation, three delivery substrates:\n";
  let w_vip =
    transfer ~label:"over VIP" ~drop:0.
      ~lower_of:(fun (n : World.node) -> Netproto.Vip.proto n.World.vip)
  in
  let _ =
    transfer ~label:"over IP" ~drop:0.
      ~lower_of:(fun (n : World.node) -> Netproto.Ip.proto n.World.ip)
  in
  let _ =
    transfer ~label:"VIP + 3% loss" ~drop:0.03
      ~lower_of:(fun (n : World.node) -> Netproto.Vip.proto n.World.vip)
  in
  let vip0 = (World.node w_vip 0).World.vip in
  Printf.printf
    "\nOver VIP the whole 64 KB travelled the raw ethernet path: VIP sent %d\n\
     frames that way and the IP protocol object transmitted %d datagrams.\n\
     TCP could not do this (section 5: it depends on the IP header);\n\
     STREAM can, because its only dependency on the layer below is the\n\
     uniform interface.\n"
    (Control.int_exn (Proto.control (Netproto.Vip.proto vip0) (Control.Get_stat "tx-eth")))
    (Control.int_exn
       (Proto.control (Netproto.Ip.proto (World.node w_vip 0).World.ip)
          (Control.Get_stat "tx")))
