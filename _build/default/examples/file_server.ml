(* A Sprite-flavoured remote file server over layered RPC.

   Sprite was a network operating system whose kernel-to-kernel file
   traffic ran over exactly the RPC protocol this repository rebuilds;
   this example serves READ / WRITE / STAT procedures whose bulk
   replies exercise FRAGMENT the way Sprite's 16 KB file blocks did.

   Run with:  dune exec examples/file_server.exe *)

open Xkernel
module World = Netproto.World

let cmd_read = 10
let cmd_write = 11
let cmd_stat = 12

(* Tiny argument codecs over the byte codec the headers use. *)
let encode_name_and_data name data =
  let w = Codec.W.create () in
  Codec.W.u16 w (String.length name);
  Codec.W.bytes w name;
  Codec.W.bytes w data;
  Msg.of_string (Codec.W.contents w)

let decode_name_and_data msg =
  let r = Codec.R.of_string (Msg.to_string msg) in
  let n = Codec.R.u16 r in
  let name = Codec.R.bytes r n in
  (name, Codec.R.bytes r (Codec.R.remaining r))

let () =
  let w = World.create () in
  let client_node = World.node w 0 and server_node = World.node w 1 in
  let build (n : World.node) =
    let fragment =
      Rpc.Fragment.create ~host:n.World.host
        ~lower:(Netproto.Vip.proto n.World.vip) ()
    in
    let channel =
      Rpc.Channel.create ~host:n.World.host
        ~lower:(Rpc.Fragment.proto fragment) ()
    in
    (fragment, Rpc.Select.create ~host:n.World.host ~channel ())
  in
  let _, client_sel = build client_node in
  let server_frag, server_sel = build server_node in

  (* The "filesystem": name -> contents. *)
  let files : (string, string) Hashtbl.t = Hashtbl.create 8 in
  Rpc.Select.register server_sel ~command:cmd_write (fun req ->
      let name, data = decode_name_and_data req in
      Hashtbl.replace files name data;
      Ok Msg.empty);
  Rpc.Select.register server_sel ~command:cmd_read (fun req ->
      let name, _ = decode_name_and_data req in
      match Hashtbl.find_opt files name with
      | Some data -> Ok (Msg.of_string data)
      | None -> Error 2 (* ENOENT *));
  Rpc.Select.register server_sel ~command:cmd_stat (fun req ->
      let name, _ = decode_name_and_data req in
      let size =
        match Hashtbl.find_opt files name with
        | Some data -> String.length data
        | None -> -1
      in
      let w = Codec.W.create () in
      Codec.W.u32 w (size land 0xffffffff);
      Ok (Msg.of_string (Codec.W.contents w)));
  Rpc.Select.serve server_sel;

  World.spawn w (fun () ->
      let cl =
        Rpc.Select.connect client_sel ~server:server_node.World.host.Host.ip
      in
      let call cmd msg =
        match Rpc.Select.call cl ~command:cmd msg with
        | Ok reply -> reply
        | Error e -> failwith (Rpc.Rpc_error.to_string e)
      in
      (* Write a 12 KB file: the request fragments on the way out. *)
      let block = String.init 12288 (fun i -> Char.chr (33 + (i mod 90))) in
      let t0 = Sim.now w.World.sim in
      ignore (call cmd_write (encode_name_and_data "/etc/motd" block));
      Printf.printf "wrote 12 KB in %.2f ms\n" ((Sim.now w.World.sim -. t0) *. 1e3);
      (* Stat it. *)
      let stat = call cmd_stat (encode_name_and_data "/etc/motd" "") in
      let size = Codec.R.u32 (Codec.R.of_string (Msg.to_string stat)) in
      Printf.printf "stat: %d bytes\n" size;
      (* Read it back: now the 12 KB reply fragments. *)
      let t1 = Sim.now w.World.sim in
      let back = call cmd_read (encode_name_and_data "/etc/motd" "") in
      Printf.printf "read 12 KB in %.2f ms — %s\n"
        ((Sim.now w.World.sim -. t1) *. 1e3)
        (if Msg.to_string back = block then "contents intact" else "CORRUPTED");
      (* A missing file surfaces as the handler's status code. *)
      (match Rpc.Select.call cl ~command:cmd_read (encode_name_and_data "/no/such" "") with
      | Error (Rpc.Rpc_error.Remote 2) -> print_endline "missing file: ENOENT, as expected"
      | _ -> print_endline "missing file: unexpected result"));
  World.run w;
  Printf.printf
    "\nFRAGMENT on the server handled %d packets for those transfers\n"
    (Control.int_exn
       (Proto.control (Rpc.Fragment.proto server_frag) (Control.Get_stat "rx-frag")))
