(* Mix-and-match RPCs (section 5 of the paper).

   Sun RPC decomposed into SUN_SELECT + REQUEST_REPLY plus a library of
   optional authentication layers, recomposed three ways:

   1. SUN_SELECT - REQUEST_REPLY - VIP         (classic, zero-or-more)
   2. SUN_SELECT - REQUEST_REPLY - FRAGMENT    (bulk without IP)
   3. SUN_SELECT - CHANNEL - FRAGMENT          (at-most-once upgrade)
   and 1 again with AUTH_UNIX slotted in underneath.

   Run with:  dune exec examples/mix_and_match.exe *)

open Xkernel
module World = Netproto.World
module Sun = Rpc.Sun_select

let prog = 100003
let vers = 2
let proc_count = 1

let demo name ~mk_stack =
  let w = World.create () in
  let executions = ref 0 in
  let sun0 = mk_stack (World.node w 0) in
  let sun1 = mk_stack (World.node w 1) in
  Sun.register sun1 ~prog ~vers ~proc:proc_count (fun msg ->
      incr executions;
      Ok msg);
  Sun.serve sun1;
  (* Duplicate every frame: semantics differences become visible. *)
  Wire.set_dup_rate w.World.wire 1.0;
  World.spawn w (fun () ->
      let cl = Sun.connect sun0 ~server:(World.ip_of w 1) ~prog ~vers in
      let payload = Msg.fill 9000 'd' in
      for _ = 1 to 3 do
        match Sun.call cl ~proc:proc_count payload with
        | Ok reply -> assert (Msg.length reply = 9000)
        | Error e -> Printf.printf "  call failed: %s\n" (Rpc.Rpc_error.to_string e)
      done);
  (try World.run w with Failure m -> Printf.printf "  %s\n" m);
  Printf.printf "%-44s 3 calls -> %d executions\n" name !executions

let () =
  print_endline "Composing Sun RPC from building blocks:\n";
  demo "SUN_SELECT / REQUEST_REPLY / VIP" ~mk_stack:(fun (n : World.node) ->
      let rr =
        Rpc.Request_reply.create ~host:n.World.host
          ~lower:(Netproto.Vip.proto n.World.vip) ()
      in
      Sun.create ~host:n.World.host
        ~transaction:(Sun.over_request_reply rr ~proto_num:98));
  demo "SUN_SELECT / REQUEST_REPLY / FRAGMENT / VIP"
    ~mk_stack:(fun (n : World.node) ->
      let frag =
        Rpc.Fragment.create ~host:n.World.host
          ~lower:(Netproto.Vip.proto n.World.vip) ()
      in
      let rr =
        Rpc.Request_reply.create ~host:n.World.host
          ~lower:(Rpc.Fragment.proto frag) ()
      in
      Sun.create ~host:n.World.host
        ~transaction:(Sun.over_request_reply rr ~proto_num:98));
  demo "SUN_SELECT / CHANNEL / FRAGMENT / VIP" ~mk_stack:(fun (n : World.node) ->
      let frag =
        Rpc.Fragment.create ~host:n.World.host
          ~lower:(Netproto.Vip.proto n.World.vip) ()
      in
      let ch =
        Rpc.Channel.create ~host:n.World.host ~lower:(Rpc.Fragment.proto frag) ()
      in
      Sun.create ~host:n.World.host
        ~transaction:(Sun.over_channel ch ~proto_num:98));
  demo "SUN_SELECT / REQUEST_REPLY / AUTH_UNIX / VIP"
    ~mk_stack:(fun (n : World.node) ->
      let auth =
        Rpc.Auth.unix ~host:n.World.host ~lower:(Netproto.Vip.proto n.World.vip)
          ~uid:100 ~gid:10
          ~allow:(fun ~uid ~gid:_ -> uid = 100)
          ()
      in
      let rr =
        Rpc.Request_reply.create ~host:n.World.host ~lower:(Rpc.Auth.proto auth) ()
      in
      Sun.create ~host:n.World.host
        ~transaction:(Sun.over_request_reply rr ~proto_num:98));
  print_endline
    "\nEvery frame was duplicated on the wire.  The bare REQUEST_REPLY stack\n\
     re-executes duplicated requests (zero-or-more semantics); the stacks\n\
     with FRAGMENT or CHANNEL below absorb the duplicates (FRAGMENT's\n\
     recently-completed cache, CHANNEL's at-most-once filter) — and only\n\
     the CHANNEL swap makes that a guarantee rather than an accident.\n\
     All without touching SUN_SELECT: the paper's mix-and-match argument."
