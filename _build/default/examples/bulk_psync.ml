(* Psync reusing FRAGMENT for bulk conversation messages.

   Three hosts hold a conversation with 16 KB messages.  FRAGMENT — the
   bulk-transfer protocol carved out of Sprite RPC — carries them,
   which is exactly why the paper made FRAGMENT unreliable: Psync wants
   big messages but must not inherit request/reply semantics
   (sections 3.2 and 5).

   Run with:  dune exec examples/bulk_psync.exe *)

open Xkernel
module World = Netproto.World

let () =
  let w = World.create ~n:3 () in
  let members = [ World.ip_of w 0; World.ip_of w 1; World.ip_of w 2 ] in
  let frag_of = Hashtbl.create 3 in
  let join i =
    let n = World.node w i in
    let fragment =
      Rpc.Fragment.create ~host:n.World.host
        ~lower:(Netproto.Vip.proto n.World.vip) ()
    in
    Hashtbl.replace frag_of i fragment;
    let ps =
      Psync.create ~host:n.World.host ~lower:(Rpc.Fragment.proto fragment) ()
    in
    Psync.join ps ~conv_id:42 ~members
  in
  let convs = ref [] in
  World.spawn w (fun () -> convs := List.map join [ 0; 1; 2 ]);
  World.run w;
  let c0, c1, c2 =
    match !convs with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  (* Everyone logs what they see, with the context that came along. *)
  let watch name cv =
    Psync.on_deliver cv (fun ~sender ~id ~context msg ->
        Printf.printf "  [%6.2f ms] %s <- %s: %d bytes (msg %d, context: %s)\n"
          (Sim.now w.World.sim *. 1e3)
          name
          (Addr.Ip.to_string sender)
          (Msg.length msg) id.Psync.seq
          (if context = [] then "none"
           else
             String.concat ", "
               (List.map
                  (fun (c : Psync.msg_id) ->
                    Printf.sprintf "%s#%d" (Addr.Ip.to_string c.origin) c.seq)
                  context)))
  in
  watch "h1" c1;
  watch "h2" c2;
  watch "h0" c0;
  (* Drop ~5% of frames: FRAGMENT's NACKs and Psync's context-driven
     resends keep the conversation causally intact anyway. *)
  Wire.set_drop_rate w.World.wire 0.05;
  World.spawn w (fun () ->
      print_endline "h0 posts a 16 KB report:";
      ignore (Psync.send c0 (Msg.fill 16000 'R'));
      Sim.delay w.World.sim 0.05;
      print_endline "h1 replies (in the context of h0's report):";
      ignore (Psync.send c1 (Msg.fill 2000 'r'));
      Sim.delay w.World.sim 0.05;
      print_endline "h2 follows up on both:";
      ignore (Psync.send c2 (Msg.fill 16000 'f'));
      Sim.delay w.World.sim 0.5);
  World.run w;
  let frag0 : Rpc.Fragment.t = Hashtbl.find frag_of 0 in
  Printf.printf
    "\nh0's FRAGMENT instance carried %d packets for those messages\n"
    (Control.int_exn
       (Proto.control (Rpc.Fragment.proto frag0) (Control.Get_stat "tx-frag")));
  Printf.printf "deliveries: h0=%d h1=%d h2=%d (each host sees the 2 it didn't send)\n"
    (Psync.delivered c0) (Psync.delivered c1) (Psync.delivered c2)
