(* Quickstart: build the layered RPC stack of the paper and make a call.

   Run with:  dune exec examples/quickstart.exe *)

open Xkernel
module World = Netproto.World

let () =
  (* Two simulated Sun 3/75s on an isolated 10 Mb/s ethernet. *)
  let w = World.create () in
  let client_node = World.node w 0 and server_node = World.node w 1 in

  (* Compose the paper's layered RPC on each host, bottom up:
     FRAGMENT over VIP, CHANNEL over FRAGMENT, SELECT over CHANNEL. *)
  let build (n : World.node) =
    let fragment =
      Rpc.Fragment.create ~host:n.World.host
        ~lower:(Netproto.Vip.proto n.World.vip) ()
    in
    let channel =
      Rpc.Channel.create ~host:n.World.host
        ~lower:(Rpc.Fragment.proto fragment) ()
    in
    Rpc.Select.create ~host:n.World.host ~channel ()
  in
  let client_sel = build client_node in
  let server_sel = build server_node in

  (* Register a procedure on the server: command 7 upcases its argument. *)
  Rpc.Select.register server_sel ~command:7 (fun request ->
      Ok (Msg.of_string (String.uppercase_ascii (Msg.to_string request))));
  Rpc.Select.serve server_sel;

  (* Protocol code runs in simulator fibers. *)
  World.spawn w (fun () ->
      let cl = Rpc.Select.connect client_sel ~server:server_node.World.host.Host.ip in
      match Rpc.Select.call cl ~command:7 (Msg.of_string "hello, x-kernel") with
      | Ok reply ->
          Printf.printf "reply: %S  (round trip %.2f ms of simulated time)\n"
            (Msg.to_string reply)
            (Sim.now w.World.sim *. 1e3)
      | Error e -> Printf.printf "call failed: %s\n" (Rpc.Rpc_error.to_string e));
  World.run w;

  (* The protocol graph we just used (the paper's Figure 3a). *)
  print_endline "\nprotocol graph:";
  Format.printf "%a" Proto.pp_graph [ Rpc.Select.proto client_sel ]
