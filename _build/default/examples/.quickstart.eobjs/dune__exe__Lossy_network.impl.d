examples/lossy_network.ml: Control List Msg Netproto Printf Proto Rpc String Wire Xkernel
