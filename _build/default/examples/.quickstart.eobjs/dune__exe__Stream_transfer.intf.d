examples/stream_transfer.mli:
