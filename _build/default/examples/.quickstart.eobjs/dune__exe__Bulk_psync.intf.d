examples/bulk_psync.mli:
