examples/quickstart.mli:
