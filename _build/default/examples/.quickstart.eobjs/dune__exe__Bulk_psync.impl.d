examples/bulk_psync.ml: Addr Control Hashtbl List Msg Netproto Printf Proto Psync Rpc Sim String Wire Xkernel
