examples/quickstart.ml: Format Host Msg Netproto Printf Proto Rpc Sim String Xkernel
