examples/mix_and_match.ml: Msg Netproto Printf Rpc Wire Xkernel
