examples/file_server.ml: Char Codec Control Hashtbl Host Msg Netproto Printf Proto Rpc Sim String Xkernel
