examples/mix_and_match.mli:
