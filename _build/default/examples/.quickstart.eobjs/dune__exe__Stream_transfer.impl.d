examples/stream_transfer.ml: Buffer Char Control Host Msg Netproto Printf Proto Rpc Sim String Wire Xkernel
