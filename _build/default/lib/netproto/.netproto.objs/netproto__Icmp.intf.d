lib/netproto/icmp.mli: Ip Xkernel
