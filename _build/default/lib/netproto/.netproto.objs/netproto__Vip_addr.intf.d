lib/netproto/vip_addr.mli: Arp Eth Ip Xkernel
