lib/netproto/vip_addr.ml: Addr Arp Control Eth Host Ip Part Proto Stats Xkernel
