lib/netproto/eth.mli: Xkernel
