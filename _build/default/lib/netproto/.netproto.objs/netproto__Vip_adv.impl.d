lib/netproto/vip_adv.ml: Addr Codec Eth Hashtbl Host Machine Msg Part Proto Sim Stats Xkernel
