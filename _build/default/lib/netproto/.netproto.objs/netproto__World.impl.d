lib/netproto/world.ml: Addr Arp Array Eth Host Ip Machine Netdev Printf Sim Vip Vip_addr Wire Xkernel
