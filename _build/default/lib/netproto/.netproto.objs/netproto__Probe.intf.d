lib/netproto/probe.mli: Xkernel
