lib/netproto/vip_size.mli: Arp Xkernel
