lib/netproto/probe.ml: Addr Codec Control Hashtbl Host Machine Msg Part Proto Sim Stats Xkernel
