lib/netproto/udp.mli: Xkernel
