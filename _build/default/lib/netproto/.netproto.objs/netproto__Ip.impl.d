lib/netproto/ip.ml: Addr Arp Bytes Codec Control Eth Event Hashtbl Host Int List Machine Msg Option Part Printf Proto Stats Xkernel
