lib/netproto/vip.mli: Arp Eth Ip Vip_adv Xkernel
