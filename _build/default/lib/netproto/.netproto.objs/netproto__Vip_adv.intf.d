lib/netproto/vip_adv.mli: Eth Xkernel
