lib/netproto/vip_size.ml: Addr Arp Control Hashtbl Host Lower_id Msg Option Part Printf Proto Stats Xkernel
