lib/netproto/lower_id.mli: Arp Xkernel
