lib/netproto/ip.mli: Arp Eth Xkernel
