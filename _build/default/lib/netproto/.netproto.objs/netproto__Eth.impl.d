lib/netproto/eth.ml: Addr Codec Control Hashtbl Host Machine Msg Netdev Option Part Printf Proto Stats Xkernel
