lib/netproto/world.mli: Arp Eth Ip Vip Vip_addr Xkernel
