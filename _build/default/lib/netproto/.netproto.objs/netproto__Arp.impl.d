lib/netproto/arp.ml: Addr Codec Control Eth Hashtbl Host List Machine Msg Part Proto Sim Stats Xkernel
