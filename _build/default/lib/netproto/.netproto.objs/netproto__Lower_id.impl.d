lib/netproto/lower_id.ml: Addr Arp Control Proto Xkernel
