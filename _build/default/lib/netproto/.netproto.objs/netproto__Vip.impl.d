lib/netproto/vip.ml: Addr Arp Control Eth Hashtbl Host Ip Lower_id Msg Option Part Printf Proto Stats Vip_adv Xkernel
