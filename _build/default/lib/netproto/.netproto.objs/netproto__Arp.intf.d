lib/netproto/arp.mli: Eth Xkernel
