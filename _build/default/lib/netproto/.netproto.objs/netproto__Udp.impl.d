lib/netproto/udp.ml: Addr Codec Control Hashtbl Host Machine Msg Option Part Printf Proto Stats Xkernel
