lib/netproto/icmp.ml: Addr Bytes Codec Control Hashtbl Host Ip Machine Msg Part Proto Sim Stats Xkernel
