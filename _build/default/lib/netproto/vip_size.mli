(** VIPsize — size-based virtual protocol (section 4.3).

    Selects between a bulk-transfer path (FRAGMENT in the paper's
    Figure 3(b)) and a direct path (VIPaddr over ETH/IP) based on
    message size.  "Like VIP, VIPsize touches every message sent through
    the protocol stack" — so it charges the same single-test cost as
    VIP — while FRAGMENT is bypassed entirely for small messages.  This
    is the configuration that recovers monolithic-RPC latency from the
    layered pieces: SELECT-CHANNEL-VIPsize measured 1.78 msec against
    M.RPC-VIP's 1.79.

    The protocols on either side are passed in at creation, keeping
    VIPsize generic: any lower pair with the same delivery semantics
    works (late binding again). *)

type t

val create :
  host:Xkernel.Host.t ->
  bulk:Xkernel.Proto.t ->
  direct:Xkernel.Proto.t ->
  arp:Arp.t ->
  t
(** [bulk] carries messages larger than the direct path's optimal
    packet size (typically FRAGMENT over VIPaddr); [direct] carries the
    rest (typically VIPaddr).  [arp] is needed to identify peers behind
    raw ethernet sessions on the receive path. *)

val proto : t -> Xkernel.Proto.t
