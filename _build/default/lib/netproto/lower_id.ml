open Xkernel

let identify ~arp lower =
  match Proto.session_control lower Control.Get_peer_host with
  | Control.R_ip peer_ip ->
      let proto_num =
        Control.int_exn (Proto.session_control lower Control.Get_peer_proto)
      in
      (* An ethernet-type answer can only come through the non-IP branch
         below, so a plain answer here is already an IP protocol
         number. *)
      Some (peer_ip, proto_num)
  | _ -> (
      match
        ( Proto.session_control lower Control.Get_peer_eth,
          Proto.session_control lower Control.Get_peer_proto )
      with
      | Control.R_eth peer_eth, Control.R_int eth_type -> (
          match
            (Arp.reverse arp peer_eth, Addr.ip_proto_of_eth_type eth_type)
          with
          | Some peer_ip, Some proto_num -> Some (peer_ip, proto_num)
          | _ -> None)
      | _ -> None)
