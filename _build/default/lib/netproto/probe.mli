(** Probe — a minimal echo protocol for measuring raw stack latency.

    The first row of Table III ("VIP", 1.12 msec) is the round-trip
    time of a message through the bare delivery stack, with no RPC
    machinery above it.  Probe is the measurement harness for such
    rows: a 5-byte header (kind, sequence number), a client that sends
    and waits, and a server that echoes.  It is also the simplest
    possible example of a complete x-kernel protocol (~100 lines,
    matching the paper's claim that trivial protocols cost ~0.11 msec
    per layer). *)

type t

val create :
  host:Xkernel.Host.t ->
  lower:Xkernel.Proto.t ->
  ?proto_num:int ->
  ?max_msg:int ->
  ?port:int ->
  ?user_level:bool ->
  unit ->
  t
(** [proto_num] (default 200) identifies Probe to the stack below;
    [max_msg] (default 1480) is what Probe answers to
    [Get_max_msg_size] — VIP reads it at open time.  [port] adds a
    [Port] component to the participants (required when [lower] is
    UDP).  [user_level] charges a user/kernel boundary crossing per
    message, for user-to-user measurements like the paper's intro UDP
    comparison (the section 4 experiments are kernel-to-kernel). *)

val proto : t -> Xkernel.Proto.t

val serve : t -> unit
(** Passively enable: echo every request back to its sender. *)

val rtt :
  t -> peer:Xkernel.Addr.Ip.t -> ?size:int -> ?timeout:float -> unit -> float option
(** [rtt t ~peer ()] sends a probe of [size] payload bytes (default 0)
    and returns the round-trip time in virtual seconds, or [None] after
    [timeout] (default 1 s).  Blocks; call from a fiber. *)

val echoes : t -> int
(** Number of requests this instance has echoed. *)
