(** VIP — Virtual IP (section 3.1 of the paper).

    A header-less *virtual protocol*: provides IP's semantics
    (unreliable delivery to hosts named by IP address) but dynamically
    multiplexes each message onto ETH or IP.  At [open_] time it

    - asks the invoking (upper) protocol, via
      [control Get_max_msg_size], the largest message it will ever push;
    - decides whether the destination is on the local wire by trying to
      resolve its IP address with ARP;

    and opens an ETH session, an IP session, or both.  After that, "the
    only overhead it adds to message delivery is the cost of the single
    test in VIP push": [push] compares the message length against the
    ethernet MTU and forwards to the corresponding lower session.

    Upper protocols identify themselves with an 8-bit IP protocol
    number; on the ethernet path VIP maps it into a reserved range of
    256 ethernet types ({!Xkernel.Addr.eth_type_of_ip_proto}). *)

type t

val create :
  host:Xkernel.Host.t ->
  eth:Eth.t ->
  ip:Ip.t ->
  arp:Arp.t ->
  ?adv:Vip_adv.t ->
  unit ->
  t
(** Without [adv], VIP assumes every ARP-reachable host also runs VIP
    (the paper's baseline assumption).  With [adv], the ethernet path
    is used only toward hosts that advertised VIP support through the
    broadcast protocol — the generalization section 3.1 sketches. *)

val proto : t -> Xkernel.Proto.t

(** Participants: active [open_] needs [Ip dst] in the peer and
    [Ip_proto n] in either participant; [open_enable] needs
    [Ip_proto n] and enables *both* lower paths.  Sessions answer
    [Get_peer_host], [Get_max_packet], [Get_opt_packet].

    Statistics (via [Get_stat]): ["tx-eth"], ["tx-ip"], ["open-eth"],
    ["open-ip"], ["open-both"] — the tests assert path selection with
    these. *)
