(** Ethernet protocol (ETH in the paper's figures).

    The bottom of every configuration: 14-byte header (destination,
    source, 16-bit type), 1500-byte MTU, broadcast.  Demultiplexes
    incoming frames on the type field to whichever upper protocol
    enabled it — 65,536 possible upper protocols, which is what gives
    VIP room to map the 256 IP protocol numbers into an unused range
    (section 3.1). *)

type t

val create : host:Xkernel.Host.t -> dev:Xkernel.Netdev.t -> t
(** Creates the protocol object and installs itself as the device's
    receive handler. *)

val proto : t -> Xkernel.Proto.t

val mtu : int
(** 1500 — the paper's ethernet packet size. *)

(** Participants: an active [open_] needs [Eth dst] in the peer
    participant and [Eth_type ty] in either participant; [open_enable]
    needs [Eth_type ty].  Sessions answer [Get_mtu], [Get_max_packet],
    [Get_opt_packet], [Get_my_eth], [Get_peer_eth], [Get_peer_proto]. *)
