(** VIPaddr — open-time-only virtual protocol (section 4.3).

    Selects between ETH and IP by destination address, exactly like VIP,
    but "is only involved at open time; it opens a lower-level IP or ETH
    session and returns it rather than returning a session of its own".
    Consequently it adds *zero* per-message overhead: the session a
    caller gets back from [open_] belongs to ETH or IP, and incoming
    messages are delivered directly to the caller.

    Because VIPaddr never sees messages, it cannot fall back between
    paths per message — the caller's advertised maximum message size
    must fit the chosen path (which is why the paper pairs it with
    VIPsize, which splits traffic by size *above* it). *)

type t

val create : host:Xkernel.Host.t -> eth:Eth.t -> ip:Ip.t -> arp:Arp.t -> t
val proto : t -> Xkernel.Proto.t

(** [open_ ~upper part] returns an ETH session when the peer resolves
    locally via ARP, an IP session otherwise.  [open_enable] enables
    [upper] on both lower protocols directly. *)
