(** Peer identification for header-less protocols.

    A virtual protocol attaches no header, so when a message comes up
    from below it must learn *who* sent it from the lower session
    itself, via [control] — the paper's "Information Loss" observation
    in action.  An IP-like session answers [Get_peer_host] directly; an
    ethernet session is identified through the reverse ARP cache plus
    the VIP ethernet-type mapping. *)

val identify :
  arp:Arp.t ->
  Xkernel.Proto.session ->
  (Xkernel.Addr.Ip.t * Xkernel.Addr.ip_proto) option
(** [identify ~arp lower] is the (peer IP, IP protocol number) pair
    behind [lower], or [None] if the session cannot be identified. *)
