(** User Datagram Protocol.

    Port-demultiplexed unreliable datagrams over any lower protocol that
    delivers to IP addresses (IP or VIP — the late binding is the
    point).  UDP "sends arbitrarily large messages (i.e., it depends on
    IP to fragment large messages)" (section 3.1), so its advertised
    maximum message size is the lower protocol's maximum packet.

    The paper notes (section 5) that moving UDP under VIP is hard *in
    general* because two 16-bit ports cannot be mapped into an 8-bit IP
    protocol number when VIP needs ETH types for them; here UDP keeps
    its own header (ports travel in-band), so composing it over VIP
    works, while the mapping caveat is a documented design limit.

    The optional checksum covers a source/destination pseudo-header
    obtained from the lower session via [control] — exactly the
    information-loss pattern the paper discusses for TCP. *)

type t

val create :
  host:Xkernel.Host.t -> lower:Xkernel.Proto.t -> ?checksum:bool -> unit -> t
(** [create ~host ~lower ()] opens nothing until sessions are created.
    [checksum] defaults to [false] (SunOS-era default). *)

val proto : t -> Xkernel.Proto.t

val header_bytes : int
(** 8. *)

val ip_proto_udp : int
(** 17. *)

(** Participants: active [open_] needs [Ip dst] and [Port dport] in the
    peer; the local [Port] defaults to an ephemeral one.  [open_enable]
    needs a local [Port].  Sessions answer [Get_my_port],
    [Get_peer_port], [Get_peer_host], [Get_max_packet]. *)
