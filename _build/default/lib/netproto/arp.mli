(** Address Resolution Protocol.

    Maps IP host addresses to ethernet addresses over broadcast
    request/unicast reply, with a gleaning cache.  Two clients in this
    repository: IP (next-hop resolution) and VIP, which uses ARP
    reachability as its locality test — "If ARP can resolve the address,
    then the destination host must be on the local ethernet"
    (section 3.1). *)

type t

val create : host:Xkernel.Host.t -> eth:Eth.t -> t
(** Registers on [eth] with the ARP ethernet type and pre-loads its own
    binding. *)

val proto : t -> Xkernel.Proto.t

val resolve : t -> Xkernel.Addr.Ip.t -> Xkernel.Addr.Eth.t option
(** [resolve t ip] returns the ethernet address of [ip] if [ip] is
    reachable on the local wire: from cache, or by broadcasting requests
    (3 tries, 50 ms apart).  Blocks the calling fiber.  The broadcast IP
    address resolves to the broadcast ethernet address. *)

val reverse : t -> Xkernel.Addr.Eth.t -> Xkernel.Addr.Ip.t option
(** Reverse cache lookup — lets header-less virtual protocols identify
    the IP peer behind an incoming ethernet session. *)

val add_entry : t -> Xkernel.Addr.Ip.t -> Xkernel.Addr.Eth.t -> unit
(** Static table entry (tests, gateways). *)

val cache_size : t -> int

(** The protocol object answers [Resolve] (blocking; [R_eth] or
    [R_bool false]), [Reverse_resolve], and [Is_local]. *)
