(** Internet Control Message Protocol.

    Part of the Arpanet suite the x-kernel carried (the paper's
    introduction lists RFC 792 among the implemented protocols).  Two
    roles here:

    - {b echo}: {!ping} measures reachability and round-trip time
      through the real IP path (including across the router of
      {!World.create_internet});
    - {b errors}: IP reports undeliverable traffic through its error
      hook, and ICMP turns the reports into Time-Exceeded /
      Destination-Unreachable messages sent back to the source — so a
      TTL loop or an unbound protocol number is observable instead of a
      silent drop.

    Header: type (1), code (1), checksum (2), identifier (2),
    sequence (2), then the payload (for errors: the offending
    datagram's IP header plus eight bytes, per the RFC). *)

type t

val create : host:Xkernel.Host.t -> ip:Ip.t -> t
(** Registers on [ip] with protocol number 1 and installs itself as the
    instance's error reporter. *)

val proto : t -> Xkernel.Proto.t

val ping :
  t ->
  peer:Xkernel.Addr.Ip.t ->
  ?payload:int ->
  ?timeout:float ->
  unit ->
  float option
(** Echo round-trip time in virtual seconds, or [None] on timeout.
    Blocks; call from a fiber. *)

type event =
  | Echo_reply of { from : Xkernel.Addr.Ip.t; seq : int }
  | Time_exceeded of { from : Xkernel.Addr.Ip.t }
  | Unreachable of { from : Xkernel.Addr.Ip.t; code : int }

val on_event : t -> (event -> unit) -> unit
(** Observe incoming ICMP traffic (errors arrive here too). *)

val code_proto_unreachable : int
val code_host_unreachable : int

val stat : t -> string -> int
