(** VIP capability advertisement.

    VIP's ARP-reachability test assumes every host on the local
    ethernet also runs VIP; the paper notes that "a more general
    solution would be to maintain a table of hosts on the local network
    that support VIP.  This table could be dynamically maintained by
    running a broadcast-based protocol that advertizes the protocols
    that a given host supports; this approach is currently used in
    4.3BSD Unix to determine if trailers may be used" (section 3.1).

    This is that protocol: each participating host broadcasts a beacon
    naming its IP address, answers queries, and keeps a table of
    advertisers.  Hand the instance to {!Vip.create} via [?adv] and VIP
    will take the ethernet path only toward hosts that advertised —
    falling back to IP for everyone else, instead of silently sending
    them raw-ethernet packets they would drop.

    Packet: op (1: beacon or query), advertiser IP (4), version (1). *)

type t

val create : host:Xkernel.Host.t -> eth:Eth.t -> t
(** Broadcasts an initial beacon and answers queries. *)

val proto : t -> Xkernel.Proto.t

val supports : t -> Xkernel.Addr.Ip.t -> bool
(** Has this host advertised VIP support?  (The local host always
    counts.) *)

val advertise : t -> unit
(** Re-broadcast the beacon (e.g. after reboot). *)

val query : t -> unit
(** Broadcast a query: everyone re-beacons.  Useful for late joiners. *)

val known : t -> int
(** Number of advertisers in the table. *)
