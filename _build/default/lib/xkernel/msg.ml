type t =
  | Empty
  | Leaf of { data : string; off : int; len : int }
  | Cat of { left : t; right : t; len : int }

let empty = Empty
let length = function Empty -> 0 | Leaf l -> l.len | Cat c -> c.len
let is_empty m = length m = 0

let leaf data off len =
  if len = 0 then Empty else Leaf { data; off; len }

let of_string s = leaf s 0 (String.length s)

let fill n c =
  if n < 0 then invalid_arg "Msg.fill";
  if n = 0 then Empty
  else begin
    (* Share one modest chunk across the whole message so that large
       test payloads do not allocate their full size. *)
    let chunk_len = min n 4096 in
    let chunk = String.make chunk_len c in
    let rec build remaining =
      if remaining <= chunk_len then leaf chunk 0 remaining
      else
        let half = remaining / 2 in
        let left = build half and right = build (remaining - half) in
        Cat { left; right; len = remaining }
    in
    build n
  end

let append a b =
  match (a, b) with
  | Empty, m | m, Empty -> m
  | _ -> Cat { left = a; right = b; len = length a + length b }

let push m h = append (of_string h) m

(* Fold over the leaf substrings of [m] in order. *)
let rec fold_leaves f acc = function
  | Empty -> acc
  | Leaf l -> f acc l.data l.off l.len
  | Cat c -> fold_leaves f (fold_leaves f acc c.left) c.right

let to_string m =
  let buf = Buffer.create (length m) in
  let add () data off len = Buffer.add_substring buf data off len in
  fold_leaves add () m;
  Buffer.contents buf

let rec take m n =
  if n <= 0 then Empty
  else
    match m with
    | Empty -> Empty
    | Leaf l -> if n >= l.len then m else leaf l.data l.off n
    | Cat c ->
        let ll = length c.left in
        if n <= ll then take c.left n
        else if n >= c.len then m
        else append c.left (take c.right (n - ll))

let rec drop m n =
  if n <= 0 then m
  else
    match m with
    | Empty -> Empty
    | Leaf l -> if n >= l.len then Empty else leaf l.data (l.off + n) (l.len - n)
    | Cat c ->
        let ll = length c.left in
        if n >= c.len then Empty
        else if n >= ll then drop c.right (n - ll)
        else append (drop c.left n) c.right

let split m n =
  if n < 0 || n > length m then invalid_arg "Msg.split";
  (take m n, drop m n)

let sub m off len =
  if off < 0 || len < 0 || off + len > length m then invalid_arg "Msg.sub";
  take (drop m off) len

let pop m n =
  if n < 0 || length m < n then None
  else
    let hdr, rest = split m n in
    Some (to_string hdr, rest)

let equal a b = length a = length b && String.equal (to_string a) (to_string b)

let map_byte i f m =
  if i < 0 || i >= length m then invalid_arg "Msg.map_byte";
  let before, rest = split m i in
  let byte, after = split rest 1 in
  let c = f (to_string byte).[0] in
  append before (append (of_string (String.make 1 c)) after)

let pp fmt m =
  let s = to_string m in
  let prefix_len = min 16 (String.length s) in
  let hex = Buffer.create (prefix_len * 2) in
  String.iter
    (fun c -> Buffer.add_string hex (Printf.sprintf "%02x" (Char.code c)))
    (String.sub s 0 prefix_len);
  Format.fprintf fmt "<msg len=%d %s%s>" (length m) (Buffer.contents hex)
    (if String.length s > prefix_len then "..." else "")

let pp_hex fmt m =
  let s = to_string m in
  String.iteri
    (fun i c ->
      if i > 0 && i mod 16 = 0 then Format.pp_print_newline fmt ();
      Format.fprintf fmt "%02x " (Char.code c))
    s
