(** Structured tracing for protocol debugging.

    Thin wrapper over [logs] with one source per subsystem and helpers
    that include virtual timestamps.  Disabled by default; tests and the
    CLI enable it with {!set_level}. *)

val src : Logs.src
(** The ["xkernel"] log source. *)

val set_level : Logs.level option -> unit
(** Enables the default [Fmt] reporter on first call. *)

val packet :
  Sim.t -> host:string -> proto:string -> dir:[ `Send | `Recv ] ->
  Msg.t -> unit
(** [packet sim ~host ~proto ~dir msg] logs one packet event at debug
    level with the current virtual time. *)

val debugf : Sim.t -> host:string -> ('a, Format.formatter, unit) format -> 'a
val infof : Sim.t -> host:string -> ('a, Format.formatter, unit) format -> 'a
