(** Simulated hosts.

    A host bundles an identity (name, IP address, ethernet address), a
    CPU cost model and a boot identifier.  Protocol objects are
    instantiated per host; the two-machine experiments of the paper
    build two hosts on one wire. *)

type t = {
  name : string;
  ip : Addr.Ip.t;
  eth : Addr.Eth.t;
  mach : Machine.t;
  mutable boot_id : int;
      (** Monotonic boot identifier carried in Sprite RPC headers to
          give at-most-once semantics across server restarts. *)
}

val create :
  Sim.t ->
  name:string ->
  ip:Addr.Ip.t ->
  eth:Addr.Eth.t ->
  ?profile:Machine.profile ->
  unit ->
  t
(** [create sim ~name ~ip ~eth ()] is a host with the default
    {!Machine.xkernel_sun3} profile. *)

val sim : t -> Sim.t
val reboot : t -> unit
(** [reboot h] increments [h.boot_id] — servers restarted mid-call make
    clients observe an at-most-once failure rather than a re-execution. *)

val pp : Format.formatter -> t -> unit
