module Ip = struct
  type t = int

  let v a b c d =
    let octet name x =
      if x < 0 || x > 255 then invalid_arg ("Addr.Ip.v: bad octet " ^ name);
      x
    in
    (octet "a" a lsl 24)
    lor (octet "b" b lsl 16)
    lor (octet "c" c lsl 8)
    lor octet "d" d

  let of_int32_bits n = n land 0xffffffff
  let to_int t = t

  let of_string s =
    match String.split_on_char '.' s with
    | [ a; b; c; d ] -> (
        match
          (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c,
           int_of_string_opt d)
        with
        | Some a, Some b, Some c, Some d
          when List.for_all (fun x -> x >= 0 && x <= 255) [ a; b; c; d ] ->
            Some (v a b c d)
        | _ -> None)
    | _ -> None

  let to_string t =
    Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
      ((t lsr 8) land 0xff) (t land 0xff)

  let pp fmt t = Format.pp_print_string fmt (to_string t)
  let equal = Int.equal
  let compare = Int.compare
  let broadcast = 0xffffffff
  let any = 0
  let network t = t lsr 8
  let same_network a b = network a = network b
end

module Eth = struct
  type t = int

  let v n =
    if n < 0 || n > 0xffffffffffff then invalid_arg "Addr.Eth.v: not 48 bits";
    n

  let to_int t = t

  let to_string t =
    Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" ((t lsr 40) land 0xff)
      ((t lsr 32) land 0xff)
      ((t lsr 24) land 0xff)
      ((t lsr 16) land 0xff)
      ((t lsr 8) land 0xff) (t land 0xff)

  let pp fmt t = Format.pp_print_string fmt (to_string t)
  let equal = Int.equal
  let compare = Int.compare
  let broadcast = 0xffffffffffff
  let is_broadcast t = t = broadcast
end

type port = int
type ip_proto = int
type eth_type = int

let eth_type_ip = 0x0800
let eth_type_arp = 0x0806
let vip_eth_type_base = 0x4000

let eth_type_of_ip_proto p =
  if p < 0 || p > 255 then invalid_arg "eth_type_of_ip_proto";
  vip_eth_type_base lor p

let ip_proto_of_eth_type t =
  if t >= vip_eth_type_base && t < vip_eth_type_base + 256 then
    Some (t land 0xff)
  else None
