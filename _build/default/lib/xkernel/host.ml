type t = {
  name : string;
  ip : Addr.Ip.t;
  eth : Addr.Eth.t;
  mach : Machine.t;
  mutable boot_id : int;
}

let create sim ~name ~ip ~eth ?(profile = Machine.xkernel_sun3) () =
  { name; ip; eth; mach = Machine.create sim profile; boot_id = 1 }

let sim h = Machine.sim h.mach
let reboot h = h.boot_id <- h.boot_id + 1

let pp fmt h =
  Format.fprintf fmt "%s(%a,%a)" h.name Addr.Ip.pp h.ip Addr.Eth.pp h.eth
