let src = Logs.Src.create "xkernel" ~doc:"x-kernel protocol tracing"

module Log = (val Logs.src_log src : Logs.LOG)

let reporter_installed = ref false

let set_level level =
  if not !reporter_installed then begin
    Logs.set_reporter (Logs.format_reporter ());
    reporter_installed := true
  end;
  Logs.Src.set_level src level

let stamp sim = Sim.now sim *. 1e3

let packet sim ~host ~proto ~dir msg =
  let arrow = match dir with `Send -> "->" | `Recv -> "<-" in
  Log.debug (fun m ->
      m "[%8.3fms] %s %s %s %a" (stamp sim) host proto arrow Msg.pp msg)

let debugf sim ~host fmt =
  Format.kasprintf
    (fun s -> Log.debug (fun m -> m "[%8.3fms] %s %s" (stamp sim) host s))
    fmt

let infof sim ~host fmt =
  Format.kasprintf
    (fun s -> Log.info (fun m -> m "[%8.3fms] %s %s" (stamp sim) host s))
    fmt
