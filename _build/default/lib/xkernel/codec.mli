(** Big-endian binary codecs for protocol headers.

    Every protocol header in this repository (ethernet, IP, UDP, the four
    RPC headers from the paper's appendix) is encoded with these
    primitives.  All multi-byte fields are big-endian ("network order"),
    matching the wire formats the paper's C structures imply. *)

(** Writer: accumulates header bytes. *)
module W : sig
  type t

  val create : ?size:int -> unit -> t

  val u8 : t -> int -> unit
  (** [u8 w v] appends the low 8 bits of [v]. *)

  val u16 : t -> int -> unit
  (** [u16 w v] appends the low 16 bits of [v], big-endian. *)

  val u32 : t -> int -> unit
  (** [u32 w v] appends the low 32 bits of [v], big-endian. *)

  val u48 : t -> int -> unit
  (** [u48 w v] appends the low 48 bits of [v] (ethernet addresses). *)

  val bytes : t -> string -> unit
  (** [bytes w s] appends [s] verbatim. *)

  val contents : t -> string
  (** [contents w] returns everything written so far. *)

  val length : t -> int
end

(** Reader: consumes header bytes front to back.

    All read functions raise {!Truncated} when the input is exhausted;
    protocol [demux] implementations catch it and drop the packet, which
    is exactly what a real stack does with a runt frame. *)
module R : sig
  type t

  exception Truncated

  val of_string : string -> t

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u48 : t -> int

  val bytes : t -> int -> string
  (** [bytes r n] reads the next [n] raw bytes. *)

  val remaining : t -> int
  (** [remaining r] is the number of unread bytes. *)

  val pos : t -> int
  (** [pos r] is the number of bytes consumed so far. *)
end

val ones_complement_sum : string -> int
(** [ones_complement_sum s] is the 16-bit one's-complement sum of [s]
    interpreted as a sequence of big-endian 16-bit words (odd trailing
    byte padded with zero), as used by the IP header checksum. *)

val ip_checksum : string -> int
(** [ip_checksum s] is the complement of {!ones_complement_sum},
    i.e. the value stored in an IP header checksum field. *)
