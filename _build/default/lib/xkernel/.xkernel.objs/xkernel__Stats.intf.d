lib/xkernel/stats.mli: Control
