lib/xkernel/stats.ml: Control Hashtbl List Option String
