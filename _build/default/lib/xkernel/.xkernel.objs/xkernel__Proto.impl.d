lib/xkernel/proto.ml: Control Format Hashtbl Host List Machine Msg Option Part
