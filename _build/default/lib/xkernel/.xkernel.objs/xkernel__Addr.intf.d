lib/xkernel/addr.mli: Format
