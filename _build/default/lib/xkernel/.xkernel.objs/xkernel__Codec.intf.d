lib/xkernel/codec.mli:
