lib/xkernel/control.mli: Addr Format
