lib/xkernel/wire.ml: Char List Msg Random Sim
