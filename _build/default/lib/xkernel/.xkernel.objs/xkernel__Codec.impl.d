lib/xkernel/codec.ml: Buffer Char String
