lib/xkernel/addr.ml: Format Int List Printf String
