lib/xkernel/host.mli: Addr Format Machine Sim
