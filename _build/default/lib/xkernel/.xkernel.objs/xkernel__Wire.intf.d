lib/xkernel/wire.mli: Msg Sim
