lib/xkernel/machine.mli: Sim
