lib/xkernel/sim.mli:
