lib/xkernel/trace.ml: Format Logs Msg Sim
