lib/xkernel/part.ml: Addr Format
