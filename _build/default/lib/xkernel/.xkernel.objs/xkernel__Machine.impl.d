lib/xkernel/machine.ml: List Sim
