lib/xkernel/event.mli: Host
