lib/xkernel/trace.mli: Format Logs Msg Sim
