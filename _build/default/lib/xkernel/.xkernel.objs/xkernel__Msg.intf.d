lib/xkernel/msg.mli: Format
