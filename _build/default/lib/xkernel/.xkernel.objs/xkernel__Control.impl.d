lib/xkernel/control.ml: Addr Format Printf
