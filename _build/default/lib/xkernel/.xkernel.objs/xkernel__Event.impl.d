lib/xkernel/event.ml: Host Machine Sim
