lib/xkernel/msg.ml: Buffer Char Format Printf String
