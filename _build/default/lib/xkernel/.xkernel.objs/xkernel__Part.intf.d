lib/xkernel/part.mli: Addr Format
