lib/xkernel/netdev.mli: Addr Host Msg Wire
