lib/xkernel/proto.mli: Control Format Host Msg Part
