lib/xkernel/host.ml: Addr Format Machine
