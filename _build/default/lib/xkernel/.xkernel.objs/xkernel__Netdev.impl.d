lib/xkernel/netdev.ml: Addr Char Host Machine Msg Queue Sim String Trace Wire
