lib/xkernel/sim.ml: Effect Map Option Printf Queue
