(** Named event counters.

    Every protocol keeps a counter table exported through
    [control (Get_stat name)]; tests and benches read them to assert
    packet counts (e.g. "FRAGMENT handles 16 messages but CHANNEL and
    SELECT handle only one", section 4.2). *)

type t

val create : unit -> t
val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
val reset : t -> unit
val to_list : t -> (string * int) list
(** Sorted by name. *)

val control : t -> Control.req -> Control.reply
(** Handles [Get_stat] and [Flush_cache] (reset); [Unsupported]
    otherwise — designed to sit last in a {!Proto.control_via} chain. *)
