module W = struct
  type t = Buffer.t

  let create ?(size = 64) () = Buffer.create size
  let u8 w v = Buffer.add_char w (Char.chr (v land 0xff))

  let u16 w v =
    u8 w (v lsr 8);
    u8 w v

  let u32 w v =
    u16 w (v lsr 16);
    u16 w v

  let u48 w v =
    u16 w (v lsr 32);
    u32 w v

  let bytes w s = Buffer.add_string w s
  let contents = Buffer.contents
  let length = Buffer.length
end

module R = struct
  type t = { data : string; mutable pos : int }

  exception Truncated

  let of_string data = { data; pos = 0 }
  let remaining r = String.length r.data - r.pos
  let pos r = r.pos

  let u8 r =
    if remaining r < 1 then raise Truncated;
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    let hi = u8 r in
    let lo = u8 r in
    (hi lsl 8) lor lo

  let u32 r =
    let hi = u16 r in
    let lo = u16 r in
    (hi lsl 16) lor lo

  let u48 r =
    let hi = u16 r in
    let lo = u32 r in
    (hi lsl 32) lor lo

  let bytes r n =
    if n < 0 || remaining r < n then raise Truncated;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s
end

let ones_complement_sum s =
  let n = String.length s in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + ((Char.code s.[!i] lsl 8) lor Char.code s.[!i + 1]);
    i := !i + 2
  done;
  if !i < n then sum := !sum + (Char.code s.[!i] lsl 8);
  (* Fold carries back in until the sum fits in 16 bits. *)
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  !sum

let ip_checksum s = lnot (ones_complement_sum s) land 0xffff
