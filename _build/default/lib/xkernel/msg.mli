(** Message objects.

    The x-kernel treats a message as a stack: protocols [push] headers
    onto the front on the way down and [pop] them off on the way up
    (section 2).  Messages here are immutable cords (concatenation
    trees), which gives the three properties the paper's infrastructure
    relies on:

    - O(1) length ("the x-kernel provides an inexpensive operation for
      determining the length of a given message" — VIP's push is a
      single length test);
    - cheap header push without copying the body (the paper's
      pre-allocated header buffer discipline, section 5 "Potential
      Pitfalls");
    - multiple protocols may retain references to pieces of the same
      message (footnote 1: FRAGMENT keeps a copy of the fragments while
      CHANNEL retains the whole message), which immutability provides
      for free. *)

type t

val empty : t

val of_string : string -> t
(** [of_string s] is a single-leaf message with body [s]. *)

val fill : int -> char -> t
(** [fill n c] is an [n]-byte message of repeated [c]; bulk-transfer
    test payloads.  Shares one chunk internally, so 16 KB test messages
    are cheap. *)

val length : t -> int
(** O(1). *)

val is_empty : t -> bool

val append : t -> t -> t
(** [append a b] is the message [a] followed by [b]; O(1). *)

val push : t -> string -> t
(** [push m h] pushes header bytes [h] onto the front of [m]; O(1). *)

val pop : t -> int -> (string * t) option
(** [pop m n] strips the first [n] bytes off [m], returning them
    together with the rest; [None] if [m] is shorter than [n].  This is
    a protocol popping its header on the way up. *)

val split : t -> int -> t * t
(** [split m n] is [(take n m, drop n m)].  Used by fragmentation
    layers; both halves share structure with [m].  Raises
    [Invalid_argument] if [n] is negative or greater than [length m]. *)

val sub : t -> int -> int -> t
(** [sub m off len] is the [len]-byte slice of [m] starting at [off]. *)

val to_string : t -> string
(** Linearize.  O(n); used at the wire boundary and in tests. *)

val equal : t -> t -> bool
(** Content equality (ignores tree shape). *)

val map_byte : int -> (char -> char) -> t -> t
(** [map_byte i f m] replaces byte [i] with [f] of itself — the wire's
    corruption injector.  Raises [Invalid_argument] if out of range. *)

val pp : Format.formatter -> t -> unit
(** Prints length and a short hex prefix; for traces and test output. *)

val pp_hex : Format.formatter -> t -> unit
(** Full hex dump. *)
