(** Network addresses.

    The paper's protocols identify participants with 32-bit IP host
    addresses, 48-bit ethernet addresses, 8-bit IP protocol numbers,
    16-bit ethernet types and 16-bit UDP ports.  This module supplies
    those address types along with parsing, formatting and the
    IP-number-to-ethernet-type mapping VIP relies on (section 3.1: "VIP
    maps IP protocol numbers onto an unused range of 256 ethernet
    types"). *)

(** 32-bit IPv4-style host addresses. *)
module Ip : sig
  type t = private int
  (** An IP address, stored as a non-negative 32-bit value. *)

  val v : int -> int -> int -> int -> t
  (** [v a b c d] is the address [a.b.c.d].  Raises [Invalid_argument]
      if any octet is outside 0..255. *)

  val of_int32_bits : int -> t
  (** [of_int32_bits n] interprets the low 32 bits of [n] as an address. *)

  val to_int : t -> int
  val of_string : string -> t option
  (** [of_string "10.0.0.1"] parses dotted-quad notation. *)

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val broadcast : t
  (** The limited-broadcast address 255.255.255.255. *)

  val any : t
  (** The wildcard address 0.0.0.0. *)

  val network : t -> int
  (** [network a] is the /24 network prefix of [a], used by the
      simulated hosts to decide local-vs-gateway routing. *)

  val same_network : t -> t -> bool
end

(** 48-bit ethernet addresses. *)
module Eth : sig
  type t = private int

  val v : int -> t
  (** [v n] is the address with 48-bit value [n] (must be non-negative
      and fit in 48 bits). *)

  val to_int : t -> int
  val to_string : t -> string
  (** Colon-separated hex, e.g. ["08:00:20:01:02:03"]. *)

  val pp : Format.formatter -> t -> unit
  val equal : t -> t -> bool
  val compare : t -> t -> int

  val broadcast : t
  (** ff:ff:ff:ff:ff:ff. *)

  val is_broadcast : t -> bool
end

type port = int
(** 16-bit UDP/transport port numbers. *)

type ip_proto = int
(** 8-bit IP protocol numbers (the IP header's protocol field). *)

type eth_type = int
(** 16-bit ethernet type field values. *)

val eth_type_ip : eth_type
val eth_type_arp : eth_type

val vip_eth_type_base : eth_type
(** Base of the unused range of 256 ethernet types onto which VIP maps
    the 256 possible IP protocol numbers. *)

val eth_type_of_ip_proto : ip_proto -> eth_type
(** [eth_type_of_ip_proto p] maps an 8-bit IP protocol number into VIP's
    reserved ethernet-type range.  Raises [Invalid_argument] if [p] is
    outside 0..255. *)

val ip_proto_of_eth_type : eth_type -> ip_proto option
(** Inverse of {!eth_type_of_ip_proto}; [None] for types outside the
    reserved range. *)
