type component =
  | Ip of Addr.Ip.t
  | Eth of Addr.Eth.t
  | Port of Addr.port
  | Ip_proto of Addr.ip_proto
  | Eth_type of Addr.eth_type
  | Channel of int
  | Command of int
  | Program of int * int
  | Procedure of int
  | Any

type participant = component list
type t = { local : participant; remotes : participant list }

let v ~local ?(remotes = []) () = { local; remotes }

let peer_opt t = match t.remotes with [] -> None | p :: _ -> Some p

let peer t =
  match peer_opt t with
  | Some p -> p
  | None -> invalid_arg "Part.peer: no remote participant"

let rec find_map f = function
  | [] -> None
  | c :: rest -> ( match f c with Some _ as r -> r | None -> find_map f rest)

let find_ip p = find_map (function Ip a -> Some a | _ -> None) p
let find_eth p = find_map (function Eth a -> Some a | _ -> None) p
let find_port p = find_map (function Port a -> Some a | _ -> None) p
let find_ip_proto p = find_map (function Ip_proto a -> Some a | _ -> None) p
let find_eth_type p = find_map (function Eth_type a -> Some a | _ -> None) p
let find_channel p = find_map (function Channel a -> Some a | _ -> None) p
let find_command p = find_map (function Command a -> Some a | _ -> None) p

let find_program p =
  find_map (function Program (a, b) -> Some (a, b) | _ -> None) p

let find_procedure p = find_map (function Procedure a -> Some a | _ -> None) p
let with_component p c = c :: p

let pp_component fmt = function
  | Ip a -> Format.fprintf fmt "ip:%a" Addr.Ip.pp a
  | Eth a -> Format.fprintf fmt "eth:%a" Addr.Eth.pp a
  | Port p -> Format.fprintf fmt "port:%d" p
  | Ip_proto p -> Format.fprintf fmt "ipproto:%d" p
  | Eth_type t -> Format.fprintf fmt "ethtype:0x%04x" t
  | Channel c -> Format.fprintf fmt "chan:%d" c
  | Command c -> Format.fprintf fmt "cmd:%d" c
  | Program (p, v) -> Format.fprintf fmt "prog:%d.%d" p v
  | Procedure p -> Format.fprintf fmt "proc:%d" p
  | Any -> Format.pp_print_string fmt "*"

let pp_participant fmt p =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       pp_component)
    p

let pp fmt t =
  Format.fprintf fmt "{local=%a remotes=%a}" pp_participant t.local
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ";")
       pp_participant)
    t.remotes
