type t = (string, int) Hashtbl.t

let create () = Hashtbl.create 16

let add t name n =
  let cur = Option.value (Hashtbl.find_opt t name) ~default:0 in
  Hashtbl.replace t name (cur + n)

let incr t name = add t name 1
let get t name = Option.value (Hashtbl.find_opt t name) ~default:0
let reset = Hashtbl.reset

let to_list t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let control t = function
  | Control.Get_stat name -> Control.R_int (get t name)
  | Control.Flush_cache ->
      reset t;
      Control.R_unit
  | _ -> Control.Unsupported
