(** Participant sets.

    Every [open], [open_enable] and [open_done] takes a participant set
    identifying who is to communicate through the created session
    (section 2).  By convention the first participant is the local one.
    Each participant is a small list of address components; protocols
    pick out the components they understand and ignore the rest, which
    is what lets one participant set flow down through a whole stack at
    open time. *)

type component =
  | Ip of Addr.Ip.t
  | Eth of Addr.Eth.t
  | Port of Addr.port
  | Ip_proto of Addr.ip_proto  (** 8-bit IP protocol number. *)
  | Eth_type of Addr.eth_type  (** 16-bit ethernet type. *)
  | Channel of int             (** Sprite RPC channel number. *)
  | Command of int             (** Sprite RPC command (procedure id). *)
  | Program of int * int       (** Sun RPC program number and version. *)
  | Procedure of int           (** Sun RPC procedure number. *)
  | Any                        (** Wildcard: unspecified in open_enable. *)

type participant = component list

type t = { local : participant; remotes : participant list }
(** A participant set: the local participant plus zero or more remote
    peers.  [open] and [open_done] require at least one remote;
    [open_enable] may leave [remotes] empty (section 2). *)

val v : local:participant -> ?remotes:participant list -> unit -> t

val peer : t -> participant
(** [peer p] is the first remote participant.  Raises [Invalid_argument]
    if there is none — protocols whose [open] needs a peer call this. *)

val peer_opt : t -> participant option

(** Component accessors: [find_*] scans a participant front to back. *)

val find_ip : participant -> Addr.Ip.t option
val find_eth : participant -> Addr.Eth.t option
val find_port : participant -> Addr.port option
val find_ip_proto : participant -> Addr.ip_proto option
val find_eth_type : participant -> Addr.eth_type option
val find_channel : participant -> int option
val find_command : participant -> int option
val find_program : participant -> (int * int) option
val find_procedure : participant -> int option

val with_component : participant -> component -> participant
(** [with_component p c] adds [c] to the front of [p] — how a protocol
    refines a participant before opening the next protocol down. *)

val pp_component : Format.formatter -> component -> unit
val pp_participant : Format.formatter -> participant -> unit
val pp : Format.formatter -> t -> unit
