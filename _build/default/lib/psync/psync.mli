(** Psync — many-to-many IPC preserving context.

    A working model of the Psync protocol the paper repeatedly leans
    on: conversations among a fixed set of hosts where each message
    carries its *context* — the identifiers of the messages it was sent
    in response to — and is delivered only after its context, giving a
    causal partial order.

    Its role in this repository is the paper's reuse argument
    (sections 3.2 and 5): FRAGMENT was deliberately given unreliable,
    no-positive-ack semantics *so that Psync could sit on top of it* —
    Psync wants large (16 KB) messages but must not inherit at-most-once
    request/reply semantics.  Compose {!create} with a
    {!Rpc.Fragment.t} and both properties hold; missing predecessors
    are recovered Psync-style, by asking the original sender to resend
    a message named by the context graph.

    Message identifiers are (sender IP, per-sender sequence) pairs. *)

type t

val create :
  host:Xkernel.Host.t -> lower:Xkernel.Proto.t -> ?proto_num:int -> unit -> t
(** [proto_num] defaults to 97. *)

val proto : t -> Xkernel.Proto.t

type msg_id = { origin : Xkernel.Addr.Ip.t; seq : int }

type conversation

val join :
  t ->
  conv_id:int ->
  members:Xkernel.Addr.Ip.t list ->
  conversation
(** Every participating host must [join] the same [conv_id] with the
    same member set (which includes the local host). *)

val send : conversation -> Xkernel.Msg.t -> msg_id
(** Multicast to all other members, in the context of everything
    delivered or sent locally so far (the current leaves of the context
    graph). *)

val on_deliver :
  conversation ->
  (sender:Xkernel.Addr.Ip.t -> id:msg_id -> context:msg_id list ->
   Xkernel.Msg.t -> unit) ->
  unit
(** Delivery callback; invoked in causal order — a message is delivered
    only after every message in its context. *)

val delivered : conversation -> int
val blocked : conversation -> int
(** Messages buffered waiting for their context. *)
