(** STREAM — a reliable byte stream from building blocks.

    The paper reports applying the layered-protocol technique "to
    stream-oriented protocols with modest success" (section 6) and
    explains why TCP itself cannot sit on VIP: TCP reads the length
    field of the IP header and checksums across it, a compiled-in
    dependency on the layer below (section 5, "Generality of Virtual
    Protocols").  STREAM is the protocol that discussion asks for — a
    sliding-window reliable stream that carries its *own* length field
    and checksums nothing outside its own header, so it composes with
    any message-delivery layer with the same semantics that can name the
    peer by IP address: IP or VIP.  The tests run it over both,
    unchanged.

    Mechanics: cumulative acknowledgements, out-of-order segment
    buffering on the receiver, go-back-N retransmission on timeout, and
    a fixed send window (in segments).  Connections are implicit — one
    stream per (peer, upper protocol number) pair, sequence numbers
    starting at 1 — because connection setup/teardown is orthogonal to
    the composition question this protocol exists to answer.

    Header: type (1), sequence (4), ack (4), window (2), length (2). *)

type t

val create :
  host:Xkernel.Host.t ->
  lower:Xkernel.Proto.t ->
  ?proto_num:int ->
  ?window:int ->
  ?segment_size:int ->
  ?rto:float ->
  ?retries:int ->
  unit ->
  t
(** [proto_num] (default 99) names STREAM toward the layer below;
    [window] (default 8) is the send window in segments;
    [segment_size] defaults to what fits one lower-layer packet;
    [rto] (default 30 ms) is the retransmission timeout, with
    [retries] (default 8) attempts before the stream breaks. *)

val proto : t -> Xkernel.Proto.t

type conn

val connect : t -> peer:Xkernel.Addr.Ip.t -> conn
(** The (cached) stream toward [peer].  Both directions use the same
    connection object. *)

exception Broken
(** Raised by {!send} when the peer stopped acknowledging. *)

val send : conn -> Xkernel.Msg.t -> unit
(** Append bytes to the stream.  Blocks the calling fiber while the
    send window is full; returns when the data is queued (not yet
    acknowledged).  Segments are delivered to the peer's {!on_receive}
    callback in order, exactly once. *)

val flush : conn -> unit
(** Block until everything sent so far has been acknowledged. *)

val on_receive : t -> (peer:Xkernel.Addr.Ip.t -> Xkernel.Msg.t -> unit) -> unit
(** In-order delivery callback (chunk boundaries are not preserved —
    it is a byte stream). *)

val bytes_sent : conn -> int
val bytes_acked : conn -> int
val stat : t -> string -> int
