(** Forwarding selection layer.

    The alternative addressing scheme the paper mentions to justify
    SELECT being a separate protocol: "we have built an alternative
    selection layer that does forwarding" (section 3.2).  A forwarding
    selector serves a command set by relaying each request, unchanged,
    to a delegate host over its own client connection, and relaying the
    reply back — swapping it for plain {!Select} changes where
    procedures execute without touching CHANNEL or FRAGMENT. *)

type t

val create :
  host:Xkernel.Host.t ->
  channel:Channel.t ->
  delegate:Xkernel.Addr.Ip.t ->
  ?proto_num:int ->
  unit ->
  t
(** Requests arriving at this host are forwarded to [delegate] (which
    must run an ordinary {!Select} server with the same protocol
    number). *)

val serve : t -> unit
val forwarded : t -> int
