(** Reliable datagrams on top of CHANNEL.

    "It is trivial to build a reliable datagram protocol on top of
    CHANNEL" (section 3.2) — this is that protocol: each datagram is a
    CHANNEL transaction whose reply is empty, so delivery is confirmed
    (at most once) without any new machinery.  Roughly fifty lines,
    which is the paper's point about composing building blocks. *)

type t

val create :
  host:Xkernel.Host.t -> channel:Channel.t -> ?proto_num:int -> unit -> t
(** [proto_num] defaults to 94. *)

val send :
  t -> dest:Xkernel.Addr.Ip.t -> Xkernel.Msg.t ->
  (unit, Rpc_error.t) result
(** Blocking reliable send (channel 0 toward [dest]). *)

val listen : t -> (Xkernel.Addr.Ip.t -> Xkernel.Msg.t -> unit) -> unit
(** Deliver each received datagram (exactly once per successful send)
    to the callback. *)

val received : t -> int
