(** REQUEST_REPLY — Sun RPC's transaction layer (section 5, "Mix and
    Match RPCs").

    Matches replies to requests with a transaction id (xid) and
    retransmits on timeout, but — unlike CHANNEL — keeps *no* state
    about executed requests: a retransmission that crosses a slow reply
    causes re-execution.  These are Sun RPC's "zero or more" semantics;
    the paper's mix-and-match point is that swapping this layer for
    CHANNEL upgrades a Sun RPC stack to at-most-once without touching
    anything else.

    Header: type (1), xid (4), protocol number (4). *)

type t

val create :
  host:Xkernel.Host.t ->
  lower:Xkernel.Proto.t ->
  ?proto_num:int ->
  ?timeout:float ->
  ?retries:int ->
  unit ->
  t
(** [proto_num] (default 95) is this layer's own number toward [lower];
    [timeout] (default 25 ms) and [retries] (default 4) drive client
    retransmission. *)

val proto : t -> Xkernel.Proto.t

val header_bytes : int
(** 9 *)

val session :
  t -> peer:Xkernel.Addr.Ip.t -> upper_proto:int -> Xkernel.Proto.session
(** Client session toward [peer] on behalf of the upper protocol
    identified by [upper_proto].  Cached. *)

val call :
  t -> Xkernel.Proto.session -> Xkernel.Msg.t ->
  (Xkernel.Msg.t, Rpc_error.t) result
(** Blocking transaction; concurrent calls on one session are fine
    (xids demultiplex). *)

val executions : t -> int
(** Server-side deliveries — under duplication this *exceeds* the
    number of distinct requests, which is exactly what the tests assert
    to distinguish zero-or-more from at-most-once. *)

(** Server side: [open_enable] with [Ip_proto n]; each request is
    delivered up, and the upper protocol must reply by pushing into the
    session within the same fiber (before its demux returns). *)
