(** SUN_SELECT — Sun RPC's selection layer (section 5).

    Maps (program, version, procedure) triples onto registered
    procedures, over any transaction layer that provides blocking
    request/reply — REQUEST_REPLY for authentic Sun RPC's zero-or-more
    semantics, or CHANNEL for the at-most-once upgrade the paper
    describes ("one can replace the REQUEST_REPLY protocol … with the
    CHANNEL protocol").  Combined with FRAGMENT below the transaction
    layer, this reproduces the paper's other mix: Sun RPC that no
    longer "depend[s] on IP to fragment large messages".

    Header: program (4), version (4), procedure (4), status (1). *)

type t

(** The transaction layer abstraction: how SUN_SELECT runs one blocking
    exchange.  {!over_request_reply} and {!over_channel} build the two
    instances the paper composes. *)
type transaction = {
  x_open : peer:Xkernel.Addr.Ip.t -> Xkernel.Proto.session;
  x_call :
    Xkernel.Proto.session -> Xkernel.Msg.t ->
    (Xkernel.Msg.t, Rpc_error.t) result;
  x_serve : upper:Xkernel.Proto.t -> unit;
  x_proto : Xkernel.Proto.t;
}

val over_request_reply : Request_reply.t -> proto_num:int -> transaction
val over_channel : Channel.t -> proto_num:int -> transaction

val create : host:Xkernel.Host.t -> transaction:transaction -> t
val proto : t -> Xkernel.Proto.t

(** {1 Client} *)

type client

val connect :
  t -> server:Xkernel.Addr.Ip.t -> prog:int -> vers:int -> client

val call :
  client -> proc:int -> Xkernel.Msg.t ->
  (Xkernel.Msg.t, Rpc_error.t) result

(** {1 Server} *)

val register :
  t -> prog:int -> vers:int -> proc:int -> Select.handler -> unit

val serve : t -> unit

val status_ok : int
val status_prog_unavail : int
val status_proc_unavail : int

val calls_handled : t -> int
