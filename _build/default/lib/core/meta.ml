open Xkernel

type issue = { about : string; rule : string; detail : string }

let int_answer p req =
  match Proto.control p req with Control.R_int n -> Some n | _ -> None

let carrying_capacity p =
  match int_answer p Control.Get_max_packet with
  | Some n -> Some n
  | None -> int_answer p Control.Get_mtu

(* Walk the declared graph once, visiting each distinct protocol object
   and each (upper, lower) edge. *)
let walk tops ~node ~edge =
  let seen = ref [] in
  let rec visit p =
    if not (List.memq p !seen) then begin
      seen := p :: !seen;
      node p;
      List.iter
        (fun lower ->
          edge p lower;
          visit lower)
        (Proto.below p)
    end
  in
  List.iter visit tops

let check tops =
  let issues = ref [] in
  let add about rule detail = issues := { about; rule; detail } :: !issues in
  let node p =
    let name = Proto.name p in
    let is_leaf = Proto.below p = [] in
    if (not is_leaf) && not (Proto.is_virtual p) then begin
      match carrying_capacity p with
      | Some _ -> ()
      | None ->
          (* tops that only originate traffic are exempt: nobody above
             them asks; interior layers must answer *)
          if List.exists (fun lower -> Proto.below lower <> []) (Proto.below p)
             && int_answer p Control.Get_max_msg_size <> None
          then ()
          else if not (List.memq p tops) then
            add name "answerability"
              "interior protocol answers neither Get_max_packet nor Get_mtu"
    end;
    if Proto.is_virtual p && Proto.below p = [] then
      add name "virtual-discipline"
        "virtual protocol with nothing below it has no wire to multiplex"
  in
  let edge upper lower =
    match
      (int_answer upper Control.Get_max_msg_size, carrying_capacity lower)
    with
    | Some declared, Some capacity when declared > capacity ->
        add
          (Printf.sprintf "%s over %s" (Proto.name upper) (Proto.name lower))
          "size-compatibility"
          (Printf.sprintf
             "advertises messages of up to %d bytes but the layer below \
              carries at most %d"
             declared capacity)
    | _ -> ()
  in
  walk tops ~node ~edge;
  List.rev !issues

let pp_report fmt issues =
  match issues with
  | [] ->
      Format.fprintf fmt
        "composition adheres to the meta-protocol (no rule violations)@."
  | issues ->
      List.iter
        (fun { about; rule; detail } ->
          Format.fprintf fmt "[%s] %s: %s@." rule about detail)
        issues
