lib/core/stacks.ml: Addr Channel Control Fragment Host Machine Msg Netproto Part Proto Rpc_error Select Sprite_mono Xkernel
