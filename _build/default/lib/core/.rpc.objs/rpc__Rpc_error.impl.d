lib/core/rpc_error.ml: Format Printf
