lib/core/request_reply.ml: Addr Codec Control Event Hashtbl Host Machine Msg Option Part Printf Proto Rpc_error Sim Stats Xkernel
