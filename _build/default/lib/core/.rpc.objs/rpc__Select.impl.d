lib/core/select.ml: Channel Control Hashtbl Host Machine Msg Part Proto Queue Rpc_error Sim Stats Wire_fmt Xkernel
