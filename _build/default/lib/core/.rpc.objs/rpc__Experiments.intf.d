lib/core/experiments.mli: Xkernel
