lib/core/fragment.mli: Xkernel
