lib/core/stacks.mli: Netproto Rpc_error Xkernel
