lib/core/rdgram.ml: Addr Channel Control Hashtbl Host Msg Part Proto Stats Xkernel
