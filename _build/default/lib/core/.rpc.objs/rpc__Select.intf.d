lib/core/select.mli: Channel Rpc_error Xkernel
