lib/core/measure.mli: Netproto Stacks Xkernel
