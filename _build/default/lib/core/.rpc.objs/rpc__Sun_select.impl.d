lib/core/sun_select.ml: Addr Channel Codec Hashtbl Host Machine Msg Part Proto Request_reply Rpc_error Select Stats Xkernel
