lib/core/wire_fmt.mli: Xkernel
