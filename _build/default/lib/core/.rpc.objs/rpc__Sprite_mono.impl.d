lib/core/sprite_mono.ml: Addr Array Control Event Hashtbl Host Machine Msg Option Part Proto Queue Rpc_error Select Seq Sim Stats Wire_fmt Xkernel
