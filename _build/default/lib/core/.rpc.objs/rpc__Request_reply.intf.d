lib/core/request_reply.mli: Rpc_error Xkernel
