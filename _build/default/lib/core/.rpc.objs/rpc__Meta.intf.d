lib/core/meta.mli: Format Xkernel
