lib/core/measure.ml: Host List Machine Msg Netproto Printf Rpc_error Sim Stacks Xkernel
