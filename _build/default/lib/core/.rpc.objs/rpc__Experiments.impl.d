lib/core/experiments.ml: Channel Format Fragment Machine Measure Msg Netproto Printf Proto Select Stacks String Xkernel
