lib/core/meta.ml: Control Format List Printf Proto Xkernel
