lib/core/channel.ml: Addr Control Event Hashtbl Host Machine Msg Option Part Printf Proto Rpc_error Sim Stats Wire_fmt Xkernel
