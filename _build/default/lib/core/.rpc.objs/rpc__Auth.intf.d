lib/core/auth.mli: Xkernel
