lib/core/rdgram.mli: Channel Rpc_error Xkernel
