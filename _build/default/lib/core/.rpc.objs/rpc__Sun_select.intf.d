lib/core/sun_select.mli: Channel Request_reply Rpc_error Select Xkernel
