lib/core/wire_fmt.ml: Addr Codec String Xkernel
