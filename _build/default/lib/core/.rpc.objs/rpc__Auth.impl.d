lib/core/auth.ml: Addr Char Codec Control Hashtbl Host Machine Msg Option Part Proto Stats String Xkernel
