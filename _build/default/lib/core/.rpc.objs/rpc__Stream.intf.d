lib/core/stream.mli: Xkernel
