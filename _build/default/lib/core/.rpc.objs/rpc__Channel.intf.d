lib/core/channel.mli: Rpc_error Xkernel
