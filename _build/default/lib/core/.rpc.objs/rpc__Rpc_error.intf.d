lib/core/rpc_error.mli: Format
