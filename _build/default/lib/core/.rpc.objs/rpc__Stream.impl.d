lib/core/stream.ml: Addr Codec Control Event Hashtbl Host List Machine Msg Part Proto Queue Sim Stats Xkernel
