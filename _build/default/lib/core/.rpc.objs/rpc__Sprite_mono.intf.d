lib/core/sprite_mono.mli: Rpc_error Select Xkernel
