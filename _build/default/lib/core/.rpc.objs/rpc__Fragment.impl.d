lib/core/fragment.ml: Addr Array Control Event Hashtbl Host List Machine Msg Option Part Printf Proto Sim Stats Wire_fmt Xkernel
