lib/core/select_fwd.mli: Channel Xkernel
