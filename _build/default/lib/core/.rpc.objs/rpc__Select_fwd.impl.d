lib/core/select_fwd.ml: Addr Channel Host Machine Msg Part Proto Rpc_error Select Stats Wire_fmt Xkernel
