(** The meta-protocol: composition rules (section 6).

    The paper closes with "we are experimenting with a meta-protocol
    that establishes a set of 'rules' for protocol design … the idea is
    that protocols that adhere to the meta-protocol will be more easily
    composed."  This module is a checker for those rules, run over the
    declared protocol graph and each object's [control] answers:

    - {b size compatibility}: a protocol that advertises a maximum
      message size must fit inside what the layer below can carry in
      one unit ([Get_max_msg_size] ≤ lower's [Get_max_packet]);
    - {b answerability}: every non-leaf protocol must answer
      [Get_max_packet] or [Get_mtu], or upper layers cannot size their
      messages (the "Information Loss" requirement);
    - {b virtual discipline}: a virtual protocol must sit on at least
      one lower protocol (it has no wire of its own).

    Composing Figure 3(b) during this reproduction hit exactly the kind
    of mistake such rules catch: two different layers sharing one
    protocol number below a virtual protocol, making their packets
    indistinguishable.  The standard-type-field rule is embodied
    structurally here (FRAGMENT, CHANNEL, REQUEST_REPLY, AUTH and
    STREAM each carry their own number toward the layer below). *)

type issue = {
  about : string;  (** protocol (or edge) the issue concerns *)
  rule : string;  (** which rule failed *)
  detail : string;
}

val check : Xkernel.Proto.t list -> issue list
(** [check tops] walks the graph below the given top-level protocols
    (via the edges recorded by [Proto.declare_below]) and returns every
    rule violation; [[]] means the composition adheres to the
    meta-protocol. *)

val pp_report : Format.formatter -> issue list -> unit
(** Human-readable report; prints an "adheres" line when empty. *)
