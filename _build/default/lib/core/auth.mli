(** Authentication as a library of optional protocol layers.

    "Much of the complexity in the Sun RPC code concerns the optional
    authentication component … layering provides a natural methodology
    for inserting or removing optional sub-pieces such as
    authentication" (section 5).  Each flavour here is an independent
    pass-through protocol with its own header (flavour, upper protocol
    number, credential length, credential bytes) that can be slotted
    anywhere in a stack — or left out entirely — without the layers
    above or below knowing.

    A server-side layer that fails to verify a credential drops the
    message (counted in ["auth-reject"]); the client then sees a
    timeout, which is how classic Sun RPC surfaces most credential
    problems too.

    The digest flavour is a toy keyed checksum: real cryptography is
    out of scope for a protocol-composition study, and the paper's
    point is the composition, not the cipher. *)

type t

val proto : t -> Xkernel.Proto.t
val rejects : t -> int

val none : host:Xkernel.Host.t -> lower:Xkernel.Proto.t -> ?proto_num:int -> unit -> t
(** AUTH_NONE: empty credential, always verifies; measures the pure
    cost of an extra layer. *)

val unix :
  host:Xkernel.Host.t ->
  lower:Xkernel.Proto.t ->
  ?proto_num:int ->
  uid:int ->
  gid:int ->
  allow:(uid:int -> gid:int -> bool) ->
  unit ->
  t
(** AUTH_UNIX: sends (uid, gid); the receiver's [allow] decides. *)

val digest :
  host:Xkernel.Host.t ->
  lower:Xkernel.Proto.t ->
  ?proto_num:int ->
  key:string ->
  unit ->
  t
(** AUTH_DIGEST: a keyed checksum over the message body; both sides
    must share [key]. *)

val flavor_none : int
val flavor_unix : int
val flavor_digest : int
