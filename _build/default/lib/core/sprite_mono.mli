(** M.RPC — monolithic Sprite RPC (section 3).

    The un-decomposed comparison point: selection, channels with
    implicit acknowledgement and at-most-once semantics, and internal
    fragmentation all behind the single 36-byte SPRITE_HDR.  Behaviour
    mirrors Sprite's RPC system:

    - a fixed set of channels; one outstanding call per channel;
    - implicit acks (a reply acknowledges the request and all its
      fragments; the next request acknowledges the previous reply);
    - fragments of one call share a sequence number and are
      distinguished by the fragment mask — unlike layered FRAGMENT,
      retransmission is selective: an explicit (partial) ACK carries the
      mask of fragments the server has, and the client resends only the
      missing ones;
    - boot identifiers give at-most-once across restarts.

    Semantically equivalent to layered L.RPC (SELECT ∘ CHANNEL ∘
    FRAGMENT) but *not* wire-compatible with it — "they are in effect
    two different protocols that provide the same level of service".

    The lower protocol is bound late: participants are supplied by the
    caller, so the same code runs over ETH (M.RPC-ETH), IP (M.RPC-IP)
    or VIP (M.RPC-VIP) — the three rows of Table I. *)

type t

val create :
  host:Xkernel.Host.t ->
  lower:Xkernel.Proto.t ->
  ?proto_num:int ->
  ?frag_size:int ->
  ?n_channels:int ->
  ?base_timeout:float ->
  ?per_frag_timeout:float ->
  ?retries:int ->
  unit ->
  t
(** Defaults: protocol number 91, 1 KB fragments, 8 channels, 20 ms
    base timeout + 3 ms per expected fragment, 5 retries. *)

val proto : t -> Xkernel.Proto.t

val max_args : t -> int
(** 16 KB with default fragment size — Sprite's argument limit. *)

(** {1 Client} *)

type client

val connect :
  t -> server:Xkernel.Addr.Ip.t ->
  ?remote:Xkernel.Part.participant ->
  unit ->
  client
(** [remote] overrides the remote participant handed to the lower
    protocol's [open_] — e.g. [[Eth e; Eth_type ty]] to run directly
    over the ethernet.  Defaults to [[Ip server; Ip_proto n]]. *)

val call :
  client -> command:int -> Xkernel.Msg.t ->
  (Xkernel.Msg.t, Rpc_error.t) result
(** Blocking; allocates a channel (waits for one if all are busy). *)

(** {1 Server} *)

val register : t -> command:int -> Select.handler -> unit

val serve : t -> ?enable:Xkernel.Part.participant -> unit -> unit
(** [enable] is the local participant for the lower [open_enable]
    (default [[Ip_proto n]]; use [[Eth_type ty]] over raw ethernet). *)

val calls_handled : t -> int
val stat : t -> string -> int
