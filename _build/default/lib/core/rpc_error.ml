type t = Timeout | Rebooted | Remote of int

let to_string = function
  | Timeout -> "timeout"
  | Rebooted -> "server rebooted"
  | Remote s -> Printf.sprintf "remote status %d" s

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a = b
